// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Hot-path replay throughput: the tracked A/B baseline for the flat
// containers (FlatLruMap / ScoreHeap) against the seed's node-based
// reference containers (LruMap / OrderedKeySet), on the default Figure-7
// six-server workload.
//
// Measures, single-threaded per algorithm (xLRU, Cafe):
//   * requests/sec over the full six-server replay,
//   * ns/request p50 / p99 (timed in slices of 1024 requests),
//   * heap allocations and bytes per request (global counting operator new;
//     exact in this binary, which links vcdn_alloc_hook),
// plus a batch-size sweep of the flat caches (requests per
// HandleRequestBatch call -- the software-prefetch pipeline's knob, see
// docs/PERFORMANCE.md) and, at --threads N, the fleet wall time for both
// container policies. Every run CHECKs that the two policies produce the
// same FleetDigest: the speedup is only meaningful while replay results
// stay bit-identical.
//
// Writes BENCH_hotpath.json (override with --out <path>). --repeat K runs
// the single-thread measurement K times; the headline numbers are the
// MEDIAN-throughput run (by requests/sec, lower median), so one noisy
// neighbor can't inflate the tracked baseline. All repeats are listed in
// the JSON. --batch N sets the headline batch size (default 16).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/perf_counters.h"
#include "src/obs/run_metadata.h"
#include "src/util/alloc_hook.h"
#include "src/util/check.h"
#include "src/util/str_util.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kSlice = 1024;  // requests per timing sample

constexpr size_t kSweepBatches[] = {1, 4, 8, 16, 32};

struct SingleThreadRun {
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
  double ns_per_request_p50 = 0.0;
  double ns_per_request_p99 = 0.0;
  double allocs_per_request = 0.0;
  double bytes_per_request = 0.0;
  uint64_t requests = 0;
  // Hardware counters over the request loop (obs::PerfCounterGroup). All
  // zero with perf_valid=false when perf_event_open is unavailable.
  bool perf_valid = false;
  double ipc = 0.0;
  double llc_misses_per_request = 0.0;
  double branch_misses_per_request = 0.0;
};

double Percentile(std::vector<double>& sorted_in_place, double q) {
  if (sorted_in_place.empty()) {
    return 0.0;
  }
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted_in_place.size() - 1));
  return sorted_in_place[index];
}

// Replays every trace through a fresh cache of `kind`, feeding the requests
// through HandleRequestBatch in spans of `batch_size` and timing in slices
// of kSlice requests. Prepare, cache construction and the outcome buffer
// are outside the timed region; the allocation counters cover only the
// request loop.
//
// `metrics` / `flight` (both nullable) attach the obs instruments INSIDE the
// timed region -- counter/hdr updates per request, one flight-ring store per
// outcome. The caller only passes them on the LAST repeat (the repo-wide
// "only the last repeat records" rule, see bench_common.h), so at
// --repeat >= 3 the median headline tracks the uninstrumented hot path
// while the instrumented repeat still exercises every per-request update
// and feeds the --obs-json/--obs-series/--post-mortem artifacts.
SingleThreadRun ReplaySingleThread(vcdn::core::CacheKind kind,
                                   const std::vector<vcdn::trace::Trace>& traces,
                                   const vcdn::core::CacheConfig& config, size_t batch_size,
                                   vcdn::obs::MetricsRegistry* metrics = nullptr,
                                   vcdn::obs::FlightRecorder* flight = nullptr) {
  using namespace vcdn;
  SingleThreadRun run;
  std::vector<double> slice_ns;
  double total_seconds = 0.0;
  util::AllocStats alloc_total{};
  core::RequestBatch batch;
  batch.outcomes.resize(batch_size);
  // One accumulated hardware-counter region over every request loop:
  // Start resets on the first trace, Resume continues on the rest, and the
  // group is stopped across cache construction / Prepare so the counts
  // cover the same work as the wall-clock slices.
  obs::PerfCounterGroup perf;
  bool perf_started = false;
  for (const trace::Trace& trace : traces) {
    auto cache = core::MakeCache(kind, config);
    if (metrics != nullptr) {
      cache->AttachMetrics(*metrics);
    }
    cache->Prepare(trace);
    const std::vector<trace::Request>& requests = trace.requests;
    util::AllocScope alloc_scope;
    if (perf_started) {
      perf.Resume();
    } else {
      perf.Start();
      perf_started = true;
    }
    for (size_t start = 0; start < requests.size(); start += kSlice) {
      size_t end = std::min(requests.size(), start + kSlice);
      auto t0 = Clock::now();
      for (size_t i = start; i < end; i += batch_size) {
        batch.requests = &requests[i];
        batch.count = std::min(batch_size, end - i);
        cache->HandleRequestBatch(batch);
        if (flight != nullptr) {
          // Same packing as sim::Replay's record_flight; clamped casts keep
          // the record at 32 bytes.
          for (size_t j = 0; j < batch.count; ++j) {
            const core::RequestOutcome& outcome = batch.outcomes[j];
            obs::DecisionRecord record;
            record.time = requests[i + j].arrival_time;
            record.key = requests[i + j].video;
            record.requested_bytes = static_cast<uint32_t>(std::min<uint64_t>(
                outcome.requested_bytes, std::numeric_limits<uint32_t>::max()));
            record.filled_chunks = static_cast<uint16_t>(
                std::min<uint32_t>(outcome.filled_chunks, std::numeric_limits<uint16_t>::max()));
            record.evicted_chunks = static_cast<uint16_t>(
                std::min<uint32_t>(outcome.evicted_chunks, std::numeric_limits<uint16_t>::max()));
            record.hit_chunks = static_cast<uint16_t>(
                std::min<uint32_t>(outcome.hit_chunks, std::numeric_limits<uint16_t>::max()));
            record.decision = static_cast<uint8_t>(outcome.decision);
            flight->Record(record);
          }
        }
      }
      auto t1 = Clock::now();
      double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
      total_seconds += ns * 1e-9;
      slice_ns.push_back(ns / static_cast<double>(end - start));
    }
    perf.Stop();
    util::AllocStats delta = alloc_scope.Delta();
    alloc_total.allocations += delta.allocations;
    alloc_total.bytes += delta.bytes;
    run.requests += requests.size();
  }
  const obs::PerfSample perf_sample = perf.TakeSample();
  if (perf_sample.valid && run.requests > 0) {
    run.perf_valid = true;
    run.ipc = perf_sample.ipc();
    run.llc_misses_per_request =
        static_cast<double>(perf_sample.llc_misses) / static_cast<double>(run.requests);
    run.branch_misses_per_request =
        static_cast<double>(perf_sample.branch_misses) / static_cast<double>(run.requests);
  }
  run.wall_seconds = total_seconds;
  run.requests_per_sec =
      total_seconds > 0.0 ? static_cast<double>(run.requests) / total_seconds : 0.0;
  run.ns_per_request_p99 = Percentile(slice_ns, 0.99);  // sorts slice_ns
  run.ns_per_request_p50 = Percentile(slice_ns, 0.50);
  if (run.requests > 0) {
    run.allocs_per_request =
        static_cast<double>(alloc_total.allocations) / static_cast<double>(run.requests);
    run.bytes_per_request =
        static_cast<double>(alloc_total.bytes) / static_cast<double>(run.requests);
  }
  return run;
}

// The run whose requests/sec is the (lower) median of the repeats: one
// consistent run supplies every headline field, and the raw per-repeat
// arrays stay in the JSON for dispersion checks.
const SingleThreadRun& MedianRun(const std::vector<SingleThreadRun>& runs) {
  VCDN_CHECK(!runs.empty());
  std::vector<size_t> order(runs.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return runs[a].requests_per_sec < runs[b].requests_per_sec;
  });
  return runs[order[(order.size() - 1) / 2]];
}

void PrintRun(const char* label, const SingleThreadRun& run) {
  std::printf("  %-14s %10.0f req/s  p50 %7.0f ns  p99 %7.0f ns  %6.2f allocs/req  %8.1f B/req",
              label, run.requests_per_sec, run.ns_per_request_p50, run.ns_per_request_p99,
              run.allocs_per_request, run.bytes_per_request);
  if (run.perf_valid) {
    std::printf("  IPC %4.2f  %5.2f LLC-miss/req", run.ipc, run.llc_misses_per_request);
  }
  std::printf("\n");
}

void WriteRunJson(std::ofstream& out, const char* indent, const SingleThreadRun& run) {
  out << indent << "\"requests\": " << run.requests << ",\n"
      << indent << "\"wall_seconds\": " << run.wall_seconds << ",\n"
      << indent << "\"requests_per_sec\": " << run.requests_per_sec << ",\n"
      << indent << "\"ns_per_request_p50\": " << run.ns_per_request_p50 << ",\n"
      << indent << "\"ns_per_request_p99\": " << run.ns_per_request_p99 << ",\n"
      << indent << "\"allocs_per_request\": " << run.allocs_per_request << ",\n"
      << indent << "\"bytes_per_request\": " << run.bytes_per_request << ",\n"
      << indent << "\"perf_valid\": " << (run.perf_valid ? "true" : "false") << ",\n"
      << indent << "\"ipc\": " << run.ipc << ",\n"
      << indent << "\"llc_misses_per_request\": " << run.llc_misses_per_request << ",\n"
      << indent << "\"branch_misses_per_request\": " << run.branch_misses_per_request << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv, {"--out"});
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("fig7 six servers", scale.seed);
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") {
      out_path = argv[i + 1];
    }
  }
  bench::PrintHeader(
      "Hot-path replay throughput: flat containers vs node-based reference",
      "engineering baseline (no paper figure); batched admission + software "
      "prefetch target >= 2x the unbatched flat Cafe baseline at bit-identical results",
      scale);
  if (!util::AllocHookActive()) {
    std::fprintf(stderr, "error: vcdn_alloc_hook not linked; allocation columns would lie\n");
    return 1;
  }

  core::CacheConfig config = bench::PaperConfig(1.0, 2.0, scale);
  std::vector<trace::ServerProfile> profiles = trace::PaperServerProfiles(scale.workload_scale);
  std::vector<trace::Trace> traces = bench::MakeServerTraces(profiles, scale, flags);
  uint64_t total_requests = 0;
  for (const trace::Trace& t : traces) {
    total_requests += t.requests.size();
  }
  std::printf("Workload: %zu servers, %llu requests total, batch %zu\n\n", traces.size(),
              static_cast<unsigned long long>(total_requests), flags.batch);

  // Single-thread A/B: per algorithm, median of --repeat runs.
  struct Pair {
    const char* label;
    core::CacheKind flat;
    core::CacheKind reference;
  };
  const Pair pairs[] = {
      {"xLRU", core::CacheKind::kXlru, core::CacheKind::kXlruRef},
      {"Cafe", core::CacheKind::kCafe, core::CacheKind::kCafeRef},
  };
  std::vector<std::vector<SingleThreadRun>> runs_flat(2);
  std::vector<std::vector<SingleThreadRun>> runs_ref(2);
  // With any obs flag set, only the LAST repeat carries the instruments --
  // the same "only the last repeat records" rule as RunCacheJobs
  // (bench_common.h). At --repeat >= 3 the instrumented repeat is the
  // slowest and never the median, so the tracked headline stays the
  // uninstrumented hot path (acceptance bound: obs-enabled medians within
  // 5% of the committed baseline); the gap it leaves in
  // repeat_requests_per_sec_* IS the visible hot-path telemetry cost. At
  // --repeat 1 the single run is both instrumented and the headline.
  for (size_t k = 0; k < flags.repeat; ++k) {
    const bool last_repeat = (k + 1 == flags.repeat);
    obs::MetricsRegistry* st_metrics =
        last_repeat && obs.any_enabled() ? obs.metrics() : nullptr;
    obs::FlightRecorder* st_flight = last_repeat ? obs.flight() : nullptr;
    for (size_t p = 0; p < 2; ++p) {
      runs_flat[p].push_back(
          ReplaySingleThread(pairs[p].flat, traces, config, flags.batch, st_metrics, st_flight));
      runs_ref[p].push_back(ReplaySingleThread(pairs[p].reference, traces, config, flags.batch,
                                               st_metrics, st_flight));
    }
  }
  double combined_flat = 0.0;
  double combined_ref = 0.0;
  std::printf("Single-thread replay (median of %zu repeat%s):\n", flags.repeat,
              flags.repeat == 1 ? "" : "s");
  std::vector<const SingleThreadRun*> median_flat(2);
  std::vector<const SingleThreadRun*> median_ref(2);
  for (size_t p = 0; p < 2; ++p) {
    median_flat[p] = &MedianRun(runs_flat[p]);
    median_ref[p] = &MedianRun(runs_ref[p]);
    std::printf("%s:\n", pairs[p].label);
    PrintRun("flat", *median_flat[p]);
    PrintRun("reference", *median_ref[p]);
    std::printf("  speedup %.2fx\n",
                median_flat[p]->requests_per_sec / median_ref[p]->requests_per_sec);
    combined_flat += median_flat[p]->wall_seconds;
    combined_ref += median_ref[p]->wall_seconds;
  }
  double combined_speedup = combined_ref / combined_flat;
  std::printf("Combined wall: flat %.2fs vs reference %.2fs -> %.2fx\n\n", combined_flat,
              combined_ref, combined_speedup);

  // Batch-size sweep of the flat caches: how much of the throughput comes
  // from the software-prefetch pipeline (batch 1 = no lookahead).
  std::vector<std::vector<SingleThreadRun>> sweep(2);
  std::printf("Flat batch-size sweep (1 run each):\n");
  for (size_t p = 0; p < 2; ++p) {
    std::printf("%s:\n", pairs[p].label);
    for (size_t batch : kSweepBatches) {
      sweep[p].push_back(ReplaySingleThread(pairs[p].flat, traces, config, batch));
      char label[32];
      std::snprintf(label, sizeof(label), "batch %zu", batch);
      PrintRun(label, sweep[p].back());
    }
  }
  std::printf("\n");

  // Fleet comparison at --threads: 6 servers x {xLRU, Cafe} per policy. The
  // digests must match -- the whole point of the flat containers is identical
  // results, faster.
  std::vector<bench::CacheJob> flat_jobs;
  std::vector<bench::CacheJob> ref_jobs;
  for (size_t s = 0; s < profiles.size(); ++s) {
    for (const Pair& pair : pairs) {
      flat_jobs.push_back(bench::CacheJob{profiles[s].name, pair.flat, config, &traces[s]});
      ref_jobs.push_back(bench::CacheJob{profiles[s].name, pair.reference, config, &traces[s]});
    }
  }
  // The obs instruments ride the flat fleet only (the tracked baseline);
  // attaching to both fleets would interleave two replays of the same
  // timeline in one series.
  std::printf("Fleet (flat):      ");
  std::vector<sim::ReplayResult> flat_results = bench::RunCacheJobs(flat_jobs, flags, &obs);
  std::printf("Fleet (reference): ");
  std::vector<sim::ReplayResult> ref_results = bench::RunCacheJobs(ref_jobs, flags);
  VCDN_CHECK(flat_results.size() == ref_results.size());
  for (size_t i = 0; i < flat_results.size(); ++i) {
    VCDN_CHECK_MSG(flat_results[i].totals.served_requests == ref_results[i].totals.served_requests &&
                       flat_results[i].totals.filled_chunks == ref_results[i].totals.filled_chunks &&
                       flat_results[i].totals.evicted_chunks == ref_results[i].totals.evicted_chunks,
                   "flat and reference containers diverged -- replay is no longer bit-identical");
  }
  std::printf("Flat vs reference replay totals: identical across %zu jobs\n", flat_results.size());

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  obs::RunMetadata meta = obs::CollectRunMetadata();
  meta.workload = "fig7 six servers";
  meta.seed = scale.seed;
  meta.threads = flags.threads;
  meta.batch = flags.batch;
  out << "{\n"
      << "  \"bench\": \"bench_replay_throughput\",\n"
      << "  \"meta\": ";
  obs::WriteRunMetadataJson(out, meta);
  out << ",\n"
      << "  \"workload\": {\n"
      << "    \"figure\": \"fig7 six servers\",\n"
      << "    \"scale\": " << scale.workload_scale << ",\n"
      << "    \"days\": " << scale.days << ",\n"
      << "    \"chunks_per_paper_tb\": " << scale.chunks_per_paper_tb << ",\n"
      << "    \"seed\": " << scale.seed << ",\n"
      << "    \"servers\": " << traces.size() << ",\n"
      << "    \"requests\": " << total_requests << "\n"
      << "  },\n"
      << "  \"repeat\": " << flags.repeat << ",\n"
      << "  \"batch\": " << flags.batch << ",\n"
      << "  \"headline\": \"median\",\n"
      << "  \"alloc_hook_active\": true,\n"
      << "  \"single_thread\": {\n";
  for (size_t p = 0; p < 2; ++p) {
    out << "    \"" << pairs[p].label << "\": {\n"
        << "      \"flat\": {\n";
    WriteRunJson(out, "        ", *median_flat[p]);
    out << "      },\n"
        << "      \"reference\": {\n";
    WriteRunJson(out, "        ", *median_ref[p]);
    out << "      },\n"
        << "      \"speedup\": "
        << median_flat[p]->requests_per_sec / median_ref[p]->requests_per_sec << ",\n"
        << "      \"repeat_requests_per_sec_flat\": [";
    for (size_t k = 0; k < runs_flat[p].size(); ++k) {
      out << (k > 0 ? ", " : "") << runs_flat[p][k].requests_per_sec;
    }
    out << "],\n      \"repeat_requests_per_sec_reference\": [";
    for (size_t k = 0; k < runs_ref[p].size(); ++k) {
      out << (k > 0 ? ", " : "") << runs_ref[p][k].requests_per_sec;
    }
    out << "]\n    }" << (p == 0 ? "," : "") << "\n";
  }
  out << "  },\n"
      << "  \"batch_sweep\": {\n";
  for (size_t p = 0; p < 2; ++p) {
    out << "    \"" << pairs[p].label << "\": [\n";
    for (size_t b = 0; b < sweep[p].size(); ++b) {
      out << "      {\n"
          << "        \"batch\": " << kSweepBatches[b] << ",\n";
      WriteRunJson(out, "        ", sweep[p][b]);
      out << "      }" << (b + 1 < sweep[p].size() ? "," : "") << "\n";
    }
    out << "    ]" << (p == 0 ? "," : "") << "\n";
  }
  out << "  },\n"
      << "  \"combined_single_thread_speedup\": " << combined_speedup << ",\n"
      << "  \"fleet\": {\n"
      << "    \"jobs\": " << flat_jobs.size() << ",\n"
      << "    \"digest_match\": true\n"
      << "  }\n"
      << "}\n";
  std::printf("Wrote %s (combined single-thread speedup %.2fx)\n", out_path.c_str(),
              combined_speedup);
  return obs.WriteIfRequested().ok() ? 0 : 1;
}
