// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "bench/bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/str_util.h"

namespace vcdn::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  double parsed = 0.0;
  if (!util::ParseDouble(value, &parsed) || parsed <= 0.0) {
    std::fprintf(stderr, "warning: ignoring invalid %s=%s\n", name, value);
    return fallback;
  }
  return parsed;
}

}  // namespace

BenchScale ScaleFromEnv() {
  BenchScale scale;
  scale.workload_scale = EnvDouble("VCDN_BENCH_SCALE", scale.workload_scale);
  scale.days = EnvDouble("VCDN_BENCH_DAYS", scale.days);
  scale.chunks_per_paper_tb = EnvDouble("VCDN_BENCH_DISK_SCALE", scale.chunks_per_paper_tb);
  scale.seed = static_cast<uint64_t>(EnvDouble("VCDN_BENCH_SEED", 1.0));
  return scale;
}

BenchScale ResolveScale(const BenchFlags& flags) {
  BenchScale scale = ScaleFromEnv();
  if (flags.scale > 0.0) {
    scale.workload_scale = flags.scale;
  }
  return scale;
}

BenchFlags FlagsFromArgs(int argc, char** argv,
                         const std::vector<std::string>& extra_value_flags) {
  // Every accepted flag takes exactly one value. The obs flags are consumed
  // (and their values interpreted) by BenchObs; extras by the bench itself.
  static const char* const kSharedValueFlags[] = {
      "--threads", "--repeat", "--batch", "--scale",
      "--obs-json", "--obs-series", "--flight", "--post-mortem",
  };
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool known = false;
    for (const char* shared : kSharedValueFlags) {
      if (arg == shared) {
        known = true;
        break;
      }
    }
    if (!known) {
      for (const std::string& extra : extra_value_flags) {
        if (arg == extra) {
          known = true;
          break;
        }
      }
    }
    if (!known) {
      if (arg.rfind("--", 0) == 0) {
        std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      } else {
        std::fprintf(stderr, "error: unexpected positional argument '%s'\n", arg.c_str());
      }
      std::exit(2);
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: flag '%s' is missing its value\n", arg.c_str());
      std::exit(2);
    }
    const char* value = argv[++i];
    // The three counts owned here (and --flight's capacity, owned by
    // BenchObs) must be valid unsigned integers; a typo must not silently
    // fall back to a default.
    if (arg == "--threads" || arg == "--repeat" || arg == "--batch" || arg == "--flight") {
      uint64_t parsed = 0;
      if (!util::ParseUint64(value, &parsed)) {
        std::fprintf(stderr, "error: invalid value '%s' for flag '%s'\n", value, arg.c_str());
        std::exit(2);
      }
      if (arg == "--threads") {
        flags.threads = static_cast<size_t>(parsed);
      } else if (arg == "--repeat") {
        flags.repeat = std::max<size_t>(1, static_cast<size_t>(parsed));
      } else if (arg == "--batch") {
        flags.batch = std::max<size_t>(1, static_cast<size_t>(parsed));
      }
    } else if (arg == "--scale") {
      double parsed = 0.0;
      if (!util::ParseDouble(value, &parsed) || !std::isfinite(parsed) || parsed <= 0.0) {
        std::fprintf(stderr, "error: invalid value '%s' for flag '--scale' (need a positive number)\n",
                     value);
        std::exit(2);
      }
      flags.scale = parsed;
    }
  }
  return flags;
}

trace::WorkloadConfig ServerWorkloadConfig(const trace::ServerProfile& profile, size_t index,
                                           const BenchScale& scale) {
  trace::WorkloadConfig config;
  config.profile = profile;
  config.seed = util::SplitSeed(scale.seed, index);
  config.duration_seconds = scale.duration_seconds();
  return config;
}

trace::Trace MakeServerTrace(trace::ServerProfile profile, const BenchScale& scale) {
  trace::WorkloadConfig config;
  config.profile = std::move(profile);
  config.seed = scale.seed;
  config.duration_seconds = scale.duration_seconds();
  return trace::WorkloadGenerator(config).Generate().trace;
}

trace::Trace MakeEuropeTrace(const BenchScale& scale) {
  return MakeServerTrace(trace::EuropeProfile(scale.workload_scale), scale);
}

std::vector<trace::Trace> MakeServerTraces(const std::vector<trace::ServerProfile>& profiles,
                                           const BenchScale& scale, const BenchFlags& flags) {
  std::vector<trace::WorkloadConfig> configs;
  configs.reserve(profiles.size());
  for (size_t i = 0; i < profiles.size(); ++i) {
    configs.push_back(ServerWorkloadConfig(profiles[i], i, scale));
  }
  trace::ParallelGenerateOptions options;
  options.threads = flags.threads;
  std::vector<trace::Trace> traces;
  traces.reserve(profiles.size());
  for (trace::GeneratedWorkload& workload : trace::GenerateWorkloads(configs, options)) {
    traces.push_back(std::move(workload.trace));
  }
  return traces;
}

core::CacheConfig PaperConfig(double paper_terabytes, double alpha, const BenchScale& scale) {
  core::CacheConfig config;
  config.chunk_bytes = core::kDefaultChunkBytes;
  config.disk_capacity_chunks = scale.DiskChunks(paper_terabytes);
  config.alpha_f2r = alpha;
  return config;
}

BenchObs::BenchObs(int argc, char** argv) : meta_(obs::CollectRunMetadata()) {
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--obs-json") {
      path_ = argv[i + 1];
    } else if (arg == "--obs-series") {
      series_path_ = argv[i + 1];
    } else if (arg == "--post-mortem") {
      post_mortem_path_ = argv[i + 1];
    } else if (arg == "--flight") {
      uint64_t parsed = 0;
      if (!util::ParseUint64(argv[i + 1], &parsed) || parsed == 0) {
        std::fprintf(stderr, "warning: ignoring invalid --flight %s\n", argv[i + 1]);
      } else {
        flight_capacity_ = static_cast<size_t>(parsed);
      }
    }
  }
  if (flight_enabled()) {
    flight_ = std::make_unique<obs::FlightRecorder>(flight_capacity_);
    if (!post_mortem_path_.empty()) {
      // From here on, any VCDN_CHECK failure (including a fleet digest
      // mismatch) dumps the ring to the post-mortem path before aborting.
      // Re-armed by SetWorkload/SetRunShape so the dump header carries the
      // most recent run-shape metadata.
      RearmCrashDump();
    }
  }
}

BenchObs::~BenchObs() {
  if (flight_ != nullptr) {
    obs::DisarmCrashDump(flight_.get());
  }
}

void BenchObs::RearmCrashDump() {
  obs::DisarmCrashDump(flight_.get());
  obs::PostMortemContext context;
  context.label = "main";
  obs::ArmCrashDump(flight_.get(), post_mortem_path_, meta_, std::move(context));
}

void BenchObs::SetWorkload(const std::string& workload, uint64_t seed) {
  meta_.workload = workload;
  meta_.seed = seed;
  if (flight_ != nullptr && !post_mortem_path_.empty()) {
    RearmCrashDump();
  }
}

void BenchObs::SetRunShape(size_t threads, size_t batch) {
  meta_.threads = threads;
  meta_.batch = batch;
  if (flight_ != nullptr && !post_mortem_path_.empty()) {
    RearmCrashDump();
  }
}

util::Status BenchObs::WriteIfRequested() {
  util::Status result = util::OkStatus();
  auto record = [&result](util::Status status) {
    if (!status.ok()) {
      std::fprintf(stderr, "warning: %s\n", std::string(status.message()).c_str());
      if (result.ok()) {
        result = std::move(status);
      }
    }
  };

  if (enabled()) {
    util::Status status = obs::WriteObsJsonFile(path_, &registry_, &sink_, &meta_);
    if (status.ok()) {
      std::printf("Observability dump written to %s (%zu trace events, %zu instruments)\n",
                  path_.c_str(), sink_.num_events(), registry_.num_instruments());
    }
    record(std::move(status));
  }

  if (series_enabled()) {
    util::Status status = series_.WriteJsonl(series_path_, meta_);
    if (status.ok()) {
      std::printf("Time series written to %s (%zu windows)\n", series_path_.c_str(),
                  series_.num_windows());
    }
    record(std::move(status));
  }

  if (flight_enabled() && !post_mortem_path_.empty()) {
    // Fault-boundary captures accumulated during the run; when none fired,
    // dump the final ring so the file always reflects the run's tail.
    if (captures_.empty()) {
      obs::PostMortemContext context;
      context.trigger = "run_end";
      context.label = "main";
      captures_.push_back(obs::CaptureFlight(*flight_, std::move(context)));
    }
    std::ofstream out(post_mortem_path_);
    if (!out) {
      record(util::InvalidArgumentError("cannot open post-mortem path: " + post_mortem_path_));
    } else {
      size_t records = 0;
      for (const obs::FlightCapture& capture : captures_) {
        obs::WritePostMortemJsonl(out, meta_, capture);
        records += capture.records.size();
      }
      out.flush();
      if (!out) {
        record(util::DataLossError("short write to post-mortem path: " + post_mortem_path_));
      } else {
        std::printf("Post-mortem written to %s (%zu capture%s, %zu records)\n",
                    post_mortem_path_.c_str(), captures_.size(),
                    captures_.size() == 1 ? "" : "s", records);
      }
    }
    // The run completed; disarm so a late CHECK cannot clobber the dump.
    obs::DisarmCrashDump(flight_.get());
  }
  return result;
}

sim::ReplayOptions BenchObs::replay_options() {
  sim::ReplayOptions options;
  if (enabled() || series_enabled()) {
    options.metrics = &registry_;
  }
  if (enabled()) {
    options.trace_sink = &sink_;
  }
  if (series_enabled()) {
    options.series = &series_;
  }
  if (flight_enabled()) {
    options.flight = flight_.get();
    options.flight_captures = &captures_;
    options.flight_label = "main";
  }
  return options;
}

sim::ReplayResult RunCache(core::CacheKind kind, const trace::Trace& trace,
                           const core::CacheConfig& config, BenchObs* obs) {
  auto cache = core::MakeCache(kind, config);
  sim::ReplayOptions options;
  if (obs != nullptr && obs->any_enabled()) {
    options = obs->replay_options();
  }
  return sim::Replay(*cache, trace, options);
}

std::vector<sim::ReplayResult> RunCacheJobs(const std::vector<CacheJob>& jobs,
                                            const BenchFlags& flags, BenchObs* obs) {
  std::vector<sim::FleetServer> servers;
  servers.reserve(jobs.size());
  for (const CacheJob& job : jobs) {
    servers.push_back(sim::FleetServer{job.name, job.kind, job.config, job.trace});
  }

  sim::FleetResult fleet;
  uint64_t digest = 0;
  for (size_t k = 0; k < flags.repeat; ++k) {
    sim::FleetOptions options;
    options.threads = flags.threads;
    if (k + 1 == flags.repeat && obs != nullptr && obs->any_enabled()) {
      options.replay = obs->replay_options();
    }
    options.replay.batch_size = flags.batch;
    fleet = sim::RunFleet(servers, options);
    uint64_t d = sim::FleetDigest(fleet);
    if (k == 0) {
      digest = d;
    } else {
      VCDN_CHECK(d == digest);  // repeats of a deterministic fleet must agree
    }
  }
  if (obs != nullptr && obs->any_enabled()) {
    obs->SetRunShape(fleet.threads, flags.batch);
  }
  std::printf("Fleet: %zu jobs on %zu thread%s, %.2fs wall%s, digest %016llx\n", jobs.size(),
              fleet.threads, fleet.threads == 1 ? "" : "s", fleet.wall_seconds,
              flags.repeat > 1 ? (" (last of " + std::to_string(flags.repeat) + " repeats)").c_str()
                               : "",
              static_cast<unsigned long long>(digest));
  return std::move(fleet.servers);
}

MemoryUsage ReadMemoryUsage() {
  MemoryUsage usage;
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    double kb = 0.0;
    if (std::sscanf(line.c_str(), "VmRSS: %lf kB", &kb) == 1) {
      usage.rss_mb = kb / 1024.0;
    } else if (std::sscanf(line.c_str(), "VmHWM: %lf kB", &kb) == 1) {
      usage.peak_rss_mb = kb / 1024.0;
    }
  }
  return usage;
}

void RequireReleaseBuild() {
#ifndef NDEBUG
  const char* allow = std::getenv("VCDN_ALLOW_UNOPTIMIZED_BENCH");
  if (allow == nullptr || std::string(allow) != "1") {
    std::fprintf(stderr,
                 "error: this bench binary was built without NDEBUG (Debug or unoptimized "
                 "build).\n"
                 "Benchmark numbers from such a build are meaningless -- throughput knobs\n"
                 "like --batch N only show their effect under optimization. Rebuild with\n"
                 "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release\n"
                 "or set VCDN_ALLOW_UNOPTIMIZED_BENCH=1 to run anyway (smoke tests only).\n");
    std::abort();
  }
  std::fprintf(stderr,
               "warning: unoptimized bench build (VCDN_ALLOW_UNOPTIMIZED_BENCH=1); do not "
               "record these numbers\n");
#endif
}

void PrintHeader(const std::string& experiment, const std::string& paper_claim,
                 const BenchScale& scale) {
  RequireReleaseBuild();
  std::printf("==============================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf(
      "Scale: workload x%.3g, %.0f days, %.0f chunks per paper-TB, seed %llu\n"
      "       (set VCDN_BENCH_SCALE / VCDN_BENCH_DAYS / VCDN_BENCH_DISK_SCALE /\n"
      "        VCDN_BENCH_SEED to change)\n",
      scale.workload_scale, scale.days, scale.chunks_per_paper_tb,
      static_cast<unsigned long long>(scale.seed));
  std::printf("==============================================================================\n");
}

}  // namespace vcdn::bench
