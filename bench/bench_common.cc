// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/util/str_util.h"

namespace vcdn::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  double parsed = 0.0;
  if (!util::ParseDouble(value, &parsed) || parsed <= 0.0) {
    std::fprintf(stderr, "warning: ignoring invalid %s=%s\n", name, value);
    return fallback;
  }
  return parsed;
}

}  // namespace

BenchScale ScaleFromEnv() {
  BenchScale scale;
  scale.workload_scale = EnvDouble("VCDN_BENCH_SCALE", scale.workload_scale);
  scale.days = EnvDouble("VCDN_BENCH_DAYS", scale.days);
  scale.chunks_per_paper_tb = EnvDouble("VCDN_BENCH_DISK_SCALE", scale.chunks_per_paper_tb);
  scale.seed = static_cast<uint64_t>(EnvDouble("VCDN_BENCH_SEED", 1.0));
  return scale;
}

trace::Trace MakeServerTrace(trace::ServerProfile profile, const BenchScale& scale) {
  trace::WorkloadConfig config;
  config.profile = std::move(profile);
  config.seed = scale.seed;
  config.duration_seconds = scale.duration_seconds();
  return trace::WorkloadGenerator(config).Generate().trace;
}

trace::Trace MakeEuropeTrace(const BenchScale& scale) {
  return MakeServerTrace(trace::EuropeProfile(scale.workload_scale), scale);
}

core::CacheConfig PaperConfig(double paper_terabytes, double alpha, const BenchScale& scale) {
  core::CacheConfig config;
  config.chunk_bytes = core::kDefaultChunkBytes;
  config.disk_capacity_chunks = scale.DiskChunks(paper_terabytes);
  config.alpha_f2r = alpha;
  return config;
}

BenchObs::BenchObs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--obs-json") {
      path_ = argv[i + 1];
      return;
    }
  }
}

void BenchObs::WriteIfRequested() {
  if (!enabled()) {
    return;
  }
  std::ofstream out(path_);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
    return;
  }
  obs::WriteObsJson(out, &registry_, &sink_);
  std::printf("Observability dump written to %s (%zu trace events, %zu instruments)\n",
              path_.c_str(), sink_.num_events(), registry_.num_instruments());
}

sim::ReplayResult RunCache(core::CacheKind kind, const trace::Trace& trace,
                           const core::CacheConfig& config, BenchObs* obs) {
  auto cache = core::MakeCache(kind, config);
  sim::ReplayOptions options;
  if (obs != nullptr && obs->enabled()) {
    options.metrics = obs->metrics();
    options.trace_sink = obs->trace_sink();
  }
  return sim::Replay(*cache, trace, options);
}

void PrintHeader(const std::string& experiment, const std::string& paper_claim,
                 const BenchScale& scale) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf(
      "Scale: workload x%.3g, %.0f days, %.0f chunks per paper-TB, seed %llu\n"
      "       (set VCDN_BENCH_SCALE / VCDN_BENCH_DAYS / VCDN_BENCH_DISK_SCALE /\n"
      "        VCDN_BENCH_SEED to change)\n",
      scale.workload_scale, scale.days, scale.chunks_per_paper_tb,
      static_cast<unsigned long long>(scale.seed));
  std::printf("==============================================================================\n");
}

}  // namespace vcdn::bench
