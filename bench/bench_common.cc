// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/str_util.h"

namespace vcdn::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  double parsed = 0.0;
  if (!util::ParseDouble(value, &parsed) || parsed <= 0.0) {
    std::fprintf(stderr, "warning: ignoring invalid %s=%s\n", name, value);
    return fallback;
  }
  return parsed;
}

}  // namespace

BenchScale ScaleFromEnv() {
  BenchScale scale;
  scale.workload_scale = EnvDouble("VCDN_BENCH_SCALE", scale.workload_scale);
  scale.days = EnvDouble("VCDN_BENCH_DAYS", scale.days);
  scale.chunks_per_paper_tb = EnvDouble("VCDN_BENCH_DISK_SCALE", scale.chunks_per_paper_tb);
  scale.seed = static_cast<uint64_t>(EnvDouble("VCDN_BENCH_SEED", 1.0));
  return scale;
}

BenchFlags FlagsFromArgs(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i + 1 < argc; ++i) {
    std::string arg = argv[i];
    if (arg != "--threads" && arg != "--repeat" && arg != "--batch") {
      continue;
    }
    uint64_t parsed = 0;
    if (!util::ParseUint64(argv[i + 1], &parsed)) {
      std::fprintf(stderr, "warning: ignoring invalid %s %s\n", arg.c_str(), argv[i + 1]);
      continue;
    }
    if (arg == "--threads") {
      flags.threads = static_cast<size_t>(parsed);
    } else if (arg == "--repeat") {
      flags.repeat = std::max<size_t>(1, static_cast<size_t>(parsed));
    } else {
      flags.batch = std::max<size_t>(1, static_cast<size_t>(parsed));
    }
  }
  return flags;
}

trace::Trace MakeServerTrace(trace::ServerProfile profile, const BenchScale& scale) {
  trace::WorkloadConfig config;
  config.profile = std::move(profile);
  config.seed = scale.seed;
  config.duration_seconds = scale.duration_seconds();
  return trace::WorkloadGenerator(config).Generate().trace;
}

trace::Trace MakeEuropeTrace(const BenchScale& scale) {
  return MakeServerTrace(trace::EuropeProfile(scale.workload_scale), scale);
}

std::vector<trace::Trace> MakeServerTraces(const std::vector<trace::ServerProfile>& profiles,
                                           const BenchScale& scale, const BenchFlags& flags) {
  std::vector<trace::WorkloadConfig> configs;
  configs.reserve(profiles.size());
  for (size_t i = 0; i < profiles.size(); ++i) {
    trace::WorkloadConfig config;
    config.profile = profiles[i];
    config.seed = util::SplitSeed(scale.seed, i);
    config.duration_seconds = scale.duration_seconds();
    configs.push_back(std::move(config));
  }
  trace::ParallelGenerateOptions options;
  options.threads = flags.threads;
  std::vector<trace::Trace> traces;
  traces.reserve(profiles.size());
  for (trace::GeneratedWorkload& workload : trace::GenerateWorkloads(configs, options)) {
    traces.push_back(std::move(workload.trace));
  }
  return traces;
}

core::CacheConfig PaperConfig(double paper_terabytes, double alpha, const BenchScale& scale) {
  core::CacheConfig config;
  config.chunk_bytes = core::kDefaultChunkBytes;
  config.disk_capacity_chunks = scale.DiskChunks(paper_terabytes);
  config.alpha_f2r = alpha;
  return config;
}

BenchObs::BenchObs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--obs-json") {
      path_ = argv[i + 1];
      return;
    }
  }
}

void BenchObs::WriteIfRequested() {
  if (!enabled()) {
    return;
  }
  std::ofstream out(path_);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
    return;
  }
  obs::WriteObsJson(out, &registry_, &sink_);
  std::printf("Observability dump written to %s (%zu trace events, %zu instruments)\n",
              path_.c_str(), sink_.num_events(), registry_.num_instruments());
}

sim::ReplayResult RunCache(core::CacheKind kind, const trace::Trace& trace,
                           const core::CacheConfig& config, BenchObs* obs) {
  auto cache = core::MakeCache(kind, config);
  sim::ReplayOptions options;
  if (obs != nullptr && obs->enabled()) {
    options.metrics = obs->metrics();
    options.trace_sink = obs->trace_sink();
  }
  return sim::Replay(*cache, trace, options);
}

std::vector<sim::ReplayResult> RunCacheJobs(const std::vector<CacheJob>& jobs,
                                            const BenchFlags& flags, BenchObs* obs) {
  std::vector<sim::FleetServer> servers;
  servers.reserve(jobs.size());
  for (const CacheJob& job : jobs) {
    servers.push_back(sim::FleetServer{job.name, job.kind, job.config, job.trace});
  }

  sim::FleetResult fleet;
  uint64_t digest = 0;
  for (size_t k = 0; k < flags.repeat; ++k) {
    sim::FleetOptions options;
    options.threads = flags.threads;
    options.replay.batch_size = flags.batch;
    if (k + 1 == flags.repeat && obs != nullptr && obs->enabled()) {
      options.replay.metrics = obs->metrics();
      options.replay.trace_sink = obs->trace_sink();
    }
    fleet = sim::RunFleet(servers, options);
    uint64_t d = sim::FleetDigest(fleet);
    if (k == 0) {
      digest = d;
    } else {
      VCDN_CHECK(d == digest);  // repeats of a deterministic fleet must agree
    }
  }
  std::printf("Fleet: %zu jobs on %zu thread%s, %.2fs wall%s, digest %016llx\n", jobs.size(),
              fleet.threads, fleet.threads == 1 ? "" : "s", fleet.wall_seconds,
              flags.repeat > 1 ? (" (last of " + std::to_string(flags.repeat) + " repeats)").c_str()
                               : "",
              static_cast<unsigned long long>(digest));
  return std::move(fleet.servers);
}

void RequireReleaseBuild() {
#ifndef NDEBUG
  const char* allow = std::getenv("VCDN_ALLOW_UNOPTIMIZED_BENCH");
  if (allow == nullptr || std::string(allow) != "1") {
    std::fprintf(stderr,
                 "error: this bench binary was built without NDEBUG (Debug or unoptimized "
                 "build).\n"
                 "Benchmark numbers from such a build are meaningless -- throughput knobs\n"
                 "like --batch N only show their effect under optimization. Rebuild with\n"
                 "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release\n"
                 "or set VCDN_ALLOW_UNOPTIMIZED_BENCH=1 to run anyway (smoke tests only).\n");
    std::abort();
  }
  std::fprintf(stderr,
               "warning: unoptimized bench build (VCDN_ALLOW_UNOPTIMIZED_BENCH=1); do not "
               "record these numbers\n");
#endif
}

void PrintHeader(const std::string& experiment, const std::string& paper_claim,
                 const BenchScale& scale) {
  RequireReleaseBuild();
  std::printf("==============================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf(
      "Scale: workload x%.3g, %.0f days, %.0f chunks per paper-TB, seed %llu\n"
      "       (set VCDN_BENCH_SCALE / VCDN_BENCH_DAYS / VCDN_BENCH_DISK_SCALE /\n"
      "        VCDN_BENCH_SEED to change)\n",
      scale.workload_scale, scale.days, scale.chunks_per_paper_tb,
      static_cast<unsigned long long>(scale.seed));
  std::printf("==============================================================================\n");
}

}  // namespace vcdn::bench
