// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Ablation of the Sec. 10 future-work features implemented in this library:
//
//   [1] dynamic alpha_F2R control loop: the controller holds a server's
//       ingress near an operator budget across the diurnal cycle, versus
//       fixed-alpha operating points;
//   [2] proactive caching for spare ingress: off-peak prefetching of popular
//       uncached chunks, versus vanilla Cafe;
//   [3] the FillLFU classic baseline, versus FillLRU/xLRU/Cafe, quantifying
//       that frequency-based *replacement* alone does not solve the
//       fill-vs-redirect problem either.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/core/adaptive_alpha.h"
#include "src/core/cafe_cache.h"
#include "src/util/str_util.h"

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv);
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("ablation extensions", scale.seed);
  bench::PrintHeader(
      "Ablation: Sec. 10 extensions (adaptive alpha, proactive caching, LFU baseline)",
      "future work in the paper; implemented here on top of Cafe Cache",
      scale);

  trace::Trace trace = bench::MakeEuropeTrace(scale);

  std::printf("\n[1] Dynamic alpha_F2R control loop (ingress budget tracking):\n");
  util::TextTable adaptive_table(
      {"configuration", "efficiency", "ingress %", "redirect %", "final alpha"});
  for (double alpha : {1.0, 2.0, 4.0}) {
    core::CacheConfig config = bench::PaperConfig(1.0, alpha, scale);
    sim::ReplayResult fixed = bench::RunCache(core::CacheKind::kCafe, trace, config, &obs);
    adaptive_table.AddRow({"fixed alpha=" + util::FormatDouble(alpha, 1),
                           util::FormatPercent(fixed.efficiency),
                           util::FormatPercent(fixed.ingress_fraction),
                           util::FormatPercent(fixed.redirect_fraction), "-"});
  }
  for (double budget : {0.02, 0.05, 0.10}) {
    core::CacheConfig config = bench::PaperConfig(1.0, 2.0, scale);
    core::AdaptiveAlphaOptions options;
    options.target_ingress_fraction = budget;
    options.min_alpha = 0.5;
    options.max_alpha = 8.0;
    auto inner = std::make_unique<core::CafeCache>(config);
    core::AdaptiveAlphaCache cache(std::move(inner), options);
    sim::ReplayResult result = sim::Replay(cache, trace, obs.replay_options());
    adaptive_table.AddRow({"budget ingress<=" + util::FormatPercent(budget, 0),
                           util::FormatPercent(result.efficiency),
                           util::FormatPercent(result.ingress_fraction),
                           util::FormatPercent(result.redirect_fraction),
                           util::FormatDouble(cache.current_alpha(), 2)});
  }
  std::printf("%s\n", adaptive_table.ToString().c_str());

  std::printf("[2] Proactive caching for spare ingress (off-peak prefetch):\n");
  util::TextTable proactive_table(
      {"configuration", "efficiency", "ingress %", "redirect %", "proactive chunks"});
  for (bool proactive : {false, true}) {
    core::CacheConfig config = bench::PaperConfig(1.0, 2.0, scale);
    core::CafeOptions options;
    options.proactive = proactive;
    core::CafeCache cache(config, options);
    sim::ReplayResult result = sim::Replay(cache, trace, obs.replay_options());
    proactive_table.AddRow({proactive ? "Cafe + proactive" : "Cafe (vanilla)",
                            util::FormatPercent(result.efficiency),
                            util::FormatPercent(result.ingress_fraction),
                            util::FormatPercent(result.redirect_fraction),
                            std::to_string(result.steady.proactive_filled_chunks)});
  }
  std::printf("%s\n", proactive_table.ToString().c_str());
  std::printf(
      "    Note: prefetches use spare off-peak uplink (modelled at %.0f%% of C_F), but\n"
      "    Eq. (2) charges them the full C_F -- the efficiency column therefore\n"
      "    understates the real benefit; the win is daytime ingress shifted to night.\n\n",
      core::CafeOptions{}.proactive_cost_discount * 100.0);

  std::printf("[3] Classic replacement baselines vs admission-aware caches (alpha=2):\n");
  util::TextTable baseline_table({"cache", "efficiency", "ingress %", "redirect %"});
  core::CacheConfig config = bench::PaperConfig(1.0, 2.0, scale);
  for (auto kind : {core::CacheKind::kFillLru, core::CacheKind::kFillLfu, core::CacheKind::kXlru,
                    core::CacheKind::kCafe, core::CacheKind::kBelady}) {
    sim::ReplayResult r = bench::RunCache(kind, trace, config, &obs);
    baseline_table.AddRow({r.cache_name, util::FormatPercent(r.efficiency),
                           util::FormatPercent(r.ingress_fraction),
                           util::FormatPercent(r.redirect_fraction)});
  }
  std::printf("%s\n", baseline_table.ToString().c_str());
  return obs.WriteIfRequested().ok() ? 0 : 1;
}
