// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Ablation quantifying the Sec. 2 observation that motivates ingress-
// constrained operation: "for every extra write-block operation we lose
// 1.2-1.3 reads" on disk-constrained servers. Cache-fill traffic is not
// free even when the uplink is: every filled chunk is a disk write that
// steals read capacity from cache-hit serving.
//
// This bench replays each algorithm and reports, per alpha, the disk write
// load (filled chunks) and the implied lost read capacity at the paper's
// 1.2-1.3x write-to-read interference ratio, i.e. how much egress headroom
// each algorithm's ingress discipline buys on a saturated server.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/str_util.h"

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv);
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("ablation disk interference", scale.seed);
  bench::PrintHeader(
      "Ablation: disk write interference of cache-fill (Sec. 2)",
      "every extra write-block costs 1.2-1.3 reads; conservative ingress (alpha>1) "
      "preserves read capacity on disk-constrained servers",
      scale);

  trace::Trace trace = bench::MakeEuropeTrace(scale);
  const double interference[] = {1.2, 1.3};

  util::TextTable table({"alpha", "cache", "writes (chunks)", "reads lost @1.2x",
                         "reads lost @1.3x", "lost / served reads"});
  for (double alpha : {1.0, 2.0, 4.0}) {
    core::CacheConfig config = bench::PaperConfig(1.0, alpha, scale);
    for (auto kind : {core::CacheKind::kFillLru, core::CacheKind::kXlru, core::CacheKind::kCafe}) {
      sim::ReplayResult r = bench::RunCache(kind, trace, config, &obs);
      uint64_t writes = r.steady.filled_chunks;
      // Reads are served chunk accesses: approximate by served bytes / chunk.
      double served_reads =
          static_cast<double>(r.steady.served_bytes) / static_cast<double>(config.chunk_bytes);
      double lost_low = static_cast<double>(writes) * interference[0];
      double lost_high = static_cast<double>(writes) * interference[1];
      table.AddRow({util::FormatDouble(alpha, 1), r.cache_name, std::to_string(writes),
                    util::FormatDouble(lost_low, 0), util::FormatDouble(lost_high, 0),
                    util::FormatPercent(served_reads > 0 ? lost_high / served_reads : 0.0)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: on a disk-saturated server the 'lost reads' column is egress the server\n"
      "cannot serve because it is busy ingesting; Cafe at alpha>=2 reduces that loss by\n"
      "an order of magnitude versus always-fill LRU while keeping redirects bounded.\n");
  return obs.WriteIfRequested().ok() ? 0 : 1;
}
