// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Ablation of footnote 2: dividing a site's file-ID space over co-located
// servers with hash-mod bucketization, versus per-request random splitting.
// The paper calls hash-mod "a feasible (and recommended) practice for
// dividing the file ID space over co-located servers to balance load and
// minimize co-located duplicates"; this bench quantifies both halves of that
// claim (load balance and the aggregate efficiency cost of splitting).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/colocation.h"
#include "src/util/str_util.h"

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv);
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("ablation colocation", scale.seed);
  bench::PrintHeader(
      "Ablation: co-located servers, hash-mod vs random request splitting (footnote 2)",
      "hash-mod balances load and avoids co-located duplicates; random splitting "
      "dilutes per-server popularity",
      scale);

  trace::Trace site = bench::MakeEuropeTrace(scale);
  // A site of N co-located servers sharing the paper's 1 TB (split evenly).
  core::CacheConfig total = bench::PaperConfig(1.0, 2.0, scale);

  util::TextTable table({"servers", "policy", "combined eff", "ingress %", "redirect %",
                         "load imbalance"});
  for (size_t servers : {1u, 2u, 4u, 8u}) {
    for (auto policy : {sim::ColocationPolicy::kHashMod, sim::ColocationPolicy::kRandom}) {
      if (servers == 1 && policy == sim::ColocationPolicy::kRandom) {
        continue;  // identical to hash-mod with one server
      }
      sim::ColocationConfig config;
      config.num_servers = servers;
      config.policy = policy;
      config.kind = core::CacheKind::kCafe;
      config.per_server_config = total;
      config.per_server_config.disk_capacity_chunks =
          std::max<uint64_t>(1, total.disk_capacity_chunks / servers);
      sim::ColocationResult result = sim::RunColocated(site, config);
      table.AddRow({std::to_string(servers),
                    policy == sim::ColocationPolicy::kHashMod ? "hash-mod" : "random",
                    util::FormatPercent(result.combined_efficiency),
                    util::FormatPercent(result.combined_ingress_fraction),
                    util::FormatPercent(result.combined_redirect_fraction),
                    util::FormatDouble(result.load_imbalance, 2)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: hash-mod sharding preserves nearly all of the monolithic cache's\n"
      "efficiency while keeping byte-load imbalance low; random splitting shows each\n"
      "server a diluted popularity signal and degrades the aggregate.\n");
  return obs.WriteIfRequested().ok() ? 0 : 1;
}
