// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Paper-scale streaming replay sweep: the Fig. 7 six-server fleet (xLRU and
// Cafe per server) replayed at --scales {0.25, 0.5, 1.0} through
// trace::GeneratedStream -- requests are generated as they are replayed, a
// window at a time, on a DEDICATED generator pool so generation overlaps
// replay (never the fleet pool: src/trace/generated_stream.h documents the
// deadlock). Nothing is ever materialized, so peak RSS stays bounded by the
// lookahead instead of growing with trace length; scale 1.0 is the paper's
// full month at full request rate.
//
// Reports per scale: fleet requests/sec (wall clock INCLUDES generation --
// that is the point), peak RSS (VmHWM from /proc/self/status), and the
// generation-overlap efficiency (the fraction of generator wall time hidden
// behind replay, from trace::GeneratedStreamStats).
//
// Before the sweep, a three-way equivalence check at the smallest scale
// CHECKs that {materialized replay, generated stream, mmap'd packed file}
// produce the same sim::FleetDigest at the run's thread count and batch
// size -- the throughput numbers are only meaningful while streaming stays
// bit-identical to the reference path (the full threads x batch x producer
// matrix lives in tests/sim_replay_stream_test).
//
// Writes BENCH_scale.json (--out), gated in CI by
// tools/check_bench_regression.py. --repeat K medians each scale's
// requests/sec (lower median, same rule as bench_replay_throughput).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/run_metadata.h"
#include "src/trace/generated_stream.h"
#include "src/trace/trace_file.h"
#include "src/util/check.h"
#include "src/util/str_util.h"

namespace {

using Clock = std::chrono::steady_clock;

struct ScaleRun {
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
  uint64_t requests = 0;
  uint64_t digest = 0;
  double generate_seconds = 0.0;
  double consumer_wait_seconds = 0.0;
  double overlap_efficiency = 1.0;
};

// Lower median by requests/sec, the repo-wide headline rule (the committed
// number one consistent run produced, not a synthetic average).
const ScaleRun& MedianRun(const std::vector<ScaleRun>& runs) {
  VCDN_CHECK(!runs.empty());
  std::vector<size_t> order(runs.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return runs[a].requests_per_sec < runs[b].requests_per_sec;
  });
  return runs[order[(order.size() - 1) / 2]];
}

std::vector<double> ParseScales(int argc, char** argv) {
  std::vector<double> scales = {0.25, 0.5, 1.0};
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) != "--scales") {
      continue;
    }
    scales.clear();
    const std::string list = argv[i + 1];
    size_t begin = 0;
    while (begin < list.size()) {
      const size_t comma = list.find(',', begin);
      const size_t end = comma == std::string::npos ? list.size() : comma;
      double parsed = 0.0;
      if (!vcdn::util::ParseDouble(list.substr(begin, end - begin), &parsed) || parsed <= 0.0) {
        std::fprintf(stderr, "error: invalid --scales entry '%s'\n",
                     list.substr(begin, end - begin).c_str());
        std::exit(2);
      }
      scales.push_back(parsed);
      if (comma == std::string::npos) {
        break;
      }
      begin = comma + 1;
    }
    if (scales.empty()) {
      std::fprintf(stderr, "error: --scales needs at least one value\n");
      std::exit(2);
    }
  }
  std::sort(scales.begin(), scales.end());
  return scales;
}

std::string FormatScale(double scale) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", scale);
  return buf;
}

// The 12 fleet shards (6 servers x {xLRU, Cafe}; Psychic is offline --
// CacheAlgorithm::requires_full_trace -- and cannot replay a stream).
struct Shard {
  std::string name;
  vcdn::core::CacheKind kind;
  vcdn::trace::WorkloadConfig workload;
};

std::vector<Shard> MakeShards(const vcdn::bench::BenchScale& scale) {
  using namespace vcdn;
  std::vector<trace::ServerProfile> profiles = trace::PaperServerProfiles(scale.workload_scale);
  std::vector<Shard> shards;
  for (size_t s = 0; s < profiles.size(); ++s) {
    const trace::WorkloadConfig workload = bench::ServerWorkloadConfig(profiles[s], s, scale);
    shards.push_back({profiles[s].name + "/xLRU", core::CacheKind::kXlru, workload});
    shards.push_back({profiles[s].name + "/Cafe", core::CacheKind::kCafe, workload});
  }
  return shards;
}

uint64_t RunFleetDigest(const std::vector<vcdn::sim::FleetServer>& servers,
                        const vcdn::bench::BenchFlags& flags) {
  vcdn::sim::FleetOptions options;
  options.threads = flags.threads;
  options.replay.batch_size = flags.batch;
  return vcdn::sim::FleetDigest(vcdn::sim::RunFleet(servers, options));
}

// Proves the three producers agree before any throughput number is trusted:
// materialized Replay, GeneratedStream (pooled lookahead), and an mmap'd
// packed file round-tripped through trace_pack's writer.
void CheckEquivalence(const vcdn::bench::BenchScale& scale, const vcdn::bench::BenchFlags& flags,
                      const std::string& scratch_path, uint64_t* digest_out) {
  using namespace vcdn;
  const std::vector<Shard> shards = MakeShards(scale);

  // Path 1: materialized traces (one per server, shared by both algorithms).
  std::vector<trace::Trace> traces;
  traces.reserve(shards.size() / 2);
  for (size_t i = 0; i < shards.size(); i += 2) {
    traces.push_back(trace::WorkloadGenerator(shards[i].workload).Generate().trace);
  }
  const core::CacheConfig cache_config = bench::PaperConfig(1.0, 2.0, scale);
  std::vector<sim::FleetServer> materialized;
  for (size_t i = 0; i < shards.size(); ++i) {
    materialized.push_back(
        sim::FleetServer{shards[i].name, shards[i].kind, cache_config, &traces[i / 2], {}});
  }
  const uint64_t reference = RunFleetDigest(materialized, flags);

  // Path 2: generate-as-you-replay on a dedicated generator pool.
  exec::ThreadPool generator_pool(exec::ThreadPoolOptions{});
  std::vector<sim::FleetServer> generated;
  for (const Shard& shard : shards) {
    sim::FleetServer server{shard.name, shard.kind, cache_config, nullptr, {}};
    const trace::WorkloadConfig workload = shard.workload;
    server.stream = [workload, &generator_pool]() -> std::unique_ptr<trace::RequestStream> {
      trace::GeneratedStreamOptions options;
      options.generator_pool = &generator_pool;
      return std::make_unique<trace::GeneratedStream>(workload, options);
    };
    generated.push_back(std::move(server));
  }
  const uint64_t streamed = RunFleetDigest(generated, flags);
  VCDN_CHECK_MSG(streamed == reference,
                 "generated-stream fleet digest diverged from materialized replay");

  // Path 3: pack to a temp VCDNTRS2 file, replay the mmap'd sections.
  {
    std::vector<const trace::Trace*> trace_ptrs;
    for (const trace::Trace& trace : traces) {
      trace_ptrs.push_back(&trace);
    }
    util::Status packed = trace::WriteTraceFile(trace_ptrs, scratch_path);
    VCDN_CHECK_MSG(packed.ok(), "packing the equivalence trace failed");
  }
  util::Result<trace::MmapTrace> mapped = trace::MmapTrace::Open(scratch_path);
  VCDN_CHECK_MSG(mapped.status().ok(), "reopening the packed equivalence trace failed");
  const trace::MmapTrace& trace_file = mapped.value();
  std::vector<sim::FleetServer> mmapped;
  for (size_t i = 0; i < shards.size(); ++i) {
    sim::FleetServer server{shards[i].name, shards[i].kind, cache_config, nullptr, {}};
    const size_t section = i / 2;
    server.stream = [&trace_file, section]() { return trace_file.ServerStream(section); };
    mmapped.push_back(std::move(server));
  }
  const uint64_t from_file = RunFleetDigest(mmapped, flags);
  VCDN_CHECK_MSG(from_file == reference,
                 "mmap-stream fleet digest diverged from materialized replay");
  std::remove(scratch_path.c_str());
  *digest_out = reference;
}

ScaleRun RunOnce(const std::vector<Shard>& shards, const vcdn::core::CacheConfig& cache_config,
                 const vcdn::bench::BenchFlags& flags) {
  using namespace vcdn;
  ScaleRun run;
  trace::GeneratedStreamStats stats;
  // Dedicated pool: generation must never share workers with the replay
  // shards consuming it (blocked consumers would starve the producers).
  exec::ThreadPool generator_pool(exec::ThreadPoolOptions{});
  std::vector<sim::FleetServer> servers;
  for (const Shard& shard : shards) {
    sim::FleetServer server{shard.name, shard.kind, cache_config, nullptr, {}};
    const trace::WorkloadConfig workload = shard.workload;
    server.stream = [workload, &generator_pool, &stats]() -> std::unique_ptr<trace::RequestStream> {
      trace::GeneratedStreamOptions options;
      options.generator_pool = &generator_pool;
      options.stats = &stats;
      return std::make_unique<trace::GeneratedStream>(workload, options);
    };
    servers.push_back(std::move(server));
  }
  sim::FleetOptions options;
  options.threads = flags.threads;
  options.replay.batch_size = flags.batch;
  const auto t0 = Clock::now();
  const sim::FleetResult result = sim::RunFleet(servers, options);
  run.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  run.requests = result.totals.requests;
  run.requests_per_sec =
      run.wall_seconds > 0.0 ? static_cast<double>(run.requests) / run.wall_seconds : 0.0;
  run.digest = sim::FleetDigest(result);
  run.generate_seconds = static_cast<double>(stats.generate_ns.load()) * 1e-9;
  run.consumer_wait_seconds = static_cast<double>(stats.consumer_wait_ns.load()) * 1e-9;
  if (run.generate_seconds > 0.0) {
    const double hidden =
        std::max(0.0, run.generate_seconds - std::min(run.generate_seconds,
                                                      run.consumer_wait_seconds));
    run.overlap_efficiency = hidden / run.generate_seconds;
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv, {"--scales", "--out"});
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("fig7 six servers, streaming", scale.seed);
  const std::vector<double> scales = ParseScales(argc, argv);
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") {
      out_path = argv[i + 1];
    }
  }
  bench::PrintHeader(
      "Streaming scale sweep: generate-as-you-replay at paper scale",
      "engineering baseline (no paper figure); full-month fig7 fleet replays at "
      "--scale 1.0 with peak RSS bounded by the lookahead, bit-identical to "
      "materialized replay",
      scale);

  // Digest equivalence gate at the smallest scale, before any measurement.
  bench::BenchScale smallest = scale;
  smallest.workload_scale = scales.front();
  uint64_t equivalence_digest = 0;
  std::printf("Equivalence (scale %s): materialized vs generated vs mmap ... ",
              FormatScale(scales.front()).c_str());
  std::fflush(stdout);
  CheckEquivalence(smallest, flags, out_path + ".equiv.tmp", &equivalence_digest);
  std::printf("OK (digest %016llx)\n\n", static_cast<unsigned long long>(equivalence_digest));

  struct ScaleReport {
    double scale = 0.0;
    ScaleRun median;
    std::vector<ScaleRun> repeats;
    bench::MemoryUsage memory;
  };
  std::vector<ScaleReport> reports;
  for (double s : scales) {
    bench::BenchScale at_scale = scale;
    at_scale.workload_scale = s;
    const std::vector<Shard> shards = MakeShards(at_scale);
    const core::CacheConfig cache_config = bench::PaperConfig(1.0, 2.0, at_scale);
    ScaleReport report;
    report.scale = s;
    for (size_t k = 0; k < flags.repeat; ++k) {
      report.repeats.push_back(RunOnce(shards, cache_config, flags));
      VCDN_CHECK_MSG(report.repeats.back().digest == report.repeats.front().digest,
                     "fleet digest changed between repeats");
    }
    report.median = MedianRun(report.repeats);
    report.memory = bench::ReadMemoryUsage();
    std::printf(
        "scale %-5s %9llu req  %9.0f req/s  wall %6.2fs  peak RSS %7.1f MiB  "
        "gen %6.2fs  wait %6.2fs  overlap %3.0f%%\n",
        FormatScale(s).c_str(), static_cast<unsigned long long>(report.median.requests),
        report.median.requests_per_sec, report.median.wall_seconds, report.memory.peak_rss_mb,
        report.median.generate_seconds, report.median.consumer_wait_seconds,
        report.median.overlap_efficiency * 100.0);
    reports.push_back(std::move(report));
  }

  // Peak RSS is a process-wide high-water mark: the bounded-memory claim is
  // that it stays flat while the request count quadruples.
  if (reports.size() >= 2) {
    const ScaleReport& first = reports.front();
    const ScaleReport& last = reports.back();
    const double request_growth = static_cast<double>(last.median.requests) /
                                  static_cast<double>(std::max<uint64_t>(1, first.median.requests));
    const double rss_growth = last.memory.peak_rss_mb / std::max(1.0, first.memory.peak_rss_mb);
    std::printf("\nRequests grew %.1fx across the sweep; peak RSS grew %.2fx\n", request_growth,
                rss_growth);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  obs::RunMetadata meta = obs::CollectRunMetadata();
  meta.workload = "fig7 six servers, streaming";
  meta.seed = scale.seed;
  meta.threads = flags.threads;
  meta.batch = flags.batch;
  std::string scales_label;
  for (size_t i = 0; i < scales.size(); ++i) {
    scales_label += (i > 0 ? "," : "") + FormatScale(scales[i]);
  }
  out << "{\n"
      << "  \"bench\": \"bench_scale_sweep\",\n"
      << "  \"meta\": ";
  obs::WriteRunMetadataJson(out, meta);
  out << ",\n"
      << "  \"workload\": {\n"
      << "    \"figure\": \"fig7 six servers, streaming\",\n"
      << "    \"scales\": \"" << scales_label << "\",\n"
      << "    \"days\": " << scale.days << ",\n"
      << "    \"chunks_per_paper_tb\": " << scale.chunks_per_paper_tb << ",\n"
      << "    \"seed\": " << scale.seed << ",\n"
      << "    \"servers\": 6,\n"
      << "    \"algorithms\": \"xLRU+Cafe\"\n"
      << "  },\n"
      << "  \"repeat\": " << flags.repeat << ",\n"
      << "  \"batch\": " << flags.batch << ",\n"
      << "  \"headline\": \"median\",\n"
      << "  \"equivalence\": {\n"
      << "    \"scale\": " << scales.front() << ",\n"
      << "    \"producers\": [\"materialized\", \"generated\", \"mmap\"],\n"
      << "    \"digest\": \"" << std::hex << equivalence_digest << std::dec << "\",\n"
      << "    \"match\": true\n"
      << "  },\n"
      << "  \"scales\": {\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const ScaleReport& report = reports[i];
    out << "    \"" << FormatScale(report.scale) << "\": {\n"
        << "      \"requests\": " << report.median.requests << ",\n"
        << "      \"requests_per_sec\": " << report.median.requests_per_sec << ",\n"
        << "      \"wall_seconds\": " << report.median.wall_seconds << ",\n"
        << "      \"peak_rss_mb\": " << report.memory.peak_rss_mb << ",\n"
        << "      \"rss_mb\": " << report.memory.rss_mb << ",\n"
        << "      \"generate_seconds\": " << report.median.generate_seconds << ",\n"
        << "      \"consumer_wait_seconds\": " << report.median.consumer_wait_seconds << ",\n"
        << "      \"overlap_efficiency\": " << report.median.overlap_efficiency << ",\n"
        << "      \"digest\": \"" << std::hex << report.median.digest << std::dec << "\",\n"
        << "      \"repeat_requests_per_sec\": [";
    for (size_t k = 0; k < report.repeats.size(); ++k) {
      out << (k > 0 ? ", " : "") << report.repeats[k].requests_per_sec;
    }
    out << "]\n    }" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  }\n"
      << "}\n";
  std::printf("Wrote %s\n", out_path.c_str());
  return obs.WriteIfRequested().ok() ? 0 : 1;
}
