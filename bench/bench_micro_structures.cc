// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Micro-benchmarks of the hot data structures and cache request paths: the
// O(1) LRU map (Sec. 5's linked list + hash map) in both its node-based
// reference and flat slab forms, the ordered structures (Sec. 6's binary
// tree + hash map vs the indexed ScoreHeap), and end-to-end HandleRequest
// throughput of each algorithm (flat and reference container policies).
// These verify the complexity claims (O(1) / O(log n)) hold in practice at
// cache-server scale; bench_replay_throughput is the tracked macro A/B.

#include <benchmark/benchmark.h>

#include "src/container/flat_lru_map.h"
#include "src/container/lru_map.h"
#include "src/container/ordered_key_set.h"
#include "src/container/score_heap.h"
#include "src/core/cafe_cache.h"
#include "src/core/chunk.h"
#include "src/core/xlru_cache.h"
#include "src/util/rng.h"

namespace vcdn {
namespace {

void BM_LruMapInsertTouch(benchmark::State& state) {
  container::LruMap<uint64_t, double> map;
  util::Pcg32 rng(1);
  uint64_t range = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    map.InsertOrTouch(rng.Next64() % range, 1.0);
    if (map.size() > range / 2) {
      map.PopOldest();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruMapInsertTouch)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_OrderedKeySetInsertUpdate(benchmark::State& state) {
  container::OrderedKeySet<uint64_t, double> set;
  util::Pcg32 rng(2);
  uint64_t range = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    set.InsertOrUpdate(rng.Next64() % range, rng.NextDouble());
    if (set.size() > range / 2) {
      set.PopMin();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OrderedKeySetInsertUpdate)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_FlatLruMapInsertTouch(benchmark::State& state) {
  container::FlatLruMap<uint64_t, double> map;
  uint64_t range = static_cast<uint64_t>(state.range(0));
  map.Reserve(range / 2 + 1);
  util::Pcg32 rng(1);
  for (auto _ : state) {
    map.InsertOrTouch(rng.Next64() % range, 1.0);
    if (map.size() > range / 2) {
      map.PopOldest();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatLruMapInsertTouch)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_FlatLruMapGetAndTouch(benchmark::State& state) {
  container::FlatLruMap<uint64_t, double> map;
  uint64_t range = static_cast<uint64_t>(state.range(0));
  map.Reserve(range);
  for (uint64_t k = 0; k < range; ++k) {
    map.InsertOrTouch(k, 1.0);
  }
  util::Pcg32 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.GetAndTouch(rng.Next64() % range));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatLruMapGetAndTouch)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_ScoreHeapInsertUpdate(benchmark::State& state) {
  container::ScoreHeap<uint64_t, double> heap;
  uint64_t range = static_cast<uint64_t>(state.range(0));
  heap.Reserve(range / 2 + 1);
  util::Pcg32 rng(2);
  for (auto _ : state) {
    heap.InsertOrUpdate(rng.Next64() % range, rng.NextDouble());
    if (heap.size() > range / 2) {
      heap.PopTop();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScoreHeapInsertUpdate)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_ScoreHeapScanInOrder(benchmark::State& state) {
  container::ScoreHeap<uint64_t, double> heap;
  uint64_t range = static_cast<uint64_t>(state.range(0));
  heap.Reserve(range);
  util::Pcg32 rng(5);
  for (uint64_t k = 0; k < range; ++k) {
    heap.InsertOrUpdate(k, rng.NextDouble());
  }
  for (auto _ : state) {
    // Victim-selection shape: visit the 8 least-score items in order.
    size_t visited = 0;
    heap.ScanInOrder([&](const auto& item) {
      benchmark::DoNotOptimize(item);
      return ++visited < 8;
    });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScoreHeapScanInOrder)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

core::CacheConfig MicroConfig(uint64_t capacity) {
  core::CacheConfig config;
  config.chunk_bytes = 2ull << 20;
  config.disk_capacity_chunks = capacity;
  config.alpha_f2r = 2.0;
  return config;
}

trace::Request RandomRequest(util::Pcg32& rng, uint64_t videos) {
  trace::Request r;
  // Zipf-ish skew via min of two uniforms.
  r.video = std::min(rng.Next64() % videos, rng.Next64() % videos);
  uint64_t start_chunk = rng.NextBounded(16);
  uint64_t len_chunks = 1 + rng.NextBounded(8);
  r.byte_begin = start_chunk * (2ull << 20);
  r.byte_end = (start_chunk + len_chunks) * (2ull << 20) - 1;
  return r;
}

void BM_XlruHandleRequest(benchmark::State& state) {
  core::XlruCache cache(MicroConfig(static_cast<uint64_t>(state.range(0))));
  util::Pcg32 rng(3);
  double t = 0.0;
  for (auto _ : state) {
    trace::Request r = RandomRequest(rng, 20000);
    t += 0.01;
    r.arrival_time = t;
    benchmark::DoNotOptimize(cache.HandleRequest(r));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XlruHandleRequest)->Arg(1 << 14)->Arg(1 << 17);

void BM_CafeHandleRequest(benchmark::State& state) {
  core::CafeCache cache(MicroConfig(static_cast<uint64_t>(state.range(0))));
  util::Pcg32 rng(4);
  double t = 0.0;
  for (auto _ : state) {
    trace::Request r = RandomRequest(rng, 20000);
    t += 0.01;
    r.arrival_time = t;
    benchmark::DoNotOptimize(cache.HandleRequest(r));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CafeHandleRequest)->Arg(1 << 14)->Arg(1 << 17);

void BM_XlruRefHandleRequest(benchmark::State& state) {
  core::ReferenceXlruCache cache(MicroConfig(static_cast<uint64_t>(state.range(0))));
  util::Pcg32 rng(3);
  double t = 0.0;
  for (auto _ : state) {
    trace::Request r = RandomRequest(rng, 20000);
    t += 0.01;
    r.arrival_time = t;
    benchmark::DoNotOptimize(cache.HandleRequest(r));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XlruRefHandleRequest)->Arg(1 << 14)->Arg(1 << 17);

void BM_CafeRefHandleRequest(benchmark::State& state) {
  core::ReferenceCafeCache cache(MicroConfig(static_cast<uint64_t>(state.range(0))));
  util::Pcg32 rng(4);
  double t = 0.0;
  for (auto _ : state) {
    trace::Request r = RandomRequest(rng, 20000);
    t += 0.01;
    r.arrival_time = t;
    benchmark::DoNotOptimize(cache.HandleRequest(r));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CafeRefHandleRequest)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace
}  // namespace vcdn

BENCHMARK_MAIN();
