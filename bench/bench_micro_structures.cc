// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Micro-benchmarks of the hot data structures and cache request paths: the
// O(1) LRU map (Sec. 5's linked list + hash map), the ordered key set
// (Sec. 6's binary tree + hash map), and end-to-end HandleRequest throughput
// of each algorithm. These verify the complexity claims (O(1) / O(log n))
// hold in practice at cache-server scale.

#include <benchmark/benchmark.h>

#include "src/container/lru_map.h"
#include "src/container/ordered_key_set.h"
#include "src/core/cafe_cache.h"
#include "src/core/chunk.h"
#include "src/core/xlru_cache.h"
#include "src/util/rng.h"

namespace vcdn {
namespace {

void BM_LruMapInsertTouch(benchmark::State& state) {
  container::LruMap<uint64_t, double> map;
  util::Pcg32 rng(1);
  uint64_t range = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    map.InsertOrTouch(rng.Next64() % range, 1.0);
    if (map.size() > range / 2) {
      map.PopOldest();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruMapInsertTouch)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_OrderedKeySetInsertUpdate(benchmark::State& state) {
  container::OrderedKeySet<uint64_t, double> set;
  util::Pcg32 rng(2);
  uint64_t range = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    set.InsertOrUpdate(rng.Next64() % range, rng.NextDouble());
    if (set.size() > range / 2) {
      set.PopMin();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OrderedKeySetInsertUpdate)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

core::CacheConfig MicroConfig(uint64_t capacity) {
  core::CacheConfig config;
  config.chunk_bytes = 2ull << 20;
  config.disk_capacity_chunks = capacity;
  config.alpha_f2r = 2.0;
  return config;
}

trace::Request RandomRequest(util::Pcg32& rng, uint64_t videos) {
  trace::Request r;
  // Zipf-ish skew via min of two uniforms.
  r.video = std::min(rng.Next64() % videos, rng.Next64() % videos);
  uint64_t start_chunk = rng.NextBounded(16);
  uint64_t len_chunks = 1 + rng.NextBounded(8);
  r.byte_begin = start_chunk * (2ull << 20);
  r.byte_end = (start_chunk + len_chunks) * (2ull << 20) - 1;
  return r;
}

void BM_XlruHandleRequest(benchmark::State& state) {
  core::XlruCache cache(MicroConfig(static_cast<uint64_t>(state.range(0))));
  util::Pcg32 rng(3);
  double t = 0.0;
  for (auto _ : state) {
    trace::Request r = RandomRequest(rng, 20000);
    t += 0.01;
    r.arrival_time = t;
    benchmark::DoNotOptimize(cache.HandleRequest(r));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XlruHandleRequest)->Arg(1 << 14)->Arg(1 << 17);

void BM_CafeHandleRequest(benchmark::State& state) {
  core::CafeCache cache(MicroConfig(static_cast<uint64_t>(state.range(0))));
  util::Pcg32 rng(4);
  double t = 0.0;
  for (auto _ : state) {
    trace::Request r = RandomRequest(rng, 20000);
    t += 0.01;
    r.arrival_time = t;
    benchmark::DoNotOptimize(cache.HandleRequest(r));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CafeHandleRequest)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace
}  // namespace vcdn

BENCHMARK_MAIN();
