// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Shared infrastructure for the experiment binaries (one per paper figure).
//
// Scaling: the paper replays one month of production traffic against 1 TB
// disks. The reproduction runs the same experiment shapes on a scaled-down
// synthetic workload; the scale is configurable via environment variables so
// a full-size run is one knob away:
//
//   VCDN_BENCH_SCALE       workload scale factor (catalog size, request rate,
//                          churn scale together). Default 0.25.
//   VCDN_BENCH_DAYS        trace length in days. Default 30 (the paper's month).
//   VCDN_BENCH_DISK_SCALE  chunks per "paper terabyte". Default 4096 (8 GiB),
//                          calibrated so the default-scale Europe workload
//                          reproduces the paper's absolute efficiency levels
//                          (xLRU ~59/62%, Cafe ~61/73% at alpha = 1/2).
//   VCDN_BENCH_SEED        workload seed. Default 1.
//
// Every bench prints the measured table next to the paper's reported claim so
// EXPERIMENTS.md can record paper-vs-measured side by side.

#ifndef VCDN_BENCH_BENCH_COMMON_H_
#define VCDN_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cache_algorithm.h"
#include "src/core/cache_factory.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/run_metadata.h"
#include "src/obs/time_series.h"
#include "src/obs/trace_event.h"
#include "src/sim/parallel_fleet.h"
#include "src/sim/replay.h"
#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"
#include "src/util/status.h"

namespace vcdn::bench {

struct BenchScale {
  double workload_scale = 0.25;
  double days = 30.0;
  double chunks_per_paper_tb = 4096.0;
  uint64_t seed = 1;

  double duration_seconds() const { return days * 86400.0; }
  uint64_t DiskChunks(double paper_terabytes) const {
    return static_cast<uint64_t>(paper_terabytes * chunks_per_paper_tb);
  }
};

// Reads the scale from the environment (defaults above).
BenchScale ScaleFromEnv();

struct BenchFlags;

// Environment scale with the --scale flag applied on top: the env vars are
// honored, an explicit --scale wins. This is what bench mains should call
// (after FlagsFromArgs, which validates the flag).
BenchScale ResolveScale(const BenchFlags& flags);

// Command-line flags shared by the experiment binaries:
//
//   --threads N   worker threads for the fleet-parallel stages (trace
//                 generation, independent replays). 0 = hardware concurrency
//                 (the default), 1 = sequential on the calling thread.
//   --repeat K    run the replay stage K times (timing stability / soak).
//                 All repeats must produce the same FleetDigest; only the
//                 last records into --obs-json instruments.
//   --batch N     requests per CacheAlgorithm::HandleRequestBatch call in the
//                 replay loop (sim::ReplayOptions::batch_size; 1 disables
//                 batching). Results are bit-identical at any N -- the knob
//                 only changes how much memory-level parallelism the cache
//                 can extract.
//   --scale X     workload scale factor, the first-class form of
//                 VCDN_BENCH_SCALE (the env var is still honored; the flag
//                 wins -- see ResolveScale). Must be a positive number.
//
// Parsing fails FAST: an unknown "--" flag, a flag with a missing value, an
// unparsable count, or a stray positional argument prints an error naming
// the offender to stderr and exits with status 2. A typoed "--thread 8"
// silently running the default configuration is how wrong bench numbers get
// committed. Benches with their own value-taking flags (e.g. --out,
// --max-threads) declare them via `extra_value_flags`; their values are
// validated for presence here and parsed by the bench. The BenchObs flags
// (--obs-json, --obs-series, --flight, --post-mortem) are always accepted.
struct BenchFlags {
  size_t threads = 0;
  size_t repeat = 1;
  size_t batch = 16;
  // Workload scale from --scale; 0 means "not given" (ResolveScale then
  // falls back to VCDN_BENCH_SCALE / the default).
  double scale = 0.0;
};
BenchFlags FlagsFromArgs(int argc, char** argv,
                         const std::vector<std::string>& extra_value_flags = {});

// Optional observability sinks shared by the experiment binaries:
//
//   --obs-json <path>     combined metrics + Chrome traceEvents document
//                         (chrome://tracing / Perfetto), written at exit.
//   --obs-series <path>   windowed time-series JSONL: one line per replay
//                         bucket with counter deltas, gauge values and hdr
//                         quantiles (obs::TimeSeriesRecorder). Implies the
//                         metrics registry.
//   --flight <N>          per-shard flight recorders of capacity N (decision
//                         ring; alloc-free on the hot path).
//   --post-mortem <path>  with --flight: fault-boundary captures (and, when
//                         none fired, the final ring) dump here as JSONL; the
//                         ring is also armed to dump on any VCDN_CHECK
//                         failure, including a fleet digest mismatch.
//
// Without flags the instruments stay detached and replay runs at full speed.
// Every artifact embeds obs::RunMetadata (git describe, build type,
// compiler, workload shape) in its header.
class BenchObs {
 public:
  // Scans argv for the obs flags; other flags are left for the bench.
  BenchObs(int argc, char** argv);
  ~BenchObs();

  bool enabled() const { return !path_.empty(); }
  bool series_enabled() const { return !series_path_.empty(); }
  bool flight_enabled() const { return flight_capacity_ > 0; }
  bool any_enabled() const { return enabled() || series_enabled() || flight_enabled(); }

  obs::MetricsRegistry* metrics() {
    return enabled() || series_enabled() ? &registry_ : nullptr;
  }
  obs::TraceEventSink* trace_sink() { return enabled() ? &sink_ : nullptr; }
  // The main flight ring; null unless --flight was given.
  obs::FlightRecorder* flight() { return flight_.get(); }

  // Run-shape fields embedded in every artifact header (workload and seed
  // from the bench, threads and batch filled by RunCacheJobs).
  void SetWorkload(const std::string& workload, uint64_t seed);
  void SetRunShape(size_t threads, size_t batch);

  // Writes every requested artifact; failures are printed to stderr and the
  // first non-OK Status is returned (callers that exit through main get the
  // stderr line either way -- a dropped dump must not look like success).
  util::Status WriteIfRequested();

  // ReplayOptions wired to this BenchObs (empty when disabled), for benches
  // that call sim::Replay directly instead of going through RunCache.
  sim::ReplayOptions replay_options();

 private:
  // Disarm + arm the main flight ring so the crash-dump header carries the
  // current meta_ (ArmCrashDump copies the metadata at arm time).
  void RearmCrashDump();

  std::string path_;
  std::string series_path_;
  std::string post_mortem_path_;
  size_t flight_capacity_ = 0;
  obs::MetricsRegistry registry_;
  obs::TraceEventSink sink_;
  obs::TimeSeriesRecorder series_{&registry_};
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::vector<obs::FlightCapture> captures_;
  obs::RunMetadata meta_;
};

// The workload config MakeServerTraces materializes for server `index` of a
// profile set: seed util::SplitSeed(scale.seed, index), duration from the
// scale. Streaming producers (trace::GeneratedStream) built over this config
// are bit-identical to the materialized trace.
trace::WorkloadConfig ServerWorkloadConfig(const trace::ServerProfile& profile, size_t index,
                                           const BenchScale& scale);

// Generates the one-month trace of a server profile at the given scale.
trace::Trace MakeServerTrace(trace::ServerProfile profile, const BenchScale& scale);

// The Europe trace used by Figs. 3-6.
trace::Trace MakeEuropeTrace(const BenchScale& scale);

// Generates one trace per profile, in parallel across flags.threads workers.
// Server i draws from the decorrelated RNG stream util::SplitSeed(scale.seed,
// i) -- the servers stay distinct workloads under a single seed knob, and
// the result is identical for any thread count.
std::vector<trace::Trace> MakeServerTraces(const std::vector<trace::ServerProfile>& profiles,
                                           const BenchScale& scale, const BenchFlags& flags);

// Cache config in "paper units": disk quoted in paper-TB.
core::CacheConfig PaperConfig(double paper_terabytes, double alpha, const BenchScale& scale);

// Replays `kind` on `trace` and returns the steady-state result. When `obs`
// is non-null and enabled, the replay records into its registry/trace sink.
sim::ReplayResult RunCache(core::CacheKind kind, const trace::Trace& trace,
                           const core::CacheConfig& config, BenchObs* obs = nullptr);

// One independent replay job (a cache kind x config on a trace). Traces are
// not owned and may be shared between jobs.
struct CacheJob {
  std::string name;
  core::CacheKind kind = core::CacheKind::kCafe;
  core::CacheConfig config;
  const trace::Trace* trace = nullptr;
};

// Replays the jobs as a sim::RunFleet fleet across flags.threads workers,
// flags.repeat times (the repeats must agree on the FleetDigest; only the
// last one records into `obs`). Prints a one-line summary -- wall seconds,
// thread count, digest -- and returns the per-job results in job order,
// identical for any thread count.
std::vector<sim::ReplayResult> RunCacheJobs(const std::vector<CacheJob>& jobs,
                                            const BenchFlags& flags, BenchObs* obs = nullptr);

// Process memory readout from /proc/self/status, in MiB. peak_rss_mb
// (VmHWM) is the high-water mark since process start -- the scale sweep's
// evidence that streaming replay keeps RSS bounded.
struct MemoryUsage {
  double rss_mb = 0.0;
  double peak_rss_mb = 0.0;
};
MemoryUsage ReadMemoryUsage();

// Prints the experiment banner: figure id, what the paper reported, and the
// scale in effect. Also enforces RequireReleaseBuild().
void PrintHeader(const std::string& experiment, const std::string& paper_claim,
                 const BenchScale& scale);

// Aborts with a clear message when the binary was built without NDEBUG
// (Debug / unoptimized): bench numbers from such builds are meaningless and
// must never land in EXPERIMENTS.md or BENCH_hotpath.json. Set
// VCDN_ALLOW_UNOPTIMIZED_BENCH=1 to override (CI smoke runs of Debug builds).
void RequireReleaseBuild();

}  // namespace vcdn::bench

#endif  // VCDN_BENCH_BENCH_COMMON_H_
