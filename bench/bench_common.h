// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Shared infrastructure for the experiment binaries (one per paper figure).
//
// Scaling: the paper replays one month of production traffic against 1 TB
// disks. The reproduction runs the same experiment shapes on a scaled-down
// synthetic workload; the scale is configurable via environment variables so
// a full-size run is one knob away:
//
//   VCDN_BENCH_SCALE       workload scale factor (catalog size, request rate,
//                          churn scale together). Default 0.25.
//   VCDN_BENCH_DAYS        trace length in days. Default 30 (the paper's month).
//   VCDN_BENCH_DISK_SCALE  chunks per "paper terabyte". Default 4096 (8 GiB),
//                          calibrated so the default-scale Europe workload
//                          reproduces the paper's absolute efficiency levels
//                          (xLRU ~59/62%, Cafe ~61/73% at alpha = 1/2).
//   VCDN_BENCH_SEED        workload seed. Default 1.
//
// Every bench prints the measured table next to the paper's reported claim so
// EXPERIMENTS.md can record paper-vs-measured side by side.

#ifndef VCDN_BENCH_BENCH_COMMON_H_
#define VCDN_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/cache_algorithm.h"
#include "src/core/cache_factory.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"
#include "src/sim/parallel_fleet.h"
#include "src/sim/replay.h"
#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"

namespace vcdn::bench {

struct BenchScale {
  double workload_scale = 0.25;
  double days = 30.0;
  double chunks_per_paper_tb = 4096.0;
  uint64_t seed = 1;

  double duration_seconds() const { return days * 86400.0; }
  uint64_t DiskChunks(double paper_terabytes) const {
    return static_cast<uint64_t>(paper_terabytes * chunks_per_paper_tb);
  }
};

// Reads the scale from the environment (defaults above).
BenchScale ScaleFromEnv();

// Command-line flags shared by the experiment binaries:
//
//   --threads N   worker threads for the fleet-parallel stages (trace
//                 generation, independent replays). 0 = hardware concurrency
//                 (the default), 1 = sequential on the calling thread.
//   --repeat K    run the replay stage K times (timing stability / soak).
//                 All repeats must produce the same FleetDigest; only the
//                 last records into --obs-json instruments.
//   --batch N     requests per CacheAlgorithm::HandleRequestBatch call in the
//                 replay loop (sim::ReplayOptions::batch_size; 1 disables
//                 batching). Results are bit-identical at any N -- the knob
//                 only changes how much memory-level parallelism the cache
//                 can extract.
//
// Unknown flags are ignored (each bench may define more).
struct BenchFlags {
  size_t threads = 0;
  size_t repeat = 1;
  size_t batch = 16;
};
BenchFlags FlagsFromArgs(int argc, char** argv);

// Optional observability sink shared by the experiment binaries.
//
// Every bench accepts `--obs-json <path>`: when given, RunCache threads a
// MetricsRegistry and a TraceEventSink through Replay, and WriteIfRequested
// dumps the combined document (metrics + Chrome traceEvents, loadable in
// chrome://tracing / Perfetto) to the path at exit. Without the flag the
// instruments stay detached and replay runs at full speed.
class BenchObs {
 public:
  // Scans argv for --obs-json; other flags are left for the bench to handle.
  BenchObs(int argc, char** argv);

  bool enabled() const { return !path_.empty(); }
  obs::MetricsRegistry* metrics() { return enabled() ? &registry_ : nullptr; }
  obs::TraceEventSink* trace_sink() { return enabled() ? &sink_ : nullptr; }

  // Writes the combined JSON document; no-op when --obs-json was not given.
  void WriteIfRequested();

  // ReplayOptions wired to this BenchObs (empty when disabled), for benches
  // that call sim::Replay directly instead of going through RunCache.
  sim::ReplayOptions replay_options() {
    sim::ReplayOptions options;
    if (enabled()) {
      options.metrics = &registry_;
      options.trace_sink = &sink_;
    }
    return options;
  }

 private:
  std::string path_;
  obs::MetricsRegistry registry_;
  obs::TraceEventSink sink_;
};

// Generates the one-month trace of a server profile at the given scale.
trace::Trace MakeServerTrace(trace::ServerProfile profile, const BenchScale& scale);

// The Europe trace used by Figs. 3-6.
trace::Trace MakeEuropeTrace(const BenchScale& scale);

// Generates one trace per profile, in parallel across flags.threads workers.
// Server i draws from the decorrelated RNG stream util::SplitSeed(scale.seed,
// i) -- the servers stay distinct workloads under a single seed knob, and
// the result is identical for any thread count.
std::vector<trace::Trace> MakeServerTraces(const std::vector<trace::ServerProfile>& profiles,
                                           const BenchScale& scale, const BenchFlags& flags);

// Cache config in "paper units": disk quoted in paper-TB.
core::CacheConfig PaperConfig(double paper_terabytes, double alpha, const BenchScale& scale);

// Replays `kind` on `trace` and returns the steady-state result. When `obs`
// is non-null and enabled, the replay records into its registry/trace sink.
sim::ReplayResult RunCache(core::CacheKind kind, const trace::Trace& trace,
                           const core::CacheConfig& config, BenchObs* obs = nullptr);

// One independent replay job (a cache kind x config on a trace). Traces are
// not owned and may be shared between jobs.
struct CacheJob {
  std::string name;
  core::CacheKind kind = core::CacheKind::kCafe;
  core::CacheConfig config;
  const trace::Trace* trace = nullptr;
};

// Replays the jobs as a sim::RunFleet fleet across flags.threads workers,
// flags.repeat times (the repeats must agree on the FleetDigest; only the
// last one records into `obs`). Prints a one-line summary -- wall seconds,
// thread count, digest -- and returns the per-job results in job order,
// identical for any thread count.
std::vector<sim::ReplayResult> RunCacheJobs(const std::vector<CacheJob>& jobs,
                                            const BenchFlags& flags, BenchObs* obs = nullptr);

// Prints the experiment banner: figure id, what the paper reported, and the
// scale in effect. Also enforces RequireReleaseBuild().
void PrintHeader(const std::string& experiment, const std::string& paper_claim,
                 const BenchScale& scale);

// Aborts with a clear message when the binary was built without NDEBUG
// (Debug / unoptimized): bench numbers from such builds are meaningless and
// must never land in EXPERIMENTS.md or BENCH_hotpath.json. Set
// VCDN_ALLOW_UNOPTIMIZED_BENCH=1 to override (CI smoke runs of Debug builds).
void RequireReleaseBuild();

}  // namespace vcdn::bench

#endif  // VCDN_BENCH_BENCH_COMMON_H_
