// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Ablation study of Cafe Cache's design choices (Sec. 6):
//
//   * gamma (EWMA smoothing; the paper fixes 0.25) -- sweeps the
//     responsiveness-vs-stability tradeoff of the IAT estimator;
//   * the per-video IAT estimate for never-seen chunks (the Sec. 6
//     "further optimization") on vs off;
//   * history retention horizon (how long uncached chunk stats survive).
//
// Also contrasts Cafe against the classic always-fill LRU baseline to
// quantify the value of admission control itself.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/cafe_cache.h"
#include "src/util/str_util.h"

namespace {

vcdn::sim::ReplayResult RunCafe(const vcdn::trace::Trace& trace,
                                const vcdn::core::CacheConfig& config,
                                const vcdn::core::CafeOptions& options,
                                vcdn::bench::BenchObs* obs) {
  vcdn::core::CafeCache cache(config, options);
  return vcdn::sim::Replay(cache, trace, obs->replay_options());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv);
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("ablation cafe", scale.seed);
  bench::PrintHeader("Ablation: Cafe Cache design choices (Europe, 1 TB, alpha=2)",
                     "gamma = 0.25 in all paper experiments; chunk-level popularity + "
                     "unseen-chunk estimation drive Cafe's ingress efficiency",
                     scale);

  trace::Trace trace = bench::MakeEuropeTrace(scale);
  core::CacheConfig config = bench::PaperConfig(1.0, 2.0, scale);

  std::printf("\n[1] EWMA smoothing factor gamma:\n");
  util::TextTable gamma_table({"gamma", "efficiency", "ingress %", "redirect %"});
  for (double gamma : {0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    core::CafeOptions options;
    options.gamma = gamma;
    sim::ReplayResult r = RunCafe(trace, config, options, &obs);
    gamma_table.AddRow({util::FormatDouble(gamma, 2), util::FormatPercent(r.efficiency),
                        util::FormatPercent(r.ingress_fraction),
                        util::FormatPercent(r.redirect_fraction)});
  }
  std::printf("%s\n", gamma_table.ToString().c_str());

  std::printf("[2] Unseen-chunk IAT estimation from the video's cached chunks:\n");
  util::TextTable unseen_table({"estimate_unseen", "efficiency", "ingress %", "redirect %"});
  for (bool enabled : {true, false}) {
    core::CafeOptions options;
    options.estimate_unseen_from_video = enabled;
    sim::ReplayResult r = RunCafe(trace, config, options, &obs);
    unseen_table.AddRow({enabled ? "on (paper)" : "off", util::FormatPercent(r.efficiency),
                         util::FormatPercent(r.ingress_fraction),
                         util::FormatPercent(r.redirect_fraction)});
  }
  std::printf("%s\n", unseen_table.ToString().c_str());

  std::printf("[3] History retention factor (x cache age):\n");
  util::TextTable retention_table({"retention", "efficiency", "tracked history"});
  for (double retention : {0.5, 1.0, 2.0, 4.0}) {
    core::CafeOptions options;
    options.history_retention_factor = retention;
    core::CafeCache cache(config, options);
    sim::ReplayResult r = sim::Replay(cache, trace, obs.replay_options());
    retention_table.AddRow({util::FormatDouble(retention, 1), util::FormatPercent(r.efficiency),
                            std::to_string(cache.tracked_history_chunks())});
  }
  std::printf("%s\n", retention_table.ToString().c_str());

  std::printf("[4] Value of admission control (vs always-fill LRU):\n");
  util::TextTable baseline_table({"cache", "efficiency", "ingress %", "redirect %"});
  {
    sim::ReplayResult fill_lru = bench::RunCache(core::CacheKind::kFillLru, trace, config, &obs);
    sim::ReplayResult xlru = bench::RunCache(core::CacheKind::kXlru, trace, config, &obs);
    sim::ReplayResult cafe = RunCafe(trace, config, {}, &obs);
    for (const auto& r : {fill_lru, xlru, cafe}) {
      baseline_table.AddRow({r.cache_name, util::FormatPercent(r.efficiency),
                             util::FormatPercent(r.ingress_fraction),
                             util::FormatPercent(r.redirect_fraction)});
    }
  }
  std::printf("%s\n", baseline_table.ToString().c_str());
  return obs.WriteIfRequested().ok() ? 0 : 1;
}
