// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Net loopback bench: the closed-loop socket load generator (src/net)
// against a live EdgeServer over 127.0.0.1 -- the tracked baseline for the
// daemon's serve path, BENCH_net.json.
//
// Two phases:
//
//   1. Bridge: a seeded trace replayed over one connection against a
//      one-shard daemon must produce a client-side wire digest AND a
//      daemon-side shard digest bit-identical to the offline
//      sim::ReplayOutcomeDigest of the same trace. The throughput numbers
//      below are only meaningful while the daemon serves exactly the
//      decisions the simulator would have (docs/NETWORKING.md).
//
//   2. Throughput: a larger trace over --connections C x --pipeline P
//      against a --shards S daemon; --repeat K runs, headline = the MEDIAN
//      requests/sec run (one noisy neighbor can't move the tracked
//      baseline), with end-to-end latency quantiles from the median run's
//      HdrHistogram. Each repeat serves from a fresh cache.
//
// --connect HOST:PORT points both phases at an externally started daemon
// (tools/edge_server.cc) instead of an in-process one -- the CI "net
// smoke" lane drives a real process over an ephemeral port this way. The
// external daemon must match the bridge config (cafe, --disk-chunks 4096,
// one shard, client time) and be freshly started, or the bridge digest
// check will (correctly) fail. In connect mode no JSON is written unless
// --out is given.
//
// Observability: --obs-json / --obs-series / --flight attach the net.*
// instruments (server and client) on the LAST repeat only, the repo-wide
// "only the last repeat records" rule; --flight N additionally gives the
// in-process daemon per-shard decision rings of capacity N.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/net/edge_server.h"
#include "src/net/load_gen.h"
#include "src/obs/run_metadata.h"
#include "src/obs/time_series.h"
#include "src/sim/decision_digest.h"
#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"
#include "src/util/check.h"
#include "src/util/str_util.h"

namespace {

using namespace vcdn;

size_t ArgSize(int argc, char** argv, const char* name, size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == name) {
      uint64_t parsed = 0;
      if (util::ParseUint64(argv[i + 1], &parsed) && parsed > 0) {
        return static_cast<size_t>(parsed);
      }
    }
  }
  return fallback;
}

std::string ArgString(int argc, char** argv, const char* name, const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == name) {
      return argv[i + 1];
    }
  }
  return fallback;
}

// A trace with a pinned arrival rate: the scaled-down paper profiles
// generate a handful of requests per hour, so the socket bench pins the
// rate and sets the size via the duration.
trace::Trace MakeNetTrace(double profile_scale, uint64_t seed, double rate_per_second,
                          double duration_seconds) {
  trace::WorkloadConfig config;
  config.profile = trace::PaperServerProfiles(profile_scale)[0];
  config.profile.base_request_rate = rate_per_second;
  config.seed = seed;
  config.duration_seconds = duration_seconds;
  return trace::WorkloadGenerator(config).Generate().trace;
}

core::CacheConfig BridgeConfig() {
  core::CacheConfig config;
  config.disk_capacity_chunks = 4096;
  return config;
}

struct Target {
  bool external = false;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::FlagsFromArgs(
      argc, argv, {"--connections", "--pipeline", "--shards", "--connect", "--out"});
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);

  const size_t connections = ArgSize(argc, argv, "--connections", 4);
  const size_t pipeline = ArgSize(argc, argv, "--pipeline", 32);
  const size_t shards = ArgSize(argc, argv, "--shards", 2);
  const size_t flight_capacity = ArgSize(argc, argv, "--flight", 0);
  const std::string connect = ArgString(argc, argv, "--connect", "");
  const std::string out_path = ArgString(argc, argv, "--out", "");
  const size_t pool_threads =
      flags.threads > 0 ? flags.threads
                        : std::max<size_t>(1, std::thread::hardware_concurrency());

  Target target;
  if (!connect.empty()) {
    const size_t colon = connect.rfind(':');
    uint64_t port = 0;
    if (colon == std::string::npos || colon == 0 ||
        !util::ParseUint64(connect.c_str() + colon + 1, &port) || port == 0 || port > 65535) {
      std::fprintf(stderr, "error: invalid value '%s' for flag '--connect' (want HOST:PORT)\n",
                   connect.c_str());
      return 2;
    }
    target.external = true;
    target.host = connect.substr(0, colon);
    target.port = static_cast<uint16_t>(port);
  }

  bench::PrintHeader(
      "Net loopback: closed-loop load generator vs the live edge-server daemon",
      "the daemon serves bit-identical decisions to the offline replayer "
      "(wire digest == sim::ReplayOutcomeDigest) while sustaining loopback "
      "throughput; BENCH_net.json tracks the median requests/sec",
      scale);
  std::printf("%zu connection%s x pipeline %zu, %zu shard%s, %zu pool threads, %zu repeat%s%s\n\n",
              connections, connections == 1 ? "" : "s", pipeline, shards,
              shards == 1 ? "" : "s", pool_threads, flags.repeat,
              flags.repeat == 1 ? "" : "s",
              target.external ? " (external daemon)" : "");

  exec::ThreadPool pool(pool_threads);

  // ---- Phase 1: the determinism bridge ----------------------------------
  // ~29K requests: two hours at 4 req/s, decorrelated from the throughput
  // trace's seed.
  const trace::Trace bridge_trace = MakeNetTrace(0.02, scale.seed + 17, 4.0, 2.0 * 3600.0);
  const uint64_t offline =
      sim::ReplayOutcomeDigest(core::CacheKind::kCafe, BridgeConfig(), bridge_trace);

  uint64_t wire_digest = 0;
  uint64_t bridge_responses = 0;
  {
    std::unique_ptr<net::EdgeServer> server;
    net::LoadGenOptions load;
    load.connections = 1;
    load.pipeline_depth = 64;
    if (target.external) {
      load.host = target.host;
      load.port = target.port;
    } else {
      net::EdgeServerOptions options;
      options.cache_kind = core::CacheKind::kCafe;
      options.cache_config = BridgeConfig();
      options.num_shards = 1;
      server = std::make_unique<net::EdgeServer>(pool, options);
      VCDN_CHECK_MSG(server->Start().ok(), "bridge server failed to start");
      load.port = server->port();
    }
    util::Result<net::LoadGenResult> result = net::RunClosedLoop(bridge_trace, load);
    VCDN_CHECK_MSG(result.ok(), "bridge replay failed");
    wire_digest = result.value().digest;
    bridge_responses = result.value().responses_received;
    if (server) {
      server->Stop();
    }
  }
  const bool bridge_match =
      wire_digest == offline && bridge_responses == bridge_trace.requests.size();
  std::printf("Bridge: %zu requests over the wire, offline digest %016llx, wire %016llx -- %s\n\n",
              bridge_trace.requests.size(), static_cast<unsigned long long>(offline),
              static_cast<unsigned long long>(wire_digest), bridge_match ? "MATCH" : "MISMATCH");
  VCDN_CHECK_MSG(bridge_match,
                 "daemon-served decisions diverged from the offline replayer -- "
                 "throughput of a wrong cache is not a number worth tracking");

  // ---- Phase 2: throughput ----------------------------------------------
  // ~650K requests: the default 30-day window at 0.25 req/s. The catalog
  // shape follows VCDN_BENCH_SCALE; the count is pinned by the rate.
  const trace::Trace trace =
      MakeNetTrace(scale.workload_scale, scale.seed, 0.25, scale.duration_seconds());
  core::CacheConfig config = bench::PaperConfig(1.0, 2.0, scale);

  obs.SetWorkload("net loopback", scale.seed);
  obs.SetRunShape(pool_threads, pipeline);
  obs::TimeSeriesRecorder* series = obs.replay_options().series;

  std::vector<net::LoadGenResult> repeats;
  for (size_t k = 0; k < flags.repeat; ++k) {
    const bool record_obs = k + 1 == flags.repeat && obs.any_enabled();
    std::unique_ptr<net::EdgeServer> server;
    net::LoadGenOptions load;
    load.connections = connections;
    load.pipeline_depth = pipeline;
    if (target.external) {
      load.host = target.host;
      load.port = target.port;
    } else {
      net::EdgeServerOptions options;
      options.cache_kind = core::CacheKind::kCafe;
      options.cache_config = config;
      options.num_shards = shards;
      if (record_obs) {
        options.metrics = obs.metrics();
        options.flight_recorder_capacity = flight_capacity;
      }
      server = std::make_unique<net::EdgeServer>(pool, options);
      VCDN_CHECK_MSG(server->Start().ok(), "throughput server failed to start");
      load.port = server->port();
    }
    if (record_obs) {
      load.metrics = obs.metrics();
    }
    util::Result<net::LoadGenResult> result = net::RunClosedLoop(trace, load);
    VCDN_CHECK_MSG(result.ok(), "throughput replay failed");
    VCDN_CHECK_MSG(result.value().responses_received == trace.requests.size(),
                   "not every request was answered");
    if (record_obs && series != nullptr) {
      // One window over the instrumented repeat: the net.* counter deltas
      // and the latency hdr quantiles of exactly this run.
      series->EndWindow(0.0, result.value().elapsed_seconds);
    }
    repeats.push_back(result.value());
    if (server) {
      server->Stop();
    }
  }
  pool.Shutdown();

  // Median-throughput repeat (lower median for even K).
  std::vector<size_t> order(repeats.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return repeats[a].requests_per_second < repeats[b].requests_per_second;
  });
  const net::LoadGenResult& median = repeats[order[(order.size() - 1) / 2]];

  util::TextTable table({"repeat", "wall s", "req/s", "p50 us", "p99 us", "p999 us"});
  for (size_t k = 0; k < repeats.size(); ++k) {
    const net::LoadGenResult& r = repeats[k];
    table.AddRow({std::to_string(k + 1), util::FormatDouble(r.elapsed_seconds, 3),
                  util::FormatDouble(r.requests_per_second, 0),
                  util::FormatDouble(r.latency_p50 * 1e6, 1),
                  util::FormatDouble(r.latency_p99 * 1e6, 1),
                  util::FormatDouble(r.latency_p999 * 1e6, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Throughput (median of %zu): %.0f req/s over %zu requests\n", repeats.size(),
              median.requests_per_second, trace.requests.size());

  const bool obs_ok = obs.WriteIfRequested().ok();

  if (target.external && out_path.empty()) {
    return obs_ok ? 0 : 1;
  }
  const std::string path = out_path.empty() ? "BENCH_net.json" : out_path;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  obs::RunMetadata meta = obs::CollectRunMetadata();
  meta.workload = "net loopback";
  meta.seed = scale.seed;
  meta.threads = pool_threads;
  meta.batch = flags.batch;
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(offline));
  out << "{\n"
      << "  \"bench\": \"bench_net_loopback\",\n"
      << "  \"meta\": ";
  obs::WriteRunMetadataJson(out, meta);
  out << ",\n"
      << "  \"workload\": {\n"
      << "    \"scale\": " << scale.workload_scale << ",\n"
      << "    \"seed\": " << scale.seed << ",\n"
      << "    \"requests\": " << trace.requests.size() << ",\n"
      << "    \"connections\": " << connections << ",\n"
      << "    \"pipeline\": " << pipeline << ",\n"
      << "    \"shards\": " << shards << "\n"
      << "  },\n"
      << "  \"repeat\": " << repeats.size() << ",\n"
      << "  \"headline\": \"median\",\n"
      << "  \"bridge\": {\n"
      << "    \"requests\": " << bridge_trace.requests.size() << ",\n"
      << "    \"digest\": \"" << digest_hex << "\",\n"
      << "    \"digest_match\": " << (bridge_match ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"throughput\": {\n"
      << "    \"requests\": " << trace.requests.size() << ",\n"
      << "    \"wall_seconds\": " << median.elapsed_seconds << ",\n"
      << "    \"requests_per_sec\": " << median.requests_per_second << ",\n"
      << "    \"latency_p50_us\": " << median.latency_p50 * 1e6 << ",\n"
      << "    \"latency_p90_us\": " << median.latency_p90 * 1e6 << ",\n"
      << "    \"latency_p99_us\": " << median.latency_p99 * 1e6 << ",\n"
      << "    \"latency_p999_us\": " << median.latency_p999 * 1e6 << ",\n"
      << "    \"repeat_requests_per_sec\": [";
  for (size_t k = 0; k < repeats.size(); ++k) {
    out << (k > 0 ? ", " : "") << repeats[k].requests_per_second;
  }
  out << "]\n"
      << "  }\n"
      << "}\n";
  std::printf("Wrote %s\n", path.c_str());
  return obs_ok ? 0 : 1;
}
