// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Figure 6: "Efficiency of the algorithms given different disk capacities" --
// Europe server, alpha_F2R = 2, disk swept across paper-scale capacities.
//
// Paper's reported shape: efficiency grows with disk for all algorithms;
// xLRU degrades disproportionately as the disk shrinks while Cafe keeps a
// small gap to Psychic; to match a given efficiency xLRU needs a 2-3x larger
// disk than Cafe at alpha=2 (only up to ~33% larger at alpha=1).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/str_util.h"

namespace {

// Linear-interpolated disk size at which `target` efficiency is reached.
double DiskToReach(const std::vector<double>& disks, const std::vector<double>& effs,
                   double target) {
  for (size_t i = 0; i < effs.size(); ++i) {
    if (effs[i] >= target) {
      if (i == 0) {
        return disks[0];
      }
      double f = (target - effs[i - 1]) / (effs[i] - effs[i - 1]);
      return disks[i - 1] + f * (disks[i] - disks[i - 1]);
    }
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv);
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("fig6 disk sweep", scale.seed);
  bench::PrintHeader(
      "Figure 6: efficiency vs disk capacity (Europe, alpha=2)",
      "efficiency rises with disk; xLRU needs 2-3x Cafe's disk for equal efficiency "
      "at alpha=2 (<=33% more at alpha=1); Cafe tracks Psychic closely on small disks",
      scale);

  trace::Trace trace = bench::MakeEuropeTrace(scale);
  const std::vector<double> paper_tb = {0.25, 0.5, 1.0, 2.0, 4.0};
  const core::CacheKind kinds[] = {core::CacheKind::kXlru, core::CacheKind::kCafe,
                                   core::CacheKind::kPsychic};

  for (double alpha : {2.0, 1.0}) {
    std::printf("\n--- alpha_F2R = %.1f ---\n", alpha);
    std::vector<bench::CacheJob> jobs;
    for (double tb : paper_tb) {
      for (core::CacheKind kind : kinds) {
        jobs.push_back(bench::CacheJob{"disk" + util::FormatDouble(tb, 2), kind,
                                       bench::PaperConfig(tb, alpha, scale), &trace});
      }
    }
    std::vector<sim::ReplayResult> results = bench::RunCacheJobs(jobs, flags, &obs);

    util::TextTable table({"disk (paper TB)", "chunks", "xLRU", "Cafe", "Psychic"});
    std::vector<double> xlru_eff;
    std::vector<double> cafe_eff;
    for (size_t d = 0; d < paper_tb.size(); ++d) {
      const sim::ReplayResult& xlru = results[d * 3];
      const sim::ReplayResult& cafe = results[d * 3 + 1];
      const sim::ReplayResult& psychic = results[d * 3 + 2];
      xlru_eff.push_back(xlru.efficiency);
      cafe_eff.push_back(cafe.efficiency);
      table.AddRow({util::FormatDouble(paper_tb[d], 2), std::to_string(jobs[d * 3].config.disk_capacity_chunks),
                    util::FormatPercent(xlru.efficiency), util::FormatPercent(cafe.efficiency),
                    util::FormatPercent(psychic.efficiency)});
    }
    std::printf("%s\n", table.ToString().c_str());

    // Disk multiple xLRU needs to match Cafe's efficiency at 0.5 / 1 TB.
    for (size_t i = 1; i + 1 < paper_tb.size(); ++i) {
      double target = cafe_eff[i];
      double xlru_disk = DiskToReach(paper_tb, xlru_eff, target);
      if (xlru_disk > 0) {
        std::printf("  To match Cafe@%.2gTB (%s), xLRU needs ~%.2f TB (%.1fx)\n", paper_tb[i],
                    util::FormatPercent(target).c_str(), xlru_disk, xlru_disk / paper_tb[i]);
      } else {
        std::printf("  To match Cafe@%.2gTB (%s), xLRU needs > %.2g TB (beyond sweep)\n",
                    paper_tb[i], util::FormatPercent(target).c_str(), paper_tb.back());
      }
    }
  }
  return obs.WriteIfRequested().ok() ? 0 : 1;
}
