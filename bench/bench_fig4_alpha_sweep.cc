// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Figure 4: "Efficiency of the algorithms for different ingress-to-redirect
// configuration" -- Europe server, 1 TB disk, alpha_F2R in {0.5, 1, 2, 4},
// bars for xLRU / Cafe / Psychic.
//
// Paper's reported shape: at alpha <= 1 Cafe is ~2% above xLRU (61% vs 59%
// at alpha=1) with Psychic clearly above both (never-seen files); at alpha=2
// Cafe reaches 73%, close to Psychic's 75% and ~11% above xLRU's 62%.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/str_util.h"

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv);
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("fig4 alpha sweep", scale.seed);
  bench::PrintHeader(
      "Figure 4: efficiency vs alpha_F2R (Europe, 1 TB)",
      "alpha=1: xLRU 59%, Cafe 61%; alpha=2: xLRU 62%, Cafe 73%, Psychic 75%; "
      "Cafe ~= xLRU for alpha<=1, Cafe -> Psychic for alpha>1",
      scale);

  trace::Trace trace = bench::MakeEuropeTrace(scale);
  std::printf("Trace: %zu requests, %zu distinct videos, %s requested\n\n",
              trace.requests.size(), trace.DistinctVideos(),
              util::HumanBytes(trace.TotalRequestedBytes()).c_str());

  // The 4 alphas x 3 algorithms are independent replays of one shared trace;
  // run them as a fleet.
  const double alphas[] = {0.5, 1.0, 2.0, 4.0};
  const core::CacheKind kinds[] = {core::CacheKind::kXlru, core::CacheKind::kCafe,
                                   core::CacheKind::kPsychic};
  std::vector<bench::CacheJob> jobs;
  for (double alpha : alphas) {
    for (core::CacheKind kind : kinds) {
      jobs.push_back(bench::CacheJob{"alpha" + util::FormatDouble(alpha, 2), kind,
                                     bench::PaperConfig(1.0, alpha, scale), &trace});
    }
  }
  std::vector<sim::ReplayResult> results = bench::RunCacheJobs(jobs, flags, &obs);

  util::TextTable table({"alpha_F2R", "xLRU eff", "Cafe eff", "Psychic eff", "Cafe-xLRU",
                         "Psychic-xLRU"});
  for (size_t a = 0; a < 4; ++a) {
    const sim::ReplayResult& xlru = results[a * 3];
    const sim::ReplayResult& cafe = results[a * 3 + 1];
    const sim::ReplayResult& psychic = results[a * 3 + 2];
    table.AddRow({util::FormatDouble(alphas[a], 2), util::FormatPercent(xlru.efficiency),
                  util::FormatPercent(cafe.efficiency), util::FormatPercent(psychic.efficiency),
                  util::FormatPercent(cafe.efficiency - xlru.efficiency),
                  util::FormatPercent(psychic.efficiency - xlru.efficiency)});
  }
  std::printf("%s\n", table.ToString().c_str());
  return obs.WriteIfRequested().ok() ? 0 : 1;
}
