// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Figure 2: "Performance of Psychic Cache compared to (LP-relaxed) Optimal
// Cache" -- per server, a two-day trace downsampled to a representative
// subset of files (selected uniformly from the hit-count-sorted list), file
// sizes capped at 20 MB, disk sized to 5% of all requested chunks.
//
//   (a) cache efficiencies averaged over the 6 servers;
//   (b) avg/min/max of (LP-relaxed Optimal - Psychic) across servers.
//
// Paper's reported result: Psychic lands on average within 5-6% of the
// LP-relaxed bound.
//
// The paper used 100 files (a commercial LP solver); the default here is a
// smaller instance so the bundled simplex finishes in seconds -- set
// VCDN_FIG2_FILES / VCDN_FIG2_REQUESTS for bigger runs (100 / 0 reproduces
// the paper's setting).

#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "bench/bench_common.h"
#include "src/core/optimal_cache.h"
#include "src/core/psychic_cache.h"
#include "src/trace/downsample.h"
#include "src/util/stats.h"
#include "src/util/str_util.h"

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  uint64_t parsed = 0;
  if (!vcdn::util::ParseUint64(value, &parsed)) {
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv);
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("fig2 optimal vs psychic", scale.seed);
  size_t num_files = EnvSize("VCDN_FIG2_FILES", 40);
  size_t max_requests = EnvSize("VCDN_FIG2_REQUESTS", 160);
  bench::PrintHeader(
      "Figure 2: Psychic vs LP-relaxed Optimal (downsampled two-day traces)",
      "Psychic efficiency is on average within 5-6% of the LP-relaxed optimal bound",
      scale);
  std::printf("Downsampling: %zu files, request cap %zu (paper: 100 files, uncapped)\n\n",
              num_files, max_requests);

  const double alphas[] = {0.5, 1.0, 2.0, 4.0};
  util::TextTable per_server({"server", "alpha", "requests", "chunks", "disk", "Optimal bound",
                              "Psychic", "delta"});
  // Per-alpha delta stats across servers for Fig. 2(b).
  std::vector<util::StatAccumulator> delta_stats(4);
  std::vector<util::StatAccumulator> psychic_avg(4);
  std::vector<util::StatAccumulator> optimal_avg(4);

  // Two days of each server's trace (synthetic stand-in for the logs),
  // generated in parallel across --threads workers.
  bench::BenchScale two_days = scale;
  two_days.days = 2.0;
  std::vector<trace::ServerProfile> profiles = trace::PaperServerProfiles(scale.workload_scale);
  std::vector<trace::Trace> two_day_traces = bench::MakeServerTraces(profiles, two_days, flags);

  for (size_t s = 0; s < profiles.size(); ++s) {
    const trace::ServerProfile& profile = profiles[s];
    trace::Trace& full = two_day_traces[s];

    trace::DownsampleOptions options;
    options.window_seconds = 2.0 * 86400.0;
    options.num_files = num_files;
    options.file_cap_bytes = 20ull << 20;
    options.max_requests = max_requests;
    trace::DownsampledTrace down = trace::DownsampleForOptimal(full, options);
    if (down.trace.requests.size() < 20) {
      std::printf("  %s: too few requests after downsampling, skipped\n", profile.name.c_str());
      continue;
    }

    // Disk = 5% of all requested chunks.
    core::CacheConfig config;
    config.chunk_bytes = core::kDefaultChunkBytes;
    {
      // Count distinct requested chunks.
      std::unordered_set<uint64_t> chunks;
      for (const auto& r : down.trace.requests) {
        core::ChunkRange range = core::ToChunkRange(r, config.chunk_bytes);
        for (uint32_t c = range.first; c <= range.last; ++c) {
          chunks.insert(r.video * 1000 + c);
        }
      }
      // 5% of distinct requested chunks, floored so the disk can hold at
      // least a couple of typical requests (the paper's 100-file instances
      // give ~50 chunks; tiny downsampled instances would otherwise get a
      // disk smaller than one request, making admission degenerate).
      config.disk_capacity_chunks = std::max<uint64_t>(24, chunks.size() / 20);
    }

    for (size_t ai = 0; ai < 4; ++ai) {
      double alpha = alphas[ai];
      config.alpha_f2r = alpha;

      core::OptimalOptions opt_options;
      opt_options.formulation = core::OptimalFormulation::kIntervalReduced;
      core::OptimalCacheSolver solver(config, opt_options);
      core::OptimalBound bound = solver.SolveBound(down.trace);

      core::PsychicCache psychic(config);
      sim::ReplayOptions replay_options;
      replay_options.measurement_start_fraction = 0.0;  // offline caches need no warmup
      sim::ReplayResult result = sim::Replay(psychic, down.trace, replay_options);
      double psychic_eff = result.totals.ChunkEfficiency(psychic.cost_model());

      if (bound.status != lp::SolveStatus::kOptimal) {
        std::printf("  %s alpha=%.2g: LP status %s, skipped\n", profile.name.c_str(), alpha,
                    lp::SolveStatusName(bound.status));
        continue;
      }
      double delta = bound.efficiency_bound - psychic_eff;
      delta_stats[ai].Add(delta);
      psychic_avg[ai].Add(psychic_eff);
      optimal_avg[ai].Add(bound.efficiency_bound);
      per_server.AddRow({profile.name, util::FormatDouble(alpha, 2),
                         std::to_string(down.trace.requests.size()),
                         std::to_string(bound.total_requested_chunks),
                         std::to_string(config.disk_capacity_chunks),
                         util::FormatPercent(bound.efficiency_bound),
                         util::FormatPercent(psychic_eff), util::FormatPercent(delta)});
    }
  }
  std::printf("%s\n", per_server.ToString().c_str());

  std::printf("Figure 2(a): efficiencies averaged over the servers\n");
  util::TextTable avg({"alpha", "LP-relaxed Optimal (avg)", "Psychic (avg)"});
  for (size_t ai = 0; ai < 4; ++ai) {
    avg.AddRow({util::FormatDouble(alphas[ai], 2), util::FormatPercent(optimal_avg[ai].mean()),
                util::FormatPercent(psychic_avg[ai].mean())});
  }
  std::printf("%s\n", avg.ToString().c_str());

  std::printf("Figure 2(b): delta efficiency (Optimal - Psychic) across servers\n");
  util::TextTable delta({"alpha", "avg", "min", "max"});
  for (size_t ai = 0; ai < 4; ++ai) {
    delta.AddRow({util::FormatDouble(alphas[ai], 2), util::FormatPercent(delta_stats[ai].mean()),
                  util::FormatPercent(delta_stats[ai].min()),
                  util::FormatPercent(delta_stats[ai].max())});
  }
  std::printf("%s\n", delta.ToString().c_str());
  std::printf("Paper: the average delta is 5-6%%; the LP bound always dominates (delta >= 0).\n");

  // Integrality gap spot-check (Sec. 9.1: "an exact optimal solution is also
  // within a gap of this theoretical bound as it is obtained through LP
  // relaxation, a nonzero gap as we have observed"). Solved by the exact
  // branch-and-bound IP on a further-reduced instance.
  std::printf("\nIntegrality gap spot-check (exact IP vs LP relaxation, tiny instance):\n");
  {
    trace::Trace full =
        bench::MakeServerTrace(trace::EuropeProfile(scale.workload_scale), two_days);
    trace::DownsampleOptions options;
    options.num_files = 10;
    options.file_cap_bytes = 20ull << 20;
    options.max_requests = 60;
    trace::DownsampledTrace tiny = trace::DownsampleForOptimal(full, options);
    if (tiny.trace.requests.size() >= 10) {
      core::CacheConfig config;
      config.chunk_bytes = core::kDefaultChunkBytes;
      config.disk_capacity_chunks = 7;
      config.alpha_f2r = 2.0;
      core::OptimalCacheSolver solver(config, core::OptimalOptions{});
      core::OptimalBound lp_bound = solver.SolveBound(tiny.trace);
      core::OptimalExactResult exact = solver.SolveExact(tiny.trace, /*max_nodes=*/20000);
      if (lp_bound.status == lp::SolveStatus::kOptimal &&
          exact.status == lp::SolveStatus::kOptimal) {
        std::printf("  LP relaxation:  cost %.3f (efficiency bound %s)\n", lp_bound.total_cost,
                    util::FormatPercent(lp_bound.efficiency_bound).c_str());
        std::printf("  Exact IP (B&B): cost %.3f (efficiency %s), %lld nodes\n", exact.total_cost,
                    util::FormatPercent(exact.efficiency).c_str(),
                    static_cast<long long>(exact.nodes_explored));
        std::printf("  Integrality gap: %.3f chunks of cost (%.2f%% of the bound)\n",
                    exact.total_cost - lp_bound.total_cost,
                    lp_bound.total_cost > 0
                        ? (exact.total_cost - lp_bound.total_cost) / lp_bound.total_cost * 100.0
                        : 0.0);
      } else {
        std::printf("  (skipped: LP %s, IP %s)\n", lp::SolveStatusName(lp_bound.status),
                    lp::SolveStatusName(exact.status));
      }
    }
  }
  return obs.WriteIfRequested().ok() ? 0 : 1;
}
