// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Figure 3: "Ingress, redirection, and overall cache efficiency over the
// 1-month period" -- Europe server, 1 TB disk, alpha_F2R = 2, hourly series
// for xLRU / Cafe / Psychic.
//
// Paper's reported shape: a clear diurnal pattern in ingress and redirection
// for all caches; comparable redirection ratios (Cafe slightly higher); a
// significant drop in ingress from xLRU to Cafe/Psychic; average efficiency
// +10.1% (Cafe) and +12.7% (Psychic) over xLRU.
//
// Output: steady-state summary plus a daily-resolution series table (hourly
// data is also written to fig3_series.csv for plotting).

#include <cstdio>
#include <fstream>

#include "bench/bench_common.h"
#include "src/util/str_util.h"

namespace {

void WriteSeriesCsv(const std::vector<vcdn::sim::ReplayResult>& results, const char* path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  out << "hour";
  for (const auto& r : results) {
    out << "," << r.cache_name << "_ingress_pct," << r.cache_name << "_redirect_pct,"
        << r.cache_name << "_efficiency";
  }
  out << "\n";
  size_t hours = results[0].series.size();
  for (size_t h = 0; h < hours; ++h) {
    out << h;
    for (const auto& r : results) {
      const auto& p = r.series[h];
      double ingress = p.served_bytes > 0
                           ? static_cast<double>(p.filled_bytes) / static_cast<double>(p.served_bytes)
                           : 0.0;
      double redirect = p.requested_bytes > 0 ? static_cast<double>(p.redirected_bytes) /
                                                    static_cast<double>(p.requested_bytes)
                                              : 0.0;
      double fill_cost = 2.0 * r.alpha_f2r / (r.alpha_f2r + 1.0);
      double redirect_cost = 2.0 / (r.alpha_f2r + 1.0);
      double efficiency =
          p.requested_bytes > 0
              ? 1.0 -
                    static_cast<double>(p.filled_bytes) / static_cast<double>(p.requested_bytes) *
                        fill_cost -
                    redirect * redirect_cost
              : 0.0;
      out << "," << ingress << "," << redirect << "," << efficiency;
    }
    out << "\n";
  }
  std::printf("Hourly series written to %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv);
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("fig3 timeseries", scale.seed);
  bench::PrintHeader(
      "Figure 3: ingress / redirection / efficiency time series (Europe, 1 TB, alpha=2)",
      "diurnal pattern in ingress & redirects; xLRU ingress >> Cafe ~ Psychic; "
      "Cafe +10.1% and Psychic +12.7% average efficiency over xLRU",
      scale);

  trace::Trace trace = bench::MakeEuropeTrace(scale);
  core::CacheConfig config = bench::PaperConfig(1.0, 2.0, scale);

  std::vector<bench::CacheJob> jobs;
  for (auto kind : {core::CacheKind::kXlru, core::CacheKind::kCafe, core::CacheKind::kPsychic}) {
    jobs.push_back(bench::CacheJob{"europe", kind, config, &trace});
  }
  std::vector<sim::ReplayResult> results = bench::RunCacheJobs(jobs, flags, &obs);

  std::printf("\nSteady-state averages (second half of the month):\n");
  util::TextTable summary({"cache", "efficiency", "ingress %", "redirect %", "delta eff vs xLRU"});
  for (const auto& r : results) {
    summary.AddRow({r.cache_name, util::FormatPercent(r.efficiency),
                    util::FormatPercent(r.ingress_fraction),
                    util::FormatPercent(r.redirect_fraction),
                    util::FormatPercent(r.efficiency - results[0].efficiency)});
  }
  std::printf("%s\n", summary.ToString().c_str());

  // Whole-run ingress/eviction volume (warmup included) -- the same
  // quantities the --obs-json registry counters report.
  std::printf("Whole-run chunk totals:\n");
  for (const auto& r : results) {
    std::printf("  %-8s filled %llu (of which proactive %llu), evicted %llu\n",
                r.cache_name.c_str(),
                static_cast<unsigned long long>(r.totals.filled_chunks),
                static_cast<unsigned long long>(r.totals.proactive_filled_chunks),
                static_cast<unsigned long long>(r.totals.evicted_chunks));
  }
  std::printf("\n");

  // Daily aggregation of the hourly series (readable in a terminal).
  std::printf("Daily series (ingress%% / redirect%% per cache):\n");
  util::TextTable daily({"day", "xLRU in%", "xLRU rd%", "Cafe in%", "Cafe rd%", "Psy in%",
                         "Psy rd%"});
  size_t hours = results[0].series.size();
  for (size_t day = 0; day * 24 < hours; ++day) {
    std::vector<std::string> row{std::to_string(day)};
    for (const auto& r : results) {
      uint64_t requested = 0;
      uint64_t served = 0;
      uint64_t redirected = 0;
      uint64_t filled = 0;
      for (size_t h = day * 24; h < std::min(hours, (day + 1) * 24); ++h) {
        requested += r.series[h].requested_bytes;
        served += r.series[h].served_bytes;
        redirected += r.series[h].redirected_bytes;
        filled += r.series[h].filled_bytes;
      }
      double ingress = served > 0 ? static_cast<double>(filled) / static_cast<double>(served) : 0.0;
      double redirect =
          requested > 0 ? static_cast<double>(redirected) / static_cast<double>(requested) : 0.0;
      row.push_back(util::FormatPercent(ingress));
      row.push_back(util::FormatPercent(redirect));
    }
    daily.AddRow(row);
  }
  std::printf("%s\n", daily.ToString().c_str());

  WriteSeriesCsv(results, "fig3_series.csv");

  // Diurnal check: hour-of-day profile of requested bytes (second half).
  std::printf("\nHour-of-day demand profile (should be diurnal):\n");
  std::vector<double> by_hour(24, 0.0);
  for (size_t h = hours / 2; h < hours; ++h) {
    by_hour[h % 24] += static_cast<double>(results[0].series[h].requested_bytes);
  }
  double peak = 0.0;
  for (double v : by_hour) {
    peak = std::max(peak, v);
  }
  for (int hod = 0; hod < 24; ++hod) {
    int bar = peak > 0 ? static_cast<int>(by_hour[static_cast<size_t>(hod)] / peak * 50) : 0;
    std::printf("%02d:00 %s\n", hod, std::string(static_cast<size_t>(bar), '#').c_str());
  }
  return obs.WriteIfRequested().ok() ? 0 : 1;
}
