// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Fleet scaling sweep: replays the Fig. 7 experiment (six servers x three
// algorithms = 18 independent replay jobs) across 1..N worker threads and
// reports wall time, speedup and the work-stealing pool's task accounting
// per thread count.
//
// The sweep double-checks the determinism contract (docs/PARALLELISM.md):
// every thread count must produce the same FleetDigest as the sequential
// run -- the digest covers every per-server total, steady-state window and
// time-series point, so a single reordered or raced byte flips it.
//
// Flags: --max-threads N (sweep upper bound, default min(hardware, 8)),
// --repeat K (replays per thread count, fastest wall time reported),
// --obs-json <path> (instruments attached to the final sweep run).

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/check.h"
#include "src/util/str_util.h"

namespace {

size_t ArgSize(int argc, char** argv, const char* name, size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == name) {
      uint64_t parsed = 0;
      if (vcdn::util::ParseUint64(argv[i + 1], &parsed) && parsed > 0) {
        return static_cast<size_t>(parsed);
      }
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv, {"--max-threads"});
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("fleet scaling", scale.seed);
  const size_t hardware = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t max_threads = ArgSize(argc, argv, "--max-threads", std::min<size_t>(hardware, 8));
  bench::PrintHeader(
      "Fleet scaling: Fig. 7 fleet (6 servers x 3 algorithms) on 1..N threads",
      "parallel replay is bit-identical to sequential for any thread count "
      "(FleetDigest check) and scales with cores until 18 jobs run out",
      scale);
  std::printf("Hardware concurrency %zu, sweeping 1..%zu threads, %zu repeat%s per point\n\n",
              hardware, max_threads, flags.repeat, flags.repeat == 1 ? "" : "s");

  // The fleet under test: one trace per paper server (generated in parallel),
  // all three algorithms per server at the Fig. 7 operating point.
  bench::BenchFlags gen_flags = flags;
  gen_flags.threads = 0;  // trace generation always uses all cores
  std::vector<trace::ServerProfile> profiles = trace::PaperServerProfiles(scale.workload_scale);
  std::vector<trace::Trace> traces = bench::MakeServerTraces(profiles, scale, gen_flags);
  core::CacheConfig config = bench::PaperConfig(1.0, 2.0, scale);

  std::vector<sim::FleetServer> servers;
  const core::CacheKind kinds[] = {core::CacheKind::kXlru, core::CacheKind::kCafe,
                                   core::CacheKind::kPsychic};
  for (size_t s = 0; s < profiles.size(); ++s) {
    for (core::CacheKind kind : kinds) {
      servers.push_back(sim::FleetServer{profiles[s].name, kind, config, &traces[s]});
    }
  }

  uint64_t requests = 0;
  for (const trace::Trace& trace : traces) {
    requests += trace.requests.size();
  }
  std::printf("%zu jobs over %llu requests\n\n", servers.size(),
              static_cast<unsigned long long>(requests) * 3);

  util::TextTable table(
      {"threads", "wall s", "speedup", "jobs/s", "tasks stolen", "digest", "match"});
  double sequential_wall = 0.0;
  uint64_t reference_digest = 0;
  bool all_match = true;
  const bool obs_on = obs.enabled();

  for (size_t threads = 1; threads <= max_threads; ++threads) {
    const bool last_point = threads == max_threads;
    double best_wall = 0.0;
    uint64_t digest = 0;
    uint64_t stolen = 0;
    for (size_t k = 0; k < flags.repeat; ++k) {
      const bool record_obs = obs_on && last_point && k + 1 == flags.repeat;
      sim::FleetOptions options;
      if (record_obs) {
        options.replay.metrics = obs.metrics();
        options.replay.trace_sink = obs.trace_sink();
      }
      sim::FleetResult result;
      if (threads == 1) {
        options.threads = 1;  // the inline sequential reference, no pool
        result = sim::RunFleet(servers, options);
      } else {
        exec::ThreadPoolOptions pool_options;
        pool_options.num_threads = threads;
        if (record_obs) {
          pool_options.metrics = obs.metrics();
          pool_options.trace_sink = obs.trace_sink();
        }
        exec::ThreadPool pool(pool_options);
        options.pool = &pool;
        result = sim::RunFleet(servers, options);
        pool.Shutdown();
        stolen = pool.stats().stolen;
      }
      uint64_t d = sim::FleetDigest(result);
      if (k == 0) {
        digest = d;
      } else {
        VCDN_CHECK(d == digest);  // repeats must agree
      }
      best_wall = k == 0 ? result.wall_seconds : std::min(best_wall, result.wall_seconds);
    }
    if (threads == 1) {
      sequential_wall = best_wall;
      reference_digest = digest;
    }
    const bool match = digest == reference_digest;
    all_match = all_match && match;
    char digest_hex[32];
    std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                  static_cast<unsigned long long>(digest));
    table.AddRow({std::to_string(threads), util::FormatDouble(best_wall, 2),
                  util::FormatDouble(best_wall > 0 ? sequential_wall / best_wall : 0.0, 2),
                  util::FormatDouble(
                      best_wall > 0 ? static_cast<double>(servers.size()) / best_wall : 0.0, 1),
                  std::to_string(stolen), digest_hex, match ? "OK" : "MISMATCH"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Determinism across thread counts: %s\n", all_match ? "OK" : "MISMATCH");
  const bool obs_ok = obs.WriteIfRequested().ok();
  return all_match && obs_ok ? 0 : 1;
}
