// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Figure 5: "Different operating points of each algorithm in the tradeoff
// between cache fill and redirection, governed by alpha_F2R" -- Europe, 1 TB;
// the four points from left to right are alpha = 4, 2, 1, 0.5; x-axis is
// ingress-to-egress %, y-axis redirection %.
//
// Paper's reported shape: as ingress gets costlier all caches redirect more
// and ingress less, but xLRU's ingress bottoms out around 15% even at
// alpha=4 while Cafe and Psychic comply with the configured cost and shrink
// ingress to a few percent.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/str_util.h"

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv);
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("fig5 operating points", scale.seed);
  bench::PrintHeader(
      "Figure 5: operating points (ingress% vs redirect%) for alpha in {4,2,1,0.5}",
      "xLRU ingress floor ~15% at alpha=4; Cafe/Psychic shrink ingress to a few %; "
      "cheap ingress (alpha=0.5) -> xLRU & Psychic redirect more than Cafe",
      scale);

  trace::Trace trace = bench::MakeEuropeTrace(scale);

  const double alphas[] = {4.0, 2.0, 1.0, 0.5};
  const core::CacheKind kinds[] = {core::CacheKind::kXlru, core::CacheKind::kCafe,
                                   core::CacheKind::kPsychic};
  std::vector<bench::CacheJob> jobs;
  for (double alpha : alphas) {
    for (core::CacheKind kind : kinds) {
      jobs.push_back(bench::CacheJob{"alpha" + util::FormatDouble(alpha, 2), kind,
                                     bench::PaperConfig(1.0, alpha, scale), &trace});
    }
  }
  std::vector<sim::ReplayResult> results = bench::RunCacheJobs(jobs, flags, &obs);

  util::TextTable table({"alpha_F2R", "cache", "ingress %", "redirect %", "efficiency"});
  for (size_t a = 0; a < 4; ++a) {
    for (size_t k = 0; k < 3; ++k) {
      const sim::ReplayResult& r = results[a * 3 + k];
      table.AddRow({util::FormatDouble(alphas[a], 2), r.cache_name,
                    util::FormatPercent(r.ingress_fraction),
                    util::FormatPercent(r.redirect_fraction), util::FormatPercent(r.efficiency)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Shape checks:\n");
  const sim::ReplayResult& xlru4 = results[0];  // alpha=4 is the first job row
  const sim::ReplayResult& cafe4 = results[1];
  std::printf("  xLRU ingress floor at alpha=4:   %s (paper: ~15%%)\n",
              util::FormatPercent(xlru4.ingress_fraction).c_str());
  std::printf("  Cafe ingress at alpha=4:         %s (paper: a few %%)\n",
              util::FormatPercent(cafe4.ingress_fraction).c_str());
  return obs.WriteIfRequested().ok() ? 0 : 1;
}
