// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Figure 5: "Different operating points of each algorithm in the tradeoff
// between cache fill and redirection, governed by alpha_F2R" -- Europe, 1 TB;
// the four points from left to right are alpha = 4, 2, 1, 0.5; x-axis is
// ingress-to-egress %, y-axis redirection %.
//
// Paper's reported shape: as ingress gets costlier all caches redirect more
// and ingress less, but xLRU's ingress bottoms out around 15% even at
// alpha=4 while Cafe and Psychic comply with the configured cost and shrink
// ingress to a few percent.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/str_util.h"

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchScale scale = bench::ScaleFromEnv();
  bench::BenchObs obs(argc, argv);
  bench::PrintHeader(
      "Figure 5: operating points (ingress% vs redirect%) for alpha in {4,2,1,0.5}",
      "xLRU ingress floor ~15% at alpha=4; Cafe/Psychic shrink ingress to a few %; "
      "cheap ingress (alpha=0.5) -> xLRU & Psychic redirect more than Cafe",
      scale);

  trace::Trace trace = bench::MakeEuropeTrace(scale);

  util::TextTable table({"alpha_F2R", "cache", "ingress %", "redirect %", "efficiency"});
  for (double alpha : {4.0, 2.0, 1.0, 0.5}) {
    core::CacheConfig config = bench::PaperConfig(1.0, alpha, scale);
    for (auto kind : {core::CacheKind::kXlru, core::CacheKind::kCafe, core::CacheKind::kPsychic}) {
      sim::ReplayResult r = bench::RunCache(kind, trace, config, &obs);
      table.AddRow({util::FormatDouble(alpha, 2), r.cache_name,
                    util::FormatPercent(r.ingress_fraction),
                    util::FormatPercent(r.redirect_fraction), util::FormatPercent(r.efficiency)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Shape checks:\n");
  core::CacheConfig config4 = bench::PaperConfig(1.0, 4.0, scale);
  sim::ReplayResult xlru4 = bench::RunCache(core::CacheKind::kXlru, trace, config4, &obs);
  sim::ReplayResult cafe4 = bench::RunCache(core::CacheKind::kCafe, trace, config4, &obs);
  std::printf("  xLRU ingress floor at alpha=4:   %s (paper: ~15%%)\n",
              util::FormatPercent(xlru4.ingress_fraction).c_str());
  std::printf("  Cafe ingress at alpha=4:         %s (paper: a few %%)\n",
              util::FormatPercent(cafe4.ingress_fraction).c_str());
  obs.WriteIfRequested();
  return 0;
}
