// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Figure 7: "Efficiency of the algorithms on traces from six servers around
// the world" -- 1 TB disk, alpha_F2R = 2, bars for xLRU / Cafe / Psychic per
// server (Africa, Asia, Australia, Europe, N. America, S. America).
//
// Paper's reported shape: the same xLRU < Cafe < Psychic ordering on every
// server; per-server levels differ with request volume/diversity (Asia, with
// more limited requests, is the most efficient; the busy South American
// server the least, with the widest xLRU gap).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/str_util.h"

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchScale scale = bench::ScaleFromEnv();
  bench::BenchObs obs(argc, argv);
  bench::PrintHeader(
      "Figure 7: efficiency across six servers (1 TB, alpha=2)",
      "same ordering everywhere; higher efficiency for narrow request profiles (Asia), "
      "lower + wider xLRU gap for busy/diverse servers (S. America)",
      scale);

  core::CacheConfig config = bench::PaperConfig(1.0, 2.0, scale);
  util::TextTable table(
      {"server", "requests", "xLRU", "Cafe", "Psychic", "Cafe-xLRU", "Psy-xLRU"});

  double asia_cafe = 0.0;
  double sa_cafe = 0.0;
  double sa_gap = 0.0;
  double asia_gap = 0.0;
  for (const trace::ServerProfile& profile : trace::PaperServerProfiles(scale.workload_scale)) {
    trace::Trace trace = bench::MakeServerTrace(profile, scale);
    sim::ReplayResult xlru = bench::RunCache(core::CacheKind::kXlru, trace, config, &obs);
    sim::ReplayResult cafe = bench::RunCache(core::CacheKind::kCafe, trace, config, &obs);
    sim::ReplayResult psychic = bench::RunCache(core::CacheKind::kPsychic, trace, config, &obs);
    table.AddRow({profile.name, std::to_string(trace.requests.size()),
                  util::FormatPercent(xlru.efficiency), util::FormatPercent(cafe.efficiency),
                  util::FormatPercent(psychic.efficiency),
                  util::FormatPercent(cafe.efficiency - xlru.efficiency),
                  util::FormatPercent(psychic.efficiency - xlru.efficiency)});
    if (profile.name == "Asia") {
      asia_cafe = cafe.efficiency;
      asia_gap = cafe.efficiency - xlru.efficiency;
    }
    if (profile.name == "SouthAmerica") {
      sa_cafe = cafe.efficiency;
      sa_gap = cafe.efficiency - xlru.efficiency;
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Shape checks:\n");
  std::printf("  Asia (narrow profile) efficiency %s > SouthAmerica (busy) %s : %s\n",
              util::FormatPercent(asia_cafe).c_str(), util::FormatPercent(sa_cafe).c_str(),
              asia_cafe > sa_cafe ? "OK" : "MISMATCH");
  std::printf("  xLRU gap wider on SouthAmerica (%s) than Asia (%s) : %s\n",
              util::FormatPercent(sa_gap).c_str(), util::FormatPercent(asia_gap).c_str(),
              sa_gap > asia_gap ? "OK" : "MISMATCH");
  obs.WriteIfRequested();
  return 0;
}
