// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Figure 7: "Efficiency of the algorithms on traces from six servers around
// the world" -- 1 TB disk, alpha_F2R = 2, bars for xLRU / Cafe / Psychic per
// server (Africa, Asia, Australia, Europe, N. America, S. America).
//
// Paper's reported shape: the same xLRU < Cafe < Psychic ordering on every
// server; per-server levels differ with request volume/diversity (Asia, with
// more limited requests, is the most efficient; the busy South American
// server the least, with the widest xLRU gap).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/str_util.h"

int main(int argc, char** argv) {
  using namespace vcdn;
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv);
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("fig7 six servers", scale.seed);
  bench::PrintHeader(
      "Figure 7: efficiency across six servers (1 TB, alpha=2)",
      "same ordering everywhere; higher efficiency for narrow request profiles (Asia), "
      "lower + wider xLRU gap for busy/diverse servers (S. America)",
      scale);

  core::CacheConfig config = bench::PaperConfig(1.0, 2.0, scale);

  // Generate the six server traces and replay the 18 independent
  // (server x algorithm) jobs across the worker pool; results are identical
  // for any --threads value.
  std::vector<trace::ServerProfile> profiles = trace::PaperServerProfiles(scale.workload_scale);
  std::vector<trace::Trace> traces = bench::MakeServerTraces(profiles, scale, flags);

  const core::CacheKind kinds[] = {core::CacheKind::kXlru, core::CacheKind::kCafe,
                                   core::CacheKind::kPsychic};
  std::vector<bench::CacheJob> jobs;
  for (size_t s = 0; s < profiles.size(); ++s) {
    for (core::CacheKind kind : kinds) {
      jobs.push_back(bench::CacheJob{profiles[s].name, kind, config, &traces[s]});
    }
  }
  std::vector<sim::ReplayResult> results = bench::RunCacheJobs(jobs, flags, &obs);

  util::TextTable table(
      {"server", "requests", "xLRU", "Cafe", "Psychic", "Cafe-xLRU", "Psy-xLRU"});
  double asia_cafe = 0.0;
  double sa_cafe = 0.0;
  double sa_gap = 0.0;
  double asia_gap = 0.0;
  for (size_t s = 0; s < profiles.size(); ++s) {
    const sim::ReplayResult& xlru = results[s * 3];
    const sim::ReplayResult& cafe = results[s * 3 + 1];
    const sim::ReplayResult& psychic = results[s * 3 + 2];
    table.AddRow({profiles[s].name, std::to_string(traces[s].requests.size()),
                  util::FormatPercent(xlru.efficiency), util::FormatPercent(cafe.efficiency),
                  util::FormatPercent(psychic.efficiency),
                  util::FormatPercent(cafe.efficiency - xlru.efficiency),
                  util::FormatPercent(psychic.efficiency - xlru.efficiency)});
    if (profiles[s].name == "Asia") {
      asia_cafe = cafe.efficiency;
      asia_gap = cafe.efficiency - xlru.efficiency;
    }
    if (profiles[s].name == "SouthAmerica") {
      sa_cafe = cafe.efficiency;
      sa_gap = cafe.efficiency - xlru.efficiency;
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Shape checks:\n");
  std::printf("  Asia (narrow profile) efficiency %s > SouthAmerica (busy) %s : %s\n",
              util::FormatPercent(asia_cafe).c_str(), util::FormatPercent(sa_cafe).c_str(),
              asia_cafe > sa_cafe ? "OK" : "MISMATCH");
  std::printf("  xLRU gap wider on SouthAmerica (%s) than Asia (%s) : %s\n",
              util::FormatPercent(sa_gap).c_str(), util::FormatPercent(asia_gap).c_str(),
              sa_gap > asia_gap ? "OK" : "MISMATCH");
  return obs.WriteIfRequested().ok() ? 0 : 1;
}
