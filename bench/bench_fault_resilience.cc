// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Fault resilience: exercises the paper's "lines of defense" under failure.
//
// Part 1 sweeps seeded outage schedules (outage fraction x algorithm) over a
// multi-server fleet and checks the determinism contract under fault
// injection: the FleetDigest at --threads N must equal the sequential run's
// digest for every point, with the digest covering the degraded-mode
// accounting (unavailable requests/bytes per shard and series bucket).
//
// Part 2 runs the two-tier hierarchy through a parent-outage window and
// prints the per-bucket view of the origin absorbing the redirect stream
// while the second defense line is down, then recovering.
//
// Flags: --threads N (parallel run of the digest check, default 7),
// --repeat K, --obs-json <path>.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/fault/fault.h"
#include "src/sim/hierarchy.h"
#include "src/util/check.h"
#include "src/util/str_util.h"

namespace {

using namespace vcdn;

std::string DigestHex(uint64_t digest) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(digest));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::FlagsFromArgs(argc, argv);
  bench::BenchScale scale = bench::ResolveScale(flags);
  bench::BenchObs obs(argc, argv);
  obs.SetWorkload("fault resilience", scale.seed);
  const size_t parallel_threads = flags.threads == 0 ? 7 : flags.threads;
  bench::PrintHeader(
      "Fault resilience: seeded outage schedules over the defense lines",
      "degraded-mode replay stays bit-identical across thread counts; during "
      "a parent outage the origin absorbs the redirect stream, then recovers",
      scale);

  bench::BenchFlags gen_flags = flags;
  gen_flags.threads = 0;
  std::vector<trace::ServerProfile> profiles = trace::PaperServerProfiles(scale.workload_scale);
  std::vector<trace::Trace> traces = bench::MakeServerTraces(profiles, scale, gen_flags);
  core::CacheConfig config = bench::PaperConfig(1.0, 2.0, scale);

  // --- Part 1: fleet determinism under fault injection -----------------------
  std::printf("Fleet digest check: sequential vs %zu threads, per (outage fraction, algorithm)\n\n",
              parallel_threads);
  const double outage_fractions[] = {0.0, 0.1, 0.25, 0.5};
  const core::CacheKind kinds[] = {core::CacheKind::kXlru, core::CacheKind::kCafe,
                                   core::CacheKind::kFillLru};
  util::TextTable table({"outage frac", "algorithm", "unavailable", "availability",
                         "digest", "match"});
  bool all_match = true;

  for (double outage_fraction : outage_fractions) {
    fault::RandomFaultOptions fault_options;
    fault_options.duration = scale.duration_seconds();
    fault_options.num_edges = traces.size();
    fault_options.outages_per_edge = outage_fraction > 0.0 ? 2 : 0;
    fault_options.outage_fraction = outage_fraction;
    fault_options.restarts_per_edge = outage_fraction > 0.0 ? 1 : 0;
    fault_options.degrades_per_edge = outage_fraction > 0.0 ? 1 : 0;
    fault::FaultSchedule schedule = MakeRandomFaultSchedule(scale.seed, fault_options);
    VCDN_CHECK(schedule.Validate().ok());

    for (core::CacheKind kind : kinds) {
      std::vector<sim::FleetServer> servers;
      for (size_t s = 0; s < traces.size(); ++s) {
        servers.push_back(sim::FleetServer{profiles[s].name, kind, config, &traces[s]});
      }
      auto run = [&](size_t threads) {
        sim::FleetOptions options;
        options.threads = threads;
        if (!schedule.empty()) {
          options.replay.faults = &schedule;
        }
        return sim::RunFleet(servers, options);
      };
      sim::FleetResult sequential = run(1);
      const uint64_t reference = sim::FleetDigest(sequential);
      uint64_t parallel = 0;
      for (size_t k = 0; k < flags.repeat; ++k) {
        parallel = sim::FleetDigest(run(parallel_threads));
        if (parallel != reference) {
          break;
        }
      }
      const bool match = parallel == reference;
      all_match = all_match && match;
      const double availability =
          sequential.totals.requests > 0
              ? 1.0 - static_cast<double>(sequential.totals.unavailable_requests) /
                          static_cast<double>(sequential.totals.requests)
              : 1.0;
      table.AddRow({util::FormatDouble(outage_fraction, 2),
                    std::string(core::CacheKindName(kind)),
                    std::to_string(sequential.totals.unavailable_requests),
                    util::FormatDouble(availability, 4), DigestHex(reference),
                    match ? "OK" : "MISMATCH"});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Determinism under faults (threads 1 vs %zu): %s\n\n", parallel_threads,
              all_match ? "OK" : "MISMATCH");

  // --- Part 2: parent outage absorbed by the origin --------------------------
  const double duration = scale.duration_seconds();
  fault::FaultSchedule parent_schedule;
  {
    fault::FaultEvent outage;
    outage.kind = fault::FaultKind::kParentOutage;
    outage.start = 0.60 * duration;
    outage.end = 0.70 * duration;
    parent_schedule.Add(outage);
    VCDN_CHECK(parent_schedule.Validate().ok());
  }
  const size_t num_edges = std::min<size_t>(3, traces.size());
  std::vector<trace::Trace> edge_traces(traces.begin(),
                                        traces.begin() + static_cast<long>(num_edges));

  sim::HierarchyConfig hierarchy;
  hierarchy.edge_kind = core::CacheKind::kCafe;
  hierarchy.edge_config = bench::PaperConfig(0.5, 2.0, scale);
  hierarchy.parent_kind = core::CacheKind::kCafe;
  hierarchy.parent_config = bench::PaperConfig(2.0, 1.0, scale);
  hierarchy.replay = obs.replay_options();
  hierarchy.replay.bucket_seconds = duration / 20.0;
  hierarchy.faults = &parent_schedule;
  hierarchy.threads = parallel_threads;
  sim::HierarchyResult result = sim::RunHierarchy(edge_traces, hierarchy);

  std::printf("Parent outage over [%.0f, %.0f) s, %zu edges; per-bucket origin view:\n\n",
              0.60 * duration, 0.70 * duration, num_edges);
  util::TextTable outage_table({"bucket", "window", "parent-served B", "outage-origin B"});
  const size_t buckets = std::max(result.outage_origin_series.size(), result.parent.series.size());
  for (size_t b = 0; b < buckets; ++b) {
    const double bucket_start = static_cast<double>(b) * hierarchy.replay.bucket_seconds;
    const bool in_window = bucket_start >= 0.60 * duration && bucket_start < 0.70 * duration;
    uint64_t parent_served = 0;
    for (const sim::SeriesPoint& point : result.parent.series) {
      if (point.bucket_start == bucket_start) {
        parent_served = point.served_bytes;
      }
    }
    const double outage_origin =
        b < result.outage_origin_series.size() ? result.outage_origin_series[b] : 0.0;
    outage_table.AddRow({std::to_string(b), in_window ? "OUTAGE" : "",
                         std::to_string(parent_served),
                         util::FormatDouble(outage_origin, 0)});
  }
  std::printf("%s\n", outage_table.ToString().c_str());
  std::printf("availability %.4f, parent-outage bytes %llu, origin cost %.0f "
              "(origin bytes %llu)\n",
              result.availability,
              static_cast<unsigned long long>(result.parent_outage_bytes), result.origin_cost,
              static_cast<unsigned long long>(result.origin_bytes));

  // The origin must have absorbed traffic inside the window and none outside
  // it (no edge outages in this schedule).
  bool absorbed = result.parent_outage_bytes > 0;
  bool recovered = true;
  for (size_t b = 0; b < result.outage_origin_series.size(); ++b) {
    const double bucket_start = static_cast<double>(b) * hierarchy.replay.bucket_seconds;
    const bool may_overlap_window = bucket_start + hierarchy.replay.bucket_seconds >
                                        0.60 * duration &&
                                    bucket_start < 0.70 * duration;
    if (!may_overlap_window && result.outage_origin_series[b] != 0.0) {
      recovered = false;
    }
  }
  std::printf("Origin absorbed outage traffic: %s; recovered outside window: %s\n",
              absorbed ? "OK" : "FAIL", recovered ? "OK" : "FAIL");

  const bool obs_ok = obs.WriteIfRequested().ok();
  return all_match && absorbed && recovered && obs_ok ? 0 : 1;
}
