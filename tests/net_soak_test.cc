// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Loopback soak test: N connections x M requests against a live EdgeServer,
// asserting (a) every request gets exactly one response -- nothing lost,
// nothing duplicated -- across repeated replays over fresh connections, and
// (b) the serve path performs zero steady-state allocations. This binary
// links vcdn_alloc_hook, so the daemon's util::AllocScope around each shard
// drain counts real operator-new calls into net.server.serve_allocs_total;
// after a warmup pass has grown every buffer to its working set, a second
// full pass must add zero.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "src/core/cache_factory.h"
#include "src/exec/thread_pool.h"
#include "src/net/edge_server.h"
#include "src/net/load_gen.h"
#include "src/obs/metrics.h"
#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"
#include "src/util/alloc_hook.h"

namespace vcdn::net {
namespace {

trace::Trace MakeTrace(uint64_t seed, double duration_seconds) {
  trace::WorkloadConfig config;
  config.profile = trace::PaperServerProfiles(0.02)[0];
  // Pin the arrival rate so the trace size is set by the duration argument
  // (the scaled-down paper profile alone generates only a handful).
  config.profile.base_request_rate = 4.0;
  config.seed = seed;
  config.duration_seconds = duration_seconds;
  return trace::WorkloadGenerator(config).Generate().trace;
}

uint64_t TotalFolded(const EdgeServer& server) {
  uint64_t folded = 0;
  for (size_t s = 0; s < server.num_shards(); ++s) {
    folded += server.ShardDigest(s).count;
  }
  return folded;
}

void WaitForFolded(const EdgeServer& server, uint64_t expected) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (TotalFolded(server) < expected && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(NetSoakTest, EveryResponseAccountedAndServePathAllocFree) {
  ASSERT_TRUE(util::AllocHookActive()) << "soak test must link vcdn_alloc_hook";

  const trace::Trace trace = MakeTrace(17, 2.0 * 3600.0);
  const uint64_t requests_per_pass = trace.requests.size();
  ASSERT_GT(requests_per_pass, 2000u);

  exec::ThreadPool pool(4);
  obs::MetricsRegistry registry;
  EdgeServerOptions options;
  // xLRU runs on the flat containers whose steady state is proven
  // allocation-free in container_flat_differential_test; the soak extends
  // that proof across sockets, parser, strand and encoder.
  options.cache_kind = core::CacheKind::kXlru;
  options.cache_config.disk_capacity_chunks = 4096;
  options.num_shards = 2;
  options.metrics = &registry;
  EdgeServer server(pool, options);
  ASSERT_TRUE(server.Start().ok());

  obs::Counter serve_allocs = registry.GetCounter("net.server.serve_allocs_total");

  LoadGenOptions load;
  load.port = server.port();
  load.connections = 4;
  load.pipeline_depth = 32;

  // Pass 1 (warmup): grows caches, wire buffers and shard scratch to their
  // working sets.
  util::Result<LoadGenResult> warmup = RunClosedLoop(trace, load);
  ASSERT_TRUE(warmup.ok()) << warmup.status().message();
  EXPECT_EQ(warmup.value().requests_sent, requests_per_pass);
  EXPECT_EQ(warmup.value().responses_received, requests_per_pass);
  WaitForFolded(server, requests_per_pass);
  ASSERT_EQ(TotalFolded(server), requests_per_pass);

  // Pass 2 (measured): the same trace over fresh connections. The serve
  // path -- inbox swap, batch build, cache admission, digest fold, response
  // encode, socket flush -- must not allocate at all.
  const uint64_t allocs_before = serve_allocs.value();
  util::Result<LoadGenResult> measured = RunClosedLoop(trace, load);
  ASSERT_TRUE(measured.ok()) << measured.status().message();
  EXPECT_EQ(measured.value().requests_sent, requests_per_pass);
  EXPECT_EQ(measured.value().responses_received, requests_per_pass);
  WaitForFolded(server, 2 * requests_per_pass);
  ASSERT_EQ(TotalFolded(server), 2 * requests_per_pass);
  const uint64_t allocs_during = serve_allocs.value() - allocs_before;
  EXPECT_EQ(allocs_during, 0u)
      << "serve path allocated " << allocs_during << " times during the measured pass";

  // Global request accounting across both passes.
  EXPECT_EQ(registry.GetCounter("net.server.requests_total").value(), 2 * requests_per_pass);
  EXPECT_EQ(registry.GetCounter("net.server.responses_total").value(), 2 * requests_per_pass);
  EXPECT_EQ(registry.GetCounter("net.server.protocol_errors_total").value(), 0u);

  server.Stop();
  pool.Shutdown();
}

// Repeated short replays over many short-lived connections: connection
// churn must not leak responses or confuse accounting.
TEST(NetSoakTest, ConnectionChurnKeepsAccountingExact) {
  const trace::Trace trace = MakeTrace(23, 900.0);
  const uint64_t per_pass = trace.requests.size();
  exec::ThreadPool pool(2);
  obs::MetricsRegistry registry;
  EdgeServerOptions options;
  options.cache_config.disk_capacity_chunks = 2048;
  options.metrics = &registry;
  EdgeServer server(pool, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kPasses = 8;
  for (int pass = 0; pass < kPasses; ++pass) {
    LoadGenOptions load;
    load.port = server.port();
    load.connections = 1 + static_cast<size_t>(pass % 3);
    load.pipeline_depth = 1 + static_cast<size_t>(pass * 7 % 33);
    util::Result<LoadGenResult> result = RunClosedLoop(trace, load);
    ASSERT_TRUE(result.ok()) << "pass " << pass << ": " << result.status().message();
    ASSERT_EQ(result.value().responses_received, per_pass) << "pass " << pass;
  }
  WaitForFolded(server, static_cast<uint64_t>(kPasses) * per_pass);
  EXPECT_EQ(TotalFolded(server), static_cast<uint64_t>(kPasses) * per_pass);
  EXPECT_EQ(registry.GetCounter("net.server.requests_total").value(),
            static_cast<uint64_t>(kPasses) * per_pass);
  server.Stop();
  pool.Shutdown();
}

}  // namespace
}  // namespace vcdn::net
