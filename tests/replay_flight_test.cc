// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Flight recorder and windowed series through the replay engine, end to end:
// the hot-path contract (recording allocates nothing), the fleet contract
// (series and merged ring are bit-identical at any thread count), and the
// post-mortem contract (a seeded fault replay dumps byte-identical JSONL
// across runs). Links vcdn_alloc_hook so AllocCounters() ticks.

#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/run_metadata.h"
#include "src/obs/time_series.h"
#include "src/sim/parallel_fleet.h"
#include "src/sim/replay.h"
#include "src/util/alloc_hook.h"
#include "tests/cache_test_util.h"

namespace vcdn::sim {
namespace {

using ::vcdn::testing::ChunkReq;
using ::vcdn::testing::MakeTrace;
using ::vcdn::testing::SmallConfig;

// One request per second over [0, seconds); `spread` distinct videos.
trace::Trace UniformTrace(int seconds, int spread) {
  std::vector<ChunkReq> reqs;
  for (int i = 0; i < seconds; ++i) {
    reqs.push_back({static_cast<double>(i), static_cast<trace::VideoId>(1 + i % spread), 0, 1});
  }
  return MakeTrace(reqs);
}

obs::RunMetadata TestMeta() {
  obs::RunMetadata meta;
  meta.git_describe = "test-deadbeef";
  meta.build_type = "Test";
  meta.compiler = "testc++ 1.0";
  meta.workload = "replay flight test";
  meta.seed = 1;
  return meta;
}

// The replay's host-throughput gauge is the one wall-clock value in a series
// (docs/OBSERVABILITY.md); every other field is a pure function of the
// workload. Strip it so two runs compare on the deterministic content.
std::string StripWallClockGauges(const std::string& series) {
  static const std::regex kThroughputGauge(
      "\"sim\\.replay\\.requests_per_sec\":[^,}]+,?");
  return std::regex_replace(series, kThroughputGauge, "");
}

// Serializes a ring through the post-mortem writer with a fixed context, so
// two rings compare by their full record contents in one string compare.
std::string RingBytes(const obs::FlightRecorder& ring) {
  std::ostringstream out;
  obs::WritePostMortemJsonl(out, TestMeta(),
                            obs::CaptureFlight(ring, {"test", "ring", 0.0, ""}));
  return out.str();
}

TEST(ReplayFlightTest, RecordIsAllocFree) {
  ASSERT_TRUE(util::AllocHookActive());
  obs::FlightRecorder ring(1024);
  obs::DecisionRecord record;
  record.requested_bytes = 2048;
  record.hit_chunks = 2;
  util::AllocScope scope;
  for (int i = 0; i < 100000; ++i) {
    record.time = static_cast<double>(i);
    record.key = static_cast<uint64_t>(i);
    ring.Record(record);
  }
  EXPECT_EQ(scope.Delta().allocations, 0u)
      << "FlightRecorder::Record must never allocate (hot-path contract)";
  EXPECT_EQ(ring.total_recorded(), 100000u);
}

TEST(ReplayFlightTest, FlightRecordingAddsNoAllocationsToReplay) {
  ASSERT_TRUE(util::AllocHookActive());
  trace::Trace trace = UniformTrace(2000, 5);
  ReplayOptions base;
  base.measurement_start_fraction = 0.0;

  auto run = [&](obs::FlightRecorder* flight) {
    auto cache = core::MakeCache(core::CacheKind::kFillLru, SmallConfig(32, 1.0));
    ReplayOptions options = base;
    options.flight = flight;
    util::AllocScope scope;
    Replay(*cache, trace, options);
    return scope.Delta().allocations;
  };

  obs::FlightRecorder ring(256);
  run(nullptr);  // warm up one-time statics so the comparison is clean
  run(&ring);
  const uint64_t without_flight = run(nullptr);
  const uint64_t with_flight = run(&ring);
  // The ring is preallocated and Record is a bounded store: attaching it to
  // a replay must not add a single allocation, per-request or otherwise.
  EXPECT_EQ(with_flight, without_flight);
}

TEST(ReplayFlightTest, FleetSeriesAndRingAreThreadCountInvariant) {
  std::vector<trace::Trace> traces;
  traces.push_back(UniformTrace(200, 3));
  traces.push_back(UniformTrace(200, 7));
  traces.push_back(UniformTrace(200, 11));
  traces.push_back(UniformTrace(200, 5));

  auto run = [&](size_t threads, std::string* series_bytes, std::string* ring_bytes) {
    std::vector<FleetServer> servers;
    for (size_t i = 0; i < traces.size(); ++i) {
      FleetServer server;
      server.name = "server" + std::to_string(i);
      server.kind = core::CacheKind::kFillLru;
      server.config = SmallConfig(16, 1.0);
      server.trace = &traces[i];
      servers.push_back(server);
    }
    obs::MetricsRegistry registry;
    obs::TimeSeriesRecorder series(&registry);
    obs::FlightRecorder ring(64);
    FleetOptions options;
    options.threads = threads;
    options.replay.measurement_start_fraction = 0.0;
    options.replay.bucket_seconds = 50.0;
    options.replay.metrics = &registry;
    options.replay.series = &series;
    options.replay.flight = &ring;
    FleetResult result = RunFleet(servers, options);

    std::ostringstream out;
    series.WriteJsonl(out, TestMeta());
    *series_bytes = StripWallClockGauges(out.str());
    *ring_bytes = RingBytes(ring);
    return FleetDigest(result);
  };

  std::string series_seq, ring_seq, series_par, ring_par;
  const uint64_t digest_seq = run(1, &series_seq, &ring_seq);
  const uint64_t digest_par = run(4, &series_par, &ring_par);

  EXPECT_EQ(digest_seq, digest_par);
  EXPECT_EQ(series_seq, series_par) << "merged series must not depend on thread count";
  EXPECT_EQ(ring_seq, ring_par) << "merged ring must not depend on thread count";
  // The series actually recorded windows (200s at 50s buckets, 4 shards
  // merged window-by-window -> 4-5 distinct window lines, not zero).
  EXPECT_NE(series_seq.find("\"type\":\"window\""), std::string::npos);
}

TEST(ReplayFlightTest, SeededFaultPostMortemIsByteIdenticalAcrossRuns) {
  trace::Trace trace = UniformTrace(300, 6);
  // A degrade window: its start and end are the cache-mutating boundaries
  // that trigger flight captures (outage windows reroute traffic without
  // touching the cache, so they capture nothing).
  fault::FaultSchedule schedule;
  fault::FaultEvent degrade;
  degrade.kind = fault::FaultKind::kDiskDegrade;
  degrade.target = 0;
  degrade.start = 100.0;
  degrade.end = 150.0;
  degrade.capacity_factor = 0.25;
  schedule.Add(degrade);
  ASSERT_TRUE(schedule.Validate().ok());

  auto run = [&] {
    auto cache = core::MakeCache(core::CacheKind::kFillLru, SmallConfig(24, 1.0));
    obs::FlightRecorder ring(128);
    std::vector<obs::FlightCapture> captures;
    ReplayOptions options;
    options.measurement_start_fraction = 0.0;
    options.faults = &schedule;
    options.fault_target = 0;
    options.flight = &ring;
    options.flight_captures = &captures;
    options.flight_label = "edge0";
    Replay(*cache, trace, options);

    // Both fault boundaries (outage start and end) captured the ring.
    EXPECT_EQ(captures.size(), 2u);
    std::ostringstream out;
    for (const obs::FlightCapture& capture : captures) {
      obs::WritePostMortemJsonl(out, TestMeta(), capture);
    }
    return out.str();
  };

  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "seeded fault post-mortem must be byte-reproducible";
  EXPECT_NE(first.find("\"trigger\":\"fault_boundary\""), std::string::npos);
  EXPECT_NE(first.find("\"label\":\"edge0\""), std::string::npos);
  // The active schedule rides along in the dump.
  EXPECT_NE(first.find("\"type\":\"fault_schedule\""), std::string::npos);
}

}  // namespace
}  // namespace vcdn::sim
