// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/trace/analysis.h"

#include <gtest/gtest.h>

#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"
#include "tests/cache_test_util.h"

namespace vcdn::trace {
namespace {

using ::vcdn::testing::ChunkReq;
using ::vcdn::testing::MakeTrace;

Trace GeneratedTrace() {
  WorkloadConfig config;
  config.profile = EuropeProfile(0.05);
  config.profile.base_request_rate = 0.06;
  config.duration_seconds = 4.0 * 86400.0;
  config.seed = 5;
  return WorkloadGenerator(config).Generate().trace;
}

TEST(AnalysisTest, PopularityCurveSortedAndComplete) {
  Trace t = MakeTrace({{1, 1, 0, 0}, {2, 1, 0, 0}, {3, 2, 0, 0}, {4, 1, 0, 0}, {5, 3, 0, 0}});
  std::vector<uint64_t> curve = PopularityCurve(t);
  EXPECT_EQ(curve, (std::vector<uint64_t>{3, 1, 1}));
}

TEST(AnalysisTest, HeadConcentrationBounds) {
  Trace t = GeneratedTrace();
  double top10 = HeadConcentration(t, 0.1);
  double top50 = HeadConcentration(t, 0.5);
  double all = HeadConcentration(t, 1.0);
  EXPECT_GT(top10, 0.1);  // heavier than uniform
  EXPECT_GE(top50, top10);
  EXPECT_NEAR(all, 1.0, 1e-12);
}

TEST(AnalysisTest, DemandByHourSumsToTotal) {
  Trace t = GeneratedTrace();
  std::vector<uint64_t> by_hour = DemandByHourOfDay(t);
  ASSERT_EQ(by_hour.size(), 24u);
  uint64_t sum = 0;
  for (uint64_t v : by_hour) {
    sum += v;
  }
  EXPECT_EQ(sum, t.TotalRequestedBytes());
}

TEST(AnalysisTest, DiurnalPeakToTroughPronounced) {
  Trace t = GeneratedTrace();
  // Amplitude 0.55 should give a clearly > 1.5x swing.
  EXPECT_GT(DiurnalPeakToTrough(t), 1.5);
}

TEST(AnalysisTest, ChunkPositionSkewFirstChunkHottest) {
  Trace t = GeneratedTrace();
  std::vector<uint64_t> by_position = AccessesByChunkPosition(t, 2ull << 20, 16);
  ASSERT_EQ(by_position.size(), 16u);
  EXPECT_GT(by_position[0], by_position[8]);
  EXPECT_GT(by_position[0], 0u);
  // Broadly non-increasing trend over the early positions.
  EXPECT_GE(by_position[1], by_position[10]);
}

TEST(AnalysisTest, WorkingSetGrowsMonotonically) {
  Trace t = GeneratedTrace();
  std::vector<uint64_t> growth = WorkingSetGrowth(t, 2ull << 20, {0.25, 0.5, 0.75, 1.0});
  ASSERT_EQ(growth.size(), 4u);
  EXPECT_GT(growth[0], 0u);
  for (size_t i = 1; i < growth.size(); ++i) {
    EXPECT_GE(growth[i], growth[i - 1]);
  }
  // Churn means the working set keeps growing past the first quarter.
  EXPECT_GT(growth[3], growth[0]);
}

TEST(AnalysisTest, BytesForAccessShareDiminishingReturns) {
  // Footnote 1: each extra percent of hit share costs disproportionally more
  // disk. The skyline curve must be convex-ish: covering 90% of accesses
  // needs more than 3x the bytes of covering 50%... at least strictly more
  // bytes per percent.
  Trace t = GeneratedTrace();
  uint64_t half = BytesForAccessShare(t, 2ull << 20, 0.5);
  uint64_t ninety = BytesForAccessShare(t, 2ull << 20, 0.9);
  uint64_t full = BytesForAccessShare(t, 2ull << 20, 1.0);
  EXPECT_GT(half, 0u);
  EXPECT_GT(ninety, half);
  EXPECT_GT(full, ninety);
  // Marginal cost grows: bytes/share steepens toward the tail.
  double cost_first_half = static_cast<double>(half) / 0.5;
  double cost_last_tenth = static_cast<double>(full - ninety) / 0.1;
  EXPECT_GT(cost_last_tenth, cost_first_half);
}

TEST(AnalysisTest, EmptyTraceIsSafe) {
  Trace empty;
  empty.duration = 100.0;
  EXPECT_TRUE(PopularityCurve(empty).empty());
  EXPECT_EQ(HeadConcentration(empty, 0.5), 0.0);
  EXPECT_EQ(DemandByHourOfDay(empty).size(), 24u);
  EXPECT_EQ(WorkingSetGrowth(empty, 1024, {1.0})[0], 0u);
}

}  // namespace
}  // namespace vcdn::trace
