// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/sim/colocation.h"

#include <gtest/gtest.h>

#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"
#include "tests/cache_test_util.h"

namespace vcdn::sim {
namespace {

using ::vcdn::testing::SmallConfig;

trace::Trace SiteTrace() {
  trace::WorkloadConfig config;
  config.profile = trace::EuropeProfile(0.04);
  config.profile.base_request_rate = 0.10;
  config.duration_seconds = 6.0 * 86400.0;
  config.seed = 21;
  return trace::WorkloadGenerator(config).Generate().trace;
}

ColocationConfig TestConfig(ColocationPolicy policy, size_t servers = 4) {
  ColocationConfig config;
  config.num_servers = servers;
  config.policy = policy;
  config.kind = core::CacheKind::kCafe;
  config.per_server_config.chunk_bytes = 2ull << 20;
  config.per_server_config.disk_capacity_chunks = 400;
  config.per_server_config.alpha_f2r = 2.0;
  return config;
}

TEST(ColocationTest, AllRequestsAreSharded) {
  trace::Trace site = SiteTrace();
  ColocationResult result = RunColocated(site, TestConfig(ColocationPolicy::kHashMod));
  uint64_t total = 0;
  for (const auto& server : result.servers) {
    total += server.totals.requests;
  }
  EXPECT_EQ(total, site.requests.size());
}

TEST(ColocationTest, HashModKeepsVideosOnOneServer) {
  trace::Trace site = SiteTrace();
  ColocationConfig config = TestConfig(ColocationPolicy::kHashMod);
  // Re-shard manually with the same function? Instead verify via the public
  // behaviour: with hash-mod the SAME video never produces cache fills on
  // two servers. Run twice: any video requested in the trace appears in only
  // one shard, so combined fills can never exceed the single-cache fills for
  // the same video... observable proxy: re-running is deterministic.
  ColocationResult a = RunColocated(site, config);
  ColocationResult b = RunColocated(site, config);
  for (size_t s = 0; s < a.servers.size(); ++s) {
    EXPECT_EQ(a.servers[s].totals.requests, b.servers[s].totals.requests);
    EXPECT_EQ(a.servers[s].totals.filled_bytes, b.servers[s].totals.filled_bytes);
  }
}

TEST(ColocationTest, HashModBalancesLoad) {
  trace::Trace site = SiteTrace();
  ColocationResult result = RunColocated(site, TestConfig(ColocationPolicy::kHashMod));
  // Byte-weighted imbalance stays moderate: single hot videos put a floor on
  // achievable balance, but hashing must not collapse everything onto one
  // server.
  EXPECT_LT(result.load_imbalance, 2.0);
  EXPECT_GE(result.load_imbalance, 1.0);
}

TEST(ColocationTest, HashModBeatsRandomSplit) {
  // Footnote 2's point: random per-request splitting duplicates hot content
  // on every server and dilutes popularity signals; hash-mod gives a higher
  // combined efficiency with less total ingress.
  trace::Trace site = SiteTrace();
  ColocationResult hashed = RunColocated(site, TestConfig(ColocationPolicy::kHashMod));
  ColocationResult random = RunColocated(site, TestConfig(ColocationPolicy::kRandom));
  EXPECT_GT(hashed.combined_efficiency, random.combined_efficiency)
      << "hash-mod " << hashed.combined_efficiency << " vs random "
      << random.combined_efficiency;
  // Mechanism at alpha = 2: each server sees only a quarter of a video's
  // requests under random splitting, so its inter-arrival estimates look 4x
  // colder and far more traffic is redirected (or, if admitted, duplicated).
  EXPECT_GT(random.combined_redirect_fraction, hashed.combined_redirect_fraction);
  // Hash-mod serves more bytes from disk overall.
  EXPECT_GT(hashed.combined.served_bytes, random.combined.served_bytes);
}

TEST(ColocationTest, SingleServerDegeneratesToPlainReplay) {
  trace::Trace site = SiteTrace();
  ColocationConfig config = TestConfig(ColocationPolicy::kHashMod, /*servers=*/1);
  ColocationResult result = RunColocated(site, config);
  auto cache = core::MakeCache(config.kind, config.per_server_config);
  ReplayResult plain = Replay(*cache, site, config.replay);
  ASSERT_EQ(result.servers.size(), 1u);
  EXPECT_EQ(result.servers[0].totals.filled_bytes, plain.totals.filled_bytes);
  EXPECT_NEAR(result.combined_efficiency, plain.efficiency, 1e-12);
  EXPECT_DOUBLE_EQ(result.load_imbalance, 1.0);
}

TEST(ColocationTest, MoreServersSameTotalDiskKeepsEfficiency) {
  // Splitting one big cache into 4 hash-mod shards of a quarter the size
  // should cost little efficiency (the popularity structure is preserved).
  trace::Trace site = SiteTrace();
  ColocationConfig split = TestConfig(ColocationPolicy::kHashMod, 4);
  split.per_server_config.disk_capacity_chunks = 400;
  ColocationConfig monolith = TestConfig(ColocationPolicy::kHashMod, 1);
  monolith.per_server_config.disk_capacity_chunks = 1600;
  ColocationResult sharded = RunColocated(site, split);
  ColocationResult single = RunColocated(site, monolith);
  EXPECT_GT(sharded.combined_efficiency, single.combined_efficiency - 0.06);
}

}  // namespace
}  // namespace vcdn::sim
