// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/trace/workload_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "src/trace/server_profile.h"

namespace vcdn::trace {
namespace {

WorkloadConfig SmallConfig(uint64_t seed = 1) {
  WorkloadConfig config;
  config.profile = EuropeProfile(0.05);  // tiny for test speed
  config.profile.base_request_rate = 0.05;
  config.seed = seed;
  config.duration_seconds = 3.0 * 86400.0;
  return config;
}

TEST(WorkloadGeneratorTest, DeterministicForSeed) {
  WorkloadGenerator g1(SmallConfig(7));
  WorkloadGenerator g2(SmallConfig(7));
  GeneratedWorkload w1 = g1.Generate();
  GeneratedWorkload w2 = g2.Generate();
  ASSERT_EQ(w1.trace.requests.size(), w2.trace.requests.size());
  for (size_t i = 0; i < w1.trace.requests.size(); ++i) {
    EXPECT_EQ(w1.trace.requests[i].arrival_time, w2.trace.requests[i].arrival_time);
    EXPECT_EQ(w1.trace.requests[i].video, w2.trace.requests[i].video);
    EXPECT_EQ(w1.trace.requests[i].byte_begin, w2.trace.requests[i].byte_begin);
    EXPECT_EQ(w1.trace.requests[i].byte_end, w2.trace.requests[i].byte_end);
  }
}

TEST(WorkloadGeneratorTest, DifferentSeedsDiffer) {
  GeneratedWorkload w1 = WorkloadGenerator(SmallConfig(1)).Generate();
  GeneratedWorkload w2 = WorkloadGenerator(SmallConfig(2)).Generate();
  // Same scale but different request pattern.
  bool differ = w1.trace.requests.size() != w2.trace.requests.size();
  if (!differ) {
    for (size_t i = 0; i < w1.trace.requests.size(); ++i) {
      if (w1.trace.requests[i].video != w2.trace.requests[i].video) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

TEST(WorkloadGeneratorTest, TraceIsWellFormed) {
  GeneratedWorkload w = WorkloadGenerator(SmallConfig()).Generate();
  EXPECT_TRUE(w.trace.IsWellFormed());
  EXPECT_GT(w.trace.requests.size(), 100u);
  for (const Request& r : w.trace.requests) {
    ASSERT_LT(r.video, w.catalog.videos.size());
    const VideoMeta& v = w.catalog.Get(r.video);
    ASSERT_LE(r.byte_end, v.size_bytes - 1) << "range beyond file size";
    ASSERT_GE(r.arrival_time, v.birth_time) << "request before upload";
  }
}

TEST(WorkloadGeneratorTest, RequestRateMatchesProfile) {
  WorkloadConfig config = SmallConfig();
  GeneratedWorkload w = WorkloadGenerator(config).Generate();
  double expected = config.profile.base_request_rate * config.duration_seconds;
  double actual = static_cast<double>(w.trace.requests.size());
  // Thinning + weekly modulation keeps the mean within ~15%.
  EXPECT_NEAR(actual, expected, expected * 0.15);
}

TEST(WorkloadGeneratorTest, PopularityIsHeavyTailed) {
  GeneratedWorkload w = WorkloadGenerator(SmallConfig()).Generate();
  std::unordered_map<VideoId, uint64_t> hits;
  for (const Request& r : w.trace.requests) {
    ++hits[r.video];
  }
  std::vector<uint64_t> counts;
  counts.reserve(hits.size());
  for (const auto& [id, c] : hits) {
    counts.push_back(c);
  }
  std::sort(counts.rbegin(), counts.rend());
  ASSERT_GT(counts.size(), 50u);
  // Head concentration: top 10% of videos get far more than 10% of requests.
  uint64_t total = 0;
  for (uint64_t c : counts) {
    total += c;
  }
  uint64_t head = 0;
  for (size_t i = 0; i < counts.size() / 10; ++i) {
    head += counts[i];
  }
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.3);
}

TEST(WorkloadGeneratorTest, MostViewsStartAtZero) {
  GeneratedWorkload w = WorkloadGenerator(SmallConfig()).Generate();
  size_t at_zero = 0;
  for (const Request& r : w.trace.requests) {
    if (r.byte_begin == 0) {
      ++at_zero;
    }
  }
  double fraction = static_cast<double>(at_zero) / static_cast<double>(w.trace.requests.size());
  EXPECT_NEAR(fraction, 0.62, 0.05);
}

TEST(WorkloadGeneratorTest, DiurnalFactorPeaksInLocalEvening) {
  ServerProfile p = EuropeProfile();
  p.timezone_offset_hours = 0.0;
  // Peak at 20:00, trough at 08:00 local.
  double peak = WorkloadGenerator::DiurnalFactor(p, 20.0 * 3600.0);
  double trough = WorkloadGenerator::DiurnalFactor(p, 8.0 * 3600.0);
  EXPECT_GT(peak, 1.3);
  EXPECT_LT(trough, 0.7);
  EXPECT_GT(peak, trough);
}

TEST(WorkloadGeneratorTest, DiurnalFactorShiftsWithTimezone) {
  ServerProfile utc = EuropeProfile();
  utc.timezone_offset_hours = 0.0;
  ServerProfile plus8 = utc;
  plus8.timezone_offset_hours = 8.0;
  // 12:00 absolute = 20:00 local for +8: peak there.
  EXPECT_GT(WorkloadGenerator::DiurnalFactor(plus8, 12.0 * 3600.0),
            WorkloadGenerator::DiurnalFactor(utc, 12.0 * 3600.0));
}

TEST(WorkloadGeneratorTest, VideoWeightRampAndDecay) {
  WorkloadConfig config = SmallConfig();
  VideoMeta v;
  v.base_weight = 10.0;
  v.birth_time = 1000.0;
  v.video_class = VideoClass::kTransient;
  v.decay_tau = 86400.0;
  // Before birth: zero.
  EXPECT_EQ(WorkloadGenerator::VideoWeightAt(v, 0.0, config), 0.0);
  // During ramp: below base.
  double ramping =
      WorkloadGenerator::VideoWeightAt(v, 1000.0 + config.new_video_ramp_seconds / 2, config);
  EXPECT_GT(ramping, 0.0);
  EXPECT_LT(ramping, 10.0);
  // After one tau: decayed by ~1/e.
  double decayed = WorkloadGenerator::VideoWeightAt(v, 1000.0 + 86400.0, config);
  EXPECT_NEAR(decayed, 10.0 * std::exp(-1.0), 0.5);
  // Evergreen videos do not decay.
  v.video_class = VideoClass::kEvergreen;
  v.decay_tau = 0.0;
  EXPECT_NEAR(WorkloadGenerator::VideoWeightAt(v, 1000.0 + 10 * 86400.0, config), 10.0, 1e-9);
}

TEST(WorkloadGeneratorTest, CatalogChurnAddsVideos) {
  WorkloadConfig config = SmallConfig();
  GeneratedWorkload w = WorkloadGenerator(config).Generate();
  size_t new_videos = 0;
  for (const VideoMeta& v : w.catalog.videos) {
    if (v.birth_time > 0.0) {
      ++new_videos;
    }
  }
  double expected = config.profile.new_videos_per_day * config.duration_seconds / 86400.0;
  EXPECT_NEAR(static_cast<double>(new_videos), expected, expected * 0.5 + 10.0);
}

TEST(WorkloadGeneratorTest, RefreshIntervalChangesSamplingNotScale) {
  // A finer popularity-refresh cadence tracks churn more closely but must
  // not change the overall request volume materially.
  WorkloadConfig coarse = SmallConfig(4);
  coarse.popularity_refresh_seconds = 24.0 * 3600.0;
  WorkloadConfig fine = SmallConfig(4);
  fine.popularity_refresh_seconds = 1.0 * 3600.0;
  size_t coarse_count = WorkloadGenerator(coarse).Generate().trace.requests.size();
  size_t fine_count = WorkloadGenerator(fine).Generate().trace.requests.size();
  EXPECT_NEAR(static_cast<double>(coarse_count), static_cast<double>(fine_count),
              static_cast<double>(fine_count) * 0.1);
}

TEST(WorkloadGeneratorTest, WeightFloorPrunesDeadTransients) {
  // With a very aggressive floor, long-dead transient videos stop being
  // sampled entirely: every request's video must still carry real weight.
  WorkloadConfig config = SmallConfig(9);
  config.weight_floor_fraction = 0.5;  // drop anything below half base weight
  GeneratedWorkload w = WorkloadGenerator(config).Generate();
  for (const Request& r : w.trace.requests) {
    const VideoMeta& v = w.catalog.Get(r.video);
    double weight = WorkloadGenerator::VideoWeightAt(v, r.arrival_time, config);
    // Sampled at most one refresh window before the weight dipped below the
    // floor; allow that slack.
    EXPECT_GT(weight, 0.0);
  }
}

TEST(WorkloadGeneratorTest, ViewsNeverExceedFileBounds) {
  GeneratedWorkload w = WorkloadGenerator(SmallConfig(12)).Generate();
  for (const Request& r : w.trace.requests) {
    const VideoMeta& v = w.catalog.Get(r.video);
    ASSERT_LE(r.byte_begin, r.byte_end);
    ASSERT_LT(r.byte_end, v.size_bytes);
  }
}

TEST(WorkloadGeneratorTest, SizesRespectProfileClamps) {
  WorkloadConfig config = SmallConfig(3);
  config.profile.min_video_bytes = 8ull << 20;
  config.profile.max_video_bytes = 64ull << 20;
  GeneratedWorkload w = WorkloadGenerator(config).Generate();
  for (const VideoMeta& v : w.catalog.videos) {
    ASSERT_GE(v.size_bytes, config.profile.min_video_bytes);
    ASSERT_LE(v.size_bytes, config.profile.max_video_bytes);
  }
}

TEST(WorkloadGeneratorTest, EvergreenFractionZeroMakesAllTransient) {
  WorkloadConfig config = SmallConfig(6);
  config.profile.evergreen_fraction = 0.0;
  GeneratedWorkload w = WorkloadGenerator(config).Generate();
  for (const VideoMeta& v : w.catalog.videos) {
    ASSERT_EQ(v.video_class, VideoClass::kTransient);
    ASSERT_GT(v.decay_tau, 0.0);
  }
}

TEST(WorkloadGeneratorTest, SixProfilesHaveDistinctCharacter) {
  auto profiles = PaperServerProfiles(1.0);
  ASSERT_EQ(profiles.size(), 6u);
  std::vector<std::string> names;
  for (const auto& p : profiles) {
    names.push_back(p.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"Africa", "Asia", "Australia", "Europe",
                                             "NorthAmerica", "SouthAmerica"}));
  // The paper's volume/diversity ordering: SouthAmerica busiest & most
  // diverse, Asia most concentrated.
  const ServerProfile& asia = profiles[1];
  const ServerProfile& europe = profiles[3];
  const ServerProfile& south_america = profiles[5];
  EXPECT_LT(asia.catalog_size, europe.catalog_size);
  EXPECT_GT(south_america.catalog_size, europe.catalog_size);
  EXPECT_GT(south_america.base_request_rate, europe.base_request_rate);
  // Smaller Pareto shape = heavier weight tail = demand concentrated on few
  // hot videos (Asia); larger = flatter/more diverse (South America).
  EXPECT_LT(asia.popularity_shape, south_america.popularity_shape);
}

}  // namespace
}  // namespace vcdn::trace
