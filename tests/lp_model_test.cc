// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/lp/model.h"

#include <gtest/gtest.h>

namespace vcdn::lp {
namespace {

TEST(ModelTest, BuildsDimensions) {
  Model m;
  int32_t x = m.AddVariable(0.0, 1.0, 2.0);
  int32_t y = m.AddVariable(0.0, kLpInfinity, -1.0);
  int32_t r = m.AddRow(-kLpInfinity, 5.0);
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 2.0);
  EXPECT_EQ(m.num_columns(), 2);
  EXPECT_EQ(m.num_rows(), 1);
  EXPECT_EQ(m.num_entries(), 2u);
}

TEST(ModelTest, CompileProducesColumnMajorCsc) {
  Model m;
  int32_t x0 = m.AddVariable(0, 1, 1.0);
  int32_t x1 = m.AddVariable(0, 1, 2.0);
  int32_t r0 = m.AddRow(0, 10);
  int32_t r1 = m.AddRow(0, 20);
  m.AddCoefficient(r1, x1, 4.0);
  m.AddCoefficient(r0, x0, 1.0);
  m.AddCoefficient(r1, x0, 2.0);
  m.AddCoefficient(r0, x1, 3.0);
  CompiledModel c = m.Compile();
  ASSERT_EQ(c.column_start.size(), 3u);
  EXPECT_EQ(c.column_start[0], 0);
  EXPECT_EQ(c.column_start[1], 2);
  EXPECT_EQ(c.column_start[2], 4);
  // Column 0: rows 0 (1.0) and 1 (2.0), sorted by row.
  EXPECT_EQ(c.row_index[0], 0);
  EXPECT_DOUBLE_EQ(c.value[0], 1.0);
  EXPECT_EQ(c.row_index[1], 1);
  EXPECT_DOUBLE_EQ(c.value[1], 2.0);
  // Column 1: rows 0 (3.0) and 1 (4.0).
  EXPECT_EQ(c.row_index[2], 0);
  EXPECT_DOUBLE_EQ(c.value[2], 3.0);
}

TEST(ModelTest, DuplicateEntriesAreSummed) {
  Model m;
  int32_t x = m.AddVariable(0, 1, 0.0);
  int32_t r = m.AddRow(0, 1);
  m.AddCoefficient(r, x, 1.5);
  m.AddCoefficient(r, x, 2.5);
  CompiledModel c = m.Compile();
  ASSERT_EQ(c.value.size(), 1u);
  EXPECT_DOUBLE_EQ(c.value[0], 4.0);
}

TEST(ModelTest, ZeroCoefficientsDropped) {
  Model m;
  int32_t x = m.AddVariable(0, 1, 0.0);
  int32_t r = m.AddRow(0, 1);
  m.AddCoefficient(r, x, 0.0);
  EXPECT_EQ(m.num_entries(), 0u);
  // Entries cancelling to zero also vanish at compile time.
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, x, -1.0);
  CompiledModel c = m.Compile();
  EXPECT_TRUE(c.value.empty());
}

}  // namespace
}  // namespace vcdn::lp
