// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/sim/metrics.h"

#include <gtest/gtest.h>

namespace vcdn::sim {
namespace {

core::RequestOutcome Serve(uint64_t bytes, uint32_t chunks, uint32_t filled, uint32_t hits,
                           uint32_t proactive = 0) {
  core::RequestOutcome o;
  o.decision = core::Decision::kServe;
  o.requested_bytes = bytes;
  o.requested_chunks = chunks;
  o.filled_chunks = filled;
  o.hit_chunks = hits;
  o.proactive_filled_chunks = proactive;
  return o;
}

core::RequestOutcome Redirect(uint64_t bytes, uint32_t chunks, uint32_t proactive = 0) {
  core::RequestOutcome o;
  o.decision = core::Decision::kRedirect;
  o.requested_bytes = bytes;
  o.requested_chunks = chunks;
  o.proactive_filled_chunks = proactive;
  return o;
}

TEST(MetricsCollectorTest, SteadyWindowSplitsAtMeasurementStart) {
  MetricsCollector collector(/*chunk_bytes=*/1024, /*measurement_start=*/100.0,
                             /*bucket_seconds=*/50.0);
  collector.Record(10.0, Serve(2048, 2, 2, 0));
  collector.Record(99.9, Redirect(1024, 1));
  collector.Record(100.0, Serve(1024, 1, 0, 1));  // exactly at the boundary: steady
  collector.Record(150.0, Redirect(512, 1));
  EXPECT_EQ(collector.totals().requests, 4u);
  EXPECT_EQ(collector.steady().requests, 2u);
  EXPECT_EQ(collector.steady().served_bytes, 1024u);
  EXPECT_EQ(collector.steady().redirected_bytes, 512u);
  EXPECT_EQ(collector.steady().filled_bytes, 0u);
}

TEST(MetricsCollectorTest, SeriesBucketsAlign) {
  MetricsCollector collector(1024, 0.0, 10.0);
  collector.Record(5.0, Serve(100, 1, 1, 0));
  collector.Record(15.0, Redirect(200, 1));
  collector.Record(25.0, Serve(300, 1, 0, 1));
  auto series = collector.Series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].served_bytes, 100u);
  EXPECT_EQ(series[0].filled_bytes, 1024u);
  EXPECT_EQ(series[1].redirected_bytes, 200u);
  EXPECT_EQ(series[2].served_bytes, 300u);
}

TEST(MetricsCollectorTest, ProactiveFillsCountOnBothDecisions) {
  MetricsCollector collector(1000, 0.0, 10.0);
  collector.Record(1.0, Serve(500, 1, 1, 0, /*proactive=*/2));
  collector.Record(2.0, Redirect(500, 1, /*proactive=*/3));
  const ReplayTotals& t = collector.totals();
  // 1 demand fill + 5 proactive fills, all ingress.
  EXPECT_EQ(t.filled_chunks, 6u);
  EXPECT_EQ(t.proactive_filled_chunks, 5u);
  EXPECT_EQ(t.filled_bytes, 6000u);
  // The series sees the proactive bytes too.
  auto series = collector.Series();
  EXPECT_EQ(series[0].filled_bytes, 6000u);
}

TEST(ReplayTotalsTest, ChunkEfficiencyUsesChunkUnits) {
  ReplayTotals t;
  t.requested_chunks = 100;
  t.filled_chunks = 20;
  t.redirected_chunks = 30;
  core::CostModel cost(1.0);
  // 1 - 0.2 - 0.3 = 0.5 in chunk units.
  EXPECT_NEAR(t.ChunkEfficiency(cost), 0.5, 1e-12);
  // Chunk and byte efficiencies are independent: with no byte counters set,
  // the byte metric is 0 while the chunk metric is meaningful.
  EXPECT_EQ(t.requested_bytes, 0u);
  EXPECT_EQ(t.Efficiency(cost), 0.0);
  // At alpha = 2 fills weigh 4/3 and redirects 2/3 in chunk units too.
  EXPECT_NEAR(t.ChunkEfficiency(core::CostModel(2.0)),
              1.0 - 0.2 * (4.0 / 3.0) - 0.3 * (2.0 / 3.0), 1e-12);
}

TEST(ReplayTotalsTest, EmptyTotalsAreZeroNotNan) {
  ReplayTotals t;
  core::CostModel cost(2.0);
  EXPECT_EQ(t.Efficiency(cost), 0.0);
  EXPECT_EQ(t.ChunkEfficiency(cost), 0.0);
  EXPECT_EQ(t.IngressFraction(), 0.0);
  EXPECT_EQ(t.RedirectFraction(), 0.0);
}

TEST(ReplayTotalsTest, IngressVisibleWithFillsButNoEgress) {
  // Proactive fills on an all-redirect run: served_bytes == 0 but ingress
  // happened. The fraction must stay finite and non-zero (normalized by
  // requested bytes when there is no egress to normalize by).
  ReplayTotals t;
  t.requested_bytes = 4000;
  t.redirected_bytes = 4000;
  t.filled_bytes = 2000;
  EXPECT_DOUBLE_EQ(t.IngressFraction(), 0.5);
  EXPECT_DOUBLE_EQ(t.RedirectFraction(), 1.0);

  // Fills with neither served nor requested bytes still read 0, not NaN.
  ReplayTotals orphan;
  orphan.filled_bytes = 1000;
  EXPECT_DOUBLE_EQ(orphan.IngressFraction(), 0.0);
}

TEST(MetricsCollectorTest, EmptyTraceProducesNoBucketsAndZeroTotals) {
  MetricsCollector collector(1024, /*measurement_start=*/0.0, /*bucket_seconds=*/10.0);
  EXPECT_EQ(collector.totals().requests, 0u);
  EXPECT_EQ(collector.steady().requests, 0u);
  EXPECT_TRUE(collector.Series().empty());
  EXPECT_EQ(collector.totals().IngressFraction(), 0.0);
  EXPECT_EQ(collector.totals().RedirectFraction(), 0.0);
}

TEST(MetricsCollectorTest, WarmupOnlyTraceKeepsSteadyTotalsZero) {
  // Every request arrives before the measurement window opens.
  MetricsCollector collector(1024, /*measurement_start=*/100.0, /*bucket_seconds=*/10.0);
  collector.Record(1.0, Serve(2048, 2, 2, 0));
  collector.Record(50.0, Redirect(1024, 1));
  EXPECT_EQ(collector.totals().requests, 2u);
  EXPECT_EQ(collector.steady().requests, 0u);
  EXPECT_EQ(collector.steady().requested_bytes, 0u);
  EXPECT_EQ(collector.steady().IngressFraction(), 0.0);
  EXPECT_EQ(collector.steady().RedirectFraction(), 0.0);
  // Series covers only the buckets actually touched (t=1 and t=50), not the
  // empty measurement window after them.
  auto series = collector.Series();
  ASSERT_FALSE(series.empty());
  EXPECT_LE(series.back().bucket_start, 50.0);
  uint64_t series_requested = 0;
  for (const auto& p : series) {
    series_requested += p.requested_bytes;
  }
  EXPECT_EQ(series_requested, collector.totals().requested_bytes);
}

TEST(ReplayTotalsTest, AlphaChangesEfficiencyOfSameTraffic) {
  ReplayTotals t;
  t.requested_bytes = 1000;
  t.filled_bytes = 200;
  t.redirected_bytes = 300;
  // At alpha = 1 both cost the same; at alpha = 4, fills cost 1.6/redirects 0.4.
  double neutral = t.Efficiency(core::CostModel(1.0));
  double constrained = t.Efficiency(core::CostModel(4.0));
  EXPECT_NEAR(neutral, 1.0 - 0.2 - 0.3, 1e-12);
  EXPECT_NEAR(constrained, 1.0 - 0.2 * 1.6 - 0.3 * 0.4, 1e-12);
  // This mix is redirect-heavy (0.3 vs 0.2), so the redirect-friendly cost
  // model scores it higher.
  EXPECT_GT(constrained, neutral);
}

}  // namespace
}  // namespace vcdn::sim
