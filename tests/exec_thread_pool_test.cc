// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"

namespace vcdn::exec {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains and joins
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndCountsMatch) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_EQ(count.load(), 100);
  ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 100u);
  EXPECT_EQ(stats.executed, 100u);
  EXPECT_LE(stats.stolen, stats.executed);
}

TEST(ThreadPoolTest, AsyncDeliversResults) {
  ThreadPool pool(2);
  std::vector<Future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Async([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].Get(), i * i);
  }
}

TEST(ThreadPoolTest, InWorkerDistinguishesPools) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.InWorker());
  EXPECT_TRUE(pool.Async([&pool] { return pool.InWorker(); }).Get());
  EXPECT_FALSE(pool.Async([&other] { return other.InWorker(); }).Get());
}

TEST(ThreadPoolTest, TasksMaySubmitSubtasks) {
  // Recursive fan-out: every task spawns children until a depth budget runs
  // out; the pool must run them all, including ones submitted during
  // shutdown's drain.
  std::atomic<int> count{0};
  ThreadPool pool(4);
  std::function<void(int)> spawn = [&](int depth) {
    count.fetch_add(1, std::memory_order_relaxed);
    if (depth > 0) {
      pool.Submit([&spawn, depth] { spawn(depth - 1); });
      pool.Submit([&spawn, depth] { spawn(depth - 1); });
    }
  };
  pool.Submit([&spawn] { spawn(6); });
  pool.Shutdown();  // drains while `spawn` is still alive
  // A complete binary tree of depth 6: 2^7 - 1 nodes.
  EXPECT_EQ(count.load(), 127);
}

TEST(ThreadPoolTest, StressManyProducersManyTasks) {
  std::atomic<uint64_t> sum{0};
  ThreadPool pool(7);
  std::vector<std::thread> producers;
  for (int p = 0; p < 5; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      for (int i = 0; i < 2000; ++i) {
        pool.Submit([&sum, p, i] {
          sum.fetch_add(static_cast<uint64_t>(p * 2000 + i), std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  pool.Shutdown();
  // Sum of 0..9999.
  EXPECT_EQ(sum.load(), 9999ull * 10000ull / 2);
  EXPECT_EQ(pool.stats().executed, 10000u);
}

TEST(ThreadPoolTest, HardwareConcurrencyDefaultIsNonZero) {
  ThreadPool pool;  // num_threads = 0 selects hardware concurrency
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, MaintainsMetricsInstruments) {
  obs::MetricsRegistry registry;
  {
    ThreadPoolOptions options;
    options.num_threads = 2;
    options.metrics = &registry;
    ThreadPool pool(options);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([] {});
    }
  }
  EXPECT_EQ(registry.CounterValue("exec.pool.submitted_total"), 50u);
  EXPECT_EQ(registry.CounterValue("exec.pool.executed_total"), 50u);
  EXPECT_EQ(registry.GaugeValue("exec.pool.workers"), 2.0);
  // Every execution is attributed to exactly one worker.
  uint64_t per_worker = registry.CounterValue("exec.worker.0.tasks_total") +
                        registry.CounterValue("exec.worker.1.tasks_total");
  EXPECT_EQ(per_worker, 50u);
}

TEST(ThreadPoolTest, LabeledTasksFlushSpansToSinkOnShutdown) {
  obs::TraceEventSink sink;
  {
    ThreadPoolOptions options;
    options.num_threads = 3;
    options.trace_sink = &sink;
    ThreadPool pool(options);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([] {}, "test.task");
    }
    pool.Submit([] {});  // unlabeled: no span
    pool.Shutdown();
  }
  ASSERT_EQ(sink.num_events(), 20u);
  std::set<int> tids;
  for (const obs::TraceEvent& event : sink.events()) {
    EXPECT_EQ(event.name, "test.task");
    EXPECT_EQ(event.phase, 'X');
    tids.insert(event.tid);
  }
  // Worker lanes start at tid 2.
  for (int tid : tids) {
    EXPECT_GE(tid, 2);
    EXPECT_LT(tid, 5);
  }
}

}  // namespace
}  // namespace vcdn::exec
