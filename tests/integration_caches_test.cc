// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// End-to-end integration tests: generate a synthetic server trace, replay it
// through every algorithm and check the qualitative relationships the paper
// reports (Sec. 9). These run on a scaled-down workload to stay fast.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/cache_factory.h"
#include "src/sim/replay.h"
#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"

namespace vcdn {
namespace {

trace::Trace TestTrace(uint64_t seed = 11) {
  trace::WorkloadConfig config;
  config.profile = trace::EuropeProfile(0.04);
  config.profile.base_request_rate = 0.12;
  config.duration_seconds = 8.0 * 86400.0;
  config.seed = seed;
  return trace::WorkloadGenerator(config).Generate().trace;
}

core::CacheConfig TestConfig(double alpha) {
  core::CacheConfig config;
  config.chunk_bytes = 2ull << 20;
  config.disk_capacity_chunks = 1400;
  config.alpha_f2r = alpha;
  return config;
}

sim::ReplayResult RunCache(core::CacheKind kind, const trace::Trace& trace, double alpha) {
  auto cache = core::MakeCache(kind, TestConfig(alpha));
  return sim::Replay(*cache, trace);
}

TEST(IntegrationTest, AllCachesConserveBytes) {
  trace::Trace trace = TestTrace();
  for (auto kind : {core::CacheKind::kXlru, core::CacheKind::kCafe, core::CacheKind::kPsychic,
                    core::CacheKind::kFillLru, core::CacheKind::kBelady}) {
    sim::ReplayResult r = RunCache(kind, trace, 2.0);
    EXPECT_EQ(r.totals.served_bytes + r.totals.redirected_bytes, r.totals.requested_bytes)
        << r.cache_name;
    EXPECT_EQ(r.totals.served_requests + r.totals.redirected_requests, r.totals.requests)
        << r.cache_name;
  }
}

TEST(IntegrationTest, CafeBeatsXlruUnderConstrainedIngress) {
  // The paper's headline (Fig. 4): at alpha_F2R = 2 Cafe achieves a clearly
  // higher efficiency than xLRU.
  trace::Trace trace = TestTrace();
  sim::ReplayResult xlru = RunCache(core::CacheKind::kXlru, trace, 2.0);
  sim::ReplayResult cafe = RunCache(core::CacheKind::kCafe, trace, 2.0);
  EXPECT_GT(cafe.efficiency, xlru.efficiency + 0.02)
      << "xLRU=" << xlru.efficiency << " Cafe=" << cafe.efficiency;
}

TEST(IntegrationTest, PsychicUpperBoundsOnlineCaches) {
  trace::Trace trace = TestTrace();
  for (double alpha : {1.0, 2.0}) {
    sim::ReplayResult psychic = RunCache(core::CacheKind::kPsychic, trace, alpha);
    sim::ReplayResult cafe = RunCache(core::CacheKind::kCafe, trace, alpha);
    sim::ReplayResult xlru = RunCache(core::CacheKind::kXlru, trace, alpha);
    EXPECT_GE(psychic.efficiency, cafe.efficiency - 0.01) << "alpha=" << alpha;
    EXPECT_GE(psychic.efficiency, xlru.efficiency - 0.01) << "alpha=" << alpha;
  }
}

TEST(IntegrationTest, CafeCompliesWithAlphaOperatingPoints) {
  // Fig. 5: raising alpha must shrink Cafe's ingress fraction monotonically,
  // and its ingress at alpha = 4 must be well below xLRU's.
  trace::Trace trace = TestTrace();
  double prev_ingress = 1e9;
  for (double alpha : {0.5, 1.0, 2.0, 4.0}) {
    sim::ReplayResult cafe = RunCache(core::CacheKind::kCafe, trace, alpha);
    EXPECT_LE(cafe.ingress_fraction, prev_ingress + 0.01) << "alpha=" << alpha;
    prev_ingress = cafe.ingress_fraction;
  }
  sim::ReplayResult cafe4 = RunCache(core::CacheKind::kCafe, trace, 4.0);
  sim::ReplayResult xlru4 = RunCache(core::CacheKind::kXlru, trace, 4.0);
  EXPECT_LT(cafe4.ingress_fraction, xlru4.ingress_fraction);
}

TEST(IntegrationTest, FillLruHasHighestIngress) {
  trace::Trace trace = TestTrace();
  sim::ReplayResult fill_lru = RunCache(core::CacheKind::kFillLru, trace, 2.0);
  sim::ReplayResult xlru = RunCache(core::CacheKind::kXlru, trace, 2.0);
  sim::ReplayResult cafe = RunCache(core::CacheKind::kCafe, trace, 2.0);
  EXPECT_GT(fill_lru.ingress_fraction, xlru.ingress_fraction);
  EXPECT_GT(fill_lru.ingress_fraction, cafe.ingress_fraction);
  // And it never redirects.
  EXPECT_EQ(fill_lru.totals.redirected_requests, 0u);
}

TEST(IntegrationTest, MoreDiskMeansMoreEfficiency) {
  // Fig. 6 trend for every algorithm.
  trace::Trace trace = TestTrace();
  for (auto kind : {core::CacheKind::kXlru, core::CacheKind::kCafe, core::CacheKind::kPsychic}) {
    double small_disk;
    double big_disk;
    {
      core::CacheConfig config = TestConfig(2.0);
      config.disk_capacity_chunks = 500;
      auto cache = core::MakeCache(kind, config);
      small_disk = sim::Replay(*cache, trace).efficiency;
    }
    {
      core::CacheConfig config = TestConfig(2.0);
      config.disk_capacity_chunks = 4000;
      auto cache = core::MakeCache(kind, config);
      big_disk = sim::Replay(*cache, trace).efficiency;
    }
    EXPECT_GT(big_disk, small_disk) << core::CacheKindName(kind);
  }
}

TEST(IntegrationTest, DiurnalPatternVisibleInSeries) {
  // Fig. 3: hourly ingress varies over the day for every cache.
  trace::Trace trace = TestTrace();
  sim::ReplayResult cafe = RunCache(core::CacheKind::kCafe, trace, 2.0);
  ASSERT_GT(cafe.series.size(), 48u);
  // Compare busiest and quietest hour of the second day.
  uint64_t min_requested = UINT64_MAX;
  uint64_t max_requested = 0;
  for (size_t i = 24; i < 48; ++i) {
    min_requested = std::min(min_requested, cafe.series[i].requested_bytes);
    max_requested = std::max(max_requested, cafe.series[i].requested_bytes);
  }
  EXPECT_GT(max_requested, min_requested + min_requested / 2)
      << "diurnal variation should be pronounced";
}

}  // namespace
}  // namespace vcdn
