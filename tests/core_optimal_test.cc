// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/optimal_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>

#include "src/core/baseline_caches.h"
#include "src/core/cache_factory.h"
#include "src/core/psychic_cache.h"
#include "src/sim/replay.h"
#include "src/util/rng.h"
#include "tests/cache_test_util.h"

namespace vcdn::core {
namespace {

using ::vcdn::testing::ChunkReq;
using ::vcdn::testing::MakeTrace;
using ::vcdn::testing::SmallConfig;

OptimalBound Solve(const trace::Trace& trace, uint64_t capacity, double alpha,
                   OptimalFormulation formulation, bool paper_half_cost = false) {
  OptimalOptions options;
  options.formulation = formulation;
  options.use_paper_half_cost = paper_half_cost;
  OptimalCacheSolver solver(SmallConfig(capacity, alpha), options);
  return solver.SolveBound(trace);
}

TEST(OptimalTest, SingleHotChunkCostsOneFill) {
  // One chunk requested 3 times, alpha = 1: optimal = fill once. Full-cost
  // accounting charges C_F = 1; the paper's |dx|/2 accounting charges 1/2
  // because the chunk never leaves the cache.
  trace::Trace t = MakeTrace({{1.0, 1, 0, 0}, {2.0, 1, 0, 0}, {3.0, 1, 0, 0}});
  for (auto form : {OptimalFormulation::kPaperExact, OptimalFormulation::kIntervalReduced}) {
    OptimalBound bound = Solve(t, 4, 1.0, form);
    ASSERT_EQ(bound.status, lp::SolveStatus::kOptimal);
    EXPECT_NEAR(bound.total_cost, 1.0, 1e-6);
    EXPECT_EQ(bound.total_requested_chunks, 3u);
    EXPECT_NEAR(bound.efficiency_bound, 1.0 - 1.0 / 3.0, 1e-6);

    OptimalBound half = Solve(t, 4, 1.0, form, /*paper_half_cost=*/true);
    ASSERT_EQ(half.status, lp::SolveStatus::kOptimal);
    EXPECT_NEAR(half.total_cost, 0.5, 1e-6);
  }
}

TEST(OptimalTest, OneShotChunksUnderBothAccountings) {
  // Three distinct one-shot chunks at alpha = 1 (C_F = C_R = 1): full-cost
  // accounting is indifferent (cost 3 either way); the paper's half-cost
  // accounting prefers fill-and-keep at 1/2 each.
  trace::Trace t = MakeTrace({{1.0, 1, 0, 0}, {2.0, 2, 0, 0}, {3.0, 3, 0, 0}});
  OptimalBound full = Solve(t, 4, 1.0, OptimalFormulation::kPaperExact);
  ASSERT_EQ(full.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(full.total_cost, 3.0, 1e-6);
  OptimalBound half = Solve(t, 4, 1.0, OptimalFormulation::kPaperExact, true);
  ASSERT_EQ(half.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(half.total_cost, 1.5, 1e-6);
  // The half-cost bound is always the looser (smaller) one.
  EXPECT_LE(half.total_cost, full.total_cost + 1e-9);
}

TEST(OptimalTest, CapacityForcesMisses) {
  // Two chunks strictly alternating, capacity 1: at most one can be kept, so
  // every request to the other costs.
  std::vector<ChunkReq> reqs;
  for (int i = 0; i < 10; ++i) {
    reqs.push_back({static_cast<double>(i), static_cast<trace::VideoId>(1 + i % 2), 0, 0});
  }
  trace::Trace t = MakeTrace(reqs);
  OptimalBound tight = Solve(t, 1, 1.0, OptimalFormulation::kIntervalReduced);
  OptimalBound roomy = Solve(t, 2, 1.0, OptimalFormulation::kIntervalReduced);
  ASSERT_EQ(tight.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(roomy.status, lp::SolveStatus::kOptimal);
  EXPECT_GT(tight.total_cost, roomy.total_cost + 1.0);
  // With room for both, cost is just the two initial fills.
  EXPECT_NEAR(roomy.total_cost, 2.0, 1e-6);
}

TEST(OptimalTest, FormulationsAgreeOnRandomInstances) {
  util::Pcg32 rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<ChunkReq> reqs;
    int steps = 8 + static_cast<int>(rng.NextBounded(8));
    for (int i = 0; i < steps; ++i) {
      reqs.push_back({static_cast<double>(i), static_cast<trace::VideoId>(1 + rng.NextBounded(4)),
                      0, rng.NextBounded(2)});
    }
    trace::Trace t = MakeTrace(reqs);
    uint64_t capacity = 1 + rng.NextBounded(4);
    double alpha = (trial % 2 == 0) ? 1.0 : 2.0;
    for (bool half_cost : {false, true}) {
      OptimalBound paper = Solve(t, capacity, alpha, OptimalFormulation::kPaperExact, half_cost);
      OptimalBound interval =
          Solve(t, capacity, alpha, OptimalFormulation::kIntervalReduced, half_cost);
      ASSERT_EQ(paper.status, lp::SolveStatus::kOptimal) << "trial " << trial;
      ASSERT_EQ(interval.status, lp::SolveStatus::kOptimal) << "trial " << trial;
      EXPECT_NEAR(paper.total_cost, interval.total_cost, 1e-5)
          << "trial " << trial << " capacity=" << capacity << " alpha=" << alpha
          << " half_cost=" << half_cost;
    }
  }
}

TEST(OptimalTest, LowerBoundsEveryRealAlgorithm) {
  // The LP bound must dominate (in chunk-efficiency) whatever any actual
  // cache achieves on the same sequence.
  util::Pcg32 rng(57);
  std::vector<ChunkReq> reqs;
  for (int i = 0; i < 120; ++i) {
    // Zipf-ish: small video ids much more likely.
    trace::VideoId v = 1 + std::min<uint64_t>(rng.NextBounded(10), rng.NextBounded(10));
    reqs.push_back({static_cast<double>(i), v, 0, rng.NextBounded(3)});
  }
  trace::Trace t = MakeTrace(reqs);
  const uint64_t capacity = 8;
  for (double alpha : {1.0, 2.0}) {
    OptimalBound bound = Solve(t, capacity, alpha, OptimalFormulation::kIntervalReduced);
    ASSERT_EQ(bound.status, lp::SolveStatus::kOptimal);
    sim::ReplayOptions options;
    options.measurement_start_fraction = 0.0;
    for (auto kind : {CacheKind::kXlru, CacheKind::kCafe, CacheKind::kPsychic,
                      CacheKind::kBelady, CacheKind::kFillLru}) {
      auto cache = MakeCache(kind, SmallConfig(capacity, alpha));
      sim::ReplayResult result = sim::Replay(*cache, t, options);
      double algo_efficiency = result.totals.ChunkEfficiency(cache->cost_model());
      EXPECT_GE(bound.efficiency_bound, algo_efficiency - 1e-6)
          << CacheKindName(kind) << " alpha=" << alpha;
    }
  }
}

TEST(OptimalTest, AlphaShiftsTheBound) {
  // A workload of one-shot chunks: with expensive fills the bound approaches
  // pure redirection cost; with cheap fills it drops.
  std::vector<ChunkReq> reqs;
  for (int i = 0; i < 12; ++i) {
    reqs.push_back({static_cast<double>(i), static_cast<trace::VideoId>(i + 1), 0, 0});
  }
  trace::Trace t = MakeTrace(reqs);
  OptimalBound cheap_fill = Solve(t, 16, 0.5, OptimalFormulation::kIntervalReduced);
  OptimalBound dear_fill = Solve(t, 16, 4.0, OptimalFormulation::kIntervalReduced);
  ASSERT_EQ(cheap_fill.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(dear_fill.status, lp::SolveStatus::kOptimal);
  // alpha=0.5: filling costs C_F = 2/3 < C_R = 4/3 -> serve everything.
  EXPECT_NEAR(cheap_fill.total_cost, 12.0 * 2.0 / 3.0, 1e-5);
  // alpha=4: C_R = 0.4 < C_F = 1.6 -> redirect everything.
  EXPECT_NEAR(dear_fill.total_cost, 12.0 * 0.4, 1e-5);
}

// Exhaustive offline-optimum oracle for tiny instances: DFS over
// serve/redirect decisions and all eviction subsets, memoized on
// (request index, cached set). Costs use full-fill accounting
// (C_F per filled chunk, C_R per redirected requested chunk).
class BruteForceOptimal {
 public:
  BruteForceOptimal(const trace::Trace& trace, const CacheConfig& config)
      : trace_(trace), config_(config), cost_(config.alpha_f2r) {}

  double MinCost() { return Dfs(0, {}); }

 private:
  using ChunkSet = std::set<ChunkId>;

  std::string Key(size_t index, const ChunkSet& cached) const {
    std::string key = std::to_string(index) + "|";
    for (const ChunkId& c : cached) {
      key += std::to_string(c.video) + ":" + std::to_string(c.index) + ",";
    }
    return key;
  }

  double Dfs(size_t index, ChunkSet cached) {
    if (index == trace_.requests.size()) {
      return 0.0;
    }
    std::string memo_key = Key(index, cached);
    auto it = memo_.find(memo_key);
    if (it != memo_.end()) {
      return it->second;
    }

    const trace::Request& r = trace_.requests[index];
    ChunkRange range = ToChunkRange(r, config_.chunk_bytes);
    std::vector<ChunkId> wanted;
    for (uint32_t c = range.first; c <= range.last; ++c) {
      wanted.push_back(ChunkId{r.video, c});
    }

    // Option 1: redirect.
    double best = cost_.redirect_cost() * static_cast<double>(wanted.size()) +
                  Dfs(index + 1, cached);

    // Option 2: serve, trying every eviction subset of the right size.
    std::vector<ChunkId> missing;
    for (const ChunkId& c : wanted) {
      if (cached.count(c) == 0) {
        missing.push_back(c);
      }
    }
    if (wanted.size() <= config_.disk_capacity_chunks) {
      ChunkSet with_fill = cached;
      for (const ChunkId& c : missing) {
        with_fill.insert(c);
      }
      size_t overflow = with_fill.size() > config_.disk_capacity_chunks
                            ? with_fill.size() - config_.disk_capacity_chunks
                            : 0;
      std::vector<ChunkId> evictable;
      for (const ChunkId& c : cached) {
        if (std::find(wanted.begin(), wanted.end(), c) == wanted.end()) {
          evictable.push_back(c);
        }
      }
      double fill_cost = cost_.fill_cost() * static_cast<double>(missing.size());
      if (overflow == 0) {
        best = std::min(best, fill_cost + Dfs(index + 1, with_fill));
      } else if (evictable.size() >= overflow) {
        // Enumerate eviction subsets via bitmask (tiny instances only).
        VCDN_CHECK(evictable.size() <= 16);
        for (uint32_t mask = 0; mask < (1u << evictable.size()); ++mask) {
          if (static_cast<size_t>(__builtin_popcount(mask)) != overflow) {
            continue;
          }
          ChunkSet next = with_fill;
          for (size_t k = 0; k < evictable.size(); ++k) {
            if (mask & (1u << k)) {
              next.erase(evictable[k]);
            }
          }
          best = std::min(best, fill_cost + Dfs(index + 1, std::move(next)));
        }
      }
    }
    memo_[memo_key] = best;
    return best;
  }

  const trace::Trace& trace_;
  CacheConfig config_;
  CostModel cost_;
  std::unordered_map<std::string, double> memo_;
};

TEST(OptimalTest, ExactIpMatchesBruteForce) {
  util::Pcg32 rng(83);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<ChunkReq> reqs;
    int steps = 6 + static_cast<int>(rng.NextBounded(5));
    for (int i = 0; i < steps; ++i) {
      reqs.push_back({static_cast<double>(i), static_cast<trace::VideoId>(1 + rng.NextBounded(3)),
                      0, rng.NextBounded(2)});
    }
    trace::Trace t = MakeTrace(reqs);
    uint64_t capacity = 2 + rng.NextBounded(2);
    double alpha = (trial % 2 == 0) ? 1.0 : 2.0;

    CacheConfig config = SmallConfig(capacity, alpha);
    OptimalCacheSolver solver(config, OptimalOptions{});
    OptimalExactResult exact = solver.SolveExact(t);
    ASSERT_EQ(exact.status, lp::SolveStatus::kOptimal) << "trial " << trial;

    double brute = BruteForceOptimal(t, config).MinCost();
    EXPECT_NEAR(exact.total_cost, brute, 1e-5)
        << "trial " << trial << " capacity=" << capacity << " alpha=" << alpha;
    // And the LP relaxation cannot exceed the exact optimum.
    OptimalBound bound = Solve(t, capacity, alpha, OptimalFormulation::kIntervalReduced);
    EXPECT_LE(bound.total_cost, exact.total_cost + 1e-6);
    EXPECT_LE(exact.root_relaxation_cost, exact.total_cost + 1e-6);
  }
}

TEST(OptimalTest, ExactIpLowerBoundsAlgorithms) {
  std::vector<ChunkReq> reqs;
  util::Pcg32 rng(19);
  for (int i = 0; i < 30; ++i) {
    reqs.push_back({static_cast<double>(i),
                    static_cast<trace::VideoId>(1 + std::min(rng.NextBounded(4), rng.NextBounded(4))),
                    0, rng.NextBounded(2)});
  }
  trace::Trace t = MakeTrace(reqs);
  CacheConfig config = SmallConfig(4, 2.0);
  OptimalCacheSolver solver(config, OptimalOptions{});
  OptimalExactResult exact = solver.SolveExact(t);
  ASSERT_EQ(exact.status, lp::SolveStatus::kOptimal);
  sim::ReplayOptions options;
  options.measurement_start_fraction = 0.0;
  for (auto kind : {CacheKind::kXlru, CacheKind::kCafe, CacheKind::kPsychic, CacheKind::kBelady}) {
    auto cache = MakeCache(kind, config);
    sim::ReplayResult result = sim::Replay(*cache, t, options);
    double algo_cost =
        cache->cost_model().fill_cost() * static_cast<double>(result.totals.filled_chunks) +
        cache->cost_model().redirect_cost() * static_cast<double>(result.totals.redirected_chunks);
    EXPECT_LE(exact.total_cost, algo_cost + 1e-6) << CacheKindName(kind);
  }
}

TEST(OptimalTest, EmptyTrace) {
  trace::Trace t;
  t.duration = 10.0;
  OptimalBound bound = Solve(t, 4, 1.0, OptimalFormulation::kIntervalReduced);
  EXPECT_EQ(bound.total_requested_chunks, 0u);
  EXPECT_NEAR(bound.total_cost, 0.0, 1e-9);
}

TEST(OptimalTest, MultiChunkRequestsShareAdmission) {
  // A request spanning 3 chunks with capacity 2 cannot be fully admitted;
  // a_t forces all-or-nothing, so the LP (relaxed) serves it at most 2/3.
  trace::Trace t = MakeTrace({{1.0, 1, 0, 2}, {2.0, 1, 0, 2}, {3.0, 1, 0, 2}});
  OptimalBound bound = Solve(t, 2, 1.0, OptimalFormulation::kPaperExact);
  ASSERT_EQ(bound.status, lp::SolveStatus::kOptimal);
  // Full service impossible: cost strictly above the capacity-4 variant.
  OptimalBound roomy = Solve(t, 4, 1.0, OptimalFormulation::kPaperExact);
  EXPECT_GT(bound.total_cost, roomy.total_cost + 0.5);
}

}  // namespace
}  // namespace vcdn::core
