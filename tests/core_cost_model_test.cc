// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/cost_model.h"

#include <gtest/gtest.h>

namespace vcdn::core {
namespace {

TEST(CostModelTest, Eq4Normalization) {
  // C_F = 2a/(a+1), C_R = 2/(a+1), C_F + C_R = 2 (Eq. 3).
  for (double alpha : {0.25, 0.5, 1.0, 2.0, 4.0, 10.0}) {
    CostModel cost(alpha);
    EXPECT_NEAR(cost.fill_cost() + cost.redirect_cost(), 2.0, 1e-12);
    EXPECT_NEAR(cost.fill_cost() / cost.redirect_cost(), alpha, 1e-12);
  }
}

TEST(CostModelTest, AlphaOneIsUnitCosts) {
  CostModel cost(1.0);
  EXPECT_DOUBLE_EQ(cost.fill_cost(), 1.0);
  EXPECT_DOUBLE_EQ(cost.redirect_cost(), 1.0);
  EXPECT_DOUBLE_EQ(cost.min_cost(), 1.0);
}

TEST(CostModelTest, AlphaTwoPaperDefault) {
  CostModel cost(2.0);
  EXPECT_NEAR(cost.fill_cost(), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(cost.redirect_cost(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cost.min_cost(), 2.0 / 3.0, 1e-12);
}

TEST(CostModelTest, MinCostPicksCheaperSide) {
  EXPECT_DOUBLE_EQ(CostModel(0.5).min_cost(), CostModel(0.5).fill_cost());
  EXPECT_DOUBLE_EQ(CostModel(4.0).min_cost(), CostModel(4.0).redirect_cost());
}

TEST(CostModelTest, EfficiencyAllHitsIsOne) {
  CostModel cost(2.0);
  EXPECT_DOUBLE_EQ(cost.Efficiency(0, 0, 1000), 1.0);
}

TEST(CostModelTest, EfficiencyAllRedirectedAtAlphaOneIsZero) {
  CostModel cost(1.0);
  EXPECT_DOUBLE_EQ(cost.Efficiency(0, 1000, 1000), 0.0);
}

TEST(CostModelTest, EfficiencyAllFilledAtAlphaOneIsZero) {
  CostModel cost(1.0);
  EXPECT_DOUBLE_EQ(cost.Efficiency(1000, 0, 1000), 0.0);
}

TEST(CostModelTest, NegativeEfficiencyWhenFillingUnderConstrainedIngress) {
  // Footnote 4: a cache that fills everything under alpha > 1 performs worse
  // than zero.
  CostModel cost(2.0);
  EXPECT_LT(cost.Efficiency(1000, 0, 1000), 0.0);
  EXPECT_NEAR(cost.Efficiency(1000, 0, 1000), 1.0 - 4.0 / 3.0, 1e-12);
}

TEST(CostModelTest, EfficiencyBoundsExtremes) {
  // Worst case: everything cache-filled at the most fill-averse alpha -> -1.
  CostModel cost(1e9);
  EXPECT_NEAR(cost.Efficiency(1000, 0, 1000), -1.0, 1e-6);
}

TEST(CostModelTest, TotalCostMatchesEq1) {
  CostModel cost(2.0);
  double total = cost.TotalCost(300, 600);
  EXPECT_NEAR(total, 300.0 * (4.0 / 3.0) + 600.0 * (2.0 / 3.0), 1e-9);
}

TEST(CostModelTest, EfficiencyEquivalentToMinimizingTotalCost) {
  // Eq. (2) == 1 - TotalCost / requested (when fills measured in bytes).
  CostModel cost(1.5);
  uint64_t requested = 5000;
  uint64_t filled = 1200;
  uint64_t redirected = 800;
  double efficiency = cost.Efficiency(filled, redirected, requested);
  double from_cost = 1.0 - cost.TotalCost(filled, redirected) / static_cast<double>(requested);
  EXPECT_NEAR(efficiency, from_cost, 1e-12);
}

}  // namespace
}  // namespace vcdn::core
