// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/container/flat_lru_map.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace vcdn::container {
namespace {

TEST(FlatLruMapTest, InsertAndLookup) {
  FlatLruMap<int, std::string> map;
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.InsertOrTouch(1, "a"));
  EXPECT_FALSE(map.InsertOrTouch(1, "b"));  // overwrite, not new
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.Peek(1), nullptr);
  EXPECT_EQ(*map.Peek(1), "b");
  EXPECT_EQ(map.Peek(2), nullptr);
}

TEST(FlatLruMapTest, OldestIsLeastRecent) {
  FlatLruMap<int, int> map;
  map.InsertOrTouch(1, 10);
  map.InsertOrTouch(2, 20);
  map.InsertOrTouch(3, 30);
  EXPECT_EQ(map.Oldest().key, 1);
  EXPECT_EQ(map.Newest().key, 3);
}

TEST(FlatLruMapTest, TouchMovesToFront) {
  FlatLruMap<int, int> map;
  map.InsertOrTouch(1, 10);
  map.InsertOrTouch(2, 20);
  map.InsertOrTouch(3, 30);
  ASSERT_NE(map.GetAndTouch(1), nullptr);
  EXPECT_EQ(map.Oldest().key, 2);
  EXPECT_EQ(map.Newest().key, 1);
}

TEST(FlatLruMapTest, PeekDoesNotReorder) {
  FlatLruMap<int, int> map;
  map.InsertOrTouch(1, 10);
  map.InsertOrTouch(2, 20);
  (void)map.Peek(1);
  EXPECT_EQ(map.Oldest().key, 1);
  int* v = map.PeekMut(1);
  ASSERT_NE(v, nullptr);
  *v = 11;
  EXPECT_EQ(map.Oldest().key, 1);
  EXPECT_EQ(*map.Peek(1), 11);
}

TEST(FlatLruMapTest, PopOldestEvictionOrder) {
  FlatLruMap<int, int> map;
  for (int i = 0; i < 5; ++i) {
    map.InsertOrTouch(i, i);
  }
  map.GetAndTouch(0);  // 0 becomes most recent
  EXPECT_EQ(map.PopOldest().key, 1);
  EXPECT_EQ(map.PopOldest().key, 2);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_FALSE(map.Contains(1));
}

TEST(FlatLruMapTest, DefaultInsertOrTouchReturnsValueSlot) {
  FlatLruMap<int, double> map;
  double* v = map.InsertOrTouch(7);
  ASSERT_NE(v, nullptr);
  *v = 1.5;
  EXPECT_EQ(*map.Peek(7), 1.5);
  map.InsertOrTouch(8, 2.5);
  // Touching via the default overload moves to front without clobbering.
  double* again = map.InsertOrTouch(7);
  EXPECT_EQ(*again, 1.5);
  EXPECT_EQ(map.Newest().key, 7);
  EXPECT_EQ(map.Oldest().key, 8);
}

TEST(FlatLruMapTest, EraseUnlinksAndRecyclesSlot) {
  FlatLruMap<int, int> map;
  for (int i = 0; i < 4; ++i) {
    map.InsertOrTouch(i, i);
  }
  size_t slab = map.slab_size();
  EXPECT_TRUE(map.Erase(2));
  EXPECT_FALSE(map.Erase(2));
  EXPECT_FALSE(map.Contains(2));
  EXPECT_EQ(map.size(), 3u);
  // A new insertion reuses the freed slot: the slab must not grow.
  map.InsertOrTouch(9, 9);
  EXPECT_EQ(map.slab_size(), slab);
  EXPECT_EQ(map.Newest().key, 9);
}

TEST(FlatLruMapTest, ReserveBoundsSlabGrowth) {
  FlatLruMap<uint64_t, uint64_t> map;
  map.Reserve(64);
  // Churn well past capacity: steady-state slab stays at the working-set
  // size because PopOldest feeds the free list.
  for (uint64_t k = 0; k < 1000; ++k) {
    map.InsertOrTouch(k, k);
    if (map.size() > 32) {
      map.PopOldest();
    }
  }
  EXPECT_LE(map.slab_size(), 64u);
  EXPECT_EQ(map.size(), 32u);
}

TEST(FlatLruMapTest, IterationMostRecentFirst) {
  FlatLruMap<int, int> map;
  for (int i = 0; i < 4; ++i) {
    map.InsertOrTouch(i, i * 10);
  }
  map.GetAndTouch(1);
  std::vector<int> keys;
  for (const auto& slot : map) {
    keys.push_back(slot.key);
  }
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 2, 0}));
}

TEST(FlatLruMapTest, ClearRetainsNothingObservable) {
  FlatLruMap<int, int> map;
  map.InsertOrTouch(1, 10);
  map.InsertOrTouch(2, 20);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.Contains(1));
  map.InsertOrTouch(3, 30);
  EXPECT_EQ(map.Oldest().key, 3);
  EXPECT_EQ(map.Newest().key, 3);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatLruMapTest, BackshiftDeletionKeepsProbesReachable) {
  // Dense sequential keys collide heavily under an identity-like hash; erase
  // in probe order and verify every survivor stays findable (backshift, not
  // tombstones).
  struct BadHash {
    size_t operator()(uint64_t k) const { return k % 8; }
  };
  FlatLruMap<uint64_t, uint64_t, BadHash> map;
  for (uint64_t k = 0; k < 64; ++k) {
    map.InsertOrTouch(k, k);
  }
  for (uint64_t k = 0; k < 64; k += 2) {
    EXPECT_TRUE(map.Erase(k));
  }
  for (uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(map.Contains(k), k % 2 == 1) << k;
    if (k % 2 == 1) {
      EXPECT_EQ(*map.Peek(k), k);
    }
  }
}

}  // namespace
}  // namespace vcdn::container
