// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// FlightRecorder: ring semantics (oldest-first snapshots, overwrite once
// full, seq stamping), capture/dump determinism, and the crash-dump
// arm/disarm lifecycle.

#include "src/obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/run_metadata.h"

namespace vcdn::obs {
namespace {

RunMetadata TestMeta() {
  RunMetadata meta;
  meta.git_describe = "test-deadbeef";
  meta.build_type = "Test";
  meta.compiler = "testc++ 1.0";
  meta.workload = "unit test";
  meta.seed = 7;
  return meta;
}

DecisionRecord MakeRecord(double time, uint64_t key) {
  DecisionRecord record;
  record.time = time;
  record.key = key;
  record.requested_bytes = 1024;
  record.hit_chunks = 1;
  record.decision = 0;
  return record;
}

TEST(FlightRecorderTest, SnapshotIsOldestFirstBeforeWrap) {
  FlightRecorder recorder(4);
  recorder.Record(MakeRecord(1.0, 100));
  recorder.Record(MakeRecord(2.0, 200));
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.total_recorded(), 2u);

  std::vector<DecisionRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].time, 1.0);
  EXPECT_EQ(records[1].key, 200u);
}

TEST(FlightRecorderTest, RingOverwritesOldestOnceFull) {
  FlightRecorder recorder(3);
  for (int i = 0; i < 7; ++i) {
    recorder.Record(MakeRecord(static_cast<double>(i), static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.total_recorded(), 7u);

  // Only the last three survive, oldest first, with seq = position in the
  // total stream (so a dump shows how far into the run the window sits).
  std::vector<DecisionRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].key, 4u);
  EXPECT_EQ(records[1].key, 5u);
  EXPECT_EQ(records[2].key, 6u);
  EXPECT_EQ(records[0].seq, 4u);
  EXPECT_EQ(records[2].seq, 6u);
}

TEST(FlightRecorderTest, ClearEmptiesTheRing) {
  FlightRecorder recorder(4);
  recorder.Record(MakeRecord(1.0, 1));
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(FlightRecorderTest, CaptureFreezesRingAtTriggerTime) {
  FlightRecorder recorder(4);
  recorder.Record(MakeRecord(1.0, 1));
  FlightCapture capture =
      CaptureFlight(recorder, {"fault_boundary", "server0", 1.5, ""});
  recorder.Record(MakeRecord(2.0, 2));  // after the trigger: not in the capture

  EXPECT_EQ(capture.context.trigger, "fault_boundary");
  EXPECT_EQ(capture.total_recorded, 1u);
  ASSERT_EQ(capture.records.size(), 1u);
  EXPECT_EQ(capture.records[0].key, 1u);
}

TEST(FlightRecorderTest, PostMortemJsonlIsByteStableAndSchemaShaped) {
  FlightRecorder recorder(4);
  recorder.Record(MakeRecord(1.0, 100));
  recorder.Record(MakeRecord(2.0, 200));
  FlightCapture capture =
      CaptureFlight(recorder, {"digest_mismatch", "server2", 2.0, "[{\"kind\":\"outage\"}]"});

  std::ostringstream first, second;
  WritePostMortemJsonl(first, TestMeta(), capture);
  WritePostMortemJsonl(second, TestMeta(), capture);
  EXPECT_EQ(first.str(), second.str()) << "post-mortem must be byte-stable";

  std::istringstream lines(first.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"type\":\"meta\""), std::string::npos);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("digest_mismatch"), std::string::npos);
  EXPECT_NE(line.find("server2"), std::string::npos);
  // Fault schedule rides along so the dump is self-describing.
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("outage"), std::string::npos);
  size_t record_lines = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"type\":\"record\""), std::string::npos);
    ++record_lines;
  }
  EXPECT_EQ(record_lines, 2u);
}

TEST(FlightRecorderTest, PostMortemFileErrorStatusNamesThePath) {
  FlightRecorder recorder(2);
  recorder.Record(MakeRecord(1.0, 1));
  FlightCapture capture = CaptureFlight(recorder, {"check_failure", "main", 0.0, ""});
  const std::string bad_path = "/nonexistent-dir-for-test/pm.jsonl";
  util::Status status = WritePostMortemJsonl(bad_path, TestMeta(), capture);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find(bad_path), std::string::npos)
      << "error must name the path: " << status.message();
}

TEST(FlightRecorderTest, PostMortemFileRoundTrips) {
  FlightRecorder recorder(2);
  recorder.Record(MakeRecord(1.0, 1));
  FlightCapture capture = CaptureFlight(recorder, {"run_end", "main", 0.0, ""});
  const std::string path = ::testing::TempDir() + "/obs_flight_recorder_test.jsonl";
  ASSERT_TRUE(WritePostMortemJsonl(path, TestMeta(), capture).ok());

  std::ostringstream expected;
  WritePostMortemJsonl(expected, TestMeta(), capture);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, expected.str());
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, ArmAndDisarmAreSafeWithoutACheckFailure) {
  FlightRecorder recorder(2);
  recorder.Record(MakeRecord(1.0, 1));
  // Arming registers the process-wide CHECK hook; disarming must restore a
  // state where recorder destruction is safe. No CHECK fires in between.
  ArmCrashDump(&recorder, ::testing::TempDir() + "/never_written.jsonl", TestMeta(),
               {"check_failure", "main", 0.0, ""});
  DisarmCrashDump(&recorder);
  // Disarming a recorder that was never armed is a no-op, not an error.
  FlightRecorder never_armed(2);
  DisarmCrashDump(&never_armed);
}

}  // namespace
}  // namespace vcdn::obs
