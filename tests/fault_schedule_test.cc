// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/fault/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/cache_factory.h"
#include "tests/cache_test_util.h"

namespace vcdn::fault {
namespace {

using ::vcdn::testing::ChunkRequest;
using ::vcdn::testing::SmallConfig;

FaultEvent Outage(size_t target, double start, double end) {
  FaultEvent e;
  e.kind = FaultKind::kEdgeOutage;
  e.target = target;
  e.start = start;
  e.end = end;
  return e;
}

TEST(FaultScheduleTest, PointQueries) {
  FaultSchedule schedule;
  schedule.Add(Outage(0, 10.0, 20.0));
  FaultEvent parent;
  parent.kind = FaultKind::kParentOutage;
  parent.start = 30.0;
  parent.end = 35.0;
  schedule.Add(parent);
  FaultEvent degrade;
  degrade.kind = FaultKind::kDiskDegrade;
  degrade.target = 1;
  degrade.start = 5.0;
  degrade.end = 15.0;
  degrade.capacity_factor = 0.25;
  schedule.Add(degrade);
  FaultEvent inflation;
  inflation.kind = FaultKind::kOriginInflation;
  inflation.start = 0.0;
  inflation.end = 100.0;
  inflation.cost_factor = 3.0;
  schedule.Add(inflation);
  ASSERT_TRUE(schedule.Validate().ok());

  // Half-open windows: active at start, inactive at end.
  EXPECT_FALSE(schedule.EdgeDown(0, 9.999));
  EXPECT_TRUE(schedule.EdgeDown(0, 10.0));
  EXPECT_TRUE(schedule.EdgeDown(0, 19.999));
  EXPECT_FALSE(schedule.EdgeDown(0, 20.0));
  EXPECT_FALSE(schedule.EdgeDown(1, 15.0));  // other edge unaffected

  EXPECT_TRUE(schedule.ParentDown(30.0));
  EXPECT_FALSE(schedule.ParentDown(35.0));

  EXPECT_DOUBLE_EQ(schedule.CapacityFactor(1, 10.0), 0.25);
  EXPECT_DOUBLE_EQ(schedule.CapacityFactor(1, 20.0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.CapacityFactor(0, 10.0), 1.0);

  EXPECT_DOUBLE_EQ(schedule.OriginCostFactor(50.0), 3.0);
  EXPECT_DOUBLE_EQ(schedule.OriginCostFactor(100.0), 1.0);
}

TEST(FaultScheduleTest, ValidateRejectsBrokenEvents) {
  {
    FaultSchedule s;
    s.Add(Outage(0, 20.0, 10.0));  // end < start
    EXPECT_FALSE(s.Validate().ok());
  }
  {
    FaultSchedule s;
    s.Add(Outage(0, -1.0, 10.0));  // negative start
    EXPECT_FALSE(s.Validate().ok());
  }
  {
    FaultSchedule s;
    FaultEvent e;
    e.kind = FaultKind::kDiskDegrade;
    e.start = 0.0;
    e.end = 1.0;
    e.capacity_factor = 0.0;  // must be in (0, 1]
    s.Add(e);
    EXPECT_FALSE(s.Validate().ok());
  }
  {
    FaultSchedule s;
    FaultEvent e;
    e.kind = FaultKind::kOriginInflation;
    e.start = 0.0;
    e.end = 1.0;
    e.cost_factor = 0.5;  // must be >= 1
    s.Add(e);
    EXPECT_FALSE(s.Validate().ok());
  }
}

TEST(FaultScheduleTest, RandomScheduleIsDeterministicAndValid) {
  RandomFaultOptions options;
  options.duration = 86400.0;
  options.num_edges = 4;
  options.outages_per_edge = 2;
  options.restarts_per_edge = 1;
  options.degrades_per_edge = 1;
  options.parent_outages = 1;

  FaultSchedule a = MakeRandomFaultSchedule(1234, options);
  FaultSchedule b = MakeRandomFaultSchedule(1234, options);
  FaultSchedule c = MakeRandomFaultSchedule(999, options);

  EXPECT_TRUE(a.Validate().ok());
  EXPECT_FALSE(a.empty());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].target, b.events()[i].target);
    EXPECT_DOUBLE_EQ(a.events()[i].start, b.events()[i].start);
    EXPECT_DOUBLE_EQ(a.events()[i].end, b.events()[i].end);
  }
  // A different seed moves at least one window.
  bool any_difference = c.events().size() != a.events().size();
  for (size_t i = 0; !any_difference && i < a.events().size(); ++i) {
    any_difference = a.events()[i].start != c.events()[i].start;
  }
  EXPECT_TRUE(any_difference);
}

// Fills a cache with distinct single-chunk videos. Offline algorithms get
// the whole trace via Prepare first.
uint64_t FillCache(core::CacheAlgorithm& cache, int num_videos) {
  trace::Trace trace;
  for (int i = 0; i < num_videos; ++i) {
    trace.requests.push_back(ChunkRequest(static_cast<double>(i), static_cast<uint64_t>(i + 1),
                                          0, 0));
  }
  trace.duration = static_cast<double>(num_videos);
  cache.Prepare(trace);
  for (const trace::Request& r : trace.requests) {
    cache.HandleRequest(r);
  }
  return cache.used_chunks();
}

TEST(CacheResizeTest, AllAlgorithmsShrinkGrowAndDrop) {
  const core::CacheKind kinds[] = {core::CacheKind::kXlru,    core::CacheKind::kCafe,
                                   core::CacheKind::kPsychic, core::CacheKind::kFillLru,
                                   core::CacheKind::kFillLfu, core::CacheKind::kBelady};
  for (core::CacheKind kind : kinds) {
    auto cache = core::MakeCache(kind, SmallConfig(16, 1.0));
    const uint64_t used = FillCache(*cache, 40);
    EXPECT_LE(used, 16u) << core::CacheKindName(kind);

    // Shrink: must evict down to the new limit and report the evictions.
    const uint64_t evicted = cache->Resize(4);
    EXPECT_EQ(cache->config().disk_capacity_chunks, 4u) << core::CacheKindName(kind);
    EXPECT_LE(cache->used_chunks(), 4u) << core::CacheKindName(kind);
    EXPECT_EQ(evicted, used - cache->used_chunks()) << core::CacheKindName(kind);

    // Grow: no evictions, limit raised.
    EXPECT_EQ(cache->Resize(32), 0u) << core::CacheKindName(kind);
    EXPECT_EQ(cache->config().disk_capacity_chunks, 32u);

    // Cold restart: disk empties, capacity survives.
    const uint64_t before = cache->used_chunks();
    EXPECT_EQ(cache->DropContents(), before) << core::CacheKindName(kind);
    EXPECT_EQ(cache->used_chunks(), 0u) << core::CacheKindName(kind);
    EXPECT_EQ(cache->config().disk_capacity_chunks, 32u);
  }
}

TEST(FaultDriverTest, AppliesDegradeRestartAndOutage) {
  auto cache = core::MakeCache(core::CacheKind::kFillLru, SmallConfig(16, 1.0));
  FillCache(*cache, 16);
  ASSERT_EQ(cache->used_chunks(), 16u);

  FaultSchedule schedule;
  FaultEvent degrade;
  degrade.kind = FaultKind::kDiskDegrade;
  degrade.target = 0;
  degrade.start = 10.0;
  degrade.end = 20.0;
  degrade.capacity_factor = 0.5;
  schedule.Add(degrade);
  FaultEvent restart;
  restart.kind = FaultKind::kColdRestart;
  restart.target = 0;
  restart.start = 30.0;
  restart.end = 30.0;
  schedule.Add(restart);
  schedule.Add(Outage(0, 40.0, 50.0));
  ASSERT_TRUE(schedule.Validate().ok());

  FaultDriver driver(schedule, /*target=*/0, cache.get());

  driver.Advance(5.0);
  EXPECT_EQ(cache->config().disk_capacity_chunks, 16u);

  driver.Advance(10.0);  // degrade starts: 16 -> 8
  EXPECT_EQ(cache->config().disk_capacity_chunks, 8u);
  EXPECT_LE(cache->used_chunks(), 8u);

  driver.Advance(20.0);  // window closes: back to 16
  EXPECT_EQ(cache->config().disk_capacity_chunks, 16u);

  // Refill, then the cold restart drops everything.
  FillCache(*cache, 16);
  driver.Advance(30.0);
  EXPECT_EQ(cache->used_chunks(), 0u);
  EXPECT_EQ(driver.stats().cold_restarts, 1u);
  EXPECT_EQ(driver.stats().dropped_chunks, 16u);
  EXPECT_GE(driver.stats().resize_events, 2u);

  EXPECT_FALSE(driver.InOutage(39.0));
  EXPECT_TRUE(driver.InOutage(40.0));
  EXPECT_TRUE(driver.InOutage(49.0));
  EXPECT_FALSE(driver.InOutage(50.0));

  core::RequestOutcome outcome;
  outcome.decision = core::Decision::kUnavailable;
  outcome.requested_bytes = 2048;
  outcome.requested_chunks = 2;
  driver.RecordUnavailable(outcome);
  EXPECT_EQ(driver.stats().unavailable_requests, 1u);
  EXPECT_EQ(driver.stats().unavailable_bytes, 2048u);
}

TEST(FaultDriverTest, OverlappingDegradesRestoreExactly) {
  auto cache = core::MakeCache(core::CacheKind::kFillLru, SmallConfig(100, 1.0));
  FaultSchedule schedule;
  for (double factor : {0.5, 0.4}) {
    FaultEvent e;
    e.kind = FaultKind::kDiskDegrade;
    e.target = 0;
    e.start = factor == 0.5 ? 10.0 : 15.0;
    e.end = factor == 0.5 ? 30.0 : 20.0;
    e.capacity_factor = factor;
    schedule.Add(e);
  }
  ASSERT_TRUE(schedule.Validate().ok());
  FaultDriver driver(schedule, 0, cache.get());

  driver.Advance(12.0);
  EXPECT_EQ(cache->config().disk_capacity_chunks, 50u);
  driver.Advance(16.0);  // both active: 100 * 0.5 * 0.4
  EXPECT_EQ(cache->config().disk_capacity_chunks, 20u);
  driver.Advance(25.0);  // inner window closed
  EXPECT_EQ(cache->config().disk_capacity_chunks, 50u);
  driver.Advance(35.0);  // all restored, exactly
  EXPECT_EQ(cache->config().disk_capacity_chunks, 100u);
}

TEST(FaultDriverTest, TargetIsolation) {
  // A driver for edge 1 ignores edge 0's windows and the parent's.
  FaultSchedule schedule;
  schedule.Add(Outage(0, 0.0, 100.0));
  FaultEvent parent;
  parent.kind = FaultKind::kParentOutage;
  parent.start = 0.0;
  parent.end = 100.0;
  schedule.Add(parent);
  ASSERT_TRUE(schedule.Validate().ok());

  auto cache = core::MakeCache(core::CacheKind::kFillLru, SmallConfig(8, 1.0));
  FaultDriver edge1(schedule, 1, cache.get());
  EXPECT_FALSE(edge1.InOutage(50.0));

  auto parent_cache = core::MakeCache(core::CacheKind::kFillLru, SmallConfig(8, 1.0));
  FaultDriver parent_driver(schedule, kParentTarget, parent_cache.get());
  EXPECT_TRUE(parent_driver.InOutage(50.0));
}

}  // namespace
}  // namespace vcdn::fault
