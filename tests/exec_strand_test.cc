// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/exec/strand.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace vcdn::exec {
namespace {

TEST(StrandTest, HandlersRunInPostOrder) {
  ThreadPool pool(4);
  Strand strand(pool);
  std::vector<int> order;
  for (int i = 0; i < 500; ++i) {
    strand.Post([&order, i] { order.push_back(i); });  // no lock: strand serializes
  }
  strand.Async([] {}).Get();  // join behind the last handler
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(StrandTest, HandlersNeverRunConcurrently) {
  ThreadPool pool(8);
  Strand strand(pool);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::atomic<uint64_t> sum{0};
  uint64_t unguarded = 0;  // only safe to touch if mutual exclusion holds

  std::vector<std::thread> posters;
  for (int p = 0; p < 4; ++p) {
    posters.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        strand.Post([&] {
          int now = inside.fetch_add(1, std::memory_order_acq_rel) + 1;
          int seen = max_inside.load(std::memory_order_relaxed);
          while (now > seen &&
                 !max_inside.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
          }
          ++unguarded;
          sum.fetch_add(1, std::memory_order_relaxed);
          inside.fetch_sub(1, std::memory_order_acq_rel);
        });
      }
    });
  }
  for (auto& t : posters) {
    t.join();
  }
  strand.Async([] {}).Get();
  EXPECT_EQ(max_inside.load(), 1);
  EXPECT_EQ(sum.load(), 2000u);
  EXPECT_EQ(unguarded, 2000u);
}

TEST(StrandTest, PostNeverExecutesInline) {
  ThreadPool pool(2);
  Strand strand(pool);
  std::atomic<bool> ran_inline{false};
  std::thread::id poster = std::this_thread::get_id();
  strand
      .Async([&ran_inline, poster] {
        if (std::this_thread::get_id() == poster) {
          ran_inline.store(true);
        }
      })
      .Get();
  EXPECT_FALSE(ran_inline.load());
}

TEST(StrandTest, RunningInThisStrandIsScopedToHandlers) {
  ThreadPool pool(2);
  Strand strand(pool);
  Strand other(pool);
  EXPECT_FALSE(strand.RunningInThisStrand());
  EXPECT_TRUE(strand.Async([&strand] { return strand.RunningInThisStrand(); }).Get());
  EXPECT_FALSE(strand.Async([&other] { return other.RunningInThisStrand(); }).Get());
}

TEST(StrandTest, TwoStrandsShareThePoolIndependently) {
  ThreadPool pool(4);
  Strand a(pool);
  Strand b(pool);
  std::vector<int> a_order;
  std::vector<int> b_order;
  for (int i = 0; i < 200; ++i) {
    a.Post([&a_order, i] { a_order.push_back(i); });
    b.Post([&b_order, i] { b_order.push_back(i); });
  }
  a.Async([] {}).Get();
  b.Async([] {}).Get();
  ASSERT_EQ(a_order.size(), 200u);
  ASSERT_EQ(b_order.size(), 200u);
  EXPECT_TRUE(std::is_sorted(a_order.begin(), a_order.end()));
  EXPECT_TRUE(std::is_sorted(b_order.begin(), b_order.end()));
}

TEST(StrandTest, MaintainsMetricsInstruments) {
  obs::MetricsRegistry registry;
  ThreadPoolOptions options;
  options.num_threads = 3;
  options.metrics = &registry;
  ThreadPool pool(options);
  Strand strand(pool);
  for (int i = 0; i < 40; ++i) {
    strand.Post([] {});
  }
  strand.Async([] {}).Get();
  EXPECT_EQ(registry.CounterValue("exec.strand.posted_total"), 41u);
  EXPECT_EQ(registry.CounterValue("exec.strand.executed_total"), 41u);
}

}  // namespace
}  // namespace vcdn::exec
