// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// PerfCounterGroup: the contract is graceful either way -- when the kernel
// grants perf_event_open the group produces a plausible sample, and when it
// denies it (perf_event_paranoid, seccomp, containers, non-Linux) every
// operation is a safe no-op and the sample reports invalid. The test asserts
// whichever branch this machine lands on; neither branch may crash.

#include "src/obs/perf_counters.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace vcdn::obs {
namespace {

// Enough work that an available counter group must observe instructions.
uint64_t BusyWork() {
  volatile uint64_t accumulator = 1;
  for (uint64_t i = 0; i < 2'000'000; ++i) {
    accumulator = accumulator * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return accumulator;
}

TEST(PerfCounterGroupTest, SampleIsValidExactlyWhenAvailable) {
  PerfCounterGroup group;
  group.Start();
  BusyWork();
  group.Stop();
  PerfSample sample = group.TakeSample();

  if (group.available()) {
    ASSERT_TRUE(sample.valid);
    // 2M iterations of a multiply-add loop: well over a million instructions,
    // and a nonzero cycle count giving a positive IPC.
    EXPECT_GT(sample.instructions, 1'000'000u);
    EXPECT_GT(sample.cycles, 0u);
    EXPECT_GT(sample.ipc(), 0.0);
    EXPECT_GT(sample.time_running_ns, 0u);
  } else {
    EXPECT_FALSE(sample.valid);
    EXPECT_EQ(sample.cycles, 0u);
    EXPECT_DOUBLE_EQ(sample.ipc(), 0.0);
  }
}

TEST(PerfCounterGroupTest, StopResumeStitchesOneAccumulatedRegion) {
  PerfCounterGroup group;
  group.Start();
  BusyWork();
  group.Stop();
  PerfSample after_first = group.TakeSample();

  BusyWork();  // untimed: must not be counted

  group.Resume();  // enable without reset
  BusyWork();
  group.Stop();
  PerfSample after_second = group.TakeSample();

  if (group.available()) {
    ASSERT_TRUE(after_first.valid);
    ASSERT_TRUE(after_second.valid);
    // Resume accumulates on top of the first region rather than restarting.
    EXPECT_GT(after_second.instructions, after_first.instructions);
  }
}

TEST(PerfCounterGroupTest, UnusedGroupSamplesInvalidNotGarbage) {
  PerfCounterGroup group;
  PerfSample sample = group.TakeSample();
  if (!group.available()) {
    EXPECT_FALSE(sample.valid);
  }
  // Start/Stop/Resume on a fresh (possibly unavailable) group never crash.
  group.Stop();
  group.Resume();
  group.Stop();
}

}  // namespace
}  // namespace vcdn::obs
