// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Determinism contract of sim::RunFleet (docs/PARALLELISM.md): for any
// thread count and any scheduling, the merged results -- per-server totals,
// series, fleet sums, metrics registries, fleet trace lanes -- are identical
// to the sequential threads=1 reference.

#include "src/sim/parallel_fleet.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"
#include "src/util/rng.h"

namespace vcdn::sim {
namespace {

// A small but non-trivial fleet: four generated workloads (decorrelated
// SplitSeed streams), mixed algorithms and disk sizes.
class ParallelFleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const core::CacheKind kinds[] = {core::CacheKind::kXlru, core::CacheKind::kCafe,
                                     core::CacheKind::kPsychic, core::CacheKind::kCafe};
    traces_.reserve(4);  // growth must not invalidate the FleetServer pointers
    for (size_t i = 0; i < 4; ++i) {
      trace::WorkloadConfig workload;
      workload.profile = trace::EuropeProfile(0.02);
      workload.profile.base_request_rate = 0.05 + 0.02 * static_cast<double>(i);
      workload.duration_seconds = 2.0 * 86400.0;
      workload.seed = util::SplitSeed(7, i);
      traces_.push_back(trace::WorkloadGenerator(workload).Generate().trace);

      core::CacheConfig config;
      config.chunk_bytes = 2ull << 20;
      config.disk_capacity_chunks = 200 + 100 * i;
      config.alpha_f2r = 2.0;
      servers_.push_back(
          FleetServer{"server" + std::to_string(i), kinds[i], config, &traces_.back()});
    }
  }

  std::vector<trace::Trace> traces_;
  std::vector<FleetServer> servers_;
};

void ExpectTotalsEq(const ReplayTotals& a, const ReplayTotals& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.served_requests, b.served_requests);
  EXPECT_EQ(a.redirected_requests, b.redirected_requests);
  EXPECT_EQ(a.requested_bytes, b.requested_bytes);
  EXPECT_EQ(a.served_bytes, b.served_bytes);
  EXPECT_EQ(a.redirected_bytes, b.redirected_bytes);
  EXPECT_EQ(a.filled_bytes, b.filled_bytes);
  EXPECT_EQ(a.evicted_chunks, b.evicted_chunks);
  EXPECT_EQ(a.requested_chunks, b.requested_chunks);
  EXPECT_EQ(a.filled_chunks, b.filled_chunks);
  EXPECT_EQ(a.redirected_chunks, b.redirected_chunks);
  EXPECT_EQ(a.proactive_filled_chunks, b.proactive_filled_chunks);
}

void ExpectResultsEq(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.servers.size(), b.servers.size());
  ExpectTotalsEq(a.totals, b.totals);
  ExpectTotalsEq(a.steady, b.steady);
  for (size_t i = 0; i < a.servers.size(); ++i) {
    const ReplayResult& x = a.servers[i];
    const ReplayResult& y = b.servers[i];
    EXPECT_EQ(x.cache_name, y.cache_name);
    ExpectTotalsEq(x.totals, y.totals);
    ExpectTotalsEq(x.steady, y.steady);
    EXPECT_EQ(x.efficiency, y.efficiency);  // bitwise, not approximate
    EXPECT_EQ(x.ingress_fraction, y.ingress_fraction);
    EXPECT_EQ(x.redirect_fraction, y.redirect_fraction);
    ASSERT_EQ(x.series.size(), y.series.size());
    for (size_t p = 0; p < x.series.size(); ++p) {
      EXPECT_EQ(x.series[p].bucket_start, y.series[p].bucket_start);
      EXPECT_EQ(x.series[p].requested_bytes, y.series[p].requested_bytes);
      EXPECT_EQ(x.series[p].served_bytes, y.series[p].served_bytes);
      EXPECT_EQ(x.series[p].redirected_bytes, y.series[p].redirected_bytes);
      EXPECT_EQ(x.series[p].filled_bytes, y.series[p].filled_bytes);
    }
  }
  EXPECT_EQ(FleetDigest(a), FleetDigest(b));
}

TEST_F(ParallelFleetTest, ParallelIsIdenticalToSequentialForAnyThreadCount) {
  FleetOptions sequential;
  sequential.threads = 1;
  FleetResult reference = RunFleet(servers_, sequential);
  EXPECT_EQ(reference.threads, 1u);

  for (size_t threads : {2u, 7u}) {
    FleetOptions options;
    options.threads = threads;
    FleetResult result = RunFleet(servers_, options);
    EXPECT_EQ(result.threads, threads);
    ExpectResultsEq(result, reference);
  }
}

TEST_F(ParallelFleetTest, RepeatedRunsAgree) {
  uint64_t first_digest = 0;
  for (int run = 0; run < 3; ++run) {
    FleetOptions options;
    options.threads = 3;
    FleetResult result = RunFleet(servers_, options);
    if (run == 0) {
      first_digest = FleetDigest(result);
    } else {
      EXPECT_EQ(FleetDigest(result), first_digest);
    }
  }
}

TEST_F(ParallelFleetTest, FleetTotalsAreSumsOfServerTotals) {
  FleetOptions options;
  options.threads = 2;
  FleetResult result = RunFleet(servers_, options);
  ReplayTotals sum;
  for (const ReplayResult& server : result.servers) {
    sum.Add(server.totals);
  }
  ExpectTotalsEq(result.totals, sum);
  EXPECT_GT(result.totals.requests, 0u);
}

// Sample vectors with the executor's own instruments and the wall-clock
// throughput gauge removed -- the only registry content that legitimately
// depends on whether (and how fast) a pool ran.
template <typename Samples>
Samples DeterministicSamples(const Samples& samples) {
  Samples out;
  for (const auto& sample : samples) {
    if (sample.first.rfind("exec.", 0) == 0 || sample.first == "sim.replay.requests_per_sec") {
      continue;
    }
    out.push_back(sample);
  }
  return out;
}

TEST_F(ParallelFleetTest, MergedRegistryMatchesSequentialRecording) {
  obs::MetricsRegistry sequential_registry;
  FleetOptions sequential;
  sequential.threads = 1;
  sequential.replay.metrics = &sequential_registry;
  RunFleet(servers_, sequential);

  obs::MetricsRegistry parallel_registry;
  FleetOptions parallel;
  parallel.threads = 5;
  parallel.replay.metrics = &parallel_registry;
  RunFleet(servers_, parallel);

  EXPECT_EQ(DeterministicSamples(sequential_registry.CounterSamples()),
            DeterministicSamples(parallel_registry.CounterSamples()));
  EXPECT_EQ(DeterministicSamples(sequential_registry.GaugeSamples()),
            DeterministicSamples(parallel_registry.GaugeSamples()));
}

TEST_F(ParallelFleetTest, FleetTraceLanesMatchSequentialRecording) {
  auto fleet_lane_events = [](const obs::TraceEventSink& sink) {
    // (name, phase, tid) sequence of the merged shard lanes; timestamps and
    // wall-clock counter samples are exempt from the contract.
    std::vector<std::string> out;
    for (const obs::TraceEvent& event : sink.events()) {
      if (event.tid < obs::kFleetTidBase || event.name == "sim.replay.requests_per_sec") {
        continue;
      }
      out.push_back(event.name + "/" + event.phase + "/" + std::to_string(event.tid));
    }
    return out;
  };

  obs::TraceEventSink sequential_sink;
  FleetOptions sequential;
  sequential.threads = 1;
  sequential.replay.trace_sink = &sequential_sink;
  RunFleet(servers_, sequential);

  obs::TraceEventSink parallel_sink;
  FleetOptions parallel;
  parallel.threads = 4;
  parallel.replay.trace_sink = &parallel_sink;
  RunFleet(servers_, parallel);

  std::vector<std::string> sequential_events = fleet_lane_events(sequential_sink);
  EXPECT_FALSE(sequential_events.empty());
  EXPECT_EQ(sequential_events, fleet_lane_events(parallel_sink));
}

TEST_F(ParallelFleetTest, RunsOnAnExternalPool) {
  FleetOptions sequential;
  sequential.threads = 1;
  uint64_t reference = FleetDigest(RunFleet(servers_, sequential));

  exec::ThreadPool pool(3);
  FleetOptions options;
  options.pool = &pool;
  FleetResult result = RunFleet(servers_, options);
  EXPECT_EQ(result.threads, 3u);
  EXPECT_EQ(FleetDigest(result), reference);
  pool.Shutdown();
  EXPECT_GE(pool.stats().executed, servers_.size());
}

TEST_F(ParallelFleetTest, DigestIsSensitiveToResults) {
  FleetOptions options;
  options.threads = 2;
  FleetResult result = RunFleet(servers_, options);
  uint64_t digest = FleetDigest(result);
  result.servers[0].totals.served_bytes ^= 1;
  EXPECT_NE(FleetDigest(result), digest);
}

}  // namespace
}  // namespace vcdn::sim
