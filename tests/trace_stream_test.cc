// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// The trace-layer streaming contract: GeneratedStream is bit-identical to
// WorkloadGenerator::Generate() however consumers chunk it (inline or on a
// generator pool), TraceView replays a materialized trace unchanged, and the
// VCDNTRS2 pack/mmap round trip preserves every record byte (proved by the
// writer/Validate digests trace_pack --verify also uses).

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/trace/generated_stream.h"
#include "src/trace/request_stream.h"
#include "src/trace/server_profile.h"
#include "src/trace/trace_file.h"
#include "src/trace/workload_generator.h"
#include "src/util/rng.h"

namespace vcdn::trace {
namespace {

WorkloadConfig SmallConfig(uint64_t seed = 7) {
  ServerProfile profile = EuropeProfile(0.02);
  WorkloadConfig config;
  config.profile = profile;
  config.seed = seed;
  config.duration_seconds = 3.0 * 86400.0;
  return config;
}

std::vector<Request> Drain(RequestStream& stream, size_t chunk) {
  std::vector<Request> out;
  for (;;) {
    RequestSpan span = stream.Next(chunk);
    if (span.empty()) {
      break;
    }
    out.insert(out.end(), span.begin(), span.end());
  }
  EXPECT_TRUE(stream.status().ok()) << stream.status().ToString();
  return out;
}

void ExpectSameRequests(const std::vector<Request>& a, const std::vector<Request>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_TRUE(std::memcmp(a.data(), b.data(), a.size() * sizeof(Request)) == 0);
}

TEST(TraceViewTest, YieldsTheTraceInChunksOfAtMostMax) {
  Trace trace = WorkloadGenerator(SmallConfig()).Generate().trace;
  TraceView view(trace);
  std::vector<Request> streamed;
  for (;;) {
    RequestSpan span = view.Next(100);
    if (span.empty()) {
      break;
    }
    EXPECT_LE(span.count, 100u);
    streamed.insert(streamed.end(), span.begin(), span.end());
  }
  ExpectSameRequests(streamed, trace.requests);
  EXPECT_EQ(view.duration(), trace.duration);
  EXPECT_EQ(view.total_requests_hint(), trace.requests.size());
}

TEST(GeneratedStreamTest, InlineModeMatchesGenerateAtEveryChunkSize) {
  const WorkloadConfig config = SmallConfig();
  const GeneratedWorkload reference = WorkloadGenerator(config).Generate();
  for (size_t chunk : {size_t{1}, size_t{7}, size_t{4096}}) {
    GeneratedStream stream(config);
    ExpectSameRequests(Drain(stream, chunk), reference.trace.requests);
    EXPECT_EQ(stream.duration(), reference.trace.duration);
  }
}

TEST(GeneratedStreamTest, PooledModeMatchesGenerate) {
  const WorkloadConfig config = SmallConfig();
  const GeneratedWorkload reference = WorkloadGenerator(config).Generate();
  exec::ThreadPoolOptions pool_options;
  pool_options.num_threads = 2;
  exec::ThreadPool generator_pool(pool_options);
  for (size_t lookahead : {size_t{1}, size_t{4}}) {
    GeneratedStreamOptions options;
    options.generator_pool = &generator_pool;
    options.lookahead_windows = lookahead;
    GeneratedStream stream(config, options);
    ExpectSameRequests(Drain(stream, 257), reference.trace.requests);
  }
}

TEST(GeneratedStreamTest, CatalogMatchesGenerate) {
  const WorkloadConfig config = SmallConfig();
  const GeneratedWorkload reference = WorkloadGenerator(config).Generate();
  GeneratedStream stream(config);
  ASSERT_EQ(stream.catalog().videos.size(), reference.catalog.videos.size());
  for (size_t i = 0; i < reference.catalog.videos.size(); ++i) {
    EXPECT_EQ(stream.catalog().videos[i].size_bytes, reference.catalog.videos[i].size_bytes);
    EXPECT_EQ(stream.catalog().videos[i].birth_time, reference.catalog.videos[i].birth_time);
  }
}

TEST(GeneratedStreamTest, AbandonedPooledStreamShutsDownCleanly) {
  exec::ThreadPoolOptions pool_options;
  pool_options.num_threads = 2;
  exec::ThreadPool generator_pool(pool_options);
  GeneratedStreamOptions options;
  options.generator_pool = &generator_pool;
  GeneratedStream stream(SmallConfig(), options);
  // Consume a sliver, then destroy with the producer possibly mid-window;
  // the destructor must join it without deadlock or use-after-free (the
  // ASan/TSan lanes give this test its teeth).
  stream.Next(10);
}

TEST(GeneratedStreamTest, StatsAccountForEveryRequestAndWindow) {
  const WorkloadConfig config = SmallConfig();
  const GeneratedWorkload reference = WorkloadGenerator(config).Generate();
  GeneratedStreamStats stats;
  std::vector<Request> streamed;
  {
    GeneratedStreamOptions options;
    options.stats = &stats;
    GeneratedStream stream(config, options);
    streamed = Drain(stream, 1024);
  }  // stats flush on destruction
  EXPECT_EQ(stats.requests.load(), reference.trace.requests.size());
  EXPECT_EQ(streamed.size(), reference.trace.requests.size());
  // 3 days at the default 6h refresh = 12 windows.
  EXPECT_EQ(stats.windows.load(), 12u);
  EXPECT_GT(stats.generate_ns.load(), 0u);
}

TEST(GeneratedStreamTest, DifferentSeedsDiverge) {
  GeneratedStream a(SmallConfig(1));
  GeneratedStream b(SmallConfig(2));
  const std::vector<Request> ra = Drain(a, 4096);
  const std::vector<Request> rb = Drain(b, 4096);
  EXPECT_FALSE(ra.size() == rb.size() &&
               std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(Request)) == 0);
}

// --- VCDNTRS2 pack / mmap round trip ----------------------------------------

class TraceFileTest : public ::testing::Test {
 protected:
  std::string TempPath(const char* name) {
    return testing::TempDir() + "trace_stream_test_" + name + ".vtrs";
  }
};

TEST_F(TraceFileTest, RoundTripPreservesEveryRecordAndTheIndex) {
  const std::string path = TempPath("roundtrip");
  Trace a = WorkloadGenerator(SmallConfig(3)).Generate().trace;
  Trace b = WorkloadGenerator(SmallConfig(4)).Generate().trace;
  ASSERT_TRUE(WriteTraceFile({&a, &b}, path, {100, 200}).ok());

  auto mapped = MmapTrace::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const MmapTrace& file = mapped.value();
  EXPECT_EQ(file.server_count(), 2u);
  EXPECT_EQ(file.total_records(), a.requests.size() + b.requests.size());
  EXPECT_EQ(file.duration(), std::max(a.duration, b.duration));
  EXPECT_EQ(file.total_catalog_videos(), 300u);
  EXPECT_EQ(file.server(0).record_count, a.requests.size());
  EXPECT_EQ(file.server(1).record_offset, a.requests.size());

  // Streamed records identical to the source, at an awkward chunk size.
  auto stream = file.ServerStream(1);
  ExpectSameRequests(Drain(*stream, 333), b.requests);
  EXPECT_EQ(stream->duration(), b.duration);
  EXPECT_EQ(stream->total_requests_hint(), b.requests.size());

  // Materializing round-trips too.
  auto read_back = file.ReadServer(0);
  ASSERT_TRUE(read_back.ok());
  ExpectSameRequests(read_back.value().requests, a.requests);

  // Validate()'s digest equals the digest of the source records -- the same
  // equality trace_pack --verify asserts.
  RequestDigest source;
  source.Fold(a.requests.data(), a.requests.size());
  source.Fold(b.requests.data(), b.requests.size());
  auto scanned = file.Validate();
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  EXPECT_EQ(scanned.value(), source.value());
  std::remove(path.c_str());
}

TEST_F(TraceFileTest, EmptySectionsRoundTrip) {
  const std::string path = TempPath("empty");
  Trace empty;
  empty.duration = 10.0;
  ASSERT_TRUE(WriteTraceFile({&empty}, path).ok());
  auto mapped = MmapTrace::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped.value().total_records(), 0u);
  EXPECT_TRUE(mapped.value().ServerStream(0)->Next(16).empty());
  std::remove(path.c_str());
}

TEST_F(TraceFileTest, WriterRejectsMalformedRecords) {
  const std::string path = TempPath("writer_reject");
  TraceFileWriter writer;
  ASSERT_TRUE(writer.Open(path, 1).ok());
  ASSERT_TRUE(writer.BeginServer(100.0).ok());

  Request nan_time{std::numeric_limits<double>::quiet_NaN(), 1, 0, 10};
  EXPECT_EQ(writer.Append(&nan_time, 1).code(), util::StatusCode::kInvalidArgument);

  Request late{200.0, 1, 0, 10};  // after the section duration
  EXPECT_EQ(writer.Append(&late, 1).code(), util::StatusCode::kInvalidArgument);

  Request inverted{1.0, 1, 10, 0};
  EXPECT_EQ(writer.Append(&inverted, 1).code(), util::StatusCode::kInvalidArgument);

  Request ok{5.0, 1, 0, 10};
  ASSERT_TRUE(writer.Append(&ok, 1).ok());
  Request out_of_order{1.0, 1, 0, 10};
  EXPECT_EQ(writer.Append(&out_of_order, 1).code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(TraceFileTest, WriterEnforcesTheDeclaredServerCount) {
  const std::string path = TempPath("writer_count");
  TraceFileWriter writer;
  ASSERT_TRUE(writer.Open(path, 2).ok());
  ASSERT_TRUE(writer.BeginServer(10.0).ok());
  // Finishing with only 1 of the declared 2 sections must fail...
  EXPECT_EQ(writer.Finish().code(), util::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(writer.BeginServer(10.0).ok());
  // ...and a third section must be refused.
  EXPECT_EQ(writer.BeginServer(10.0).code(), util::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(writer.Finish().ok());
  std::remove(path.c_str());
}

TEST_F(TraceFileTest, MmapStreamFeedsReplaySizedPulls) {
  // The exact shape sim::ReplayStream uses: large pulls, spans borrowed from
  // the mapping between pulls.
  const std::string path = TempPath("pulls");
  Trace trace = WorkloadGenerator(SmallConfig(5)).Generate().trace;
  ASSERT_TRUE(WriteTraceFile({&trace}, path).ok());
  auto mapped = MmapTrace::Open(path);
  ASSERT_TRUE(mapped.ok());
  auto stream = mapped.value().ServerStream(0);
  ExpectSameRequests(Drain(*stream, 4096), trace.requests);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vcdn::trace
