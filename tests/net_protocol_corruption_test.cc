// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Hardened-parse regression tests for the wire protocol, the network
// counterpart of trace_corruption_test: every corruption is rejected with
// the right typed Status BEFORE any body interpretation, oversized length
// prefixes are refused before the body is waited for, and truncation is
// distinguished from corruption (truncated = wait, corrupt = drop).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "src/net/protocol.h"
#include "src/net/wire_buffer.h"
#include "src/util/status.h"

namespace vcdn::net {
namespace {

std::vector<uint8_t> EncodedRequest() {
  RequestFrame frame;
  frame.request_id = 7;
  frame.video = 42;
  frame.byte_begin = 1024;
  frame.byte_end = 2047;
  frame.arrival_time = 12.5;
  WireBuffer buf;
  AppendRequest(buf, frame);
  return std::vector<uint8_t>(buf.ReadPtr(), buf.ReadPtr() + buf.ReadableBytes());
}

std::vector<uint8_t> EncodedResponse() {
  ResponseFrame frame;
  frame.request_id = 7;
  frame.requested_bytes = 1024;
  frame.decision = 0;
  frame.tier = 1;
  frame.hit_chunks = 3;
  frame.filled_chunks = 1;
  frame.evicted_chunks = 0;
  WireBuffer buf;
  AppendResponse(buf, frame);
  return std::vector<uint8_t>(buf.ReadPtr(), buf.ReadPtr() + buf.ReadableBytes());
}

util::Status DecodeStatus(const std::vector<uint8_t>& bytes) {
  DecodedFrame decoded;
  return DecodeFrame(bytes.data(), bytes.size(), &decoded).status();
}

TEST(NetProtocolCorruptionTest, TruncationWaitsInsteadOfRejecting) {
  const std::vector<uint8_t> frame = EncodedRequest();
  DecodedFrame decoded;
  // Every strict prefix -- mid-header and mid-body -- must read as "need
  // more bytes", never as an error.
  for (size_t len = 0; len < frame.size(); ++len) {
    util::Result<size_t> n = DecodeFrame(frame.data(), len, &decoded);
    ASSERT_TRUE(n.ok()) << "prefix length " << len << ": " << n.status().message();
    EXPECT_EQ(n.value(), 0u) << "prefix length " << len;
  }
  util::Result<size_t> full = DecodeFrame(frame.data(), frame.size(), &decoded);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value(), frame.size());
}

TEST(NetProtocolCorruptionTest, BadMagicIsDataLoss) {
  std::vector<uint8_t> frame = EncodedRequest();
  frame[0] ^= 0xFF;
  util::Status status = DecodeStatus(frame);
  EXPECT_EQ(status.code(), util::StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST(NetProtocolCorruptionTest, UnknownVersionIsUnimplemented) {
  std::vector<uint8_t> frame = EncodedRequest();
  frame[4] = static_cast<uint8_t>(kProtocolVersion + 1);
  util::Status status = DecodeStatus(frame);
  EXPECT_EQ(status.code(), util::StatusCode::kUnimplemented);
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST(NetProtocolCorruptionTest, UnknownFrameTypeIsInvalidArgument) {
  std::vector<uint8_t> frame = EncodedRequest();
  frame[5] = 9;
  EXPECT_EQ(DecodeStatus(frame).code(), util::StatusCode::kInvalidArgument);
}

TEST(NetProtocolCorruptionTest, NonzeroReservedHeaderIsInvalidArgument) {
  std::vector<uint8_t> frame = EncodedRequest();
  frame[6] = 1;
  EXPECT_EQ(DecodeStatus(frame).code(), util::StatusCode::kInvalidArgument);
}

TEST(NetProtocolCorruptionTest, OversizedLengthPrefixRejectedBeforeBody) {
  // Only the 12-byte header is present; the hostile length says 1 GiB. The
  // decoder must reject NOW (kOutOfRange), not wait for a gigabyte.
  std::vector<uint8_t> frame = EncodedRequest();
  frame.resize(kFrameHeaderBytes);
  const uint32_t huge = 1u << 30;
  std::memcpy(frame.data() + 8, &huge, sizeof(huge));
  util::Status status = DecodeStatus(frame);
  EXPECT_EQ(status.code(), util::StatusCode::kOutOfRange);
  EXPECT_NE(status.message().find("cap"), std::string::npos);
}

TEST(NetProtocolCorruptionTest, WrongBodyLengthForTypeIsDataLoss) {
  std::vector<uint8_t> frame = EncodedRequest();
  // Under the cap but wrong for a request frame.
  const uint32_t wrong = static_cast<uint32_t>(kRequestBodyBytes + 8);
  std::memcpy(frame.data() + 8, &wrong, sizeof(wrong));
  EXPECT_EQ(DecodeStatus(frame).code(), util::StatusCode::kDataLoss);
}

TEST(NetProtocolCorruptionTest, NanArrivalTimeIsInvalidArgument) {
  std::vector<uint8_t> frame = EncodedRequest();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(frame.data() + kFrameHeaderBytes + 32, &nan, sizeof(nan));
  util::Status status = DecodeStatus(frame);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("arrival_time"), std::string::npos);
}

TEST(NetProtocolCorruptionTest, InfiniteAndNegativeArrivalTimesRejected) {
  for (double bad : {std::numeric_limits<double>::infinity(), -1.0}) {
    std::vector<uint8_t> frame = EncodedRequest();
    std::memcpy(frame.data() + kFrameHeaderBytes + 32, &bad, sizeof(bad));
    EXPECT_EQ(DecodeStatus(frame).code(), util::StatusCode::kInvalidArgument);
  }
}

TEST(NetProtocolCorruptionTest, InvertedByteRangeIsInvalidArgument) {
  std::vector<uint8_t> frame = EncodedRequest();
  const uint64_t begin = 5000;
  const uint64_t end = 4999;
  std::memcpy(frame.data() + kFrameHeaderBytes + 16, &begin, sizeof(begin));
  std::memcpy(frame.data() + kFrameHeaderBytes + 24, &end, sizeof(end));
  util::Status status = DecodeStatus(frame);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("inverted"), std::string::npos);
}

TEST(NetProtocolCorruptionTest, BadResponseEnumsRejected) {
  {
    std::vector<uint8_t> frame = EncodedResponse();
    frame[kFrameHeaderBytes + 16] = 3;  // decision beyond kUnavailable
    EXPECT_EQ(DecodeStatus(frame).code(), util::StatusCode::kInvalidArgument);
  }
  {
    std::vector<uint8_t> frame = EncodedResponse();
    frame[kFrameHeaderBytes + 17] = 4;  // tier beyond kUnavailable
    EXPECT_EQ(DecodeStatus(frame).code(), util::StatusCode::kInvalidArgument);
  }
  {
    std::vector<uint8_t> frame = EncodedResponse();
    frame[kFrameHeaderBytes + 18] = 1;  // reserved body field
    EXPECT_EQ(DecodeStatus(frame).code(), util::StatusCode::kInvalidArgument);
  }
}

// Corruption in the middle of a pipelined stream: the frames before the
// damage decode fine; the damaged frame kills the stream.
TEST(NetProtocolCorruptionTest, CorruptionAfterValidFramesStopsAtTheDamage) {
  WireBuffer stream;
  const std::vector<uint8_t> good = EncodedRequest();
  stream.Append(good.data(), good.size());
  stream.Append(good.data(), good.size());
  std::vector<uint8_t> bad = EncodedRequest();
  bad[1] ^= 0x40;  // magic damage
  stream.Append(bad.data(), bad.size());

  DecodedFrame decoded;
  ASSERT_TRUE(DecodeFrame(stream, &decoded).ok());
  ASSERT_TRUE(DecodeFrame(stream, &decoded).ok());
  util::Result<size_t> third = DecodeFrame(stream, &decoded);
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), util::StatusCode::kDataLoss);
}

}  // namespace
}  // namespace vcdn::net
