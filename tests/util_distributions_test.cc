// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/util/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "src/util/rng.h"

namespace vcdn::util {
namespace {

TEST(ExponentialTest, MeanMatches) {
  Pcg32 rng(1);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    double v = SampleExponential(rng, 5.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(NormalTest, MeanAndVariance) {
  Pcg32 rng(2);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    double v = SampleStandardNormal(rng);
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sq / kSamples, 1.0, 0.02);
}

TEST(LogNormalTest, MedianIsExpMu) {
  Pcg32 rng(3);
  std::vector<double> samples;
  constexpr int kSamples = 50001;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    double v = SampleLogNormal(rng, 2.0, 0.5);
    ASSERT_GT(v, 0.0);
    samples.push_back(v);
  }
  std::nth_element(samples.begin(), samples.begin() + kSamples / 2, samples.end());
  EXPECT_NEAR(samples[kSamples / 2], std::exp(2.0), 0.2);
}

TEST(ParetoTest, SupportAndMedian) {
  Pcg32 rng(4);
  std::vector<double> samples;
  constexpr int kSamples = 50001;
  for (int i = 0; i < kSamples; ++i) {
    double v = SamplePareto(rng, 2.0, 1.5);
    ASSERT_GE(v, 2.0);
    samples.push_back(v);
  }
  std::nth_element(samples.begin(), samples.begin() + kSamples / 2, samples.end());
  // Median of Pareto(x_m, a) = x_m * 2^(1/a).
  EXPECT_NEAR(samples[kSamples / 2], 2.0 * std::pow(2.0, 1.0 / 1.5), 0.1);
}

class ZipfParamTest : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(ZipfParamTest, EmpiricalFrequenciesMatchTheory) {
  auto [n, s] = GetParam();
  Pcg32 rng(42);
  ZipfDistribution zipf(n, s);
  constexpr int kSamples = 200000;
  std::vector<int> counts(n + 1, 0);
  for (int i = 0; i < kSamples; ++i) {
    uint64_t k = zipf.Sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, n);
    ++counts[k];
  }
  // Normalization constant.
  double h = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    h += 1.0 / std::pow(static_cast<double>(k), s);
  }
  // Check the head ranks (tail ranks are individually too rare to test).
  for (uint64_t k = 1; k <= std::min<uint64_t>(n, 5); ++k) {
    double expected = 1.0 / std::pow(static_cast<double>(k), s) / h;
    double observed = static_cast<double>(counts[k]) / kSamples;
    EXPECT_NEAR(observed, expected, expected * 0.08 + 0.002)
        << "rank " << k << " n=" << n << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(ZipfSweep, ZipfParamTest,
                         ::testing::Values(std::make_tuple(10ull, 0.8),
                                           std::make_tuple(100ull, 1.0),
                                           std::make_tuple(1000ull, 1.2),
                                           std::make_tuple(50ull, 0.5),
                                           std::make_tuple(5ull, 2.0),
                                           std::make_tuple(1ull, 1.0)));

TEST(ZipfTest, SingleElementAlwaysRankOne) {
  Pcg32 rng(9);
  ZipfDistribution zipf(1, 1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 1u);
  }
}

TEST(AliasTableTest, MatchesWeights) {
  Pcg32 rng(5);
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  constexpr int kSamples = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kSamples; ++i) {
    size_t idx = table.Sample(rng);
    ASSERT_LT(idx, weights.size());
    ++counts[idx];
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    double expected = weights[i] / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[i]) / kSamples, expected, 0.01);
  }
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  Pcg32 rng(6);
  AliasTable table({0.0, 1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) {
    size_t idx = table.Sample(rng);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(AliasTableTest, SingleEntry) {
  Pcg32 rng(7);
  AliasTable table({3.5});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.Sample(rng), 0u);
  }
}

TEST(AliasTableTest, HeavyTailedWeights) {
  Pcg32 rng(8);
  std::vector<double> weights(1000, 0.001);
  weights[0] = 1000.0;
  AliasTable table(weights);
  int head = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (table.Sample(rng) == 0) {
      ++head;
    }
  }
  double expected = 1000.0 / (1000.0 + 0.999);
  EXPECT_NEAR(static_cast<double>(head) / kSamples, expected, 0.005);
}

}  // namespace
}  // namespace vcdn::util
