// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Fault injection through the sim layer: outage accounting in Replay,
// tiered failover in RunHierarchy, and the determinism contract (identical
// results and FleetDigest for any thread count) under an active schedule.

#include <gtest/gtest.h>

#include <vector>

#include "src/fault/fault.h"
#include "src/sim/hierarchy.h"
#include "src/sim/parallel_fleet.h"
#include "src/sim/replay.h"
#include "tests/cache_test_util.h"

namespace vcdn::sim {
namespace {

using ::vcdn::testing::ChunkReq;
using ::vcdn::testing::MakeTrace;
using ::vcdn::testing::SmallConfig;

// One request per second over [0, seconds); `spread` distinct videos.
trace::Trace UniformTrace(int seconds, int spread) {
  std::vector<ChunkReq> reqs;
  for (int i = 0; i < seconds; ++i) {
    reqs.push_back({static_cast<double>(i), static_cast<trace::VideoId>(1 + i % spread), 0, 1});
  }
  return MakeTrace(reqs);
}

fault::FaultEvent EdgeOutage(size_t target, double start, double end) {
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kEdgeOutage;
  e.target = target;
  e.start = start;
  e.end = end;
  return e;
}

TEST(ReplayFaultTest, OutageWindowBecomesUnavailableTraffic) {
  trace::Trace trace = UniformTrace(100, 5);
  fault::FaultSchedule schedule;
  schedule.Add(EdgeOutage(0, 25.0, 50.0));
  ASSERT_TRUE(schedule.Validate().ok());

  auto cache = core::MakeCache(core::CacheKind::kFillLru, SmallConfig(32, 1.0));
  ReplayOptions options;
  options.measurement_start_fraction = 0.0;
  options.faults = &schedule;
  options.fault_target = 0;
  ReplayResult result = Replay(*cache, trace, options);

  // Requests at t in [25, 50) -- exactly 25 of them -- never reach the cache.
  EXPECT_EQ(result.totals.unavailable_requests, 25u);
  EXPECT_EQ(result.faults.unavailable_requests, 25u);
  EXPECT_GT(result.totals.unavailable_bytes, 0u);
  EXPECT_DOUBLE_EQ(result.availability, 1.0 - 25.0 / 100.0);
  // Conservation: every request is served, redirected, or unavailable.
  EXPECT_EQ(result.totals.served_requests + result.totals.redirected_requests +
                result.totals.unavailable_requests,
            result.totals.requests);
  EXPECT_EQ(result.totals.served_bytes + result.totals.redirected_bytes +
                result.totals.unavailable_bytes,
            result.totals.requested_bytes);
}

TEST(ReplayFaultTest, TargetMismatchIsNoFault) {
  trace::Trace trace = UniformTrace(100, 5);
  fault::FaultSchedule schedule;
  schedule.Add(EdgeOutage(3, 0.0, 100.0));  // some other edge
  ASSERT_TRUE(schedule.Validate().ok());

  auto cache = core::MakeCache(core::CacheKind::kFillLru, SmallConfig(32, 1.0));
  ReplayOptions options;
  options.measurement_start_fraction = 0.0;
  options.faults = &schedule;
  options.fault_target = 0;
  ReplayResult result = Replay(*cache, trace, options);
  EXPECT_EQ(result.totals.unavailable_requests, 0u);
  EXPECT_DOUBLE_EQ(result.availability, 1.0);
}

TEST(ReplayFaultTest, ColdRestartAndDegradeAreApplied) {
  trace::Trace trace = UniformTrace(200, 8);
  fault::FaultSchedule schedule;
  fault::FaultEvent degrade;
  degrade.kind = fault::FaultKind::kDiskDegrade;
  degrade.target = 0;
  degrade.start = 50.0;
  degrade.end = 100.0;
  degrade.capacity_factor = 0.25;
  schedule.Add(degrade);
  fault::FaultEvent restart;
  restart.kind = fault::FaultKind::kColdRestart;
  restart.target = 0;
  restart.start = 150.0;
  restart.end = 150.0;
  schedule.Add(restart);
  ASSERT_TRUE(schedule.Validate().ok());

  auto cache = core::MakeCache(core::CacheKind::kFillLru, SmallConfig(16, 1.0));
  ReplayOptions options;
  options.measurement_start_fraction = 0.0;
  options.faults = &schedule;
  ReplayResult result = Replay(*cache, trace, options);

  EXPECT_EQ(result.faults.cold_restarts, 1u);
  EXPECT_GT(result.faults.dropped_chunks, 0u);
  EXPECT_GE(result.faults.resize_events, 2u);  // degrade + restore
  // The degraded window plus the restart force extra fills versus a clean run.
  auto clean_cache = core::MakeCache(core::CacheKind::kFillLru, SmallConfig(16, 1.0));
  ReplayOptions clean;
  clean.measurement_start_fraction = 0.0;
  ReplayResult reference = Replay(*clean_cache, trace, clean);
  EXPECT_GT(result.totals.filled_bytes, reference.totals.filled_bytes);
}

HierarchyConfig FaultHierarchyConfig() {
  HierarchyConfig config;
  config.edge_kind = core::CacheKind::kCafe;
  config.edge_config = SmallConfig(16, 2.0);
  config.parent_kind = core::CacheKind::kCafe;
  config.parent_config = SmallConfig(64, 1.0);
  config.replay.measurement_start_fraction = 0.0;
  config.replay.bucket_seconds = 10.0;
  return config;
}

TEST(HierarchyFaultTest, EdgeOutageFallsBackToOrigin) {
  std::vector<trace::Trace> traces = {UniformTrace(100, 17), UniformTrace(100, 13)};
  fault::FaultSchedule schedule;
  schedule.Add(EdgeOutage(0, 20.0, 40.0));
  ASSERT_TRUE(schedule.Validate().ok());

  HierarchyConfig config = FaultHierarchyConfig();
  config.faults = &schedule;
  HierarchyResult result = RunHierarchy(traces, config);

  EXPECT_GT(result.edge_unavailable_bytes, 0u);
  EXPECT_LT(result.availability, 1.0);
  // Conservation still holds: the origin picks up the outage traffic.
  EXPECT_EQ(result.edge_served_bytes + result.parent_served_bytes + result.origin_bytes,
            result.requested_bytes);
  // Outage traffic costs more than its byte count (penalty 2.0).
  EXPECT_GT(result.origin_cost, static_cast<double>(result.origin_bytes));
}

TEST(HierarchyFaultTest, ParentOutageAbsorbedByOriginThenRecovers) {
  // Distinct videos everywhere: edges redirect every request, so the parent
  // outage window [40, 60) diverts a steady redirect stream to the origin.
  std::vector<ChunkReq> reqs;
  for (int i = 0; i < 100; ++i) {
    reqs.push_back({static_cast<double>(i), static_cast<trace::VideoId>(1000 + i), 0, 1});
  }
  std::vector<trace::Trace> traces = {MakeTrace(reqs)};
  fault::FaultSchedule schedule;
  fault::FaultEvent parent;
  parent.kind = fault::FaultKind::kParentOutage;
  parent.start = 40.0;
  parent.end = 60.0;
  schedule.Add(parent);
  ASSERT_TRUE(schedule.Validate().ok());

  HierarchyConfig config = FaultHierarchyConfig();
  config.faults = &schedule;
  HierarchyResult result = RunHierarchy(traces, config);

  EXPECT_GT(result.parent_outage_bytes, 0u);
  EXPECT_EQ(result.edge_unavailable_bytes, 0u);
  EXPECT_EQ(result.edge_served_bytes + result.parent_served_bytes + result.origin_bytes,
            result.requested_bytes);
  // The parent never saw the windowed requests: its request count is the
  // redirect stream minus the fallthrough.
  HierarchyConfig clean = FaultHierarchyConfig();
  HierarchyResult reference = RunHierarchy(traces, clean);
  EXPECT_LT(result.parent.totals.requests, reference.parent.totals.requests);

  // The per-bucket series shows the origin absorbing the window (buckets
  // [40,50) and [50,60)) and recovering outside it.
  ASSERT_GE(result.outage_origin_series.size(), 6u);
  EXPECT_GT(result.outage_origin_series[4], 0.0);
  EXPECT_GT(result.outage_origin_series[5], 0.0);
  EXPECT_DOUBLE_EQ(result.outage_origin_series[3], 0.0);
  for (size_t b = 6; b < result.outage_origin_series.size(); ++b) {
    EXPECT_DOUBLE_EQ(result.outage_origin_series[b], 0.0) << "bucket " << b;
  }
}

TEST(HierarchyFaultTest, ParallelMatchesSequentialUnderFaults) {
  std::vector<trace::Trace> traces;
  for (int e = 0; e < 4; ++e) {
    std::vector<ChunkReq> reqs;
    for (int i = 0; i < 300; ++i) {
      reqs.push_back({static_cast<double>(i),
                      static_cast<trace::VideoId>(1 + (i * (e + 3)) % 23), 0,
                      static_cast<uint32_t>(i % 4)});
    }
    traces.push_back(MakeTrace(reqs));
  }
  fault::RandomFaultOptions fault_options;
  fault_options.duration = 300.0;
  fault_options.num_edges = 4;
  fault_options.outages_per_edge = 1;
  fault_options.outage_fraction = 0.1;
  fault_options.restarts_per_edge = 1;
  fault_options.degrades_per_edge = 1;
  fault_options.parent_outages = 1;
  fault_options.parent_outage_fraction = 0.1;
  fault::FaultSchedule schedule = MakeRandomFaultSchedule(42, fault_options);

  HierarchyConfig sequential = FaultHierarchyConfig();
  sequential.faults = &schedule;
  sequential.threads = 1;
  HierarchyResult reference = RunHierarchy(traces, sequential);
  // The schedule must actually bite for this test to mean anything.
  ASSERT_GT(reference.faults.unavailable_requests, 0u);

  for (size_t threads : {2u, 7u}) {
    HierarchyConfig parallel = FaultHierarchyConfig();
    parallel.faults = &schedule;
    parallel.threads = threads;
    HierarchyResult result = RunHierarchy(traces, parallel);

    EXPECT_EQ(result.requested_bytes, reference.requested_bytes);
    EXPECT_EQ(result.edge_served_bytes, reference.edge_served_bytes);
    EXPECT_EQ(result.parent_served_bytes, reference.parent_served_bytes);
    EXPECT_EQ(result.origin_bytes, reference.origin_bytes);
    EXPECT_EQ(result.edge_unavailable_bytes, reference.edge_unavailable_bytes);
    EXPECT_EQ(result.parent_outage_bytes, reference.parent_outage_bytes);
    EXPECT_EQ(result.availability, reference.availability);
    EXPECT_EQ(result.origin_cost, reference.origin_cost);
    EXPECT_EQ(result.faults.unavailable_requests, reference.faults.unavailable_requests);
    EXPECT_EQ(result.faults.dropped_chunks, reference.faults.dropped_chunks);
    EXPECT_EQ(result.faults.resize_evicted_chunks, reference.faults.resize_evicted_chunks);
    ASSERT_EQ(result.outage_origin_series.size(), reference.outage_origin_series.size());
    for (size_t b = 0; b < result.outage_origin_series.size(); ++b) {
      EXPECT_EQ(result.outage_origin_series[b], reference.outage_origin_series[b]);
    }
    EXPECT_EQ(result.parent.totals.requests, reference.parent.totals.requests);
    EXPECT_EQ(result.parent.totals.served_bytes, reference.parent.totals.served_bytes);
  }
}

TEST(FleetFaultTest, DigestIdenticalAcrossThreadCounts) {
  std::vector<trace::Trace> traces;
  std::vector<FleetServer> servers;
  for (int s = 0; s < 3; ++s) {
    std::vector<ChunkReq> reqs;
    for (int i = 0; i < 400; ++i) {
      reqs.push_back({static_cast<double>(i),
                      static_cast<trace::VideoId>(1 + (i * (s + 2)) % 31), 0,
                      static_cast<uint32_t>(i % 3)});
    }
    traces.push_back(MakeTrace(reqs));
  }
  for (int s = 0; s < 3; ++s) {
    FleetServer server;
    server.name = "s" + std::to_string(s);
    server.kind = core::CacheKind::kCafe;
    server.config = SmallConfig(24, 2.0);
    server.trace = &traces[static_cast<size_t>(s)];
    servers.push_back(server);
  }

  fault::RandomFaultOptions fault_options;
  fault_options.duration = 400.0;
  fault_options.num_edges = 3;
  fault_options.outages_per_edge = 2;
  fault_options.outage_fraction = 0.15;
  fault_options.restarts_per_edge = 1;
  fault_options.degrades_per_edge = 1;
  fault::FaultSchedule schedule = MakeRandomFaultSchedule(7, fault_options);

  auto run = [&](size_t threads, const fault::FaultSchedule* faults) {
    FleetOptions options;
    options.threads = threads;
    options.replay.measurement_start_fraction = 0.0;
    options.replay.bucket_seconds = 50.0;
    options.replay.faults = faults;
    return RunFleet(servers, options);
  };

  FleetResult sequential = run(1, &schedule);
  ASSERT_GT(sequential.totals.unavailable_requests, 0u);
  const uint64_t reference_digest = FleetDigest(sequential);
  for (size_t threads : {2u, 7u}) {
    EXPECT_EQ(FleetDigest(run(threads, &schedule)), reference_digest) << threads << " threads";
  }
  // The digest covers the degraded-mode accounting: a fault-free run of the
  // same fleet hashes differently.
  EXPECT_NE(FleetDigest(run(1, nullptr)), reference_digest);
}

}  // namespace
}  // namespace vcdn::sim
