// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// ThreadPool::SubmitAfter / DeferredHandle: the cancellable deferred-task
// facility behind net's deadline timers. The cancellation-race test is the
// load-bearing one (it runs under TSan in CI): for every timer, exactly one
// of {ran, cancelled} must hold, no matter how the Cancel call races the
// timer thread's fire.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/future.h"
#include "src/exec/thread_pool.h"

namespace vcdn::exec {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

TEST(ThreadPoolTimerTest, FiresAfterDelay) {
  ThreadPool pool(2);
  Latch latch(1);
  const auto start = std::chrono::steady_clock::now();
  DeferredHandle handle = pool.SubmitAfter(milliseconds(20), [&] { latch.CountDown(); });
  EXPECT_TRUE(handle.valid());
  latch.Wait();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, milliseconds(15));  // small slack: CI clocks are coarse
}

TEST(ThreadPoolTimerTest, ZeroAndNegativeDelayFireImmediately) {
  ThreadPool pool(1);
  Latch latch(2);
  pool.SubmitAfter(nanoseconds(0), [&] { latch.CountDown(); });
  pool.SubmitAfter(milliseconds(-5), [&] { latch.CountDown(); });
  latch.Wait();
}

TEST(ThreadPoolTimerTest, EqualDeadlinesFireInSubmitOrder) {
  ThreadPool pool(1);
  std::mutex mu;
  std::vector<int> order;
  Latch latch(3);
  // Same nominal deadline; the (deadline, seq) tie-break keeps submit order.
  for (int i = 0; i < 3; ++i) {
    pool.SubmitAfter(milliseconds(10), [&, i] {
      {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(i);
      }
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPoolTimerTest, CancelPreventsRun) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(2);
    DeferredHandle handle = pool.SubmitAfter(std::chrono::hours(1), [&] { ++runs; });
    EXPECT_TRUE(handle.pending());
    EXPECT_TRUE(handle.Cancel());
    EXPECT_FALSE(handle.pending());
    // Second cancel reports the task was already out of the pending state.
    EXPECT_FALSE(handle.Cancel());
  }
  EXPECT_EQ(runs.load(), 0);
}

TEST(ThreadPoolTimerTest, CancelAfterFireReturnsFalse) {
  ThreadPool pool(2);
  Latch latch(1);
  DeferredHandle handle = pool.SubmitAfter(milliseconds(1), [&] { latch.CountDown(); });
  latch.Wait();
  // The task has observably run; Cancel must lose.
  EXPECT_FALSE(handle.Cancel());
}

TEST(ThreadPoolTimerTest, ShutdownCancelsPendingTimers) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.SubmitAfter(std::chrono::hours(2), [&] { ++runs; });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(runs.load(), 0);
}

TEST(ThreadPoolTimerTest, DefaultHandleIsInert) {
  DeferredHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.Cancel());
}

// The race test: many short timers, a concurrent canceller sweeping them.
// Invariants: a task runs at most once; it runs iff Cancel did not win; the
// books balance exactly (runs + successful cancels == total).
TEST(ThreadPoolTimerTest, CancellationRace) {
  constexpr size_t kTimers = 400;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> fired(kTimers);
  for (auto& f : fired) {
    f.store(0);
  }
  std::atomic<uint64_t> runs{0};

  std::vector<DeferredHandle> handles(kTimers);
  for (size_t i = 0; i < kTimers; ++i) {
    // Deadlines staggered across ~4ms so fires and cancels interleave.
    handles[i] = pool.SubmitAfter(std::chrono::microseconds(static_cast<long>(10 * (i % 40))), [&, i] {
      fired[i].fetch_add(1);
      runs.fetch_add(1);
    });
  }

  uint64_t cancelled = 0;
  std::thread canceller([&] {
    for (size_t i = 0; i < kTimers; i += 2) {
      if (handles[i].Cancel()) {
        ++cancelled;
      }
    }
  });
  canceller.join();
  // Everything not successfully cancelled must eventually fire; wait for
  // that before Shutdown (which would cancel still-undue timers and turn
  // this into a test of shutdown timing instead of the fire/cancel race).
  const auto wait_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (runs.load() + cancelled < kTimers &&
         std::chrono::steady_clock::now() < wait_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pool.Shutdown();  // drains every fired task

  for (size_t i = 0; i < kTimers; ++i) {
    EXPECT_LE(fired[i].load(), 1) << "timer " << i << " ran twice";
    if (i % 2 == 1) {
      // Never cancelled, so it must have fired exactly once.
      EXPECT_EQ(fired[i].load(), 1) << "timer " << i << " never ran";
    }
  }
  EXPECT_EQ(runs.load() + cancelled, kTimers);
}

// Deferred tasks submitted from inside pool tasks (the self-rearming pattern
// net's per-connection timers use).
TEST(ThreadPoolTimerTest, RearmFromWorker) {
  ThreadPool pool(2);
  std::atomic<int> ticks{0};
  Latch latch(1);
  std::function<void()> tick = [&] {
    if (ticks.fetch_add(1) + 1 >= 3) {
      latch.CountDown();
      return;
    }
    pool.SubmitAfter(milliseconds(1), tick);
  };
  pool.SubmitAfter(milliseconds(1), tick);
  latch.Wait();
  EXPECT_GE(ticks.load(), 3);
}

}  // namespace
}  // namespace vcdn::exec
