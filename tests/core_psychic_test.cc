// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/psychic_cache.h"

#include <gtest/gtest.h>

#include "src/core/cafe_cache.h"
#include "src/core/xlru_cache.h"
#include "src/sim/replay.h"
#include "tests/cache_test_util.h"

namespace vcdn::core {
namespace {

using ::vcdn::testing::ChunkReq;
using ::vcdn::testing::ChunkRequest;
using ::vcdn::testing::MakeTrace;
using ::vcdn::testing::SmallConfig;

TEST(PsychicTest, RequiresPrepare) {
  PsychicCache cache(SmallConfig(4));
  EXPECT_DEATH(cache.HandleRequest(ChunkRequest(1.0, 1, 0, 0, 1024)), "Prepare");
}

TEST(PsychicTest, ServesChunksWithFutureRequests) {
  // Video 1 requested repeatedly: future knowledge admits it on first sight
  // (unlike xLRU/Cafe).
  trace::Trace trace = MakeTrace({
      {1.0, 1, 0, 1},
      {2.0, 1, 0, 1},
      {3.0, 1, 0, 1},
  });
  PsychicCache cache(SmallConfig(10, 1.0));
  cache.Prepare(trace);
  auto first = cache.HandleRequest(trace.requests[0]);
  EXPECT_EQ(first.decision, Decision::kServe);
  EXPECT_EQ(first.filled_chunks, 2u);
  auto second = cache.HandleRequest(trace.requests[1]);
  EXPECT_EQ(second.decision, Decision::kServe);
  EXPECT_EQ(second.hit_chunks, 2u);
}

TEST(PsychicTest, RedirectsOneShotRequests) {
  // A chunk never requested again has zero future value; with alpha >= 1
  // filling it cannot pay off.
  trace::Trace trace = MakeTrace({
      {1.0, 1, 0, 1},
      {2.0, 2, 0, 1},  // one-shot
      {3.0, 1, 0, 1},
  });
  PsychicCache cache(SmallConfig(10, 2.0));
  cache.Prepare(trace);
  cache.HandleRequest(trace.requests[0]);
  auto outcome = cache.HandleRequest(trace.requests[1]);
  EXPECT_EQ(outcome.decision, Decision::kRedirect);
}

TEST(PsychicTest, EvictsFarthestFutureChunk) {
  // Capacity 2. Chunks of videos 1 and 2 compete; video 2's next request is
  // far in the future, video 3 is imminent -> evict video 2's chunk.
  trace::Trace trace = MakeTrace({
      {1.0, 1, 0, 0},   // next at 6
      {2.0, 2, 0, 0},   // next at 1000
      {5.0, 3, 0, 0},   // next at 5.5
      {5.5, 3, 0, 0},
      {6.0, 1, 0, 0},
      {1000.0, 2, 0, 0},
  });
  PsychicCache cache(SmallConfig(2, 1.0));
  cache.Prepare(trace);
  cache.HandleRequest(trace.requests[0]);  // fill 1:0
  cache.HandleRequest(trace.requests[1]);  // maybe fill 2:0
  auto third = cache.HandleRequest(trace.requests[2]);
  if (third.decision == Decision::kServe && cache.used_chunks() == 2) {
    EXPECT_TRUE(cache.ContainsChunk(ChunkId{1, 0}))
        << "imminently needed chunk must not be the eviction victim";
  }
}

TEST(PsychicTest, CacheAgeFallsBackToElapsedTime) {
  trace::Trace trace = MakeTrace({{1.0, 1, 0, 0}, {5.0, 1, 0, 0}});
  PsychicCache cache(SmallConfig(4));
  cache.Prepare(trace);
  EXPECT_DOUBLE_EQ(cache.CacheAge(0.0), 0.0);
  cache.HandleRequest(trace.requests[0]);
  EXPECT_DOUBLE_EQ(cache.CacheAge(5.0), 4.0);
}

TEST(PsychicTest, FutureHorizonBoundsLookahead) {
  // With horizon N, only the next N requests matter; a chunk with 100 future
  // requests is not weighted 10x more than one with N.
  PsychicOptions near_options;
  near_options.future_horizon = 1;
  PsychicOptions far_options;
  far_options.future_horizon = 10;
  std::vector<ChunkReq> reqs;
  for (int i = 0; i < 50; ++i) {
    reqs.push_back({static_cast<double>(i), 1, 0, 0});
  }
  trace::Trace trace = MakeTrace(reqs);
  PsychicCache near_cache(SmallConfig(4), near_options);
  PsychicCache far_cache(SmallConfig(4), far_options);
  near_cache.Prepare(trace);
  far_cache.Prepare(trace);
  // Both still admit the hot chunk; this is a smoke check that the horizon
  // parameter is honored without crashing and both behave sanely.
  EXPECT_EQ(near_cache.HandleRequest(trace.requests[0]).decision, Decision::kServe);
  EXPECT_EQ(far_cache.HandleRequest(trace.requests[0]).decision, Decision::kServe);
}

TEST(PsychicTest, DiskNeverExceedsCapacity) {
  std::vector<ChunkReq> reqs;
  for (int i = 0; i < 500; ++i) {
    reqs.push_back(
        {static_cast<double>(i), static_cast<trace::VideoId>(i % 11), 0, static_cast<uint32_t>(i % 4)});
  }
  trace::Trace trace = MakeTrace(reqs);
  PsychicCache cache(SmallConfig(16, 1.0));
  cache.Prepare(trace);
  for (const auto& r : trace.requests) {
    cache.HandleRequest(r);
    ASSERT_LE(cache.used_chunks(), 16u);
  }
}

TEST(PsychicTest, BeatsOrMatchesOnlineCachesOnSyntheticTrace) {
  // On a periodic workload with churn, the offline Psychic should reach at
  // least the efficiency of Cafe and xLRU (it is the paper's estimator of
  // the online maximum).
  std::vector<ChunkReq> reqs;
  double t = 0.0;
  for (int round = 0; round < 400; ++round) {
    t += 1.0;
    // Popular set with periods 1..8, plus a cold tail of one-shot videos.
    for (int v = 1; v <= 8; ++v) {
      if (round % v == 0) {
        reqs.push_back({t + 0.01 * v, static_cast<trace::VideoId>(v), 0,
                        static_cast<uint32_t>(1 + v % 3)});
      }
    }
    reqs.push_back({t + 0.5, static_cast<trace::VideoId>(1000 + round), 0, 1});
  }
  trace::Trace trace = MakeTrace(reqs);

  core::CacheConfig config = SmallConfig(24, 2.0);
  sim::ReplayOptions options;
  options.measurement_start_fraction = 0.5;

  PsychicCache psychic(config);
  CafeCache cafe(config);
  XlruCache xlru(config);
  auto psychic_result = sim::Replay(psychic, trace, options);
  auto cafe_result = sim::Replay(cafe, trace, options);
  auto xlru_result = sim::Replay(xlru, trace, options);

  EXPECT_GE(psychic_result.efficiency, cafe_result.efficiency - 0.02);
  EXPECT_GE(psychic_result.efficiency, xlru_result.efficiency - 0.02);
}

}  // namespace
}  // namespace vcdn::core
