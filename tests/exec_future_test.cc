// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/exec/future.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace vcdn::exec {
namespace {

TEST(LatchTest, WaitReturnsOnceCountReachesZero) {
  Latch latch(3);
  EXPECT_FALSE(latch.TryWait());
  latch.CountDown();
  latch.CountDown(2);
  EXPECT_TRUE(latch.TryWait());
  latch.Wait();  // must not block
}

TEST(LatchTest, ReleasesBlockedWaiters) {
  Latch latch(4);
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&latch] { latch.Wait(); });
  }
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back([&latch] { latch.CountDown(); });
  }
  for (auto& t : workers) {
    t.join();
  }
  for (auto& t : waiters) {
    t.join();
  }
  EXPECT_TRUE(latch.TryWait());
}

TEST(FutureTest, DefaultConstructedIsInvalid) {
  Future<int> future;
  EXPECT_FALSE(future.valid());
}

TEST(FutureTest, GetReturnsTheSetValue) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  EXPECT_TRUE(future.valid());
  EXPECT_FALSE(future.Ready());
  promise.Set(42);
  EXPECT_TRUE(future.Ready());
  EXPECT_EQ(future.Get(), 42);
}

TEST(FutureTest, MoveOnlyValuePassesThrough) {
  Promise<std::unique_ptr<std::string>> promise;
  Future<std::unique_ptr<std::string>> future = promise.GetFuture();
  promise.Set(std::make_unique<std::string>("payload"));
  std::unique_ptr<std::string> value = future.Get();
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, "payload");
}

TEST(FutureTest, GetBlocksUntilSetFromAnotherThread) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  std::thread setter([&promise] { promise.Set(7); });
  EXPECT_EQ(future.Get(), 7);
  setter.join();
}

TEST(FutureTest, VoidFutureSignalsCompletion) {
  Promise<void> promise;
  Future<void> future = promise.GetFuture();
  EXPECT_FALSE(future.Ready());
  std::thread setter([&promise] { promise.Set(); });
  future.Get();
  EXPECT_TRUE(future.Ready());
  setter.join();
}

}  // namespace
}  // namespace vcdn::exec
