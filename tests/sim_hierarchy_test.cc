// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/sim/hierarchy.h"

#include <gtest/gtest.h>

#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"
#include "tests/cache_test_util.h"

namespace vcdn::sim {
namespace {

using ::vcdn::testing::ChunkReq;
using ::vcdn::testing::MakeTrace;
using ::vcdn::testing::SmallConfig;

HierarchyConfig TestHierarchyConfig() {
  HierarchyConfig config;
  config.edge_kind = core::CacheKind::kCafe;
  config.edge_config = SmallConfig(16, 2.0);
  config.parent_kind = core::CacheKind::kCafe;
  config.parent_config = SmallConfig(64, 1.0);
  config.replay.measurement_start_fraction = 0.0;
  return config;
}

TEST(HierarchyTest, ParentSeesOnlyEdgeRedirects) {
  // Two edges with a fully cacheable hot set: after warmup nothing reaches
  // the parent except first-seen and admission misses.
  std::vector<ChunkReq> reqs;
  for (int i = 0; i < 200; ++i) {
    reqs.push_back({static_cast<double>(i), static_cast<trace::VideoId>(1 + i % 3), 0, 1});
  }
  std::vector<trace::Trace> traces = {MakeTrace(reqs), MakeTrace(reqs)};
  HierarchyResult result = RunHierarchy(traces, TestHierarchyConfig());
  ASSERT_EQ(result.edges.size(), 2u);
  uint64_t edge_redirected = result.edges[0].totals.redirected_requests +
                             result.edges[1].totals.redirected_requests;
  EXPECT_EQ(result.parent.totals.requests, edge_redirected);
}

TEST(HierarchyTest, BytesConserveAcrossTiers) {
  std::vector<ChunkReq> reqs;
  for (int i = 0; i < 300; ++i) {
    reqs.push_back({static_cast<double>(i), static_cast<trace::VideoId>(1 + i % 17), 0,
                    static_cast<uint32_t>(i % 3)});
  }
  std::vector<trace::Trace> traces = {MakeTrace(reqs)};
  HierarchyResult result = RunHierarchy(traces, TestHierarchyConfig());
  // Edge-served + parent-served + origin == total demand.
  EXPECT_EQ(result.edge_served_bytes + result.parent_served_bytes + result.origin_bytes,
            result.requested_bytes);
  EXPECT_GE(result.cdn_hit_fraction, result.edge_hit_fraction);
}

TEST(HierarchyTest, ParentAbsorbsCrossEdgePopularity) {
  // A video unpopular at each individual edge but requested at all edges:
  // edges redirect it, the parent sees the aggregate demand and caches it.
  std::vector<trace::Trace> traces;
  for (int e = 0; e < 4; ++e) {
    std::vector<ChunkReq> reqs;
    for (int i = 0; i < 150; ++i) {
      // Each edge's hot set keeps its cache busy...
      reqs.push_back({static_cast<double>(2 * i) + 0.1 * e,
                      static_cast<trace::VideoId>(100 * (e + 1) + i % 3), 0, 1});
      // ...while video 7 appears only rarely per edge.
      if (i % 29 == 0) {
        reqs.push_back({static_cast<double>(2 * i + 1) + 0.1 * e, 7, 0, 1});
      }
    }
    traces.push_back(MakeTrace(reqs));
  }
  HierarchyResult result = RunHierarchy(traces, TestHierarchyConfig());
  // The parent must have served a decent share of what reached it.
  EXPECT_GT(result.parent.totals.served_requests, 0u);
}

TEST(HierarchyTest, ParallelMatchesSequential) {
  // Four edges with overlapping timestamps so the parent's merged redirect
  // stream is full of cross-edge ties -- the case the (time, edge, sequence)
  // merge order must resolve exactly like the sequential stable_sort.
  std::vector<trace::Trace> traces;
  for (int e = 0; e < 4; ++e) {
    std::vector<ChunkReq> reqs;
    for (int i = 0; i < 400; ++i) {
      reqs.push_back({static_cast<double>(i),  // identical times on every edge
                      static_cast<trace::VideoId>(1 + (i * (e + 3)) % 23), 0,
                      static_cast<uint32_t>(i % 4)});
    }
    traces.push_back(MakeTrace(reqs));
  }

  HierarchyConfig sequential = TestHierarchyConfig();
  sequential.threads = 1;
  HierarchyResult reference = RunHierarchy(traces, sequential);

  for (size_t threads : {2u, 7u}) {
    HierarchyConfig parallel = TestHierarchyConfig();
    parallel.threads = threads;
    HierarchyResult result = RunHierarchy(traces, parallel);

    EXPECT_EQ(result.requested_bytes, reference.requested_bytes);
    EXPECT_EQ(result.edge_served_bytes, reference.edge_served_bytes);
    EXPECT_EQ(result.edge_filled_bytes, reference.edge_filled_bytes);
    EXPECT_EQ(result.parent_served_bytes, reference.parent_served_bytes);
    EXPECT_EQ(result.parent_filled_bytes, reference.parent_filled_bytes);
    EXPECT_EQ(result.origin_bytes, reference.origin_bytes);
    EXPECT_EQ(result.edge_hit_fraction, reference.edge_hit_fraction);
    EXPECT_EQ(result.cdn_hit_fraction, reference.cdn_hit_fraction);
    // The parent replay depends on the exact merged request order: equality
    // here means the parallel merge reproduced it byte-for-byte.
    EXPECT_EQ(result.parent.totals.requests, reference.parent.totals.requests);
    EXPECT_EQ(result.parent.totals.served_bytes, reference.parent.totals.served_bytes);
    EXPECT_EQ(result.parent.totals.filled_bytes, reference.parent.totals.filled_bytes);
    EXPECT_EQ(result.parent.totals.evicted_chunks, reference.parent.totals.evicted_chunks);
    ASSERT_EQ(result.edges.size(), reference.edges.size());
    for (size_t i = 0; i < result.edges.size(); ++i) {
      EXPECT_EQ(result.edges[i].totals.served_bytes, reference.edges[i].totals.served_bytes);
      EXPECT_EQ(result.edges[i].totals.filled_bytes, reference.edges[i].totals.filled_bytes);
    }
  }
}

TEST(HierarchyTest, DeeperParentAbsorbsMore) {
  trace::WorkloadConfig workload;
  workload.profile = trace::EuropeProfile(0.03);
  workload.profile.base_request_rate = 0.08;
  workload.duration_seconds = 4.0 * 86400.0;
  std::vector<trace::Trace> traces = {trace::WorkloadGenerator(workload).Generate().trace};

  HierarchyConfig small = TestHierarchyConfig();
  small.edge_config.chunk_bytes = 2ull << 20;
  small.edge_config.disk_capacity_chunks = 600;
  small.parent_config.chunk_bytes = 2ull << 20;
  small.parent_config.disk_capacity_chunks = 600;
  HierarchyConfig deep = small;
  deep.parent_config.disk_capacity_chunks = 6000;

  HierarchyResult small_result = RunHierarchy(traces, small);
  HierarchyResult deep_result = RunHierarchy(traces, deep);
  EXPECT_GT(deep_result.cdn_hit_fraction, small_result.cdn_hit_fraction);
  EXPECT_LT(deep_result.origin_bytes, small_result.origin_bytes);
}

}  // namespace
}  // namespace vcdn::sim
