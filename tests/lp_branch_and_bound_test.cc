// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/lp/branch_and_bound.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace vcdn::lp {
namespace {

TEST(BranchAndBoundTest, IntegralLpNeedsNoBranching) {
  // min -x - y, x + y <= 1, binaries: optimum picks one of them.
  Model m;
  int32_t x = m.AddVariable(0.0, 1.0, -1.0);
  int32_t y = m.AddVariable(0.0, 1.0, -1.0);
  int32_t r = m.AddRow(-kLpInfinity, 1.0);
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 1.0);
  MipSolution s = SolveMip(m, {x, y});
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-6);
  EXPECT_NEAR(s.primal[static_cast<size_t>(x)] + s.primal[static_cast<size_t>(y)], 1.0, 1e-6);
}

TEST(BranchAndBoundTest, KnapsackExactOptimum) {
  // max 10a + 6b + 4c st 5a + 4b + 3c <= 8, binary.
  // LP relaxation is fractional; integral optimum = {a, c} = 14.
  Model m;
  int32_t a = m.AddVariable(0.0, 1.0, -10.0);
  int32_t b = m.AddVariable(0.0, 1.0, -6.0);
  int32_t c = m.AddVariable(0.0, 1.0, -4.0);
  int32_t r = m.AddRow(-kLpInfinity, 8.0);
  m.AddCoefficient(r, a, 5.0);
  m.AddCoefficient(r, b, 4.0);
  m.AddCoefficient(r, c, 3.0);
  MipSolution s = SolveMip(m, {a, b, c});
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -14.0, 1e-6);
  EXPECT_NEAR(s.primal[static_cast<size_t>(a)], 1.0, 1e-6);
  EXPECT_NEAR(s.primal[static_cast<size_t>(b)], 0.0, 1e-6);
  EXPECT_NEAR(s.primal[static_cast<size_t>(c)], 1.0, 1e-6);
  // The LP root must be at least as good (smaller or equal minimized value).
  EXPECT_LE(s.root_relaxation, s.objective + 1e-9);
  EXPECT_GT(s.nodes_explored, 1);
}

TEST(BranchAndBoundTest, InfeasibleIntegral) {
  // 0.4 <= x <= 0.6 has no integer point.
  Model m;
  int32_t x = m.AddVariable(0.0, 1.0, 1.0);
  int32_t r = m.AddRow(0.4, 0.6);
  m.AddCoefficient(r, x, 1.0);
  MipSolution s = SolveMip(m, {x});
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(BranchAndBoundTest, MixedIntegerProblem) {
  // x binary, y continuous: min -2x - y st x + y <= 1.5, y <= 1.
  // Optimum: x = 1, y = 0.5 -> -2.5.
  Model m;
  int32_t x = m.AddVariable(0.0, 1.0, -2.0);
  int32_t y = m.AddVariable(0.0, 1.0, -1.0);
  int32_t r = m.AddRow(-kLpInfinity, 1.5);
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 1.0);
  MipSolution s = SolveMip(m, {x});
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.5, 1e-6);
  EXPECT_NEAR(s.primal[static_cast<size_t>(x)], 1.0, 1e-9);
  EXPECT_NEAR(s.primal[static_cast<size_t>(y)], 0.5, 1e-6);
}

TEST(BranchAndBoundTest, NodeBudgetReturnsIterationLimit) {
  // A problem that needs branching with max_nodes = 1.
  Model m;
  int32_t a = m.AddVariable(0.0, 1.0, -10.0);
  int32_t b = m.AddVariable(0.0, 1.0, -6.0);
  int32_t r = m.AddRow(-kLpInfinity, 8.0);
  m.AddCoefficient(r, a, 5.0);
  m.AddCoefficient(r, b, 4.0);
  BranchAndBoundOptions options;
  options.max_nodes = 1;
  MipSolution s = SolveMip(m, {a, b}, options);
  EXPECT_EQ(s.status, SolveStatus::kIterationLimit);
}

// Property: on random small binary covering problems, B&B matches exhaustive
// enumeration.
TEST(BranchAndBoundTest, PropertyMatchesExhaustiveEnumeration) {
  util::Pcg32 rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    constexpr int kVars = 8;
    Model m;
    std::vector<double> costs(kVars);
    for (int j = 0; j < kVars; ++j) {
      costs[static_cast<size_t>(j)] = 1.0 + rng.NextDouble() * 9.0;
      m.AddVariable(0.0, 1.0, costs[static_cast<size_t>(j)]);
    }
    int rows = 3 + static_cast<int>(rng.NextBounded(4));
    std::vector<std::vector<int>> cover_sets;
    for (int r = 0; r < rows; ++r) {
      int32_t row = m.AddRow(1.0, kLpInfinity);
      std::vector<int> members;
      for (int k = 0; k < 3; ++k) {
        int j = static_cast<int>(rng.NextBounded(kVars));
        m.AddCoefficient(row, j, 1.0);
        members.push_back(j);
      }
      cover_sets.push_back(members);
    }
    std::vector<int32_t> integers;
    for (int j = 0; j < kVars; ++j) {
      integers.push_back(j);
    }
    MipSolution mip = SolveMip(m, integers);

    // Exhaustive reference over 2^8 assignments.
    double best = std::numeric_limits<double>::infinity();
    for (uint32_t mask = 0; mask < (1u << kVars); ++mask) {
      bool feasible = true;
      for (const auto& members : cover_sets) {
        int covered = 0;
        for (int j : members) {
          if (mask & (1u << j)) {
            ++covered;
          }
        }
        if (covered < 1) {
          feasible = false;
          break;
        }
      }
      if (!feasible) {
        continue;
      }
      double cost = 0.0;
      for (int j = 0; j < kVars; ++j) {
        if (mask & (1u << j)) {
          cost += costs[static_cast<size_t>(j)];
        }
      }
      best = std::min(best, cost);
    }
    ASSERT_EQ(mip.status, SolveStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(mip.objective, best, 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace vcdn::lp
