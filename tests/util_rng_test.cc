// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace vcdn::util {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 60);
}

TEST(SplitSeedTest, StableForSeedAndStream) {
  EXPECT_EQ(SplitSeed(1, 0), SplitSeed(1, 0));
  EXPECT_EQ(SplitSeed(42, 17), SplitSeed(42, 17));
  // Matches its definition: stream k of seed s is the (k+1)-th SplitMix64
  // output of the sequence seeded at s, independent of evaluation order.
  SplitMix64 reference(42);
  for (uint64_t stream = 0; stream < 16; ++stream) {
    EXPECT_EQ(SplitSeed(42, stream), reference.Next());
  }
}

TEST(SplitSeedTest, StreamsAndSeedsAreDecorrelated) {
  std::set<uint64_t> seen;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (uint64_t stream = 0; stream < 64; ++stream) {
      seen.insert(SplitSeed(seed, stream));
    }
  }
  // All 512 derived seeds distinct (no collisions across neighboring
  // experiments, unlike naive seed+i offsets where seed 1/stream 1 ==
  // seed 2/stream 0).
  EXPECT_EQ(seen.size(), 8u * 64u);
}

TEST(SplitSeedTest, DerivedGeneratorsAreIndependent) {
  Pcg32 a(SplitSeed(9, 0));
  Pcg32 b(SplitSeed(9, 1));
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Pcg32Test, DeterministicForSeedAndStream) {
  Pcg32 a(123, 7);
  Pcg32 b(123, 7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(Pcg32Test, StreamsAreIndependent) {
  Pcg32 a(123, 1);
  Pcg32 b(123, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Pcg32Test, NextDoubleInUnitInterval) {
  Pcg32 rng(99);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Pcg32Test, NextDoubleMeanIsHalf) {
  Pcg32 rng(7);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Pcg32Test, NextBoundedStaysInRange) {
  Pcg32 rng(5);
  for (uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 31}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Pcg32Test, NextBoundedIsRoughlyUniform) {
  Pcg32 rng(11);
  constexpr uint32_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(kBound)];
  }
  for (uint32_t i = 0; i < kBound; ++i) {
    EXPECT_NEAR(counts[i], kSamples / kBound, kSamples / kBound * 0.1);
  }
}

TEST(Pcg32Test, NextBoolEdgeCases) {
  Pcg32 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
    EXPECT_FALSE(rng.NextBool(-0.5));
    EXPECT_TRUE(rng.NextBool(1.5));
  }
}

TEST(Pcg32Test, NextBoolProbability) {
  Pcg32 rng(17);
  constexpr int kSamples = 100000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.NextBool(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Pcg32Test, Next64UsesFullWidth) {
  Pcg32 rng(23);
  bool high_bits_seen = false;
  for (int i = 0; i < 100; ++i) {
    if (rng.Next64() >> 60) {
      high_bits_seen = true;
      break;
    }
  }
  EXPECT_TRUE(high_bits_seen);
}

}  // namespace
}  // namespace vcdn::util
