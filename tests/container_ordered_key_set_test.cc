// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/container/ordered_key_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/util/rng.h"

namespace vcdn::container {
namespace {

TEST(OrderedKeySetTest, InsertAndMin) {
  OrderedKeySet<int, double> set;
  EXPECT_TRUE(set.InsertOrUpdate(1, 5.0));
  EXPECT_TRUE(set.InsertOrUpdate(2, 3.0));
  EXPECT_TRUE(set.InsertOrUpdate(3, 7.0));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.Min().second, 2);
  EXPECT_EQ(set.Max().second, 3);
}

TEST(OrderedKeySetTest, UpdateMovesItem) {
  OrderedKeySet<int, double> set;
  set.InsertOrUpdate(1, 5.0);
  set.InsertOrUpdate(2, 3.0);
  EXPECT_FALSE(set.InsertOrUpdate(2, 9.0));  // update, not insert
  EXPECT_EQ(set.Min().second, 1);
  ASSERT_NE(set.GetScore(2), nullptr);
  EXPECT_DOUBLE_EQ(*set.GetScore(2), 9.0);
}

TEST(OrderedKeySetTest, PopMinAscending) {
  OrderedKeySet<int, double> set;
  set.InsertOrUpdate(1, 2.0);
  set.InsertOrUpdate(2, 1.0);
  set.InsertOrUpdate(3, 3.0);
  EXPECT_EQ(set.PopMin().second, 2);
  EXPECT_EQ(set.PopMin().second, 1);
  EXPECT_EQ(set.PopMin().second, 3);
  EXPECT_TRUE(set.empty());
}

TEST(OrderedKeySetTest, PopMaxDescending) {
  OrderedKeySet<int, double> set;
  set.InsertOrUpdate(1, 2.0);
  set.InsertOrUpdate(2, 1.0);
  set.InsertOrUpdate(3, 3.0);
  EXPECT_EQ(set.PopMax().second, 3);
  EXPECT_EQ(set.PopMax().second, 1);
  EXPECT_EQ(set.PopMax().second, 2);
}

TEST(OrderedKeySetTest, EraseById) {
  OrderedKeySet<int, double> set;
  set.InsertOrUpdate(1, 1.0);
  set.InsertOrUpdate(2, 2.0);
  EXPECT_TRUE(set.Erase(1));
  EXPECT_FALSE(set.Erase(1));
  EXPECT_FALSE(set.Contains(1));
  EXPECT_EQ(set.Min().second, 2);
}

TEST(OrderedKeySetTest, TiesBrokenById) {
  OrderedKeySet<int, double> set;
  set.InsertOrUpdate(5, 1.0);
  set.InsertOrUpdate(3, 1.0);
  set.InsertOrUpdate(4, 1.0);
  EXPECT_EQ(set.PopMin().second, 3);
  EXPECT_EQ(set.PopMin().second, 4);
  EXPECT_EQ(set.PopMin().second, 5);
}

TEST(OrderedKeySetTest, InOrderTraversal) {
  OrderedKeySet<int, double> set;
  set.InsertOrUpdate(1, 30.0);
  set.InsertOrUpdate(2, 10.0);
  set.InsertOrUpdate(3, 20.0);
  std::vector<int> ids;
  for (const auto& [score, id] : set) {
    ids.push_back(id);
  }
  EXPECT_EQ(ids, (std::vector<int>{2, 3, 1}));
}

// Property: under random insert/update/erase churn, Min always returns the
// smallest live (score, id) pair.
TEST(OrderedKeySetTest, PropertyMinMatchesBruteForce) {
  OrderedKeySet<int, double> set;
  std::vector<std::pair<double, int>> mirror;  // (score, id)
  util::Pcg32 rng(77);
  for (int op = 0; op < 5000; ++op) {
    int id = static_cast<int>(rng.NextBounded(100));
    double score = static_cast<double>(rng.NextBounded(1000));
    auto it = std::find_if(mirror.begin(), mirror.end(),
                           [&](const auto& p) { return p.second == id; });
    if (rng.NextBool(0.2) && it != mirror.end()) {
      set.Erase(id);
      mirror.erase(it);
    } else {
      set.InsertOrUpdate(id, score);
      if (it != mirror.end()) {
        it->first = score;
      } else {
        mirror.emplace_back(score, id);
      }
    }
    ASSERT_EQ(set.size(), mirror.size());
    if (!mirror.empty()) {
      auto min = *std::min_element(mirror.begin(), mirror.end());
      ASSERT_EQ(set.Min().second, min.second);
      ASSERT_DOUBLE_EQ(set.Min().first, min.first);
      auto max = *std::max_element(mirror.begin(), mirror.end());
      ASSERT_EQ(set.Max().second, max.second);
    }
  }
}

}  // namespace
}  // namespace vcdn::container
