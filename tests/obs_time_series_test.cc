// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// TimeSeriesRecorder: per-window deltas, shard-merge determinism (the
// parallel fleet's series must reproduce the sequential series exactly), and
// the JSONL serialization contract including error Statuses that name the
// path.

#include "src/obs/time_series.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/run_metadata.h"

namespace vcdn::obs {
namespace {

RunMetadata TestMeta() {
  RunMetadata meta;
  meta.git_describe = "test-deadbeef";
  meta.build_type = "Test";
  meta.compiler = "testc++ 1.0";
  meta.workload = "unit test";
  meta.seed = 42;
  meta.threads = 1;
  meta.batch = 16;
  return meta;
}

std::string Serialize(const TimeSeriesRecorder& recorder) {
  std::ostringstream out;
  recorder.WriteJsonl(out, TestMeta());
  return out.str();
}

TEST(TimeSeriesRecorderTest, EndWindowRecordsCounterDeltasNotTotals) {
  MetricsRegistry registry;
  Counter requests = registry.GetCounter("sim.replay.requests_total");
  TimeSeriesRecorder recorder(&registry);

  requests.Increment(5);
  recorder.EndWindow(0.0, 60.0);
  requests.Increment(3);
  recorder.EndWindow(60.0, 120.0);
  requests.Increment(0);
  recorder.EndWindow(120.0, 180.0);

  ASSERT_EQ(recorder.num_windows(), 3u);
  ASSERT_EQ(recorder.window(0).counters.size(), 1u);
  EXPECT_EQ(recorder.window(0).counters[0].first, "sim.replay.requests_total");
  EXPECT_EQ(recorder.window(0).counters[0].second, 5u);
  EXPECT_EQ(recorder.window(1).counters[0].second, 3u);
  EXPECT_EQ(recorder.window(2).counters[0].second, 0u);
  EXPECT_DOUBLE_EQ(recorder.window(1).start, 60.0);
  EXPECT_DOUBLE_EQ(recorder.window(1).end, 120.0);
}

TEST(TimeSeriesRecorderTest, GaugesAreLastValueAndHdrDeltasAreWindowed) {
  MetricsRegistry registry;
  Gauge occupancy = registry.GetGauge("cache.Cafe.occupancy");
  HdrHistogram latency = registry.GetHdrHistogram("sim.replay.latency", 1.0, 1024.0, 8);
  TimeSeriesRecorder recorder(&registry);

  occupancy.Set(0.25);
  latency.Observe(2.0);
  latency.Observe(2.0);
  recorder.EndWindow(0.0, 60.0);

  occupancy.Set(0.75);
  latency.Observe(512.0);
  recorder.EndWindow(60.0, 120.0);

  ASSERT_EQ(recorder.num_windows(), 2u);
  ASSERT_EQ(recorder.window(0).gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(recorder.window(0).gauges[0].second, 0.25);
  EXPECT_DOUBLE_EQ(recorder.window(1).gauges[0].second, 0.75);

  // Window 0 saw two observations, window 1 exactly one -- deltas, not the
  // cumulative cell contents.
  ASSERT_EQ(recorder.window(0).hdr.size(), 1u);
  const auto& first = recorder.window(0).hdr[0].second;
  const auto& second = recorder.window(1).hdr[0].second;
  uint64_t first_total = first.underflow + first.overflow;
  for (uint64_t count : first.counts) first_total += count;
  uint64_t second_total = second.underflow + second.overflow;
  for (uint64_t count : second.counts) second_total += count;
  EXPECT_EQ(first_total, 2u);
  EXPECT_EQ(second_total, 1u);
  EXPECT_DOUBLE_EQ(first.lo, 1.0);
  EXPECT_DOUBLE_EQ(first.hi, 1024.0);
  EXPECT_EQ(first.sub_buckets, 8u);
}

// The determinism contract: two shard recorders merged in server order
// serialize byte-identically to one sequential recorder that saw both
// shards' updates in that order.
TEST(TimeSeriesRecorderTest, MergeOfShardsEqualsSequentialSeries) {
  MetricsRegistry seq_registry;
  TimeSeriesRecorder sequential(&seq_registry);
  MetricsRegistry registry_a, registry_b;
  TimeSeriesRecorder shard_a(&registry_a), shard_b(&registry_b);

  auto fill = [](MetricsRegistry& registry, uint64_t hits, double occupancy, double latency) {
    registry.GetCounter("cache.hits_total").Increment(hits);
    registry.GetGauge("cache.occupancy").Set(occupancy);
    registry.GetHdrHistogram("latency", 1.0, 1e6, 8).Observe(latency);
  };

  // Window [0, 60): shard A then shard B (server order A, B).
  fill(seq_registry, 10, 0.1, 5.0);
  fill(seq_registry, 20, 0.2, 50.0);
  fill(registry_a, 10, 0.1, 5.0);
  fill(registry_b, 20, 0.2, 50.0);
  sequential.EndWindow(0.0, 60.0);
  shard_a.EndWindow(0.0, 60.0);
  shard_b.EndWindow(0.0, 60.0);

  // Window [60, 120).
  fill(seq_registry, 7, 0.5, 500.0);
  fill(seq_registry, 3, 0.9, 2.0);
  fill(registry_a, 7, 0.5, 500.0);
  fill(registry_b, 3, 0.9, 2.0);
  sequential.EndWindow(60.0, 120.0);
  shard_a.EndWindow(60.0, 120.0);
  shard_b.EndWindow(60.0, 120.0);

  TimeSeriesRecorder merged(&registry_a);
  merged.MergeFrom(shard_a);
  merged.MergeFrom(shard_b);

  EXPECT_EQ(Serialize(merged), Serialize(sequential));
}

TEST(TimeSeriesRecorderTest, MergeKeepsWindowsOnlyOneSideRecorded) {
  MetricsRegistry registry_a, registry_b;
  TimeSeriesRecorder shard_a(&registry_a), shard_b(&registry_b);
  registry_a.GetCounter("a_total").Increment(1);
  shard_a.EndWindow(0.0, 60.0);
  registry_b.GetCounter("b_total").Increment(2);
  shard_b.EndWindow(0.0, 60.0);
  shard_b.EndWindow(60.0, 120.0);  // a never saw this window

  shard_a.MergeFrom(shard_b);
  ASSERT_EQ(shard_a.num_windows(), 2u);
  ASSERT_EQ(shard_a.window(0).counters.size(), 2u);
  EXPECT_EQ(shard_a.window(0).counters[0].first, "a_total");
  EXPECT_EQ(shard_a.window(0).counters[1].first, "b_total");
  EXPECT_DOUBLE_EQ(shard_a.window(1).start, 60.0);
}

TEST(TimeSeriesRecorderTest, WriteJsonlIsByteStableAndSchemaShaped) {
  MetricsRegistry registry;
  registry.GetCounter("hits_total").Increment(4);
  registry.GetGauge("occupancy").Set(0.5);
  registry.GetHdrHistogram("latency", 1.0, 1024.0, 4).Observe(10.0);
  TimeSeriesRecorder recorder(&registry);
  recorder.EndWindow(0.0, 3600.0);

  const std::string first = Serialize(recorder);
  EXPECT_EQ(first, Serialize(recorder)) << "serialization must be deterministic";

  // First line is the meta header, subsequent lines are windows.
  std::istringstream lines(first);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"type\":\"meta\""), std::string::npos);
  EXPECT_NE(line.find("test-deadbeef"), std::string::npos);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"type\":\"window\""), std::string::npos);
  EXPECT_NE(line.find("hits_total"), std::string::npos);
  EXPECT_NE(line.find("\"p50\""), std::string::npos);
}

TEST(TimeSeriesRecorderTest, FileWriteErrorStatusNamesThePath) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(&registry);
  recorder.EndWindow(0.0, 60.0);
  const std::string bad_path = "/nonexistent-dir-for-test/series.jsonl";
  util::Status status = recorder.WriteJsonl(bad_path, TestMeta());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find(bad_path), std::string::npos)
      << "error must name the path: " << status.message();
}

TEST(TimeSeriesRecorderTest, FileWriteRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("hits_total").Increment(1);
  TimeSeriesRecorder recorder(&registry);
  recorder.EndWindow(0.0, 60.0);

  const std::string path = ::testing::TempDir() + "/obs_time_series_test.jsonl";
  ASSERT_TRUE(recorder.WriteJsonl(path, TestMeta()).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, Serialize(recorder));
  std::remove(path.c_str());
}

TEST(TimeSeriesRecorderTest, InertRecorderRecordsEmptyWindows) {
  TimeSeriesRecorder recorder;
  recorder.EndWindow(0.0, 60.0);
  ASSERT_EQ(recorder.num_windows(), 1u);
  EXPECT_TRUE(recorder.window(0).counters.empty());
  EXPECT_TRUE(recorder.window(0).gauges.empty());
  EXPECT_TRUE(recorder.window(0).hdr.empty());
}

}  // namespace
}  // namespace vcdn::obs
