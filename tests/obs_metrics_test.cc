// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace vcdn::obs {
namespace {

TEST(CounterTest, DisabledHandleIsNoOp) {
  Counter counter;
  EXPECT_FALSE(counter.enabled());
  counter.Increment();
  counter.Increment(100);
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, DisabledHandleIsNoOp) {
  Gauge gauge;
  EXPECT_FALSE(gauge.enabled());
  gauge.Set(3.5);
  gauge.Add(1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, DisabledHandleIsNoOp) {
  Histogram hist;
  EXPECT_FALSE(hist.enabled());
  hist.Observe(1.0);
  EXPECT_EQ(hist.data(), nullptr);
}

TEST(MetricsRegistryTest, CounterFindOrCreateAggregates) {
  MetricsRegistry registry;
  Counter a = registry.GetCounter("cache.test.requests_total");
  Counter b = registry.GetCounter("cache.test.requests_total");
  EXPECT_TRUE(a.enabled());
  a.Increment(3);
  b.Increment(4);
  // Same name -> same cell: both handles see the aggregate.
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(registry.CounterValue("cache.test.requests_total"), 7u);
  EXPECT_EQ(registry.num_instruments(), 1u);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge gauge = registry.GetGauge("sim.test.rate");
  gauge.Set(2.5);
  gauge.Add(0.5);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("sim.test.rate"), 3.0);
}

TEST(MetricsRegistryTest, UnknownNamesReadZero) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("nope"), 0u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("nope"), 0.0);
  EXPECT_FALSE(registry.Has("nope"));
}

TEST(MetricsRegistryTest, HandlesSurviveRegistryMove) {
  MetricsRegistry registry;
  Counter counter = registry.GetCounter("moved_total");
  counter.Increment();
  MetricsRegistry moved = std::move(registry);
  counter.Increment();
  EXPECT_EQ(moved.CounterValue("moved_total"), 2u);
}

TEST(MetricsRegistryTest, HistogramBucketing) {
  MetricsRegistry registry;
  // 4 buckets over [0, 8): [0,2) [2,4) [4,6) [6,8).
  Histogram hist = registry.GetHistogram("h", 0.0, 8.0, 4);
  ASSERT_TRUE(hist.enabled());
  hist.Observe(-1.0);  // underflow
  hist.Observe(0.0);   // bucket 0
  hist.Observe(1.9);   // bucket 0
  hist.Observe(2.0);   // bucket 1
  hist.Observe(7.9);   // bucket 3
  hist.Observe(8.0);   // overflow (hi is exclusive)
  hist.Observe(100.0);  // overflow

  auto samples = registry.HistogramSamples();
  ASSERT_EQ(samples.size(), 1u);
  const auto& s = samples[0];
  EXPECT_EQ(s.name, "h");
  EXPECT_DOUBLE_EQ(s.lo, 0.0);
  EXPECT_DOUBLE_EQ(s.hi, 8.0);
  EXPECT_EQ(s.underflow, 1u);
  EXPECT_EQ(s.overflow, 2u);
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 0u);
  EXPECT_EQ(s.counts[3], 1u);
}

TEST(MetricsRegistryTest, HistogramKeepsOriginalLayoutOnRelookup) {
  MetricsRegistry registry;
  Histogram first = registry.GetHistogram("h", 0.0, 10.0, 5);
  // A second lookup with different parameters must not reshape the buckets.
  Histogram second = registry.GetHistogram("h", 0.0, 100.0, 50);
  first.Observe(9.0);
  second.Observe(9.0);
  auto samples = registry.HistogramSamples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].hi, 10.0);
  ASSERT_EQ(samples[0].counts.size(), 5u);
  EXPECT_EQ(samples[0].counts[4], 2u);
}

TEST(MetricsRegistryTest, SamplesAreNameSorted) {
  MetricsRegistry registry;
  registry.GetCounter("zeta_total");
  registry.GetCounter("alpha_total");
  registry.GetCounter("mid_total");
  auto samples = registry.CounterSamples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].first, "alpha_total");
  EXPECT_EQ(samples[1].first, "mid_total");
  EXPECT_EQ(samples[2].first, "zeta_total");
}

TEST(MetricsRegistryTest, ConcurrentUpdatesThroughSharedRegistry) {
  // The parallel-fleet contract (docs/PARALLELISM.md): one registry shared by
  // many workers loses no updates -- cells are relaxed atomics and
  // registration is mutex-guarded, so Get* may also race.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      Counter counter = registry.GetCounter("exec.test.shared_total");
      Gauge gauge = registry.GetGauge("exec.test.sum");
      Histogram hist = registry.GetHistogram("exec.test.h", 0.0, 8.0, 4);
      for (int i = 0; i < kIncrements; ++i) {
        counter.Increment();
        gauge.Add(1.0);
        hist.Observe(static_cast<double>(i % 10));  // buckets + overflow
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  constexpr uint64_t kTotal = uint64_t{kThreads} * kIncrements;
  EXPECT_EQ(registry.CounterValue("exec.test.shared_total"), kTotal);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("exec.test.sum"), static_cast<double>(kTotal));
  auto samples = registry.HistogramSamples();
  ASSERT_EQ(samples.size(), 1u);
  uint64_t observed = samples[0].underflow + samples[0].overflow;
  for (uint64_t count : samples[0].counts) {
    observed += count;
  }
  EXPECT_EQ(observed, kTotal);
  EXPECT_EQ(samples[0].overflow, uint64_t{kThreads} * kIncrements / 10 * 2);
}

TEST(MetricsRegistryTest, MergeFromReproducesSequentialAggregation) {
  // Merging shard registries in order == recording into one registry in that
  // order: counters/histograms add, gauges keep the last writer.
  MetricsRegistry a;
  a.GetCounter("c_total").Increment(3);
  a.GetGauge("g").Set(1.0);
  a.GetHistogram("h", 0.0, 4.0, 2).Observe(1.0);

  MetricsRegistry b;
  b.GetCounter("c_total").Increment(4);
  b.GetCounter("only_b_total").Increment(1);
  b.GetGauge("g").Set(2.5);
  b.GetHistogram("h", 0.0, 4.0, 2).Observe(3.0);

  a.MergeFrom(b);
  EXPECT_EQ(a.CounterValue("c_total"), 7u);
  EXPECT_EQ(a.CounterValue("only_b_total"), 1u);
  EXPECT_DOUBLE_EQ(a.GaugeValue("g"), 2.5);
  auto samples = a.HistogramSamples();
  ASSERT_EQ(samples.size(), 1u);
  ASSERT_EQ(samples[0].counts.size(), 2u);
  EXPECT_EQ(samples[0].counts[0], 1u);
  EXPECT_EQ(samples[0].counts[1], 1u);

  MetricsRegistry sequential;
  sequential.GetCounter("c_total").Increment(3);
  sequential.GetCounter("c_total").Increment(4);
  sequential.GetCounter("only_b_total").Increment(1);
  sequential.GetGauge("g").Set(1.0);
  sequential.GetGauge("g").Set(2.5);
  sequential.GetHistogram("h", 0.0, 4.0, 2).Observe(1.0);
  sequential.GetHistogram("h", 0.0, 4.0, 2).Observe(3.0);
  std::ostringstream merged_json, sequential_json;
  a.WriteJson(merged_json);
  sequential.WriteJson(sequential_json);
  EXPECT_EQ(merged_json.str(), sequential_json.str());
}

TEST(HistogramCellTest, MergeOfShardsEqualsSingleStream) {
  // The cell-level half of the fleet determinism contract: counts are sums,
  // so folding shard cells in any order reproduces the single-stream fill.
  HistogramCell single(0.0, 10.0, 5);
  HistogramCell shard_a(0.0, 10.0, 5);
  HistogramCell shard_b(0.0, 10.0, 5);
  for (int i = -2; i < 14; ++i) {
    const double value = static_cast<double>(i);
    single.Add(value);
    (i % 2 == 0 ? shard_a : shard_b).Add(value);
  }
  shard_b.MergeFrom(shard_a);  // opposite order to the fill: still exact
  EXPECT_EQ(shard_b.underflow(), single.underflow());
  EXPECT_EQ(shard_b.overflow(), single.overflow());
  ASSERT_EQ(shard_b.num_buckets(), single.num_buckets());
  for (size_t i = 0; i < single.num_buckets(); ++i) {
    EXPECT_EQ(shard_b.bucket_count(i), single.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(shard_b.total_count(), single.total_count());
}

TEST(MetricsRegistryTest, MergeFromFoldsHdrHistograms) {
  MetricsRegistry a;
  a.GetHdrHistogram("latency", 1.0, 1024.0, 4).Observe(2.0);
  MetricsRegistry b;
  b.GetHdrHistogram("latency", 1.0, 1024.0, 4).Observe(2.0);
  b.GetHdrHistogram("latency", 1.0, 1024.0, 4).Observe(500.0);
  b.GetHdrHistogram("only_b", 1.0, 1024.0, 4).Observe(1.0);

  a.MergeFrom(b);
  auto samples = a.HdrHistogramSamples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "latency");
  uint64_t total = samples[0].underflow + samples[0].overflow;
  for (uint64_t count : samples[0].counts) {
    total += count;
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(samples[1].name, "only_b");

  const HdrHistogramCell* cell = a.FindHdrHistogram("latency");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->total_count(), 3u);
  EXPECT_EQ(a.FindHdrHistogram("nope"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotJsonErrorStatusNamesThePath) {
  MetricsRegistry registry;
  registry.GetCounter("c_total").Increment(1);
  const std::string bad_path = "/nonexistent-dir-for-test/metrics.json";
  util::Status status = registry.SnapshotJson(bad_path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find(bad_path), std::string::npos)
      << "error must name the path: " << status.message();
}

TEST(MetricsRegistryTest, SnapshotJsonWritesTheWriteJsonDocument) {
  MetricsRegistry registry;
  registry.GetCounter("c_total").Increment(1);
  registry.GetHdrHistogram("latency", 1.0, 1024.0, 4).Observe(2.0);
  const std::string path = ::testing::TempDir() + "/obs_metrics_snapshot_test.json";
  ASSERT_TRUE(registry.SnapshotJson(path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::ostringstream expected;
  registry.WriteJson(expected);
  expected << "\n";  // SnapshotJson terminates the document with a newline
  EXPECT_EQ(contents, expected.str());
  std::remove(path.c_str());
}

TEST(MetricsRegistryTest, WriteJsonIsDeterministic) {
  auto build = [] {
    MetricsRegistry registry;
    registry.GetCounter("b_total").Increment(2);
    registry.GetCounter("a_total").Increment(1);
    registry.GetGauge("g").Set(1.5);
    registry.GetHistogram("h", 0.0, 4.0, 2).Observe(1.0);
    std::ostringstream out;
    registry.WriteJson(out);
    return out.str();
  };
  std::string first = build();
  EXPECT_EQ(first, build());
  // Counters appear name-sorted regardless of creation order.
  EXPECT_LT(first.find("\"a_total\""), first.find("\"b_total\""));
  EXPECT_NE(first.find("\"counters\""), std::string::npos);
  EXPECT_NE(first.find("\"gauges\""), std::string::npos);
  EXPECT_NE(first.find("\"histograms\""), std::string::npos);
}

}  // namespace
}  // namespace vcdn::obs
