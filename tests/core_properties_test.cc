// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Cross-algorithm property tests: invariants every cache implementation must
// satisfy, swept over (algorithm x alpha x capacity x chunk size) with
// parameterized gtest. These are the contracts the simulator and the CDN
// model rely on.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/core/cache_factory.h"
#include "src/sim/replay.h"
#include "src/util/rng.h"
#include "tests/cache_test_util.h"

namespace vcdn::core {
namespace {

using ::vcdn::testing::ChunkRequest;

// A deterministic mixed workload: hot head, warm middle, one-shot tail, with
// partial ranges and seeks.
trace::Trace PropertyTrace(uint64_t chunk_bytes, uint64_t seed) {
  util::Pcg32 rng(seed);
  trace::Trace trace;
  double t = 0.0;
  for (int i = 0; i < 1500; ++i) {
    t += 0.5 + rng.NextDouble();
    trace::VideoId v;
    double kind = rng.NextDouble();
    if (kind < 0.5) {
      v = 1 + rng.NextBounded(5);  // hot head
    } else if (kind < 0.8) {
      v = 100 + rng.NextBounded(40);  // warm middle
    } else {
      v = 10000 + static_cast<trace::VideoId>(i);  // one-shot tail
    }
    uint32_t c0 = rng.NextBounded(4);
    uint32_t c1 = c0 + rng.NextBounded(6);
    trace.requests.push_back(ChunkRequest(t, v, c0, c1, chunk_bytes));
  }
  trace.duration = t + 1.0;
  return trace;
}

struct PropertyParam {
  CacheKind kind;
  double alpha;
  uint64_t capacity;
  uint64_t chunk_bytes;
};

void PrintTo(const PropertyParam& p, std::ostream* os) {
  *os << CacheKindName(p.kind) << "_alpha" << p.alpha << "_cap" << p.capacity << "_chunk"
      << p.chunk_bytes;
}

class CacheProperty : public ::testing::TestWithParam<PropertyParam> {
 protected:
  CacheConfig Config() const {
    CacheConfig config;
    config.chunk_bytes = GetParam().chunk_bytes;
    config.disk_capacity_chunks = GetParam().capacity;
    config.alpha_f2r = GetParam().alpha;
    return config;
  }
};

TEST_P(CacheProperty, OutcomeAccountingIsConsistent) {
  CacheConfig config = Config();
  auto cache = MakeCache(GetParam().kind, config);
  trace::Trace trace = PropertyTrace(config.chunk_bytes, 7);
  cache->Prepare(trace);
  for (const auto& request : trace.requests) {
    RequestOutcome outcome = cache->HandleRequest(request);
    // Requested chunk math matches the chunk model.
    ChunkRange range = ToChunkRange(request, config.chunk_bytes);
    ASSERT_EQ(outcome.requested_chunks, range.count());
    ASSERT_EQ(outcome.requested_bytes, request.size_bytes());
    if (outcome.decision == Decision::kServe) {
      // Hits + fills account for exactly the requested chunks.
      ASSERT_EQ(outcome.hit_chunks + outcome.filled_chunks, outcome.requested_chunks);
      // Every requested chunk is present after serving. Exception: Belady MIN
      // may evict a just-served hit chunk in the same step when it is never
      // requested again (presence is only required *at* the request, as in
      // the LP's constraint (10d)) -- so for Belady only the filled chunks
      // are asserted present.
      if (GetParam().kind != CacheKind::kBelady) {
        for (uint32_t c = range.first; c <= range.last; ++c) {
          ASSERT_TRUE(cache->ContainsChunk(ChunkId{request.video, c}))
              << "served request must leave all its chunks on disk";
        }
      }
    } else {
      ASSERT_EQ(outcome.filled_chunks, 0u);
    }
    // Capacity is never exceeded.
    ASSERT_LE(cache->used_chunks(), config.disk_capacity_chunks);
  }
}

TEST_P(CacheProperty, DeterministicReplay) {
  CacheConfig config = Config();
  trace::Trace trace = PropertyTrace(config.chunk_bytes, 13);
  auto run = [&]() {
    auto cache = MakeCache(GetParam().kind, config);
    sim::ReplayOptions options;
    options.measurement_start_fraction = 0.0;
    return sim::Replay(*cache, trace, options);
  };
  sim::ReplayResult a = run();
  sim::ReplayResult b = run();
  EXPECT_EQ(a.totals.served_requests, b.totals.served_requests);
  EXPECT_EQ(a.totals.filled_bytes, b.totals.filled_bytes);
  EXPECT_EQ(a.totals.redirected_bytes, b.totals.redirected_bytes);
}

TEST_P(CacheProperty, ByteConservation) {
  CacheConfig config = Config();
  auto cache = MakeCache(GetParam().kind, config);
  trace::Trace trace = PropertyTrace(config.chunk_bytes, 29);
  sim::ReplayOptions options;
  options.measurement_start_fraction = 0.0;
  sim::ReplayResult r = sim::Replay(*cache, trace, options);
  EXPECT_EQ(r.totals.served_bytes + r.totals.redirected_bytes, r.totals.requested_bytes);
  EXPECT_EQ(r.totals.served_requests + r.totals.redirected_requests, r.totals.requests);
  // Efficiency within the model's range.
  EXPECT_GE(r.totals.Efficiency(cache->cost_model()), -1.0);
  EXPECT_LE(r.totals.Efficiency(cache->cost_model()), 1.0);
}

TEST_P(CacheProperty, EvictionsOnlyWhenFull) {
  CacheConfig config = Config();
  auto cache = MakeCache(GetParam().kind, config);
  trace::Trace trace = PropertyTrace(config.chunk_bytes, 31);
  cache->Prepare(trace);
  for (const auto& request : trace.requests) {
    uint64_t used_before = cache->used_chunks();
    RequestOutcome outcome = cache->HandleRequest(request);
    if (outcome.evicted_chunks > 0) {
      // Evictions imply the fill would not have fit.
      ASSERT_GT(used_before + outcome.filled_chunks, config.disk_capacity_chunks)
          << "evicted without capacity pressure";
    }
  }
}

std::vector<PropertyParam> AllParams() {
  std::vector<PropertyParam> params;
  for (CacheKind kind : {CacheKind::kXlru, CacheKind::kCafe, CacheKind::kPsychic,
                         CacheKind::kFillLru, CacheKind::kFillLfu, CacheKind::kBelady}) {
    for (double alpha : {0.5, 1.0, 2.0, 4.0}) {
      params.push_back(PropertyParam{kind, alpha, 64, 1024});
    }
    // Capacity and chunk-size variations at the paper's default alpha = 2.
    params.push_back(PropertyParam{kind, 2.0, 16, 1024});
    params.push_back(PropertyParam{kind, 2.0, 512, 1024});
    params.push_back(PropertyParam{kind, 2.0, 64, 4096});
  }
  return params;
}

std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string name = std::string(CacheKindName(info.param.kind));
  name += "_a" + std::to_string(static_cast<int>(info.param.alpha * 10));
  name += "_c" + std::to_string(info.param.capacity);
  name += "_k" + std::to_string(info.param.chunk_bytes);
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllCaches, CacheProperty, ::testing::ValuesIn(AllParams()), ParamName);

}  // namespace
}  // namespace vcdn::core
