// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/container/score_heap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace vcdn::container {
namespace {

using MinHeap = ScoreHeap<uint64_t, double>;
using MaxHeap = ScoreHeap<uint64_t, double, std::hash<uint64_t>, true>;

TEST(ScoreHeapTest, InsertUpdateAndLookup) {
  MinHeap heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_TRUE(heap.InsertOrUpdate(1, 5.0));
  EXPECT_FALSE(heap.InsertOrUpdate(1, 3.0));  // update, not new
  EXPECT_EQ(heap.size(), 1u);
  ASSERT_NE(heap.GetScore(1), nullptr);
  EXPECT_EQ(*heap.GetScore(1), 3.0);
  EXPECT_EQ(heap.GetScore(2), nullptr);
  EXPECT_TRUE(heap.Contains(1));
}

TEST(ScoreHeapTest, MinFirstTopAndPopOrder) {
  MinHeap heap;
  heap.InsertOrUpdate(10, 3.0);
  heap.InsertOrUpdate(20, 1.0);
  heap.InsertOrUpdate(30, 2.0);
  EXPECT_EQ(heap.Top(), (MinHeap::Item{1.0, 20}));
  EXPECT_EQ(heap.PopTop(), (MinHeap::Item{1.0, 20}));
  EXPECT_EQ(heap.PopTop(), (MinHeap::Item{2.0, 30}));
  EXPECT_EQ(heap.PopTop(), (MinHeap::Item{3.0, 10}));
  EXPECT_TRUE(heap.empty());
}

TEST(ScoreHeapTest, MaxFirstTopAndPopOrder) {
  MaxHeap heap;
  heap.InsertOrUpdate(10, 3.0);
  heap.InsertOrUpdate(20, 1.0);
  heap.InsertOrUpdate(30, 2.0);
  EXPECT_EQ(heap.Top(), (MaxHeap::Item{3.0, 10}));
  EXPECT_EQ(heap.PopTop(), (MaxHeap::Item{3.0, 10}));
  EXPECT_EQ(heap.PopTop(), (MaxHeap::Item{2.0, 30}));
  EXPECT_EQ(heap.PopTop(), (MaxHeap::Item{1.0, 20}));
}

TEST(ScoreHeapTest, TieBreaksOnIdLikeOrderedSet) {
  // Equal scores: min-first yields ascending id (set begin()), max-first
  // yields descending id (set rbegin()).
  MinHeap min_heap;
  MaxHeap max_heap;
  for (uint64_t id : {5u, 1u, 9u, 3u}) {
    min_heap.InsertOrUpdate(id, 7.0);
    max_heap.InsertOrUpdate(id, 7.0);
  }
  EXPECT_EQ(min_heap.PopTop().second, 1u);
  EXPECT_EQ(min_heap.PopTop().second, 3u);
  EXPECT_EQ(max_heap.PopTop().second, 9u);
  EXPECT_EQ(max_heap.PopTop().second, 5u);
}

TEST(ScoreHeapTest, UpdateResifts) {
  MinHeap heap;
  heap.InsertOrUpdate(1, 1.0);
  heap.InsertOrUpdate(2, 2.0);
  heap.InsertOrUpdate(3, 3.0);
  heap.InsertOrUpdate(1, 9.0);  // down
  EXPECT_EQ(heap.Top().second, 2u);
  heap.InsertOrUpdate(3, 0.5);  // up
  EXPECT_EQ(heap.Top(), (MinHeap::Item{0.5, 3}));
}

TEST(ScoreHeapTest, EraseRemovesAndRecyclesNode) {
  MinHeap heap;
  for (uint64_t id = 0; id < 8; ++id) {
    heap.InsertOrUpdate(id, static_cast<double>(id));
  }
  size_t slab = heap.slab_size();
  EXPECT_TRUE(heap.Erase(0));
  EXPECT_FALSE(heap.Erase(0));
  EXPECT_FALSE(heap.Contains(0));
  EXPECT_EQ(heap.Top().second, 1u);
  heap.InsertOrUpdate(100, 50.0);  // reuses the freed node
  EXPECT_EQ(heap.slab_size(), slab);
}

TEST(ScoreHeapTest, ScanInOrderIsGloballySorted) {
  MinHeap min_heap;
  MaxHeap max_heap;
  // Deterministic scramble of scores.
  for (uint64_t id = 0; id < 64; ++id) {
    double score = static_cast<double>((id * 37) % 64);
    min_heap.InsertOrUpdate(id, score);
    max_heap.InsertOrUpdate(id, score);
  }
  std::vector<std::pair<double, uint64_t>> min_order;
  min_heap.ScanInOrder([&](const auto& item) {
    min_order.push_back(item);
    return true;
  });
  ASSERT_EQ(min_order.size(), 64u);
  for (size_t i = 1; i < min_order.size(); ++i) {
    EXPECT_LT(min_order[i - 1], min_order[i]);
  }
  std::vector<std::pair<double, uint64_t>> max_order;
  max_heap.ScanInOrder([&](const auto& item) {
    max_order.push_back(item);
    return true;
  });
  ASSERT_EQ(max_order.size(), 64u);
  for (size_t i = 1; i < max_order.size(); ++i) {
    EXPECT_GT(max_order[i - 1], max_order[i]);
  }
}

TEST(ScoreHeapTest, ScanInOrderEarlyStop) {
  MinHeap heap;
  for (uint64_t id = 0; id < 16; ++id) {
    heap.InsertOrUpdate(id, static_cast<double>(15 - id));
  }
  std::vector<uint64_t> visited;
  heap.ScanInOrder([&](const auto& item) {
    visited.push_back(item.second);
    return visited.size() < 3;
  });
  EXPECT_EQ(visited, (std::vector<uint64_t>{15, 14, 13}));
  EXPECT_EQ(heap.size(), 16u);  // scan is non-destructive
}

TEST(ScoreHeapTest, ClearThenReuse) {
  MinHeap heap;
  heap.InsertOrUpdate(1, 1.0);
  heap.InsertOrUpdate(2, 2.0);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.Contains(1));
  heap.InsertOrUpdate(3, 3.0);
  EXPECT_EQ(heap.size(), 1u);
  EXPECT_EQ(heap.Top(), (MinHeap::Item{3.0, 3}));
}

TEST(ScoreHeapTest, ReserveBoundsSlabUnderChurn) {
  MinHeap heap;
  heap.Reserve(64);
  for (uint64_t k = 0; k < 1000; ++k) {
    heap.InsertOrUpdate(k, static_cast<double>(k % 97));
    if (heap.size() > 32) {
      heap.PopTop();
    }
  }
  EXPECT_LE(heap.slab_size(), 64u);
  EXPECT_EQ(heap.size(), 32u);
}

}  // namespace
}  // namespace vcdn::container
