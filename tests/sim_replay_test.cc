// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/sim/replay.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/baseline_caches.h"
#include "src/core/cafe_cache.h"
#include "src/core/xlru_cache.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"
#include "tests/cache_test_util.h"

namespace vcdn::sim {
namespace {

using ::vcdn::testing::ChunkReq;
using ::vcdn::testing::MakeTrace;
using ::vcdn::testing::SmallConfig;

TEST(ReplayTotalsTest, AccumulatesServeAndRedirect) {
  ReplayTotals totals;
  core::RequestOutcome serve;
  serve.decision = core::Decision::kServe;
  serve.requested_bytes = 4096;
  serve.requested_chunks = 4;
  serve.filled_chunks = 2;
  serve.hit_chunks = 2;
  totals.Accumulate(serve, 1024);
  core::RequestOutcome redirect;
  redirect.decision = core::Decision::kRedirect;
  redirect.requested_bytes = 1000;
  totals.Accumulate(redirect, 1024);

  EXPECT_EQ(totals.requests, 2u);
  EXPECT_EQ(totals.served_requests, 1u);
  EXPECT_EQ(totals.redirected_requests, 1u);
  EXPECT_EQ(totals.requested_bytes, 5096u);
  EXPECT_EQ(totals.served_bytes, 4096u);
  EXPECT_EQ(totals.filled_bytes, 2048u);
  EXPECT_EQ(totals.redirected_bytes, 1000u);
}

TEST(ReplayTotalsTest, MetricsMatchDefinitions) {
  ReplayTotals totals;
  totals.requested_bytes = 10000;
  totals.served_bytes = 8000;
  totals.filled_bytes = 2000;
  totals.redirected_bytes = 2000;
  core::CostModel cost(1.0);
  // Efficiency = 1 - 0.2*1 - 0.2*1 = 0.6.
  EXPECT_NEAR(totals.Efficiency(cost), 0.6, 1e-12);
  EXPECT_NEAR(totals.IngressFraction(), 0.25, 1e-12);
  EXPECT_NEAR(totals.RedirectFraction(), 0.2, 1e-12);
}

TEST(ReplayTest, FillLruReplayAccounting) {
  // Two requests for the same 2 chunks: first fills, second hits.
  trace::Trace trace = MakeTrace({{1.0, 1, 0, 1}, {2.0, 1, 0, 1}});
  trace.duration = 4.0;
  core::AlwaysFillLruCache cache(SmallConfig(10, 1.0));
  ReplayOptions options;
  options.measurement_start_fraction = 0.0;
  ReplayResult result = Replay(cache, trace, options);
  EXPECT_EQ(result.totals.requests, 2u);
  EXPECT_EQ(result.totals.served_requests, 2u);
  EXPECT_EQ(result.totals.filled_bytes, 2048u);
  // Requested = 2 * 2 chunks * 1024.
  EXPECT_EQ(result.totals.requested_bytes, 4096u);
  // Efficiency: 1 - 2048/4096 = 0.5 at alpha=1.
  EXPECT_NEAR(result.efficiency, 0.5, 1e-12);
  EXPECT_EQ(result.cache_name, "FillLRU");
}

TEST(ReplayTest, SteadyStateWindowExcludesWarmup) {
  // 10 identical requests at t = 0..9; measurement starts at half.
  std::vector<ChunkReq> reqs;
  for (int i = 0; i < 10; ++i) {
    reqs.push_back({static_cast<double>(i), 1, 0, 0});
  }
  trace::Trace trace = MakeTrace(reqs);
  trace.duration = 10.0;
  core::AlwaysFillLruCache cache(SmallConfig(10, 1.0));
  ReplayOptions options;
  options.measurement_start_fraction = 0.5;
  ReplayResult result = Replay(cache, trace, options);
  // The single fill happened at t=0 (warmup); steady window sees pure hits.
  EXPECT_EQ(result.steady.requests, 5u);
  EXPECT_EQ(result.steady.filled_bytes, 0u);
  EXPECT_NEAR(result.efficiency, 1.0, 1e-12);
  EXPECT_LT(result.totals.Efficiency(cache.cost_model()), 1.0);
}

TEST(ReplayTest, SeriesBucketsSplitByHour) {
  trace::Trace trace = MakeTrace({{10.0, 1, 0, 0}, {3700.0, 1, 0, 0}, {3800.0, 2, 0, 0}});
  trace.duration = 7200.0;
  core::AlwaysFillLruCache cache(SmallConfig(10, 1.0));
  ReplayResult result = Replay(cache, trace);
  ASSERT_GE(result.series.size(), 2u);
  EXPECT_EQ(result.series[0].requested_bytes, 1024u);
  EXPECT_EQ(result.series[1].requested_bytes, 2048u);
  EXPECT_DOUBLE_EQ(result.series[1].bucket_start, 3600.0);
}

TEST(ReplayTest, XlruEndToEndOnSyntheticPattern) {
  // Mixed popular/unpopular pattern; checks invariant: served + redirected
  // bytes == requested bytes.
  std::vector<ChunkReq> reqs;
  double t = 0.0;
  for (int round = 0; round < 100; ++round) {
    t += 1.0;
    reqs.push_back({t, 1, 0, 3});
    if (round % 10 == 0) {
      reqs.push_back({t + 0.5, static_cast<trace::VideoId>(100 + round), 0, 3});
    }
  }
  trace::Trace trace = MakeTrace(reqs);
  core::XlruCache cache(SmallConfig(16, 2.0));
  ReplayResult result = Replay(cache, trace);
  EXPECT_EQ(result.totals.served_bytes + result.totals.redirected_bytes,
            result.totals.requested_bytes);
  EXPECT_GT(result.efficiency, 0.0);
  EXPECT_EQ(result.alpha_f2r, 2.0);
}

// Records every OnBucketEnd call for cadence assertions.
class RecordingObserver : public ReplayObserver {
 public:
  void OnBucketEnd(const ReplayProgress& progress) override {
    processed_.push_back(progress.requests_processed);
    sim_times_.push_back(progress.sim_time);
    total_requests_ = progress.total_requests;
    last_totals_requests_ = progress.totals != nullptr ? progress.totals->requests : 0;
  }

  const std::vector<uint64_t>& processed() const { return processed_; }
  const std::vector<double>& sim_times() const { return sim_times_; }
  uint64_t total_requests() const { return total_requests_; }
  uint64_t last_totals_requests() const { return last_totals_requests_; }

 private:
  std::vector<uint64_t> processed_;
  std::vector<double> sim_times_;
  uint64_t total_requests_ = 0;
  uint64_t last_totals_requests_ = 0;
};

TEST(ReplayObserverTest, CalledOncePerBucketPlusFinal) {
  // Buckets of 10s; requests land in buckets 0, 0, 2, 5 -> two interior
  // boundary crossings plus the final flush = 3 callbacks.
  trace::Trace trace =
      MakeTrace({{1.0, 1, 0, 0}, {2.0, 1, 0, 0}, {25.0, 1, 0, 0}, {51.0, 2, 0, 0}});
  trace.duration = 60.0;
  core::AlwaysFillLruCache cache(SmallConfig(10, 1.0));
  RecordingObserver observer;
  ReplayOptions options;
  options.bucket_seconds = 10.0;
  options.observer = &observer;
  Replay(cache, trace, options);

  ASSERT_EQ(observer.processed().size(), 3u);
  // First flush happens when t=25 arrives: 2 requests processed so far.
  EXPECT_EQ(observer.processed()[0], 2u);
  EXPECT_EQ(observer.processed()[1], 3u);
  EXPECT_EQ(observer.processed()[2], 4u);
  EXPECT_EQ(observer.total_requests(), 4u);
  EXPECT_EQ(observer.last_totals_requests(), 4u);
  EXPECT_DOUBLE_EQ(observer.sim_times().back(), 51.0);
}

TEST(ReplayObserverTest, NeverCalledForEmptyTrace) {
  trace::Trace trace;
  trace.duration = 0.0;
  core::AlwaysFillLruCache cache(SmallConfig(10, 1.0));
  RecordingObserver observer;
  obs::MetricsRegistry registry;
  ReplayOptions options;
  options.measurement_start_fraction = 0.0;
  options.observer = &observer;
  options.metrics = &registry;
  ReplayResult result = Replay(cache, trace, options);
  EXPECT_TRUE(observer.processed().empty());
  EXPECT_EQ(result.totals.requests, 0u);
  EXPECT_EQ(registry.CounterValue("sim.replay.requests_total"), 0u);
  EXPECT_EQ(registry.CounterValue("sim.replay.buckets_flushed_total"), 0u);
}

TEST(ReplayObsTest, RegistryCountersMatchReplayTotals) {
  // Busy mixed workload on a small cache so fills, hits, redirects and
  // evictions all occur; the registry must agree with ReplayTotals exactly.
  std::vector<ChunkReq> reqs;
  double t = 0.0;
  for (int round = 0; round < 200; ++round) {
    t += 1.0;
    reqs.push_back({t, static_cast<trace::VideoId>(round % 7), 0, 3});
    reqs.push_back({t + 0.25, static_cast<trace::VideoId>(50 + round), 0, 5});
  }
  trace::Trace trace = MakeTrace(reqs);
  core::AlwaysFillLruCache cache(SmallConfig(24, 2.0));
  obs::MetricsRegistry registry;
  ReplayOptions options;
  options.metrics = &registry;
  options.bucket_seconds = 20.0;
  ReplayResult result = Replay(cache, trace, options);

  const std::string p = "cache.FillLRU.";
  EXPECT_EQ(registry.CounterValue(p + "requests_total"), result.totals.requests);
  EXPECT_EQ(registry.CounterValue(p + "served_total"), result.totals.served_requests);
  EXPECT_EQ(registry.CounterValue(p + "redirected_total"), result.totals.redirected_requests);
  EXPECT_EQ(registry.CounterValue(p + "filled_chunks_total"), result.totals.filled_chunks);
  EXPECT_EQ(registry.CounterValue(p + "proactive_filled_chunks_total"),
            result.totals.proactive_filled_chunks);
  EXPECT_EQ(registry.CounterValue(p + "evicted_chunks_total"), result.totals.evicted_chunks);
  EXPECT_GT(result.totals.evicted_chunks, 0u);
  EXPECT_EQ(registry.CounterValue("sim.replay.requests_total"), result.totals.requests);
  EXPECT_GT(registry.GaugeValue(p + "used_chunks"), 0.0);
}

TEST(ReplayObsTest, TraceSinkRecordsSpansAndSnapshots) {
  trace::Trace trace = MakeTrace({{1.0, 1, 0, 1}, {4000.0, 1, 0, 1}});
  trace.duration = 7200.0;
  core::AlwaysFillLruCache cache(SmallConfig(10, 1.0));
  obs::MetricsRegistry registry;
  obs::TraceEventSink sink;
  ReplayOptions options;
  options.metrics = &registry;
  options.trace_sink = &sink;
  Replay(cache, trace, options);

  bool saw_prepare = false;
  bool saw_loop = false;
  for (const obs::TraceEvent& e : sink.events()) {
    saw_prepare = saw_prepare || (e.phase == 'X' && e.name == "replay.prepare");
    saw_loop = saw_loop || (e.phase == 'X' && e.name == "replay.loop");
  }
  EXPECT_TRUE(saw_prepare);
  EXPECT_TRUE(saw_loop);
  // One snapshot per bucket flush: the interior boundary plus the final one.
  EXPECT_EQ(sink.num_snapshots(), 2u);
}

}  // namespace
}  // namespace vcdn::sim
