// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/util/status.h"

#include <gtest/gtest.h>

namespace vcdn::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad alpha");
}

TEST(StatusTest, AllCodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition), "FAILED_PRECONDITION");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_EQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailingStep() { return InternalError("boom"); }

Status Pipeline() {
  VCDN_RETURN_IF_ERROR(OkStatus());
  VCDN_RETURN_IF_ERROR(FailingStep());
  return OkStatus();  // unreachable
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = Pipeline();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace vcdn::util
