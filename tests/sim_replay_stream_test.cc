// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Streaming-vs-materialized equivalence suite: every producer that can feed
// a replay -- the materialized Trace path, trace::GeneratedStream
// (generate-as-you-replay) and trace::MmapTrace (packed VCDNTRS2 file) --
// must be observationally indistinguishable: identical fleet digests across
// thread counts and batch sizes, identical per-request outcome streams,
// byte-identical time-series JSONL and flight-ring contents, identical
// fault accounting when a schedule bites mid-stream, and an identical
// two-tier hierarchy result. This is the contract that lets
// bench_scale_sweep's throughput numbers stand in for the materialized
// reference.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/cache_algorithm.h"
#include "src/core/cache_factory.h"
#include "src/exec/thread_pool.h"
#include "src/fault/fault.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/run_metadata.h"
#include "src/obs/time_series.h"
#include "src/sim/hierarchy.h"
#include "src/sim/parallel_fleet.h"
#include "src/sim/replay.h"
#include "src/trace/generated_stream.h"
#include "src/trace/server_profile.h"
#include "src/trace/trace_file.h"
#include "src/trace/workload_generator.h"
#include "src/util/rng.h"

namespace vcdn::sim {
namespace {

enum class Producer { kMaterialized, kGenerated, kMmap };

const char* Name(Producer p) {
  switch (p) {
    case Producer::kMaterialized:
      return "materialized";
    case Producer::kGenerated:
      return "generated";
    case Producer::kMmap:
      return "mmap";
  }
  return "?";
}

struct OutcomeRecord {
  double arrival_time = 0.0;
  core::Decision decision = core::Decision::kServe;
  uint64_t hit_chunks = 0;
  uint64_t filled_chunks = 0;
  uint64_t evicted_chunks = 0;
  uint64_t requested_bytes = 0;

  bool operator==(const OutcomeRecord& other) const {
    return arrival_time == other.arrival_time && decision == other.decision &&
           hit_chunks == other.hit_chunks && filled_chunks == other.filled_chunks &&
           evicted_chunks == other.evicted_chunks && requested_bytes == other.requested_bytes;
  }
};

class ReplayStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<trace::ServerProfile> profiles = trace::PaperServerProfiles(0.02);
    for (size_t i = 0; i < 2; ++i) {
      trace::WorkloadConfig workload;
      workload.profile = profiles[i];
      workload.duration_seconds = 3.0 * 86400.0;
      workload.seed = util::SplitSeed(11, i);
      workloads_.push_back(workload);
      traces_.push_back(trace::WorkloadGenerator(workload).Generate().trace);
    }
    config_.chunk_bytes = core::kDefaultChunkBytes;
    config_.disk_capacity_chunks = 512;
    config_.alpha_f2r = 2.0;

    pack_path_ = testing::TempDir() + "sim_replay_stream_test.vtrs";
    ASSERT_TRUE(trace::WriteTraceFile({&traces_[0], &traces_[1]}, pack_path_).ok());
    auto mapped = trace::MmapTrace::Open(pack_path_);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    mapped_.emplace(std::move(mapped.value()));

    exec::ThreadPoolOptions pool_options;
    pool_options.num_threads = 2;
    generator_pool_.emplace(pool_options);
  }

  void TearDown() override { std::remove(pack_path_.c_str()); }

  // A fresh stream over server `i` for the given producer. GeneratedStream
  // runs in pooled mode on the dedicated generator pool (never the fleet
  // pool), the shape bench_scale_sweep uses.
  std::unique_ptr<trace::RequestStream> MakeStream(Producer producer, size_t i) {
    if (producer == Producer::kGenerated) {
      trace::GeneratedStreamOptions options;
      options.generator_pool = &*generator_pool_;
      options.lookahead_windows = 2;
      return std::make_unique<trace::GeneratedStream>(workloads_[i], options);
    }
    return mapped_->ServerStream(i);
  }

  // The 4-shard fleet (2 servers x {xLRU, Cafe}) fed by `producer`.
  std::vector<FleetServer> MakeFleet(Producer producer) {
    const core::CacheKind kinds[] = {core::CacheKind::kXlru, core::CacheKind::kCafe};
    std::vector<FleetServer> servers;
    for (size_t i = 0; i < traces_.size(); ++i) {
      for (core::CacheKind kind : kinds) {
        FleetServer server{"server" + std::to_string(i), kind, config_, nullptr, {}};
        if (producer == Producer::kMaterialized) {
          server.trace = &traces_[i];
        } else {
          server.stream = [this, producer, i]() { return MakeStream(producer, i); };
        }
        servers.push_back(std::move(server));
      }
    }
    return servers;
  }

  // Single-cache replay of server 0 through `producer`, with optional
  // instruments; returns outcomes + result.
  std::pair<std::vector<OutcomeRecord>, ReplayResult> RunOne(Producer producer,
                                                             ReplayOptions options) {
    auto cache = core::MakeCache(core::CacheKind::kCafe, config_);
    std::vector<OutcomeRecord> outcomes;
    options.on_outcome = [&](const trace::Request& request, const core::RequestOutcome& outcome) {
      outcomes.push_back(OutcomeRecord{request.arrival_time, outcome.decision, outcome.hit_chunks,
                                       outcome.filled_chunks, outcome.evicted_chunks,
                                       outcome.requested_bytes});
    };
    ReplayResult result;
    if (producer == Producer::kMaterialized) {
      result = Replay(*cache, traces_[0], options);
    } else {
      auto stream = MakeStream(producer, 0);
      result = ReplayStream(*cache, *stream, options);
    }
    return {std::move(outcomes), std::move(result)};
  }

  std::vector<trace::WorkloadConfig> workloads_;
  std::vector<trace::Trace> traces_;
  core::CacheConfig config_;
  std::string pack_path_;
  std::optional<trace::MmapTrace> mapped_;
  std::optional<exec::ThreadPool> generator_pool_;
};

constexpr Producer kProducers[] = {Producer::kMaterialized, Producer::kGenerated, Producer::kMmap};

TEST_F(ReplayStreamTest, FleetDigestIdenticalAcrossProducersThreadsAndBatches) {
  uint64_t reference = 0;
  bool have_reference = false;
  for (Producer producer : kProducers) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      for (size_t batch : {size_t{1}, size_t{16}}) {
        FleetOptions options;
        options.threads = threads;
        options.replay.batch_size = batch;
        const uint64_t digest = FleetDigest(RunFleet(MakeFleet(producer), options));
        if (!have_reference) {
          reference = digest;
          have_reference = true;
        }
        EXPECT_EQ(digest, reference)
            << Name(producer) << " threads " << threads << " batch " << batch;
      }
    }
  }
}

TEST_F(ReplayStreamTest, OutcomeStreamIdenticalAcrossProducers) {
  ReplayOptions options;
  options.batch_size = 7;  // never divides the trace length
  auto [reference_outcomes, reference_result] = RunOne(Producer::kMaterialized, options);
  ASSERT_GT(reference_outcomes.size(), 100u);
  for (Producer producer : {Producer::kGenerated, Producer::kMmap}) {
    auto [outcomes, result] = RunOne(producer, options);
    ASSERT_EQ(outcomes.size(), reference_outcomes.size()) << Name(producer);
    for (size_t i = 0; i < outcomes.size(); ++i) {
      ASSERT_TRUE(outcomes[i] == reference_outcomes[i]) << Name(producer) << " request " << i;
    }
    EXPECT_EQ(result.totals.served_bytes, reference_result.totals.served_bytes);
    EXPECT_EQ(result.steady.filled_bytes, reference_result.steady.filled_bytes);
    EXPECT_EQ(result.efficiency, reference_result.efficiency);
    ASSERT_EQ(result.series.size(), reference_result.series.size());
    for (size_t i = 0; i < result.series.size(); ++i) {
      EXPECT_EQ(result.series[i].bucket_start, reference_result.series[i].bucket_start);
      EXPECT_EQ(result.series[i].served_bytes, reference_result.series[i].served_bytes);
    }
  }
}

// Blanks the value of the one wall-clock-dependent gauge the replay exports
// (host-time throughput); everything else in the document is sim-time or
// counter state and must be byte-stable.
std::string ScrubWallClock(std::string jsonl) {
  const std::string key = "\"sim.replay.requests_per_sec\":";
  for (size_t at = jsonl.find(key); at != std::string::npos; at = jsonl.find(key, at + key.size())) {
    const size_t begin = at + key.size();
    size_t end = begin;
    while (end < jsonl.size() && jsonl[end] != ',' && jsonl[end] != '}') {
      ++end;
    }
    jsonl.replace(begin, end - begin, "0");
  }
  return jsonl;
}

TEST_F(ReplayStreamTest, SeriesJsonlBytesIdenticalAcrossProducers) {
  // The exported JSONL document -- window edges, counter deltas, quantiles --
  // must be byte-identical (modulo the host-time throughput gauge), not
  // merely numerically close.
  auto series_bytes = [&](Producer producer) {
    obs::MetricsRegistry registry;
    obs::TimeSeriesRecorder recorder(&registry);
    ReplayOptions options;
    options.metrics = &registry;
    options.series = &recorder;
    RunOne(producer, options);
    std::ostringstream out;
    recorder.WriteJsonl(out, obs::RunMetadata{});
    return ScrubWallClock(out.str());
  };
  const std::string reference = series_bytes(Producer::kMaterialized);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(series_bytes(Producer::kGenerated), reference);
  EXPECT_EQ(series_bytes(Producer::kMmap), reference);
}

TEST_F(ReplayStreamTest, FlightRingBytesIdenticalAcrossProducers) {
  auto ring_records = [&](Producer producer) {
    obs::FlightRecorder flight(128);
    ReplayOptions options;
    options.flight = &flight;
    options.flight_label = "stream-test";
    RunOne(producer, options);
    return flight.Snapshot();
  };
  const std::vector<obs::DecisionRecord> reference = ring_records(Producer::kMaterialized);
  ASSERT_FALSE(reference.empty());
  for (Producer producer : {Producer::kGenerated, Producer::kMmap}) {
    const std::vector<obs::DecisionRecord> got = ring_records(producer);
    ASSERT_EQ(got.size(), reference.size()) << Name(producer);
    EXPECT_EQ(std::memcmp(got.data(), reference.data(),
                          reference.size() * sizeof(obs::DecisionRecord)),
              0)
        << Name(producer);
  }
}

TEST_F(ReplayStreamTest, FaultScheduleBitesIdenticallyMidStream) {
  // Degrade, cold-restart and outage boundaries land in the middle of pulled
  // spans; the stream path must cut batches at exactly the same requests.
  const double duration = traces_[0].duration;
  fault::FaultSchedule schedule;
  fault::FaultEvent degrade;
  degrade.kind = fault::FaultKind::kDiskDegrade;
  degrade.start = duration * 0.21;
  degrade.end = duration * 0.48;
  degrade.capacity_factor = 0.5;
  schedule.Add(degrade);
  fault::FaultEvent restart;
  restart.kind = fault::FaultKind::kColdRestart;
  restart.start = duration * 0.63;
  restart.end = restart.start;
  schedule.Add(restart);
  fault::FaultEvent outage;
  outage.kind = fault::FaultKind::kEdgeOutage;
  outage.start = duration * 0.77;
  outage.end = duration * 0.81;
  schedule.Add(outage);
  ASSERT_TRUE(schedule.Validate().ok());

  ReplayOptions options;
  options.batch_size = 16;
  options.faults = &schedule;
  auto [reference_outcomes, reference_result] = RunOne(Producer::kMaterialized, options);
  ASSERT_EQ(reference_result.faults.cold_restarts, 1u);
  ASSERT_GT(reference_result.faults.unavailable_requests, 0u);
  for (Producer producer : {Producer::kGenerated, Producer::kMmap}) {
    auto [outcomes, result] = RunOne(producer, options);
    ASSERT_EQ(outcomes.size(), reference_outcomes.size()) << Name(producer);
    for (size_t i = 0; i < outcomes.size(); ++i) {
      ASSERT_TRUE(outcomes[i] == reference_outcomes[i]) << Name(producer) << " request " << i;
    }
    EXPECT_EQ(result.faults.cold_restarts, reference_result.faults.cold_restarts);
    EXPECT_EQ(result.faults.resize_events, reference_result.faults.resize_events);
    EXPECT_EQ(result.faults.unavailable_requests, reference_result.faults.unavailable_requests);
    EXPECT_EQ(result.availability, reference_result.availability);
  }
}

TEST_F(ReplayStreamTest, HierarchyStreamOverloadMatchesTraceOverload) {
  HierarchyConfig config;
  config.edge_config = config_;
  config.parent_config = config_;
  config.parent_config.disk_capacity_chunks = 2048;
  config.threads = 2;

  const HierarchyResult reference = RunHierarchy(traces_, config);
  std::vector<StreamFactory> factories;
  for (size_t i = 0; i < traces_.size(); ++i) {
    factories.push_back([this, i]() { return MakeStream(Producer::kGenerated, i); });
  }
  const HierarchyResult streamed = RunHierarchy(factories, config);

  ASSERT_EQ(streamed.edges.size(), reference.edges.size());
  for (size_t i = 0; i < reference.edges.size(); ++i) {
    EXPECT_EQ(streamed.edges[i].totals.served_bytes, reference.edges[i].totals.served_bytes);
    EXPECT_EQ(streamed.edges[i].steady.filled_bytes, reference.edges[i].steady.filled_bytes);
  }
  EXPECT_EQ(streamed.parent.totals.requests, reference.parent.totals.requests);
  EXPECT_EQ(streamed.parent.totals.served_bytes, reference.parent.totals.served_bytes);
  EXPECT_EQ(streamed.requested_bytes, reference.requested_bytes);
  EXPECT_EQ(streamed.edge_served_bytes, reference.edge_served_bytes);
  EXPECT_EQ(streamed.parent_served_bytes, reference.parent_served_bytes);
  EXPECT_EQ(streamed.origin_bytes, reference.origin_bytes);
  EXPECT_EQ(streamed.edge_hit_fraction, reference.edge_hit_fraction);
  EXPECT_EQ(streamed.cdn_hit_fraction, reference.cdn_hit_fraction);
  EXPECT_EQ(streamed.origin_cost, reference.origin_cost);
  ASSERT_EQ(streamed.outage_origin_series.size(), reference.outage_origin_series.size());
}

TEST_F(ReplayStreamTest, StreamingRefusesOfflineCaches) {
  // Psychic needs the whole trace up front (Prepare computes future
  // popularity); feeding it a stream must die loudly, not silently replay
  // with an unprepared oracle.
  auto cache = core::MakeCache(core::CacheKind::kPsychic, config_);
  auto stream = MakeStream(Producer::kMmap, 0);
  EXPECT_DEATH(ReplayStream(*cache, *stream), "full trace");
}

TEST_F(ReplayStreamTest, MaterializedReplayStillPreparesOfflineCaches) {
  // The trace overload keeps working for offline algorithms -- only the
  // streaming entry point refuses them.
  auto cache = core::MakeCache(core::CacheKind::kPsychic, config_);
  ReplayResult result = Replay(*cache, traces_[0]);
  EXPECT_GT(result.totals.requests, 0u);
}

}  // namespace
}  // namespace vcdn::sim
