// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// HdrHistogramCell: log-bucket layout, under/overflow clamping, quantile
// monotonicity, and the merge contract the windowed time-series relies on
// (merge-of-shards == single-stream, exactly, because counts are sums).

#include "src/obs/hdr_histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace vcdn::obs {
namespace {

TEST(HdrHistogramCellTest, LayoutCoversRangeInOctaves) {
  // [1, 16) = 4 octaves of 4 sub-buckets.
  HdrHistogramCell cell(1.0, 16.0, 4);
  EXPECT_EQ(cell.num_buckets(), 16u);
  EXPECT_DOUBLE_EQ(cell.bucket_lo(0), 1.0);
  // First octave is linear in [1, 2): edges 1, 1.25, 1.5, 1.75.
  EXPECT_DOUBLE_EQ(cell.bucket_lo(1), 1.25);
  EXPECT_DOUBLE_EQ(cell.bucket_lo(4), 2.0);   // second octave starts at 2
  EXPECT_DOUBLE_EQ(cell.bucket_lo(8), 4.0);   // third at 4
  EXPECT_DOUBLE_EQ(cell.bucket_lo(16), 16.0);  // top edge
}

TEST(HdrHistogramCellTest, UnderAndOverflowClampToRangeEdges) {
  HdrHistogramCell cell(10.0, 1000.0, 8);
  cell.Add(0.5);     // below lo
  cell.Add(-3.0);    // negative -- still underflow, never UB
  cell.Add(1000.0);  // hi itself is out of [lo, hi)
  cell.Add(1e12);
  EXPECT_EQ(cell.underflow(), 2u);
  EXPECT_EQ(cell.overflow(), 2u);
  EXPECT_EQ(cell.total_count(), 4u);
  // Clamped mass reads as the range edges, not as garbage.
  EXPECT_DOUBLE_EQ(cell.Quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cell.Quantile(1.0), 1000.0);
}

TEST(HdrHistogramCellTest, QuantileIsMonotoneOverRandomFill) {
  HdrHistogramCell cell(1.0, 1e6, 16);
  util::Pcg32 rng(42);
  for (int i = 0; i < 10000; ++i) {
    // Log-uniform over ~7 decades, plus some mass outside the range.
    double value = std::exp(rng.NextDouble() * 16.0 - 1.0);
    cell.Add(value);
  }
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    double value = cell.Quantile(q);
    EXPECT_GE(value, previous) << "quantile not monotone at q=" << q;
    previous = value;
  }
  EXPECT_GE(cell.Quantile(0.0), 1.0);
  EXPECT_LE(cell.Quantile(1.0), 1e6);
}

TEST(HdrHistogramCellTest, RelativeErrorBoundedBySubBuckets) {
  HdrHistogramCell cell(1.0, 1024.0, 32);
  const double value = 300.0;
  for (int i = 0; i < 100; ++i) {
    cell.Add(value);
  }
  // All mass in one bucket: every quantile is that bucket's midpoint, within
  // one sub-bucket's relative width of the true value.
  const double p50 = cell.Quantile(0.5);
  EXPECT_NEAR(p50, value, value / 32.0);
}

TEST(HdrHistogramCellTest, MergeOfShardsEqualsSingleStream) {
  HdrHistogramCell single(1.0, 1e6, 16);
  HdrHistogramCell shard_a(1.0, 1e6, 16);
  HdrHistogramCell shard_b(1.0, 1e6, 16);
  util::Pcg32 rng(7);
  for (int i = 0; i < 5000; ++i) {
    double value = std::exp(rng.NextDouble() * 16.0 - 1.0);
    single.Add(value);
    (i % 2 == 0 ? shard_a : shard_b).Add(value);
  }
  shard_a.MergeFrom(shard_b);
  ASSERT_EQ(shard_a.num_buckets(), single.num_buckets());
  for (size_t i = 0; i < single.num_buckets(); ++i) {
    EXPECT_EQ(shard_a.bucket_count(i), single.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(shard_a.underflow(), single.underflow());
  EXPECT_EQ(shard_a.overflow(), single.overflow());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(shard_a.Quantile(q), single.Quantile(q));
  }
}

TEST(HdrHistogramCellTest, QuantileFromCountsMatchesLiveQuantile) {
  HdrHistogramCell cell(1.0, 4096.0, 8);
  util::Pcg32 rng(11);
  for (int i = 0; i < 2000; ++i) {
    cell.Add(std::exp(rng.NextDouble() * 10.0));
  }
  std::vector<uint64_t> counts(cell.num_buckets());
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = cell.bucket_count(i);
  }
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(cell.QuantileFromCounts(q, counts, cell.underflow(), cell.overflow()),
                     cell.Quantile(q));
  }
}

TEST(HdrHistogramCellTest, EmptyCellQuantileIsZero) {
  HdrHistogramCell cell(1.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(cell.Quantile(0.5), 0.0);
  EXPECT_EQ(cell.total_count(), 0u);
}

TEST(HdrHistogramHandleTest, DisabledHandleIsNoOp) {
  HdrHistogram histogram;
  EXPECT_FALSE(histogram.enabled());
  histogram.Observe(1.0);
  EXPECT_EQ(histogram.data(), nullptr);
}

}  // namespace
}  // namespace vcdn::obs
