// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// End-to-end tests of the EdgeServer daemon over loopback sockets: the
// determinism bridge (daemon-served outcome digest == offline sim::Replay
// digest, at more than one pool thread count), multi-connection accounting,
// protocol-error handling, idle timeouts, and graceful shutdown.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "src/core/cache_factory.h"
#include "src/exec/thread_pool.h"
#include "src/net/edge_server.h"
#include "src/net/load_gen.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/obs/metrics.h"
#include "src/sim/decision_digest.h"
#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"

namespace vcdn::net {
namespace {

trace::Trace MakeTrace(uint64_t seed, double duration_seconds = 2.0 * 3600.0) {
  trace::WorkloadConfig config;
  config.profile = trace::PaperServerProfiles(0.02)[0];
  // Pin the arrival rate so the trace size is set by the duration argument
  // (the scaled-down paper profile alone generates only a handful).
  config.profile.base_request_rate = 4.0;
  config.seed = seed;
  config.duration_seconds = duration_seconds;
  return trace::WorkloadGenerator(config).Generate().trace;
}

core::CacheConfig SmallCacheConfig() {
  core::CacheConfig config;
  config.disk_capacity_chunks = 4096;
  return config;
}

// Polls until the shard has folded `expected` outcomes (responses may still
// be in flight to the client after the fold, so the digest settles first).
EdgeServer::DigestSnapshot WaitForDigest(const EdgeServer& server, size_t shard,
                                         uint64_t expected) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    EdgeServer::DigestSnapshot snapshot = server.ShardDigest(shard);
    if (snapshot.count >= expected || std::chrono::steady_clock::now() >= deadline) {
      return snapshot;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// The tentpole acceptance criterion: a seeded workload replayed over a real
// loopback socket against a one-shard daemon produces a bit-identical
// decision-stream digest to the offline replayer -- at multiple pool thread
// counts, since a strand serializes the shard regardless of workers.
TEST(NetEdgeServerTest, DigestBridgeMatchesOfflineReplay) {
  const trace::Trace trace = MakeTrace(99);
  ASSERT_GT(trace.requests.size(), 1000u);
  const uint64_t offline =
      sim::ReplayOutcomeDigest(core::CacheKind::kCafe, SmallCacheConfig(), trace);

  for (size_t threads : {1u, 4u}) {
    exec::ThreadPool pool(threads);
    EdgeServerOptions options;
    options.cache_kind = core::CacheKind::kCafe;
    options.cache_config = SmallCacheConfig();
    options.num_shards = 1;
    EdgeServer server(pool, options);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_GT(server.port(), 0);

    LoadGenOptions load;
    load.port = server.port();
    load.connections = 1;
    load.pipeline_depth = 64;
    util::Result<LoadGenResult> result = RunClosedLoop(trace, load);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result.value().responses_received, trace.requests.size());

    // The client folds the wire responses; the shard folds the outcomes.
    // Both must equal the offline replay of the same trace.
    EXPECT_EQ(result.value().digest, offline) << "threads=" << threads;
    EdgeServer::DigestSnapshot shard = WaitForDigest(server, 0, trace.requests.size());
    EXPECT_EQ(shard.count, trace.requests.size()) << "threads=" << threads;
    EXPECT_EQ(shard.value, offline) << "threads=" << threads;

    server.Stop();
    pool.Shutdown();
  }
}

TEST(NetEdgeServerTest, MultiConnectionMultiShardAccountsEveryRequest) {
  const trace::Trace trace = MakeTrace(7, 3600.0);
  exec::ThreadPool pool(4);
  obs::MetricsRegistry registry;
  EdgeServerOptions options;
  options.cache_config = SmallCacheConfig();
  options.num_shards = 4;
  options.metrics = &registry;
  EdgeServer server(pool, options);
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions load;
  load.port = server.port();
  load.connections = 4;
  load.pipeline_depth = 32;
  load.metrics = &registry;
  util::Result<LoadGenResult> result = RunClosedLoop(trace, load);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result.value().requests_sent, trace.requests.size());
  EXPECT_EQ(result.value().responses_received, trace.requests.size());
  EXPECT_GT(result.value().latency_p50, 0.0);
  EXPECT_LE(result.value().latency_p50, result.value().latency_p999);

  // Every request was folded into exactly one shard.
  uint64_t folded = 0;
  for (size_t s = 0; s < server.num_shards(); ++s) {
    folded += WaitForDigest(server, s, 0).count;
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (folded < trace.requests.size() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    folded = 0;
    for (size_t s = 0; s < server.num_shards(); ++s) {
      folded += server.ShardDigest(s).count;
    }
  }
  EXPECT_EQ(folded, trace.requests.size());
  server.Stop();
  EXPECT_EQ(registry.GetCounter("net.server.requests_total").value(), trace.requests.size());
  EXPECT_EQ(registry.GetCounter("net.server.responses_total").value(), trace.requests.size());
  pool.Shutdown();
}

TEST(NetEdgeServerTest, ServerClockModeStillAnswersEverything) {
  const trace::Trace trace = MakeTrace(13, 1800.0);
  exec::ThreadPool pool(2);
  EdgeServerOptions options;
  options.cache_config = SmallCacheConfig();
  options.use_client_time = false;  // stamp arrivals from the server clock
  EdgeServer server(pool, options);
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions load;
  load.port = server.port();
  load.connections = 2;
  load.pipeline_depth = 16;
  util::Result<LoadGenResult> result = RunClosedLoop(trace, load);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result.value().responses_received, trace.requests.size());
  server.Stop();
  pool.Shutdown();
}

TEST(NetEdgeServerTest, CorruptFrameClosesConnectionAndCountsProtocolError) {
  exec::ThreadPool pool(2);
  obs::MetricsRegistry registry;
  EdgeServerOptions options;
  options.cache_config = SmallCacheConfig();
  options.metrics = &registry;
  EdgeServer server(pool, options);
  ASSERT_TRUE(server.Start().ok());

  util::Result<Socket> connected = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  Socket sock = std::move(connected).value();
  const uint8_t garbage[16] = {0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_TRUE(sock.WriteFull(garbage, sizeof(garbage)).ok());

  // The server must drop us: the read eventually reports peer-close.
  uint8_t buf[64];
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool dropped = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = sock.ReadSome(buf, sizeof(buf));
    if (n == -1 || n == -2) {
      dropped = true;
      break;
    }
    ASSERT_LE(n, 0) << "server answered garbage with data";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(dropped);
  EXPECT_EQ(registry.GetCounter("net.server.protocol_errors_total").value(), 1u);
  server.Stop();
  pool.Shutdown();
}

TEST(NetEdgeServerTest, IdleConnectionIsClosedByTheSweep) {
  exec::ThreadPool pool(2);
  obs::MetricsRegistry registry;
  EdgeServerOptions options;
  options.cache_config = SmallCacheConfig();
  options.idle_timeout = std::chrono::milliseconds(100);
  options.metrics = &registry;
  EdgeServer server(pool, options);
  ASSERT_TRUE(server.Start().ok());

  util::Result<Socket> connected = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  Socket sock = std::move(connected).value();

  // Send nothing; within a few sweep periods the server hangs up.
  uint8_t buf[8];
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool dropped = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = sock.ReadSome(buf, sizeof(buf));
    if (n == -1 || n == -2) {
      dropped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(dropped);
  EXPECT_GE(registry.GetCounter("net.server.idle_closed_total").value(), 1u);
  server.Stop();
  pool.Shutdown();
}

TEST(NetEdgeServerTest, StopWithLiveConnectionsDrainsGracefully) {
  const trace::Trace trace = MakeTrace(21, 900.0);
  exec::ThreadPool pool(2);
  EdgeServerOptions options;
  options.cache_config = SmallCacheConfig();
  EdgeServer server(pool, options);
  ASSERT_TRUE(server.Start().ok());

  // Finish a full replay, keep the connection open, then Stop: every queued
  // response must already be out, and Stop must return promptly.
  LoadGenOptions load;
  load.port = server.port();
  load.connections = 1;
  load.pipeline_depth = 8;
  util::Result<LoadGenResult> result = RunClosedLoop(trace, load);
  ASSERT_TRUE(result.ok()) << result.status().message();

  util::Result<Socket> idle = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(idle.ok());
  const auto stop_start = std::chrono::steady_clock::now();
  server.Stop();
  const double stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - stop_start).count();
  EXPECT_LT(stop_seconds, 5.0);
  EXPECT_FALSE(server.running());
  // Stop is idempotent.
  server.Stop();
  pool.Shutdown();
}

TEST(NetEdgeServerTest, FlightRecorderCapturesTheTailOfTheStream) {
  const trace::Trace trace = MakeTrace(5, 900.0);
  exec::ThreadPool pool(2);
  EdgeServerOptions options;
  options.cache_config = SmallCacheConfig();
  options.flight_recorder_capacity = 256;
  EdgeServer server(pool, options);
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions load;
  load.port = server.port();
  util::Result<LoadGenResult> result = RunClosedLoop(trace, load);
  ASSERT_TRUE(result.ok()) << result.status().message();
  WaitForDigest(server, 0, trace.requests.size());
  server.Stop();  // quiesces the shard; safe to inspect the recorder

  const obs::FlightRecorder* flight = server.ShardFlightRecorder(0);
  ASSERT_NE(flight, nullptr);
  EXPECT_EQ(flight->total_recorded(), trace.requests.size());
  EXPECT_EQ(flight->size(), std::min<size_t>(256, trace.requests.size()));
  pool.Shutdown();
}

}  // namespace
}  // namespace vcdn::net
