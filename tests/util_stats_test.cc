// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace vcdn::util {
namespace {

TEST(StatAccumulatorTest, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulatorTest, BasicMoments) {
  StatAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.Add(v);
  }
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
}

TEST(StatAccumulatorTest, SingleValue) {
  StatAccumulator acc;
  acc.Add(3.25);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.25);
  EXPECT_DOUBLE_EQ(acc.min(), 3.25);
  EXPECT_DOUBLE_EQ(acc.max(), 3.25);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(EwmaTest, FirstValueInitializes) {
  Ewma ewma(0.25);
  EXPECT_FALSE(ewma.initialized());
  ewma.Add(10.0);
  EXPECT_TRUE(ewma.initialized());
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
}

TEST(EwmaTest, Smoothing) {
  Ewma ewma(0.5);
  ewma.Add(10.0);
  ewma.Add(20.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 15.0);
  ewma.Add(15.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 15.0);
}

TEST(BucketedSeriesTest, AccumulatesIntoRightBuckets) {
  BucketedSeries series(0.0, 10.0);
  series.Add(0.0, 1.0);
  series.Add(9.999, 2.0);
  series.Add(10.0, 4.0);
  series.Add(35.0, 8.0);
  ASSERT_EQ(series.num_buckets(), 4u);
  EXPECT_DOUBLE_EQ(series.sum(0), 3.0);
  EXPECT_DOUBLE_EQ(series.sum(1), 4.0);
  EXPECT_DOUBLE_EQ(series.sum(2), 0.0);
  EXPECT_DOUBLE_EQ(series.sum(3), 8.0);
  EXPECT_DOUBLE_EQ(series.bucket_start(3), 30.0);
  // Out-of-range queries are zero, not errors.
  EXPECT_DOUBLE_EQ(series.sum(10), 0.0);
}

TEST(BucketedSeriesTest, NonZeroOrigin) {
  BucketedSeries series(100.0, 5.0);
  series.Add(101.0, 1.0);
  series.Add(109.0, 2.0);
  ASSERT_EQ(series.num_buckets(), 2u);
  EXPECT_DOUBLE_EQ(series.sum(0), 1.0);
  EXPECT_DOUBLE_EQ(series.sum(1), 2.0);
}

TEST(HistogramTest, CountsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) {
    h.Add(static_cast<double>(i) + 0.5);
  }
  h.Add(-1.0);
  h.Add(100.0);
  EXPECT_EQ(h.total_count(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(h.bucket_count(i), 1u);
  }
}

TEST(HistogramTest, QuantileInterpolation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) {
    h.Add(static_cast<double>(i % 100));
  }
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.Quantile(1.0), 100.0, 1.0);
}

TEST(HistogramTest, EmptyQuantileIsLowerBound) {
  Histogram h(5.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
}

TEST(HistogramTest, QuantileZeroIsLowerBound) {
  Histogram h(0.0, 10.0, 10);
  h.Add(3.0);
  h.Add(7.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
}

TEST(HistogramTest, QuantileOneStaysWithinRange) {
  Histogram h(0.0, 10.0, 10);
  h.Add(3.0);
  h.Add(7.0);
  double q1 = h.Quantile(1.0);
  EXPECT_GE(q1, 7.0);
  EXPECT_LE(q1, 10.0);
}

TEST(HistogramTest, AllUnderflowQuantileIsLowerBound) {
  Histogram h(10.0, 20.0, 5);
  h.Add(-3.0);
  h.Add(0.0);
  h.Add(9.999);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 10.0) << "q=" << q;
  }
}

TEST(HistogramTest, AllOverflowQuantileClampsToUpperBound) {
  Histogram h(10.0, 20.0, 5);
  h.Add(20.0);  // hi_ itself counts as overflow (half-open buckets)
  h.Add(1e9);
  for (double q : {0.25, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 20.0) << "q=" << q;
  }
  // q == 0 clamps to the other side.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 10.0);
}

TEST(HistogramTest, QuantileSkipsEmptyBuckets) {
  // Mass only in the first and last buckets; the quantile must never land in
  // the empty middle.
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 5; ++i) {
    h.Add(0.5);
    h.Add(9.5);
  }
  EXPECT_LE(h.Quantile(0.4), 1.0);
  EXPECT_GE(h.Quantile(0.9), 9.0);
}

}  // namespace
}  // namespace vcdn::util
