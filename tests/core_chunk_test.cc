// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/chunk.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace vcdn::core {
namespace {

constexpr uint64_t kChunk = 2ull << 20;  // 2 MB

trace::Request MakeRequest(uint64_t b0, uint64_t b1) {
  trace::Request r;
  r.video = 1;
  r.byte_begin = b0;
  r.byte_end = b1;
  return r;
}

TEST(ChunkRangeTest, SingleByteInFirstChunk) {
  ChunkRange range = ToChunkRange(MakeRequest(0, 0), kChunk);
  EXPECT_EQ(range.first, 0u);
  EXPECT_EQ(range.last, 0u);
  EXPECT_EQ(range.count(), 1u);
}

TEST(ChunkRangeTest, ExactChunkBoundary) {
  // Bytes [0, K-1] are exactly chunk 0.
  ChunkRange range = ToChunkRange(MakeRequest(0, kChunk - 1), kChunk);
  EXPECT_EQ(range.first, 0u);
  EXPECT_EQ(range.last, 0u);
  // One byte more spills into chunk 1.
  range = ToChunkRange(MakeRequest(0, kChunk), kChunk);
  EXPECT_EQ(range.last, 1u);
  EXPECT_EQ(range.count(), 2u);
}

TEST(ChunkRangeTest, MidFileRange) {
  ChunkRange range = ToChunkRange(MakeRequest(5 * kChunk + 17, 9 * kChunk + 1), kChunk);
  EXPECT_EQ(range.first, 5u);
  EXPECT_EQ(range.last, 9u);
  EXPECT_EQ(range.count(), 5u);
}

TEST(ChunkRangeTest, RangeWithinOneChunk) {
  ChunkRange range = ToChunkRange(MakeRequest(3 * kChunk + 5, 3 * kChunk + 100), kChunk);
  EXPECT_EQ(range.first, 3u);
  EXPECT_EQ(range.last, 3u);
}

TEST(ChunkIdTest, EqualityAndOrdering) {
  ChunkId a{1, 2};
  ChunkId b{1, 2};
  ChunkId c{1, 3};
  ChunkId d{2, 0};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_LT(a, c);
  EXPECT_LT(c, d);
}

TEST(ChunkIdHashTest, LowCollisionOnDenseIds) {
  ChunkIdHash hash;
  std::unordered_set<size_t> seen;
  int collisions = 0;
  for (uint64_t v = 0; v < 200; ++v) {
    for (uint32_t c = 0; c < 50; ++c) {
      if (!seen.insert(hash(ChunkId{v, c})).second) {
        ++collisions;
      }
    }
  }
  EXPECT_LT(collisions, 3);
}

TEST(ChunkRangeTest, ParameterizedChunkSizes) {
  for (uint64_t chunk_bytes : {1ull << 10, 1ull << 20, 2ull << 20, 4ull << 20}) {
    ChunkRange range = ToChunkRange(MakeRequest(chunk_bytes, 3 * chunk_bytes - 1), chunk_bytes);
    EXPECT_EQ(range.first, 1u);
    EXPECT_EQ(range.last, 2u);
  }
}

}  // namespace
}  // namespace vcdn::core
