// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Fail-fast contract of bench::FlagsFromArgs: a typoed flag, a missing
// value, an unparsable count or a stray positional argument must exit(2)
// naming the offender on stderr -- never silently run the default
// configuration (that is how wrong bench numbers get committed). Death
// tests, since the contract IS the exit.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace vcdn::bench {
namespace {

// argv helper: gtest death tests re-exec the statement in a child, so
// building argv inline per call keeps each case self-contained.
BenchFlags Parse(std::vector<std::string> args,
                 const std::vector<std::string>& extra = {}) {
  std::vector<char*> argv;
  static std::string prog = "bench_under_test";
  argv.push_back(prog.data());
  for (std::string& arg : args) {
    argv.push_back(arg.data());
  }
  return FlagsFromArgs(static_cast<int>(argv.size()), argv.data(), extra);
}

TEST(BenchFlagsTest, ParsesTheSharedFlags) {
  BenchFlags flags = Parse({"--threads", "8", "--repeat", "3", "--batch", "32"});
  EXPECT_EQ(flags.threads, 8u);
  EXPECT_EQ(flags.repeat, 3u);
  EXPECT_EQ(flags.batch, 32u);
}

TEST(BenchFlagsTest, ObsFlagsAreAcceptedAndLeftForBenchObs) {
  BenchFlags flags = Parse({"--obs-json", "/tmp/x.json", "--obs-series", "/tmp/x.jsonl",
                            "--flight", "4096", "--post-mortem", "/tmp/pm.jsonl"});
  EXPECT_EQ(flags.threads, 0u);  // defaults untouched
}

TEST(BenchFlagsTest, ExtraValueFlagsAreAccepted) {
  BenchFlags flags = Parse({"--out", "/tmp/bench.json", "--threads", "2"}, {"--out"});
  EXPECT_EQ(flags.threads, 2u);
}

TEST(BenchFlagsTest, UnknownFlagExitsNamingTheOffender) {
  EXPECT_EXIT(Parse({"--thread", "8"}), testing::ExitedWithCode(2),
              "unknown flag '--thread'");
}

TEST(BenchFlagsTest, ExtraFlagOfAnotherBenchIsStillUnknownHere) {
  // --out is only valid for benches that declare it.
  EXPECT_EXIT(Parse({"--out", "/tmp/x.json"}), testing::ExitedWithCode(2),
              "unknown flag '--out'");
}

TEST(BenchFlagsTest, MissingValueExits) {
  EXPECT_EXIT(Parse({"--threads"}), testing::ExitedWithCode(2),
              "missing its value");
}

TEST(BenchFlagsTest, UnparsableCountExits) {
  EXPECT_EXIT(Parse({"--repeat", "three"}), testing::ExitedWithCode(2),
              "invalid value 'three' for flag '--repeat'");
  EXPECT_EXIT(Parse({"--flight", "-1"}), testing::ExitedWithCode(2),
              "invalid value '-1' for flag '--flight'");
}

TEST(BenchFlagsTest, PositionalArgumentExits) {
  EXPECT_EXIT(Parse({"traces.bin"}), testing::ExitedWithCode(2),
              "unexpected positional argument 'traces.bin'");
}

TEST(BenchFlagsTest, RepeatAndBatchClampToAtLeastOne) {
  BenchFlags flags = Parse({"--repeat", "0", "--batch", "0"});
  EXPECT_EQ(flags.repeat, 1u);
  EXPECT_EQ(flags.batch, 1u);
}

}  // namespace
}  // namespace vcdn::bench
