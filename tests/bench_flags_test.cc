// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Fail-fast contract of bench::FlagsFromArgs: a typoed flag, a missing
// value, an unparsable count or a stray positional argument must exit(2)
// naming the offender on stderr -- never silently run the default
// configuration (that is how wrong bench numbers get committed). Death
// tests, since the contract IS the exit.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace vcdn::bench {
namespace {

// argv helper: gtest death tests re-exec the statement in a child, so
// building argv inline per call keeps each case self-contained.
BenchFlags Parse(std::vector<std::string> args,
                 const std::vector<std::string>& extra = {}) {
  std::vector<char*> argv;
  static std::string prog = "bench_under_test";
  argv.push_back(prog.data());
  for (std::string& arg : args) {
    argv.push_back(arg.data());
  }
  return FlagsFromArgs(static_cast<int>(argv.size()), argv.data(), extra);
}

TEST(BenchFlagsTest, ParsesTheSharedFlags) {
  BenchFlags flags = Parse({"--threads", "8", "--repeat", "3", "--batch", "32"});
  EXPECT_EQ(flags.threads, 8u);
  EXPECT_EQ(flags.repeat, 3u);
  EXPECT_EQ(flags.batch, 32u);
}

TEST(BenchFlagsTest, ObsFlagsAreAcceptedAndLeftForBenchObs) {
  BenchFlags flags = Parse({"--obs-json", "/tmp/x.json", "--obs-series", "/tmp/x.jsonl",
                            "--flight", "4096", "--post-mortem", "/tmp/pm.jsonl"});
  EXPECT_EQ(flags.threads, 0u);  // defaults untouched
}

TEST(BenchFlagsTest, ExtraValueFlagsAreAccepted) {
  BenchFlags flags = Parse({"--out", "/tmp/bench.json", "--threads", "2"}, {"--out"});
  EXPECT_EQ(flags.threads, 2u);
}

TEST(BenchFlagsTest, UnknownFlagExitsNamingTheOffender) {
  EXPECT_EXIT(Parse({"--thread", "8"}), testing::ExitedWithCode(2),
              "unknown flag '--thread'");
}

TEST(BenchFlagsTest, ExtraFlagOfAnotherBenchIsStillUnknownHere) {
  // --out is only valid for benches that declare it.
  EXPECT_EXIT(Parse({"--out", "/tmp/x.json"}), testing::ExitedWithCode(2),
              "unknown flag '--out'");
}

TEST(BenchFlagsTest, MissingValueExits) {
  EXPECT_EXIT(Parse({"--threads"}), testing::ExitedWithCode(2),
              "missing its value");
}

TEST(BenchFlagsTest, UnparsableCountExits) {
  EXPECT_EXIT(Parse({"--repeat", "three"}), testing::ExitedWithCode(2),
              "invalid value 'three' for flag '--repeat'");
  EXPECT_EXIT(Parse({"--flight", "-1"}), testing::ExitedWithCode(2),
              "invalid value '-1' for flag '--flight'");
}

TEST(BenchFlagsTest, PositionalArgumentExits) {
  EXPECT_EXIT(Parse({"traces.bin"}), testing::ExitedWithCode(2),
              "unexpected positional argument 'traces.bin'");
}

TEST(BenchFlagsTest, RepeatAndBatchClampToAtLeastOne) {
  BenchFlags flags = Parse({"--repeat", "0", "--batch", "0"});
  EXPECT_EQ(flags.repeat, 1u);
  EXPECT_EQ(flags.batch, 1u);
}

// --- --scale: first-class workload-scale flag ------------------------------

TEST(BenchScaleFlagTest, ScaleFlagParses) {
  EXPECT_DOUBLE_EQ(Parse({"--scale", "0.5"}).scale, 0.5);
  EXPECT_DOUBLE_EQ(Parse({}).scale, 0.0);  // 0 = "not given"
}

TEST(BenchScaleFlagTest, BadScaleValuesExit) {
  // A scale that isn't a positive finite number must exit(2), not clamp:
  // a silently-corrected scale produces numbers for the wrong workload.
  for (const char* bad : {"zero", "0", "-1", "nan", "inf"}) {
    EXPECT_EXIT(Parse({"--scale", bad}), testing::ExitedWithCode(2),
                std::string("invalid value '") + bad + "' for flag '--scale'");
  }
}

TEST(BenchScaleFlagTest, FlagWinsOverEnv) {
  // VCDN_BENCH_SCALE stays honored (CI lanes set it), but an explicit
  // --scale on the command line overrides it.
  ASSERT_EQ(setenv("VCDN_BENCH_SCALE", "0.1", 1), 0);
  BenchFlags with_flag = Parse({"--scale", "0.75"});
  EXPECT_DOUBLE_EQ(ResolveScale(with_flag).workload_scale, 0.75);
  BenchFlags without_flag = Parse({});
  EXPECT_DOUBLE_EQ(ResolveScale(without_flag).workload_scale, 0.1);
  ASSERT_EQ(unsetenv("VCDN_BENCH_SCALE"), 0);
}

TEST(BenchScaleFlagTest, DefaultScaleWithoutFlagOrEnv) {
  ASSERT_EQ(unsetenv("VCDN_BENCH_SCALE"), 0);
  BenchScale scale = ResolveScale(Parse({}));
  EXPECT_GT(scale.workload_scale, 0.0);
  EXPECT_EQ(scale.workload_scale, ScaleFromEnv().workload_scale);
}

}  // namespace
}  // namespace vcdn::bench
