// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/rng.h"

namespace vcdn::lp {
namespace {

TEST(SimplexTest, TrivialBoundsOnlyProblem) {
  // min 2x - 3y, x in [0, 4], y in [1, 5]; no rows -> x = 0, y = 5.
  Model m;
  m.AddVariable(0.0, 4.0, 2.0);
  m.AddVariable(1.0, 5.0, -3.0);
  Solution s = SolveModel(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -15.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVariableLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum (2, 6), objective 36 (classic Dantzig example).
  Model m;
  int32_t x = m.AddVariable(0.0, kLpInfinity, -3.0);  // minimize -obj
  int32_t y = m.AddVariable(0.0, kLpInfinity, -5.0);
  int32_t r1 = m.AddRow(-kLpInfinity, 4.0);
  m.AddCoefficient(r1, x, 1.0);
  int32_t r2 = m.AddRow(-kLpInfinity, 12.0);
  m.AddCoefficient(r2, y, 2.0);
  int32_t r3 = m.AddRow(-kLpInfinity, 18.0);
  m.AddCoefficient(r3, x, 3.0);
  m.AddCoefficient(r3, y, 2.0);
  Solution s = SolveModel(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-7);
  EXPECT_NEAR(s.primal[static_cast<size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(s.primal[static_cast<size_t>(y)], 6.0, 1e-7);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + 2y s.t. x + y == 10, x in [0, 4], y in [0, 20] -> x=4, y=6.
  Model m;
  int32_t x = m.AddVariable(0.0, 4.0, 1.0);
  int32_t y = m.AddVariable(0.0, 20.0, 2.0);
  int32_t r = m.AddRow(10.0, 10.0);
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 1.0);
  Solution s = SolveModel(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0 + 12.0, 1e-7);
  EXPECT_NEAR(s.primal[static_cast<size_t>(x)], 4.0, 1e-7);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= 1 and x >= 3 simultaneously.
  Model m;
  int32_t x = m.AddVariable(0.0, 10.0, 1.0);
  int32_t r1 = m.AddRow(-kLpInfinity, 1.0);
  m.AddCoefficient(r1, x, 1.0);
  int32_t r2 = m.AddRow(3.0, kLpInfinity);
  m.AddCoefficient(r2, x, 1.0);
  Solution s = SolveModel(m);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // min -x, x >= 0 unbounded above, single non-binding row.
  Model m;
  int32_t x = m.AddVariable(0.0, kLpInfinity, -1.0);
  int32_t y = m.AddVariable(0.0, 1.0, 0.0);
  int32_t r = m.AddRow(-kLpInfinity, 5.0);
  m.AddCoefficient(r, y, 1.0);
  (void)x;
  Solution s = SolveModel(m);
  EXPECT_EQ(s.status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, RangeRowBothSidesActive) {
  // 2 <= x + y <= 3, minimize x + 3y with x <= 1 -> x=1, y=1, obj=4.
  Model m;
  int32_t x = m.AddVariable(0.0, 1.0, 1.0);
  int32_t y = m.AddVariable(0.0, kLpInfinity, 3.0);
  int32_t r = m.AddRow(2.0, 3.0);
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 1.0);
  Solution s = SolveModel(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-7);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x + y s.t. x + y >= -3, x,y in [-5, 5] -> objective -3 (row binds).
  Model m;
  int32_t x = m.AddVariable(-5.0, 5.0, 1.0);
  int32_t y = m.AddVariable(-5.0, 5.0, 1.0);
  int32_t r = m.AddRow(-3.0, kLpInfinity);
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 1.0);
  Solution s = SolveModel(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -3.0, 1e-7);
}

TEST(SimplexTest, DegenerateVertexStillSolves) {
  // Multiple redundant constraints through the optimum.
  Model m;
  int32_t x = m.AddVariable(0.0, kLpInfinity, -1.0);
  int32_t y = m.AddVariable(0.0, kLpInfinity, -1.0);
  for (int i = 0; i < 5; ++i) {
    int32_t r = m.AddRow(-kLpInfinity, 10.0);
    m.AddCoefficient(r, x, 1.0);
    m.AddCoefficient(r, y, 1.0);
  }
  int32_t r = m.AddRow(-kLpInfinity, 10.0);
  m.AddCoefficient(r, x, 2.0);
  m.AddCoefficient(r, y, 1.0);
  Solution s = SolveModel(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -10.0, 1e-7);
}

// Brute-force LP reference for tiny problems: evaluate all basic solutions of
// the row-intersection structure by sampling a fine grid over the (bounded)
// box and keeping feasible points. Coarse but sufficient as a sanity oracle
// for 2-variable problems.
double GridReference(const Model& m, const CompiledModel& c, double lo, double hi, int steps) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i <= steps; ++i) {
    for (int j = 0; j <= steps; ++j) {
      double x = lo + (hi - lo) * i / steps;
      double y = lo + (hi - lo) * j / steps;
      if (x < c.column_lower[0] || x > c.column_upper[0] || y < c.column_lower[1] ||
          y > c.column_upper[1]) {
        continue;
      }
      bool feasible = true;
      for (int32_t r = 0; r < c.num_rows && feasible; ++r) {
        double activity = 0.0;
        // Dense evaluation over the two columns.
        for (int32_t col = 0; col < 2; ++col) {
          double v = col == 0 ? x : y;
          for (auto k = static_cast<size_t>(c.column_start[static_cast<size_t>(col)]);
               k < static_cast<size_t>(c.column_start[static_cast<size_t>(col) + 1]); ++k) {
            if (c.row_index[k] == r) {
              activity += c.value[k] * v;
            }
          }
        }
        feasible = activity >= c.row_lower[static_cast<size_t>(r)] - 1e-9 &&
                   activity <= c.row_upper[static_cast<size_t>(r)] + 1e-9;
      }
      if (feasible) {
        best = std::min(best, c.objective[0] * x + c.objective[1] * y);
      }
    }
  }
  (void)m;
  return best;
}

TEST(SimplexTest, PropertyRandomTwoVariableLpsMatchGridOracle) {
  util::Pcg32 rng(13);
  int solved = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Model m;
    m.AddVariable(0.0, 10.0, rng.NextDouble() * 4.0 - 2.0);
    m.AddVariable(0.0, 10.0, rng.NextDouble() * 4.0 - 2.0);
    int rows = 1 + static_cast<int>(rng.NextBounded(4));
    for (int r = 0; r < rows; ++r) {
      // a*x + b*y <= c with a,b in [-1, 2], c in [1, 12].
      int32_t row = m.AddRow(-kLpInfinity, 1.0 + rng.NextDouble() * 11.0);
      m.AddCoefficient(row, 0, rng.NextDouble() * 3.0 - 1.0);
      m.AddCoefficient(row, 1, rng.NextDouble() * 3.0 - 1.0);
    }
    CompiledModel c = m.Compile();
    Solution s = SolveModel(m);
    if (s.status != SolveStatus::kOptimal) {
      continue;  // grid oracle cannot confirm unbounded/infeasible cases
    }
    ++solved;
    double reference = GridReference(m, c, 0.0, 10.0, 200);
    ASSERT_TRUE(std::isfinite(reference));
    // Simplex must be at least as good as the grid (grid is feasible-only),
    // and not better than the grid by more than the grid resolution allows.
    EXPECT_LE(s.objective, reference + 1e-6) << "trial " << trial;
    EXPECT_GE(s.objective, reference - 0.2) << "trial " << trial;
  }
  EXPECT_GT(solved, 20);
}

TEST(SimplexTest, MediumRandomSparseProblemSolves) {
  // A larger random feasible LP: min sum x_i s.t. random cover rows >= 1.
  util::Pcg32 rng(99);
  Model m;
  constexpr int kVars = 200;
  constexpr int kRows = 120;
  for (int j = 0; j < kVars; ++j) {
    m.AddVariable(0.0, 1.0, 0.5 + rng.NextDouble());
  }
  for (int r = 0; r < kRows; ++r) {
    int32_t row = m.AddRow(1.0, kLpInfinity);
    for (int k = 0; k < 5; ++k) {
      m.AddCoefficient(row, static_cast<int32_t>(rng.NextBounded(kVars)), 1.0);
    }
  }
  Solution s = SolveModel(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_GT(s.objective, 0.0);
  // All rows must be satisfied at the solution.
  for (size_t r = 0; r < static_cast<size_t>(kRows); ++r) {
    EXPECT_GE(s.row_activity[r], 1.0 - 1e-6);
  }
}

TEST(SimplexTest, FreeVariableSolves) {
  // min x^+ ... a free variable pinned only by an equality row:
  // x free, x + y == 3, y in [0, 1], min 2x + y -> y = 1, x = 2.
  Model m;
  int32_t x = m.AddVariable(-kLpInfinity, kLpInfinity, 2.0);
  int32_t y = m.AddVariable(0.0, 1.0, 1.0);
  int32_t r = m.AddRow(3.0, 3.0);
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 1.0);
  Solution s = SolveModel(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-7);
  EXPECT_NEAR(s.primal[static_cast<size_t>(x)], 2.0, 1e-7);
}

TEST(SimplexTest, FreeVariableCanGoNegative) {
  // x free, x + y == -2, y in [0, 4], min x + 0.5y -> minimize x means
  // maximize y: y = 4, x = -6.
  Model m;
  int32_t x = m.AddVariable(-kLpInfinity, kLpInfinity, 1.0);
  int32_t y = m.AddVariable(0.0, 4.0, 0.5);
  int32_t r = m.AddRow(-2.0, -2.0);
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 1.0);
  Solution s = SolveModel(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.primal[static_cast<size_t>(x)], -6.0, 1e-7);
  EXPECT_NEAR(s.objective, -4.0, 1e-7);
}

TEST(SimplexTest, PhaseOneFromInfeasibleEqualities) {
  // A chain of equalities that the all-at-lower start violates badly:
  // x1 + x2 == 10, x2 + x3 == 8, x3 + x1 == 6 -> (4, 6, 2); min sum = 12.
  Model m;
  int32_t x1 = m.AddVariable(0.0, 100.0, 1.0);
  int32_t x2 = m.AddVariable(0.0, 100.0, 1.0);
  int32_t x3 = m.AddVariable(0.0, 100.0, 1.0);
  int32_t r1 = m.AddRow(10.0, 10.0);
  m.AddCoefficient(r1, x1, 1.0);
  m.AddCoefficient(r1, x2, 1.0);
  int32_t r2 = m.AddRow(8.0, 8.0);
  m.AddCoefficient(r2, x2, 1.0);
  m.AddCoefficient(r2, x3, 1.0);
  int32_t r3 = m.AddRow(6.0, 6.0);
  m.AddCoefficient(r3, x3, 1.0);
  m.AddCoefficient(r3, x1, 1.0);
  Solution s = SolveModel(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.primal[static_cast<size_t>(x1)], 4.0, 1e-6);
  EXPECT_NEAR(s.primal[static_cast<size_t>(x2)], 6.0, 1e-6);
  EXPECT_NEAR(s.primal[static_cast<size_t>(x3)], 2.0, 1e-6);
}

TEST(SimplexTest, FrequentResidualChecksDoNotChangeResult) {
  // Exercise the refactorization path by checking residuals every iteration.
  SimplexOptions options;
  options.residual_check_interval = 1;
  util::Pcg32 rng(55);
  Model m;
  constexpr int kVars = 60;
  for (int j = 0; j < kVars; ++j) {
    m.AddVariable(0.0, 1.0, 0.5 + rng.NextDouble());
  }
  for (int r = 0; r < 40; ++r) {
    int32_t row = m.AddRow(1.0, kLpInfinity);
    for (int k = 0; k < 4; ++k) {
      m.AddCoefficient(row, static_cast<int32_t>(rng.NextBounded(kVars)), 1.0);
    }
  }
  Solution fast = SolveModel(m);
  Solution checked = SolveModel(m, options);
  ASSERT_EQ(fast.status, SolveStatus::kOptimal);
  ASSERT_EQ(checked.status, SolveStatus::kOptimal);
  EXPECT_NEAR(fast.objective, checked.objective, 1e-6);
}

TEST(SimplexTest, IterationLimitReported) {
  SimplexOptions options;
  options.max_iterations = 2;
  Model m;
  // Needs more than 2 iterations to finish.
  for (int j = 0; j < 10; ++j) {
    m.AddVariable(0.0, kLpInfinity, -1.0);
  }
  for (int r = 0; r < 10; ++r) {
    int32_t row = m.AddRow(-kLpInfinity, 5.0);
    m.AddCoefficient(row, r, 1.0);
    m.AddCoefficient(row, (r + 1) % 10, 1.0);
  }
  Solution s = SolveModel(m, options);
  EXPECT_EQ(s.status, SolveStatus::kIterationLimit);
  EXPECT_EQ(s.stats.iterations, 2);
}

TEST(SimplexTest, StatsPopulatedOnOptimalSolve) {
  Model m;
  int32_t x = m.AddVariable(0.0, 10.0, -1.0);
  int32_t y = m.AddVariable(0.0, 10.0, -2.0);
  int32_t row = m.AddRow(-kLpInfinity, 12.0);
  m.AddCoefficient(row, x, 1.0);
  m.AddCoefficient(row, y, 1.0);
  Solution s = SolveModel(m);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_GT(s.stats.iterations, 0);
  EXPECT_GE(s.stats.refactorizations, 0);
}

TEST(SimplexTest, SolveAccumulatesRegistryCounters) {
  obs::MetricsRegistry registry;
  SimplexOptions options;
  options.metrics = &registry;
  Model m;
  int32_t x = m.AddVariable(0.0, 5.0, -1.0);
  int32_t row = m.AddRow(-kLpInfinity, 3.0);
  m.AddCoefficient(row, x, 1.0);
  Solution first = SolveModel(m, options);
  EXPECT_EQ(first.status, SolveStatus::kOptimal);
  Solution second = SolveModel(m, options);
  EXPECT_EQ(second.status, SolveStatus::kOptimal);
  EXPECT_EQ(registry.CounterValue("lp.simplex.solves_total"), 2u);
  EXPECT_EQ(registry.CounterValue("lp.simplex.iterations_total"),
            static_cast<uint64_t>(first.stats.iterations + second.stats.iterations));
}

TEST(SimplexTest, EmptyModelIsOptimalZero) {
  Model m;
  Solution s = SolveModel(m);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

}  // namespace
}  // namespace vcdn::lp
