// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Wire-protocol round-trip properties: encode -> decode is the identity for
// randomized frames, a decoder fed one byte at a time reassembles the exact
// same stream (TCP gets to cut frames anywhere), and WireBuffer's grow-once
// bookkeeping holds through compaction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "src/net/protocol.h"
#include "src/net/wire_buffer.h"

namespace vcdn::net {
namespace {

RequestFrame RandomRequest(std::mt19937_64& rng) {
  RequestFrame frame;
  frame.request_id = rng();
  frame.video = rng();
  frame.byte_begin = rng() % (1ull << 40);
  frame.byte_end = frame.byte_begin + rng() % (1ull << 30);
  frame.arrival_time = static_cast<double>(rng() % 1000000) / 1000.0;
  return frame;
}

ResponseFrame RandomResponse(std::mt19937_64& rng) {
  ResponseFrame frame;
  frame.request_id = rng();
  frame.requested_bytes = rng() % (1ull << 40);
  frame.decision = static_cast<uint8_t>(rng() % 3);
  frame.tier = static_cast<uint8_t>(rng() % 4);
  frame.hit_chunks = static_cast<uint32_t>(rng());
  frame.filled_chunks = static_cast<uint32_t>(rng());
  frame.evicted_chunks = static_cast<uint32_t>(rng());
  return frame;
}

void ExpectEqual(const RequestFrame& a, const RequestFrame& b) {
  EXPECT_EQ(a.request_id, b.request_id);
  EXPECT_EQ(a.video, b.video);
  EXPECT_EQ(a.byte_begin, b.byte_begin);
  EXPECT_EQ(a.byte_end, b.byte_end);
  EXPECT_EQ(a.arrival_time, b.arrival_time);
}

void ExpectEqual(const ResponseFrame& a, const ResponseFrame& b) {
  EXPECT_EQ(a.request_id, b.request_id);
  EXPECT_EQ(a.requested_bytes, b.requested_bytes);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.tier, b.tier);
  EXPECT_EQ(a.hit_chunks, b.hit_chunks);
  EXPECT_EQ(a.filled_chunks, b.filled_chunks);
  EXPECT_EQ(a.evicted_chunks, b.evicted_chunks);
}

TEST(NetProtocolTest, RequestRoundTripProperty) {
  std::mt19937_64 rng(20260808);
  for (int i = 0; i < 2000; ++i) {
    RequestFrame frame = RandomRequest(rng);
    WireBuffer buf;
    AppendRequest(buf, frame);
    ASSERT_EQ(buf.ReadableBytes(), kRequestFrameBytes);
    DecodedFrame decoded;
    util::Result<size_t> n = DecodeFrame(buf, &decoded);
    ASSERT_TRUE(n.ok()) << n.status().message();
    ASSERT_EQ(n.value(), kRequestFrameBytes);
    ASSERT_EQ(decoded.type, FrameType::kRequest);
    ExpectEqual(decoded.request, frame);
  }
}

TEST(NetProtocolTest, ResponseRoundTripProperty) {
  std::mt19937_64 rng(8082026);
  for (int i = 0; i < 2000; ++i) {
    ResponseFrame frame = RandomResponse(rng);
    WireBuffer buf;
    AppendResponse(buf, frame);
    ASSERT_EQ(buf.ReadableBytes(), kResponseFrameBytes);
    DecodedFrame decoded;
    util::Result<size_t> n = DecodeFrame(buf, &decoded);
    ASSERT_TRUE(n.ok()) << n.status().message();
    ASSERT_EQ(n.value(), kResponseFrameBytes);
    ASSERT_EQ(decoded.type, FrameType::kResponse);
    ExpectEqual(decoded.response, frame);
  }
}

// TCP may deliver a frame in any fragmentation; the streaming decoder must
// reassemble the identical sequence when fed one byte at a time.
TEST(NetProtocolTest, ByteAtATimeReassembly) {
  std::mt19937_64 rng(42);
  std::vector<RequestFrame> requests;
  std::vector<ResponseFrame> responses;
  WireBuffer encoded;
  for (int i = 0; i < 50; ++i) {
    if (rng() % 2 == 0) {
      requests.push_back(RandomRequest(rng));
      AppendRequest(encoded, requests.back());
    } else {
      responses.push_back(RandomResponse(rng));
      AppendResponse(encoded, responses.back());
    }
  }

  WireBuffer stream;
  size_t next_request = 0;
  size_t next_response = 0;
  DecodedFrame decoded;
  for (size_t i = 0; i < encoded.ReadableBytes(); ++i) {
    stream.Append(encoded.ReadPtr() + i, 1);
    for (;;) {
      util::Result<size_t> n = DecodeFrame(stream, &decoded);
      ASSERT_TRUE(n.ok()) << n.status().message();
      if (n.value() == 0) {
        break;
      }
      if (decoded.type == FrameType::kRequest) {
        ASSERT_LT(next_request, requests.size());
        ExpectEqual(decoded.request, requests[next_request++]);
      } else {
        ASSERT_LT(next_response, responses.size());
        ExpectEqual(decoded.response, responses[next_response++]);
      }
    }
  }
  EXPECT_EQ(next_request, requests.size());
  EXPECT_EQ(next_response, responses.size());
  EXPECT_TRUE(stream.empty());
}

// Random split points (not just single bytes): chop the stream into chunks
// of random sizes and decode chunk by chunk.
TEST(NetProtocolTest, RandomSplitReassembly) {
  std::mt19937_64 rng(7);
  std::vector<RequestFrame> frames;
  WireBuffer encoded;
  for (int i = 0; i < 200; ++i) {
    frames.push_back(RandomRequest(rng));
    AppendRequest(encoded, frames.back());
  }
  WireBuffer stream;
  size_t offset = 0;
  size_t next = 0;
  DecodedFrame decoded;
  while (offset < encoded.ReadableBytes()) {
    const size_t chunk = std::min<size_t>(1 + rng() % 97, encoded.ReadableBytes() - offset);
    stream.Append(encoded.ReadPtr() + offset, chunk);
    offset += chunk;
    for (;;) {
      util::Result<size_t> n = DecodeFrame(stream, &decoded);
      ASSERT_TRUE(n.ok()) << n.status().message();
      if (n.value() == 0) {
        break;
      }
      ASSERT_LT(next, frames.size());
      ExpectEqual(decoded.request, frames[next++]);
    }
  }
  EXPECT_EQ(next, frames.size());
}

TEST(NetProtocolTest, WireBufferGrowOnce) {
  WireBuffer buf(64);
  const size_t initial = buf.capacity();
  EXPECT_EQ(initial, 64u);
  // A steady produce/consume cycle within capacity never grows the buffer.
  std::vector<uint8_t> chunk(48, 0xAB);
  for (int i = 0; i < 1000; ++i) {
    buf.Append(chunk.data(), chunk.size());
    buf.ConsumeRead(chunk.size());
  }
  EXPECT_EQ(buf.capacity(), initial);

  // Partial consumption forces compaction, still without growth while the
  // working set fits.
  buf.Append(chunk.data(), 32);
  buf.ConsumeRead(16);
  buf.Append(chunk.data(), 40);  // 16 unread + 40 new = 56 <= 64
  EXPECT_EQ(buf.capacity(), initial);
  EXPECT_EQ(buf.ReadableBytes(), 56u);
  buf.ConsumeRead(56);
  EXPECT_TRUE(buf.empty());
}

TEST(NetProtocolTest, WireBufferCompactPreservesBytes) {
  WireBuffer buf(32);
  uint8_t data[24];
  for (size_t i = 0; i < sizeof(data); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  buf.Append(data, sizeof(data));
  buf.ConsumeRead(10);
  buf.Compact();
  ASSERT_EQ(buf.ReadableBytes(), 14u);
  for (size_t i = 0; i < 14; ++i) {
    EXPECT_EQ(buf.ReadPtr()[i], static_cast<uint8_t>(i + 10));
  }
}

}  // namespace
}  // namespace vcdn::net
