// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/util/str_util.h"

#include <gtest/gtest.h>

namespace vcdn::util {
namespace {

TEST(HumanBytesTest, Units) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(17), "17 B");
  EXPECT_EQ(HumanBytes(1024), "1.0 KiB");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanBytes(2ull << 20), "2.0 MiB");
  EXPECT_EQ(HumanBytes(1ull << 40), "1.0 TiB");
}

TEST(FormatDoubleTest, Decimals) {
  EXPECT_EQ(FormatDouble(0.73456, 2), "0.73");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
}

TEST(FormatPercentTest, Basic) {
  EXPECT_EQ(FormatPercent(0.127), "12.7%");
  EXPECT_EQ(FormatPercent(0.5, 0), "50%");
  EXPECT_EQ(FormatPercent(1.0, 2), "100.00%");
}

TEST(SplitStringTest, KeepsEmptyFields) {
  auto fields = SplitString("a,b,,c", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "c");
}

TEST(SplitStringTest, EmptyInputYieldsOneField) {
  auto fields = SplitString("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(ParseTest, Doubles) {
  double d = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_TRUE(ParseDouble("-0.25", &d));
  EXPECT_DOUBLE_EQ(d, -0.25);
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("abc", &d));
  EXPECT_FALSE(ParseDouble("1.5x", &d));
}

TEST(ParseTest, Uint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, 18446744073709551615ull);
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12 ", &v));
}

TEST(ParseTest, Int64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("4.2", &v));
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "2"});
  t.AddRow({"long-name", "123"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace vcdn::util
