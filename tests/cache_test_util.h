// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Shared helpers for cache algorithm tests.

#ifndef VCDN_TESTS_CACHE_TEST_UTIL_H_
#define VCDN_TESTS_CACHE_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "src/core/cache_algorithm.h"
#include "src/trace/request.h"

namespace vcdn::testing {

// Chunk size used by SmallConfig and (by default) ChunkRequest: small so
// tests read naturally in chunk units.
inline constexpr uint64_t kTestChunkBytes = 1024;

// Chunk-granular request builder: requests chunks [c0, c1] of `video` at
// time t, given the cache's chunk size.
inline trace::Request ChunkRequest(double t, trace::VideoId video, uint32_t c0, uint32_t c1,
                                   uint64_t chunk_bytes = kTestChunkBytes) {
  trace::Request r;
  r.arrival_time = t;
  r.video = video;
  r.byte_begin = static_cast<uint64_t>(c0) * chunk_bytes;
  r.byte_end = static_cast<uint64_t>(c1 + 1) * chunk_bytes - 1;
  return r;
}

// A tiny config: small chunks so tests are readable in chunk units.
inline core::CacheConfig SmallConfig(uint64_t capacity_chunks, double alpha = 1.0) {
  core::CacheConfig config;
  config.chunk_bytes = kTestChunkBytes;
  config.disk_capacity_chunks = capacity_chunks;
  config.alpha_f2r = alpha;
  return config;
}

// Builds a time-ordered trace from chunk-granular requests described as
// {t, video, c0, c1}.
struct ChunkReq {
  double t;
  trace::VideoId video;
  uint32_t c0;
  uint32_t c1;
};

inline trace::Trace MakeTrace(const std::vector<ChunkReq>& reqs,
                              uint64_t chunk_bytes = 1024) {
  trace::Trace trace;
  for (const ChunkReq& cr : reqs) {
    trace.requests.push_back(ChunkRequest(cr.t, cr.video, cr.c0, cr.c1, chunk_bytes));
  }
  trace.duration = reqs.empty() ? 0.0 : reqs.back().t + 1.0;
  return trace;
}

}  // namespace vcdn::testing

#endif  // VCDN_TESTS_CACHE_TEST_UTIL_H_
