// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Tests for Cafe's proactive caching mode (Sec. 10 "proactive caching for
// spare ingress"): off-peak prefetch of popular uncached chunks.

#include <gtest/gtest.h>

#include "src/core/cafe_cache.h"
#include "src/sim/replay.h"
#include "tests/cache_test_util.h"

namespace vcdn::core {
namespace {

using ::vcdn::testing::ChunkRequest;
using ::vcdn::testing::SmallConfig;

CafeOptions ProactiveOptions() {
  CafeOptions options;
  options.proactive = true;
  options.proactive_rate_threshold = 0.6;
  options.proactive_fills_per_request = 2;
  return options;
}

TEST(ProactiveCafeTest, DisabledByDefault) {
  CafeCache cache(SmallConfig(100, 2.0));
  cache.HandleRequest(ChunkRequest(1.0, 1, 0, 1));
  auto outcome = cache.HandleRequest(ChunkRequest(2.0, 1, 0, 1));
  EXPECT_EQ(outcome.proactive_filled_chunks, 0u);
}

TEST(ProactiveCafeTest, PrefetchesDuringOffPeak) {
  // alpha = 4: strict admission keeps the one-shot tail out of the cache but
  // in the popularity history -- exactly the spare-ingress opportunity the
  // proactive mode exploits off-peak.
  CafeOptions options = ProactiveOptions();
  // The synthetic hot set keeps the cache age artificially tiny (~0.1 s);
  // retain history long enough for candidates to survive to the off-peak
  // phase (real cache ages are hours, making the default factor fine).
  options.history_retention_factor = 1000.0;
  // Model night-time ingress as nearly free so the prefetch economics fire
  // even on this tiny synthetic workload.
  options.proactive_cost_discount = 0.05;
  CafeCache cache(SmallConfig(100, 4.0), options);
  // Peak phase: fast requests build up a peak-rate estimate; tail videos are
  // seen once each (redirected, tracked in history).
  double t = 0.0;
  for (int i = 0; i < 600; ++i) {
    t += 0.1;
    cache.HandleRequest(ChunkRequest(t, 1, 0, 1));
    if (i % 10 == 0) {
      cache.HandleRequest(ChunkRequest(t + 0.05, 50 + static_cast<trace::VideoId>(i / 10), 0, 3));
    }
  }
  // Off-peak phase: sparse requests. Rate collapses below threshold; the
  // disk has room, so popular history chunks should get prefetched.
  uint64_t proactive = 0;
  for (int i = 0; i < 200; ++i) {
    t += 30.0;
    auto outcome = cache.HandleRequest(ChunkRequest(t, 1, 0, 1));
    proactive += outcome.proactive_filled_chunks;
  }
  EXPECT_GT(proactive, 0u) << "off-peak prefetching never triggered";
}

TEST(ProactiveCafeTest, NoPrefetchAtPeakRate) {
  CafeCache cache(SmallConfig(100, 2.0), ProactiveOptions());
  // Constant-rate workload: the rate estimate equals the peak, which is
  // never below threshold * peak -> no proactive fills.
  double t = 0.0;
  uint64_t proactive = 0;
  for (int i = 0; i < 500; ++i) {
    t += 1.0;
    auto outcome =
        cache.HandleRequest(ChunkRequest(t, 1 + (i % 20), 0, 1));
    proactive += outcome.proactive_filled_chunks;
  }
  EXPECT_EQ(proactive, 0u);
}

TEST(ProactiveCafeTest, PrefetchRespectsCapacity) {
  CacheConfig config = SmallConfig(8, 2.0);
  CafeCache cache(config, ProactiveOptions());
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += 0.1;
    cache.HandleRequest(ChunkRequest(t, 1 + (i % 6), 0, 1));
  }
  for (int i = 0; i < 100; ++i) {
    t += 50.0;
    cache.HandleRequest(ChunkRequest(t, 1, 0, 1));
    ASSERT_LE(cache.used_chunks(), config.disk_capacity_chunks);
  }
}

TEST(ProactiveCafeTest, ProactiveFillsCountedAsIngress) {
  CafeCache cache(SmallConfig(100, 2.0), ProactiveOptions());
  trace::Trace trace;
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += 0.1;
    trace.requests.push_back(ChunkRequest(t, 1, 0, 1));
    if (i % 3 == 0) {
      trace.requests.push_back(ChunkRequest(t + 0.05, 9, 0, 3));
    }
  }
  for (int i = 0; i < 200; ++i) {
    t += 30.0;
    trace.requests.push_back(ChunkRequest(t, 1, 0, 1));
  }
  trace.duration = t + 1.0;
  sim::ReplayOptions options;
  options.measurement_start_fraction = 0.0;
  sim::ReplayResult result = sim::Replay(cache, trace, options);
  if (result.totals.proactive_filled_chunks > 0) {
    // filled_chunks must include the proactive ones.
    EXPECT_GE(result.totals.filled_chunks, result.totals.proactive_filled_chunks);
  }
}

}  // namespace
}  // namespace vcdn::core
