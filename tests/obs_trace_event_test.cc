// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/obs/trace_event.h"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "src/obs/metrics.h"

namespace vcdn::obs {
namespace {

// Minimal recursive-descent JSON validator: accepts exactly the RFC 8259
// grammar (objects, arrays, strings with escapes, numbers, literals). The
// tests only need a yes/no answer, not a parse tree.
class JsonValidator {
 public:
  static bool Valid(const std::string& text) {
    JsonValidator v(text);
    v.SkipSpace();
    if (!v.Value()) {
      return false;
    }
    v.SkipSpace();
    return v.pos_ == text.size();
  }

 private:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) {
      return false;
    }
    ++pos_;
    return true;
  }
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  bool String() {
    if (!Eat('"')) {
      return false;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      return false;
    }
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool Value() {
    SkipSpace();
    char c = Peek();
    if (c == '{') {
      return Object();
    }
    if (c == '[') {
      return Array();
    }
    if (c == '"') {
      return String();
    }
    if (c == 't') {
      return Literal("true");
    }
    if (c == 'f') {
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    return Number();
  }

  bool Object() {
    if (!Eat('{')) {
      return false;
    }
    SkipSpace();
    if (Eat('}')) {
      return true;
    }
    for (;;) {
      SkipSpace();
      if (!String()) {
        return false;
      }
      SkipSpace();
      if (!Eat(':') || !Value()) {
        return false;
      }
      SkipSpace();
      if (Eat('}')) {
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
    }
  }

  bool Array() {
    if (!Eat('[')) {
      return false;
    }
    SkipSpace();
    if (Eat(']')) {
      return true;
    }
    for (;;) {
      if (!Value()) {
        return false;
      }
      SkipSpace();
      if (Eat(']')) {
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
      SkipSpace();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(JsonValidatorTest, SelfCheck) {
  EXPECT_TRUE(JsonValidator::Valid(R"({"a":[1,2.5,-3e-2],"b":"x\nA","c":null})"));
  EXPECT_FALSE(JsonValidator::Valid(R"({"a":})"));
  EXPECT_FALSE(JsonValidator::Valid("[1,2"));
  EXPECT_FALSE(JsonValidator::Valid("{} extra"));
  EXPECT_FALSE(JsonValidator::Valid("\"raw\ncontrol\""));
}

TEST(TraceEventSinkTest, RecordsSpansInstantsAndCounters) {
  TraceEventSink sink;
  {
    ScopedSpan span(&sink, "work", "test");
  }
  sink.AddInstant("marker", "test");
  sink.AddCounter("series", 42.0, sink.NowMicros());
  ASSERT_EQ(sink.num_events(), 3u);
  EXPECT_EQ(sink.events()[0].phase, 'X');
  EXPECT_EQ(sink.events()[0].name, "work");
  EXPECT_GE(sink.events()[0].dur_us, 0.0);
  EXPECT_EQ(sink.events()[1].phase, 'i');
  EXPECT_EQ(sink.events()[2].phase, 'C');
  EXPECT_DOUBLE_EQ(sink.events()[2].value, 42.0);
}

TEST(TraceEventSinkTest, NullSinkScopeIsNoOp) {
  // Must not crash; VCDN_OBS_SCOPE accepts a null sink.
  VCDN_OBS_SCOPE(static_cast<TraceEventSink*>(nullptr), "nothing");
}

TEST(TraceEventSinkTest, TraceJsonIsValid) {
  TraceEventSink sink;
  { ScopedSpan span(&sink, "outer"); }
  sink.AddInstant("name with \"quotes\" and \\slashes\\", "cat\negory");
  sink.AddCounter("c", 1.25, 10.0);
  std::ostringstream out;
  sink.WriteTraceJson(out);
  std::string json = out.str();
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(TraceEventSinkTest, SnapshotRegistryEmitsCounterEventsAndJsonl) {
  MetricsRegistry registry;
  registry.GetCounter("a_total").Increment(5);
  registry.GetGauge("g").Set(2.0);

  TraceEventSink sink;
  std::ostringstream lines;
  sink.AttachSnapshotStream(&lines);
  sink.SnapshotRegistry(registry);
  registry.GetCounter("a_total").Increment(1);
  sink.SnapshotRegistry(registry);

  EXPECT_EQ(sink.num_snapshots(), 2u);
  // One 'C' event per instrument per snapshot.
  size_t counter_events = 0;
  for (const TraceEvent& e : sink.events()) {
    if (e.phase == 'C') {
      ++counter_events;
    }
  }
  EXPECT_EQ(counter_events, 4u);

  // The JSONL stream holds one self-contained JSON object per line.
  std::istringstream in(lines.str());
  std::string line;
  size_t num_lines = 0;
  while (std::getline(in, line)) {
    ++num_lines;
    EXPECT_TRUE(JsonValidator::Valid(line)) << line;
    EXPECT_NE(line.find("\"ts_us\""), std::string::npos);
    EXPECT_NE(line.find("\"a_total\""), std::string::npos);
  }
  EXPECT_EQ(num_lines, 2u);
}

TEST(TraceEventSinkTest, WriteObsJsonCombinesMetricsAndEvents) {
  MetricsRegistry registry;
  registry.GetCounter("cache.test.filled_chunks_total").Increment(7);
  TraceEventSink sink;
  { ScopedSpan span(&sink, "replay.loop"); }

  std::ostringstream out;
  WriteObsJson(out, &registry, &sink);
  std::string json = out.str();
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"cache.test.filled_chunks_total\""), std::string::npos);

  // Null sections degrade to empty, not invalid JSON.
  std::ostringstream none;
  WriteObsJson(none, nullptr, nullptr);
  EXPECT_TRUE(JsonValidator::Valid(none.str())) << none.str();
}

TEST(MetricsRegistryJsonTest, RegistryJsonIsValid) {
  MetricsRegistry registry;
  registry.GetCounter("a_total").Increment(1);
  registry.GetGauge("weird \"name\"\t").Set(-0.5);
  registry.GetHistogram("h", 0.0, 2.0, 2).Observe(1.0);
  std::ostringstream out;
  registry.WriteJson(out);
  EXPECT_TRUE(JsonValidator::Valid(out.str())) << out.str();
}

}  // namespace
}  // namespace vcdn::obs
