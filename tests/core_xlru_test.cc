// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/xlru_cache.h"

#include <gtest/gtest.h>

#include "tests/cache_test_util.h"

namespace vcdn::core {
namespace {

using ::vcdn::testing::ChunkRequest;
using ::vcdn::testing::SmallConfig;

TEST(XlruTest, FirstRequestForVideoIsRedirected) {
  XlruCache cache(SmallConfig(100));
  auto outcome = cache.HandleRequest(ChunkRequest(1.0, 7, 0, 3));
  EXPECT_EQ(outcome.decision, Decision::kRedirect);
  EXPECT_EQ(outcome.filled_chunks, 0u);
  EXPECT_EQ(cache.used_chunks(), 0u);
}

TEST(XlruTest, SecondRequestIsServedAndFilled) {
  XlruCache cache(SmallConfig(100));
  cache.HandleRequest(ChunkRequest(1.0, 7, 0, 3));
  auto outcome = cache.HandleRequest(ChunkRequest(2.0, 7, 0, 3));
  EXPECT_EQ(outcome.decision, Decision::kServe);
  EXPECT_EQ(outcome.filled_chunks, 4u);
  EXPECT_EQ(outcome.hit_chunks, 0u);
  EXPECT_EQ(cache.used_chunks(), 4u);
  EXPECT_TRUE(cache.ContainsChunk(ChunkId{7, 0}));
  EXPECT_TRUE(cache.ContainsChunk(ChunkId{7, 3}));
  EXPECT_FALSE(cache.ContainsChunk(ChunkId{7, 4}));
}

TEST(XlruTest, ThirdRequestIsAllHits) {
  XlruCache cache(SmallConfig(100));
  cache.HandleRequest(ChunkRequest(1.0, 7, 0, 3));
  cache.HandleRequest(ChunkRequest(2.0, 7, 0, 3));
  auto outcome = cache.HandleRequest(ChunkRequest(3.0, 7, 0, 3));
  EXPECT_EQ(outcome.decision, Decision::kServe);
  EXPECT_EQ(outcome.hit_chunks, 4u);
  EXPECT_EQ(outcome.filled_chunks, 0u);
}

TEST(XlruTest, PartialOverlapFillsOnlyMissing) {
  XlruCache cache(SmallConfig(100));
  cache.HandleRequest(ChunkRequest(1.0, 7, 0, 3));
  cache.HandleRequest(ChunkRequest(2.0, 7, 0, 3));
  auto outcome = cache.HandleRequest(ChunkRequest(3.0, 7, 2, 5));
  EXPECT_EQ(outcome.decision, Decision::kServe);
  EXPECT_EQ(outcome.hit_chunks, 2u);    // chunks 2, 3
  EXPECT_EQ(outcome.filled_chunks, 2u);  // chunks 4, 5
}

TEST(XlruTest, CacheAgeGrowsFromOldestChunk) {
  XlruCache cache(SmallConfig(100));
  EXPECT_DOUBLE_EQ(cache.CacheAge(5.0), 0.0);
  cache.HandleRequest(ChunkRequest(1.0, 7, 0, 0));
  cache.HandleRequest(ChunkRequest(2.0, 7, 0, 0));  // fills at t=2
  EXPECT_DOUBLE_EQ(cache.CacheAge(10.0), 8.0);
}

TEST(XlruTest, Eq5RedirectsUnpopularVideoOnceDiskFull) {
  // Capacity 4; fill it with video 1, then make video 1 hot so the cache age
  // stays small relative to a rarely requested video 2.
  CacheConfig config = SmallConfig(4, /*alpha=*/1.0);
  XlruCache cache(config);
  cache.HandleRequest(ChunkRequest(1.0, 1, 0, 3));
  cache.HandleRequest(ChunkRequest(2.0, 1, 0, 3));  // fills 4 chunks; disk full
  // Keep video 1 hot: cache age stays ~ now - 2. Video 2 seen at t=3.
  cache.HandleRequest(ChunkRequest(3.0, 2, 0, 0));  // first-seen -> redirect
  for (double t = 4.0; t < 40.0; t += 1.0) {
    auto outcome = cache.HandleRequest(ChunkRequest(t, 1, 0, 3));
    ASSERT_EQ(outcome.decision, Decision::kServe);
  }
  // Chunks of video 1 were touched at t=39, oldest at t=39 too (all touched).
  // Cache age at t=40 is 1.0; video 2's IAT is 37 > 1 -> redirect.
  auto outcome = cache.HandleRequest(ChunkRequest(40.0, 2, 0, 0));
  EXPECT_EQ(outcome.decision, Decision::kRedirect);
}

TEST(XlruTest, AlphaScalesAdmissionStrictness) {
  // Under alpha = 2 a video must be requested at a period at most half the
  // cache age; construct a video right at the boundary.
  CacheConfig strict = SmallConfig(8, /*alpha=*/2.0);
  CacheConfig lenient = SmallConfig(8, /*alpha=*/1.0);
  for (auto* config : {&strict, &lenient}) {
    XlruCache cache(*config);
    // Fill disk with video 1 (period 10).
    cache.HandleRequest(ChunkRequest(0.0, 1, 0, 7));
    cache.HandleRequest(ChunkRequest(10.0, 1, 0, 7));  // fills 8; disk full
    // Video 2 with IAT 6: seen at 14, requested again at 20.
    cache.HandleRequest(ChunkRequest(14.0, 2, 0, 0));
    // Cache age at t=20 is 20 - 10 = 10. IAT of video 2 = 6.
    //   alpha=1: 6 * 1 <= 10 -> serve.  alpha=2: 6 * 2 > 10 -> redirect.
    auto outcome = cache.HandleRequest(ChunkRequest(20.0, 2, 0, 0));
    if (config == &strict) {
      EXPECT_EQ(outcome.decision, Decision::kRedirect);
    } else {
      EXPECT_EQ(outcome.decision, Decision::kServe);
    }
  }
}

TEST(XlruTest, EvictsLeastRecentlyUsedChunks) {
  XlruCache cache(SmallConfig(4));
  cache.HandleRequest(ChunkRequest(1.0, 1, 0, 1));
  cache.HandleRequest(ChunkRequest(2.0, 1, 0, 1));  // fills chunks 1:0, 1:1
  cache.HandleRequest(ChunkRequest(3.0, 2, 0, 1));
  cache.HandleRequest(ChunkRequest(4.0, 2, 0, 1));  // fills 2:0, 2:1; disk full
  // Video 1 again -> hits, making video 2's chunks the LRU ones.
  cache.HandleRequest(ChunkRequest(5.0, 1, 0, 1));
  // A new fill for video 3 must evict video 2's chunks.
  cache.HandleRequest(ChunkRequest(6.0, 3, 0, 1));
  auto outcome = cache.HandleRequest(ChunkRequest(7.0, 3, 0, 1));
  EXPECT_EQ(outcome.decision, Decision::kServe);
  EXPECT_EQ(outcome.filled_chunks, 2u);
  EXPECT_EQ(outcome.evicted_chunks, 2u);
  EXPECT_FALSE(cache.ContainsChunk(ChunkId{2, 0}));
  EXPECT_FALSE(cache.ContainsChunk(ChunkId{2, 1}));
  EXPECT_TRUE(cache.ContainsChunk(ChunkId{1, 0}));
}

TEST(XlruTest, NeverEvictsChunksOfCurrentRequest) {
  XlruCache cache(SmallConfig(4));
  cache.HandleRequest(ChunkRequest(1.0, 1, 0, 1));
  cache.HandleRequest(ChunkRequest(2.0, 1, 0, 1));
  // Request spanning 4 chunks of video 1: hits 0-1 + fills 2-3.
  auto outcome = cache.HandleRequest(ChunkRequest(3.0, 1, 0, 3));
  EXPECT_EQ(outcome.decision, Decision::kServe);
  EXPECT_EQ(outcome.hit_chunks, 2u);
  EXPECT_EQ(outcome.filled_chunks, 2u);
  EXPECT_EQ(outcome.evicted_chunks, 0u);
  // All four present.
  for (uint32_t c = 0; c < 4; ++c) {
    EXPECT_TRUE(cache.ContainsChunk(ChunkId{1, c}));
  }
}

TEST(XlruTest, RangeWiderThanDiskIsRedirected) {
  XlruCache cache(SmallConfig(4));
  cache.HandleRequest(ChunkRequest(1.0, 1, 0, 7));
  auto outcome = cache.HandleRequest(ChunkRequest(2.0, 1, 0, 7));  // 8 chunks > 4
  EXPECT_EQ(outcome.decision, Decision::kRedirect);
  EXPECT_EQ(cache.used_chunks(), 0u);
}

TEST(XlruTest, DiskNeverExceedsCapacity) {
  XlruCache cache(SmallConfig(16));
  double t = 0.0;
  for (int round = 0; round < 50; ++round) {
    for (trace::VideoId v = 1; v <= 10; ++v) {
      t += 1.0;
      cache.HandleRequest(ChunkRequest(t, v, 0, 3));
      ASSERT_LE(cache.used_chunks(), 16u);
    }
  }
  EXPECT_EQ(cache.used_chunks(), 16u);
}

TEST(XlruTest, TrackerCleanupDropsStaleVideos) {
  XlruCache cache(SmallConfig(4, /*alpha=*/1.0));
  // Touch many one-shot videos, then advance time with a hot video.
  for (trace::VideoId v = 100; v < 200; ++v) {
    cache.HandleRequest(ChunkRequest(static_cast<double>(v - 99), v, 0, 0));
  }
  cache.HandleRequest(ChunkRequest(101.0, 1, 0, 3));
  cache.HandleRequest(ChunkRequest(102.0, 1, 0, 3));  // fill
  for (double t = 103.0; t < 300.0; t += 1.0) {
    cache.HandleRequest(ChunkRequest(t, 1, 0, 3));
  }
  // Cache age is ~1s; videos idle for >> age must have been purged.
  EXPECT_LT(cache.tracked_videos(), 10u);
}

// Property: replaying any prefix twice from a fresh cache yields identical
// decisions (the algorithm is deterministic).
TEST(XlruTest, DeterministicReplay) {
  auto run = [](std::vector<Decision>& decisions) {
    XlruCache cache(SmallConfig(8, 2.0));
    for (int i = 0; i < 200; ++i) {
      double t = static_cast<double>(i);
      trace::VideoId v = static_cast<trace::VideoId>(i % 7);
      auto outcome = cache.HandleRequest(ChunkRequest(t, v, 0, (i % 3)));
      decisions.push_back(outcome.decision);
    }
  };
  std::vector<Decision> a;
  std::vector<Decision> b;
  run(a);
  run(b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace vcdn::core
