// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Bit-identity contract of batched admission (sim::ReplayOptions::batch_size,
// core::CacheAlgorithm::HandleRequestBatch): for ANY batch size, a replay is
// indistinguishable from the unbatched batch_size=1 reference -- per-request
// outcomes in arrival order, replay totals and series, fleet digests, obs
// counter values, and fault accounting, including Resize / DropContents
// boundaries that land in the middle of a would-be batch.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/cache_algorithm.h"
#include "src/core/cache_factory.h"
#include "src/fault/fault.h"
#include "src/obs/metrics.h"
#include "src/sim/parallel_fleet.h"
#include "src/sim/replay.h"
#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"
#include "src/util/rng.h"

namespace vcdn::sim {
namespace {

// The batch sizes under test: unbatched reference, a tiny batch, two odd
// sizes that never divide the trace length, and the replay default.
const size_t kBatchSizes[] = {1, 2, 7, 16, 33};

// One compressed observable per request; a replay is summarized as the exact
// sequence of these.
struct OutcomeRecord {
  double arrival_time = 0.0;
  core::Decision decision = core::Decision::kServe;
  uint64_t hit_chunks = 0;
  uint64_t filled_chunks = 0;
  uint64_t evicted_chunks = 0;
  uint64_t requested_bytes = 0;

  bool operator==(const OutcomeRecord& other) const {
    return arrival_time == other.arrival_time && decision == other.decision &&
           hit_chunks == other.hit_chunks && filled_chunks == other.filled_chunks &&
           evicted_chunks == other.evicted_chunks && requested_bytes == other.requested_bytes;
  }
};

void ExpectTotalsEq(const ReplayTotals& a, const ReplayTotals& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.served_requests, b.served_requests);
  EXPECT_EQ(a.redirected_requests, b.redirected_requests);
  EXPECT_EQ(a.requested_bytes, b.requested_bytes);
  EXPECT_EQ(a.served_bytes, b.served_bytes);
  EXPECT_EQ(a.redirected_bytes, b.redirected_bytes);
  EXPECT_EQ(a.filled_bytes, b.filled_bytes);
  EXPECT_EQ(a.evicted_chunks, b.evicted_chunks);
  EXPECT_EQ(a.requested_chunks, b.requested_chunks);
  EXPECT_EQ(a.filled_chunks, b.filled_chunks);
  EXPECT_EQ(a.redirected_chunks, b.redirected_chunks);
}

// A small fig7-shaped fleet: all six paper server profiles, scaled down so
// the Debug/ASan lanes stay fast, with per-server decorrelated seeds.
class ReplayBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<trace::ServerProfile> profiles = trace::PaperServerProfiles(0.02);
    traces_.reserve(profiles.size());
    for (size_t i = 0; i < profiles.size(); ++i) {
      trace::WorkloadConfig workload;
      workload.profile = profiles[i];
      workload.duration_seconds = 4.0 * 86400.0;
      workload.seed = util::SplitSeed(9, i);
      traces_.push_back(trace::WorkloadGenerator(workload).Generate().trace);
    }
    config_.chunk_bytes = core::kDefaultChunkBytes;
    config_.disk_capacity_chunks = 512;
    config_.alpha_f2r = 2.0;
  }

  // Replays `kind` on trace `t` at the given batch size, returning the full
  // outcome stream and the replay result.
  std::pair<std::vector<OutcomeRecord>, ReplayResult> Run(
      core::CacheKind kind, size_t trace_index, size_t batch_size,
      const fault::FaultSchedule* faults = nullptr, obs::MetricsRegistry* metrics = nullptr) {
    auto cache = core::MakeCache(kind, config_);
    ReplayOptions options;
    options.batch_size = batch_size;
    options.faults = faults;
    options.metrics = metrics;
    std::vector<OutcomeRecord> outcomes;
    outcomes.reserve(traces_[trace_index].requests.size());
    options.on_outcome = [&](const trace::Request& request,
                             const core::RequestOutcome& outcome) {
      outcomes.push_back(OutcomeRecord{request.arrival_time, outcome.decision,
                                       outcome.hit_chunks, outcome.filled_chunks,
                                       outcome.evicted_chunks, outcome.requested_bytes});
    };
    ReplayResult result = Replay(*cache, traces_[trace_index], options);
    return {std::move(outcomes), std::move(result)};
  }

  std::vector<trace::Trace> traces_;
  core::CacheConfig config_;
};

TEST_F(ReplayBatchTest, OutcomeStreamIsIdenticalAtEveryBatchSize) {
  for (core::CacheKind kind : {core::CacheKind::kCafe, core::CacheKind::kXlru}) {
    auto [reference_outcomes, reference_result] = Run(kind, 3 /* Europe */, 1);
    ASSERT_GT(reference_outcomes.size(), 1000u);
    for (size_t batch : kBatchSizes) {
      if (batch == 1) {
        continue;
      }
      auto [outcomes, result] = Run(kind, 3, batch);
      ASSERT_EQ(outcomes.size(), reference_outcomes.size()) << "batch " << batch;
      for (size_t i = 0; i < outcomes.size(); ++i) {
        ASSERT_TRUE(outcomes[i] == reference_outcomes[i])
            << "kind " << static_cast<int>(kind) << " batch " << batch << " request " << i;
      }
      ExpectTotalsEq(result.totals, reference_result.totals);
      ExpectTotalsEq(result.steady, reference_result.steady);
      ASSERT_EQ(result.series.size(), reference_result.series.size());
    }
  }
}

TEST_F(ReplayBatchTest, FleetDigestIsIdenticalAtEveryBatchSize) {
  std::vector<FleetServer> servers;
  const core::CacheKind kinds[] = {core::CacheKind::kXlru, core::CacheKind::kCafe};
  for (size_t i = 0; i < traces_.size(); ++i) {
    servers.push_back(
        FleetServer{"server" + std::to_string(i), kinds[i % 2], config_, &traces_[i]});
  }
  uint64_t reference_digest = 0;
  for (size_t batch : kBatchSizes) {
    FleetOptions options;
    options.threads = batch % 2 == 0 ? 3 : 1;  // batching x threading cross-check
    options.replay.batch_size = batch;
    uint64_t digest = FleetDigest(RunFleet(servers, options));
    if (batch == 1) {
      reference_digest = digest;
    } else {
      EXPECT_EQ(digest, reference_digest) << "batch " << batch;
    }
  }
}

TEST_F(ReplayBatchTest, ObsCountersAreIdenticalAtEveryBatchSize) {
  // Deferring RecordOutcome to the end of a batch must not change any counter
  // value at snapshot points: batches drain before every bucket flush.
  auto filtered = [](const obs::MetricsRegistry& registry) {
    auto counters = registry.CounterSamples();
    auto gauges = registry.GaugeSamples();
    decltype(gauges) kept;
    for (const auto& sample : gauges) {
      if (sample.first == "sim.replay.requests_per_sec") {
        continue;  // wall-clock dependent by design
      }
      kept.push_back(sample);
    }
    return std::make_pair(counters, kept);
  };
  obs::MetricsRegistry reference_registry;
  Run(core::CacheKind::kCafe, 3, 1, nullptr, &reference_registry);
  auto reference = filtered(reference_registry);
  EXPECT_FALSE(reference.first.empty());
  for (size_t batch : {size_t{7}, size_t{33}}) {
    obs::MetricsRegistry registry;
    Run(core::CacheKind::kCafe, 3, batch, nullptr, &registry);
    auto got = filtered(registry);
    EXPECT_EQ(got.first, reference.first) << "batch " << batch;
    EXPECT_EQ(got.second, reference.second) << "batch " << batch;
  }
}

TEST_F(ReplayBatchTest, FaultBoundariesLandingMidBatchStayIdentical) {
  // Resize (degrade + restore), cold restart and an outage window placed at
  // arbitrary times: with batch sizes like 7 and 33 these boundaries land in
  // the middle of an accumulating batch, forcing the replay to drain early.
  const double duration = traces_[3].duration;
  fault::FaultSchedule schedule;
  fault::FaultEvent degrade;
  degrade.kind = fault::FaultKind::kDiskDegrade;
  degrade.start = duration * 0.21;
  degrade.end = duration * 0.48;
  degrade.capacity_factor = 0.5;
  schedule.Add(degrade);
  fault::FaultEvent restart;
  restart.kind = fault::FaultKind::kColdRestart;
  restart.start = duration * 0.63;
  restart.end = restart.start;
  schedule.Add(restart);
  fault::FaultEvent outage;
  outage.kind = fault::FaultKind::kEdgeOutage;
  outage.start = duration * 0.77;
  outage.end = duration * 0.81;
  schedule.Add(outage);
  ASSERT_TRUE(schedule.Validate().ok());

  auto [reference_outcomes, reference_result] = Run(core::CacheKind::kCafe, 3, 1, &schedule);
  // The schedule must actually bite for this test to mean anything.
  ASSERT_EQ(reference_result.faults.cold_restarts, 1u);
  ASSERT_GE(reference_result.faults.resize_events, 2u);
  ASSERT_GT(reference_result.faults.unavailable_requests, 0u);

  for (size_t batch : kBatchSizes) {
    if (batch == 1) {
      continue;
    }
    auto [outcomes, result] = Run(core::CacheKind::kCafe, 3, batch, &schedule);
    ASSERT_EQ(outcomes.size(), reference_outcomes.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      ASSERT_TRUE(outcomes[i] == reference_outcomes[i]) << "batch " << batch << " request " << i;
    }
    ExpectTotalsEq(result.totals, reference_result.totals);
    EXPECT_EQ(result.faults.cold_restarts, reference_result.faults.cold_restarts);
    EXPECT_EQ(result.faults.resize_events, reference_result.faults.resize_events);
    EXPECT_EQ(result.faults.resize_evicted_chunks, reference_result.faults.resize_evicted_chunks);
    EXPECT_EQ(result.faults.dropped_chunks, reference_result.faults.dropped_chunks);
    EXPECT_EQ(result.faults.unavailable_requests, reference_result.faults.unavailable_requests);
    EXPECT_EQ(result.faults.unavailable_bytes, reference_result.faults.unavailable_bytes);
    EXPECT_EQ(result.availability, reference_result.availability);
  }
}

TEST_F(ReplayBatchTest, BatchSizeZeroFallsBackToUnbatched) {
  auto [reference_outcomes, reference_result] = Run(core::CacheKind::kCafe, 0, 1);
  auto [outcomes, result] = Run(core::CacheKind::kCafe, 0, 0);
  ASSERT_EQ(outcomes.size(), reference_outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i] == reference_outcomes[i]) << "request " << i;
  }
  ExpectTotalsEq(result.totals, reference_result.totals);
}

}  // namespace
}  // namespace vcdn::sim
