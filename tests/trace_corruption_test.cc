// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Corruption corpus for the trace I/O layer: every crafted-bad input must
// come back as a non-OK status -- quickly and without absurd allocations --
// and never as a quietly wrong Trace.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>

#include "src/trace/trace_io.h"

namespace vcdn::trace {
namespace {

Trace SampleTrace() {
  Trace t;
  t.duration = 100.0;
  t.requests.push_back(Request{1.5, 42, 0, 1023});
  t.requests.push_back(Request{2.25, 7, 4096, 8191});
  t.requests.push_back(Request{99.0, 42, 0, 0});
  return t;
}

std::string SerializeBinary(const Trace& trace) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_TRUE(WriteBinary(trace, stream).ok());
  return stream.str();
}

util::Result<Trace> ReadBinaryString(const std::string& data) {
  std::stringstream stream(data, std::ios::in | std::ios::binary);
  return ReadBinary(stream);
}

// Builds just the 24-byte header (magic, count, duration) with no records.
std::string HeaderOnly(uint64_t count, double duration) {
  std::string data = "VCDNTRC1";
  data.append(reinterpret_cast<const char*>(&count), sizeof(count));
  data.append(reinterpret_cast<const char*>(&duration), sizeof(duration));
  return data;
}

TEST(TraceCorruptionTest, TruncatedMagic) {
  std::string data = SerializeBinary(SampleTrace());
  auto result = ReadBinaryString(data.substr(0, 5));
  EXPECT_FALSE(result.ok());
}

TEST(TraceCorruptionTest, TruncatedHeader) {
  std::string data = SerializeBinary(SampleTrace());
  // Magic intact, count/duration cut short.
  auto result = ReadBinaryString(data.substr(0, 12));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(TraceCorruptionTest, TruncatedRecordStream) {
  std::string data = SerializeBinary(SampleTrace());
  // Cut mid-record: header promises 3 records, payload holds 2.5.
  auto result = ReadBinaryString(data.substr(0, data.size() - 16));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(TraceCorruptionTest, AbsurdCountWithEmptyPayloadFailsFastWithoutAllocating) {
  // The regression this file exists for: a 2^40 record count and zero
  // payload used to drive a 32 TiB vector resize. It must now fail with
  // DataLossError well under a second.
  const std::string data = HeaderOnly(uint64_t{1} << 40, 10.0);
  const auto start = std::chrono::steady_clock::now();
  auto result = ReadBinaryString(data);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
  EXPECT_LT(elapsed, 1.0);
}

TEST(TraceCorruptionTest, CountLargerThanPayload) {
  Trace trace = SampleTrace();
  std::string data = SerializeBinary(trace);
  // Patch the count field (bytes 8..15) to promise one extra record.
  uint64_t bogus = trace.requests.size() + 1;
  std::memcpy(data.data() + 8, &bogus, sizeof(bogus));
  auto result = ReadBinaryString(data);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(TraceCorruptionTest, NonFiniteDurationInHeader) {
  for (double d : {std::numeric_limits<double>::quiet_NaN(),
                   std::numeric_limits<double>::infinity(), -1.0}) {
    auto result = ReadBinaryString(HeaderOnly(0, d));
    EXPECT_FALSE(result.ok()) << "duration=" << d;
  }
}

TEST(TraceCorruptionTest, NanArrivalTimeInRecord) {
  Trace trace = SampleTrace();
  trace.requests[1].arrival_time = std::numeric_limits<double>::quiet_NaN();
  std::string data = SerializeBinary(trace);  // writer does not validate
  auto result = ReadBinaryString(data);
  EXPECT_FALSE(result.ok());
}

TEST(TraceCorruptionTest, InvertedByteRangeInRecord) {
  Trace trace = SampleTrace();
  trace.requests[0].byte_begin = 5000;
  trace.requests[0].byte_end = 100;
  auto result = ReadBinaryString(SerializeBinary(trace));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(TraceCorruptionTest, EmptyTraceRoundTrips) {
  Trace empty;
  empty.duration = 0.0;
  auto result = ReadBinaryString(SerializeBinary(empty));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().requests.empty());
}

TEST(TraceCorruptionCsvTest, RejectsNanArrivalTimeWithLineNumber) {
  std::stringstream stream(
      "arrival_time,video,byte_begin,byte_end\n"
      "1.0,1,0,10\n"
      "nan,2,0,10\n");
  auto result = ReadCsv(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
}

TEST(TraceCorruptionCsvTest, RejectsInfiniteArrivalTime) {
  std::stringstream stream(
      "arrival_time,video,byte_begin,byte_end\n"
      "inf,1,0,10\n");
  auto result = ReadCsv(stream);
  EXPECT_FALSE(result.ok());
}

TEST(TraceCorruptionCsvTest, RejectsNonFiniteDurationComment) {
  std::stringstream stream(
      "arrival_time,video,byte_begin,byte_end\n"
      "# duration_seconds=nan\n"
      "1.0,1,0,10\n");
  auto result = ReadCsv(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace vcdn::trace
