// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Corruption corpus for the trace I/O layer: every crafted-bad input must
// come back as a non-OK status -- quickly and without absurd allocations --
// and never as a quietly wrong Trace.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "src/trace/trace_file.h"
#include "src/trace/trace_io.h"

namespace vcdn::trace {
namespace {

Trace SampleTrace() {
  Trace t;
  t.duration = 100.0;
  t.requests.push_back(Request{1.5, 42, 0, 1023});
  t.requests.push_back(Request{2.25, 7, 4096, 8191});
  t.requests.push_back(Request{99.0, 42, 0, 0});
  return t;
}

std::string SerializeBinary(const Trace& trace) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_TRUE(WriteBinary(trace, stream).ok());
  return stream.str();
}

util::Result<Trace> ReadBinaryString(const std::string& data) {
  std::stringstream stream(data, std::ios::in | std::ios::binary);
  return ReadBinary(stream);
}

// Builds just the 24-byte header (magic, count, duration) with no records.
std::string HeaderOnly(uint64_t count, double duration) {
  std::string data = "VCDNTRC1";
  data.append(reinterpret_cast<const char*>(&count), sizeof(count));
  data.append(reinterpret_cast<const char*>(&duration), sizeof(duration));
  return data;
}

TEST(TraceCorruptionTest, TruncatedMagic) {
  std::string data = SerializeBinary(SampleTrace());
  auto result = ReadBinaryString(data.substr(0, 5));
  EXPECT_FALSE(result.ok());
}

TEST(TraceCorruptionTest, TruncatedHeader) {
  std::string data = SerializeBinary(SampleTrace());
  // Magic intact, count/duration cut short.
  auto result = ReadBinaryString(data.substr(0, 12));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(TraceCorruptionTest, TruncatedRecordStream) {
  std::string data = SerializeBinary(SampleTrace());
  // Cut mid-record: header promises 3 records, payload holds 2.5.
  auto result = ReadBinaryString(data.substr(0, data.size() - 16));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(TraceCorruptionTest, AbsurdCountWithEmptyPayloadFailsFastWithoutAllocating) {
  // The regression this file exists for: a 2^40 record count and zero
  // payload used to drive a 32 TiB vector resize. It must now fail with
  // DataLossError well under a second.
  const std::string data = HeaderOnly(uint64_t{1} << 40, 10.0);
  const auto start = std::chrono::steady_clock::now();
  auto result = ReadBinaryString(data);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
  EXPECT_LT(elapsed, 1.0);
}

TEST(TraceCorruptionTest, CountLargerThanPayload) {
  Trace trace = SampleTrace();
  std::string data = SerializeBinary(trace);
  // Patch the count field (bytes 8..15) to promise one extra record.
  uint64_t bogus = trace.requests.size() + 1;
  std::memcpy(data.data() + 8, &bogus, sizeof(bogus));
  auto result = ReadBinaryString(data);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(TraceCorruptionTest, NonFiniteDurationInHeader) {
  for (double d : {std::numeric_limits<double>::quiet_NaN(),
                   std::numeric_limits<double>::infinity(), -1.0}) {
    auto result = ReadBinaryString(HeaderOnly(0, d));
    EXPECT_FALSE(result.ok()) << "duration=" << d;
  }
}

TEST(TraceCorruptionTest, NanArrivalTimeInRecord) {
  Trace trace = SampleTrace();
  trace.requests[1].arrival_time = std::numeric_limits<double>::quiet_NaN();
  std::string data = SerializeBinary(trace);  // writer does not validate
  auto result = ReadBinaryString(data);
  EXPECT_FALSE(result.ok());
}

TEST(TraceCorruptionTest, InvertedByteRangeInRecord) {
  Trace trace = SampleTrace();
  trace.requests[0].byte_begin = 5000;
  trace.requests[0].byte_end = 100;
  auto result = ReadBinaryString(SerializeBinary(trace));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(TraceCorruptionTest, EmptyTraceRoundTrips) {
  Trace empty;
  empty.duration = 0.0;
  auto result = ReadBinaryString(SerializeBinary(empty));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().requests.empty());
}

TEST(TraceCorruptionCsvTest, RejectsNanArrivalTimeWithLineNumber) {
  std::stringstream stream(
      "arrival_time,video,byte_begin,byte_end\n"
      "1.0,1,0,10\n"
      "nan,2,0,10\n");
  auto result = ReadCsv(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
}

TEST(TraceCorruptionCsvTest, RejectsInfiniteArrivalTime) {
  std::stringstream stream(
      "arrival_time,video,byte_begin,byte_end\n"
      "inf,1,0,10\n");
  auto result = ReadCsv(stream);
  EXPECT_FALSE(result.ok());
}

TEST(TraceCorruptionCsvTest, RejectsNonFiniteDurationComment) {
  std::stringstream stream(
      "arrival_time,video,byte_begin,byte_end\n"
      "# duration_seconds=nan\n"
      "1.0,1,0,10\n");
  auto result = ReadCsv(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

// --- VCDNTRS2 packed-file corpus --------------------------------------------
//
// MmapTrace::Open takes a path, so each case writes the mutated image to a
// temp file. The error taxonomy under test: structural wrongness (bad magic/
// version/layout constants, non-dense index, count/payload mismatch) ->
// InvalidArgument; truncation and bit-rot (short header/index, NaN/Inf time
// fields, corrupt records) -> DataLoss; missing file -> NotFound.

// VCDNTRS2 FileHeader field offsets (trace_file.cc pins the layout with
// static_asserts; these mirror it for byte-patching).
constexpr size_t kVersionOffset = 8;
constexpr size_t kHeaderBytesOffset = 12;
constexpr size_t kFlagsOffset = 20;
constexpr size_t kServerCountOffset = 24;
constexpr size_t kTotalRecordsOffset = 32;
constexpr size_t kDurationOffset = 40;
constexpr size_t kIndexOffset = 64;
constexpr size_t kIndexEntryBytes = 48;

class PackedCorruptionTest : public ::testing::Test {
 protected:
  // A valid 2-server packed image, built once and mutated per test.
  static std::string ValidImage() {
    Trace a = SampleTrace();
    Trace b;
    b.duration = 50.0;
    b.requests.push_back(Request{0.5, 3, 0, 4095});
    b.requests.push_back(Request{10.0, 9, 100, 200});
    const std::string path = testing::TempDir() + "packed_corruption_valid.vtrs";
    EXPECT_TRUE(WriteTraceFile({&a, &b}, path).ok());
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    return bytes;
  }

  util::Result<MmapTrace> OpenImage(const std::string& bytes) {
    const std::string path =
        testing::TempDir() + "packed_corruption_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".vtrs";
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    auto result = MmapTrace::Open(path);
    std::remove(path.c_str());
    return result;
  }

  template <typename T>
  static void Patch(std::string& bytes, size_t offset, T value) {
    ASSERT_LE(offset + sizeof(T), bytes.size());
    std::memcpy(bytes.data() + offset, &value, sizeof(T));
  }
};

TEST_F(PackedCorruptionTest, ValidImageOpens) {
  auto result = OpenImage(ValidImage());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().server_count(), 2u);
  EXPECT_EQ(result.value().total_records(), 5u);
  EXPECT_TRUE(result.value().Validate().ok());
}

TEST_F(PackedCorruptionTest, MissingFileIsNotFound) {
  auto result = MmapTrace::Open(testing::TempDir() + "no_such_trace.vtrs");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

TEST_F(PackedCorruptionTest, TruncatedHeaderIsDataLoss) {
  std::string bytes = ValidImage();
  for (size_t keep : {size_t{0}, size_t{8}, size_t{63}}) {
    auto result = OpenImage(bytes.substr(0, keep));
    ASSERT_FALSE(result.ok()) << "kept " << keep;
    EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss) << "kept " << keep;
  }
}

TEST_F(PackedCorruptionTest, BadMagicIsInvalidArgument) {
  std::string bytes = ValidImage();
  bytes[0] = 'X';
  auto result = OpenImage(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(PackedCorruptionTest, WrongVersionIsInvalidArgument) {
  std::string bytes = ValidImage();
  Patch<uint32_t>(bytes, kVersionOffset, 3);
  auto result = OpenImage(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(PackedCorruptionTest, WrongLayoutConstantIsInvalidArgument) {
  std::string bytes = ValidImage();
  Patch<uint32_t>(bytes, kHeaderBytesOffset, 128);
  auto result = OpenImage(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(PackedCorruptionTest, UnknownFlagsAreInvalidArgument) {
  std::string bytes = ValidImage();
  Patch<uint32_t>(bytes, kFlagsOffset, 1);
  auto result = OpenImage(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(PackedCorruptionTest, TruncatedIndexIsDataLoss) {
  // Header claims an absurd server count the file cannot hold; must fail
  // fast without trusting (or allocating for) the count.
  std::string bytes = ValidImage();
  Patch<uint64_t>(bytes, kServerCountOffset, uint64_t{1} << 40);
  const auto start = std::chrono::steady_clock::now();
  auto result = OpenImage(bytes);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
  EXPECT_LT(elapsed, 1.0);
}

TEST_F(PackedCorruptionTest, RecordCountBeyondPayloadIsDataLoss) {
  std::string bytes = ValidImage();
  Patch<uint64_t>(bytes, kTotalRecordsOffset, uint64_t{1} << 40);
  auto result = OpenImage(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST_F(PackedCorruptionTest, TrailingPayloadBytesAreInvalidArgument) {
  // Count/payload mismatch in the other direction: payload longer than the
  // records the header accounts for.
  std::string bytes = ValidImage() + std::string(8, '\0');
  auto result = OpenImage(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("count/payload mismatch"), std::string::npos)
      << result.status().ToString();
}

TEST_F(PackedCorruptionTest, TruncatedPayloadIsDataLoss) {
  std::string bytes = ValidImage();
  auto result = OpenImage(bytes.substr(0, bytes.size() - 16));  // cut mid-record
  ASSERT_FALSE(result.ok());
  // 4.5 records cannot satisfy the header's 5: the count now exceeds the
  // payload -> truncation, not a structural layout bug.
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST_F(PackedCorruptionTest, OutOfOrderIndexIsInvalidArgument) {
  // Entry 1's record_offset rewound before entry 0's section: the index is
  // no longer dense and in file order.
  std::string bytes = ValidImage();
  Patch<uint64_t>(bytes, kIndexOffset + kIndexEntryBytes + 0, 0);
  auto result = OpenImage(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(PackedCorruptionTest, IndexCountSumMismatchIsInvalidArgument) {
  // Shrink entry 1's record_count: the per-server counts no longer sum to
  // the header total.
  std::string bytes = ValidImage();
  Patch<uint64_t>(bytes, kIndexOffset + kIndexEntryBytes + 8, 1);
  auto result = OpenImage(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(PackedCorruptionTest, NonFiniteHeaderDurationIsDataLoss) {
  for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity(), -1.0}) {
    std::string bytes = ValidImage();
    Patch<double>(bytes, kDurationOffset, bad);
    auto result = OpenImage(bytes);
    ASSERT_FALSE(result.ok()) << "duration=" << bad;
    EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss) << "duration=" << bad;
  }
}

TEST_F(PackedCorruptionTest, NonFiniteIndexTimeIsDataLoss) {
  // min_time of entry 0 (offset 24 into the entry) NaN, then Inf.
  for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity()}) {
    std::string bytes = ValidImage();
    Patch<double>(bytes, kIndexOffset + 24, bad);
    auto result = OpenImage(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
  }
}

TEST_F(PackedCorruptionTest, InvertedIndexTimeRangeIsInvalidArgument) {
  // min_time > max_time in entry 0.
  std::string bytes = ValidImage();
  Patch<double>(bytes, kIndexOffset + 24, 99.5);
  auto result = OpenImage(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(PackedCorruptionTest, CorruptRecordFailsValidateAndEndsTheStream) {
  // NaN arrival time in the first record of server 0. Open() succeeds (the
  // header and index are fine); the rot surfaces in Validate() and as a
  // non-OK stream status, never as garbage requests.
  std::string bytes = ValidImage();
  const size_t payload = kIndexOffset + 2 * kIndexEntryBytes;
  Patch<double>(bytes, payload, std::numeric_limits<double>::quiet_NaN());
  auto result = OpenImage(bytes);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto scanned = result.value().Validate();
  ASSERT_FALSE(scanned.ok());
  EXPECT_EQ(scanned.status().code(), util::StatusCode::kDataLoss);

  auto stream = result.value().ServerStream(0);
  EXPECT_TRUE(stream->Next(16).empty());  // first record is already bad
  EXPECT_EQ(stream->status().code(), util::StatusCode::kDataLoss);
  EXPECT_TRUE(stream->Next(16).empty());  // stream has ended permanently
}

TEST_F(PackedCorruptionTest, OutOfOrderRecordEndsTheStreamMidway) {
  // Rewind the 3rd record of server 0 (SampleTrace arrivals 1.5/2.25/99.0)
  // to before its predecessor: the stream serves the 2 good records, then
  // reports DataLoss.
  std::string bytes = ValidImage();
  const size_t payload = kIndexOffset + 2 * kIndexEntryBytes;
  Patch<double>(bytes, payload + 2 * sizeof(Request), 0.25);
  auto result = OpenImage(bytes);
  ASSERT_TRUE(result.ok());
  auto stream = result.value().ServerStream(0);
  size_t served = 0;
  for (;;) {
    RequestSpan span = stream->Next(16);
    if (span.empty()) {
      break;
    }
    served += span.count;
  }
  EXPECT_EQ(served, 2u);
  EXPECT_EQ(stream->status().code(), util::StatusCode::kDataLoss);
  EXPECT_FALSE(result.value().Validate().ok());
}

}  // namespace
}  // namespace vcdn::trace
