// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Differential tests for the flat hot-path containers: FlatLruMap vs LruMap
// and ScoreHeap vs RefScoreHeap (OrderedKeySet) are driven through ~1M mixed
// seeded operations asserting identical observable state after every step,
// then the templated caches (XlruCacheT, CafeCacheT) are replayed flat vs
// reference with interleaved Resize/DropContents. Finally, the counting
// allocator (vcdn_alloc_hook, linked into this test) asserts the flat
// containers and the xLRU request path perform zero heap allocations in
// steady state.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/container/flat_lru_map.h"
#include "src/container/lru_map.h"
#include "src/container/ordered_key_set.h"
#include "src/container/score_heap.h"
#include "src/core/cafe_cache.h"
#include "src/core/chunk.h"
#include "src/core/xlru_cache.h"
#include "src/util/alloc_hook.h"
#include "src/util/rng.h"

namespace vcdn {
namespace {

// ---------------------------------------------------------------------------
// FlatLruMap vs LruMap

void ExpectLruStateEqual(const container::FlatLruMap<uint64_t, uint64_t>& flat,
                         const container::LruMap<uint64_t, uint64_t>& ref) {
  ASSERT_EQ(flat.size(), ref.size());
  auto fit = flat.begin();
  auto rit = ref.begin();
  for (; fit != flat.end(); ++fit, ++rit) {
    ASSERT_EQ(fit->key, rit->key);
    ASSERT_EQ(fit->value, rit->value);
  }
}

TEST(FlatDifferentialTest, LruMapMatchesReferenceThroughMixedOps) {
  container::FlatLruMap<uint64_t, uint64_t> flat;
  container::LruMap<uint64_t, uint64_t> ref;
  flat.Reserve(1 << 14);
  ref.Reserve(1 << 14);
  util::Pcg32 rng(20260805);
  constexpr size_t kOps = 1'000'000;
  constexpr uint64_t kKeyRange = 1 << 14;
  for (size_t i = 0; i < kOps; ++i) {
    uint64_t key = rng.Next64() % kKeyRange;
    uint32_t op = rng.NextBounded(100);
    if (op < 35) {
      uint64_t value = rng.Next64();
      ASSERT_EQ(flat.InsertOrTouch(key, value), ref.InsertOrTouch(key, value));
    } else if (op < 50) {
      // Default-construct overload: both sides get the same in-place write.
      uint64_t value = rng.Next64();
      *flat.InsertOrTouch(key) = value;
      *ref.InsertOrTouch(key) = value;
    } else if (op < 68) {
      uint64_t* a = flat.GetAndTouch(key);
      uint64_t* b = ref.GetAndTouch(key);
      ASSERT_EQ(a == nullptr, b == nullptr);
      if (a != nullptr) {
        ASSERT_EQ(*a, *b);
      }
    } else if (op < 78) {
      const uint64_t* a = flat.Peek(key);
      const uint64_t* b = ref.Peek(key);
      ASSERT_EQ(a == nullptr, b == nullptr);
      if (a != nullptr) {
        ASSERT_EQ(*a, *b);
      }
    } else if (op < 83) {
      uint64_t* a = flat.PeekMut(key);
      uint64_t* b = ref.PeekMut(key);
      ASSERT_EQ(a == nullptr, b == nullptr);
      if (a != nullptr) {
        uint64_t value = rng.Next64();
        *a = value;
        *b = value;
      }
    } else if (op < 88) {
      ASSERT_EQ(flat.Contains(key), ref.Contains(key));
    } else if (op < 95) {
      ASSERT_EQ(flat.Erase(key), ref.Erase(key));
    } else if (op < 99) {
      ASSERT_EQ(flat.empty(), ref.empty());
      if (!flat.empty()) {
        auto a = flat.PopOldest();
        auto b = ref.PopOldest();
        ASSERT_EQ(a.key, b.key);
        ASSERT_EQ(a.value, b.value);
      }
    } else if (rng.NextBounded(1000) == 0) {
      flat.Clear();
      ref.Clear();
    }
    if (!flat.empty()) {
      ASSERT_EQ(flat.Oldest().key, ref.Oldest().key);
      ASSERT_EQ(flat.Newest().key, ref.Newest().key);
    }
    if (i % 100'000 == 0) {
      ExpectLruStateEqual(flat, ref);
    }
  }
  ExpectLruStateEqual(flat, ref);
}

// ---------------------------------------------------------------------------
// ScoreHeap vs RefScoreHeap (OrderedKeySet), both directions

template <typename FlatHeap, typename RefHeap>
void ExpectHeapOrderEqual(const FlatHeap& flat, const RefHeap& ref) {
  ASSERT_EQ(flat.size(), ref.size());
  std::vector<std::pair<double, uint64_t>> flat_order;
  std::vector<std::pair<double, uint64_t>> ref_order;
  flat_order.reserve(flat.size());
  ref_order.reserve(ref.size());
  flat.ScanInOrder([&](const auto& item) {
    flat_order.push_back(item);
    return true;
  });
  ref.ScanInOrder([&](const auto& item) {
    ref_order.push_back(item);
    return true;
  });
  ASSERT_EQ(flat_order, ref_order);
}

template <bool kMaxFirst>
void RunScoreHeapDifferential(uint32_t seed) {
  container::ScoreHeap<uint64_t, double, std::hash<uint64_t>, kMaxFirst> flat;
  container::RefScoreHeap<uint64_t, double, std::hash<uint64_t>, kMaxFirst> ref;
  flat.Reserve(1 << 12);
  ref.Reserve(1 << 12);
  util::Pcg32 rng(seed);
  constexpr size_t kOps = 400'000;
  constexpr uint64_t kIdRange = 1 << 12;
  for (size_t i = 0; i < kOps; ++i) {
    uint64_t id = rng.Next64() % kIdRange;
    // Coarse scores force frequent ties so the (score, id) tie-break is
    // exercised hard.
    double score = static_cast<double>(rng.NextBounded(256));
    uint32_t op = rng.NextBounded(100);
    if (op < 45) {
      ASSERT_EQ(flat.InsertOrUpdate(id, score), ref.InsertOrUpdate(id, score));
    } else if (op < 60) {
      ASSERT_EQ(flat.Erase(id), ref.Erase(id));
    } else if (op < 70) {
      const double* a = flat.GetScore(id);
      const double* b = ref.GetScore(id);
      ASSERT_EQ(a == nullptr, b == nullptr);
      if (a != nullptr) {
        ASSERT_EQ(*a, *b);
      }
    } else if (op < 75) {
      ASSERT_EQ(flat.Contains(id), ref.Contains(id));
    } else if (op < 85) {
      ASSERT_EQ(flat.empty(), ref.empty());
      if (!flat.empty()) {
        ASSERT_EQ(flat.Top(), ref.Top());
      }
    } else if (op < 97) {
      ASSERT_EQ(flat.empty(), ref.empty());
      if (!flat.empty()) {
        ASSERT_EQ(flat.PopTop(), ref.PopTop());
      }
    } else {
      // Victim-selection shape: the first 8 items in order must agree.
      std::vector<std::pair<double, uint64_t>> a;
      std::vector<std::pair<double, uint64_t>> b;
      flat.ScanInOrder([&](const auto& item) {
        a.push_back(item);
        return a.size() < 8;
      });
      ref.ScanInOrder([&](const auto& item) {
        b.push_back(item);
        return b.size() < 8;
      });
      ASSERT_EQ(a, b);
    }
    if (i == kOps / 2) {
      flat.Clear();
      ref.Clear();
    }
    if (i % 50'000 == 0) {
      ExpectHeapOrderEqual(flat, ref);
    }
  }
  ExpectHeapOrderEqual(flat, ref);
}

TEST(FlatDifferentialTest, MinScoreHeapMatchesOrderedKeySet) {
  RunScoreHeapDifferential<false>(11);
}

TEST(FlatDifferentialTest, MaxScoreHeapMatchesOrderedKeySet) {
  RunScoreHeapDifferential<true>(12);
}

// ---------------------------------------------------------------------------
// Cache-level differential: flat vs reference container policies

trace::Request SkewedRequest(util::Pcg32& rng, uint64_t videos, double time) {
  trace::Request r;
  r.video = std::min(rng.Next64() % videos, rng.Next64() % videos);
  uint64_t start_chunk = rng.NextBounded(16);
  uint64_t len_chunks = 1 + rng.NextBounded(8);
  r.byte_begin = start_chunk * core::kDefaultChunkBytes;
  r.byte_end = (start_chunk + len_chunks) * core::kDefaultChunkBytes - 1;
  r.arrival_time = time;
  return r;
}

core::CacheConfig DifferentialConfig() {
  core::CacheConfig config;
  config.chunk_bytes = core::kDefaultChunkBytes;
  config.disk_capacity_chunks = 4096;
  config.alpha_f2r = 2.0;
  return config;
}

template <typename FlatCache, typename RefCache>
void RunCacheDifferential(FlatCache& flat, RefCache& ref, uint32_t seed) {
  util::Pcg32 rng(seed);
  constexpr size_t kRequests = 60'000;
  const uint64_t capacity = flat.config().disk_capacity_chunks;
  double t = 0.0;
  for (size_t i = 1; i <= kRequests; ++i) {
    t += 0.05;
    trace::Request r = SkewedRequest(rng, 4000, t);
    core::RequestOutcome a = flat.HandleRequest(r);
    core::RequestOutcome b = ref.HandleRequest(r);
    ASSERT_EQ(a.decision, b.decision) << "request " << i;
    ASSERT_EQ(a.filled_chunks, b.filled_chunks) << "request " << i;
    ASSERT_EQ(a.evicted_chunks, b.evicted_chunks) << "request " << i;
    ASSERT_EQ(a.hit_chunks, b.hit_chunks) << "request " << i;
    ASSERT_EQ(flat.used_chunks(), ref.used_chunks()) << "request " << i;
    if (i % 997 == 0) {
      core::ChunkRange range = core::ToChunkRange(r, core::kDefaultChunkBytes);
      for (uint32_t c = range.first; c <= range.last; ++c) {
        core::ChunkId chunk{r.video, c};
        ASSERT_EQ(flat.ContainsChunk(chunk), ref.ContainsChunk(chunk)) << "request " << i;
      }
    }
    // Structural events mid-replay: shrink (EvictDownTo victim order must
    // agree), grow back, cold restart.
    if (i == kRequests / 4) {
      ASSERT_EQ(flat.Resize(capacity * 3 / 4), ref.Resize(capacity * 3 / 4));
      ASSERT_EQ(flat.used_chunks(), ref.used_chunks());
    } else if (i == kRequests / 2) {
      ASSERT_EQ(flat.Resize(capacity), ref.Resize(capacity));
    } else if (i == kRequests * 3 / 4) {
      ASSERT_EQ(flat.DropContents(), ref.DropContents());
      ASSERT_EQ(flat.used_chunks(), 0u);
    }
  }
}

TEST(FlatDifferentialTest, XlruFlatMatchesReferenceReplay) {
  core::XlruCache flat(DifferentialConfig());
  core::ReferenceXlruCache ref(DifferentialConfig());
  RunCacheDifferential(flat, ref, 21);
  EXPECT_EQ(flat.tracked_videos(), ref.tracked_videos());
}

TEST(FlatDifferentialTest, CafeFlatMatchesReferenceReplay) {
  core::CafeCache flat(DifferentialConfig());
  core::ReferenceCafeCache ref(DifferentialConfig());
  RunCacheDifferential(flat, ref, 22);
  EXPECT_EQ(flat.tracked_history_chunks(), ref.tracked_history_chunks());
  EXPECT_EQ(flat.CacheAge(5000.0), ref.CacheAge(5000.0));
}

// ---------------------------------------------------------------------------
// Batched admission at the cache level: HandleRequestBatch vs HandleRequest

template <typename Cache>
void RunBatchVsSingleDifferential(Cache& batched, Cache& single, uint32_t seed,
                                  size_t batch_size) {
  util::Pcg32 rng(seed);
  constexpr size_t kRequests = 40'000;
  std::vector<trace::Request> window(batch_size);
  std::vector<core::RequestOutcome> outcomes(batch_size);
  double t = 0.0;
  for (size_t done = 0; done < kRequests;) {
    // Odd remainders included: the last window is a partial batch.
    size_t n = std::min(batch_size, kRequests - done);
    for (size_t i = 0; i < n; ++i) {
      t += 0.05;
      window[i] = SkewedRequest(rng, 4000, t);
    }
    batched.HandleRequestBatch(window.data(), n, outcomes.data());
    for (size_t i = 0; i < n; ++i) {
      core::RequestOutcome expected = single.HandleRequest(window[i]);
      ASSERT_EQ(outcomes[i].decision, expected.decision) << "request " << done + i;
      ASSERT_EQ(outcomes[i].hit_chunks, expected.hit_chunks) << "request " << done + i;
      ASSERT_EQ(outcomes[i].filled_chunks, expected.filled_chunks) << "request " << done + i;
      ASSERT_EQ(outcomes[i].evicted_chunks, expected.evicted_chunks) << "request " << done + i;
    }
    done += n;
    ASSERT_EQ(batched.used_chunks(), single.used_chunks()) << "after " << done;
  }
}

TEST(FlatDifferentialTest, CafeBatchedAdmissionMatchesSingleRequests) {
  // The software-pipelined CafeCacheT::HandleRequestBatchImpl (hash + prefetch
  // lookahead) must be outcome-identical to one-at-a-time admission.
  for (size_t batch_size : {size_t{3}, size_t{16}, size_t{33}}) {
    core::CafeCache batched(DifferentialConfig());
    core::CafeCache single(DifferentialConfig());
    RunBatchVsSingleDifferential(batched, single, 23, batch_size);
    EXPECT_EQ(batched.tracked_history_chunks(), single.tracked_history_chunks());
    EXPECT_EQ(batched.CacheAge(5000.0), single.CacheAge(5000.0));
  }
}

TEST(FlatDifferentialTest, XlruBatchedAdmissionMatchesSingleRequests) {
  // xLRU uses the default HandleRequestBatchImpl loop; this pins the
  // CacheAlgorithm choke-point contract for non-overriding algorithms.
  core::XlruCache batched(DifferentialConfig());
  core::XlruCache single(DifferentialConfig());
  RunBatchVsSingleDifferential(batched, single, 24, 16);
  EXPECT_EQ(batched.tracked_videos(), single.tracked_videos());
}

// ---------------------------------------------------------------------------
// Zero steady-state allocations (counting operator new from vcdn_alloc_hook)

TEST(FlatAllocationTest, HookIsLinked) {
  ASSERT_TRUE(util::AllocHookActive())
      << "this test must link vcdn_alloc_hook (see tests/CMakeLists.txt)";
  util::AllocScope scope;
  // Direct operator-new call: a plain new-expression may legally be elided.
  void* p = ::operator new(64);
  EXPECT_GE(scope.Delta().allocations, 1u);
  EXPECT_GE(scope.Delta().bytes, 64u);
  ::operator delete(p);
}

TEST(FlatAllocationTest, FlatLruMapSteadyStateIsAllocationFree) {
  container::FlatLruMap<uint64_t, uint64_t> map;
  map.Reserve(1 << 12);
  util::Pcg32 rng(31);
  constexpr uint64_t kKeyRange = 1 << 12;
  // Warm-up: populate to the working-set size.
  for (size_t i = 0; i < 50'000; ++i) {
    map.InsertOrTouch(rng.Next64() % kKeyRange, i);
    if (map.size() > (kKeyRange * 3) / 4) {
      map.PopOldest();
    }
  }
  util::AllocScope scope;
  for (size_t i = 0; i < 200'000; ++i) {
    uint64_t key = rng.Next64() % kKeyRange;
    map.InsertOrTouch(key, i);
    (void)map.GetAndTouch(rng.Next64() % kKeyRange);
    (void)map.Peek(rng.Next64() % kKeyRange);
    if (map.size() > (kKeyRange * 3) / 4) {
      map.PopOldest();
    }
    if (rng.NextBounded(8) == 0) {
      map.Erase(rng.Next64() % kKeyRange);
    }
  }
  EXPECT_EQ(scope.Delta().allocations, 0u);
}

TEST(FlatAllocationTest, ScoreHeapSteadyStateIsAllocationFree) {
  container::ScoreHeap<uint64_t, double> heap;
  heap.Reserve(1 << 12);
  util::Pcg32 rng(32);
  constexpr uint64_t kIdRange = 1 << 12;
  for (size_t i = 0; i < 50'000; ++i) {
    heap.InsertOrUpdate(rng.Next64() % kIdRange, rng.NextDouble());
    if (heap.size() > (kIdRange * 3) / 4) {
      heap.PopTop();
    }
  }
  // One full scan sizes the reusable scan scratch before measurement.
  size_t items = 0;
  heap.ScanInOrder([&](const auto&) {
    ++items;
    return true;
  });
  ASSERT_EQ(items, heap.size());
  util::AllocScope scope;
  for (size_t i = 0; i < 200'000; ++i) {
    heap.InsertOrUpdate(rng.Next64() % kIdRange, rng.NextDouble());
    if (heap.size() > (kIdRange * 3) / 4) {
      heap.PopTop();
    }
    if (rng.NextBounded(16) == 0) {
      size_t visited = 0;
      heap.ScanInOrder([&](const auto&) { return ++visited < 8; });
    }
    if (rng.NextBounded(8) == 0) {
      heap.Erase(rng.Next64() % kIdRange);
    }
  }
  EXPECT_EQ(scope.Delta().allocations, 0u);
}

TEST(FlatAllocationTest, XlruRequestPathSteadyStateIsAllocationFree) {
  core::CacheConfig config = DifferentialConfig();
  config.disk_capacity_chunks = 1 << 14;
  core::XlruCache cache(config);
  util::Pcg32 rng(33);
  double t = 0.0;
  // Warm-up: fill the disk and grow the request scratch to its peak.
  for (size_t i = 0; i < 200'000; ++i) {
    t += 0.01;
    cache.HandleRequest(SkewedRequest(rng, 8000, t));
  }
  util::AllocScope scope;
  for (size_t i = 0; i < 100'000; ++i) {
    t += 0.01;
    cache.HandleRequest(SkewedRequest(rng, 8000, t));
  }
  EXPECT_EQ(scope.Delta().allocations, 0u) << "xLRU steady state must not allocate per request";
}

TEST(FlatAllocationTest, CafeRequestPathSteadyStateIsAllocationFree) {
  // The flat Cafe request path -- ContainsMany classification, EWMA updates,
  // history transitions, victim scans, the flattened video->chunks map and
  // periodic CleanupHistory -- must reach a fixed working set: after warm-up,
  // single-request admission performs zero heap allocations.
  core::CacheConfig config = DifferentialConfig();
  config.disk_capacity_chunks = 1 << 13;
  core::CafeCache cache(config);
  util::Pcg32 rng(34);
  double t = 0.0;
  // Warm-up: fill disk + history and grow every slab/scratch to its peak
  // (CleanupHistory bounds the history, so the footprint converges).
  for (size_t i = 0; i < 300'000; ++i) {
    t += 0.01;
    cache.HandleRequest(SkewedRequest(rng, 6000, t));
  }
  util::AllocScope scope;
  for (size_t i = 0; i < 100'000; ++i) {
    t += 0.01;
    cache.HandleRequest(SkewedRequest(rng, 6000, t));
  }
  EXPECT_EQ(scope.Delta().allocations, 0u) << "Cafe steady state must not allocate per request";
}

TEST(FlatAllocationTest, CafeBatchedRequestPathSteadyStateIsAllocationFree) {
  // Same contract through the batched entry point: the hash ring, outcome
  // buffer and per-batch scratch are all reused across calls.
  core::CacheConfig config = DifferentialConfig();
  config.disk_capacity_chunks = 1 << 13;
  core::CafeCache cache(config);
  util::Pcg32 rng(35);
  constexpr size_t kBatch = 16;
  std::vector<trace::Request> window(kBatch);
  std::vector<core::RequestOutcome> outcomes(kBatch);
  double t = 0.0;
  auto run = [&](size_t batches) {
    for (size_t b = 0; b < batches; ++b) {
      for (size_t i = 0; i < kBatch; ++i) {
        t += 0.01;
        window[i] = SkewedRequest(rng, 6000, t);
      }
      cache.HandleRequestBatch(window.data(), kBatch, outcomes.data());
    }
  };
  run(20'000);  // warm-up
  util::AllocScope scope;
  run(8'000);
  EXPECT_EQ(scope.Delta().allocations, 0u)
      << "batched Cafe steady state must not allocate per request";
}

}  // namespace
}  // namespace vcdn
