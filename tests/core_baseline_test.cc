// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/baseline_caches.h"

#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "tests/cache_test_util.h"

namespace vcdn::core {
namespace {

using ::vcdn::testing::ChunkReq;
using ::vcdn::testing::ChunkRequest;
using ::vcdn::testing::MakeTrace;
using ::vcdn::testing::SmallConfig;

TEST(AlwaysFillLruTest, ServesAndFillsEverything) {
  AlwaysFillLruCache cache(SmallConfig(100));
  auto outcome = cache.HandleRequest(ChunkRequest(1.0, 1, 0, 3));
  EXPECT_EQ(outcome.decision, Decision::kServe);
  EXPECT_EQ(outcome.filled_chunks, 4u);
  outcome = cache.HandleRequest(ChunkRequest(2.0, 1, 0, 3));
  EXPECT_EQ(outcome.hit_chunks, 4u);
}

TEST(AlwaysFillLruTest, OnlyRedirectsOversizedRanges) {
  AlwaysFillLruCache cache(SmallConfig(4));
  EXPECT_EQ(cache.HandleRequest(ChunkRequest(1.0, 1, 0, 7)).decision, Decision::kRedirect);
  EXPECT_EQ(cache.HandleRequest(ChunkRequest(2.0, 1, 0, 3)).decision, Decision::kServe);
}

TEST(AlwaysFillLruTest, LruEviction) {
  AlwaysFillLruCache cache(SmallConfig(4));
  cache.HandleRequest(ChunkRequest(1.0, 1, 0, 1));
  cache.HandleRequest(ChunkRequest(2.0, 2, 0, 1));
  cache.HandleRequest(ChunkRequest(3.0, 1, 0, 1));  // touch video 1
  cache.HandleRequest(ChunkRequest(4.0, 3, 0, 1));  // evicts video 2
  EXPECT_TRUE(cache.ContainsChunk(ChunkId{1, 0}));
  EXPECT_FALSE(cache.ContainsChunk(ChunkId{2, 0}));
  EXPECT_TRUE(cache.ContainsChunk(ChunkId{3, 0}));
}

TEST(BeladyTest, EvictsChunkRequestedFarthestInFuture) {
  trace::Trace trace = MakeTrace({
      {1.0, 1, 0, 0},
      {2.0, 2, 0, 0},
      {3.0, 3, 0, 0},  // capacity 2: must evict 1 or 2
      {4.0, 1, 0, 0},  // video 1 needed sooner
      {9.0, 2, 0, 0},  // video 2 needed later -> Belady evicts it at t=3
  });
  BeladyCache cache(SmallConfig(2));
  cache.Prepare(trace);
  cache.HandleRequest(trace.requests[0]);
  cache.HandleRequest(trace.requests[1]);
  cache.HandleRequest(trace.requests[2]);
  EXPECT_TRUE(cache.ContainsChunk(ChunkId{1, 0}));
  EXPECT_FALSE(cache.ContainsChunk(ChunkId{2, 0}));
  EXPECT_TRUE(cache.ContainsChunk(ChunkId{3, 0}));
}

TEST(BeladyTest, NeverRequestedAgainIsFirstVictim) {
  trace::Trace trace = MakeTrace({
      {1.0, 1, 0, 0},  // never again
      {2.0, 2, 0, 0},  // again at 4
      {3.0, 3, 0, 0},
      {4.0, 2, 0, 0},
  });
  BeladyCache cache(SmallConfig(2));
  cache.Prepare(trace);
  cache.HandleRequest(trace.requests[0]);
  cache.HandleRequest(trace.requests[1]);
  cache.HandleRequest(trace.requests[2]);
  EXPECT_FALSE(cache.ContainsChunk(ChunkId{1, 0}));
  EXPECT_TRUE(cache.ContainsChunk(ChunkId{2, 0}));
}

TEST(BeladyTest, RequiresPrepare) {
  BeladyCache cache(SmallConfig(2));
  EXPECT_DEATH(cache.HandleRequest(ChunkRequest(1.0, 1, 0, 0, 1024)), "Prepare");
}

TEST(CacheFactoryTest, CreatesAllKinds) {
  CacheConfig config = SmallConfig(8);
  for (CacheKind kind : {CacheKind::kXlru, CacheKind::kCafe, CacheKind::kPsychic,
                         CacheKind::kFillLru, CacheKind::kBelady}) {
    auto cache = MakeCache(kind, config);
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->name(), CacheKindName(kind));
    EXPECT_EQ(cache->used_chunks(), 0u);
  }
}

TEST(CacheFactoryTest, NamesMatchPaper) {
  EXPECT_EQ(CacheKindName(CacheKind::kXlru), "xLRU");
  EXPECT_EQ(CacheKindName(CacheKind::kCafe), "Cafe");
  EXPECT_EQ(CacheKindName(CacheKind::kPsychic), "Psychic");
}

}  // namespace
}  // namespace vcdn::core
