// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/container/lru_map.h"

#include <gtest/gtest.h>

#include <string>

namespace vcdn::container {
namespace {

TEST(LruMapTest, InsertAndLookup) {
  LruMap<int, std::string> map;
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.InsertOrTouch(1, "a"));
  EXPECT_FALSE(map.InsertOrTouch(1, "b"));  // overwrite, not new
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.Peek(1), nullptr);
  EXPECT_EQ(*map.Peek(1), "b");
  EXPECT_EQ(map.Peek(2), nullptr);
}

TEST(LruMapTest, OldestIsLeastRecent) {
  LruMap<int, int> map;
  map.InsertOrTouch(1, 10);
  map.InsertOrTouch(2, 20);
  map.InsertOrTouch(3, 30);
  EXPECT_EQ(map.Oldest().key, 1);
  EXPECT_EQ(map.Newest().key, 3);
}

TEST(LruMapTest, TouchMovesToFront) {
  LruMap<int, int> map;
  map.InsertOrTouch(1, 10);
  map.InsertOrTouch(2, 20);
  map.InsertOrTouch(3, 30);
  ASSERT_NE(map.GetAndTouch(1), nullptr);
  EXPECT_EQ(map.Oldest().key, 2);
  EXPECT_EQ(map.Newest().key, 1);
}

TEST(LruMapTest, PeekDoesNotReorder) {
  LruMap<int, int> map;
  map.InsertOrTouch(1, 10);
  map.InsertOrTouch(2, 20);
  (void)map.Peek(1);
  EXPECT_EQ(map.Oldest().key, 1);
}

TEST(LruMapTest, PopOldestEvictionOrder) {
  LruMap<int, int> map;
  for (int i = 0; i < 5; ++i) {
    map.InsertOrTouch(i, i);
  }
  map.GetAndTouch(0);  // 0 becomes most recent
  EXPECT_EQ(map.PopOldest().key, 1);
  EXPECT_EQ(map.PopOldest().key, 2);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_FALSE(map.Contains(1));
}

TEST(LruMapTest, EraseSpecificKey) {
  LruMap<int, int> map;
  map.InsertOrTouch(1, 10);
  map.InsertOrTouch(2, 20);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Erase(1));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Oldest().key, 2);
}

TEST(LruMapTest, ClearEmpties) {
  LruMap<int, int> map;
  map.InsertOrTouch(1, 1);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.Contains(1));
}

TEST(LruMapTest, IterationIsMostRecentFirst) {
  LruMap<int, int> map;
  map.InsertOrTouch(1, 1);
  map.InsertOrTouch(2, 2);
  map.InsertOrTouch(3, 3);
  std::vector<int> keys;
  for (const auto& entry : map) {
    keys.push_back(entry.key);
  }
  EXPECT_EQ(keys, (std::vector<int>{3, 2, 1}));
}

// Property: after any interleaving of operations, PopOldest returns entries
// in exactly the order of their last touch.
TEST(LruMapTest, PropertyEvictionMatchesTouchOrder) {
  LruMap<int, int> map;
  std::vector<int> touch_order;
  auto touch = [&](int k) {
    map.InsertOrTouch(k, k);
    touch_order.erase(std::remove(touch_order.begin(), touch_order.end(), k), touch_order.end());
    touch_order.push_back(k);
  };
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 20; ++k) {
      touch((k * 7 + round * 3) % 13);
    }
  }
  std::vector<int> evicted;
  while (!map.empty()) {
    evicted.push_back(map.PopOldest().key);
  }
  EXPECT_EQ(evicted, touch_order);
}

}  // namespace
}  // namespace vcdn::container
