// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/workload_generator.h"

namespace vcdn::trace {
namespace {

Trace SampleTrace() {
  Trace t;
  t.duration = 100.0;
  t.requests.push_back(Request{1.5, 42, 0, 1023});
  t.requests.push_back(Request{2.25, 7, 4096, 8191});
  t.requests.push_back(Request{99.0, 42, 0, 0});
  return t;
}

TEST(TraceIoCsvTest, RoundTrip) {
  Trace original = SampleTrace();
  std::stringstream stream;
  ASSERT_TRUE(WriteCsv(original, stream).ok());
  auto result = ReadCsv(stream);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Trace& read = result.value();
  ASSERT_EQ(read.requests.size(), original.requests.size());
  EXPECT_DOUBLE_EQ(read.duration, original.duration);
  for (size_t i = 0; i < read.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(read.requests[i].arrival_time, original.requests[i].arrival_time);
    EXPECT_EQ(read.requests[i].video, original.requests[i].video);
    EXPECT_EQ(read.requests[i].byte_begin, original.requests[i].byte_begin);
    EXPECT_EQ(read.requests[i].byte_end, original.requests[i].byte_end);
  }
}

TEST(TraceIoCsvTest, RejectsMissingHeader) {
  std::stringstream stream("1.0,2,3,4\n");
  auto result = ReadCsv(stream);
  EXPECT_FALSE(result.ok());
}

TEST(TraceIoCsvTest, RejectsWrongFieldCount) {
  std::stringstream stream("arrival_time,video,byte_begin,byte_end\n1.0,2,3\n");
  auto result = ReadCsv(stream);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(TraceIoCsvTest, RejectsInvertedRange) {
  std::stringstream stream("arrival_time,video,byte_begin,byte_end\n1.0,2,10,5\n");
  auto result = ReadCsv(stream);
  EXPECT_FALSE(result.ok());
}

TEST(TraceIoCsvTest, RejectsOutOfOrderTimes) {
  std::stringstream stream(
      "arrival_time,video,byte_begin,byte_end\n"
      "5.0,1,0,10\n"
      "1.0,1,0,10\n");
  auto result = ReadCsv(stream);
  EXPECT_FALSE(result.ok());
}

TEST(TraceIoBinaryTest, RoundTrip) {
  Trace original = SampleTrace();
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteBinary(original, stream).ok());
  auto result = ReadBinary(stream);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Trace& read = result.value();
  ASSERT_EQ(read.requests.size(), original.requests.size());
  for (size_t i = 0; i < read.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(read.requests[i].arrival_time, original.requests[i].arrival_time);
    EXPECT_EQ(read.requests[i].video, original.requests[i].video);
  }
}

TEST(TraceIoBinaryTest, RejectsBadMagic) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  stream << "NOTATRACE-------";
  auto result = ReadBinary(stream);
  EXPECT_FALSE(result.ok());
}

TEST(TraceIoBinaryTest, RejectsTruncation) {
  Trace original = SampleTrace();
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteBinary(original, stream).ok());
  std::string data = stream.str();
  std::stringstream truncated(data.substr(0, data.size() - 8),
                              std::ios::in | std::ios::binary);
  auto result = ReadBinary(truncated);
  EXPECT_FALSE(result.ok());
}

TEST(TraceIoTest, GeneratedTraceRoundTripsThroughBothFormats) {
  WorkloadConfig config;
  config.profile = EuropeProfile(0.02);
  config.profile.base_request_rate = 0.02;
  config.duration_seconds = 86400.0;
  Trace trace = WorkloadGenerator(config).Generate().trace;

  std::stringstream csv;
  ASSERT_TRUE(WriteCsv(trace, csv).ok());
  auto csv_read = ReadCsv(csv);
  ASSERT_TRUE(csv_read.ok());
  EXPECT_EQ(csv_read.value().requests.size(), trace.requests.size());

  std::stringstream bin(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteBinary(trace, bin).ok());
  auto bin_read = ReadBinary(bin);
  ASSERT_TRUE(bin_read.ok());
  ASSERT_EQ(bin_read.value().requests.size(), trace.requests.size());
  // Binary is bit-exact.
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    ASSERT_EQ(bin_read.value().requests[i].arrival_time, trace.requests[i].arrival_time);
  }
}

TEST(TraceIoFileTest, MissingFileIsNotFound) {
  auto result = ReadCsvFile("/nonexistent/path/trace.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace vcdn::trace
