// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/trace/downsample.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/trace/workload_generator.h"

namespace vcdn::trace {
namespace {

GeneratedWorkload SmallWorkload() {
  WorkloadConfig config;
  config.profile = EuropeProfile(0.05);
  config.profile.base_request_rate = 0.08;
  config.duration_seconds = 4.0 * 86400.0;
  config.seed = 3;
  return WorkloadGenerator(config).Generate();
}

TEST(DownsampleTest, SelectsRequestedNumberOfFiles) {
  GeneratedWorkload w = SmallWorkload();
  DownsampleOptions options;
  options.num_files = 50;
  DownsampledTrace d = DownsampleForOptimal(w.trace, options);
  EXPECT_LE(d.selected.size(), 50u);
  EXPECT_GT(d.selected.size(), 30u);  // uniform picks may collide only rarely
  std::unordered_set<VideoId> selected(d.selected.begin(), d.selected.end());
  for (const Request& r : d.trace.requests) {
    EXPECT_TRUE(selected.count(r.video)) << "request for unselected file";
  }
}

TEST(DownsampleTest, CapsByteRanges) {
  GeneratedWorkload w = SmallWorkload();
  DownsampleOptions options;
  options.file_cap_bytes = 20ull << 20;
  DownsampledTrace d = DownsampleForOptimal(w.trace, options);
  ASSERT_FALSE(d.trace.requests.empty());
  for (const Request& r : d.trace.requests) {
    EXPECT_LT(r.byte_end, options.file_cap_bytes);
    EXPECT_LE(r.byte_begin, r.byte_end);
  }
}

TEST(DownsampleTest, WindowAndRebase) {
  GeneratedWorkload w = SmallWorkload();
  DownsampleOptions options;
  options.window_start = 86400.0;
  options.window_seconds = 2.0 * 86400.0;
  DownsampledTrace d = DownsampleForOptimal(w.trace, options);
  ASSERT_FALSE(d.trace.requests.empty());
  for (const Request& r : d.trace.requests) {
    EXPECT_GE(r.arrival_time, 0.0);
    EXPECT_LT(r.arrival_time, options.window_seconds);
  }
  EXPECT_TRUE(d.trace.IsWellFormed());
}

TEST(DownsampleTest, MaxRequestsTruncates) {
  GeneratedWorkload w = SmallWorkload();
  DownsampleOptions options;
  options.max_requests = 100;
  DownsampledTrace d = DownsampleForOptimal(w.trace, options);
  EXPECT_LE(d.trace.requests.size(), 100u);
}

TEST(DownsampleTest, SelectionCoversHeadAndTail) {
  GeneratedWorkload w = SmallWorkload();
  DownsampleOptions options;
  options.num_files = 20;
  DownsampledTrace d = DownsampleForOptimal(w.trace, options);
  // Count hits of each selected file inside the window.
  std::unordered_map<VideoId, uint64_t> hits;
  for (const Request& r : w.trace.requests) {
    if (r.arrival_time < options.window_seconds) {
      ++hits[r.video];
    }
  }
  ASSERT_GE(d.selected.size(), 2u);
  // The first selected file is the most-hit one; the last is among the
  // least-hit (uniform selection over the sorted list).
  uint64_t first_hits = hits[d.selected.front()];
  uint64_t last_hits = hits[d.selected.back()];
  EXPECT_GE(first_hits, last_hits);
  EXPECT_GT(first_hits, 1u);
}

TEST(DownsampleTest, EmptyTraceYieldsEmptyResult) {
  Trace empty;
  empty.duration = 1000.0;
  DownsampledTrace d = DownsampleForOptimal(empty, DownsampleOptions{});
  EXPECT_TRUE(d.trace.requests.empty());
  EXPECT_TRUE(d.selected.empty());
}

}  // namespace
}  // namespace vcdn::trace
