// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/adaptive_alpha.h"

#include <gtest/gtest.h>

#include "src/core/cafe_cache.h"
#include "src/core/xlru_cache.h"
#include "src/sim/replay.h"
#include "tests/cache_test_util.h"

namespace vcdn::core {
namespace {

using ::vcdn::testing::ChunkRequest;
using ::vcdn::testing::SmallConfig;

TEST(SetAlphaTest, UpdatesCostModel) {
  XlruCache cache(SmallConfig(8, 1.0));
  EXPECT_DOUBLE_EQ(cache.cost_model().alpha_f2r(), 1.0);
  cache.SetAlphaF2r(2.0);
  EXPECT_DOUBLE_EQ(cache.cost_model().alpha_f2r(), 2.0);
  EXPECT_DOUBLE_EQ(cache.config().alpha_f2r, 2.0);
  EXPECT_NEAR(cache.cost_model().fill_cost(), 4.0 / 3.0, 1e-12);
}

TEST(AdaptiveAlphaTest, WrapsInnerCacheTransparently) {
  AdaptiveAlphaOptions options;
  auto inner = std::make_unique<CafeCache>(SmallConfig(100, 2.0));
  AdaptiveAlphaCache cache(std::move(inner), options);
  EXPECT_EQ(cache.name(), "Adaptive(Cafe)");
  cache.HandleRequest(ChunkRequest(1.0, 7, 0, 3));
  auto outcome = cache.HandleRequest(ChunkRequest(2.0, 7, 0, 3));
  EXPECT_EQ(outcome.decision, Decision::kServe);
  EXPECT_EQ(cache.used_chunks(), 4u);
  EXPECT_TRUE(cache.ContainsChunk(ChunkId{7, 0}));
}

TEST(AdaptiveAlphaTest, ClampsToRange) {
  AdaptiveAlphaOptions options;
  options.min_alpha = 1.0;
  options.max_alpha = 4.0;
  auto inner = std::make_unique<CafeCache>(SmallConfig(100, 2.0));
  AdaptiveAlphaCache cache(std::move(inner), options);
  cache.SetAlphaF2r(100.0);
  EXPECT_DOUBLE_EQ(cache.current_alpha(), 4.0);
  cache.SetAlphaF2r(0.01);
  EXPECT_DOUBLE_EQ(cache.current_alpha(), 1.0);
}

TEST(AdaptiveAlphaTest, RaisesAlphaUnderHeavyIngress) {
  // A churny workload (every video seen twice, then replaced) forces high
  // ingress; the controller must push alpha up toward max.
  AdaptiveAlphaOptions options;
  options.target_ingress_fraction = 0.01;  // nearly no ingress budget
  options.adjust_interval_seconds = 50.0;
  auto inner = std::make_unique<CafeCache>(SmallConfig(16, 1.0));
  AdaptiveAlphaCache cache(std::move(inner), options);
  double t = 0.0;
  trace::VideoId v = 1;
  double alpha_sum = 0.0;
  int alpha_samples = 0;
  for (int i = 0; i < 3000; ++i) {
    t += 1.0;
    // Each video requested twice in a row (second request fills), then
    // abandoned: ingress-heavy and hit-poor.
    cache.HandleRequest(ChunkRequest(t, v, 0, 1));
    cache.HandleRequest(ChunkRequest(t + 0.5, v, 0, 1));
    ++v;
    if (i > 1500) {
      alpha_sum += cache.current_alpha();
      ++alpha_samples;
    }
  }
  // The controller cannot actually meet a 1% budget on this workload (every
  // serve implies a fill), so it oscillates around the admit/reject boundary
  // -- but it must settle well above the initial alpha = 1 and keep
  // adjusting.
  EXPECT_GT(alpha_sum / alpha_samples, 1.2);
  EXPECT_GT(cache.adjustments(), 5u);
}

TEST(AdaptiveAlphaTest, LowersAlphaWhenIngressBelowBudget) {
  // A perfectly cacheable workload has almost no steady-state ingress; with
  // a generous budget the controller drifts alpha down toward min.
  AdaptiveAlphaOptions options;
  options.target_ingress_fraction = 0.5;
  options.adjust_interval_seconds = 50.0;
  options.min_alpha = 0.5;
  auto inner = std::make_unique<CafeCache>(SmallConfig(64, 4.0));
  AdaptiveAlphaCache cache(std::move(inner), options);
  double t = 0.0;
  for (int i = 0; i < 3000; ++i) {
    t += 1.0;
    cache.HandleRequest(ChunkRequest(t, 1 + (i % 4), 0, 3));
  }
  EXPECT_LT(cache.current_alpha(), 1.0);
}

TEST(AdaptiveAlphaTest, TracksIngressBudgetEndToEnd) {
  // On a mixed workload, the controller should keep the steady-state ingress
  // fraction within a loose factor of the target.
  AdaptiveAlphaOptions options;
  options.target_ingress_fraction = 0.10;
  options.adjust_interval_seconds = 200.0;
  options.min_alpha = 0.5;
  options.max_alpha = 8.0;
  auto inner = std::make_unique<CafeCache>(SmallConfig(32, 1.0));
  AdaptiveAlphaCache cache(std::move(inner), options);

  trace::Trace trace;
  double t = 0.0;
  for (int round = 0; round < 3000; ++round) {
    t += 1.0;
    // Stable popular set + a churning tail whose videos recur a few times
    // (so admitting them costs real ingress, and alpha controls how much).
    trace.requests.push_back(ChunkRequest(t, 1 + (round % 6), 0, 2));
    trace.requests.push_back(ChunkRequest(t + 0.5, 1000 + (round / 4), 0, 2));
  }
  trace.duration = t + 1.0;
  sim::ReplayResult result = sim::Replay(cache, trace);
  EXPECT_GT(result.ingress_fraction, 0.02);
  EXPECT_LT(result.ingress_fraction, 0.30);
}

}  // namespace
}  // namespace vcdn::core
