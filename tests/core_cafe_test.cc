// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/cafe_cache.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/cache_test_util.h"

namespace vcdn::core {
namespace {

using ::vcdn::testing::ChunkRequest;
using ::vcdn::testing::SmallConfig;

TEST(CafeTest, FirstRequestForVideoIsRedirected) {
  CafeCache cache(SmallConfig(100));
  auto outcome = cache.HandleRequest(ChunkRequest(1.0, 7, 0, 3));
  EXPECT_EQ(outcome.decision, Decision::kRedirect);
  EXPECT_EQ(cache.used_chunks(), 0u);
}

TEST(CafeTest, PopularVideoGetsFilled) {
  CafeCache cache(SmallConfig(100));
  cache.HandleRequest(ChunkRequest(1.0, 7, 0, 3));
  auto outcome = cache.HandleRequest(ChunkRequest(2.0, 7, 0, 3));
  EXPECT_EQ(outcome.decision, Decision::kServe);
  EXPECT_EQ(outcome.filled_chunks, 4u);
  EXPECT_TRUE(cache.ContainsChunk(ChunkId{7, 0}));
}

TEST(CafeTest, RepeatRequestsAreHits) {
  CafeCache cache(SmallConfig(100));
  cache.HandleRequest(ChunkRequest(1.0, 7, 0, 3));
  cache.HandleRequest(ChunkRequest(2.0, 7, 0, 3));
  auto outcome = cache.HandleRequest(ChunkRequest(3.0, 7, 0, 3));
  EXPECT_EQ(outcome.decision, Decision::kServe);
  EXPECT_EQ(outcome.hit_chunks, 4u);
  EXPECT_EQ(outcome.filled_chunks, 0u);
}

TEST(CafeTest, VirtualKeyOrderingMatchesIatOrdering) {
  // Theorem 1 property: for random stat pairs, the fixed-T0 virtual keys
  // order chunks exactly as their IATs do, at any evaluation time.
  CafeOptions options;
  options.gamma = 0.25;
  const double gamma = options.gamma;
  auto iat_at = [&](double t_last, double dt, double t) {
    return gamma * (t - t_last) + (1.0 - gamma) * dt;
  };
  auto key_of = [&](double t_last, double dt) {
    return gamma * t_last - (1.0 - gamma) * dt;
  };
  struct Stat {
    double t_last;
    double dt;
  };
  std::vector<Stat> stats = {
      {100.0, 5.0}, {100.0, 50.0}, {90.0, 5.0}, {200.0, 1.0}, {150.0, 80.0}, {10.0, 0.5},
  };
  for (size_t i = 0; i < stats.size(); ++i) {
    for (size_t j = 0; j < stats.size(); ++j) {
      for (double t : {200.0, 500.0, 10000.0}) {
        bool key_less = key_of(stats[i].t_last, stats[i].dt) < key_of(stats[j].t_last, stats[j].dt);
        bool iat_greater =
            iat_at(stats[i].t_last, stats[i].dt, t) > iat_at(stats[j].t_last, stats[j].dt, t);
        EXPECT_EQ(key_less, iat_greater)
            << "i=" << i << " j=" << j << " t=" << t
            << ": virtual-timestamp order must equal IAT order at all times";
      }
    }
  }
}

TEST(CafeTest, EvictsLeastPopularChunk) {
  // Capacity 4: two hot chunks, two cold chunks; a new fill must evict cold.
  CafeCache cache(SmallConfig(4, /*alpha=*/1.0));
  // Warm up video 1 (chunks 0-1, requested every 1s -> very popular).
  cache.HandleRequest(ChunkRequest(0.0, 1, 0, 1));
  for (double t = 1.0; t <= 10.0; t += 1.0) {
    cache.HandleRequest(ChunkRequest(t, 1, 0, 1));
  }
  // Video 2 (chunks 0-1) requested with period 5 -> less popular.
  cache.HandleRequest(ChunkRequest(2.5, 2, 0, 1));
  cache.HandleRequest(ChunkRequest(7.5, 2, 0, 1));  // filled; disk now full
  // Keep video 1 hot a bit more so IATs separate.
  cache.HandleRequest(ChunkRequest(11.0, 1, 0, 1));
  // Video 3 requested with period 1 -> very popular, needs 2 slots.
  cache.HandleRequest(ChunkRequest(11.2, 3, 0, 1));
  cache.HandleRequest(ChunkRequest(12.2, 3, 0, 1));
  cache.HandleRequest(ChunkRequest(13.2, 3, 0, 1));
  if (cache.ContainsChunk(ChunkId{3, 0})) {
    // Whenever video 3 was admitted, the cold video-2 chunks must have gone
    // first and hot video 1 stayed.
    EXPECT_TRUE(cache.ContainsChunk(ChunkId{1, 0}));
    EXPECT_TRUE(cache.ContainsChunk(ChunkId{1, 1}));
    EXPECT_FALSE(cache.ContainsChunk(ChunkId{2, 0}));
  } else {
    ADD_FAILURE() << "popular video 3 was never admitted";
  }
}

TEST(CafeTest, UnseenChunkInheritsVideoIat) {
  CacheConfig config = SmallConfig(100);
  CafeCache cache(config);
  // Chunks 0-1 of video 5 cached with IAT ~2s.
  cache.HandleRequest(ChunkRequest(0.0, 5, 0, 1));
  cache.HandleRequest(ChunkRequest(2.0, 5, 0, 1));
  cache.HandleRequest(ChunkRequest(4.0, 5, 0, 1));
  double estimate = cache.EstimateIat(ChunkId{5, 9}, 4.0);
  EXPECT_TRUE(std::isfinite(estimate));
  EXPECT_GT(estimate, 0.0);
  EXPECT_LT(estimate, 10.0);
  // A chunk of an unknown video has no estimate.
  EXPECT_TRUE(std::isinf(cache.EstimateIat(ChunkId{777, 0}, 4.0)));
}

TEST(CafeTest, UnseenEstimateCanBeDisabled) {
  CafeOptions options;
  options.estimate_unseen_from_video = false;
  CafeCache cache(SmallConfig(100), options);
  cache.HandleRequest(ChunkRequest(0.0, 5, 0, 1));
  cache.HandleRequest(ChunkRequest(2.0, 5, 0, 1));
  EXPECT_TRUE(std::isinf(cache.EstimateIat(ChunkId{5, 9}, 3.0)));
}

TEST(CafeTest, RedirectStillUpdatesPopularity) {
  // Even while redirected, repeated requests build up history so the video
  // is eventually admitted.
  CafeCache cache(SmallConfig(100, /*alpha=*/2.0));
  bool admitted = false;
  for (double t = 0.0; t < 20.0; t += 1.0) {
    auto outcome = cache.HandleRequest(ChunkRequest(t, 9, 0, 1));
    if (outcome.decision == Decision::kServe) {
      admitted = true;
      break;
    }
  }
  EXPECT_TRUE(admitted) << "a video requested every second must eventually be admitted";
}

TEST(CafeTest, HigherAlphaRedirectsMore) {
  // Replay the same synthetic pattern at alpha 0.5 / 1 / 4 and check
  // monotonically non-increasing fill volume.
  auto fills_at = [](double alpha) {
    CafeCache cache(SmallConfig(32, alpha));
    uint64_t fills = 0;
    // 40 videos with periods 1..40 requesting 2 chunks each, over 200s.
    for (int tick = 0; tick < 200; ++tick) {
      for (int v = 1; v <= 40; ++v) {
        if (tick % v == 0) {
          auto outcome = cache.HandleRequest(
              ChunkRequest(static_cast<double>(tick) + 0.001 * v, static_cast<uint64_t>(v), 0, 1));
          fills += outcome.filled_chunks;
        }
      }
    }
    return fills;
  };
  uint64_t cheap = fills_at(0.5);
  uint64_t neutral = fills_at(1.0);
  uint64_t constrained = fills_at(4.0);
  EXPECT_GE(cheap, neutral);
  EXPECT_GE(neutral, constrained);
  EXPECT_GT(cheap, 0u);
}

TEST(CafeTest, DiskNeverExceedsCapacity) {
  CafeCache cache(SmallConfig(16, 1.0));
  double t = 0.0;
  for (int round = 0; round < 50; ++round) {
    for (trace::VideoId v = 1; v <= 10; ++v) {
      t += 1.0;
      cache.HandleRequest(ChunkRequest(t, v, 0, 3));
      ASSERT_LE(cache.used_chunks(), 16u);
    }
  }
}

TEST(CafeTest, RangeWiderThanDiskIsRedirected) {
  CafeCache cache(SmallConfig(4));
  cache.HandleRequest(ChunkRequest(1.0, 1, 0, 7));
  auto outcome = cache.HandleRequest(ChunkRequest(2.0, 1, 0, 7));
  EXPECT_EQ(outcome.decision, Decision::kRedirect);
}

TEST(CafeTest, HistoryIsGarbageCollected) {
  CafeCache cache(SmallConfig(4, 1.0));
  // Many one-shot videos create history entries.
  for (trace::VideoId v = 100; v < 300; ++v) {
    cache.HandleRequest(ChunkRequest(static_cast<double>(v - 100) * 0.1, v, 0, 0));
  }
  // A hot video keeps the cache churning with a small cache age.
  cache.HandleRequest(ChunkRequest(21.0, 1, 0, 3));
  cache.HandleRequest(ChunkRequest(22.0, 1, 0, 3));
  for (double t = 23.0; t < 200.0; t += 1.0) {
    cache.HandleRequest(ChunkRequest(t, 1, 0, 3));
  }
  EXPECT_LT(cache.tracked_history_chunks(), 50u);
}

TEST(CafeTest, DeterministicReplay) {
  auto run = [](std::vector<Decision>& decisions) {
    CafeCache cache(SmallConfig(8, 2.0));
    for (int i = 0; i < 300; ++i) {
      double t = static_cast<double>(i) * 0.7;
      trace::VideoId v = static_cast<trace::VideoId>(i % 9);
      auto outcome = cache.HandleRequest(ChunkRequest(t, v, 0, (i % 4)));
      decisions.push_back(outcome.decision);
    }
  };
  std::vector<Decision> a;
  std::vector<Decision> b;
  run(a);
  run(b);
  EXPECT_EQ(a, b);
}

TEST(CafeTest, CacheAgeTracksLeastPopularChunk) {
  CafeCache cache(SmallConfig(100));
  EXPECT_DOUBLE_EQ(cache.CacheAge(10.0), 0.0);
  cache.HandleRequest(ChunkRequest(0.0, 1, 0, 0));
  cache.HandleRequest(ChunkRequest(5.0, 1, 0, 0));  // filled, dt ~ 5
  double age = cache.CacheAge(10.0);
  EXPECT_GT(age, 0.0);
  // Age grows as time passes without new requests.
  EXPECT_GT(cache.CacheAge(50.0), age);
}

}  // namespace
}  // namespace vcdn::core
