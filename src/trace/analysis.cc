// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/trace/analysis.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/container/fast_hash.h"
#include "src/util/check.h"

namespace vcdn::trace {

namespace {
// Aggregation maps in this file key on uint64 video/chunk ids whose low bits
// are dense and sequential -- exactly the case where libstdc++'s identity
// std::hash clusters; U64Hash mixes them. Pre-sizing is from the trace: a
// few requests per distinct video is typical of the generated workloads.
size_t EstimateDistinctVideos(const Trace& trace) {
  return trace.requests.size() / 4 + 16;
}
}  // namespace

std::vector<uint64_t> PopularityCurve(const Trace& trace) {
  std::unordered_map<VideoId, uint64_t, container::U64Hash> hits;
  hits.reserve(EstimateDistinctVideos(trace));
  for (const Request& r : trace.requests) {
    ++hits[r.video];
  }
  std::vector<uint64_t> curve;
  curve.reserve(hits.size());
  for (const auto& [video, count] : hits) {
    curve.push_back(count);
  }
  std::sort(curve.rbegin(), curve.rend());
  return curve;
}

double HeadConcentration(const Trace& trace, double head_fraction) {
  VCDN_CHECK(head_fraction > 0.0 && head_fraction <= 1.0);
  std::vector<uint64_t> curve = PopularityCurve(trace);
  if (curve.empty()) {
    return 0.0;
  }
  uint64_t total = 0;
  for (uint64_t c : curve) {
    total += c;
  }
  auto head = static_cast<size_t>(static_cast<double>(curve.size()) * head_fraction);
  head = std::max<size_t>(head, 1);
  uint64_t head_hits = 0;
  for (size_t i = 0; i < head && i < curve.size(); ++i) {
    head_hits += curve[i];
  }
  return total == 0 ? 0.0 : static_cast<double>(head_hits) / static_cast<double>(total);
}

std::vector<uint64_t> DemandByHourOfDay(const Trace& trace) {
  std::vector<uint64_t> by_hour(24, 0);
  for (const Request& r : trace.requests) {
    auto hour = static_cast<size_t>(r.arrival_time / 3600.0);
    by_hour[hour % 24] += r.size_bytes();
  }
  return by_hour;
}

double DiurnalPeakToTrough(const Trace& trace) {
  std::vector<uint64_t> by_hour = DemandByHourOfDay(trace);
  uint64_t peak = 0;
  uint64_t trough = UINT64_MAX;
  for (uint64_t v : by_hour) {
    peak = std::max(peak, v);
    trough = std::min(trough, v);
  }
  if (trough == 0 || trough == UINT64_MAX) {
    return peak > 0 ? static_cast<double>(peak) : 1.0;
  }
  return static_cast<double>(peak) / static_cast<double>(trough);
}

std::vector<uint64_t> AccessesByChunkPosition(const Trace& trace, uint64_t chunk_bytes,
                                              size_t max_positions) {
  VCDN_CHECK(max_positions > 0);
  std::vector<uint64_t> by_position(max_positions, 0);
  for (const Request& r : trace.requests) {
    auto first = static_cast<size_t>(r.byte_begin / chunk_bytes);
    auto last = static_cast<size_t>(r.byte_end / chunk_bytes);
    for (size_t c = first; c <= last && c < max_positions; ++c) {
      ++by_position[c];
    }
  }
  return by_position;
}

std::vector<uint64_t> WorkingSetGrowth(const Trace& trace, uint64_t chunk_bytes,
                                       const std::vector<double>& fractions) {
  std::vector<uint64_t> out;
  out.reserve(fractions.size());
  std::unordered_set<uint64_t, container::U64Hash> seen;
  seen.reserve(trace.requests.size());
  size_t next_request = 0;
  double prev_fraction = 0.0;
  for (double fraction : fractions) {
    VCDN_CHECK(fraction > prev_fraction && fraction <= 1.0);
    prev_fraction = fraction;
    double horizon = trace.duration * fraction;
    while (next_request < trace.requests.size() &&
           trace.requests[next_request].arrival_time <= horizon) {
      const Request& r = trace.requests[next_request];
      uint64_t first = r.byte_begin / chunk_bytes;
      uint64_t last = r.byte_end / chunk_bytes;
      for (uint64_t c = first; c <= last; ++c) {
        seen.insert(r.video * 0x100000ull + c);
      }
      ++next_request;
    }
    out.push_back(seen.size());
  }
  return out;
}

uint64_t BytesForAccessShare(const Trace& trace, uint64_t chunk_bytes, double target_fraction) {
  VCDN_CHECK(target_fraction > 0.0 && target_fraction <= 1.0);
  std::unordered_map<uint64_t, uint64_t, container::U64Hash> chunk_hits;
  chunk_hits.reserve(trace.requests.size());
  uint64_t total = 0;
  for (const Request& r : trace.requests) {
    uint64_t first = r.byte_begin / chunk_bytes;
    uint64_t last = r.byte_end / chunk_bytes;
    for (uint64_t c = first; c <= last; ++c) {
      ++chunk_hits[r.video * 0x100000ull + c];
      ++total;
    }
  }
  std::vector<uint64_t> counts;
  counts.reserve(chunk_hits.size());
  for (const auto& [chunk, count] : chunk_hits) {
    counts.push_back(count);
  }
  std::sort(counts.rbegin(), counts.rend());
  auto target = static_cast<uint64_t>(static_cast<double>(total) * target_fraction);
  uint64_t covered = 0;
  uint64_t chunks = 0;
  for (uint64_t c : counts) {
    if (covered >= target) {
      break;
    }
    covered += c;
    ++chunks;
  }
  return chunks * chunk_bytes;
}

}  // namespace vcdn::trace
