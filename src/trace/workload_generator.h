// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Synthetic planet-scale video CDN workload generator.
//
// This is the documented substitution (see DESIGN.md) for the paper's
// proprietary one-month production logs. It reproduces the workload
// properties the paper's evaluation depends on:
//
//   * Zipf-like long-tailed video popularity ("a long, heavy tail in the
//     access frequency curve", Sec. 3) via Pareto-distributed per-video
//     weights;
//   * catalog churn and transient demand (">100,000 hours uploaded per day",
//     Sec. 1; "transient demand patterns", Sec. 1) via Poisson new-video
//     arrivals and exponentially decaying per-video demand;
//   * diurnal load ("a diurnal pattern in both ingress and redirection",
//     Sec. 9 / Fig. 3) via sinusoidal rate modulation in server-local time;
//   * intra-file popularity skew ("the first segments of the video often
//     receive the highest number of hits", Sec. 2) via start-at-zero views
//     and exponentially distributed partial view lengths;
//   * per-server volume/diversity differences (Fig. 7) via ServerProfile.
//
// Generation is fully deterministic for a given (profile, seed).

#ifndef VCDN_SRC_TRACE_WORKLOAD_GENERATOR_H_
#define VCDN_SRC_TRACE_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/trace/catalog.h"
#include "src/trace/request.h"
#include "src/trace/server_profile.h"
#include "src/util/rng.h"

namespace vcdn::trace {

struct WorkloadConfig {
  ServerProfile profile;
  uint64_t seed = 1;
  double duration_seconds = 30.0 * 86400.0;
  // How often the popularity distribution (alias table) is refreshed to
  // account for churn and decay.
  double popularity_refresh_seconds = 6.0 * 3600.0;
  // Demand ramp-up period for a newly uploaded video.
  double new_video_ramp_seconds = 2.0 * 3600.0;
  // Videos whose current demand weight falls below this fraction of their
  // base weight are dropped from the sampling table (dead transients).
  double weight_floor_fraction = 1e-4;
  // Optional instrument registry: Generate() records the catalog size, the
  // number of generated requests and the realized arrival rate under
  // "workload.*". Not owned; may be null.
  obs::MetricsRegistry* metrics = nullptr;
};

struct GeneratedWorkload {
  Trace trace;
  Catalog catalog;
};

// Incremental form of WorkloadGenerator::Generate(): the catalog is built
// eagerly in the constructor (consuming the catalog RNG stream exactly as
// Generate() does), then requests are produced one popularity-refresh window
// at a time. Windows are order-dependent -- each consumes the arrival/pick/
// range RNG streams sequentially -- so the concatenation of all windows is
// bit-identical to the materialized trace for the same config. This is the
// engine behind both Generate() (loop and append) and GeneratedStream
// (generate-as-you-replay with bounded lookahead).
class WindowedWorkload {
 public:
  explicit WindowedWorkload(WorkloadConfig config);

  const Catalog& catalog() const { return catalog_; }
  double duration() const { return config_.duration_seconds; }
  const WorkloadConfig& config() const { return config_; }

  // Appends the next window's requests to `out` (possibly none: windows with
  // no active videos or no accepted arrivals are legitimately empty).
  // Returns false once the trace is exhausted (nothing appended).
  bool NextWindow(std::vector<Request>* out);

  // Moves the catalog out; only meaningful once NextWindow() has returned
  // false (the engine samples from the catalog while windows remain).
  Catalog TakeCatalog() { return std::move(catalog_); }

 private:
  WorkloadConfig config_;
  Catalog catalog_;
  util::Pcg32 arrival_rng_;
  util::Pcg32 pick_rng_;
  util::Pcg32 range_rng_;
  double lambda_max_;
  double window_start_ = 0.0;
  // Scratch reused across windows to avoid per-window allocation.
  std::vector<VideoId> active_ids_;
  std::vector<double> active_weights_;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  // Generates the catalog and the full request trace. Deterministic.
  GeneratedWorkload Generate();

  // Demand-rate multiplier at absolute trace time t (server-local diurnal
  // cycle plus a mild weekly component). Exposed for tests.
  static double DiurnalFactor(const ServerProfile& profile, double t);

  // Demand weight of a video at time t given its metadata (0 before birth,
  // ramp after upload, exponential decay for transients). Exposed for tests.
  static double VideoWeightAt(const VideoMeta& video, double t, const WorkloadConfig& config);

 private:
  WorkloadConfig config_;
};

struct ParallelGenerateOptions {
  // Worker count: 0 selects hardware concurrency, 1 generates inline on the
  // calling thread (no pool built).
  size_t threads = 0;
  // Generate on an existing pool instead of building one (threads ignored).
  exec::ThreadPool* pool = nullptr;
};

// Generates one workload per config, sharding the (independent) generations
// across a thread pool. Bit-identical to calling Generate() on each config in
// order, for any thread count: generation is a pure function of its config,
// and per-config metrics recordings are buffered locally and merged in config
// order after the join. Give each server its own decorrelated RNG stream with
// util::SplitSeed(base_seed, server_index).
std::vector<GeneratedWorkload> GenerateWorkloads(const std::vector<WorkloadConfig>& configs,
                                                 const ParallelGenerateOptions& options = {});

}  // namespace vcdn::trace

#endif  // VCDN_SRC_TRACE_WORKLOAD_GENERATOR_H_
