// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/trace/request.h"

#include <cmath>
#include <unordered_set>

namespace vcdn::trace {

size_t Trace::DistinctVideos() const {
  std::unordered_set<VideoId> seen;
  seen.reserve(requests.size() / 4 + 1);
  for (const Request& r : requests) {
    seen.insert(r.video);
  }
  return seen.size();
}

bool Trace::IsWellFormed() const {
  // NaN would slip past every ordering comparison below (all comparisons
  // with NaN are false), so reject non-finite times explicitly.
  if (!std::isfinite(duration) || duration < 0.0) {
    return false;
  }
  double prev = 0.0;
  for (const Request& r : requests) {
    if (!std::isfinite(r.arrival_time)) {
      return false;
    }
    if (r.arrival_time < prev || r.arrival_time < 0.0) {
      return false;
    }
    if (r.byte_end < r.byte_begin) {
      return false;
    }
    prev = r.arrival_time;
  }
  return requests.empty() || requests.back().arrival_time <= duration;
}

}  // namespace vcdn::trace
