// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/trace/trace_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

#include "src/util/check.h"

namespace vcdn::trace {

namespace {

// The payload is read in place: a mapped record span is reinterpreted as a
// span of Requests, so the wire layout IS the in-memory layout.
static_assert(sizeof(Request) == 32, "record layout drifted from trace::Request");
static_assert(alignof(Request) == 8, "record alignment drifted");
static_assert(std::is_trivially_copyable_v<Request>, "records must be trivially copyable");
static_assert(offsetof(Request, arrival_time) == 0 && offsetof(Request, video) == 8 &&
                  offsetof(Request, byte_begin) == 16 && offsetof(Request, byte_end) == 24,
              "record field order drifted");

constexpr char kMagic[8] = {'V', 'C', 'D', 'N', 'T', 'R', 'S', '2'};
constexpr uint32_t kVersion = 2;
constexpr uint64_t kHeaderBytes = 64;
constexpr uint64_t kIndexEntryBytes = 48;
constexpr uint64_t kRecordBytes = sizeof(Request);

struct FileHeader {
  char magic[8];
  uint32_t header_version;
  uint32_t header_bytes;
  uint32_t index_entry_bytes;
  uint32_t flags;  // none defined in v2; readers reject unknown bits
  uint64_t server_count;
  uint64_t total_records;
  double duration;  // max over the per-server durations
  uint64_t total_catalog_videos;
  uint64_t reserved;
};
static_assert(sizeof(FileHeader) == kHeaderBytes, "header layout drifted");
static_assert(sizeof(TraceServerInfo) == kIndexEntryBytes, "index layout drifted");
// Records start at 64 + 48*n, a multiple of 8: mapped Requests stay aligned.
static_assert(kHeaderBytes % 8 == 0 && kIndexEntryBytes % 8 == 0);

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Zero-copy stream over one mapped server section. Records are validated
// lazily, a span at a time; the stream ends early (and status() turns
// non-OK) at the first malformed record, so replay over an unvalidated file
// can never feed garbage to a cache.
class MmapServerStream final : public RequestStream {
 public:
  MmapServerStream(const Request* records, const TraceServerInfo& info)
      : records_(records), info_(info) {}

  RequestSpan Next(size_t max) override {
    VCDN_DCHECK(max > 0);
    if (cursor_ >= info_.record_count) {
      return {};
    }
    const size_t want = std::min<uint64_t>(max, info_.record_count - cursor_);
    size_t good = 0;
    for (; good < want; ++good) {
      const Request& r = records_[cursor_ + good];
      if (!std::isfinite(r.arrival_time) || r.arrival_time < 0.0 ||
          r.arrival_time < last_time_ || r.arrival_time > info_.duration ||
          r.byte_end < r.byte_begin) {
        status_ = util::DataLossError("corrupt record " + std::to_string(cursor_ + good) +
                                      ": non-finite/out-of-order time or inverted range");
        break;
      }
      last_time_ = r.arrival_time;
    }
    RequestSpan span{records_ + cursor_, good};
    if (!status_.ok()) {
      cursor_ = info_.record_count;  // end the stream permanently
    } else {
      cursor_ += good;
    }
    return span;
  }

  double duration() const override { return info_.duration; }
  uint64_t total_requests_hint() const override { return info_.record_count; }
  util::Status status() const override { return status_; }

 private:
  const Request* records_;
  TraceServerInfo info_;
  uint64_t cursor_ = 0;
  double last_time_ = 0.0;
  util::Status status_ = util::OkStatus();
};

}  // namespace

// --- Writer ------------------------------------------------------------------

util::Status TraceFileWriter::Open(const std::string& path, size_t server_count) {
  if (out_.is_open()) {
    return util::FailedPreconditionError("writer already open");
  }
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    return util::NotFoundError("cannot open for write: " + path);
  }
  server_count_ = server_count;
  // Placeholder header + index, patched by Finish().
  std::vector<char> zeros(kHeaderBytes + kIndexEntryBytes * server_count, 0);
  out_.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  if (!out_) {
    return util::DataLossError("write failed: placeholder header");
  }
  return util::OkStatus();
}

util::Status TraceFileWriter::BeginServer(double duration, uint64_t catalog_videos) {
  if (!out_.is_open() || finished_) {
    return util::FailedPreconditionError("writer not open");
  }
  if (index_.size() >= server_count_) {
    return util::FailedPreconditionError("more server sections than the declared " +
                                         std::to_string(server_count_));
  }
  if (!std::isfinite(duration) || duration < 0.0) {
    return util::InvalidArgumentError("non-finite or negative server duration");
  }
  TraceServerInfo info;
  info.record_offset = records_written_;
  info.duration = duration;
  info.catalog_videos = catalog_videos;
  index_.push_back(info);
  in_server_ = true;
  last_time_ = -1.0;
  return util::OkStatus();
}

util::Status TraceFileWriter::Append(const Request* records, size_t count) {
  if (!in_server_) {
    return util::FailedPreconditionError("Append before BeginServer");
  }
  TraceServerInfo& info = index_.back();
  for (size_t i = 0; i < count; ++i) {
    const Request& r = records[i];
    if (!std::isfinite(r.arrival_time) || r.arrival_time < 0.0) {
      return util::InvalidArgumentError("record " + std::to_string(info.record_count + i) +
                                        ": non-finite or negative arrival_time");
    }
    if (r.arrival_time < last_time_) {
      return util::InvalidArgumentError("record " + std::to_string(info.record_count + i) +
                                        ": arrival_time out of order");
    }
    if (r.arrival_time > info.duration) {
      return util::InvalidArgumentError("record " + std::to_string(info.record_count + i) +
                                        ": arrival_time after the section duration");
    }
    if (r.byte_end < r.byte_begin) {
      return util::InvalidArgumentError("record " + std::to_string(info.record_count + i) +
                                        ": byte_end < byte_begin");
    }
    last_time_ = r.arrival_time;
  }
  if (count > 0) {
    if (info.record_count == 0) {
      info.min_time = records[0].arrival_time;
    }
    info.max_time = records[count - 1].arrival_time;
    out_.write(reinterpret_cast<const char*>(records),
               static_cast<std::streamsize>(count * kRecordBytes));
    if (!out_) {
      return util::DataLossError("write failed: record payload");
    }
    info.record_count += count;
    records_written_ += count;
  }
  return util::OkStatus();
}

util::Status TraceFileWriter::AppendTrace(const Trace& trace, uint64_t catalog_videos) {
  VCDN_RETURN_IF_ERROR(BeginServer(trace.duration, catalog_videos));
  return Append(trace.requests.data(), trace.requests.size());
}

util::Status TraceFileWriter::Finish() {
  if (!out_.is_open() || finished_) {
    return util::FailedPreconditionError("writer not open");
  }
  if (index_.size() != server_count_) {
    return util::FailedPreconditionError("declared " + std::to_string(server_count_) +
                                         " servers but wrote " + std::to_string(index_.size()));
  }
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.header_version = kVersion;
  header.header_bytes = static_cast<uint32_t>(kHeaderBytes);
  header.index_entry_bytes = static_cast<uint32_t>(kIndexEntryBytes);
  header.flags = 0;
  header.server_count = server_count_;
  header.total_records = records_written_;
  header.duration = 0.0;
  header.total_catalog_videos = 0;
  for (const TraceServerInfo& info : index_) {
    header.duration = std::max(header.duration, info.duration);
    header.total_catalog_videos += info.catalog_videos;
  }
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out_.write(reinterpret_cast<const char*>(index_.data()),
             static_cast<std::streamsize>(index_.size() * kIndexEntryBytes));
  out_.flush();
  if (!out_) {
    return util::DataLossError("write failed: header patch");
  }
  out_.close();
  finished_ = true;
  return util::OkStatus();
}

util::Status WriteTraceFile(const std::vector<const Trace*>& traces, const std::string& path,
                            const std::vector<uint64_t>& catalog_videos) {
  if (!catalog_videos.empty() && catalog_videos.size() != traces.size()) {
    return util::InvalidArgumentError("catalog_videos not parallel to traces");
  }
  TraceFileWriter writer;
  VCDN_RETURN_IF_ERROR(writer.Open(path, traces.size()));
  for (size_t i = 0; i < traces.size(); ++i) {
    VCDN_RETURN_IF_ERROR(
        writer.AppendTrace(*traces[i], catalog_videos.empty() ? 0 : catalog_videos[i]));
  }
  return writer.Finish();
}

// --- Reader ------------------------------------------------------------------

MmapTrace& MmapTrace::operator=(MmapTrace&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) {
      ::munmap(base_, map_bytes_);
    }
    base_ = std::exchange(other.base_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    records_ = std::exchange(other.records_, nullptr);
    servers_ = std::move(other.servers_);
    total_records_ = std::exchange(other.total_records_, 0);
    total_catalog_videos_ = std::exchange(other.total_catalog_videos_, 0);
    duration_ = std::exchange(other.duration_, 0.0);
  }
  return *this;
}

MmapTrace::~MmapTrace() {
  if (base_ != nullptr) {
    ::munmap(base_, map_bytes_);
  }
}

util::Result<MmapTrace> MmapTrace::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return util::NotFoundError("cannot open: " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return util::InternalError(ErrnoMessage("fstat failed"));
  }
  const auto file_bytes = static_cast<uint64_t>(st.st_size);
  if (file_bytes < kHeaderBytes) {
    ::close(fd);
    return util::DataLossError("truncated header: file is " + std::to_string(file_bytes) +
                               " bytes, the VCDNTRS2 header is " + std::to_string(kHeaderBytes));
  }
  void* base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return util::InternalError(ErrnoMessage("mmap failed"));
  }

  // The mapping is owned from here on: any early return unmaps via ~MmapTrace.
  MmapTrace trace;
  trace.base_ = base;
  trace.map_bytes_ = file_bytes;

  FileHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return util::InvalidArgumentError("bad magic: not a VCDNTRS2 trace file");
  }
  if (header.header_version != kVersion) {
    return util::InvalidArgumentError("unsupported trace file version " +
                                      std::to_string(header.header_version) + " (expected " +
                                      std::to_string(kVersion) + ")");
  }
  if (header.header_bytes != kHeaderBytes || header.index_entry_bytes != kIndexEntryBytes) {
    return util::InvalidArgumentError("unexpected header/index entry size");
  }
  if (header.flags != 0) {
    return util::InvalidArgumentError("unknown header flags " + std::to_string(header.flags));
  }
  if (!std::isfinite(header.duration) || header.duration < 0.0) {
    return util::DataLossError("corrupt header: non-finite or negative duration");
  }
  // Never trust a count before bounding it by the bytes actually present.
  if (header.server_count > (file_bytes - kHeaderBytes) / kIndexEntryBytes) {
    return util::DataLossError("truncated server index: header claims " +
                               std::to_string(header.server_count) + " servers");
  }
  const uint64_t payload_offset = kHeaderBytes + header.server_count * kIndexEntryBytes;
  const uint64_t payload_bytes = file_bytes - payload_offset;
  if (header.total_records > payload_bytes / kRecordBytes) {
    return util::DataLossError("corrupt header: record count " +
                               std::to_string(header.total_records) + " exceeds the " +
                               std::to_string(payload_bytes) + " payload bytes present");
  }
  if (header.total_records * kRecordBytes != payload_bytes) {
    return util::InvalidArgumentError(
        "count/payload mismatch: " +
        std::to_string(payload_bytes - header.total_records * kRecordBytes) +
        " trailing bytes after the last record");
  }

  const char* bytes = static_cast<const char*>(base);
  trace.servers_.resize(header.server_count);
  uint64_t running = 0;
  for (uint64_t i = 0; i < header.server_count; ++i) {
    TraceServerInfo& info = trace.servers_[i];
    std::memcpy(&info, bytes + kHeaderBytes + i * kIndexEntryBytes, kIndexEntryBytes);
    if (!std::isfinite(info.duration) || !std::isfinite(info.min_time) ||
        !std::isfinite(info.max_time) || info.duration < 0.0 || info.min_time < 0.0 ||
        info.max_time < 0.0) {
      return util::DataLossError("corrupt index entry " + std::to_string(i) +
                                 ": non-finite or negative time field");
    }
    if (info.min_time > info.max_time || info.max_time > info.duration) {
      return util::InvalidArgumentError("corrupt index entry " + std::to_string(i) +
                                        ": time range inconsistent with duration");
    }
    if (info.record_offset != running) {
      return util::InvalidArgumentError("server index out of order or not dense at entry " +
                                        std::to_string(i));
    }
    if (info.record_count > header.total_records - running) {
      return util::InvalidArgumentError("index record counts exceed the header total at entry " +
                                        std::to_string(i));
    }
    running += info.record_count;
    trace.total_catalog_videos_ += info.catalog_videos;
  }
  if (running != header.total_records) {
    return util::InvalidArgumentError("index record counts sum to " + std::to_string(running) +
                                      " but the header claims " +
                                      std::to_string(header.total_records));
  }

  trace.records_ = reinterpret_cast<const Request*>(bytes + payload_offset);
  trace.total_records_ = header.total_records;
  trace.duration_ = header.duration;
  return trace;
}

std::unique_ptr<RequestStream> MmapTrace::ServerStream(size_t server) const {
  VCDN_CHECK(server < servers_.size());
  const TraceServerInfo& info = servers_[server];
  return std::make_unique<MmapServerStream>(records_ + info.record_offset, info);
}

util::Result<uint64_t> MmapTrace::Validate() const {
  RequestDigest digest;
  for (size_t s = 0; s < servers_.size(); ++s) {
    const TraceServerInfo& info = servers_[s];
    const Request* records = records_ + info.record_offset;
    double last = 0.0;
    for (uint64_t i = 0; i < info.record_count; ++i) {
      const Request& r = records[i];
      if (!std::isfinite(r.arrival_time) || r.arrival_time < 0.0 || r.arrival_time < last ||
          r.arrival_time > info.duration || r.byte_end < r.byte_begin) {
        return util::DataLossError("server " + std::to_string(s) + " record " + std::to_string(i) +
                                   ": non-finite/out-of-order time or inverted range");
      }
      last = r.arrival_time;
      digest.Fold(r);
    }
    const double expect_min = info.record_count > 0 ? records[0].arrival_time : 0.0;
    const double expect_max = info.record_count > 0 ? records[info.record_count - 1].arrival_time : 0.0;
    if (info.min_time != expect_min || info.max_time != expect_max) {
      return util::InvalidArgumentError("index entry " + std::to_string(s) +
                                        ": min/max_time disagree with the records");
    }
  }
  return digest.value();
}

util::Result<Trace> MmapTrace::ReadServer(size_t server) const {
  if (server >= servers_.size()) {
    return util::InvalidArgumentError("server " + std::to_string(server) + " out of range");
  }
  const TraceServerInfo& info = servers_[server];
  auto stream = ServerStream(server);
  Trace trace;
  trace.duration = info.duration;
  trace.requests.reserve(static_cast<size_t>(info.record_count));
  for (;;) {
    RequestSpan span = stream->Next(64 * 1024);
    if (span.empty()) {
      break;
    }
    trace.requests.insert(trace.requests.end(), span.begin(), span.end());
  }
  VCDN_RETURN_IF_ERROR(stream->status());
  return trace;
}

}  // namespace vcdn::trace
