// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Per-server workload profiles standing in for the paper's six anonymized
// production servers (one each in Africa, Asia, Australia, Europe, North and
// South America). The paper reports that the servers differ in "request
// volume and diversity compared to the same 1 TB disk size given to all"
// (Section 9, Fig. 7): the Asian server serves "more limited requests" (hence
// higher efficiency) while the South American one is busier with a wider gap
// between xLRU and the other algorithms. The profiles below encode exactly
// those axes: request rate, catalog breadth, popularity skew, churn, and
// local-time diurnal phase.

#ifndef VCDN_SRC_TRACE_SERVER_PROFILE_H_
#define VCDN_SRC_TRACE_SERVER_PROFILE_H_

#include <string>
#include <vector>

namespace vcdn::trace {

struct ServerProfile {
  std::string name;

  // Average request arrival rate (requests/second) before diurnal modulation.
  double base_request_rate = 0.2;
  // Diurnal modulation amplitude in [0, 1): rate(t) = base * (1 + a*shape(t)).
  double diurnal_amplitude = 0.55;
  // Timezone offset in hours relative to trace origin (shifts the diurnal peak).
  double timezone_offset_hours = 0.0;

  // Catalog breadth (request diversity): number of videos with nonzero demand
  // at this server.
  size_t catalog_size = 30000;
  // Popularity skew across the catalog: Pareto shape for per-video base
  // weights. Smaller shape => heavier weight tail => demand concentrates on
  // a few very hot videos (narrow request profile, cache-friendly); larger
  // shape => flatter popularity => more diverse requests.
  double popularity_shape = 1.05;
  // Fraction of videos with stable (evergreen) popularity; the rest are
  // transient with exponentially decaying demand.
  double evergreen_fraction = 0.35;
  // New uploads per day (catalog churn).
  double new_videos_per_day = 400.0;
  // Mean decay constant for transient videos, in days.
  double transient_tau_days = 4.0;

  // Video size model: log-normal over bytes, clamped to [min, max].
  double size_lognormal_mu = 17.2;     // exp(17.2) ~ 29.5 MB median
  double size_lognormal_sigma = 0.85;  // long tail of bigger files
  uint64_t min_video_bytes = 2ull << 20;
  uint64_t max_video_bytes = 512ull << 20;

  // Intra-file access pattern: probability a view starts at byte 0, and the
  // mean viewed fraction of the file for a view (exponentially distributed,
  // truncated at the end of the file). Early segments are hottest (Sec. 2).
  double start_at_zero_probability = 0.62;
  double mean_view_fraction = 0.34;
};

// The six paper servers. `scale` in (0, 1] proportionally shrinks request
// rate, catalog size and churn together, preserving the working-set-to-disk
// ratio when the disk is scaled by the same factor. Profiles are ordered as
// in Fig. 7: Africa, Asia, Australia, Europe, N. America, S. America.
std::vector<ServerProfile> PaperServerProfiles(double scale = 1.0);

// The Europe profile alone (the paper's reference server for Figs. 3-6).
ServerProfile EuropeProfile(double scale = 1.0);

}  // namespace vcdn::trace

#endif  // VCDN_SRC_TRACE_SERVER_PROFILE_H_
