// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Trace downsampling for the Optimal-vs-Psychic experiment (Sec. 9.1):
// "We use the traces of a two day period, which we down-sample to contain the
// requests for a representative subset of 100 distinct files — selected
// uniformly from the list of files sorted by their hit count during the two
// days. We also cap the file size to 20 MB for this experiment."

#ifndef VCDN_SRC_TRACE_DOWNSAMPLE_H_
#define VCDN_SRC_TRACE_DOWNSAMPLE_H_

#include <cstdint>
#include <vector>

#include "src/trace/catalog.h"
#include "src/trace/request.h"

namespace vcdn::trace {

struct DownsampleOptions {
  double window_start = 0.0;
  double window_seconds = 2.0 * 86400.0;
  size_t num_files = 100;
  uint64_t file_cap_bytes = 20ull << 20;
  // Extra cap on the number of kept requests (0 = unlimited). The paper's
  // authors ran a commercial LP solver on server-class hardware; this knob
  // lets the reproduction bound the LP size while keeping the workload
  // composition identical (requests are truncated in time order).
  size_t max_requests = 0;
};

struct DownsampledTrace {
  Trace trace;                    // re-based so window_start maps to t = 0
  std::vector<VideoId> selected;  // the chosen files, ascending hit rank order
};

// Applies the Sec. 9.1 reduction. File selection takes every k-th file from
// the hit-count-sorted list (uniform coverage of head, middle and tail).
// Byte ranges are clipped to the 20 MB cap; requests entirely above the cap
// are re-pointed at the first bytes past their start modulo the cap (keeping
// the request count) -- in practice such requests are rare because most views
// start at byte 0.
DownsampledTrace DownsampleForOptimal(const Trace& trace, const DownsampleOptions& options);

}  // namespace vcdn::trace

#endif  // VCDN_SRC_TRACE_DOWNSAMPLE_H_
