// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Workload analysis: the statistics the paper's arguments rest on. Used by
// the trace_explorer example and by tests that validate the generator
// produces workloads with the right character (Zipf head concentration,
// diurnal cycle, intra-file skew, working-set growth that motivates
// footnote 1's "a few percent of higher cache efficiency requires up to a
// multi-fold increase in disk size").

#ifndef VCDN_SRC_TRACE_ANALYSIS_H_
#define VCDN_SRC_TRACE_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "src/trace/request.h"

namespace vcdn::trace {

// Per-video hit counts sorted descending (the popularity curve).
std::vector<uint64_t> PopularityCurve(const Trace& trace);

// Fraction of all requests landing on the top `head_fraction` of videos
// (head concentration; ~0.1 -> "top 10% of videos").
double HeadConcentration(const Trace& trace, double head_fraction);

// Requested bytes per hour-of-day (UTC), length 24.
std::vector<uint64_t> DemandByHourOfDay(const Trace& trace);

// Peak-to-trough ratio of the hour-of-day demand profile (>= 1).
double DiurnalPeakToTrough(const Trace& trace);

// Access counts by chunk position within the file, up to `max_positions`
// (intra-file popularity skew; position 0 is hottest on video workloads).
std::vector<uint64_t> AccessesByChunkPosition(const Trace& trace, uint64_t chunk_bytes,
                                              size_t max_positions);

// Number of distinct chunks requested within the first `fraction` of the
// trace duration, for each fraction given -- the working-set growth curve.
// Fractions must be ascending in (0, 1].
std::vector<uint64_t> WorkingSetGrowth(const Trace& trace, uint64_t chunk_bytes,
                                       const std::vector<double>& fractions);

// Bytes a disk would need to capture `target_fraction` of all chunk accesses
// if it held exactly the most-accessed chunks (an offline skyline; quantifies
// footnote 1's diminishing returns of disk size).
uint64_t BytesForAccessShare(const Trace& trace, uint64_t chunk_bytes, double target_fraction);

}  // namespace vcdn::trace

#endif  // VCDN_SRC_TRACE_ANALYSIS_H_
