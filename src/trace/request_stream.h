// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Pull-iterator interface over a time-ordered request sequence, the
// streaming counterpart of a materialized trace::Trace. Replay consumes
// requests in bounded spans (sim::ReplayStream), so a producer never has to
// hold more than its lookahead in memory: full paper-scale traces (a month,
// six servers) replay with peak RSS independent of trace length.
//
// Producers:
//   * TraceView        -- adapter over an in-memory Trace (the materialized
//                         reference every streaming producer is digest-
//                         checked against),
//   * GeneratedStream  -- generate-as-you-replay synthetic workload
//                         (src/trace/generated_stream.h),
//   * MmapTrace::ServerStream -- zero-copy spans over a packed VCDNTRS2
//                         binary trace file (src/trace/trace_file.h).

#ifndef VCDN_SRC_TRACE_REQUEST_STREAM_H_
#define VCDN_SRC_TRACE_REQUEST_STREAM_H_

#include <algorithm>
#include <cstdint>

#include "src/trace/request.h"
#include "src/util/status.h"

namespace vcdn::trace {

// A view of consecutive, time-ordered requests. Valid until the next Next()
// call on the producing stream, or until the stream is destroyed.
struct RequestSpan {
  const Request* data = nullptr;
  size_t count = 0;

  bool empty() const { return count == 0; }
  const Request* begin() const { return data; }
  const Request* end() const { return data + count; }
};

class RequestStream {
 public:
  virtual ~RequestStream() = default;

  // Pulls the next at-most-`max` requests (`max` >= 1). An empty span means
  // end of stream -- either exhaustion or a validation failure; consumers
  // that stream untrusted bytes must check status() when the stream ends.
  virtual RequestSpan Next(size_t max) = 0;

  // Covered time span [0, duration); known up front for every producer (the
  // generator knows its config, the binary format carries it in the header),
  // so replay collectors pre-size without seeing the whole stream.
  virtual double duration() const = 0;

  // Total record count when known up front (materialized traces, binary
  // headers); 0 when the stream is generated on the fly.
  virtual uint64_t total_requests_hint() const { return 0; }

  // Non-OK when the stream ended early on a malformed record (a lazily
  // validating producer). Streams that cannot fail always return OK.
  virtual util::Status status() const { return util::OkStatus(); }
};

// Adapter over a materialized Trace. The trace is not owned and must outlive
// the view.
class TraceView final : public RequestStream {
 public:
  explicit TraceView(const Trace& trace) : trace_(&trace) {}

  RequestSpan Next(size_t max) override {
    VCDN_DCHECK(max > 0);
    const size_t remaining = trace_->requests.size() - cursor_;
    const size_t count = std::min(max, remaining);
    RequestSpan span{trace_->requests.data() + cursor_, count};
    cursor_ += count;
    return span;
  }

  double duration() const override { return trace_->duration; }
  uint64_t total_requests_hint() const override { return trace_->requests.size(); }

 private:
  const Trace* trace_;
  size_t cursor_ = 0;
};

}  // namespace vcdn::trace

#endif  // VCDN_SRC_TRACE_REQUEST_STREAM_H_
