// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/trace/generated_stream.h"

#include <chrono>
#include <utility>

#include "src/util/check.h"

namespace vcdn::trace {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

GeneratedStream::GeneratedStream(WorkloadConfig config, GeneratedStreamOptions options)
    : windows_(std::move(config)), options_(options) {
  if (options_.generator_pool != nullptr) {
    VCDN_CHECK(options_.lookahead_windows > 0);
    std::lock_guard<std::mutex> lock(mu_);
    PumpLocked();
  }
}

GeneratedStream::~GeneratedStream() {
  if (options_.generator_pool != nullptr) {
    // An in-flight producer task touches this object; wait it out. stopping_
    // keeps it from resubmitting itself.
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
    cv_.wait(lock, [this] { return !producer_running_; });
  }
  if (options_.stats != nullptr) {
    options_.stats->consumer_wait_ns.fetch_add(consumer_wait_ns_, std::memory_order_relaxed);
    options_.stats->generate_ns.fetch_add(generate_ns_, std::memory_order_relaxed);
    options_.stats->windows.fetch_add(windows_generated_, std::memory_order_relaxed);
    options_.stats->requests.fetch_add(requests_generated_, std::memory_order_relaxed);
  }
}

void GeneratedStream::PumpLocked() {
  if (producer_running_ || engine_done_ || stopping_) {
    return;
  }
  if (ready_.size() >= options_.lookahead_windows) {
    return;
  }
  producer_running_ = true;
  options_.generator_pool->Submit([this] { ProduceOne(); }, "trace.generate_window");
}

void GeneratedStream::ProduceOne() {
  // windows_ is only ever touched here in pooled mode, and at most one
  // producer task is in flight (producer_running_), so no lock is needed for
  // the generation itself.
  std::vector<Request> window;
  const uint64_t t0 = NowNs();
  const bool more = windows_.NextWindow(&window);
  const uint64_t elapsed = NowNs() - t0;

  std::lock_guard<std::mutex> lock(mu_);
  generate_ns_ += elapsed;
  if (more) {
    ++windows_generated_;
    requests_generated_ += window.size();
    if (!window.empty()) {
      ready_.push_back(std::move(window));
    }
  } else {
    engine_done_ = true;
  }
  producer_running_ = false;
  PumpLocked();
  cv_.notify_all();
}

bool GeneratedStream::Refill() {
  if (options_.generator_pool == nullptr) {
    current_.clear();
    cursor_ = 0;
    while (current_.empty()) {
      if (inline_done_) {
        return false;
      }
      const uint64_t t0 = NowNs();
      const bool more = windows_.NextWindow(&current_);
      generate_ns_ += NowNs() - t0;
      if (more) {
        ++windows_generated_;
        requests_generated_ += current_.size();
      } else {
        inline_done_ = true;
      }
    }
    return true;
  }

  std::unique_lock<std::mutex> lock(mu_);
  PumpLocked();
  if (ready_.empty() && !engine_done_) {
    const uint64_t t0 = NowNs();
    cv_.wait(lock, [this] { return !ready_.empty() || engine_done_; });
    consumer_wait_ns_ += NowNs() - t0;
  }
  if (ready_.empty()) {
    return false;
  }
  current_ = std::move(ready_.front());
  ready_.pop_front();
  cursor_ = 0;
  PumpLocked();  // the pop freed a lookahead slot
  return true;
}

RequestSpan GeneratedStream::Next(size_t max) {
  VCDN_DCHECK(max > 0);
  if (cursor_ == current_.size()) {
    if (!Refill()) {
      return {};
    }
  }
  const size_t count = std::min(max, current_.size() - cursor_);
  RequestSpan span{current_.data() + cursor_, count};
  cursor_ += count;
  return span;
}

}  // namespace vcdn::trace
