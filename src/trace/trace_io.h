// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Trace (de)serialization. Two formats:
//
//   * CSV: human-readable, header "arrival_time,video,byte_begin,byte_end";
//     interoperable with spreadsheet/plotting tooling.
//   * VCDNTRC1 binary: compact native-endian record stream for large traces.
//
// Real anonymized logs in either format can be replayed through the
// simulator in place of synthetic ones.

#ifndef VCDN_SRC_TRACE_TRACE_IO_H_
#define VCDN_SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/trace/request.h"
#include "src/util/status.h"

namespace vcdn::trace {

// CSV ------------------------------------------------------------------------

util::Status WriteCsv(const Trace& trace, std::ostream& out);
util::Status WriteCsvFile(const Trace& trace, const std::string& path);

util::Result<Trace> ReadCsv(std::istream& in);
util::Result<Trace> ReadCsvFile(const std::string& path);

// Binary ----------------------------------------------------------------------

util::Status WriteBinary(const Trace& trace, std::ostream& out);
util::Status WriteBinaryFile(const Trace& trace, const std::string& path);

util::Result<Trace> ReadBinary(std::istream& in);
util::Result<Trace> ReadBinaryFile(const std::string& path);

}  // namespace vcdn::trace

#endif  // VCDN_SRC_TRACE_TRACE_IO_H_
