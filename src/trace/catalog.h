// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Video catalog metadata produced alongside a synthetic trace. Caches never
// see this (they only observe requests); it is used by the generator itself,
// by the Fig. 2 downsampler (file-size capping) and by analysis tooling.

#ifndef VCDN_SRC_TRACE_CATALOG_H_
#define VCDN_SRC_TRACE_CATALOG_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/trace/request.h"

namespace vcdn::trace {

enum class VideoClass {
  kEvergreen,  // stable long-term popularity (music videos, classics)
  kTransient,  // news/viral content whose demand decays within days
};

struct VideoMeta {
  VideoId id = 0;
  uint64_t size_bytes = 0;
  double birth_time = 0.0;  // may be negative for pre-existing catalog
  VideoClass video_class = VideoClass::kEvergreen;
  double base_weight = 0.0;  // popularity scale, heavy-tailed across videos
  double decay_tau = 0.0;    // transient decay constant (seconds); 0 for evergreen
};

struct Catalog {
  std::vector<VideoMeta> videos;  // indexed by VideoId

  const VideoMeta& Get(VideoId id) const {
    VCDN_CHECK(id < videos.size());
    return videos[id];
  }

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const VideoMeta& v : videos) {
      total += v.size_bytes;
    }
    return total;
  }
};

}  // namespace vcdn::trace

#endif  // VCDN_SRC_TRACE_CATALOG_H_
