// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// The request/trace model of Section 4 of the paper: a request R carries a
// video ID R.v, an inclusive byte range [R.b0, R.b1], and an arrival
// timestamp R.t. Chunking math ([R.c0, R.c1] = [floor(b0/K), floor(b1/K)] for
// inclusive ranges) lives in src/core/chunk.h.

#ifndef VCDN_SRC_TRACE_REQUEST_H_
#define VCDN_SRC_TRACE_REQUEST_H_

#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace vcdn::trace {

using VideoId = uint64_t;

struct Request {
  double arrival_time = 0.0;  // seconds since trace origin
  VideoId video = 0;
  uint64_t byte_begin = 0;  // inclusive
  uint64_t byte_end = 0;    // inclusive; byte_end >= byte_begin

  uint64_t size_bytes() const {
    VCDN_DCHECK(byte_end >= byte_begin);
    return byte_end - byte_begin + 1;
  }
};

// A replayable request log. Requests are ordered by arrival time.
struct Trace {
  std::vector<Request> requests;
  // Covered time span [0, duration). Kept explicitly because the last request
  // rarely lands exactly at the end of the measurement window.
  double duration = 0.0;

  uint64_t TotalRequestedBytes() const {
    uint64_t total = 0;
    for (const Request& r : requests) {
      total += r.size_bytes();
    }
    return total;
  }

  // Number of distinct video IDs appearing in the trace.
  size_t DistinctVideos() const;

  // Verifies arrival times are non-decreasing and ranges well-formed.
  bool IsWellFormed() const;
};

}  // namespace vcdn::trace

#endif  // VCDN_SRC_TRACE_REQUEST_H_
