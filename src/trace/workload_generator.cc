// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/trace/workload_generator.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "src/util/check.h"
#include "src/util/distributions.h"
#include "src/util/rng.h"

namespace vcdn::trace {

namespace {

constexpr double kSecondsPerDay = 86400.0;
constexpr double kSecondsPerWeek = 7.0 * kSecondsPerDay;
// Age of the oldest pre-existing catalog entries relative to trace start.
constexpr double kCatalogHistorySeconds = 45.0 * kSecondsPerDay;
// Minimum bytes a view consumes (a player fetches at least its startup buffer).
constexpr uint64_t kMinViewBytes = 64ull << 10;

// Distinct PCG32 stream ids so that each aspect of generation has an
// independent, reproducible random sequence.
enum RngStream : uint64_t {
  kStreamCatalog = 1,
  kStreamArrivals = 2,
  kStreamVideoPick = 3,
  kStreamRange = 4,
};

}  // namespace

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config) : config_(std::move(config)) {
  VCDN_CHECK(config_.duration_seconds > 0.0);
  VCDN_CHECK(config_.popularity_refresh_seconds > 0.0);
  VCDN_CHECK(config_.profile.catalog_size > 0);
  VCDN_CHECK(config_.profile.base_request_rate > 0.0);
  VCDN_CHECK(config_.profile.diurnal_amplitude >= 0.0 && config_.profile.diurnal_amplitude < 1.0);
}

WindowedWorkload::WindowedWorkload(WorkloadConfig config)
    : config_(std::move(config)),
      arrival_rng_(config_.seed, kStreamArrivals),
      pick_rng_(config_.seed, kStreamVideoPick),
      range_rng_(config_.seed, kStreamRange) {
  VCDN_CHECK(config_.duration_seconds > 0.0);
  VCDN_CHECK(config_.popularity_refresh_seconds > 0.0);
  VCDN_CHECK(config_.profile.catalog_size > 0);
  VCDN_CHECK(config_.profile.base_request_rate > 0.0);
  VCDN_CHECK(config_.profile.diurnal_amplitude >= 0.0 && config_.profile.diurnal_amplitude < 1.0);

  const ServerProfile& profile = config_.profile;
  util::Pcg32 catalog_rng(config_.seed, kStreamCatalog);
  lambda_max_ = profile.base_request_rate * (1.0 + profile.diurnal_amplitude + 0.1);

  auto make_video = [&](VideoId id, double birth) {
    VideoMeta v;
    v.id = id;
    v.birth_time = birth;
    double size = util::SampleLogNormal(catalog_rng, profile.size_lognormal_mu,
                                        profile.size_lognormal_sigma);
    size = std::clamp(size, static_cast<double>(profile.min_video_bytes),
                      static_cast<double>(profile.max_video_bytes));
    v.size_bytes = static_cast<uint64_t>(size);
    v.base_weight = util::SamplePareto(catalog_rng, 1.0, profile.popularity_shape);
    if (catalog_rng.NextBool(profile.evergreen_fraction)) {
      v.video_class = VideoClass::kEvergreen;
      v.decay_tau = 0.0;
    } else {
      v.video_class = VideoClass::kTransient;
      // Per-video decay constant around the profile mean (at least 12 hours).
      double tau = util::SampleExponential(catalog_rng, profile.transient_tau_days) + 0.5;
      v.decay_tau = tau * kSecondsPerDay;
    }
    return v;
  };

  // Pre-existing catalog: births spread over the history window so transient
  // entries are at various stages of decay at trace start.
  catalog_.videos.reserve(profile.catalog_size + 16);
  for (size_t i = 0; i < profile.catalog_size; ++i) {
    double birth = -kCatalogHistorySeconds * catalog_rng.NextDouble();
    catalog_.videos.push_back(make_video(static_cast<VideoId>(i), birth));
  }

  // Catalog churn: Poisson new-video uploads throughout the trace.
  double upload_rate = profile.new_videos_per_day / kSecondsPerDay;
  if (upload_rate > 0.0) {
    double t = util::SampleExponential(catalog_rng, 1.0 / upload_rate);
    while (t < config_.duration_seconds) {
      catalog_.videos.push_back(make_video(static_cast<VideoId>(catalog_.videos.size()), t));
      t += util::SampleExponential(catalog_rng, 1.0 / upload_rate);
    }
  }
}

bool WindowedWorkload::NextWindow(std::vector<Request>* out) {
  if (window_start_ >= config_.duration_seconds) {
    return false;
  }
  const ServerProfile& profile = config_.profile;
  double window_end =
      std::min(window_start_ + config_.popularity_refresh_seconds, config_.duration_seconds);
  double window_mid = 0.5 * (window_start_ + window_end);

  // Rebuild the sampling table from demand weights at the window midpoint.
  active_ids_.clear();
  active_weights_.clear();
  for (const VideoMeta& v : catalog_.videos) {
    double w = WorkloadGenerator::VideoWeightAt(v, window_mid, config_);
    if (w > config_.weight_floor_fraction * v.base_weight && w > 0.0) {
      active_ids_.push_back(v.id);
      active_weights_.push_back(w);
    }
  }
  if (active_ids_.empty()) {
    window_start_ += config_.popularity_refresh_seconds;
    return true;
  }
  util::AliasTable table(active_weights_);

  // Request arrivals: non-homogeneous Poisson process sampled by thinning
  // against the maximum rate.
  double t = window_start_;
  for (;;) {
    t += util::SampleExponential(arrival_rng_, 1.0 / lambda_max_);
    if (t >= window_end) {
      break;
    }
    // Thinning acceptance for the diurnal/weekly modulated rate.
    double accept =
        profile.base_request_rate * WorkloadGenerator::DiurnalFactor(profile, t) / lambda_max_;
    if (!arrival_rng_.NextBool(accept)) {
      continue;
    }

    const VideoMeta& video = catalog_.videos[active_ids_[table.Sample(pick_rng_)]];
    if (video.birth_time > t) {
      // Born later in this sampling window; it cannot be requested yet.
      continue;
    }

    Request r;
    r.arrival_time = t;
    r.video = video.id;

    // Intra-file pattern: most views start at the head of the file; others
    // seek into the early part (quadratic skew toward the beginning). View
    // length is an exponential fraction of the file, truncated at EOF.
    uint64_t size = video.size_bytes;
    uint64_t start = 0;
    if (!range_rng_.NextBool(profile.start_at_zero_probability)) {
      double u = range_rng_.NextDouble();
      double start_fraction = 0.75 * u * u;
      start = static_cast<uint64_t>(start_fraction * static_cast<double>(size - 1));
    }
    double view_fraction = util::SampleExponential(range_rng_, profile.mean_view_fraction);
    auto view_bytes = static_cast<uint64_t>(view_fraction * static_cast<double>(size));
    view_bytes = std::max(view_bytes, kMinViewBytes);
    uint64_t end = start + view_bytes - 1;
    end = std::min(end, size - 1);

    r.byte_begin = start;
    r.byte_end = end;
    out->push_back(r);
  }

  window_start_ += config_.popularity_refresh_seconds;
  return true;
}

double WorkloadGenerator::DiurnalFactor(const ServerProfile& profile, double t) {
  // Server-local time-of-day; demand peaks at ~20:00 local and bottoms out at
  // ~08:00 local. A mild weekly swing is superimposed.
  double local = t + profile.timezone_offset_hours * 3600.0;
  double day_phase = 2.0 * M_PI * (local / kSecondsPerDay);
  // sin peaks when local time-of-day == 20h: shift by 14h (sin peaks at
  // phase pi/2, i.e. 6h after the shifted origin).
  double daily = std::sin(day_phase - 2.0 * M_PI * 14.0 / 24.0);
  double weekly = 0.08 * std::sin(2.0 * M_PI * local / kSecondsPerWeek);
  double factor = 1.0 + profile.diurnal_amplitude * daily + weekly;
  return std::max(factor, 0.05);
}

double WorkloadGenerator::VideoWeightAt(const VideoMeta& video, double t,
                                        const WorkloadConfig& config) {
  if (t < video.birth_time) {
    return 0.0;
  }
  double age = t - video.birth_time;
  double ramp = 1.0;
  if (config.new_video_ramp_seconds > 0.0 && age < config.new_video_ramp_seconds) {
    ramp = age / config.new_video_ramp_seconds;
  }
  double decay = 1.0;
  if (video.video_class == VideoClass::kTransient) {
    VCDN_DCHECK(video.decay_tau > 0.0);
    decay = std::exp(-age / video.decay_tau);
  }
  return video.base_weight * ramp * decay;
}

GeneratedWorkload WorkloadGenerator::Generate() {
  WindowedWorkload windows(config_);

  GeneratedWorkload out;
  Trace& trace = out.trace;
  trace.duration = config_.duration_seconds;
  trace.requests.reserve(
      static_cast<size_t>(config_.profile.base_request_rate * config_.duration_seconds * 1.05) +
      16);
  while (windows.NextWindow(&trace.requests)) {
  }
  out.catalog = windows.TakeCatalog();

  VCDN_CHECK(trace.IsWellFormed());

  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& registry = *config_.metrics;
    registry.GetCounter("workload.generated_requests_total")
        .Increment(trace.requests.size());
    registry.GetGauge("workload.catalog_videos")
        .Set(static_cast<double>(out.catalog.videos.size()));
    registry.GetGauge("workload.duration_seconds").Set(trace.duration);
    registry.GetGauge("workload.arrival_rate_per_sec")
        .Set(trace.duration > 0.0
                 ? static_cast<double>(trace.requests.size()) / trace.duration
                 : 0.0);
  }
  return out;
}

std::vector<GeneratedWorkload> GenerateWorkloads(const std::vector<WorkloadConfig>& configs,
                                                 const ParallelGenerateOptions& options) {
  std::vector<GeneratedWorkload> out(configs.size());
  if (configs.empty()) {
    return out;
  }

  exec::ThreadPool* pool = options.pool;
  std::optional<exec::ThreadPool> owned_pool;
  if (pool == nullptr && options.threads != 1) {
    owned_pool.emplace(exec::ThreadPoolOptions{options.threads, nullptr, nullptr});
    pool = &*owned_pool;
  }

  // Buffer per-config metrics locally so concurrent shards never write the
  // shared registry; merging in config order after the join makes the
  // registry contents identical to a sequential run.
  std::vector<std::optional<obs::MetricsRegistry>> local_metrics(configs.size());
  auto shard_config = [&](size_t i) {
    WorkloadConfig config = configs[i];
    if (config.metrics != nullptr) {
      local_metrics[i].emplace();
      config.metrics = &*local_metrics[i];
    }
    return config;
  };

  if (pool == nullptr) {
    for (size_t i = 0; i < configs.size(); ++i) {
      out[i] = WorkloadGenerator(shard_config(i)).Generate();
    }
  } else {
    exec::Latch done(configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
      pool->Submit(
          [&, i] {
            out[i] = WorkloadGenerator(shard_config(i)).Generate();
            done.CountDown();
          },
          "workload.generate");
    }
    done.Wait();
  }

  for (size_t i = 0; i < configs.size(); ++i) {
    if (local_metrics[i].has_value()) {
      configs[i].metrics->MergeFrom(*local_metrics[i]);
    }
  }
  return out;
}

}  // namespace vcdn::trace
