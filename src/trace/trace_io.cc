// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/trace/trace_io.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "src/util/str_util.h"

namespace vcdn::trace {

namespace {

constexpr char kCsvHeader[] = "arrival_time,video,byte_begin,byte_end";
constexpr char kBinaryMagic[8] = {'V', 'C', 'D', 'N', 'T', 'R', 'C', '1'};

}  // namespace

// --- CSV ---------------------------------------------------------------------

util::Status WriteCsv(const Trace& trace, std::ostream& out) {
  out << kCsvHeader << "\n";
  out << "# duration_seconds=" << trace.duration << "\n";
  char line[128];
  for (const Request& r : trace.requests) {
    std::snprintf(line, sizeof(line), "%.6f,%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                  r.arrival_time, r.video, r.byte_begin, r.byte_end);
    out << line;
  }
  if (!out) {
    return util::DataLossError("CSV write failed");
  }
  return util::OkStatus();
}

util::Status WriteCsvFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return util::NotFoundError("cannot open for write: " + path);
  }
  return WriteCsv(trace, out);
}

util::Result<Trace> ReadCsv(std::istream& in) {
  Trace trace;
  std::string line;
  if (!std::getline(in, line) || line != kCsvHeader) {
    return util::InvalidArgumentError("missing or wrong CSV header");
  }
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      // Optional metadata comment: "# duration_seconds=<x>".
      auto eq = line.find('=');
      if (eq != std::string::npos && line.find("duration_seconds") != std::string::npos) {
        double d = 0.0;
        if (util::ParseDouble(std::string_view(line).substr(eq + 1), &d)) {
          // A parsed-but-broken duration is corruption, not a missing
          // comment: reject it instead of silently keeping 0.
          if (!std::isfinite(d) || d < 0.0) {
            return util::InvalidArgumentError("line " + std::to_string(line_number) +
                                              ": non-finite or negative duration_seconds");
          }
          trace.duration = d;
        }
      }
      continue;
    }
    auto fields = util::SplitString(line, ',');
    if (fields.size() != 4) {
      return util::InvalidArgumentError("line " + std::to_string(line_number) +
                                        ": expected 4 fields");
    }
    Request r;
    if (!util::ParseDouble(fields[0], &r.arrival_time) || !util::ParseUint64(fields[1], &r.video) ||
        !util::ParseUint64(fields[2], &r.byte_begin) || !util::ParseUint64(fields[3], &r.byte_end)) {
      return util::InvalidArgumentError("line " + std::to_string(line_number) + ": parse error");
    }
    if (!std::isfinite(r.arrival_time)) {
      return util::InvalidArgumentError("line " + std::to_string(line_number) +
                                        ": non-finite arrival_time");
    }
    if (r.byte_end < r.byte_begin) {
      return util::InvalidArgumentError("line " + std::to_string(line_number) +
                                        ": byte_end < byte_begin");
    }
    trace.requests.push_back(r);
  }
  if (trace.duration == 0.0 && !trace.requests.empty()) {
    trace.duration = trace.requests.back().arrival_time;
  }
  if (!trace.IsWellFormed()) {
    return util::InvalidArgumentError("trace not in arrival-time order");
  }
  return trace;
}

util::Result<Trace> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::NotFoundError("cannot open: " + path);
  }
  return ReadCsv(in);
}

// --- Binary -------------------------------------------------------------------

util::Status WriteBinary(const Trace& trace, std::ostream& out) {
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  uint64_t count = trace.requests.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(&trace.duration), sizeof(trace.duration));
  for (const Request& r : trace.requests) {
    out.write(reinterpret_cast<const char*>(&r.arrival_time), sizeof(r.arrival_time));
    out.write(reinterpret_cast<const char*>(&r.video), sizeof(r.video));
    out.write(reinterpret_cast<const char*>(&r.byte_begin), sizeof(r.byte_begin));
    out.write(reinterpret_cast<const char*>(&r.byte_end), sizeof(r.byte_end));
  }
  if (!out) {
    return util::DataLossError("binary write failed");
  }
  return util::OkStatus();
}

util::Status WriteBinaryFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return util::NotFoundError("cannot open for write: " + path);
  }
  return WriteBinary(trace, out);
}

util::Result<Trace> ReadBinary(std::istream& in) {
  char magic[sizeof(kBinaryMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return util::InvalidArgumentError("bad magic: not a VCDNTRC1 trace");
  }
  uint64_t count = 0;
  Trace trace;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  in.read(reinterpret_cast<char*>(&trace.duration), sizeof(trace.duration));
  if (!in) {
    return util::DataLossError("truncated header");
  }
  if (!std::isfinite(trace.duration) || trace.duration < 0.0) {
    return util::DataLossError("corrupt header: non-finite or negative duration");
  }
  // A corrupt count must not drive a multi-gigabyte resize. When the stream
  // is seekable, bound count by the payload bytes actually present; either
  // way, grow incrementally and bail on the first short read.
  constexpr uint64_t kRecordBytes = 4 * sizeof(uint64_t);
  const std::istream::pos_type payload_start = in.tellg();
  if (payload_start != std::istream::pos_type(-1) && in.seekg(0, std::ios::end)) {
    const std::istream::pos_type stream_end = in.tellg();
    in.seekg(payload_start);
    if (stream_end != std::istream::pos_type(-1)) {
      const auto remaining = static_cast<uint64_t>(stream_end - payload_start);
      if (count > remaining / kRecordBytes) {
        return util::DataLossError("corrupt header: record count " + std::to_string(count) +
                                   " exceeds the " + std::to_string(remaining) +
                                   " payload bytes in the stream");
      }
    }
  } else {
    in.clear();  // non-seekable stream (e.g. a pipe): fall back to bail-on-read
  }
  trace.requests.reserve(static_cast<size_t>(std::min<uint64_t>(count, uint64_t{1} << 20)));
  for (uint64_t i = 0; i < count; ++i) {
    Request r;
    in.read(reinterpret_cast<char*>(&r.arrival_time), sizeof(r.arrival_time));
    in.read(reinterpret_cast<char*>(&r.video), sizeof(r.video));
    in.read(reinterpret_cast<char*>(&r.byte_begin), sizeof(r.byte_begin));
    in.read(reinterpret_cast<char*>(&r.byte_end), sizeof(r.byte_end));
    if (!in) {
      return util::DataLossError("truncated record stream: expected " + std::to_string(count) +
                                 " records, got " + std::to_string(i));
    }
    trace.requests.push_back(r);
  }
  if (!trace.IsWellFormed()) {
    return util::InvalidArgumentError("trace not well-formed");
  }
  return trace;
}

util::Result<Trace> ReadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::NotFoundError("cannot open: " + path);
  }
  return ReadBinary(in);
}

}  // namespace vcdn::trace
