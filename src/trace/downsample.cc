// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/trace/downsample.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/container/fast_hash.h"
#include "src/util/check.h"

namespace vcdn::trace {

DownsampledTrace DownsampleForOptimal(const Trace& trace, const DownsampleOptions& options) {
  VCDN_CHECK(options.num_files > 0);
  VCDN_CHECK(options.file_cap_bytes > 0);
  double window_end = options.window_start + options.window_seconds;

  // Hit counts per file within the window. Keys are dense video ids --
  // mixed hash (U64Hash) + pre-sizing from the trace, as in analysis.cc.
  std::unordered_map<VideoId, uint64_t, container::U64Hash> hits;
  hits.reserve(trace.requests.size() / 4 + 16);
  for (const Request& r : trace.requests) {
    if (r.arrival_time < options.window_start || r.arrival_time >= window_end) {
      continue;
    }
    ++hits[r.video];
  }

  // Files sorted by hit count (descending), ties broken by id for determinism.
  std::vector<std::pair<uint64_t, VideoId>> ranked;
  ranked.reserve(hits.size());
  for (const auto& [video, count] : hits) {
    ranked.emplace_back(count, video);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;
  });

  DownsampledTrace out;
  if (ranked.empty()) {
    return out;
  }

  // Uniform selection over the sorted list: head, middle and tail all covered.
  size_t n = ranked.size();
  size_t want = std::min(options.num_files, n);
  std::unordered_set<VideoId, container::U64Hash> selected_set;
  selected_set.reserve(want);
  for (size_t i = 0; i < want; ++i) {
    size_t idx = (want == 1) ? 0 : i * (n - 1) / (want - 1);
    if (selected_set.insert(ranked[idx].second).second) {
      out.selected.push_back(ranked[idx].second);
    }
  }

  for (const Request& r : trace.requests) {
    if (r.arrival_time < options.window_start || r.arrival_time >= window_end) {
      continue;
    }
    if (selected_set.count(r.video) == 0) {
      continue;
    }
    Request kept = r;
    kept.arrival_time -= options.window_start;
    uint64_t cap = options.file_cap_bytes;
    if (kept.byte_begin >= cap) {
      // Entire range above the cap: remap into the capped file, preserving
      // the request's length as far as possible.
      uint64_t len = kept.size_bytes();
      kept.byte_begin = kept.byte_begin % cap;
      kept.byte_end = std::min(kept.byte_begin + len - 1, cap - 1);
    } else if (kept.byte_end >= cap) {
      kept.byte_end = cap - 1;
    }
    out.trace.requests.push_back(kept);
    if (options.max_requests > 0 && out.trace.requests.size() >= options.max_requests) {
      break;
    }
  }
  out.trace.duration = options.window_seconds;
  if (options.max_requests > 0 && !out.trace.requests.empty()) {
    out.trace.duration = std::min(options.window_seconds,
                                  out.trace.requests.back().arrival_time + 1.0);
  }
  VCDN_CHECK(out.trace.IsWellFormed());
  return out;
}

}  // namespace vcdn::trace
