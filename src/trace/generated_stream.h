// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Generate-as-you-replay request stream: produces a synthetic workload one
// popularity-refresh window at a time, so a month-long paper-scale trace
// replays with only the bounded lookahead resident instead of the whole
// request vector. Bit-identical to WorkloadGenerator::Generate() for the
// same config -- both run the same WindowedWorkload engine, and RNG streams
// advance in the same order regardless of how consumers chunk Next().
//
// Two modes:
//   * inline (generator_pool == nullptr): the next window is generated on
//     the consumer's thread when the buffer runs dry;
//   * pooled: a single self-resubmitting producer task keeps up to
//     `lookahead_windows` windows buffered ahead of the consumer, so
//     generation overlaps replay. The producer task is serialized (windows
//     are order-dependent), but different servers' streams each have their
//     own producer, sharding generation across the pool.
//
// DEADLOCK HAZARD: never point `generator_pool` at the pool that is also
// running the replay shards consuming these streams. A consumer blocked in
// Next() occupies a worker; if every worker is a blocked consumer, the
// producer tasks they are waiting on can never run. Use a dedicated
// generator pool (bench_scale_sweep does) or inline mode.

#ifndef VCDN_SRC_TRACE_GENERATED_STREAM_H_
#define VCDN_SRC_TRACE_GENERATED_STREAM_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/trace/request_stream.h"
#include "src/trace/workload_generator.h"

namespace vcdn::trace {

// Aggregated across every stream that points at it (atomic sinks); one
// instance can serve a whole fleet. Flushed on stream destruction.
struct GeneratedStreamStats {
  // Wall time consumers spent blocked in Next() waiting for the producer.
  std::atomic<uint64_t> consumer_wait_ns{0};
  // Wall time spent inside the window generator (producer task or inline).
  std::atomic<uint64_t> generate_ns{0};
  std::atomic<uint64_t> windows{0};
  std::atomic<uint64_t> requests{0};
};

struct GeneratedStreamOptions {
  // Pool for the lookahead producer; nullptr generates inline on the
  // consumer. MUST NOT be the pool replaying this stream (see file comment).
  exec::ThreadPool* generator_pool = nullptr;
  // Windows the producer may run ahead of the consumer (pooled mode); with
  // the default 6h refresh this bounds resident lookahead to about a day.
  size_t lookahead_windows = 4;
  // Optional aggregate stats sink; not owned, must outlive the stream.
  GeneratedStreamStats* stats = nullptr;
};

class GeneratedStream final : public RequestStream {
 public:
  explicit GeneratedStream(WorkloadConfig config, GeneratedStreamOptions options = {});
  ~GeneratedStream() override;

  GeneratedStream(const GeneratedStream&) = delete;
  GeneratedStream& operator=(const GeneratedStream&) = delete;

  RequestSpan Next(size_t max) override;
  double duration() const override { return windows_.duration(); }

  // Catalog is built eagerly at construction (same draws as Generate()).
  const Catalog& catalog() const { return windows_.catalog(); }

 private:
  // Refills current_ from the engine (inline mode) or the ready queue
  // (pooled mode). Returns false at end of stream.
  bool Refill();
  // Producer task body: generates one window, parks it, resubmits itself
  // while the lookahead budget allows. Runs on the generator pool.
  void ProduceOne();
  // Schedules the producer if it is idle and there is budget; mu_ held.
  void PumpLocked();

  WindowedWorkload windows_;
  GeneratedStreamOptions options_;

  // Buffer currently being consumed; spans point into it.
  std::vector<Request> current_;
  size_t cursor_ = 0;
  bool inline_done_ = false;

  // Pooled-mode state, all guarded by mu_ (windows_ itself is touched only
  // by the producer task in this mode, and producer tasks are serialized).
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::vector<Request>> ready_;
  bool engine_done_ = false;
  bool producer_running_ = false;
  bool stopping_ = false;

  uint64_t consumer_wait_ns_ = 0;
  uint64_t generate_ns_ = 0;
  uint64_t windows_generated_ = 0;
  uint64_t requests_generated_ = 0;
};

}  // namespace vcdn::trace

#endif  // VCDN_SRC_TRACE_GENERATED_STREAM_H_
