// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// VCDNTRS2: versioned multi-server binary trace format, mmap'd and replayed
// zero-copy. The header carries everything replay needs to pre-size --
// total record count, covered time range, catalog size, and a per-server
// index -- so a month-long fleet trace opens in O(1) and streams with peak
// RSS independent of trace length. Records are fixed-width (32 bytes) with
// exactly trace::Request's layout, so a mapped span IS a span of Requests.
//
// Layout (all fields native little-endian, naturally aligned):
//
//   [0)   64-byte file header (magic "VCDNTRS2", version, layout constants,
//         server count, total records, duration, catalog size)
//   [64)  server_count x 48-byte index entries (dense, in file order:
//         record offset/count, duration, min/max arrival time, catalog size)
//   [64 + 48*server_count)  total_records x 32-byte request records,
//         grouped by server, time-ordered within each server
//
// Hostile-file rigor mirrors trace_io.cc's ReadBinary: Open() validates the
// header and index against the actual file size before trusting any count
// (structural mismatches -> InvalidArgument, truncation/bit-rot ->
// DataLoss), and per-record validation happens lazily as spans are pulled
// (streams end early with a non-OK status()) or eagerly via Validate().
// docs/TRACE_FORMAT.md documents the layout and the versioning rules.

#ifndef VCDN_SRC_TRACE_TRACE_FILE_H_
#define VCDN_SRC_TRACE_TRACE_FILE_H_

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/request.h"
#include "src/trace/request_stream.h"
#include "src/util/status.h"

namespace vcdn::trace {

// One per-server section of a packed trace file. Also the on-disk index
// entry layout (48 bytes, no padding).
struct TraceServerInfo {
  uint64_t record_offset = 0;  // in records, from the start of the payload
  uint64_t record_count = 0;
  double duration = 0.0;  // covered span [0, duration) of this server
  double min_time = 0.0;  // first arrival (0 when the section is empty)
  double max_time = 0.0;  // last arrival (0 when the section is empty)
  uint64_t catalog_videos = 0;  // 0 when unknown (e.g. CSV-sourced)
};
static_assert(sizeof(TraceServerInfo) == 48, "index entry layout drifted");

// FNV-1a over raw 32-byte record images; the round-trip digest trace_pack
// --verify and the scale bench use to prove packed == generated.
class RequestDigest {
 public:
  void Fold(const Request& r) {
    const unsigned char* bytes = reinterpret_cast<const unsigned char*>(&r);
    for (size_t i = 0; i < sizeof(Request); ++i) {
      hash_ ^= bytes[i];
      hash_ *= 1099511628211ULL;
    }
    ++count_;
  }
  void Fold(const Request* records, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      Fold(records[i]);
    }
  }
  uint64_t value() const { return hash_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t hash_ = 1469598103934665603ULL;
  uint64_t count_ = 0;
};

// Streams per-server sections into a packed trace file. Usage:
//
//   TraceFileWriter writer;
//   writer.Open(path, server_count);
//   for each server: writer.BeginServer(duration, catalog_videos);
//                    writer.Append(span.data, span.count);  // repeatedly
//   writer.Finish();   // patches header + index
//
// Append validates as it goes (finite, time-ordered within the server,
// well-formed ranges) so a packed file is well-formed by construction.
class TraceFileWriter {
 public:
  TraceFileWriter() = default;

  util::Status Open(const std::string& path, size_t server_count);
  util::Status BeginServer(double duration, uint64_t catalog_videos = 0);
  util::Status Append(const Request* records, size_t count);
  // Convenience: BeginServer + Append the whole materialized trace.
  util::Status AppendTrace(const Trace& trace, uint64_t catalog_videos = 0);
  // Writes the real header and index over the placeholders. Fails unless
  // exactly server_count sections were begun.
  util::Status Finish();

 private:
  std::ofstream out_;
  size_t server_count_ = 0;
  uint64_t records_written_ = 0;
  double last_time_ = 0.0;
  bool in_server_ = false;
  bool finished_ = false;
  std::vector<TraceServerInfo> index_;
};

// Packs one materialized trace per server; catalog_videos (when non-empty)
// must be parallel to traces.
util::Status WriteTraceFile(const std::vector<const Trace*>& traces, const std::string& path,
                            const std::vector<uint64_t>& catalog_videos = {});

// A memory-mapped packed trace. Open() validates header and index; records
// are validated lazily by ServerStream() (status() reports a mid-stream
// failure) or eagerly by Validate(). Streams borrow the mapping: the
// MmapTrace must outlive every stream it hands out.
class MmapTrace {
 public:
  static util::Result<MmapTrace> Open(const std::string& path);

  MmapTrace(MmapTrace&& other) noexcept { *this = std::move(other); }
  MmapTrace& operator=(MmapTrace&& other) noexcept;
  MmapTrace(const MmapTrace&) = delete;
  MmapTrace& operator=(const MmapTrace&) = delete;
  ~MmapTrace();

  size_t server_count() const { return servers_.size(); }
  const TraceServerInfo& server(size_t i) const { return servers_[i]; }
  uint64_t total_records() const { return total_records_; }
  double duration() const { return duration_; }
  uint64_t total_catalog_videos() const { return total_catalog_videos_; }

  // Zero-copy request stream over one server section.
  std::unique_ptr<RequestStream> ServerStream(size_t server) const;

  // Full eager scan: every record checked (finite time, ordered within its
  // server, well-formed range, consistent with its index entry); returns
  // the FNV-1a digest over all records. Run this before trusting an
  // untrusted file on a replay path that CHECKs stream status.
  util::Result<uint64_t> Validate() const;

  // Materializes one server section as a validated Trace (tests, small
  // files, feeding offline caches that need the full trace).
  util::Result<Trace> ReadServer(size_t server) const;

 private:
  MmapTrace() = default;

  void* base_ = nullptr;
  size_t map_bytes_ = 0;
  const Request* records_ = nullptr;
  std::vector<TraceServerInfo> servers_;
  uint64_t total_records_ = 0;
  uint64_t total_catalog_videos_ = 0;
  double duration_ = 0.0;
};

}  // namespace vcdn::trace

#endif  // VCDN_SRC_TRACE_TRACE_FILE_H_
