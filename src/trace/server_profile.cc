// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/trace/server_profile.h"

#include <cmath>

#include "src/util/check.h"

namespace vcdn::trace {

namespace {

ServerProfile ScaledBase(double scale) {
  VCDN_CHECK(scale > 0.0 && scale <= 4.0);
  ServerProfile p;
  p.base_request_rate *= scale;
  p.catalog_size = static_cast<size_t>(std::lround(static_cast<double>(p.catalog_size) * scale));
  p.new_videos_per_day *= scale;
  return p;
}

}  // namespace

ServerProfile EuropeProfile(double scale) {
  ServerProfile p = ScaledBase(scale);
  p.name = "Europe";
  p.timezone_offset_hours = 1.0;
  return p;
}

std::vector<ServerProfile> PaperServerProfiles(double scale) {
  std::vector<ServerProfile> out;

  {
    // Africa: lighter volume, moderately narrow catalog.
    ServerProfile p = ScaledBase(scale);
    p.name = "Africa";
    p.timezone_offset_hours = 2.0;
    p.base_request_rate *= 0.55;
    p.catalog_size = static_cast<size_t>(static_cast<double>(p.catalog_size) * 0.65);
    p.new_videos_per_day *= 0.6;
    out.push_back(p);
  }
  {
    // Asia: "more limited requests" (Sec. 9) -> narrow, highly skewed demand;
    // the highest efficiencies in Fig. 7.
    ServerProfile p = ScaledBase(scale);
    p.name = "Asia";
    p.timezone_offset_hours = 8.0;
    p.base_request_rate *= 0.8;
    p.catalog_size = static_cast<size_t>(static_cast<double>(p.catalog_size) * 0.45);
    p.popularity_shape = 0.85;  // heavy weight tail: demand concentrated on the head
    p.new_videos_per_day *= 0.5;
    out.push_back(p);
  }
  {
    // Australia: small volume, typical diversity.
    ServerProfile p = ScaledBase(scale);
    p.name = "Australia";
    p.timezone_offset_hours = 10.0;
    p.base_request_rate *= 0.6;
    p.catalog_size = static_cast<size_t>(static_cast<double>(p.catalog_size) * 0.7);
    out.push_back(p);
  }
  out.push_back(EuropeProfile(scale));
  {
    // North America: busy, broad catalog.
    ServerProfile p = ScaledBase(scale);
    p.name = "NorthAmerica";
    p.timezone_offset_hours = -5.0;
    p.base_request_rate *= 1.35;
    p.catalog_size = static_cast<size_t>(static_cast<double>(p.catalog_size) * 1.3);
    p.new_videos_per_day *= 1.3;
    out.push_back(p);
  }
  {
    // South America: busiest and most diverse relative to the same disk; the
    // lowest efficiencies and widest xLRU gap in Fig. 7.
    ServerProfile p = ScaledBase(scale);
    p.name = "SouthAmerica";
    p.timezone_offset_hours = -3.0;
    p.base_request_rate *= 1.7;
    p.catalog_size = static_cast<size_t>(static_cast<double>(p.catalog_size) * 1.6);
    p.popularity_shape = 1.3;  // flatter popularity -> more diverse requests
    p.new_videos_per_day *= 1.6;
    out.push_back(p);
  }
  return out;
}

}  // namespace vcdn::trace
