// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Fixed-size work-stealing thread pool (see docs/PARALLELISM.md).
//
// Each worker owns a deque of tasks: the owner pushes and pops at the back
// (LIFO, keeps freshly spawned subtasks hot), thieves take from the front
// (FIFO, steals the oldest -- typically largest -- work first). External
// Submit calls distribute round-robin across workers; Submit from inside a
// worker enqueues to that worker's own deque. Tasks are coarse here (a whole
// server replay, a whole trace generation), so queues are mutex-guarded
// rather than lock-free -- contention is on the order of one lock per task,
// not per request.
//
// Shutdown() (and the destructor) runs every task already submitted before
// returning -- the pool never drops work. Tasks may Submit further tasks
// during shutdown; they run too.
//
// Observability: with a MetricsRegistry attached, workers maintain
// "exec.pool.*" counters (submitted/executed/stolen) and a queue-depth
// gauge, plus per-worker "exec.worker.<i>.tasks_total" -- all live, via the
// registry's relaxed-atomic cells. With a TraceEventSink attached, every
// *labeled* task records a span onto its worker's trace lane (tid = 2 +
// worker index); spans are buffered worker-locally and flushed into the
// (single-threaded) sink once workers have joined.

#ifndef VCDN_SRC_EXEC_THREAD_POOL_H_
#define VCDN_SRC_EXEC_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/exec/future.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/run_metadata.h"
#include "src/obs/trace_event.h"

namespace vcdn::exec {

namespace internal {

// Shared control block of one deferred task. The three-way phase makes the
// fire/cancel race a single CAS: whoever moves the task out of kPending owns
// its fate, the loser observes that it lost.
struct DeferredState {
  enum Phase : int { kPending = 0, kFired = 1, kCancelled = 2 };
  std::atomic<int> phase{kPending};
  std::function<void()> fn;
  const char* label = nullptr;
  std::chrono::steady_clock::time_point deadline;
  uint64_t seq = 0;  // tie-break so equal deadlines fire in SubmitAfter order

  // True exactly once, for the thread that transitions kPending -> kFired.
  bool TryFire() {
    int expected = kPending;
    return phase.compare_exchange_strong(expected, kFired, std::memory_order_acq_rel);
  }
};

}  // namespace internal

// Handle to a task scheduled with ThreadPool::SubmitAfter. Copyable; all
// copies address the same task. A default-constructed handle is inert.
class DeferredHandle {
 public:
  DeferredHandle() = default;

  // Attempts to keep the task from ever running. Returns true when this call
  // won the race (the task had not fired and will never run); false when the
  // task already fired -- or was already cancelled -- or the handle is empty.
  // Safe to call from any thread, any number of times, including while the
  // timer is concurrently firing the task.
  bool Cancel() {
    if (state_ == nullptr) {
      return false;
    }
    int expected = internal::DeferredState::kPending;
    return state_->phase.compare_exchange_strong(expected, internal::DeferredState::kCancelled,
                                                 std::memory_order_acq_rel);
  }

  // True while the task has neither fired nor been cancelled.
  bool pending() const {
    return state_ != nullptr &&
           state_->phase.load(std::memory_order_acquire) == internal::DeferredState::kPending;
  }

  bool valid() const { return state_ != nullptr; }

 private:
  friend class ThreadPool;
  explicit DeferredHandle(std::shared_ptr<internal::DeferredState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::DeferredState> state_;
};

struct ThreadPoolOptions {
  // 0 selects std::thread::hardware_concurrency() (at least 1).
  size_t num_threads = 0;
  // Optional instruments; neither is owned. The registry may be shared with
  // the workloads running on the pool (it is thread-safe); the sink is only
  // written after workers join.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceEventSink* trace_sink = nullptr;
  // When > 0, each worker owns an obs::FlightRecorder lane of this capacity:
  // the pool records one entry per executed task (key = FNV-1a of the task
  // label, decision 0 = own-queue / 1 = stolen, seq = lane position), and
  // tasks may record their own entries via CurrentWorkerFlight(). Together
  // with ArmWorkerCrashDumps this answers "what was each worker doing" after
  // a VCDN_CHECK failure. Zero (the default) costs nothing.
  size_t flight_capacity = 0;
};

class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolOptions options = {});
  explicit ThreadPool(size_t num_threads) : ThreadPool(ThreadPoolOptions{num_threads}) {}
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues a task. `label`, when non-null, makes the task span-visible in
  // the trace; it is copied when the task starts executing, so it must stay
  // valid until then (string literals in practice; for dynamic labels,
  // joining on the tasks is enough since no task starts after the join).
  void Submit(std::function<void()> task, const char* label = nullptr);

  // Submit + a Future for the callable's result. The callable must be
  // copyable (it is stored in a std::function).
  template <typename F>
  auto Async(F&& fn, const char* label = nullptr) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    Promise<R> promise;
    Future<R> future = promise.GetFuture();
    Submit(
        [promise, fn = std::forward<F>(fn)]() mutable {
          if constexpr (std::is_void_v<R>) {
            fn();
            promise.Set();
          } else {
            promise.Set(fn());
          }
        },
        label);
    return future;
  }

  // Schedules `task` to be submitted to the pool once `delay` has elapsed
  // (the deferred-task facility behind net's deadline timers). The task runs
  // on a pool worker like any Submit-ed task; the returned handle cancels it
  // (DeferredHandle::Cancel) as long as it has not fired. Timers are driven
  // by one lazily started timer thread; granularity is the OS wait
  // granularity, not a real-time guarantee. A non-positive delay fires as
  // soon as the timer thread runs.
  //
  // Shutdown semantics: deferred tasks that fired before Shutdown run to
  // completion like any submitted task; tasks still pending at Shutdown are
  // cancelled and never run.
  DeferredHandle SubmitAfter(std::chrono::nanoseconds delay, std::function<void()> task,
                             const char* label = nullptr);

  // Runs all submitted tasks to completion, joins the workers and flushes
  // buffered worker spans to the trace sink. Pending (not yet due) deferred
  // tasks are cancelled. Idempotent.
  void Shutdown();

  // Lifetime task totals (consistent after Shutdown; a relaxed view while
  // running).
  struct Stats {
    uint64_t submitted = 0;
    uint64_t executed = 0;
    uint64_t stolen = 0;  // executed tasks that were taken from another worker
  };
  Stats stats() const;

  // True when the calling thread is one of this pool's workers.
  bool InWorker() const;

  obs::MetricsRegistry* metrics() const { return metrics_; }
  obs::TraceEventSink* trace_sink() const { return sink_; }

  // Worker i's flight lane; null when flight_capacity was 0. Reading a lane
  // is only safe from its own worker or after Shutdown.
  obs::FlightRecorder* worker_flight(size_t i) const {
    return workers_[i]->flight.has_value() ? &*workers_[i]->flight : nullptr;
  }
  // The calling worker's own lane; null off-pool or when lanes are disabled.
  obs::FlightRecorder* CurrentWorkerFlight() const;

  // Arms every worker lane to dump "<path_prefix>.worker<i>.jsonl" if a
  // VCDN_CHECK fails anywhere in the process (obs::ArmCrashDump). Lanes
  // disarm automatically at Shutdown -- the recorders die with the pool.
  void ArmWorkerCrashDumps(const std::string& path_prefix, const obs::RunMetadata& meta);

 private:
  struct Task {
    std::function<void()> fn;
    const char* label = nullptr;
  };

  // One per worker thread. Worker state other than the deque is only touched
  // by its own thread (spans) or after join (flush).
  struct Worker {
    std::mutex mu;
    std::deque<Task> queue;
    std::thread thread;
    std::vector<obs::TraceEvent> spans;
    obs::Counter tasks_counter;  // "exec.worker.<i>.tasks_total"
    // Per-worker recorder lane (flight_capacity > 0); only its own thread
    // writes it while the pool runs.
    std::optional<obs::FlightRecorder> flight;
  };

  void WorkerLoop(size_t self);
  bool PopOwn(size_t self, Task* out);
  bool Steal(size_t self, Task* out);
  void Enqueue(Task task);
  void TimerLoop();
  void StopTimerThread();

  // unique_ptr: Worker holds a mutex and is neither movable nor copyable.
  std::vector<std::unique_ptr<Worker>> workers_;

  // Sleep/wake machinery: pending_ counts queued-but-not-yet-popped tasks
  // and is guarded by sleep_mu_ together with stop_.
  std::mutex sleep_mu_;
  std::condition_variable wake_cv_;
  size_t pending_ = 0;
  bool stop_ = false;
  bool joined_ = false;
  bool crash_dumps_armed_ = false;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> stolen_{0};
  std::atomic<size_t> next_worker_{0};  // round-robin target for external submits

  // Deferred-task machinery (SubmitAfter). The heap is a min-heap on
  // (deadline, seq), guarded by timer_mu_; the timer thread starts lazily on
  // the first SubmitAfter and is joined (after cancelling everything still
  // pending) at the top of Shutdown, before the workers stop -- so a firing
  // timer can never Submit into a joined pool.
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::vector<std::shared_ptr<internal::DeferredState>> timer_heap_;
  std::thread timer_thread_;
  bool timer_stop_ = false;
  uint64_t timer_seq_ = 0;
  std::atomic<uint64_t> timers_scheduled_{0};
  std::atomic<uint64_t> timers_fired_{0};
  std::atomic<uint64_t> timers_cancelled_{0};

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceEventSink* sink_ = nullptr;
  obs::Counter submitted_counter_;
  obs::Counter executed_counter_;
  obs::Counter stolen_counter_;
  obs::Gauge queue_depth_gauge_;
};

}  // namespace vcdn::exec

#endif  // VCDN_SRC_EXEC_THREAD_POOL_H_
