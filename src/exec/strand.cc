// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/exec/strand.h"

#include "src/util/check.h"

namespace vcdn::exec {

namespace {
// The strand whose handler the current thread is executing, if any.
thread_local const Strand* current_strand = nullptr;
}  // namespace

Strand::Strand(ThreadPool& pool) : pool_(pool) {
  if (pool_.metrics() != nullptr) {
    posted_counter_ = pool_.metrics()->GetCounter("exec.strand.posted_total");
    executed_counter_ = pool_.metrics()->GetCounter("exec.strand.executed_total");
  }
}

Strand::~Strand() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return !draining_ && queue_.empty(); });
}

void Strand::Post(std::function<void()> handler) {
  VCDN_CHECK(handler != nullptr);
  posted_counter_.Increment();
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(handler));
    if (!draining_) {
      draining_ = true;
      schedule = true;
    }
  }
  if (schedule) {
    pool_.Submit([this] { Drain(); }, "exec.strand.drain");
  }
}

void Strand::Drain() {
  current_strand = this;
  for (int executed = 0; executed < kDrainBatch; ++executed) {
    std::function<void()> handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        // Release ownership while holding the lock: a Post that sneaks in
        // after this sees draining_ == false and schedules a fresh drain.
        draining_ = false;
        current_strand = nullptr;
        idle_cv_.notify_all();  // a destructor may be waiting for quiescence
        return;
      }
      handler = std::move(queue_.front());
      queue_.pop_front();
    }
    handler();
    executed_counter_.Increment();
  }
  current_strand = nullptr;
  // Batch exhausted with work possibly left: yield the worker and reschedule.
  pool_.Submit([this] { Drain(); }, "exec.strand.drain");
}

bool Strand::RunningInThisStrand() const { return current_strand == this; }

}  // namespace vcdn::exec
