// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Strand: a serialized task queue on top of ThreadPool, for state that must
// stay single-writer (the shared parent cache of a hierarchy, a merge
// accumulator) without dedicating a thread to it. Inspired by
// boost::asio's strand concept.
//
// Guarantees:
//   * handlers posted to one strand never run concurrently;
//   * handlers run in Post order (FIFO), regardless of which worker drains
//     the queue;
//   * handlers run on pool workers -- Post never executes inline.
//
// A strand drains in batches (kDrainBatch handlers per pool task) so one
// busy strand cannot monopolize a worker forever.

#ifndef VCDN_SRC_EXEC_STRAND_H_
#define VCDN_SRC_EXEC_STRAND_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <type_traits>
#include <utility>

#include "src/exec/future.h"
#include "src/exec/thread_pool.h"

namespace vcdn::exec {

class Strand {
 public:
  // The pool must outlive the strand. When the pool has a metrics registry,
  // the strand maintains "exec.strand.posted_total" / "exec.strand.executed_total"
  // (aggregated across strands on that pool).
  explicit Strand(ThreadPool& pool);

  Strand(const Strand&) = delete;
  Strand& operator=(const Strand&) = delete;

  // Blocks until the strand is quiescent (queue empty, no drain in flight).
  // A handler's side effects (a Latch countdown, a Promise set) may release
  // the thread that owns the strand before the drain loop has let go of the
  // strand's internals, so destruction must wait for the drain -- not just
  // for the handlers.
  ~Strand();

  // Enqueues a handler; returns immediately.
  void Post(std::function<void()> handler);

  // Post + a Future for the handler's result.
  template <typename F>
  auto Async(F&& fn) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    Promise<R> promise;
    Future<R> future = promise.GetFuture();
    Post([promise, fn = std::forward<F>(fn)]() mutable {
      if constexpr (std::is_void_v<R>) {
        fn();
        promise.Set();
      } else {
        promise.Set(fn());
      }
    });
    return future;
  }

  // True while the calling thread is executing a handler of this strand.
  bool RunningInThisStrand() const;

 private:
  static constexpr int kDrainBatch = 16;

  void Drain();

  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable idle_cv_;  // signaled when draining_ falls to false
  std::deque<std::function<void()>> queue_;
  // True while a drain task owns the queue (is scheduled or running);
  // guarantees single ownership and therefore mutual exclusion.
  bool draining_ = false;
  obs::Counter posted_counter_;
  obs::Counter executed_counter_;
};

}  // namespace vcdn::exec

#endif  // VCDN_SRC_EXEC_STRAND_H_
