// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/exec/thread_pool.h"

#include <algorithm>
#include <string>

#include "src/util/check.h"

namespace vcdn::exec {

namespace {

// Which pool (if any) the current thread works for, and its worker index.
// Lets Submit keep subtasks on the submitting worker's deque and lets
// InWorker/Strand detect re-entrancy.
struct WorkerContext {
  const ThreadPool* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerContext current_worker;

// FNV-1a over the label bytes: a stable, alloc-free key for the flight
// lane's per-task record (null label hashes to the offset basis).
uint64_t HashLabel(const char* label) {
  uint64_t hash = 1469598103934665603ULL;
  if (label != nullptr) {
    for (const char* p = label; *p != '\0'; ++p) {
      hash = (hash ^ static_cast<unsigned char>(*p)) * 1099511628211ULL;
    }
  }
  return hash;
}

}  // namespace

ThreadPool::ThreadPool(ThreadPoolOptions options)
    : metrics_(options.metrics), sink_(options.trace_sink) {
  size_t n = options.num_threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  if (metrics_ != nullptr) {
    submitted_counter_ = metrics_->GetCounter("exec.pool.submitted_total");
    executed_counter_ = metrics_->GetCounter("exec.pool.executed_total");
    stolen_counter_ = metrics_->GetCounter("exec.pool.stolen_total");
    queue_depth_gauge_ = metrics_->GetGauge("exec.pool.queue_depth");
    metrics_->GetGauge("exec.pool.workers").Set(static_cast<double>(n));
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    if (metrics_ != nullptr) {
      workers_[i]->tasks_counter =
          metrics_->GetCounter("exec.worker." + std::to_string(i) + ".tasks_total");
    }
    if (options.flight_capacity > 0) {
      workers_[i]->flight.emplace(options.flight_capacity);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    if (joined_) {
      return;
    }
  }
  // Stop the timer thread first: a deferred task that fires during worker
  // shutdown is fine (workers run every submitted task before joining), but
  // one firing after the join would submit into a dead pool.
  StopTimerThread();
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stop_ = true;
  }
  if (crash_dumps_armed_) {
    for (auto& worker : workers_) {
      obs::DisarmCrashDump(&*worker->flight);
    }
    crash_dumps_armed_ = false;
  }
  wake_cv_.notify_all();
  for (auto& worker : workers_) {
    worker->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    joined_ = true;
  }
  if (sink_ != nullptr) {
    // Workers have joined; the single-threaded sink is safe to write now.
    // Worker order keeps the flushed event list deterministic up to span
    // timing.
    for (auto& worker : workers_) {
      for (obs::TraceEvent& span : worker->spans) {
        sink_->Add(std::move(span));
      }
      worker->spans.clear();
    }
  }
}

namespace {

// Min-heap comparator on (deadline, seq): std::push_heap keeps the max on
// top, so the predicate is inverted.
bool DeferredLater(const std::shared_ptr<internal::DeferredState>& a,
                   const std::shared_ptr<internal::DeferredState>& b) {
  if (a->deadline != b->deadline) {
    return a->deadline > b->deadline;
  }
  return a->seq > b->seq;
}

}  // namespace

DeferredHandle ThreadPool::SubmitAfter(std::chrono::nanoseconds delay,
                                       std::function<void()> task, const char* label) {
  VCDN_CHECK(task != nullptr);
  auto state = std::make_shared<internal::DeferredState>();
  state->fn = std::move(task);
  state->label = label;
  state->deadline = std::chrono::steady_clock::now() + delay;
  timers_scheduled_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    VCDN_CHECK(!timer_stop_);  // SubmitAfter on a shut-down pool loses the task
    state->seq = timer_seq_++;
    timer_heap_.push_back(state);
    std::push_heap(timer_heap_.begin(), timer_heap_.end(), DeferredLater);
    if (!timer_thread_.joinable()) {
      timer_thread_ = std::thread([this] { TimerLoop(); });
    }
  }
  timer_cv_.notify_one();
  return DeferredHandle(std::move(state));
}

void ThreadPool::TimerLoop() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  for (;;) {
    if (timer_stop_) {
      return;
    }
    if (timer_heap_.empty()) {
      timer_cv_.wait(lock, [this] { return timer_stop_ || !timer_heap_.empty(); });
      continue;
    }
    auto& top = timer_heap_.front();
    if (top->phase.load(std::memory_order_acquire) != internal::DeferredState::kPending) {
      // Cancelled while queued; discard at its position in the heap. (Lazy
      // cleanup: a cancelled far-future timer occupies heap space until its
      // deadline would have passed, but never holds the thread awake.)
      std::pop_heap(timer_heap_.begin(), timer_heap_.end(), DeferredLater);
      timer_heap_.pop_back();
      continue;
    }
    const auto deadline = top->deadline;
    if (std::chrono::steady_clock::now() < deadline) {
      timer_cv_.wait_until(lock, deadline);
      continue;  // re-evaluate: stop flag, earlier insertions, cancellation
    }
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), DeferredLater);
    std::shared_ptr<internal::DeferredState> due = std::move(timer_heap_.back());
    timer_heap_.pop_back();
    if (!due->TryFire()) {
      timers_cancelled_.fetch_add(1, std::memory_order_relaxed);
      continue;  // lost the race to a concurrent Cancel
    }
    timers_fired_.fetch_add(1, std::memory_order_relaxed);
    // Submit outside the lock: Enqueue takes worker and sleep locks, and a
    // concurrent SubmitAfter must never wait on the enqueue.
    lock.unlock();
    Submit(std::move(due->fn), due->label);
    due->fn = nullptr;
    lock.lock();
  }
}

void ThreadPool::StopTimerThread() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_stop_ = true;
    // Everything still pending is cancelled: Shutdown's contract is that
    // undue deferred tasks never run.
    for (auto& state : timer_heap_) {
      int expected = internal::DeferredState::kPending;
      if (state->phase.compare_exchange_strong(expected, internal::DeferredState::kCancelled,
                                               std::memory_order_acq_rel)) {
        timers_cancelled_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    timer_heap_.clear();
    to_join = std::move(timer_thread_);
  }
  timer_cv_.notify_all();
  if (to_join.joinable()) {
    to_join.join();
  }
}

void ThreadPool::Submit(std::function<void()> task, const char* label) {
  VCDN_CHECK(task != nullptr);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  submitted_counter_.Increment();
  Enqueue(Task{std::move(task), label});
}

void ThreadPool::Enqueue(Task task) {
  // Queue discipline (the owner pops from the back): a worker's own
  // subtasks go to the back, so recursive fan-out runs depth-first (LIFO,
  // bounded queue growth, warm caches); external submissions go to the
  // front, so relative to each other they run FIFO on the worker they land
  // on. The FIFO half is what lets the timer thread's (deadline, seq) fire
  // order survive into execution order for equal deadlines on one worker
  // (ThreadPoolTimerTest.EqualDeadlinesFireInSubmitOrder).
  const bool own_worker = current_worker.pool == this;
  size_t target;
  if (own_worker) {
    target = current_worker.index;
  } else {
    target = next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    if (own_worker) {
      workers_[target]->queue.push_back(std::move(task));
    } else {
      workers_[target]->queue.push_front(std::move(task));
    }
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    VCDN_CHECK(!joined_);  // submitting to a shut-down pool loses the task
    ++pending_;
    queue_depth_gauge_.Set(static_cast<double>(pending_));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::PopOwn(size_t self, Task* out) {
  Worker& worker = *workers_[self];
  std::lock_guard<std::mutex> lock(worker.mu);
  if (worker.queue.empty()) {
    return false;
  }
  *out = std::move(worker.queue.back());
  worker.queue.pop_back();
  return true;
}

bool ThreadPool::Steal(size_t self, Task* out) {
  for (size_t offset = 1; offset < workers_.size(); ++offset) {
    Worker& victim = *workers_[(self + offset) % workers_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.queue.empty()) {
      *out = std::move(victim.queue.front());
      victim.queue.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  current_worker = WorkerContext{this, self};
  Worker& worker = *workers_[self];
  const int tid = 2 + static_cast<int>(self);  // lane 1 is the main thread

  for (;;) {
    Task task;
    bool was_stolen = false;
    bool got = PopOwn(self, &task);
    if (!got && Steal(self, &task)) {
      got = true;
      was_stolen = true;
      stolen_.fetch_add(1, std::memory_order_relaxed);
      stolen_counter_.Increment();
    }
    if (got) {
      {
        std::lock_guard<std::mutex> lock(sleep_mu_);
        --pending_;
        queue_depth_gauge_.Set(static_cast<double>(pending_));
      }
      if (sink_ != nullptr && task.label != nullptr) {
        obs::TraceEvent span;
        // Copy the label before running the task: the submitter only has to
        // keep it alive until the task starts (completion of fn may release
        // whatever the label points into, e.g. via a Latch).
        span.name = task.label;
        span.category = "exec";
        span.phase = 'X';
        span.tid = tid;
        span.ts_us = sink_->NowMicros();  // NowMicros is thread-safe
        task.fn();
        span.dur_us = sink_->NowMicros() - span.ts_us;
        worker.spans.push_back(std::move(span));
      } else {
        task.fn();
      }
      executed_.fetch_add(1, std::memory_order_relaxed);
      executed_counter_.Increment();
      worker.tasks_counter.Increment();
      if (worker.flight.has_value()) {
        // One lane entry per task: what this worker was running, in order.
        obs::DecisionRecord record;
        record.key = HashLabel(task.label);
        record.decision = was_stolen ? 1 : 0;
        worker.flight->Record(record);
      }
      continue;
    }

    std::unique_lock<std::mutex> lock(sleep_mu_);
    if (pending_ > 0) {
      continue;  // a task appeared between the scan and the lock; rescan
    }
    if (stop_) {
      break;
    }
    wake_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
    if (pending_ == 0 && stop_) {
      break;
    }
  }
  current_worker = WorkerContext{};
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.stolen = stolen_.load(std::memory_order_relaxed);
  return stats;
}

bool ThreadPool::InWorker() const { return current_worker.pool == this; }

obs::FlightRecorder* ThreadPool::CurrentWorkerFlight() const {
  if (current_worker.pool != this) {
    return nullptr;
  }
  return worker_flight(current_worker.index);
}

void ThreadPool::ArmWorkerCrashDumps(const std::string& path_prefix,
                                     const obs::RunMetadata& meta) {
  VCDN_CHECK(!workers_.empty() && workers_[0]->flight.has_value());
  for (size_t i = 0; i < workers_.size(); ++i) {
    obs::PostMortemContext context;
    context.label = "worker" + std::to_string(i);
    obs::ArmCrashDump(&*workers_[i]->flight,
                      path_prefix + ".worker" + std::to_string(i) + ".jsonl", meta,
                      std::move(context));
  }
  crash_dumps_armed_ = true;
}

}  // namespace vcdn::exec
