// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Minimal join primitives for the executor layer (see docs/PARALLELISM.md):
//
//   * Promise<T> / Future<T> -- one-shot, single-producer value handoff.
//     Deliberately smaller than std::future: no exceptions-in-transit, no
//     shared_future fan-out, no continuations. ThreadPool::Async and
//     Strand::Async build on it.
//   * Latch -- single-use count-down barrier for fan-out/fan-in task chains
//     (one CountDown per shard, one Wait at the join point).
//
// All blocking is mutex + condition variable; nothing here spins.

#ifndef VCDN_SRC_EXEC_FUTURE_H_
#define VCDN_SRC_EXEC_FUTURE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "src/util/check.h"

namespace vcdn::exec {

// Single-use count-down synchronization point.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void CountDown(size_t n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    VCDN_CHECK(count_ >= n);
    count_ -= n;
    if (count_ == 0) {
      cv_.notify_all();
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

  bool TryWait() {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
};

namespace internal {

template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<T> value;
};

template <>
struct FutureState<void> {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
};

}  // namespace internal

template <typename T>
class Promise;

// Read side of a one-shot handoff. Get() blocks until the promise is set and
// moves the value out (call it once); Wait()/Ready() observe without
// consuming. Default-constructed futures are invalid until assigned.
template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  bool Ready() const {
    VCDN_CHECK(valid());
    std::lock_guard<std::mutex> lock(state_->mu);
    return IsReady();
  }

  void Wait() const {
    VCDN_CHECK(valid());
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return IsReady(); });
  }

  T Get() {
    Wait();
    if constexpr (!std::is_void_v<T>) {
      std::lock_guard<std::mutex> lock(state_->mu);
      T out = std::move(*state_->value);
      return out;
    }
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state) : state_(std::move(state)) {}

  bool IsReady() const {
    if constexpr (std::is_void_v<T>) {
      return state_->ready;
    } else {
      return state_->value.has_value();
    }
  }

  std::shared_ptr<internal::FutureState<T>> state_;
};

// Write side; Set exactly once.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}

  Future<T> GetFuture() { return Future<T>(state_); }

  void Set(T value) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      VCDN_CHECK(!state_->value.has_value());
      state_->value.emplace(std::move(value));
    }
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

template <>
class Promise<void> {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<void>>()) {}

  Future<void> GetFuture() { return Future<void>(state_); }

  void Set() {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      VCDN_CHECK(!state_->ready);
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<internal::FutureState<void>> state_;
};

}  // namespace vcdn::exec

#endif  // VCDN_SRC_EXEC_FUTURE_H_
