// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// FlatLruMap: the allocation-free successor of LruMap (which stays as the
// reference implementation for the differential tests).
//
// Same structure as Section 5 of the paper -- a hash map plus a recency
// list -- but realized as flat, index-linked storage instead of
// std::unordered_map + std::list:
//
//   * every entry lives in one contiguous slot slab; erased slots are
//     recycled through a free list, so a warm cache performs zero heap
//     allocations per request;
//   * the recency list is a pair of uint32_t prev/next indices inside the
//     slots (4+4 bytes instead of two 8-byte pointers plus a list node
//     allocation), spliced by index assignment;
//   * the key -> slot index is a FlatIndex: open addressing, linear probing,
//     backshift deletion, 8 bytes per bucket.
//
// Disk capacity in chunks is known when a cache is constructed, so callers
// Reserve() up front and the steady state never rehashes or grows the slab.
//
// Semantics are identical to LruMap (list order equals insertion/touch
// order; the tail is least recently used); the differential test drives both
// through ~1M mixed operations and asserts equal observable state.
//
// Not thread-safe; replay shards each own one instance (see
// docs/PARALLELISM.md).

#ifndef VCDN_SRC_CONTAINER_FLAT_LRU_MAP_H_
#define VCDN_SRC_CONTAINER_FLAT_LRU_MAP_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/container/flat_index.h"
#include "src/container/prefetch.h"
#include "src/util/check.h"

namespace vcdn::container {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class FlatLruMap {
 public:
  static constexpr uint32_t kNil = UINT32_MAX;

  // Detached copy of an entry (what PopOldest returns).
  struct Entry {
    Key key;
    Value value;
  };

  // One slab slot: key/value plus the intrusive recency links. `next` of a
  // freed slot doubles as the free-list link.
  struct Slot {
    Key key;
    Value value;
    uint32_t prev = kNil;
    uint32_t next = kNil;
  };

  FlatLruMap() = default;

  // Pre-sizes slab and index for `capacity` entries: afterwards, insertions
  // up to that size never allocate.
  void Reserve(size_t capacity) {
    slots_.reserve(capacity);
    index_.Reserve(capacity);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Mixed 32-bit hash of `key` -- identical across every FlatIndex-backed
  // container instantiated with the same Key/Hash, so a caller touching the
  // same key in several structures can hash once and pass the value to the
  // hash-taking overloads below.
  uint32_t HashOf(const Key& key) const { return index_.HashOf(key); }

  // Prefetches the index bucket a subsequent operation on this key/hash will
  // probe first. Pure hint (see prefetch.h).
  void PrefetchSlot(uint32_t hash) const { index_.PrefetchBucket(hash); }
  void PrefetchSlot(const Key& key) const { index_.PrefetchBucket(index_.HashOf(key)); }

  // Prefetches the least-recently-used slot (what Oldest/PopOldest read
  // next). The LRU tail is cold by definition, so cleanup scans that poll it
  // every request benefit the most.
  void PrefetchOldest() const {
    if (tail_ != kNil) {
      PrefetchForRead(&slots_[tail_]);
    }
  }

  bool Contains(const Key& key) const { return FindSlot(key) != kNil; }

  // Inserts (or overwrites) and makes the entry most-recent. Returns true if
  // the key was newly inserted.
  bool InsertOrTouch(const Key& key, Value value) {
    return InsertOrTouch(key, std::move(value), index_.HashOf(key));
  }

  // Hash-taking overload: `hash` must equal HashOf(key).
  bool InsertOrTouch(const Key& key, Value value, uint32_t hash) {
    VCDN_DCHECK(hash == index_.HashOf(key));
    uint32_t s = index_.Find(hash, key, KeyAt());
    if (s != kNil) {
      slots_[s].value = std::move(value);
      MoveToFront(s);
      return false;
    }
    s = AllocSlot(key, std::move(value));
    index_.Insert(hash, s);
    LinkFront(s);
    ++size_;
    return true;
  }

  // Overload that avoids constructing a Value when the key is already
  // present (the xLRU-tracker hot path: most requests touch an existing
  // video): touches the entry if present, default-inserts otherwise, and
  // returns the value for in-place assignment.
  Value* InsertOrTouch(const Key& key) {
    uint32_t hash = index_.HashOf(key);
    uint32_t s = index_.Find(hash, key, KeyAt());
    if (s != kNil) {
      MoveToFront(s);
      return &slots_[s].value;
    }
    s = AllocSlot(key, Value());
    index_.Insert(hash, s);
    LinkFront(s);
    ++size_;
    return &slots_[s].value;
  }

  // Returns the value without changing recency, or nullptr if absent.
  const Value* Peek(const Key& key) const {
    uint32_t s = FindSlot(key);
    return s == kNil ? nullptr : &slots_[s].value;
  }

  // Hash-taking overload: `hash` must equal HashOf(key).
  const Value* Peek(const Key& key, uint32_t hash) const {
    VCDN_DCHECK(hash == index_.HashOf(key));
    uint32_t s = index_.Find(hash, key, KeyAt());
    return s == kNil ? nullptr : &slots_[s].value;
  }

  // Mutable Peek: in-place value update without a recency change.
  Value* PeekMut(const Key& key) {
    uint32_t s = FindSlot(key);
    return s == kNil ? nullptr : &slots_[s].value;
  }

  // Hash-taking overload: `hash` must equal HashOf(key).
  Value* PeekMut(const Key& key, uint32_t hash) {
    VCDN_DCHECK(hash == index_.HashOf(key));
    uint32_t s = index_.Find(hash, key, KeyAt());
    return s == kNil ? nullptr : &slots_[s].value;
  }

  // Returns the value and makes the entry most-recent, or nullptr if absent.
  Value* GetAndTouch(const Key& key) {
    uint32_t s = FindSlot(key);
    if (s == kNil) {
      return nullptr;
    }
    MoveToFront(s);
    return &slots_[s].value;
  }

  // Least recently used entry. Must be non-empty.
  const Slot& Oldest() const {
    VCDN_CHECK(size_ > 0);
    return slots_[tail_];
  }

  // Most recently used entry. Must be non-empty.
  const Slot& Newest() const {
    VCDN_CHECK(size_ > 0);
    return slots_[head_];
  }

  // Removes and returns the least recently used entry. Must be non-empty.
  Entry PopOldest() {
    VCDN_CHECK(size_ > 0);
    uint32_t s = tail_;
    // Erase from the index before moving the key out: probe comparisons read
    // the slab key in place.
    uint32_t hash = index_.HashOf(slots_[s].key);
    index_.Erase(hash, slots_[s].key, KeyAt());
    Entry e{std::move(slots_[s].key), std::move(slots_[s].value)};
    Unlink(s);
    FreeSlot(s);
    --size_;
    return e;
  }

  // Removes a specific key. Returns true if it was present.
  bool Erase(const Key& key) { return Erase(key, index_.HashOf(key)); }

  // Hash-taking overload: `hash` must equal HashOf(key).
  bool Erase(const Key& key, uint32_t hash) {
    VCDN_DCHECK(hash == index_.HashOf(key));
    uint32_t s = index_.Erase(hash, key, KeyAt());
    if (s == kNil) {
      return false;
    }
    Unlink(s);
    FreeSlot(s);
    --size_;
    return true;
  }

  void Clear() {
    slots_.clear();  // capacity retained
    index_.Clear();
    head_ = tail_ = free_ = kNil;
    size_ = 0;
  }

  // Iteration from most-recent to least-recent (read-only). Dereferences to
  // a Slot, whose .key/.value match LruMap's Entry fields.
  class const_iterator {
   public:
    const_iterator(const FlatLruMap* map, uint32_t pos) : map_(map), pos_(pos) {}
    const Slot& operator*() const { return map_->slots_[pos_]; }
    const Slot* operator->() const { return &map_->slots_[pos_]; }
    const_iterator& operator++() {
      pos_ = map_->slots_[pos_].next;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.pos_ == b.pos_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.pos_ != b.pos_;
    }

   private:
    const FlatLruMap* map_;
    uint32_t pos_;
  };

  const_iterator begin() const { return const_iterator(this, head_); }
  const_iterator end() const { return const_iterator(this, kNil); }

  // Allocated slab size (for tests: steady state must stop growing).
  size_t slab_size() const { return slots_.size(); }

 private:
  // Key accessor handed to FlatIndex probes.
  struct KeyAtFn {
    const std::vector<Slot>* slots;
    const Key& operator()(uint32_t s) const { return (*slots)[s].key; }
  };
  KeyAtFn KeyAt() const { return KeyAtFn{&slots_}; }

  uint32_t FindSlot(const Key& key) const {
    return index_.Find(index_.HashOf(key), key, KeyAt());
  }

  uint32_t AllocSlot(const Key& key, Value value) {
    if (free_ != kNil) {
      uint32_t s = free_;
      free_ = slots_[s].next;
      slots_[s].key = key;
      slots_[s].value = std::move(value);
      return s;
    }
    VCDN_CHECK_MSG(slots_.size() < kNil, "FlatLruMap slab limit (2^32-1 entries) exceeded");
    slots_.push_back(Slot{key, std::move(value), kNil, kNil});
    return static_cast<uint32_t>(slots_.size() - 1);
  }

  void FreeSlot(uint32_t s) {
    // Release non-trivial payloads eagerly; freed slots may sit in the free
    // list for a long time.
    if constexpr (!std::is_trivially_destructible_v<Key>) {
      slots_[s].key = Key();
    }
    if constexpr (!std::is_trivially_destructible_v<Value>) {
      slots_[s].value = Value();
    }
    slots_[s].next = free_;
    free_ = s;
  }

  void LinkFront(uint32_t s) {
    slots_[s].prev = kNil;
    slots_[s].next = head_;
    if (head_ != kNil) {
      slots_[head_].prev = s;
    }
    head_ = s;
    if (tail_ == kNil) {
      tail_ = s;
    }
  }

  void Unlink(uint32_t s) {
    uint32_t p = slots_[s].prev;
    uint32_t n = slots_[s].next;
    if (p != kNil) {
      slots_[p].next = n;
    } else {
      head_ = n;
    }
    if (n != kNil) {
      slots_[n].prev = p;
    } else {
      tail_ = p;
    }
  }

  void MoveToFront(uint32_t s) {
    if (head_ == s) {
      return;
    }
    Unlink(s);
    LinkFront(s);
  }

  std::vector<Slot> slots_;
  FlatIndex<Key, Hash> index_;
  uint32_t head_ = kNil;
  uint32_t tail_ = kNil;
  uint32_t free_ = kNil;
  uint32_t size_ = 0;
};

}  // namespace vcdn::container

#endif  // VCDN_SRC_CONTAINER_FLAT_LRU_MAP_H_
