// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// ChunkSetMap: video id -> set of chunk indices, the structure behind Cafe's
// unseen-chunk estimate (Sec. 6's "largest IAT among the video's cached
// chunks"). This was the last node-based piece of the Cafe hot path -- an
// unordered_map of unordered_sets allocates a node per cached chunk and a
// bucket array per video, which is where Cafe's residual ~0.15 allocations
// per request came from.
//
// FlatChunkSetMap stores the same relation as two slabs linked by indices:
//
//   * entries_ -- one slot per video currently holding cached chunks: the
//                 video id and the head of its chunk list;
//   * nodes_   -- one slot per cached chunk: the chunk index and the next
//                 link of its video's singly-linked list;
//   * index_   -- FlatIndex video -> entry handle (open addressing,
//                 backshift deletion).
//
// Freed entries and nodes recycle through free lists, so a warm cache
// performs zero heap allocations per request. A video's entry is dropped the
// moment its last chunk is erased (matching the "erase the set when empty"
// idiom of the node-based original).
//
// Iteration order within a video is unspecified (insertion-LIFO here,
// unordered_set order in the reference); consumers must be order-independent
// -- Cafe only folds a max() over the chunks' IATs.
//
// ReferenceChunkSetMap keeps the seed's node-based profile for the
// differential tests and the reference cache instantiations.
//
// Not thread-safe; replay shards each own their instances.

#ifndef VCDN_SRC_CONTAINER_CHUNK_SET_MAP_H_
#define VCDN_SRC_CONTAINER_CHUNK_SET_MAP_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/container/fast_hash.h"
#include "src/container/flat_index.h"
#include "src/util/check.h"

namespace vcdn::container {

class FlatChunkSetMap {
 public:
  static constexpr uint32_t kNil = UINT32_MAX;

  // Pre-sizes for `chunks` cached chunks (the disk capacity). Every cached
  // chunk could be its own video, so the entry slab is sized the same way;
  // afterwards steady state never allocates.
  void Reserve(size_t chunks) {
    entries_.reserve(chunks);
    nodes_.reserve(chunks);
    index_.Reserve(chunks);
  }

  // Number of videos currently holding at least one chunk.
  size_t video_count() const { return index_.size(); }

  // Mixed 32-bit hash of `video`; matches FlatIndex::HashOf for the same key
  // and hasher, so callers sharing keys across containers hash once.
  uint32_t HashOf(uint64_t video) const { return index_.HashOf(video); }

  // Prefetches the index bucket for `video`'s entry. Pure hint.
  void PrefetchVideo(uint32_t hash) const { index_.PrefetchBucket(hash); }

  // Records `chunk` as cached for `video`. The chunk must not already be
  // present (Cafe only inserts chunks that just transitioned to cached).
  void Insert(uint64_t video, uint32_t chunk) { Insert(video, chunk, index_.HashOf(video)); }
  void Insert(uint64_t video, uint32_t chunk, uint32_t hash) {
    VCDN_DCHECK(hash == index_.HashOf(video));
    VCDN_DCHECK(!Contains(video, chunk));
    uint32_t e = index_.Find(hash, video, VideoAt());
    if (e == kNil) {
      e = AllocEntry(video);
      index_.Insert(hash, e);
    }
    uint32_t n = AllocNode(chunk);
    nodes_[n].next = entries_[e].head;
    entries_[e].head = n;
  }

  // Removes `chunk` from `video`'s set; the video's entry is dropped when its
  // last chunk goes. The pair must be present.
  void Erase(uint64_t video, uint32_t chunk) { Erase(video, chunk, index_.HashOf(video)); }
  void Erase(uint64_t video, uint32_t chunk, uint32_t hash) {
    VCDN_DCHECK(hash == index_.HashOf(video));
    uint32_t e = index_.Find(hash, video, VideoAt());
    VCDN_DCHECK(e != kNil);
    uint32_t* link = &entries_[e].head;
    while (nodes_[*link].chunk != chunk) {
      link = &nodes_[*link].next;
      VCDN_DCHECK(*link != kNil);
    }
    uint32_t n = *link;
    *link = nodes_[n].next;
    FreeNode(n);
    if (entries_[e].head == kNil) {
      index_.Erase(hash, video, VideoAt());
      FreeEntry(e);
    }
  }

  // Visits every chunk index cached for `video` (possibly none), in
  // unspecified order.
  template <typename Fn>
  void ForEach(uint64_t video, Fn&& fn) const {
    ForEach(video, index_.HashOf(video), fn);
  }
  template <typename Fn>
  void ForEach(uint64_t video, uint32_t hash, Fn&& fn) const {
    VCDN_DCHECK(hash == index_.HashOf(video));
    uint32_t e = index_.Find(hash, video, VideoAt());
    if (e == kNil) {
      return;
    }
    for (uint32_t n = entries_[e].head; n != kNil; n = nodes_[n].next) {
      fn(nodes_[n].chunk);
    }
  }

  bool Contains(uint64_t video, uint32_t chunk) const {
    bool found = false;
    ForEach(video, [&](uint32_t c) { found = found || c == chunk; });
    return found;
  }

  size_t ChunkCount(uint64_t video) const {
    size_t count = 0;
    ForEach(video, [&](uint32_t) { ++count; });
    return count;
  }

  // Allocated slab sizes (for tests: steady state must stop growing).
  size_t entry_slab_size() const { return entries_.size(); }
  size_t node_slab_size() const { return nodes_.size(); }

 private:
  // `head` points at the first chunk node while live and doubles as the
  // next-free link while freed.
  struct Entry {
    uint64_t video = 0;
    uint32_t head = kNil;
  };
  // `next` links the video's chunk list while live and the free list while
  // freed.
  struct Node {
    uint32_t chunk = 0;
    uint32_t next = kNil;
  };

  struct VideoAtFn {
    const std::vector<Entry>* entries;
    uint64_t operator()(uint32_t e) const { return (*entries)[e].video; }
  };
  VideoAtFn VideoAt() const { return VideoAtFn{&entries_}; }

  uint32_t AllocEntry(uint64_t video) {
    if (entry_free_ != kNil) {
      uint32_t e = entry_free_;
      entry_free_ = entries_[e].head;
      entries_[e] = Entry{video, kNil};
      return e;
    }
    VCDN_CHECK_MSG(entries_.size() < kNil, "FlatChunkSetMap entry slab limit exceeded");
    entries_.push_back(Entry{video, kNil});
    return static_cast<uint32_t>(entries_.size() - 1);
  }

  void FreeEntry(uint32_t e) {
    entries_[e].head = entry_free_;
    entry_free_ = e;
  }

  uint32_t AllocNode(uint32_t chunk) {
    if (node_free_ != kNil) {
      uint32_t n = node_free_;
      node_free_ = nodes_[n].next;
      nodes_[n].chunk = chunk;
      return n;
    }
    VCDN_CHECK_MSG(nodes_.size() < kNil, "FlatChunkSetMap node slab limit exceeded");
    nodes_.push_back(Node{chunk, kNil});
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  void FreeNode(uint32_t n) {
    nodes_[n].next = node_free_;
    node_free_ = n;
  }

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
  FlatIndex<uint64_t> index_;  // std::hash: MixU64 finalizes identity keys
  uint32_t entry_free_ = kNil;
  uint32_t node_free_ = kNil;
};

// The seed's node-based shape (unordered_map of unordered_sets), presented
// through the FlatChunkSetMap API for the reference cache instantiations and
// the differential tests. Hash parameters are ignored (parity overloads).
class ReferenceChunkSetMap {
 public:
  void Reserve(size_t chunks) { (void)chunks; }

  size_t video_count() const { return map_.size(); }

  uint32_t HashOf(uint64_t video) const { return static_cast<uint32_t>(MixU64(video)); }
  void PrefetchVideo(uint32_t hash) const { (void)hash; }

  void Insert(uint64_t video, uint32_t chunk) { map_[video].insert(chunk); }
  void Insert(uint64_t video, uint32_t chunk, uint32_t hash) {
    (void)hash;
    Insert(video, chunk);
  }

  void Erase(uint64_t video, uint32_t chunk) {
    auto it = map_.find(video);
    VCDN_DCHECK(it != map_.end());
    it->second.erase(chunk);
    if (it->second.empty()) {
      map_.erase(it);
    }
  }
  void Erase(uint64_t video, uint32_t chunk, uint32_t hash) {
    (void)hash;
    Erase(video, chunk);
  }

  template <typename Fn>
  void ForEach(uint64_t video, Fn&& fn) const {
    auto it = map_.find(video);
    if (it == map_.end()) {
      return;
    }
    for (uint32_t chunk : it->second) {
      fn(chunk);
    }
  }
  template <typename Fn>
  void ForEach(uint64_t video, uint32_t hash, Fn&& fn) const {
    (void)hash;
    ForEach(video, fn);
  }

  bool Contains(uint64_t video, uint32_t chunk) const {
    auto it = map_.find(video);
    return it != map_.end() && it->second.count(chunk) > 0;
  }

  size_t ChunkCount(uint64_t video) const {
    auto it = map_.find(video);
    return it == map_.end() ? 0 : it->second.size();
  }

 private:
  std::unordered_map<uint64_t, std::unordered_set<uint32_t>, U64Hash> map_;
};

}  // namespace vcdn::container

#endif  // VCDN_SRC_CONTAINER_CHUNK_SET_MAP_H_
