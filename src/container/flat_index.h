// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// FlatIndex: the open-addressing core shared by FlatLruMap and ScoreHeap.
//
// Maps Key -> uint32_t handle (a slot in the caller's slab). The table stores
// only (hash, handle) pairs -- 8 bytes per bucket, one contiguous array -- so
// a probe run is a linear scan of one cache line or two; key bytes stay in
// the caller's slab and are compared through a KeyAt callback only when the
// 32-bit hash tags match.
//
// Collision policy: linear probing with backshift deletion (tombstone-free).
// Erasing compacts the probe run in place, so lookups never scan dead
// buckets and the table needs no periodic rehash to stay fast. Growth
// doubles the bucket array and reinserts from the stored hashes alone (no
// key access). Load factor is capped at 3/4.
//
// All user-provided Hash output is finalized through MixU64, so identity
// hashes (libstdc++ std::hash<uint64_t>) are safe to use with dense keys.

#ifndef VCDN_SRC_CONTAINER_FLAT_INDEX_H_
#define VCDN_SRC_CONTAINER_FLAT_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/container/fast_hash.h"
#include "src/container/prefetch.h"
#include "src/util/check.h"

namespace vcdn::container {

template <typename Key, typename Hash = std::hash<Key>>
class FlatIndex {
 public:
  static constexpr uint32_t kNil = UINT32_MAX;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Mixed 32-bit hash of a key; pass the same value to Find/Insert/Erase so
  // the key is hashed once per operation.
  uint32_t HashOf(const Key& key) const {
    return static_cast<uint32_t>(MixU64(static_cast<uint64_t>(Hash{}(key))));
  }

  // Sizes the table for `n` entries without rehash-triggered growth.
  void Reserve(size_t n) {
    size_t want = NextPow2(n * 4 / 3 + 1);
    if (want > buckets_.size()) {
      Rehash(want);
    }
  }

  void Clear() {
    for (Bucket& b : buckets_) {
      b.handle = kNil;
    }
    size_ = 0;
  }

  // Hints the cache hierarchy to pull in the home bucket of `hash` ahead of a
  // Find/Insert/Erase for the same hash. Pure hint, never required for
  // correctness; at <= 3/4 load the probe run usually ends within the
  // prefetched line (8-byte buckets, 8 per line).
  void PrefetchBucket(uint32_t hash) const {
    if (!buckets_.empty()) {
      PrefetchForRead(&buckets_[hash & mask_]);
    }
  }

  // Resolves `count` keys in one call: first touches every home bucket so the
  // independent cache misses overlap (memory-level parallelism), then probes
  // each run against lines that are already in flight. out[i] receives the
  // handle for keys[i], or kNil. Results are exactly what `count` separate
  // Find calls would return.
  template <typename KeyAt>
  void FindMany(const uint32_t* hashes, const Key* keys, size_t count, uint32_t* out,
                const KeyAt& key_at) const {
    for (size_t i = 0; i < count; ++i) {
      PrefetchBucket(hashes[i]);
    }
    for (size_t i = 0; i < count; ++i) {
      out[i] = Find(hashes[i], keys[i], key_at);
    }
  }

  // Returns the handle stored for `key`, or kNil. `key_at(handle)` must
  // return (something comparable to) the key stored in the caller's slab.
  template <typename KeyAt>
  uint32_t Find(uint32_t hash, const Key& key, const KeyAt& key_at) const {
    if (buckets_.empty()) {
      return kNil;
    }
    size_t i = hash & mask_;
    while (true) {
      const Bucket& b = buckets_[i];
      if (b.handle == kNil) {
        return kNil;
      }
      if (b.hash == hash && key_at(b.handle) == key) {
        return b.handle;
      }
      i = (i + 1) & mask_;
    }
  }

  // Inserts a (hash, handle) pair. The key must not already be present
  // (callers Find first); duplicates would shadow each other.
  void Insert(uint32_t hash, uint32_t handle) {
    if ((size_ + 1) * 4 > buckets_.size() * 3) {
      Rehash(buckets_.empty() ? kMinBuckets : buckets_.size() * 2);
    }
    Place(hash, handle);
    ++size_;
  }

  // Removes the entry for `key`, backshifting the probe run. Returns the
  // erased handle, or kNil if the key was absent.
  template <typename KeyAt>
  uint32_t Erase(uint32_t hash, const Key& key, const KeyAt& key_at) {
    if (buckets_.empty()) {
      return kNil;
    }
    size_t i = hash & mask_;
    while (true) {
      Bucket& b = buckets_[i];
      if (b.handle == kNil) {
        return kNil;
      }
      if (b.hash == hash && key_at(b.handle) == key) {
        break;
      }
      i = (i + 1) & mask_;
    }
    uint32_t erased = buckets_[i].handle;
    // Backshift: pull every displaced entry of the run one step toward its
    // home bucket, then clear the final vacancy.
    size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      if (buckets_[j].handle == kNil) {
        break;
      }
      size_t home = buckets_[j].hash & mask_;
      if (((j - home) & mask_) >= ((j - i) & mask_)) {
        buckets_[i] = buckets_[j];
        i = j;
      }
    }
    buckets_[i].handle = kNil;
    --size_;
    return erased;
  }

  // Number of buckets currently allocated (for tests / load inspection).
  size_t bucket_count() const { return buckets_.size(); }

 private:
  static constexpr size_t kMinBuckets = 16;

  struct Bucket {
    uint32_t hash = 0;
    uint32_t handle = kNil;
  };

  static size_t NextPow2(size_t n) {
    size_t p = kMinBuckets;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

  void Place(uint32_t hash, uint32_t handle) {
    size_t i = hash & mask_;
    while (buckets_[i].handle != kNil) {
      i = (i + 1) & mask_;
    }
    buckets_[i] = Bucket{hash, handle};
  }

  void Rehash(size_t new_buckets) {
    VCDN_DCHECK((new_buckets & (new_buckets - 1)) == 0);
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(new_buckets, Bucket{});
    mask_ = new_buckets - 1;
    for (const Bucket& b : old) {
      if (b.handle != kNil) {
        Place(b.hash, b.handle);
      }
    }
  }

  std::vector<Bucket> buckets_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace vcdn::container

#endif  // VCDN_SRC_CONTAINER_FLAT_INDEX_H_
