// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// LruMap: a hash map whose entries are additionally kept in recency order,
// the structure described in Section 5 of the paper: "a linked list
// maintaining access times in sorted order, and a hash map that maps keys to
// list entries. ... This enables O(1) lookup of access time, retrieval of
// cache age, removal of the oldest entries, and insertion of entries at list
// head."
//
// Both the xLRU disk cache (key = {video, chunk}) and the xLRU video
// popularity tracker (key = video) are instances of this template.
//
// Invariant: list order equals insertion/touch order; Touch/Insert move an
// entry to the head (most recent); the tail is the least recently used entry.
// Inserting with an arbitrary recency other than "now" is intentionally not
// supported (mirrors the paper's note).
//
// This is the REFERENCE implementation: the hot paths run on FlatLruMap
// (flat_lru_map.h), and the differential test drives both through ~1M mixed
// operations asserting identical observable state. Keep the two APIs in
// sync (Reserve/PeekMut here exist for that parity and are trivial).

#ifndef VCDN_SRC_CONTAINER_LRU_MAP_H_
#define VCDN_SRC_CONTAINER_LRU_MAP_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "src/container/fast_hash.h"
#include "src/util/check.h"

namespace vcdn::container {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruMap {
 public:
  struct Entry {
    Key key;
    Value value;
  };

  LruMap() = default;

  // API parity with FlatLruMap; the node-based containers cannot pre-place
  // entries, so only the index benefits.
  void Reserve(size_t capacity) { index_.reserve(capacity); }

  // API parity with FlatLruMap's hash-reuse surface: HashOf computes the same
  // mixed value the flat containers use (so differential drivers can hash
  // once for both policies), the prefetches are no-ops, and the hash-taking
  // overloads ignore the hash -- the chained map rehashes internally either
  // way, and reference-policy performance is not tracked.
  uint32_t HashOf(const Key& key) const {
    return static_cast<uint32_t>(MixU64(static_cast<uint64_t>(Hash{}(key))));
  }
  void PrefetchSlot(uint32_t hash) const { (void)hash; }
  void PrefetchSlot(const Key& key) const { (void)key; }
  void PrefetchOldest() const {}

  size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  bool Contains(const Key& key) const { return index_.find(key) != index_.end(); }

  // Inserts (or overwrites) and makes the entry most-recent. Returns true if
  // the key was newly inserted.
  bool InsertOrTouch(const Key& key, Value value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->value = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return false;
    }
    order_.push_front(Entry{key, std::move(value)});
    index_.emplace(key, order_.begin());
    return true;
  }

  // Hash-ignoring parity overload (see HashOf above).
  bool InsertOrTouch(const Key& key, Value value, uint32_t hash) {
    (void)hash;
    return InsertOrTouch(key, std::move(value));
  }

  // Overload that avoids constructing a Value when the key is already
  // present (the xLRU-tracker hot path): touches the entry if present,
  // default-inserts otherwise, and returns the value for in-place
  // assignment.
  Value* InsertOrTouch(const Key& key) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return &it->second->value;
    }
    order_.push_front(Entry{key, Value()});
    index_.emplace(key, order_.begin());
    return &order_.begin()->value;
  }

  // Returns the value without changing recency, or nullptr if absent.
  const Value* Peek(const Key& key) const {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return nullptr;
    }
    return &it->second->value;
  }

  // Hash-ignoring parity overload.
  const Value* Peek(const Key& key, uint32_t hash) const {
    (void)hash;
    return Peek(key);
  }

  // Mutable Peek: in-place value update without a recency change.
  Value* PeekMut(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return nullptr;
    }
    return &it->second->value;
  }

  // Hash-ignoring parity overload.
  Value* PeekMut(const Key& key, uint32_t hash) {
    (void)hash;
    return PeekMut(key);
  }

  // Returns the value and makes the entry most-recent, or nullptr if absent.
  Value* GetAndTouch(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return nullptr;
    }
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->value;
  }

  // Least recently used entry. Must be non-empty.
  const Entry& Oldest() const {
    VCDN_CHECK(!order_.empty());
    return order_.back();
  }

  // Most recently used entry. Must be non-empty.
  const Entry& Newest() const {
    VCDN_CHECK(!order_.empty());
    return order_.front();
  }

  // Removes and returns the least recently used entry. Must be non-empty.
  Entry PopOldest() {
    VCDN_CHECK(!order_.empty());
    Entry e = std::move(order_.back());
    index_.erase(e.key);
    order_.pop_back();
    return e;
  }

  // Removes a specific key. Returns true if it was present.
  bool Erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  // Hash-ignoring parity overload.
  bool Erase(const Key& key, uint32_t hash) {
    (void)hash;
    return Erase(key);
  }

  void Clear() {
    order_.clear();
    index_.clear();
  }

  // Iteration from most-recent to least-recent (read-only).
  auto begin() const { return order_.cbegin(); }
  auto end() const { return order_.cend(); }

 private:
  std::list<Entry> order_;
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index_;
};

}  // namespace vcdn::container

#endif  // VCDN_SRC_CONTAINER_LRU_MAP_H_
