// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// ScoreHeap: the flat successor of OrderedKeySet (which stays as the
// reference implementation; see RefScoreHeap in ordered_key_set.h).
//
// Section 6's "binary tree set plus hash map" kept Cafe's virtual timestamps
// in a red-black std::set -- one node allocation and a pointer-chasing
// rebalance per update. Every algorithm in this repo only ever consumes the
// ordering from ONE end (Cafe/FillLFU evict the least-score chunk,
// Psychic/Belady the greatest), so the total order can be relaxed to an
// indexed binary heap over one contiguous slab:
//
//   * nodes_   -- slab of (score, id, heap position); erased nodes recycle
//                 through a free list, zero allocations in steady state;
//   * heap_    -- binary heap of uint32_t node handles, ordered by
//                 (score, id) toward the configured end;
//   * index_   -- FlatIndex id -> handle (open addressing, backshift).
//
// Update/Erase are O(log n) sift operations on the index array; Top is O(1).
// Tie-breaking is deterministic and bit-identical to OrderedKeySet: the
// min-first heap orders by (score, id) ascending (set begin()), the
// max-first heap by (score, id) descending (set rbegin()), so eviction
// victim order -- and therefore every replay total -- is unchanged.
//
// Ordered partial traversal (victim selection skips chunks of the current
// request) is ScanInOrder: an auxiliary heap over heap positions yields
// globally sorted order because every heap parent precedes its children; the
// scratch buffer is a reused member, so steady-state scans do not allocate.
//
// Not thread-safe (ScanInOrder reuses mutable scratch); replay shards each
// own their instances.

#ifndef VCDN_SRC_CONTAINER_SCORE_HEAP_H_
#define VCDN_SRC_CONTAINER_SCORE_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/container/flat_index.h"
#include "src/container/prefetch.h"
#include "src/util/check.h"

namespace vcdn::container {

// kMaxFirst = false: Top() is the least (score, id)   -- OrderedKeySet::Min.
// kMaxFirst = true:  Top() is the greatest (score, id) -- OrderedKeySet::Max.
template <typename Id, typename Score, typename Hash = std::hash<Id>, bool kMaxFirst = false>
class ScoreHeap {
 public:
  static constexpr uint32_t kNil = UINT32_MAX;
  using Item = std::pair<Score, Id>;  // ordered by score, then id

  void Reserve(size_t capacity) {
    nodes_.reserve(capacity);
    heap_.reserve(capacity);
    index_.Reserve(capacity);
  }

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  // Mixed 32-bit hash of `id` -- identical across every FlatIndex-backed
  // container instantiated with the same Id/Hash (hash once, reuse
  // everywhere).
  uint32_t HashOf(const Id& id) const { return index_.HashOf(id); }

  // Prefetches the index bucket a subsequent operation on this id/hash will
  // probe first. Pure hint (see prefetch.h).
  void PrefetchEntry(uint32_t hash) const { index_.PrefetchBucket(hash); }
  void PrefetchEntry(const Id& id) const { index_.PrefetchBucket(index_.HashOf(id)); }

  // Prefetches the top node (what Top/PopTop/ScanInOrder read next).
  void PrefetchTop() const {
    if (!heap_.empty()) {
      PrefetchForRead(&nodes_[heap_[0]]);
    }
  }

  bool Contains(const Id& id) const { return FindNode(id) != kNil; }

  // Hash-taking overload: `hash` must equal HashOf(id).
  bool Contains(const Id& id, uint32_t hash) const {
    VCDN_DCHECK(hash == index_.HashOf(id));
    return index_.Find(hash, id, IdAt()) != kNil;
  }

  // Membership of `count` ids in one call, interleaving the index probes so
  // their cache misses overlap (FlatIndex::FindMany). out[i] is nonzero iff
  // ids[i] is present; hashes[i] must equal HashOf(ids[i]).
  void ContainsMany(const Id* ids, const uint32_t* hashes, size_t count, uint8_t* out) const {
    find_scratch_.resize(count);
    index_.FindMany(hashes, ids, count, find_scratch_.data(), IdAt());
    for (size_t i = 0; i < count; ++i) {
      out[i] = find_scratch_[i] != kNil ? 1 : 0;
    }
  }

  // Returns the score of an item, or nullptr if absent.
  const Score* GetScore(const Id& id) const {
    uint32_t n = FindNode(id);
    return n == kNil ? nullptr : &nodes_[n].item.first;
  }

  // Inserts the item or moves it to a new score. Returns true if newly
  // inserted.
  bool InsertOrUpdate(const Id& id, const Score& score) {
    return InsertOrUpdate(id, score, index_.HashOf(id));
  }

  // Hash-taking overload: `hash` must equal HashOf(id).
  bool InsertOrUpdate(const Id& id, const Score& score, uint32_t hash) {
    VCDN_DCHECK(hash == index_.HashOf(id));
    uint32_t n = index_.Find(hash, id, IdAt());
    if (n != kNil) {
      nodes_[n].item.first = score;
      uint32_t pos = nodes_[n].heap_pos;
      if (!SiftUp(pos)) {
        SiftDown(pos);
      }
      return false;
    }
    n = AllocNode(Item{score, id});
    index_.Insert(hash, n);
    nodes_[n].heap_pos = static_cast<uint32_t>(heap_.size());
    heap_.push_back(n);
    SiftUp(nodes_[n].heap_pos);
    return true;
  }

  bool Erase(const Id& id) { return Erase(id, index_.HashOf(id)); }

  // Hash-taking overload: `hash` must equal HashOf(id).
  bool Erase(const Id& id, uint32_t hash) {
    VCDN_DCHECK(hash == index_.HashOf(id));
    uint32_t n = index_.Erase(hash, id, IdAt());
    if (n == kNil) {
      return false;
    }
    RemoveFromHeap(nodes_[n].heap_pos);
    FreeNode(n);
    return true;
  }

  // Best item toward the configured end. Must be non-empty.
  const Item& Top() const {
    VCDN_CHECK(!heap_.empty());
    return nodes_[heap_[0]].item;
  }

  // Removes and returns the best item. Must be non-empty.
  Item PopTop() {
    VCDN_CHECK(!heap_.empty());
    uint32_t n = heap_[0];
    // Erase from the index before moving the item out: probes compare the
    // slab id in place.
    index_.Erase(index_.HashOf(nodes_[n].item.second), nodes_[n].item.second, IdAt());
    Item item = std::move(nodes_[n].item);
    RemoveFromHeap(0);
    FreeNode(n);
    return item;
  }

  void Clear() {
    nodes_.clear();  // capacity retained
    heap_.clear();
    index_.Clear();
    free_ = kNil;
  }

  // Visits items in order from Top() outward (globally sorted toward the
  // configured end) until `fn` returns false or items run out. `fn` must not
  // mutate the heap; collect first, erase after.
  template <typename Fn>
  void ScanInOrder(Fn&& fn) const {
    if (heap_.empty()) {
      return;
    }
    scan_scratch_.clear();
    scan_scratch_.push_back(0);
    auto later = [this](uint32_t a, uint32_t b) {
      // "a comes after b": std heap ops then surface the scan-next position.
      return Before(nodes_[heap_[b]].item, nodes_[heap_[a]].item);
    };
    while (!scan_scratch_.empty()) {
      std::pop_heap(scan_scratch_.begin(), scan_scratch_.end(), later);
      uint32_t pos = scan_scratch_.back();
      scan_scratch_.pop_back();
      if (!fn(nodes_[heap_[pos]].item)) {
        return;
      }
      for (uint32_t child = pos * 2 + 1; child <= pos * 2 + 2; ++child) {
        if (child < heap_.size()) {
          scan_scratch_.push_back(child);
          std::push_heap(scan_scratch_.begin(), scan_scratch_.end(), later);
        }
      }
    }
  }

  // Allocated slab size (for tests: steady state must stop growing).
  size_t slab_size() const { return nodes_.size(); }

 private:
  struct Node {
    Item item;
    // Position in heap_ while live; next free node handle while freed.
    uint32_t heap_pos = kNil;
  };

  // Heap order toward the configured end; ties always break on id so the
  // order is total and replay-deterministic.
  bool Before(const Item& a, const Item& b) const {
    if constexpr (kMaxFirst) {
      if (a.first != b.first) {
        return b.first < a.first;
      }
      return b.second < a.second;
    } else {
      if (a.first != b.first) {
        return a.first < b.first;
      }
      return a.second < b.second;
    }
  }

  struct IdAtFn {
    const std::vector<Node>* nodes;
    const Id& operator()(uint32_t n) const { return (*nodes)[n].item.second; }
  };
  IdAtFn IdAt() const { return IdAtFn{&nodes_}; }

  uint32_t FindNode(const Id& id) const {
    return index_.Find(index_.HashOf(id), id, IdAt());
  }

  uint32_t AllocNode(Item item) {
    if (free_ != kNil) {
      uint32_t n = free_;
      free_ = nodes_[n].heap_pos;
      nodes_[n].item = std::move(item);
      return n;
    }
    VCDN_CHECK_MSG(nodes_.size() < kNil, "ScoreHeap slab limit (2^32-1 entries) exceeded");
    nodes_.push_back(Node{std::move(item), kNil});
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  void FreeNode(uint32_t n) {
    nodes_[n].heap_pos = free_;
    free_ = n;
  }

  // Standard indexed-heap removal: swap the last element in, restore order.
  void RemoveFromHeap(uint32_t pos) {
    uint32_t last = heap_.back();
    heap_.pop_back();
    if (pos < heap_.size()) {
      heap_[pos] = last;
      nodes_[last].heap_pos = pos;
      if (!SiftUp(pos)) {
        SiftDown(pos);
      }
    }
  }

  // Returns true if the element moved.
  bool SiftUp(uint32_t pos) {
    uint32_t n = heap_[pos];
    bool moved = false;
    while (pos > 0) {
      uint32_t parent = (pos - 1) / 2;
      if (!Before(nodes_[n].item, nodes_[heap_[parent]].item)) {
        break;
      }
      heap_[pos] = heap_[parent];
      nodes_[heap_[pos]].heap_pos = pos;
      pos = parent;
      moved = true;
    }
    heap_[pos] = n;
    nodes_[n].heap_pos = pos;
    return moved;
  }

  void SiftDown(uint32_t pos) {
    uint32_t n = heap_[pos];
    const size_t count = heap_.size();
    while (true) {
      size_t best = pos;
      const Item* best_item = &nodes_[n].item;
      for (size_t child = static_cast<size_t>(pos) * 2 + 1;
           child <= static_cast<size_t>(pos) * 2 + 2 && child < count; ++child) {
        if (Before(nodes_[heap_[child]].item, *best_item)) {
          best = child;
          best_item = &nodes_[heap_[child]].item;
        }
      }
      if (best == pos) {
        break;
      }
      heap_[pos] = heap_[best];
      nodes_[heap_[pos]].heap_pos = pos;
      pos = static_cast<uint32_t>(best);
    }
    heap_[pos] = n;
    nodes_[n].heap_pos = pos;
  }

  std::vector<Node> nodes_;
  std::vector<uint32_t> heap_;
  FlatIndex<Id, Hash> index_;
  uint32_t free_ = kNil;
  // Reused by ScanInOrder so steady-state scans do not allocate.
  mutable std::vector<uint32_t> scan_scratch_;
  // Reused by ContainsMany; sized to the largest batch seen, then stable.
  mutable std::vector<uint32_t> find_scratch_;
};

}  // namespace vcdn::container

#endif  // VCDN_SRC_CONTAINER_SCORE_HEAP_H_
