// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// OrderedKeySet: the "binary tree set plus hash map" structure of Section 6 of
// the paper. It maintains a set of items, each with a totally ordered score
// (Cafe Cache's virtual timestamps), and supports:
//   - InsertOrUpdate(id, score)            O(log n)   (arbitrary score, unlike LRU)
//   - Erase(id), GetScore(id), Contains    O(log n) / O(1)
//   - Min() / PopMin()                     O(1) amortized retrieval of the
//                                          least-score (least popular) item
//   - in-order traversal from the minimum
//
// Ties on score are broken deterministically by id so iteration order is
// reproducible across platforms.
//
// This is the REFERENCE implementation: the hot paths run on ScoreHeap
// (score_heap.h). RefScoreHeap below adapts this set to the ScoreHeap API so
// the differential test and the reference cache instantiations
// (container::ReferenceContainers) can drive both through identical
// operation sequences.

#ifndef VCDN_SRC_CONTAINER_ORDERED_KEY_SET_H_
#define VCDN_SRC_CONTAINER_ORDERED_KEY_SET_H_

#include <cstddef>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>

#include "src/container/fast_hash.h"
#include "src/util/check.h"

namespace vcdn::container {

template <typename Id, typename Score, typename Hash = std::hash<Id>>
class OrderedKeySet {
 public:
  using Item = std::pair<Score, Id>;  // ordered by score, then id

  size_t size() const { return score_by_id_.size(); }
  bool empty() const { return score_by_id_.empty(); }

  bool Contains(const Id& id) const { return score_by_id_.count(id) > 0; }

  // Returns the score of an item, or nullptr if absent.
  const Score* GetScore(const Id& id) const {
    auto it = score_by_id_.find(id);
    if (it == score_by_id_.end()) {
      return nullptr;
    }
    return &it->second;
  }

  // Inserts the item or moves it to a new score. Returns true if newly
  // inserted.
  bool InsertOrUpdate(const Id& id, const Score& score) {
    auto it = score_by_id_.find(id);
    if (it != score_by_id_.end()) {
      ordered_.erase(Item{it->second, id});
      it->second = score;
      ordered_.insert(Item{score, id});
      return false;
    }
    score_by_id_.emplace(id, score);
    ordered_.insert(Item{score, id});
    return true;
  }

  bool Erase(const Id& id) {
    auto it = score_by_id_.find(id);
    if (it == score_by_id_.end()) {
      return false;
    }
    ordered_.erase(Item{it->second, id});
    score_by_id_.erase(it);
    return true;
  }

  // Least-score item. Must be non-empty.
  const Item& Min() const {
    VCDN_CHECK(!ordered_.empty());
    return *ordered_.begin();
  }

  // Removes and returns the least-score item. Must be non-empty.
  Item PopMin() {
    VCDN_CHECK(!ordered_.empty());
    Item item = *ordered_.begin();
    ordered_.erase(ordered_.begin());
    score_by_id_.erase(item.second);
    return item;
  }

  // Greatest-score item. Must be non-empty.
  const Item& Max() const {
    VCDN_CHECK(!ordered_.empty());
    return *ordered_.rbegin();
  }

  // Removes and returns the greatest-score item. Must be non-empty.
  Item PopMax() {
    VCDN_CHECK(!ordered_.empty());
    auto it = std::prev(ordered_.end());
    Item item = *it;
    ordered_.erase(it);
    score_by_id_.erase(item.second);
    return item;
  }

  void Clear() {
    ordered_.clear();
    score_by_id_.clear();
  }

  // In-order (ascending score) traversal.
  auto begin() const { return ordered_.cbegin(); }
  auto end() const { return ordered_.cend(); }

 private:
  std::set<Item> ordered_;
  std::unordered_map<Id, Score, Hash> score_by_id_;
};

// Adapter presenting OrderedKeySet through the directional ScoreHeap API
// (Top/PopTop/ScanInOrder). kMaxFirst = false maps Top to Min (ascending
// scan), kMaxFirst = true maps Top to Max (descending scan) -- exactly the
// (score, id) orders ScoreHeap produces, so the two are interchangeable in
// the differential tests and the reference cache instantiations.
template <typename Id, typename Score, typename Hash = std::hash<Id>, bool kMaxFirst = false>
class RefScoreHeap {
 public:
  using Item = typename OrderedKeySet<Id, Score, Hash>::Item;

  void Reserve(size_t capacity) { (void)capacity; }  // node-based: nothing to pre-place

  size_t size() const { return set_.size(); }
  bool empty() const { return set_.empty(); }
  bool Contains(const Id& id) const { return set_.Contains(id); }
  const Score* GetScore(const Id& id) const { return set_.GetScore(id); }
  bool InsertOrUpdate(const Id& id, const Score& score) { return set_.InsertOrUpdate(id, score); }
  bool Erase(const Id& id) { return set_.Erase(id); }
  void Clear() { set_.Clear(); }

  // API parity with ScoreHeap's hash-reuse surface: HashOf matches the flat
  // containers' mixed value, prefetches are no-ops, and the hash-taking
  // overloads ignore the hash (see lru_map.h for the rationale).
  uint32_t HashOf(const Id& id) const {
    return static_cast<uint32_t>(MixU64(static_cast<uint64_t>(Hash{}(id))));
  }
  void PrefetchEntry(uint32_t hash) const { (void)hash; }
  void PrefetchEntry(const Id& id) const { (void)id; }
  void PrefetchTop() const {}
  bool Contains(const Id& id, uint32_t hash) const {
    (void)hash;
    return set_.Contains(id);
  }
  bool InsertOrUpdate(const Id& id, const Score& score, uint32_t hash) {
    (void)hash;
    return set_.InsertOrUpdate(id, score);
  }
  bool Erase(const Id& id, uint32_t hash) {
    (void)hash;
    return set_.Erase(id);
  }
  void ContainsMany(const Id* ids, const uint32_t* hashes, size_t count, uint8_t* out) const {
    (void)hashes;
    for (size_t i = 0; i < count; ++i) {
      out[i] = set_.Contains(ids[i]) ? 1 : 0;
    }
  }

  const Item& Top() const { return kMaxFirst ? set_.Max() : set_.Min(); }
  Item PopTop() { return kMaxFirst ? set_.PopMax() : set_.PopMin(); }

  template <typename Fn>
  void ScanInOrder(Fn&& fn) const {
    if constexpr (kMaxFirst) {
      for (auto it = set_.end(); it != set_.begin();) {
        --it;
        if (!fn(*it)) {
          return;
        }
      }
    } else {
      for (const Item& item : set_) {
        if (!fn(item)) {
          return;
        }
      }
    }
  }

 private:
  OrderedKeySet<Id, Score, Hash> set_;
};

}  // namespace vcdn::container

#endif  // VCDN_SRC_CONTAINER_ORDERED_KEY_SET_H_
