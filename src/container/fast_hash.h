// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Shared hash mixing for the flat hot-path containers and the trace
// aggregation maps.
//
// libstdc++'s std::hash<uint64_t> is the identity function, which is fine for
// the chained std::unordered_map but catastrophic for open addressing: video
// ids are assigned densely, so identity-hashed keys cluster into one long
// probe run. Every flat container therefore finalizes whatever Hash functor
// it is given through MixU64 (a full-avalanche SplitMix64/Murmur3 finalizer),
// and the trace-analysis maps use U64Hash directly so their uint64 keys get
// the same treatment.

#ifndef VCDN_SRC_CONTAINER_FAST_HASH_H_
#define VCDN_SRC_CONTAINER_FAST_HASH_H_

#include <cstddef>
#include <cstdint>

namespace vcdn::container {

// Full-avalanche 64-bit mix (the SplitMix64 / Murmur3 fmix64 finalizer):
// every input bit flips every output bit with probability ~1/2.
inline uint64_t MixU64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

// Drop-in replacement for std::hash<uint64_t> with real avalanche behavior.
struct U64Hash {
  size_t operator()(uint64_t x) const { return static_cast<size_t>(MixU64(x)); }
};

}  // namespace vcdn::container

#endif  // VCDN_SRC_CONTAINER_FAST_HASH_H_
