// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Container policies: the cache algorithms are templated on one of these so
// the same algorithm code can run on the flat hot-path containers (the
// default) or on the node-based reference containers.
//
// Both instantiations are compiled and kept: bench_replay_throughput replays
// the same workload on both and reports the speedup next to a FleetDigest
// equality check, and the differential tests drive cache pairs through
// randomized request streams (including Resize/DropContents) asserting
// identical outcomes. The reference policy is the frozen seed baseline --
// changing its behavior invalidates the perf trajectory in
// BENCH_hotpath.json.

#ifndef VCDN_SRC_CONTAINER_CONTAINERS_H_
#define VCDN_SRC_CONTAINER_CONTAINERS_H_

#include <functional>
#include <string_view>

#include "src/container/chunk_set_map.h"
#include "src/container/flat_lru_map.h"
#include "src/container/lru_map.h"
#include "src/container/ordered_key_set.h"
#include "src/container/score_heap.h"

namespace vcdn::container {

// Flat, index-linked, allocation-free in steady state. The production choice.
struct FlatContainers {
  static constexpr std::string_view kLabel = "flat";
  template <typename K, typename V, typename H = std::hash<K>>
  using LruMapT = FlatLruMap<K, V, H>;
  template <typename I, typename S, typename H = std::hash<I>>
  using MinHeapT = ScoreHeap<I, S, H, /*kMaxFirst=*/false>;
  template <typename I, typename S, typename H = std::hash<I>>
  using MaxHeapT = ScoreHeap<I, S, H, /*kMaxFirst=*/true>;
  using ChunkSetMapT = FlatChunkSetMap;
};

// std::list + std::unordered_map + std::set, as in the seed implementation.
struct ReferenceContainers {
  static constexpr std::string_view kLabel = "reference";
  template <typename K, typename V, typename H = std::hash<K>>
  using LruMapT = LruMap<K, V, H>;
  template <typename I, typename S, typename H = std::hash<I>>
  using MinHeapT = RefScoreHeap<I, S, H, /*kMaxFirst=*/false>;
  template <typename I, typename S, typename H = std::hash<I>>
  using MaxHeapT = RefScoreHeap<I, S, H, /*kMaxFirst=*/true>;
  using ChunkSetMapT = ReferenceChunkSetMap;
};

}  // namespace vcdn::container

#endif  // VCDN_SRC_CONTAINER_CONTAINERS_H_
