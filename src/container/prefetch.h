// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Best-effort software prefetch for the flat hot-path containers.
//
// The flat containers trade pointer chasing for index chasing, but a probe
// still begins with one data-dependent cache line (the home bucket, then the
// slab slot). A replay batch knows its next few keys ahead of time, so the
// batched admission path (CacheAlgorithm::HandleRequestBatch) issues these
// hints for request i+k while the cost model evaluates request i, overlapping
// the independent misses instead of serializing them.
//
// Prefetches are pure hints: correctness never depends on them, they touch no
// state an observer can see, and they compile to nothing where unsupported.

#ifndef VCDN_SRC_CONTAINER_PREFETCH_H_
#define VCDN_SRC_CONTAINER_PREFETCH_H_

namespace vcdn::container {

// Hints the cache hierarchy to pull `p`'s line in for a read. High temporal
// locality (L1): the batched hot path touches the line within a few hundred
// cycles of the hint.
inline void PrefetchForRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace vcdn::container

#endif  // VCDN_SRC_CONTAINER_PREFETCH_H_
