// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Minimal Status / Result<T> error-propagation types. The library is built
// without exceptions on its main paths; recoverable failures (I/O, parse
// errors, solver limits) are reported through these types.

#ifndef VCDN_SRC_UTIL_STATUS_H_
#define VCDN_SRC_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "src/util/check.h"

namespace vcdn::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kDataLoss,
};

// Returns a stable human-readable name, e.g. "INVALID_ARGUMENT".
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path (no message
// allocation for OK statuses).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {
    VCDN_CHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status InternalError(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
inline Status DataLossError(std::string msg) { return Status(StatusCode::kDataLoss, std::move(msg)); }

// A value or an error. Accessing the value of an error Result is a fatal
// contract violation (use ok() first).
template <typename T>
class Result {
 public:
  // Intentionally implicit, mirroring absl::StatusOr ergonomics.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    VCDN_CHECK_MSG(!std::get<Status>(storage_).ok(), "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const T& value() const& {
    VCDN_CHECK_MSG(ok(), "Result::value() called on error result");
    return std::get<T>(storage_);
  }
  T& value() & {
    VCDN_CHECK_MSG(ok(), "Result::value() called on error result");
    return std::get<T>(storage_);
  }
  T&& value() && {
    VCDN_CHECK_MSG(ok(), "Result::value() called on error result");
    return std::get<T>(std::move(storage_));
  }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(storage_);
  }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace vcdn::util

// Propagates a non-OK status from an expression to the caller.
#define VCDN_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::vcdn::util::Status vcdn_status_ = (expr); \
    if (!vcdn_status_.ok()) {                   \
      return vcdn_status_;                      \
    }                                           \
  } while (false)

#endif  // VCDN_SRC_UTIL_STATUS_H_
