// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/util/check.h"

#include <atomic>

namespace vcdn::util {

namespace {

std::atomic<CheckFailureHook> g_check_failure_hook{nullptr};
std::atomic<bool> g_check_failure_hook_ran{false};

}  // namespace

void SetCheckFailureHook(CheckFailureHook hook) {
  g_check_failure_hook.store(hook, std::memory_order_release);
  g_check_failure_hook_ran.store(false, std::memory_order_release);
}

namespace internal {

void RunCheckFailureHook() {
  CheckFailureHook hook = g_check_failure_hook.load(std::memory_order_acquire);
  if (hook == nullptr) {
    return;
  }
  // First failing thread wins; a re-entrant failure inside the hook (or a
  // concurrent failure on another thread) falls straight through to abort.
  if (g_check_failure_hook_ran.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  hook();
}

}  // namespace internal
}  // namespace vcdn::util
