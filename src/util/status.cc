// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/util/status.h"

namespace vcdn::util {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace vcdn::util
