// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Deterministic, platform-independent random number generation.
//
// The workload generator must produce bit-identical traces for a given seed on
// every platform so that experiments are reproducible; the C++ standard
// library's distributions are implementation-defined, so we implement both the
// generators (SplitMix64 for seeding, PCG32 for streams) and the distributions
// (see distributions.h) ourselves.

#ifndef VCDN_SRC_UTIL_RNG_H_
#define VCDN_SRC_UTIL_RNG_H_

#include <cstdint>

namespace vcdn::util {

// SplitMix64: tiny generator used to expand a single 64-bit seed into the
// state of other generators. Reference: Steele, Lea, Flood (2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Seed-splitting: derives the seed of sub-stream `stream_id` from a base
// seed by jumping the SplitMix64 sequence directly to that element (the
// additive constant is SplitMix64's golden-ratio increment, so stream k gets
// the (k+1)-th output of the sequence seeded at `seed`).
//
// Use this whenever one logical experiment fans out into several independent
// generators (one workload per fleet server, one shard per worker, ...):
// the derived seeds are decorrelated, stable for a given (seed, stream_id),
// and -- unlike ad-hoc `seed + i` offsets -- never collide with the seed
// arithmetic of a neighboring experiment. Independent of thread count by
// construction: the mapping is pure.
inline uint64_t SplitSeed(uint64_t seed, uint64_t stream_id) {
  return SplitMix64(seed + stream_id * 0x9E3779B97F4A7C15ULL).Next();
}

// PCG32 (pcg_xsh_rr_64_32): small, fast, statistically strong generator with
// independent streams. Reference: O'Neill (2014).
class Pcg32 {
 public:
  // Distinct (seed, stream) pairs yield independent sequences.
  explicit Pcg32(uint64_t seed, uint64_t stream = 0);

  // Uniform 32-bit value.
  uint32_t Next();

  // Uniform 64-bit value (two draws).
  uint64_t Next64();

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  uint32_t NextBounded(uint32_t bound);

  // Bernoulli draw with probability p (clamped to [0, 1]).
  bool NextBool(double p);

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace vcdn::util

#endif  // VCDN_SRC_UTIL_RNG_H_
