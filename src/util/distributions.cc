// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/util/distributions.h"

#include <cmath>
#include <cstddef>

#include "src/util/check.h"

namespace vcdn::util {

double SampleExponential(Pcg32& rng, double mean) {
  VCDN_CHECK(mean > 0.0);
  // 1 - u in (0, 1] avoids log(0).
  double u = 1.0 - rng.NextDouble();
  return -mean * std::log(u);
}

double SampleStandardNormal(Pcg32& rng) {
  // Box-Muller, cosine branch only so that exactly two uniforms are consumed
  // per call regardless of caller pattern.
  double u1 = 1.0 - rng.NextDouble();
  double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double SampleLogNormal(Pcg32& rng, double mu, double sigma) {
  VCDN_CHECK(sigma >= 0.0);
  return std::exp(mu + sigma * SampleStandardNormal(rng));
}

double SamplePareto(Pcg32& rng, double x_m, double alpha) {
  VCDN_CHECK(x_m > 0.0);
  VCDN_CHECK(alpha > 0.0);
  double u = 1.0 - rng.NextDouble();
  return x_m / std::pow(u, 1.0 / alpha);
}

// --- ZipfDistribution ------------------------------------------------------
//
// Rejection-inversion sampling for the Zipf distribution (W. Hoermann and
// G. Derflinger, "Rejection-inversion to generate variates from monotone
// discrete distributions", 1996). H below is the integral of the density
// 1/x^s, extended continuously; sampling inverts H over [H(1.5), H(n+0.5)]
// and rejects to correct for discretization.

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  VCDN_CHECK(n >= 1);
  VCDN_CHECK(s >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s));
}

double ZipfDistribution::H(double x) const {
  if (s_ == 1.0) {
    return std::log(x);
  }
  return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

double ZipfDistribution::HInverse(double x) const {
  if (s_ == 1.0) {
    return std::exp(x);
  }
  return std::pow((1.0 - s_) * x, 1.0 / (1.0 - s_));
}

uint64_t ZipfDistribution::Sample(Pcg32& rng) const {
  if (n_ == 1) {
    return 1;
  }
  for (;;) {
    double u = h_x1_ + rng.NextDouble() * (h_n_ - h_x1_);
    double x = HInverse(u);
    auto k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    double kd = static_cast<double>(k);
    if (kd - x <= threshold_ || u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return k;
    }
  }
}

// --- AliasTable -------------------------------------------------------------

AliasTable::AliasTable(const std::vector<double>& weights) {
  VCDN_CHECK(!weights.empty());
  size_t n = weights.size();
  probability_.resize(n);
  alias_.resize(n);

  double total = 0.0;
  for (double w : weights) {
    VCDN_CHECK(w >= 0.0);
    total += w;
  }
  VCDN_CHECK(total > 0.0);

  // Scaled probabilities; Vose's stable partition into small/large stacks.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  double scale = static_cast<double>(n) / total;
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * scale;
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  // Numerical leftovers all get probability 1.
  for (uint32_t l : large) {
    probability_[l] = 1.0;
    alias_[l] = l;
  }
  for (uint32_t s : small) {
    probability_[s] = 1.0;
    alias_[s] = s;
  }
}

size_t AliasTable::Sample(Pcg32& rng) const {
  auto column = static_cast<size_t>(rng.NextBounded(static_cast<uint32_t>(probability_.size())));
  return rng.NextDouble() < probability_[column] ? column : alias_[column];
}

}  // namespace vcdn::util
