// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/util/str_util.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "src/util/check.h"

namespace vcdn::util {

std::string HumanBytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int unit = 0;
  auto value = static_cast<double>(bytes);
  while (value >= 1024.0 && unit < 5) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string FormatDouble(double value, int decimals) {
  VCDN_CHECK(decimals >= 0 && decimals <= 17);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatPercent(double fraction, int decimals) {
  return FormatDouble(fraction * 100.0, decimals) + "%";
}

std::vector<std::string_view> SplitString(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.push_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) {
    return false;
  }
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) {
    return false;
  }
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  VCDN_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  VCDN_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto append_row = [&](std::string& out, const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      if (c + 1 < cells.size()) {
        out.append(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  append_row(out, header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    append_row(out, row);
  }
  return out;
}

}  // namespace vcdn::util
