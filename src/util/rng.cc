// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/util/rng.h"

#include "src/util/check.h"

namespace vcdn::util {

namespace {
constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;
}  // namespace

Pcg32::Pcg32(uint64_t seed, uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0;
  (void)Next();
  state_ += seed;
  (void)Next();
}

uint32_t Pcg32::Next() {
  uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  auto xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Pcg32::Next64() {
  uint64_t hi = Next();
  uint64_t lo = Next();
  return (hi << 32) | lo;
}

double Pcg32::NextDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

uint32_t Pcg32::NextBounded(uint32_t bound) {
  VCDN_CHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint32_t threshold = static_cast<uint32_t>(-bound) % bound;
  for (;;) {
    uint32_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

bool Pcg32::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

}  // namespace vcdn::util
