// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Lightweight assertion macros for programmer errors. The library does not use
// exceptions; contract violations terminate with a diagnostic. VCDN_CHECK is
// always on (benchmark-measured overhead is negligible on our hot paths since
// the checks compile to a single predictable branch); VCDN_DCHECK compiles out
// in release builds for the few O(n)-cost validations.

#ifndef VCDN_SRC_UTIL_CHECK_H_
#define VCDN_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace vcdn::util {

// Last-gasp hook invoked (once, re-entrancy-guarded) after a VCDN_CHECK
// failure prints its diagnostic and before the process aborts. This is how
// obs::FlightRecorder dumps its post-mortem ring on a contract violation
// (see docs/OBSERVABILITY.md); the hook must be async-signal-unsafe-tolerant
// only in the sense that the process is already doomed -- it may allocate
// and do file I/O, but must not assume any invariant the failed check
// guarded. Pass nullptr to uninstall. Not thread-safe against concurrent
// installs; install once at setup time.
using CheckFailureHook = void (*)();
void SetCheckFailureHook(CheckFailureHook hook);

namespace internal {

// Defined in check.cc: runs the installed hook (if any) exactly once across
// all threads, so a hook that itself fails a check cannot recurse.
void RunCheckFailureHook();

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "VCDN_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  RunCheckFailureHook();
  std::abort();
}

}  // namespace internal
}  // namespace vcdn::util

#define VCDN_CHECK(expr)                                             \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::vcdn::util::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                \
  } while (false)

#define VCDN_CHECK_MSG(expr, msg)                                   \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::vcdn::util::internal::CheckFailed(__FILE__, __LINE__, msg); \
    }                                                               \
  } while (false)

#ifdef NDEBUG
#define VCDN_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define VCDN_DCHECK(expr) VCDN_CHECK(expr)
#endif

#endif  // VCDN_SRC_UTIL_CHECK_H_
