// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Lightweight assertion macros for programmer errors. The library does not use
// exceptions; contract violations terminate with a diagnostic. VCDN_CHECK is
// always on (benchmark-measured overhead is negligible on our hot paths since
// the checks compile to a single predictable branch); VCDN_DCHECK compiles out
// in release builds for the few O(n)-cost validations.

#ifndef VCDN_SRC_UTIL_CHECK_H_
#define VCDN_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace vcdn::util::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "VCDN_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace vcdn::util::internal

#define VCDN_CHECK(expr)                                             \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::vcdn::util::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                \
  } while (false)

#define VCDN_CHECK_MSG(expr, msg)                                   \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::vcdn::util::internal::CheckFailed(__FILE__, __LINE__, msg); \
    }                                                               \
  } while (false)

#ifdef NDEBUG
#define VCDN_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define VCDN_DCHECK(expr) VCDN_CHECK(expr)
#endif

#endif  // VCDN_SRC_UTIL_CHECK_H_
