// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Opt-in global allocation counters, used by bench_replay_throughput (bytes
// allocated per request) and the container differential test (zero
// steady-state allocation assertion).
//
// The counters only tick in binaries that link vcdn_alloc_hook: that library
// defines the replaceable global operator new/delete to forward to malloc and
// bump thread-local counters. Binaries that do not link it pay nothing and
// AllocCounters() reads back zeros.

#ifndef VCDN_SRC_UTIL_ALLOC_HOOK_H_
#define VCDN_SRC_UTIL_ALLOC_HOOK_H_

#include <cstdint>

namespace vcdn::util {

struct AllocStats {
  uint64_t allocations = 0;  // operator new calls on this thread
  uint64_t bytes = 0;        // bytes requested on this thread
};

// Snapshot of this thread's counters since thread start (all zero when
// vcdn_alloc_hook is not linked).
AllocStats AllocCounters();

// True when the counting operator new/delete are linked into this binary.
bool AllocHookActive();

// Convenience: counters consumed between Start() and Stop().
class AllocScope {
 public:
  AllocScope() : start_(AllocCounters()) {}
  AllocStats Delta() const {
    AllocStats now = AllocCounters();
    return AllocStats{now.allocations - start_.allocations, now.bytes - start_.bytes};
  }

 private:
  AllocStats start_;
};

namespace detail {
// Bumped by the counting operator new in vcdn_alloc_hook; read by
// AllocCounters(). Trivially initialized so the hook can run before any
// dynamic initialization.
extern thread_local uint64_t g_alloc_count;
extern thread_local uint64_t g_alloc_bytes;
extern bool g_alloc_hook_active;
}  // namespace detail

}  // namespace vcdn::util

#endif  // VCDN_SRC_UTIL_ALLOC_HOOK_H_
