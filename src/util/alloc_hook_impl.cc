// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Replaceable global operator new/delete that count allocations into the
// thread-local counters of alloc_hook.h. Compiled into the vcdn_alloc_hook
// OBJECT library so only binaries that opt in (bench_replay_throughput, the
// container differential test) carry the replacement.

#include <cstdlib>
#include <new>

#include "src/util/alloc_hook.h"

namespace {

struct ActivateHook {
  ActivateHook() { vcdn::util::detail::g_alloc_hook_active = true; }
};
ActivateHook g_activate;

void* CountedAlloc(std::size_t size) {
  ++vcdn::util::detail::g_alloc_count;
  vcdn::util::detail::g_alloc_bytes += size;
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  ++vcdn::util::detail::g_alloc_count;
  vcdn::util::detail::g_alloc_bytes += size;
  void* p = nullptr;
  if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*) : alignment,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept { return CountedAlloc(size); }

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}

void* operator new(std::size_t size, std::align_val_t alignment, const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
