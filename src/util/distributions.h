// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Portable random distributions built on Pcg32. All are deterministic for a
// given generator state (the standard library's equivalents are not
// implementation-stable, which would break trace reproducibility).

#ifndef VCDN_SRC_UTIL_DISTRIBUTIONS_H_
#define VCDN_SRC_UTIL_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace vcdn::util {

// Exponential variate with the given mean (mean > 0).
double SampleExponential(Pcg32& rng, double mean);

// Standard normal variate (Box-Muller; one value per call, no caching so the
// draw count is deterministic).
double SampleStandardNormal(Pcg32& rng);

// Log-normal variate parameterized by the underlying normal's mu / sigma.
double SampleLogNormal(Pcg32& rng, double mu, double sigma);

// Pareto variate with scale x_m > 0 and shape alpha > 0: values >= x_m.
double SamplePareto(Pcg32& rng, double x_m, double alpha);

// Zipf distribution over ranks {1, ..., n} with exponent s >= 0:
// P(k) proportional to 1 / k^s. Uses Hoermann's rejection-inversion method,
// O(1) per sample after O(1) setup, exact for all s (s == 1 handled).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);

  // Returns a rank in [1, n].
  uint64_t Sample(Pcg32& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;  // s_ applied to x = 1.5 boundary helper
};

// Walker alias table for O(1) sampling from an arbitrary discrete
// distribution. Weights need not be normalized; they must be non-negative and
// have a positive sum.
class AliasTable {
 public:
  explicit AliasTable(const std::vector<double>& weights);

  // Returns an index in [0, size()).
  size_t Sample(Pcg32& rng) const;

  size_t size() const { return probability_.size(); }

 private:
  std::vector<double> probability_;
  std::vector<uint32_t> alias_;
};

}  // namespace vcdn::util

#endif  // VCDN_SRC_UTIL_DISTRIBUTIONS_H_
