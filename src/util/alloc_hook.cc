// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/util/alloc_hook.h"

namespace vcdn::util {

namespace detail {
thread_local uint64_t g_alloc_count = 0;
thread_local uint64_t g_alloc_bytes = 0;
bool g_alloc_hook_active = false;
}  // namespace detail

AllocStats AllocCounters() {
  return AllocStats{detail::g_alloc_count, detail::g_alloc_bytes};
}

bool AllocHookActive() { return detail::g_alloc_hook_active; }

}  // namespace vcdn::util
