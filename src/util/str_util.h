// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Small string/formatting helpers used by reporters, trace I/O and benches.

#ifndef VCDN_SRC_UTIL_STR_UTIL_H_
#define VCDN_SRC_UTIL_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vcdn::util {

// "1.5 GiB", "312.0 MiB", "17 B". Binary units.
std::string HumanBytes(uint64_t bytes);

// Fixed-point formatting, e.g. FormatDouble(0.73456, 2) == "0.73".
std::string FormatDouble(double value, int decimals);

// "12.7%" for 0.127 (one decimal by default).
std::string FormatPercent(double fraction, int decimals = 1);

// Splits on a single character; keeps empty fields.
std::vector<std::string_view> SplitString(std::string_view input, char sep);

// Strict parsers; return false on any malformed/trailing input.
bool ParseDouble(std::string_view text, double* out);
bool ParseUint64(std::string_view text, uint64_t* out);
bool ParseInt64(std::string_view text, int64_t* out);

// A minimal monospaced table printer for bench/report output.
//
//   TextTable t({"alpha", "xLRU", "Cafe"});
//   t.AddRow({"2.0", "0.62", "0.73"});
//   std::string s = t.ToString();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  std::string ToString() const;
  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vcdn::util

#endif  // VCDN_SRC_UTIL_STR_UTIL_H_
