// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace vcdn::util {

void StatAccumulator::Add(double value) {
  ++count_;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double StatAccumulator::variance() const {
  if (count_ == 0) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

void BucketedSeries::Add(double t, double value) {
  VCDN_CHECK(t >= origin_);
  auto idx = static_cast<size_t>((t - origin_) / bucket_width_);
  if (idx >= sums_.size()) {
    sums_.resize(idx + 1, 0.0);
  }
  sums_[idx] += value;
}

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), counts_(num_buckets, 0) {
  VCDN_CHECK(hi > lo);
  VCDN_CHECK(num_buckets > 0);
}

void Histogram::Add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<size_t>((value - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::Quantile(double q) const {
  VCDN_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) {
    return lo_;
  }
  double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) {
    // The quantile falls in the underflow mass (or q == 0): clamp to the
    // histogram's lower bound rather than interpolating into a bucket.
    return lo_;
  }
  double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;  // empty buckets carry no mass and must not interpolate
    }
    double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      double frac = (target - cumulative) / static_cast<double>(counts_[i]);
      frac = std::min(std::max(frac, 0.0), 1.0);
      return bucket_lo(i) + frac * width;
    }
    cumulative = next;
  }
  // Remaining mass is overflow (values >= hi_): clamp symmetrically to hi_.
  return hi_;
}

}  // namespace vcdn::util
