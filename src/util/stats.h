// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Streaming statistics helpers used by the simulator and the benches:
// accumulators, EWMA, bucketed time series, and a fixed-bucket histogram.

#ifndef VCDN_SRC_UTIL_STATS_H_
#define VCDN_SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/util/check.h"

namespace vcdn::util {

// Streaming mean / min / max / variance (Welford).
class StatAccumulator {
 public:
  void Add(double value);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Population variance / stddev.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exponentially weighted moving average. The first observation initializes
// the average directly (no bias toward zero).
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {
    VCDN_CHECK(alpha > 0.0 && alpha <= 1.0);
  }

  void Add(double value) {
    if (!initialized_) {
      value_ = value;
      initialized_ = true;
    } else {
      value_ = alpha_ * value + (1.0 - alpha_) * value_;
    }
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Accumulates (time, value-sums) into fixed-width time buckets, e.g. hourly
// ingress bytes over a month. Bucket index = floor((t - origin) / width).
class BucketedSeries {
 public:
  BucketedSeries(double origin, double bucket_width)
      : origin_(origin), bucket_width_(bucket_width) {
    VCDN_CHECK(bucket_width > 0.0);
  }

  void Add(double t, double value);

  size_t num_buckets() const { return sums_.size(); }
  double bucket_start(size_t i) const { return origin_ + static_cast<double>(i) * bucket_width_; }
  double bucket_width() const { return bucket_width_; }
  // Sum of values in bucket i (0 for buckets never touched).
  double sum(size_t i) const { return i < sums_.size() ? sums_[i] : 0.0; }
  const std::vector<double>& sums() const { return sums_; }

 private:
  double origin_;
  double bucket_width_;
  std::vector<double> sums_;
};

// Histogram over [lo, hi) with uniform buckets plus underflow/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double value);

  size_t total_count() const { return total_; }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  size_t num_buckets() const { return counts_.size(); }
  double bucket_lo(size_t i) const {
    return lo_ + static_cast<double>(i) * (hi_ - lo_) / static_cast<double>(counts_.size());
  }
  // Linear-interpolated quantile in [0, 1] over the bucketed range.
  double Quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  size_t total_ = 0;
};

}  // namespace vcdn::util

#endif  // VCDN_SRC_UTIL_STATS_H_
