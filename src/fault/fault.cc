// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/fault/fault.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "src/obs/json_util.h"
#include "src/util/rng.h"

namespace vcdn::fault {

namespace {

bool IsOutage(const FaultEvent& event) {
  return event.kind == FaultKind::kEdgeOutage || event.kind == FaultKind::kParentOutage;
}

bool OutageMatchesTarget(const FaultEvent& event, size_t target) {
  if (target == kParentTarget) {
    return event.kind == FaultKind::kParentOutage;
  }
  return event.kind == FaultKind::kEdgeOutage && event.target == target;
}

bool StatefulMatchesTarget(const FaultEvent& event, size_t target) {
  return (event.kind == FaultKind::kDiskDegrade || event.kind == FaultKind::kColdRestart) &&
         event.target == target;
}

bool ActiveAt(const FaultEvent& event, double t) {
  return t >= event.start && t < event.end;
}

}  // namespace

void FaultStats::Add(const FaultStats& other) {
  unavailable_requests += other.unavailable_requests;
  unavailable_bytes += other.unavailable_bytes;
  cold_restarts += other.cold_restarts;
  dropped_chunks += other.dropped_chunks;
  resize_events += other.resize_events;
  resize_evicted_chunks += other.resize_evicted_chunks;
}

util::Status FaultSchedule::Validate() const {
  for (size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    const std::string where = "fault event " + std::to_string(i) + ": ";
    if (!std::isfinite(e.start) || !std::isfinite(e.end) || e.start < 0.0) {
      return util::InvalidArgumentError(where + "non-finite or negative window");
    }
    if (e.kind != FaultKind::kColdRestart && e.end < e.start) {
      return util::InvalidArgumentError(where + "end < start");
    }
    if (e.kind == FaultKind::kDiskDegrade &&
        (!(e.capacity_factor > 0.0) || e.capacity_factor > 1.0)) {
      return util::InvalidArgumentError(where + "capacity_factor must be in (0, 1]");
    }
    if (e.kind == FaultKind::kOriginInflation && !(e.cost_factor >= 1.0)) {
      return util::InvalidArgumentError(where + "cost_factor must be >= 1");
    }
  }
  return util::OkStatus();
}

bool FaultSchedule::EdgeDown(size_t edge, double t) const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kEdgeOutage && e.target == edge && ActiveAt(e, t)) {
      return true;
    }
  }
  return false;
}

bool FaultSchedule::ParentDown(double t) const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kParentOutage && ActiveAt(e, t)) {
      return true;
    }
  }
  return false;
}

double FaultSchedule::CapacityFactor(size_t target, double t) const {
  double factor = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kDiskDegrade && e.target == target && ActiveAt(e, t)) {
      factor *= e.capacity_factor;
    }
  }
  return factor;
}

double FaultSchedule::OriginCostFactor(double t) const {
  double factor = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kOriginInflation && ActiveAt(e, t)) {
      factor *= e.cost_factor;
    }
  }
  return factor;
}

FaultSchedule MakeRandomFaultSchedule(uint64_t seed, const RandomFaultOptions& options) {
  VCDN_CHECK(options.duration > 0.0);
  FaultSchedule schedule;
  auto windows = [&](util::Pcg32& rng, size_t count, double total_fraction, auto emit) {
    if (count == 0 || total_fraction <= 0.0) {
      return;
    }
    double each = options.duration * total_fraction / static_cast<double>(count);
    for (size_t k = 0; k < count; ++k) {
      double start = rng.NextDouble() * std::max(0.0, options.duration - each);
      emit(start, start + each);
    }
  };
  for (size_t edge = 0; edge < options.num_edges; ++edge) {
    util::Pcg32 rng(util::SplitSeed(seed, edge), /*stream=*/0xFAu);
    windows(rng, options.outages_per_edge, options.outage_fraction, [&](double s, double e) {
      schedule.Add({FaultKind::kEdgeOutage, s, e, edge, 1.0, 1.0});
    });
    windows(rng, options.degrades_per_edge,
            options.degrade_fraction * static_cast<double>(options.degrades_per_edge),
            [&](double s, double e) {
              schedule.Add(
                  {FaultKind::kDiskDegrade, s, e, edge, options.degrade_capacity_factor, 1.0});
            });
    for (size_t k = 0; k < options.restarts_per_edge; ++k) {
      double at = rng.NextDouble() * options.duration;
      schedule.Add({FaultKind::kColdRestart, at, at, edge, 1.0, 1.0});
    }
  }
  {
    util::Pcg32 rng(util::SplitSeed(seed, kParentTarget), /*stream=*/0xFAu);
    windows(rng, options.parent_outages, options.parent_outage_fraction, [&](double s, double e) {
      schedule.Add({FaultKind::kParentOutage, s, e, kParentTarget, 1.0, 1.0});
    });
  }
  VCDN_CHECK(schedule.Validate().ok());
  return schedule;
}

std::string FaultScheduleToJson(const FaultSchedule& schedule) {
  static constexpr const char* kKindNames[] = {"edge_outage", "parent_outage", "disk_degrade",
                                               "cold_restart", "origin_inflation"};
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const FaultEvent& e : schedule.events()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"kind\":\"" << kKindNames[static_cast<size_t>(e.kind)] << "\",\"start\":";
    obs::WriteJsonDouble(out, e.start);
    out << ",\"end\":";
    obs::WriteJsonDouble(out, e.end);
    out << ",\"target\":";
    if (e.target == kParentTarget) {
      out << "\"parent\"";
    } else {
      out << e.target;
    }
    out << ",\"capacity_factor\":";
    obs::WriteJsonDouble(out, e.capacity_factor);
    out << ",\"cost_factor\":";
    obs::WriteJsonDouble(out, e.cost_factor);
    out << "}";
  }
  out << "]";
  return out.str();
}

FaultDriver::FaultDriver(const FaultSchedule& schedule, size_t target,
                         core::CacheAlgorithm* cache, obs::MetricsRegistry* metrics,
                         obs::TraceEventSink* sink)
    : events_(schedule.events()),
      cache_(cache),
      base_capacity_(cache->config().disk_capacity_chunks),
      sink_(sink) {
  for (size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (IsOutage(e) && OutageMatchesTarget(e, target) && e.end > e.start) {
      outages_.emplace_back(e.start, e.end);
    }
    if (!StatefulMatchesTarget(e, target)) {
      continue;
    }
    if (e.kind == FaultKind::kColdRestart) {
      boundaries_.push_back({e.start, i, Boundary::Op::kRestart});
    } else {
      boundaries_.push_back({e.start, i, Boundary::Op::kDegradeStart});
      boundaries_.push_back({e.end, i, Boundary::Op::kDegradeEnd});
    }
  }
  std::sort(boundaries_.begin(), boundaries_.end(), [](const Boundary& a, const Boundary& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    if (a.event_index != b.event_index) {
      return a.event_index < b.event_index;
    }
    // A zero-length degrade window restores immediately after it applies.
    return a.op < b.op;
  });
  std::sort(outages_.begin(), outages_.end());
  // Merge overlapping/adjacent outage windows so the cursor is monotone.
  size_t merged = 0;
  for (const auto& window : outages_) {
    if (merged > 0 && window.first <= outages_[merged - 1].second) {
      outages_[merged - 1].second = std::max(outages_[merged - 1].second, window.second);
    } else {
      outages_[merged++] = window;
    }
  }
  outages_.resize(merged);

  if (metrics != nullptr) {
    unavailable_requests_total_ = metrics->GetCounter("fault.unavailable_requests_total");
    unavailable_bytes_total_ = metrics->GetCounter("fault.unavailable_bytes_total");
    cold_restarts_total_ = metrics->GetCounter("fault.cold_restarts_total");
    dropped_chunks_total_ = metrics->GetCounter("fault.dropped_chunks_total");
    resize_events_total_ = metrics->GetCounter("fault.resize_events_total");
    resize_evicted_chunks_total_ = metrics->GetCounter("fault.resize_evicted_chunks_total");
    capacity_gauge_ = metrics->GetGauge("fault.capacity_chunks");
    capacity_gauge_.Set(static_cast<double>(base_capacity_));
  }
}

void FaultDriver::ApplyCapacity() {
  // Recompute the factor as a product over active events in index order:
  // exact and order-independent, so a restore lands back on the base
  // capacity bit-for-bit (incremental multiply/divide would drift).
  double factor = 1.0;
  for (size_t index : active_degrades_) {
    factor *= events_[index].capacity_factor;
  }
  auto new_capacity = static_cast<uint64_t>(
      std::max<int64_t>(1, std::llround(static_cast<double>(base_capacity_) * factor)));
  if (new_capacity == cache_->config().disk_capacity_chunks) {
    return;
  }
  uint64_t evicted = cache_->Resize(new_capacity);
  ++stats_.resize_events;
  stats_.resize_evicted_chunks += evicted;
  resize_events_total_.Increment();
  resize_evicted_chunks_total_.Increment(evicted);
  capacity_gauge_.Set(static_cast<double>(new_capacity));
  if (sink_ != nullptr) {
    sink_->AddInstant("fault.resize", "fault");
  }
}

void FaultDriver::Advance(double now) {
  while (next_boundary_ < boundaries_.size() && boundaries_[next_boundary_].time <= now) {
    const Boundary& boundary = boundaries_[next_boundary_++];
    switch (boundary.op) {
      case Boundary::Op::kDegradeStart: {
        auto it = std::lower_bound(active_degrades_.begin(), active_degrades_.end(),
                                   boundary.event_index);
        active_degrades_.insert(it, boundary.event_index);
        ApplyCapacity();
        break;
      }
      case Boundary::Op::kDegradeEnd: {
        auto it = std::lower_bound(active_degrades_.begin(), active_degrades_.end(),
                                   boundary.event_index);
        VCDN_DCHECK(it != active_degrades_.end() && *it == boundary.event_index);
        active_degrades_.erase(it);
        ApplyCapacity();
        break;
      }
      case Boundary::Op::kRestart: {
        uint64_t dropped = cache_->DropContents();
        ++stats_.cold_restarts;
        stats_.dropped_chunks += dropped;
        cold_restarts_total_.Increment();
        dropped_chunks_total_.Increment(dropped);
        if (sink_ != nullptr) {
          sink_->AddInstant("fault.cold_restart", "fault");
        }
        break;
      }
    }
  }
}

bool FaultDriver::InOutage(double now) {
  while (outage_cursor_ < outages_.size() && outages_[outage_cursor_].second <= now) {
    ++outage_cursor_;
  }
  return outage_cursor_ < outages_.size() && now >= outages_[outage_cursor_].first;
}

void FaultDriver::RecordUnavailable(const core::RequestOutcome& outcome) {
  ++stats_.unavailable_requests;
  stats_.unavailable_bytes += outcome.requested_bytes;
  unavailable_requests_total_.Increment();
  unavailable_bytes_total_.Increment(outcome.requested_bytes);
}

}  // namespace vcdn::fault
