// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Deterministic fault injection for the replay and hierarchy layers.
//
// The paper frames CDN caches as "strong lines of defense" in front of the
// origin (Sec. 2); this module exercises the defense lines under failure,
// the degraded regimes the related adaptive-replication literature evaluates
// (server loss, capacity shrink, demand surges). A FaultSchedule is a set of
// time-windowed events -- edge outage, parent outage, disk-capacity
// degradation, cold restart, origin cost inflation -- driven purely by the
// replay clock, so a given (schedule, trace) pair produces bit-identical
// results on any thread count: the schedule is immutable and shared, and all
// mutable state lives in a per-replay FaultDriver.
//
// Failover semantics (see docs/FAULTS.md):
//   * edge outage   -- the edge serves nothing; its requests are origin-
//                      served directly (Decision::kUnavailable) with a
//                      configurable cost penalty in sim::RunHierarchy;
//   * parent outage -- edge redirects fall through to the origin instead of
//                      entering the parent cache;
//   * disk degrade  -- the target cache shrinks to capacity_factor of its
//                      base capacity via CacheAlgorithm::Resize (and grows
//                      back when the window closes);
//   * cold restart  -- the target cache drops its disk contents at `start`
//                      (capacity and popularity tracking survive);
//   * origin inflation -- origin-served bytes cost cost_factor times more
//                      during the window (demand surge / expensive uplink).

#ifndef VCDN_SRC_FAULT_FAULT_H_
#define VCDN_SRC_FAULT_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/core/cache_algorithm.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"
#include "src/util/status.h"

namespace vcdn::fault {

// Target index addressing the parent tier instead of an edge/shard.
inline constexpr size_t kParentTarget = static_cast<size_t>(-1);

enum class FaultKind {
  kEdgeOutage,       // target edge is down over [start, end)
  kParentOutage,     // the (single) parent tier is down over [start, end)
  kDiskDegrade,      // target's disk shrinks to capacity_factor of base size
  kColdRestart,      // target drops its cache contents at `start`
  kOriginInflation,  // origin bytes cost cost_factor x over [start, end)
};

struct FaultEvent {
  FaultKind kind = FaultKind::kEdgeOutage;
  // Active over the half-open window [start, end). kColdRestart is an
  // instant: it fires at `start` and `end` is ignored (set it == start).
  double start = 0.0;
  double end = 0.0;
  // Edge/shard index, or kParentTarget for the parent tier. Ignored by
  // kParentOutage (always the parent) and kOriginInflation (always global).
  size_t target = 0;
  double capacity_factor = 1.0;  // kDiskDegrade: in (0, 1]
  double cost_factor = 1.0;      // kOriginInflation: >= 1
};

// Degraded-mode accounting of one FaultDriver (summed across drivers by the
// hierarchy). All counters are whole-run, not steady-state-windowed.
struct FaultStats {
  uint64_t unavailable_requests = 0;  // requests hit by an outage window
  uint64_t unavailable_bytes = 0;
  uint64_t cold_restarts = 0;
  uint64_t dropped_chunks = 0;  // evicted by cold restarts
  uint64_t resize_events = 0;   // capacity changes applied (degrade + restore)
  uint64_t resize_evicted_chunks = 0;

  void Add(const FaultStats& other);
};

// An immutable, validated collection of fault events. Cheap point queries
// back the hierarchy's failover policy; replay-time application goes through
// FaultDriver, which precomputes sorted boundaries once.
class FaultSchedule {
 public:
  void Add(const FaultEvent& event) { events_.push_back(event); }

  // Checks every event for a sane window and factors. Call once after
  // building the schedule; drivers assume a valid schedule.
  util::Status Validate() const;

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // Point queries (O(events) -- fine for policy decisions and tests).
  bool EdgeDown(size_t edge, double t) const;
  bool ParentDown(double t) const;
  // Product of the capacity factors of active kDiskDegrade events for
  // `target` at time t (1.0 when none).
  double CapacityFactor(size_t target, double t) const;
  // Product of the cost factors of active kOriginInflation events at t.
  double OriginCostFactor(double t) const;

 private:
  std::vector<FaultEvent> events_;
};

// Seeded random schedule builder for benches and determinism tests: per-edge
// outages, cold restarts and disk-degrade windows plus parent outages, all
// drawn from SplitSeed-derived PCG32 streams so the schedule for a given
// (seed, options) pair is identical everywhere.
struct RandomFaultOptions {
  double duration = 0.0;  // schedule horizon; must be > 0
  size_t num_edges = 1;
  size_t outages_per_edge = 1;
  double outage_fraction = 0.05;  // total outage time per edge, of duration
  size_t restarts_per_edge = 0;
  size_t degrades_per_edge = 0;
  double degrade_fraction = 0.1;  // length of each degrade window, of duration
  double degrade_capacity_factor = 0.5;
  size_t parent_outages = 0;
  double parent_outage_fraction = 0.02;  // total parent downtime, of duration
};

FaultSchedule MakeRandomFaultSchedule(uint64_t seed, const RandomFaultOptions& options);

// Renders the schedule as a JSON array of event objects (deterministic:
// events in insertion order, fixed field order). This is the pre-rendered
// form obs::PostMortemContext embeds in flight-recorder dumps -- obs sits
// below fault, so it takes the schedule as a string rather than a type.
std::string FaultScheduleToJson(const FaultSchedule& schedule);

// Applies one schedule to one replay target: resizes / drops the cache at
// event boundaries and answers outage membership for the replay clock.
// Requests must arrive in non-decreasing time order (the replay contract).
// Owns no shared state, so concurrent replays may each hold a driver over
// the same schedule.
class FaultDriver {
 public:
  // `cache` must outlive the driver; metrics/sink are optional ("fault.*"
  // instruments and "fault" trace instants, no-ops when null).
  FaultDriver(const FaultSchedule& schedule, size_t target, core::CacheAlgorithm* cache,
              obs::MetricsRegistry* metrics = nullptr, obs::TraceEventSink* sink = nullptr);

  // Applies every degrade/restore/restart boundary at or before `now`.
  void Advance(double now);

  // Time of the earliest schedule boundary not yet applied, or +infinity
  // when none remain. Lets a batching replay keep accumulating requests
  // while an Advance would be a no-op, and drain the batch exactly when a
  // boundary is about to mutate the cache.
  double NextBoundaryTime() const {
    return next_boundary_ < boundaries_.size() ? boundaries_[next_boundary_].time
                                               : std::numeric_limits<double>::infinity();
  }

  // True if `now` falls inside an outage window of this driver's target
  // (edge outages for edge targets, parent outages for kParentTarget).
  bool InOutage(double now);

  // True while at least one disk-degrade window is active on this target --
  // the "degraded but serving" state the flight recorder stamps into its
  // per-request fault byte (see docs/OBSERVABILITY.md).
  bool Degraded() const { return !active_degrades_.empty(); }

  // Accounts one request that an outage made unavailable. The caller
  // synthesizes the Decision::kUnavailable outcome; the driver only counts.
  void RecordUnavailable(const core::RequestOutcome& outcome);

  const FaultStats& stats() const { return stats_; }

 private:
  struct Boundary {
    double time = 0.0;
    size_t event_index = 0;  // into schedule events; tie-break for determinism
    enum class Op { kDegradeStart, kDegradeEnd, kRestart } op = Op::kRestart;
  };

  void ApplyCapacity();

  const std::vector<FaultEvent>& events_;
  core::CacheAlgorithm* cache_;
  const uint64_t base_capacity_;

  std::vector<Boundary> boundaries_;  // sorted by (time, event_index)
  size_t next_boundary_ = 0;
  // Indices of active kDiskDegrade events, kept sorted so the factor product
  // is recomputed in a fixed order (exact restores, order-independent).
  std::vector<size_t> active_degrades_;

  // Merged outage windows for this target, sorted; cursor for InOutage.
  std::vector<std::pair<double, double>> outages_;
  size_t outage_cursor_ = 0;

  FaultStats stats_;

  // Observability (no-ops when detached).
  obs::TraceEventSink* sink_;
  obs::Counter unavailable_requests_total_;
  obs::Counter unavailable_bytes_total_;
  obs::Counter cold_restarts_total_;
  obs::Counter dropped_chunks_total_;
  obs::Counter resize_events_total_;
  obs::Counter resize_evicted_chunks_total_;
  obs::Gauge capacity_gauge_;
};

}  // namespace vcdn::fault

#endif  // VCDN_SRC_FAULT_FAULT_H_
