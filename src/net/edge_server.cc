// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/net/edge_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/util/alloc_hook.h"
#include "src/util/check.h"

namespace vcdn::net {

namespace {

// Per-connection read chunk; also the initial inbound buffer capacity. A
// request frame is 52 bytes, so one read drains hundreds of pipelined
// requests.
constexpr size_t kReadChunkBytes = 16 * 1024;
// Initial outbound capacity: responses are 44 bytes, so this comfortably
// holds a deep pipeline without regrowing.
constexpr size_t kInitialOutBytes = 32 * 1024;
// Reads per EPOLLIN event before yielding back to the loop (level-triggered
// epoll re-arms, so a firehose connection cannot starve the others).
constexpr int kMaxReadsPerEvent = 8;
// Up-front capacity of the per-shard scratch vectors (inbox, working set,
// batch storage). A drain batch is bounded by the clients' aggregate
// pipeline depth, so reserving here makes the drain path allocation-free
// from the first request for any sane client config -- the soak test pins
// that (net.server.serve_allocs_total stays zero). Bigger fleets just grow
// once past this floor.
constexpr size_t kShardScratchReserve = 4096;

}  // namespace

EdgeServer::Connection::Connection(Socket s)
    : sock(std::move(s)), in(kReadChunkBytes), out(kInitialOutBytes) {}

EdgeServer::EdgeServer(exec::ThreadPool& pool, EdgeServerOptions options)
    : pool_(pool), options_(std::move(options)) {
  VCDN_CHECK(options_.num_shards > 0);
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->cache = core::MakeCache(options_.cache_kind, options_.cache_config);
    shard->strand = std::make_unique<exec::Strand>(pool_);
    if (options_.flight_recorder_capacity > 0) {
      shard->flight = std::make_unique<obs::FlightRecorder>(options_.flight_recorder_capacity);
    }
    if (options_.metrics != nullptr) {
      shard->cache->AttachMetrics(*options_.metrics);
    }
    shard->digest_value.store(shard->digest.value(), std::memory_order_relaxed);
    shard->inbox.reserve(kShardScratchReserve);
    shard->working.reserve(kShardScratchReserve);
    shard->requests.reserve(kShardScratchReserve);
    shard->outcomes.reserve(kShardScratchReserve);
    shard->touched.reserve(256);
    shards_.push_back(std::move(shard));
  }
  staged_.resize(options_.num_shards);
  for (auto& staged : staged_) {
    staged.reserve(kShardScratchReserve);
  }
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    accepted_total_ = reg.GetCounter("net.server.accepted_total");
    closed_total_ = reg.GetCounter("net.server.closed_total");
    requests_total_ = reg.GetCounter("net.server.requests_total");
    responses_total_ = reg.GetCounter("net.server.responses_total");
    bytes_in_total_ = reg.GetCounter("net.server.bytes_in_total");
    bytes_out_total_ = reg.GetCounter("net.server.bytes_out_total");
    protocol_errors_total_ = reg.GetCounter("net.server.protocol_errors_total");
    idle_closed_total_ = reg.GetCounter("net.server.idle_closed_total");
    serve_allocs_total_ = reg.GetCounter("net.server.serve_allocs_total");
    active_connections_ = reg.GetGauge("net.server.active_connections");
  }
}

EdgeServer::~EdgeServer() { Stop(); }

util::Status EdgeServer::Start() {
  VCDN_CHECK(!running_.load(std::memory_order_acquire));
  VCDN_RETURN_IF_ERROR(listener_.Listen(options_.address, options_.port));
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return util::InternalError(std::string("epoll_create1: ") + std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return util::InternalError(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) < 0) {
    return util::InternalError(std::string("epoll_ctl(listener): ") + std::strerror(errno));
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return util::InternalError(std::string("epoll_ctl(wake): ") + std::strerror(errno));
  }
  start_time_ = std::chrono::steady_clock::now();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { LoopMain(); });
  ArmIdleSweep();
  return util::OkStatus();
}

void EdgeServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    if (idle_sweep_.valid()) {
      idle_sweep_.Cancel();
    }
  }
  // Drain: the loop no longer produces, so destroying each strand blocks
  // until the last scheduled drain has handled its inbox and queued the
  // responses.
  for (auto& shard : shards_) {
    shard->strand.reset();
  }
  // Best-effort flush of queued responses, bounded: clients that already
  // read everything (the normal case) make this a no-op.
  const auto flush_deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(250);
  for (;;) {
    bool pending = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [fd, conn] : conns_) {
        FlushConnection(*conn);
        std::lock_guard<std::mutex> out_lock(conn->out_mu);
        if (!conn->closed && !conn->kill.load(std::memory_order_relaxed) &&
            conn->out.ReadableBytes() > 0) {
          pending = true;
        }
      }
    }
    if (!pending || std::chrono::steady_clock::now() >= flush_deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [fd, conn] : conns_) {
      std::lock_guard<std::mutex> out_lock(conn->out_mu);
      conn->closed = true;
      conn->sock.Close();
      closed_total_.Increment();
    }
    conns_.clear();
    active_connections_.Set(0.0);
  }
  listener_.Close();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

EdgeServer::DigestSnapshot EdgeServer::ShardDigest(size_t shard) const {
  VCDN_CHECK(shard < shards_.size());
  DigestSnapshot snapshot;
  snapshot.count = shards_[shard]->digest_count.load(std::memory_order_acquire);
  snapshot.value = shards_[shard]->digest_value.load(std::memory_order_acquire);
  return snapshot;
}

const obs::FlightRecorder* EdgeServer::ShardFlightRecorder(size_t shard) const {
  VCDN_CHECK(shard < shards_.size());
  return shards_[shard]->flight.get();
}

void EdgeServer::WakeLoop() {
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void EdgeServer::LoopMain() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // epoll fd gone: shutting down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listener_.fd()) {
        HandleAccept();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drain = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto it = conns_.find(fd);
        if (it != conns_.end()) {
          conn = it->second;
        }
      }
      if (conn == nullptr) {
        continue;  // already closed this iteration
      }
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        conn->kill.store(true, std::memory_order_release);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        HandleReadable(conn);
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        FlushConnection(*conn);
      }
    }
    FlushStagedRequests();
    SweepKilled();
  }
}

void EdgeServer::HandleAccept() {
  for (;;) {
    util::Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      return;  // hard accept error: transient under fd pressure; retry later
    }
    if (!accepted.value().valid()) {
      return;  // would-block: queue drained
    }
    Socket sock = std::move(accepted).value();
    if (!sock.SetNonBlocking(true).ok() || !sock.SetNoDelay(true).ok()) {
      continue;
    }
    const int fd = sock.fd();
    auto conn = std::make_shared<Connection>(std::move(sock));
    conn->id = next_conn_id_++;
    conn->last_activity_ns.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;  // Socket closes on scope exit
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.emplace(fd, std::move(conn));
      active_connections_.Set(static_cast<double>(conns_.size()));
    }
    accepted_total_.Increment();
  }
}

void EdgeServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  bool peer_closed = false;
  for (int round = 0; round < kMaxReadsPerEvent; ++round) {
    conn->in.EnsureWritable(kReadChunkBytes);
    const ssize_t n = conn->sock.ReadSome(conn->in.WritePtr(), conn->in.WritableBytes());
    if (n > 0) {
      conn->in.CommitWrite(static_cast<size_t>(n));
      bytes_in_total_.Increment(static_cast<uint64_t>(n));
      continue;
    }
    if (n == 0) {
      break;  // would-block: drained
    }
    // Peer closed (-1) or hard error (-2): parse what arrived, then close.
    peer_closed = true;
    break;
  }
  conn->last_activity_ns.store(std::chrono::steady_clock::now().time_since_epoch().count(),
                               std::memory_order_relaxed);
  if (!ParseFrames(conn)) {
    protocol_errors_total_.Increment();
    conn->kill.store(true, std::memory_order_release);
    return;
  }
  if (peer_closed) {
    conn->kill.store(true, std::memory_order_release);
  }
}

bool EdgeServer::ParseFrames(const std::shared_ptr<Connection>& conn) {
  DecodedFrame frame;
  for (;;) {
    util::Result<size_t> decoded = DecodeFrame(conn->in, &frame);
    if (!decoded.ok()) {
      return false;  // corrupt stream; Status text is in decoded.status()
    }
    if (decoded.value() == 0) {
      return true;  // incomplete frame: wait for more bytes
    }
    if (frame.type != FrameType::kRequest) {
      return false;  // clients must not send response frames
    }
    RequestFrame request = frame.request;
    if (!options_.use_client_time) {
      request.arrival_time = StampArrival();
    }
    const size_t shard_index =
        options_.num_shards == 1
            ? 0
            : static_cast<size_t>(request.video % options_.num_shards);
    staged_[shard_index].push_back(PendingRequest{conn, request});
    requests_total_.Increment();
  }
}

void EdgeServer::FlushStagedRequests() {
  for (size_t i = 0; i < staged_.size(); ++i) {
    std::vector<PendingRequest>& staged = staged_[i];
    if (staged.empty()) {
      continue;
    }
    Shard& shard = *shards_[i];
    bool schedule = false;
    {
      std::lock_guard<std::mutex> lock(shard.inbox_mu);
      shard.inbox.insert(shard.inbox.end(), std::make_move_iterator(staged.begin()),
                         std::make_move_iterator(staged.end()));
      if (!shard.drain_scheduled) {
        shard.drain_scheduled = true;
        schedule = true;
      }
    }
    staged.clear();
    if (schedule) {
      // [this, i] is 16 trivially-copyable bytes: fits std::function's
      // small-object buffer, so scheduling a drain does not allocate.
      shard.strand->Post([this, i] { DrainShard(i); });
    }
  }
}

void EdgeServer::DrainShard(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  util::AllocScope alloc_scope;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(shard.inbox_mu);
      if (shard.inbox.empty()) {
        shard.drain_scheduled = false;
        break;
      }
      shard.inbox.swap(shard.working);
    }
    const size_t count = shard.working.size();
    shard.requests.clear();
    if (shard.requests.capacity() < count) {
      shard.requests.reserve(count);
    }
    for (const PendingRequest& pending : shard.working) {
      trace::Request request;
      // Monotone clamp: HandleRequest requires non-decreasing times, and
      // with several connections (or a client replaying an unsorted trace)
      // wire order is the order that counts.
      request.arrival_time = std::max(pending.frame.arrival_time, shard.last_time);
      shard.last_time = request.arrival_time;
      request.video = pending.frame.video;
      request.byte_begin = pending.frame.byte_begin;
      request.byte_end = pending.frame.byte_end;
      shard.requests.push_back(request);
    }
    if (shard.outcomes.size() < count) {
      shard.outcomes.resize(count);
    }
    shard.cache->HandleRequestBatch(shard.requests.data(), count, shard.outcomes.data());

    shard.touched.clear();
    for (size_t j = 0; j < count; ++j) {
      const core::RequestOutcome& outcome = shard.outcomes[j];
      shard.digest.Fold(outcome);
      if (shard.flight != nullptr) {
        obs::DecisionRecord record;
        record.time = shard.requests[j].arrival_time;
        record.key = shard.requests[j].video;
        record.requested_bytes = static_cast<uint32_t>(
            std::min<uint64_t>(outcome.requested_bytes, UINT32_MAX));
        record.filled_chunks = static_cast<uint16_t>(std::min<uint32_t>(
            outcome.filled_chunks, UINT16_MAX));
        record.evicted_chunks = static_cast<uint16_t>(std::min<uint32_t>(
            outcome.evicted_chunks, UINT16_MAX));
        record.hit_chunks = static_cast<uint16_t>(std::min<uint32_t>(
            outcome.hit_chunks, UINT16_MAX));
        record.decision = static_cast<uint8_t>(outcome.decision);
        shard.flight->Record(record);
      }
      ResponseFrame response;
      response.request_id = shard.working[j].frame.request_id;
      response.requested_bytes = outcome.requested_bytes;
      response.decision = static_cast<uint8_t>(outcome.decision);
      response.tier = static_cast<uint8_t>(sim::ServedTierOf(outcome));
      response.hit_chunks = outcome.hit_chunks;
      response.filled_chunks = outcome.filled_chunks;
      response.evicted_chunks = outcome.evicted_chunks;
      Connection* conn = shard.working[j].conn.get();
      {
        std::lock_guard<std::mutex> out_lock(conn->out_mu);
        if (!conn->closed) {
          AppendResponse(conn->out, response);
        }
      }
      if (std::find(shard.touched.begin(), shard.touched.end(), conn) == shard.touched.end()) {
        shard.touched.push_back(conn);
      }
    }
    responses_total_.Increment(count);
    // One flush per distinct connection per batch: with pipelining this is
    // the difference between one syscall per response and one per batch.
    for (Connection* conn : shard.touched) {
      FlushConnection(*conn);
    }
    shard.working.clear();
    shard.digest_value.store(shard.digest.value(), std::memory_order_release);
    shard.digest_count.store(shard.digest.count(), std::memory_order_release);
  }
  serve_allocs_total_.Increment(alloc_scope.Delta().allocations);
}

void EdgeServer::FlushConnection(Connection& conn) {
  std::lock_guard<std::mutex> lock(conn.out_mu);
  if (conn.closed) {
    return;
  }
  while (conn.out.ReadableBytes() > 0) {
    const ssize_t n = conn.sock.WriteSome(conn.out.ReadPtr(), conn.out.ReadableBytes());
    if (n > 0) {
      conn.out.ConsumeRead(static_cast<size_t>(n));
      bytes_out_total_.Increment(static_cast<uint64_t>(n));
      continue;
    }
    if (n == 0) {
      // Kernel buffer full: park the residue and let EPOLLOUT finish it.
      if (!conn.want_write) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = conn.sock.fd();
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock.fd(), &ev) == 0) {
          conn.want_write = true;
        }
      }
      return;
    }
    conn.kill.store(true, std::memory_order_release);
    WakeLoop();
    return;
  }
  if (conn.want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn.sock.fd();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock.fd(), &ev) == 0) {
      conn.want_write = false;
    }
  }
}

void EdgeServer::CloseConnection(int fd) {
  std::shared_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(fd);
    if (it == conns_.end()) {
      return;
    }
    conn = std::move(it->second);
    conns_.erase(it);
    active_connections_.Set(static_cast<double>(conns_.size()));
  }
  {
    std::lock_guard<std::mutex> out_lock(conn->out_mu);
    conn->closed = true;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    conn->sock.Close();
  }
  closed_total_.Increment();
}

void EdgeServer::SweepKilled() {
  // Small working copy: closing mutates conns_, so collect first.
  std::vector<int> doomed;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [fd, conn] : conns_) {
      if (conn->kill.load(std::memory_order_acquire)) {
        doomed.push_back(fd);
      }
    }
  }
  for (int fd : doomed) {
    CloseConnection(fd);
  }
}

double EdgeServer::StampArrival() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_).count();
}

void EdgeServer::ArmIdleSweep() {
  if (options_.idle_timeout.count() <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(idle_mu_);
  if (stopping_.load(std::memory_order_acquire)) {
    return;
  }
  // Sweep at half the timeout so a connection is closed at most 1.5x the
  // configured idle time after its last byte.
  const auto period = std::chrono::duration_cast<std::chrono::nanoseconds>(
      options_.idle_timeout / 2 + std::chrono::milliseconds(1));
  idle_sweep_ = pool_.SubmitAfter(period, [this] { IdleSweep(); }, "net.idle_sweep");
}

void EdgeServer::IdleSweep() {
  if (stopping_.load(std::memory_order_acquire)) {
    return;
  }
  const int64_t now_ns = std::chrono::steady_clock::now().time_since_epoch().count();
  const int64_t timeout_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(options_.idle_timeout).count();
  size_t killed = 0;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [fd, conn] : conns_) {
      const int64_t last = conn->last_activity_ns.load(std::memory_order_relaxed);
      if (now_ns - last > timeout_ns && !conn->kill.load(std::memory_order_relaxed)) {
        conn->kill.store(true, std::memory_order_release);
        ++killed;
      }
    }
  }
  if (killed > 0) {
    idle_closed_total_.Increment(killed);
    WakeLoop();
  }
  ArmIdleSweep();
}

}  // namespace vcdn::net
