// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/net/load_gen.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/net/wire_buffer.h"
#include "src/sim/decision_digest.h"
#include "src/util/check.h"

namespace vcdn::net {

namespace {

using Clock = std::chrono::steady_clock;

struct WorkerResult {
  util::Status status = util::OkStatus();
  uint64_t sent = 0;
  uint64_t received = 0;
  sim::OutcomeDigest digest;
};

// One closed-loop connection replaying requests [begin, end) of the trace.
// Blocking socket: with at most `depth` responses outstanding (44 bytes
// each) a 52-byte request write can never deadlock against a full receive
// buffer.
void RunWorker(const trace::Trace& trace, size_t begin, size_t end, const LoadGenOptions& options,
               obs::HdrHistogramCell* latency_cell, obs::HdrHistogram latency_handle,
               WorkerResult* result) {
  util::Result<Socket> connected = ConnectTcp(options.host, options.port);
  if (!connected.ok()) {
    result->status = connected.status();
    return;
  }
  Socket sock = std::move(connected).value();

  const size_t depth = std::max<size_t>(1, options.pipeline_depth);
  WireBuffer out(depth * kRequestFrameBytes);
  WireBuffer in(depth * kResponseFrameBytes);
  // Send timestamp per local request index; responses carry the global
  // request id so latency matching survives any reordering across shards.
  std::vector<Clock::time_point> send_times(end - begin);

  size_t next = begin;
  size_t inflight = 0;
  DecodedFrame frame;
  while (next < end || inflight > 0) {
    // Fill the pipeline.
    if (next < end && inflight < depth) {
      out.Clear();
      const Clock::time_point now = Clock::now();
      while (next < end && inflight < depth) {
        const trace::Request& req = trace.requests[next];
        RequestFrame wire;
        wire.request_id = next;
        wire.video = req.video;
        wire.byte_begin = req.byte_begin;
        wire.byte_end = req.byte_end;
        wire.arrival_time = req.arrival_time;
        AppendRequest(out, wire);
        send_times[next - begin] = now;
        ++next;
        ++inflight;
        ++result->sent;
      }
      util::Status written = sock.WriteFull(out.ReadPtr(), out.ReadableBytes());
      if (!written.ok()) {
        result->status = std::move(written);
        return;
      }
      out.Clear();
    }
    // Blocking read: decode every complete response that arrived.
    in.EnsureWritable(kResponseFrameBytes * depth);
    const ssize_t n = sock.ReadSome(in.WritePtr(), in.WritableBytes());
    if (n <= 0) {
      result->status = util::DataLossError(
          "connection lost with " + std::to_string(inflight) + " responses outstanding");
      return;
    }
    in.CommitWrite(static_cast<size_t>(n));
    const Clock::time_point now = Clock::now();
    for (;;) {
      util::Result<size_t> decoded = DecodeFrame(in, &frame);
      if (!decoded.ok()) {
        result->status = decoded.status();
        return;
      }
      if (decoded.value() == 0) {
        break;
      }
      if (frame.type != FrameType::kResponse) {
        result->status = util::DataLossError("server sent a request frame");
        return;
      }
      const ResponseFrame& resp = frame.response;
      if (resp.request_id < begin || resp.request_id >= static_cast<uint64_t>(end)) {
        result->status = util::DataLossError("response for unknown request id " +
                                             std::to_string(resp.request_id));
        return;
      }
      const double latency =
          std::chrono::duration<double>(now - send_times[resp.request_id - begin]).count();
      latency_cell->Add(latency);
      latency_handle.Observe(latency);
      result->digest.FoldFields(resp.decision, resp.tier, resp.requested_bytes, resp.hit_chunks,
                                resp.filled_chunks, resp.evicted_chunks);
      ++result->received;
      VCDN_CHECK(inflight > 0);
      --inflight;
    }
  }
}

}  // namespace

util::Result<LoadGenResult> RunClosedLoop(const trace::Trace& trace,
                                          const LoadGenOptions& options) {
  if (trace.requests.empty()) {
    return util::InvalidArgumentError("load generator needs a non-empty trace");
  }
  if (options.connections == 0) {
    return util::InvalidArgumentError("load generator needs at least one connection");
  }
  const size_t total = trace.requests.size();
  const size_t connections = std::min(options.connections, total);

  // 1us .. 10s covers loopback round trips through to a badly overloaded
  // server; 16 sub-buckets per octave bounds relative error at ~6%.
  obs::HdrHistogramCell latency_cell(1e-6, 10.0, 16);
  obs::HdrHistogram latency_handle;
  obs::Counter sent_counter;
  obs::Counter received_counter;
  if (options.metrics != nullptr) {
    latency_handle =
        options.metrics->GetHdrHistogram("net.client.latency_seconds", 1e-6, 10.0, 16);
    sent_counter = options.metrics->GetCounter("net.client.requests_sent_total");
    received_counter = options.metrics->GetCounter("net.client.responses_received_total");
  }

  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  const Clock::time_point start = Clock::now();
  const size_t per_conn = total / connections;
  const size_t remainder = total % connections;
  size_t begin = 0;
  for (size_t c = 0; c < connections; ++c) {
    const size_t slice = per_conn + (c < remainder ? 1 : 0);
    const size_t end = begin + slice;
    workers.emplace_back([&trace, begin, end, &options, &latency_cell, latency_handle,
                          result = &results[c]] {
      RunWorker(trace, begin, end, options, &latency_cell, latency_handle, result);
    });
    begin = end;
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();

  LoadGenResult out;
  for (size_t c = 0; c < connections; ++c) {
    if (!results[c].status.ok()) {
      return results[c].status;
    }
    out.requests_sent += results[c].sent;
    out.responses_received += results[c].received;
  }
  out.digest = results[0].digest.value();
  out.digest_count = results[0].digest.count();
  out.elapsed_seconds = elapsed;
  out.requests_per_second = elapsed > 0.0 ? static_cast<double>(out.responses_received) / elapsed
                                          : 0.0;
  out.latency_p50 = latency_cell.Quantile(0.50);
  out.latency_p90 = latency_cell.Quantile(0.90);
  out.latency_p99 = latency_cell.Quantile(0.99);
  out.latency_p999 = latency_cell.Quantile(0.999);
  sent_counter.Increment(out.requests_sent);
  received_counter.Increment(out.responses_received);
  return out;
}

}  // namespace vcdn::net
