// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace vcdn::net {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status Socket::SetNonBlocking(bool enabled) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) {
    return util::InternalError(ErrnoMessage("fcntl(F_GETFL)"));
  }
  flags = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, flags) < 0) {
    return util::InternalError(ErrnoMessage("fcntl(F_SETFL)"));
  }
  return util::OkStatus();
}

util::Status Socket::SetNoDelay(bool enabled) {
  int value = enabled ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &value, sizeof(value)) < 0) {
    return util::InternalError(ErrnoMessage("setsockopt(TCP_NODELAY)"));
  }
  return util::OkStatus();
}

ssize_t Socket::ReadSome(void* buf, size_t len) {
  for (;;) {
    ssize_t n = ::recv(fd_, buf, len, 0);
    if (n > 0) {
      return n;
    }
    if (n == 0) {
      return -1;  // orderly peer close
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return 0;
    }
    return -2;
  }
}

ssize_t Socket::WriteSome(const void* buf, size_t len) {
  for (;;) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE,
    // not kill the daemon with SIGPIPE.
    ssize_t n = ::send(fd_, buf, len, MSG_NOSIGNAL);
    if (n >= 0) {
      return n;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return 0;
    }
    return -2;
  }
}

util::Status Socket::ReadFull(void* buf, size_t len) {
  auto* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::recv(fd_, p + done, len - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return util::DataLossError("connection closed mid-read (" + std::to_string(done) + "/" +
                                 std::to_string(len) + " bytes)");
    }
    if (errno == EINTR) {
      continue;
    }
    return util::InternalError(ErrnoMessage("recv"));
  }
  return util::OkStatus();
}

util::Status Socket::WriteFull(const void* buf, size_t len) {
  const auto* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::send(fd_, p + done, len - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return util::InternalError(ErrnoMessage("send"));
  }
  return util::OkStatus();
}

util::Status Listener::Listen(const std::string& address, uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) {
    return util::InternalError(ErrnoMessage("socket"));
  }
  int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return util::InternalError(ErrnoMessage("setsockopt(SO_REUSEADDR)"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return util::InvalidArgumentError("bad bind address: " + address);
  }
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return util::InternalError(ErrnoMessage(("bind " + address + ":" + std::to_string(port)).c_str()));
  }
  if (::listen(sock.fd(), backlog) < 0) {
    return util::InternalError(ErrnoMessage("listen"));
  }
  VCDN_RETURN_IF_ERROR(sock.SetNonBlocking(true));
  // Read back the port for the ephemeral (port 0) case.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    return util::InternalError(ErrnoMessage("getsockname"));
  }
  port_ = ntohs(bound.sin_port);
  sock_ = std::move(sock);
  return util::OkStatus();
}

util::Result<Socket> Listener::Accept() {
  for (;;) {
    int fd = ::accept4(sock_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      return Socket(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Socket();  // nothing pending
    }
    return util::InternalError(ErrnoMessage("accept"));
  }
}

util::Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) {
    return util::InternalError(ErrnoMessage("socket"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::InvalidArgumentError("bad host address: " + host);
  }
  for (;;) {
    if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    return util::InternalError(
        ErrnoMessage(("connect " + host + ":" + std::to_string(port)).c_str()));
  }
  VCDN_RETURN_IF_ERROR(sock.SetNoDelay(true));
  return sock;
}

}  // namespace vcdn::net
