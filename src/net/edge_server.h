// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// EdgeServer: a live TCP daemon around the cache algorithms -- the
// paper's edge server as a process instead of a replay loop. It speaks the
// length-prefixed protocol of src/net/protocol.h and multiplexes any number
// of connections onto the existing exec::ThreadPool.
//
// Threading model (docs/NETWORKING.md has the full picture):
//
//   * one event-loop thread owns epoll, the listener, and every
//     Connection's inbound buffer: accept, read, parse, route;
//   * requests are routed by video id to one of `num_shards` shards; each
//     shard owns a CacheAlgorithm serialized through an exec::Strand, so
//     cache state is single-writer without a dedicated thread;
//   * a shard drain (on a pool worker, inside the strand) swaps the shard
//     inbox, runs the batch through CacheAlgorithm::HandleRequestBatch,
//     folds the outcome digest, encodes responses into each connection's
//     outbound buffer and flushes them;
//   * write-side backpressure: a flush that would block parks the residue
//     in the connection's grow-once out buffer and arms EPOLLOUT; the
//     event loop completes it.
//
// The serve path (drain body) is alloc-free at steady state: inbox/batch
// storage and wire buffers grow to their working set and are then reused.
// Allocations inside the drain region are counted through util::AllocScope
// into "net.server.serve_allocs_total", which the soak test asserts flat
// (tests/net_soak_test.cc; counts are zero unless vcdn_alloc_hook is
// linked).
//
// Determinism bridge: each shard folds every outcome into a
// sim::OutcomeDigest. With one shard, requests are handled in exactly the
// order they arrive on the wire, so for a single-connection replay of a
// trace the shard digest must equal sim::ReplayOutcomeDigest of the same
// trace -- at any pool thread count. Timeouts ride on
// exec::ThreadPool::SubmitAfter (a cancellable rearming sweep closes
// connections idle past `idle_timeout`).

#ifndef VCDN_SRC_NET_EDGE_SERVER_H_
#define VCDN_SRC_NET_EDGE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/cache_algorithm.h"
#include "src/core/cache_factory.h"
#include "src/exec/strand.h"
#include "src/exec/thread_pool.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/net/wire_buffer.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/sim/decision_digest.h"
#include "src/util/status.h"

namespace vcdn::net {

struct EdgeServerOptions {
  std::string address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read back via EdgeServer::port()
  size_t num_shards = 1;
  core::CacheKind cache_kind = core::CacheKind::kCafe;
  core::CacheConfig cache_config;
  // Clock mode. true: trust the arrival_time carried by each request frame
  // (clamped per shard to stay non-decreasing) -- the mode the determinism
  // bridge uses, since the daemon then sees exactly the trace's timestamps.
  // false: stamp arrivals from the server's own monotonic clock at parse
  // time (seconds since Start), for live traffic with no meaningful client
  // clock.
  bool use_client_time = true;
  // Connections with no complete frame for this long are closed by the
  // idle sweep (0 disables the sweep).
  std::chrono::milliseconds idle_timeout{30000};
  obs::MetricsRegistry* metrics = nullptr;       // optional; also attached to caches
  size_t flight_recorder_capacity = 0;           // >0: per-shard flight recorders
};

class EdgeServer {
 public:
  // The pool must outlive the server. Strands and timers run on it.
  EdgeServer(exec::ThreadPool& pool, EdgeServerOptions options);
  ~EdgeServer();  // Stop()

  EdgeServer(const EdgeServer&) = delete;
  EdgeServer& operator=(const EdgeServer&) = delete;

  // Binds, registers with epoll and launches the event-loop thread.
  util::Status Start();

  // Graceful drain: stop accepting, let every shard drain its inbox, flush
  // pending responses (bounded), close connections, join the loop.
  // Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return listener_.port(); }
  size_t num_shards() const { return shards_.size(); }

  // Outcome digest of one shard, as of the last completed drain. Stable
  // once the shard is quiescent (all responses delivered).
  struct DigestSnapshot {
    uint64_t value = 0;
    uint64_t count = 0;
  };
  DigestSnapshot ShardDigest(size_t shard) const;

  // Per-shard flight recorder (nullptr unless flight_recorder_capacity > 0).
  // Snapshot only while the shard is quiescent or after Stop().
  const obs::FlightRecorder* ShardFlightRecorder(size_t shard) const;

 private:
  struct Connection {
    explicit Connection(Socket s);

    Socket sock;
    uint64_t id = 0;
    WireBuffer in;
    // Outbound side, shared between shard drains (append + flush) and the
    // event loop (EPOLLOUT completion); everything below out_mu's line is
    // guarded by it.
    std::mutex out_mu;
    WireBuffer out;
    bool want_write = false;  // EPOLLOUT currently armed
    bool closed = false;      // fd no longer usable (guarded by out_mu)
    // Set by any thread to ask the event loop to close this connection.
    std::atomic<bool> kill{false};
    // steady_clock ticks of the last received byte, for the idle sweep.
    std::atomic<int64_t> last_activity_ns{0};
  };

  // One routed request waiting in a shard inbox.
  struct PendingRequest {
    std::shared_ptr<Connection> conn;
    RequestFrame frame;
  };

  struct Shard {
    std::unique_ptr<core::CacheAlgorithm> cache;
    std::unique_ptr<exec::Strand> strand;
    std::unique_ptr<obs::FlightRecorder> flight;

    std::mutex inbox_mu;
    std::vector<PendingRequest> inbox;  // producer side (event loop)
    bool drain_scheduled = false;       // guarded by inbox_mu

    // Strand-confined working state, reused across drains (grow-once).
    std::vector<PendingRequest> working;
    std::vector<trace::Request> requests;
    std::vector<core::RequestOutcome> outcomes;
    std::vector<Connection*> touched;  // conns to flush after a batch
    double last_time = 0.0;            // monotone clamp for client timestamps
    sim::OutcomeDigest digest;

    // Published after every drain iteration for cross-thread reads.
    std::atomic<uint64_t> digest_value{0};
    std::atomic<uint64_t> digest_count{0};
  };

  // --- event-loop side ---
  void LoopMain();
  void WakeLoop();
  void HandleAccept();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  // Parses conn->in, staging routed requests; returns false when the stream
  // is corrupt and the connection must be dropped.
  bool ParseFrames(const std::shared_ptr<Connection>& conn);
  void FlushStagedRequests();
  void CloseConnection(int fd);
  void SweepKilled();
  double StampArrival() const;

  // --- shard side (strand-confined) ---
  void DrainShard(size_t shard_index);
  // Flushes conn->out; arms EPOLLOUT on short write, sets kill on error.
  void FlushConnection(Connection& conn);

  // --- idle sweep (pool timer) ---
  void ArmIdleSweep();
  void IdleSweep();

  exec::ThreadPool& pool_;
  EdgeServerOptions options_;
  Listener listener_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::chrono::steady_clock::time_point start_time_{};

  std::vector<std::unique_ptr<Shard>> shards_;
  // Routing scratch, event-loop-thread only: parsed requests staged per
  // shard within one poll iteration, flushed in one lock acquisition per
  // shard.
  std::vector<std::vector<PendingRequest>> staged_;

  mutable std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;

  exec::DeferredHandle idle_sweep_;
  std::mutex idle_mu_;  // serializes ArmIdleSweep vs Stop

  // net.server.* instruments (no-ops when options_.metrics == nullptr).
  obs::Counter accepted_total_;
  obs::Counter closed_total_;
  obs::Counter requests_total_;
  obs::Counter responses_total_;
  obs::Counter bytes_in_total_;
  obs::Counter bytes_out_total_;
  obs::Counter protocol_errors_total_;
  obs::Counter idle_closed_total_;
  obs::Counter serve_allocs_total_;
  obs::Gauge active_connections_;
};

}  // namespace vcdn::net

#endif  // VCDN_SRC_NET_EDGE_SERVER_H_
