// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/net/protocol.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

namespace vcdn::net {

namespace {

// Native little-endian load/store through memcpy (the supported targets are
// little-endian, same convention as trace::WriteBinary).
template <typename T>
void Store(uint8_t* dst, T value) {
  std::memcpy(dst, &value, sizeof(T));
}

template <typename T>
T Load(const uint8_t* src) {
  T value;
  std::memcpy(&value, src, sizeof(T));
  return value;
}

void AppendHeader(WireBuffer& out, FrameType type, size_t body_len) {
  uint8_t header[kFrameHeaderBytes];
  Store<uint32_t>(header + 0, kProtocolMagic);
  header[4] = kProtocolVersion;
  header[5] = static_cast<uint8_t>(type);
  Store<uint16_t>(header + 6, 0);
  Store<uint32_t>(header + 8, static_cast<uint32_t>(body_len));
  out.Append(header, sizeof(header));
}

}  // namespace

void AppendRequest(WireBuffer& out, const RequestFrame& frame) {
  out.EnsureWritable(kRequestFrameBytes);
  AppendHeader(out, FrameType::kRequest, kRequestBodyBytes);
  uint8_t body[kRequestBodyBytes];
  Store<uint64_t>(body + 0, frame.request_id);
  Store<uint64_t>(body + 8, frame.video);
  Store<uint64_t>(body + 16, frame.byte_begin);
  Store<uint64_t>(body + 24, frame.byte_end);
  Store<double>(body + 32, frame.arrival_time);
  out.Append(body, sizeof(body));
}

void AppendResponse(WireBuffer& out, const ResponseFrame& frame) {
  out.EnsureWritable(kResponseFrameBytes);
  AppendHeader(out, FrameType::kResponse, kResponseBodyBytes);
  uint8_t body[kResponseBodyBytes];
  Store<uint64_t>(body + 0, frame.request_id);
  Store<uint64_t>(body + 8, frame.requested_bytes);
  body[16] = frame.decision;
  body[17] = frame.tier;
  Store<uint16_t>(body + 18, 0);
  Store<uint32_t>(body + 20, frame.hit_chunks);
  Store<uint32_t>(body + 24, frame.filled_chunks);
  Store<uint32_t>(body + 28, frame.evicted_chunks);
  out.Append(body, sizeof(body));
}

util::Result<size_t> DecodeFrame(const uint8_t* data, size_t size, DecodedFrame* out) {
  if (size < kFrameHeaderBytes) {
    return size_t{0};  // valid prefix; wait for the rest of the header
  }
  // Header checks, in damage-localizing order: all of them run before a
  // single body byte is interpreted, and the length cap runs before the
  // body is even waited for.
  const uint32_t magic = Load<uint32_t>(data + 0);
  if (magic != kProtocolMagic) {
    return util::DataLossError("frame magic mismatch (got 0x" + [magic] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08X", magic);
      return std::string(buf);
    }() + ", want 0x4E444356): stream corrupt or not a VCDN peer");
  }
  const uint8_t version = data[4];
  if (version != kProtocolVersion) {
    return util::Status(util::StatusCode::kUnimplemented,
                        "unsupported protocol version " + std::to_string(version) +
                            " (this build speaks version " +
                            std::to_string(kProtocolVersion) + ")");
  }
  const uint8_t raw_type = data[5];
  if (raw_type != static_cast<uint8_t>(FrameType::kRequest) &&
      raw_type != static_cast<uint8_t>(FrameType::kResponse)) {
    return util::InvalidArgumentError("unknown frame type " + std::to_string(raw_type));
  }
  const uint16_t reserved = Load<uint16_t>(data + 6);
  if (reserved != 0) {
    return util::InvalidArgumentError("nonzero reserved header field " +
                                      std::to_string(reserved));
  }
  const uint32_t body_len = Load<uint32_t>(data + 8);
  if (body_len > kMaxFrameBodyBytes) {
    // The cap check precedes everything about the body, so a hostile length
    // prefix can neither trigger an allocation nor park the connection
    // waiting for gigabytes that will never come.
    return util::OutOfRangeError("frame body length " + std::to_string(body_len) +
                                 " exceeds the " + std::to_string(kMaxFrameBodyBytes) +
                                 "-byte cap");
  }
  const FrameType type = static_cast<FrameType>(raw_type);
  const size_t expected_body =
      type == FrameType::kRequest ? kRequestBodyBytes : kResponseBodyBytes;
  if (body_len != expected_body) {
    return util::DataLossError("frame body length " + std::to_string(body_len) +
                               " does not match type " + std::to_string(raw_type) +
                               " (want " + std::to_string(expected_body) + ")");
  }
  const size_t frame_bytes = kFrameHeaderBytes + expected_body;
  if (size < frame_bytes) {
    return size_t{0};  // truncated mid-body: wait, do not reject
  }

  const uint8_t* body = data + kFrameHeaderBytes;
  out->type = type;
  if (type == FrameType::kRequest) {
    RequestFrame& frame = out->request;
    frame.request_id = Load<uint64_t>(body + 0);
    frame.video = Load<uint64_t>(body + 8);
    frame.byte_begin = Load<uint64_t>(body + 16);
    frame.byte_end = Load<uint64_t>(body + 24);
    frame.arrival_time = Load<double>(body + 32);
    if (!std::isfinite(frame.arrival_time) || frame.arrival_time < 0.0) {
      return util::InvalidArgumentError(
          "request arrival_time is NaN/Inf/negative (request id " +
          std::to_string(frame.request_id) + ")");
    }
    if (frame.byte_end < frame.byte_begin) {
      return util::InvalidArgumentError(
          "request byte range is inverted (request id " + std::to_string(frame.request_id) +
          ": [" + std::to_string(frame.byte_begin) + ", " + std::to_string(frame.byte_end) +
          "])");
    }
  } else {
    ResponseFrame& frame = out->response;
    frame.request_id = Load<uint64_t>(body + 0);
    frame.requested_bytes = Load<uint64_t>(body + 8);
    frame.decision = body[16];
    frame.tier = body[17];
    const uint16_t body_reserved = Load<uint16_t>(body + 18);
    if (body_reserved != 0) {
      return util::InvalidArgumentError("nonzero reserved response field " +
                                        std::to_string(body_reserved));
    }
    frame.hit_chunks = Load<uint32_t>(body + 20);
    frame.filled_chunks = Load<uint32_t>(body + 24);
    frame.evicted_chunks = Load<uint32_t>(body + 28);
    if (frame.decision > 2) {
      return util::InvalidArgumentError("unknown response decision " +
                                        std::to_string(frame.decision));
    }
    if (frame.tier > 3) {
      return util::InvalidArgumentError("unknown response tier " + std::to_string(frame.tier));
    }
  }
  return frame_bytes;
}

}  // namespace vcdn::net
