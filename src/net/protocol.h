// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// The VCDN edge wire protocol: length-prefixed binary frames over TCP.
//
// Every frame is a fixed 12-byte header followed by a type-specific body
// (native little-endian, like the VCDNTRC1 trace format):
//
//   offset  size  field
//        0     4  magic      0x4E444356 ("VCDN")
//        4     1  version    kProtocolVersion (1)
//        5     1  type       1 = request, 2 = response
//        6     2  reserved   must be 0
//        8     4  body_len   bytes after the header; hard-capped
//
//   request body (40 bytes):             response body (32 bytes):
//        0   u64  request_id                  0   u64  request_id
//        8   u64  video                       8   u64  requested_bytes
//       16   u64  byte_begin                 16   u8   decision (core::Decision)
//       24   u64  byte_end (inclusive)       17   u8   tier (sim::ServedTier)
//       32   f64  arrival_time               18   u16  reserved, must be 0
//                                            20   u32  hit_chunks
//                                            24   u32  filled_chunks
//                                            28   u32  evicted_chunks
//
// Parsing is hardened the way trace::ReadBinary was hardened (see
// trace_corruption_test): the length prefix is validated against a hard cap
// and the version/type/reserved fields are checked BEFORE any body is
// touched, truncated frames simply wait for more bytes (streaming), and
// every reject path returns a typed util::Status naming what was wrong.
// Decoding never allocates.

#ifndef VCDN_SRC_NET_PROTOCOL_H_
#define VCDN_SRC_NET_PROTOCOL_H_

#include <cstdint>

#include "src/net/wire_buffer.h"
#include "src/util/status.h"

namespace vcdn::net {

inline constexpr uint32_t kProtocolMagic = 0x4E444356;  // "VCDN" little-endian
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr size_t kRequestBodyBytes = 40;
inline constexpr size_t kResponseBodyBytes = 32;
// Hard cap on the declared body length, enforced before anything else is
// read: a hostile length prefix must be rejected without allocating or
// skipping ahead (mirror of ReadBinary's record-count-vs-payload check).
inline constexpr size_t kMaxFrameBodyBytes = 256;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

struct RequestFrame {
  uint64_t request_id = 0;
  uint64_t video = 0;
  uint64_t byte_begin = 0;
  uint64_t byte_end = 0;  // inclusive, >= byte_begin
  double arrival_time = 0.0;
};

struct ResponseFrame {
  uint64_t request_id = 0;
  uint64_t requested_bytes = 0;
  uint8_t decision = 0;  // core::Decision
  uint8_t tier = 0;      // sim::ServedTier
  uint32_t hit_chunks = 0;
  uint32_t filled_chunks = 0;
  uint32_t evicted_chunks = 0;
};

// A decoded frame: exactly one of the two bodies is meaningful per `type`.
struct DecodedFrame {
  FrameType type = FrameType::kRequest;
  RequestFrame request;
  ResponseFrame response;
};

// Appends one encoded frame to `out` (header + body). Alloc-free once the
// buffer has grown to its working set.
void AppendRequest(WireBuffer& out, const RequestFrame& frame);
void AppendResponse(WireBuffer& out, const ResponseFrame& frame);

// Encoded sizes, for reservation math.
inline constexpr size_t kRequestFrameBytes = kFrameHeaderBytes + kRequestBodyBytes;
inline constexpr size_t kResponseFrameBytes = kFrameHeaderBytes + kResponseBodyBytes;

// Decodes the first frame of data[0..size). Three outcomes:
//   * ok(n), n > 0  -- one frame decoded into *out, n bytes consumed;
//   * ok(0)         -- the bytes so far are a valid prefix, read more;
//   * error Status  -- the stream is corrupt at this point and the
//                      connection must be dropped (kDataLoss for framing
//                      damage, kInvalidArgument for malformed fields,
//                      kOutOfRange for an oversized length prefix,
//                      kUnimplemented for an unknown version).
util::Result<size_t> DecodeFrame(const uint8_t* data, size_t size, DecodedFrame* out);

// Streaming convenience: DecodeFrame over a WireBuffer, consuming on success.
inline util::Result<size_t> DecodeFrame(WireBuffer& in, DecodedFrame* out) {
  util::Result<size_t> result = DecodeFrame(in.ReadPtr(), in.ReadableBytes(), out);
  if (result.ok() && result.value() > 0) {
    in.ConsumeRead(result.value());
  }
  return result;
}

}  // namespace vcdn::net

#endif  // VCDN_SRC_NET_PROTOCOL_H_
