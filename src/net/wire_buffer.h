// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// WireBuffer: the per-connection byte buffer of the net subsystem -- one for
// inbound frames being reassembled, one (well, two, see EdgeServer's
// ping-pong) for outbound frames awaiting the socket.
//
// Hot-path contract (the "grow-once ChunkBuffer" discipline): capacity only
// ever grows; Consume/Commit move offsets; Compact reuses the front of the
// existing allocation. A connection that has reached its working set never
// allocates again, which is what lets the soak test pin the serve path at
// zero steady-state allocations (tests/net_soak_test.cc).

#ifndef VCDN_SRC_NET_WIRE_BUFFER_H_
#define VCDN_SRC_NET_WIRE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/util/check.h"

namespace vcdn::net {

class WireBuffer {
 public:
  explicit WireBuffer(size_t initial_capacity = 0) { data_.resize(initial_capacity); }

  // --- read side (consumer) ---
  const uint8_t* ReadPtr() const { return data_.data() + read_; }
  size_t ReadableBytes() const { return write_ - read_; }
  void ConsumeRead(size_t n) {
    VCDN_DCHECK(n <= ReadableBytes());
    read_ += n;
    if (read_ == write_) {
      // Cheap, common case: everything parsed, reuse the whole buffer.
      read_ = 0;
      write_ = 0;
    }
  }

  // --- write side (producer) ---
  uint8_t* WritePtr() { return data_.data() + write_; }
  size_t WritableBytes() const { return data_.size() - write_; }
  void CommitWrite(size_t n) {
    VCDN_DCHECK(n <= WritableBytes());
    write_ += n;
  }

  // Makes room for at least n more writable bytes: first by sliding unread
  // bytes to the front (free), only then by growing the allocation.
  void EnsureWritable(size_t n) {
    if (WritableBytes() >= n) {
      return;
    }
    Compact();
    if (WritableBytes() < n) {
      data_.resize(write_ + n);
    }
  }

  // Appends n raw bytes (EnsureWritable + memcpy + CommitWrite).
  void Append(const void* src, size_t n) {
    EnsureWritable(n);
    std::memcpy(WritePtr(), src, n);
    CommitWrite(n);
  }

  void Compact() {
    if (read_ == 0) {
      return;
    }
    const size_t unread = ReadableBytes();
    if (unread > 0) {
      std::memmove(data_.data(), data_.data() + read_, unread);
    }
    read_ = 0;
    write_ = unread;
  }

  void Clear() {
    read_ = 0;
    write_ = 0;
  }

  size_t capacity() const { return data_.size(); }
  bool empty() const { return read_ == write_; }

 private:
  std::vector<uint8_t> data_;
  size_t read_ = 0;
  size_t write_ = 0;
};

}  // namespace vcdn::net

#endif  // VCDN_SRC_NET_WIRE_BUFFER_H_
