// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Thin RAII wrappers over POSIX TCP sockets: just enough surface for the
// edge-server daemon (non-blocking accept/read/write under epoll) and the
// closed-loop load generator (blocking connect/read/write). Status-returning
// like the rest of the library; no exceptions, no ownership ambiguity (a
// Socket is move-only and closes on destruction).

#ifndef VCDN_SRC_NET_SOCKET_H_
#define VCDN_SRC_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "src/util/status.h"

namespace vcdn::net {

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

  // Releases ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  util::Status SetNonBlocking(bool enabled);
  util::Status SetNoDelay(bool enabled);

  // Result conventions for the non-blocking daemon path:
  //   > 0  bytes moved;  0  would-block (EAGAIN);  -1  peer closed (read)
  // Hard errors come back as -2 with errno preserved for the caller's log.
  ssize_t ReadSome(void* buf, size_t len);
  ssize_t WriteSome(const void* buf, size_t len);

  // Blocking helpers for the client side: move exactly `len` bytes or fail.
  util::Status ReadFull(void* buf, size_t len);
  util::Status WriteFull(const void* buf, size_t len);

 private:
  int fd_ = -1;
};

// Listening socket bound to 127.0.0.1 (or `address`) on `port`; port 0 binds
// an ephemeral port, readable afterwards via port().
class Listener {
 public:
  Listener() = default;

  util::Status Listen(const std::string& address, uint16_t port, int backlog = 128);
  // Non-blocking accept: a valid Socket, or an invalid one when no
  // connection is pending (would-block). Hard errors return a Status.
  util::Result<Socket> Accept();

  int fd() const { return sock_.fd(); }
  bool valid() const { return sock_.valid(); }
  uint16_t port() const { return port_; }
  void Close() { sock_.Close(); }

 private:
  Socket sock_;
  uint16_t port_ = 0;
};

// Blocking connect to host:port (numeric IPv4 address, e.g. "127.0.0.1").
util::Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

}  // namespace vcdn::net

#endif  // VCDN_SRC_NET_SOCKET_H_
