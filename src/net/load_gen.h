// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Closed-loop socket load generator: replays a trace::Trace against a live
// EdgeServer (or any speaker of the src/net/protocol.h wire format) over
// real TCP connections and measures what the offline replayer cannot --
// end-to-end request latency through sockets, parsing, strand scheduling
// and the cache itself.
//
// Closed-loop means each connection keeps at most `pipeline_depth` requests
// outstanding and only issues a new one when a response frees a slot, so
// offered load adapts to the server instead of overrunning it (the classic
// load-generator discipline; open-loop arrival processes belong to the
// offline simulator).
//
// The trace is split into `connections` contiguous slices, one worker
// thread per connection. Each worker folds the responses it receives into a
// wire-side sim::OutcomeDigest. With connections == 1 and a single-shard
// server in client-time mode, the response stream is exactly the offline
// outcome stream, so the digest must equal sim::ReplayOutcomeDigest -- the
// determinism bridge of docs/NETWORKING.md.

#ifndef VCDN_SRC_NET_LOAD_GEN_H_
#define VCDN_SRC_NET_LOAD_GEN_H_

#include <cstdint>
#include <string>

#include "src/obs/hdr_histogram.h"
#include "src/obs/metrics.h"
#include "src/trace/request.h"
#include "src/util/status.h"

namespace vcdn::net {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t connections = 1;
  // Max requests in flight per connection. 1 = strict request/response
  // ping-pong (latency-faithful); deeper pipelines amortize syscalls and
  // measure server throughput.
  size_t pipeline_depth = 16;
  // Optional: mirrors latency observations into
  // "net.client.latency_seconds" and maintains net.client.* counters.
  obs::MetricsRegistry* metrics = nullptr;
};

struct LoadGenResult {
  uint64_t requests_sent = 0;
  uint64_t responses_received = 0;
  double elapsed_seconds = 0.0;
  double requests_per_second = 0.0;
  // Wire-side outcome digest (XOR-combining across connections would break
  // order sensitivity, so: with one connection this is the bridge digest;
  // with several it is connection 0's digest, still useful as a smoke
  // value).
  uint64_t digest = 0;
  uint64_t digest_count = 0;
  // Latency quantiles in seconds, from a log-bucketed histogram
  // (1us .. 10s, 16 sub-buckets per octave).
  double latency_p50 = 0.0;
  double latency_p90 = 0.0;
  double latency_p99 = 0.0;
  double latency_p999 = 0.0;
};

// Replays the whole trace once; blocks until every response arrived (or a
// connection fails, which fails the run). `trace` must be non-empty and
// options.connections >= 1.
util::Result<LoadGenResult> RunClosedLoop(const trace::Trace& trace,
                                          const LoadGenOptions& options);

}  // namespace vcdn::net

#endif  // VCDN_SRC_NET_LOAD_GEN_H_
