// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Unified metrics layer: a MetricsRegistry owns named instruments (Counter,
// Gauge, fixed-bucket Histogram); components hold cheap handles into it.
//
// Design rules (see docs/OBSERVABILITY.md):
//
//   * no global state -- a registry is always passed in explicitly;
//   * zero cost when disabled -- a default-constructed handle is a no-op
//     (one null-pointer test per operation, no allocation, no branching on
//     strings), so instrumented hot paths stay hot when nothing is attached;
//   * stable handles -- instrument cells are heap-allocated once and never
//     move, so handles stay valid while the registry lives (including across
//     registry moves);
//   * deterministic export -- instruments are stored name-sorted, so JSON
//     dumps and snapshots are byte-stable for a given run.
//
// Thread safety (see docs/PARALLELISM.md): instrument cells are relaxed
// atomics, so any number of threads may Increment/Set/Add/Observe through
// handles into one shared registry concurrently. Instrument registration
// (Get*) and whole-registry reads (samples, JSON, MergeFrom) are serialized
// by an internal mutex; a read that races with cell updates sees each cell's
// then-current value (no torn reads, no ordering guarantee across cells).
// Relaxed ordering keeps the attached path to one uncontended atomic RMW;
// the detached path is still a single null test.
//
// Naming convention: dot-separated lowercase path, "<layer>.<object>.<what>",
// with counters suffixed "_total" (e.g. "cache.xLRU.filled_chunks_total",
// "sim.replay.requests_per_sec", "lp.simplex.iterations_total").

#ifndef VCDN_SRC_OBS_METRICS_H_
#define VCDN_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/hdr_histogram.h"
#include "src/util/check.h"
#include "src/util/status.h"

namespace vcdn::obs {

class MetricsRegistry;

// Monotonically increasing integer instrument.
class Counter {
 public:
  Counter() = default;

  void Increment(uint64_t delta = 1) {
    if (cell_ != nullptr) {
      cell_->fetch_add(delta, std::memory_order_relaxed);
    }
  }
  uint64_t value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0;
  }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<uint64_t>* cell) : cell_(cell) {}
  std::atomic<uint64_t>* cell_ = nullptr;
};

// Last-value instrument (occupancy, rates, alpha settings, ...).
class Gauge {
 public:
  Gauge() = default;

  void Set(double value) {
    if (cell_ != nullptr) {
      cell_->store(value, std::memory_order_relaxed);
    }
  }
  void Add(double delta) {
    if (cell_ != nullptr) {
      // CAS loop rather than fetch_add(double): universally lock-free and
      // keeps the update one relaxed RMW on every toolchain.
      double current = cell_->load(std::memory_order_relaxed);
      while (!cell_->compare_exchange_weak(current, current + delta,
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed)) {
      }
    }
  }
  double value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0.0;
  }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

// The registry-owned backing store of one histogram instrument: uniform
// buckets over [lo, hi) plus underflow/overflow, all counts relaxed atomics
// (same layout rules as util::Histogram, which stays the single-threaded
// analytics type).
class HistogramCell {
 public:
  HistogramCell(double lo, double hi, size_t num_buckets)
      : lo_(lo), hi_(hi), counts_(num_buckets) {
    VCDN_CHECK(hi > lo);
    VCDN_CHECK(num_buckets > 0);
  }

  void Add(double value) {
    size_t index;
    if (value < lo_) {
      index = kUnderflow;
    } else if (value >= hi_) {
      index = kOverflow;
    } else {
      double relative = (value - lo_) / (hi_ - lo_);
      index = static_cast<size_t>(relative * static_cast<double>(counts_.size()));
      if (index >= counts_.size()) {  // guard the fp round-up edge
        index = counts_.size() - 1;
      }
    }
    Bump(index, 1);
  }

  size_t num_buckets() const { return counts_.size(); }
  double bucket_lo(size_t i) const {
    return lo_ + static_cast<double>(i) * (hi_ - lo_) / static_cast<double>(counts_.size());
  }
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t underflow() const { return underflow_.load(std::memory_order_relaxed); }
  uint64_t overflow() const { return overflow_.load(std::memory_order_relaxed); }
  uint64_t total_count() const {
    uint64_t total = underflow() + overflow();
    for (const auto& count : counts_) {
      total += count.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Adds another cell's counts into this one. Layouts must match (same
  // [lo, hi) and bucket count): cells merged across registries always come
  // from the same instrumented call site.
  void MergeFrom(const HistogramCell& other) {
    VCDN_CHECK(other.lo_ == lo_ && other.hi_ == hi_ &&
               other.counts_.size() == counts_.size());
    Bump(kUnderflow, other.underflow());
    Bump(kOverflow, other.overflow());
    for (size_t i = 0; i < counts_.size(); ++i) {
      counts_[i].fetch_add(other.bucket_count(i), std::memory_order_relaxed);
    }
  }

 private:
  static constexpr size_t kUnderflow = static_cast<size_t>(-1);
  static constexpr size_t kOverflow = static_cast<size_t>(-2);

  void Bump(size_t index, uint64_t delta) {
    if (index == kUnderflow) {
      underflow_.fetch_add(delta, std::memory_order_relaxed);
    } else if (index == kOverflow) {
      overflow_.fetch_add(delta, std::memory_order_relaxed);
    } else {
      counts_[index].fetch_add(delta, std::memory_order_relaxed);
    }
  }

  double lo_;
  double hi_;
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> underflow_{0};
  std::atomic<uint64_t> overflow_{0};
};

// Fixed-bucket distribution instrument over [lo, hi) with underflow/overflow.
class Histogram {
 public:
  Histogram() = default;

  void Observe(double value) {
    if (impl_ != nullptr) {
      impl_->Add(value);
    }
  }
  bool enabled() const { return impl_ != nullptr; }
  // Null when disabled.
  const HistogramCell* data() const { return impl_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(HistogramCell* impl) : impl_(impl) {}
  HistogramCell* impl_ = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(MetricsRegistry&& other) noexcept;
  MetricsRegistry& operator=(MetricsRegistry&& other) noexcept;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name. Repeated calls with the same name return handles
  // to the same cell (same-named instruments aggregate).
  Counter GetCounter(std::string_view name);
  Gauge GetGauge(std::string_view name);
  // For an existing name the original bucket layout is kept.
  Histogram GetHistogram(std::string_view name, double lo, double hi, size_t num_buckets);
  // Log-bucketed counterpart (see src/obs/hdr_histogram.h): [lo, hi) split
  // into octaves of `sub_buckets` linear sub-buckets. Same find-or-create and
  // layout-keeping rules as GetHistogram; histograms and hdr histograms live
  // in separate namespaces (one name may back both, though the naming
  // convention keeps them distinct).
  HdrHistogram GetHdrHistogram(std::string_view name, double lo, double hi, size_t sub_buckets);

  // Point reads, mainly for tests and reporters; 0 for unknown names.
  uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  bool Has(std::string_view name) const;

  size_t num_instruments() const;

  // Name-sorted snapshots.
  std::vector<std::pair<std::string, uint64_t>> CounterSamples() const;
  std::vector<std::pair<std::string, double>> GaugeSamples() const;
  struct HistogramSample {
    std::string name;
    double lo = 0.0;
    double hi = 0.0;
    uint64_t underflow = 0;
    uint64_t overflow = 0;
    std::vector<uint64_t> counts;
  };
  std::vector<HistogramSample> HistogramSamples() const;
  struct HdrHistogramSample {
    std::string name;
    double lo = 0.0;
    double hi = 0.0;
    size_t sub_buckets = 0;
    uint64_t underflow = 0;
    uint64_t overflow = 0;
    std::vector<uint64_t> counts;
  };
  std::vector<HdrHistogramSample> HdrHistogramSamples() const;
  // The live cell for a registered hdr histogram (layout queries, windowed
  // quantiles); null for unknown names.
  const HdrHistogramCell* FindHdrHistogram(std::string_view name) const;
  const HistogramCell* FindHistogram(std::string_view name) const;

  // Folds another registry into this one, find-or-creating instruments as
  // needed: counters and histogram buckets add, gauges overwrite (matching
  // the last-writer-wins semantics of a sequential run). Merging shard
  // registries in a fixed order therefore reproduces the shared-registry
  // sequential result exactly -- the determinism contract the parallel fleet
  // relies on (docs/PARALLELISM.md). `other` must not be this registry.
  void MergeFrom(const MetricsRegistry& other);

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...},
  // "hdr_histograms":{...}} (hdr entries carry p50/p90/p99/p999 quantiles
  // next to their raw counts).
  void WriteJson(std::ostream& out) const;

  // Writes the WriteJson document to `path`, replacing the file. Returns a
  // non-OK Status naming the path when the file cannot be opened or the
  // write fails -- callers must surface it; a dropped snapshot that looks
  // like a successful run is how regressions hide.
  util::Status SnapshotJson(const std::string& path) const;

 private:
  // std::map keeps export order deterministic; unique_ptr keeps cell
  // addresses stable across rehash-free inserts and registry moves.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<std::atomic<double>>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramCell>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<HdrHistogramCell>, std::less<>> hdr_histograms_;
};

}  // namespace vcdn::obs

#endif  // VCDN_SRC_OBS_METRICS_H_
