// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Unified metrics layer: a MetricsRegistry owns named instruments (Counter,
// Gauge, fixed-bucket Histogram); components hold cheap handles into it.
//
// Design rules (see docs/OBSERVABILITY.md):
//
//   * no global state -- a registry is always passed in explicitly;
//   * zero cost when disabled -- a default-constructed handle is a no-op
//     (one null-pointer test per operation, no allocation, no branching on
//     strings), so instrumented hot paths stay hot when nothing is attached;
//   * stable handles -- instrument cells are heap-allocated once and never
//     move, so handles stay valid while the registry lives (including across
//     registry moves);
//   * deterministic export -- instruments are stored name-sorted, so JSON
//     dumps and snapshots are byte-stable for a given run.
//
// Naming convention: dot-separated lowercase path, "<layer>.<object>.<what>",
// with counters suffixed "_total" (e.g. "cache.xLRU.filled_chunks_total",
// "sim.replay.requests_per_sec", "lp.simplex.iterations_total").

#ifndef VCDN_SRC_OBS_METRICS_H_
#define VCDN_SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/stats.h"

namespace vcdn::obs {

class MetricsRegistry;

// Monotonically increasing integer instrument.
class Counter {
 public:
  Counter() = default;

  void Increment(uint64_t delta = 1) {
    if (cell_ != nullptr) {
      *cell_ += delta;
    }
  }
  uint64_t value() const { return cell_ != nullptr ? *cell_ : 0; }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(uint64_t* cell) : cell_(cell) {}
  uint64_t* cell_ = nullptr;
};

// Last-value instrument (occupancy, rates, alpha settings, ...).
class Gauge {
 public:
  Gauge() = default;

  void Set(double value) {
    if (cell_ != nullptr) {
      *cell_ = value;
    }
  }
  void Add(double delta) {
    if (cell_ != nullptr) {
      *cell_ += delta;
    }
  }
  double value() const { return cell_ != nullptr ? *cell_ : 0.0; }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(double* cell) : cell_(cell) {}
  double* cell_ = nullptr;
};

// Fixed-bucket distribution instrument over [lo, hi) with underflow/overflow,
// backed by util::Histogram.
class Histogram {
 public:
  Histogram() = default;

  void Observe(double value) {
    if (impl_ != nullptr) {
      impl_->Add(value);
    }
  }
  bool enabled() const { return impl_ != nullptr; }
  // Null when disabled.
  const util::Histogram* data() const { return impl_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(util::Histogram* impl) : impl_(impl) {}
  util::Histogram* impl_ = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name. Repeated calls with the same name return handles
  // to the same cell (same-named instruments aggregate).
  Counter GetCounter(std::string_view name);
  Gauge GetGauge(std::string_view name);
  // For an existing name the original bucket layout is kept.
  Histogram GetHistogram(std::string_view name, double lo, double hi, size_t num_buckets);

  // Point reads, mainly for tests and reporters; 0 for unknown names.
  uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  bool Has(std::string_view name) const;

  size_t num_instruments() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Name-sorted snapshots.
  std::vector<std::pair<std::string, uint64_t>> CounterSamples() const;
  std::vector<std::pair<std::string, double>> GaugeSamples() const;
  struct HistogramSample {
    std::string name;
    double lo = 0.0;
    double hi = 0.0;
    uint64_t underflow = 0;
    uint64_t overflow = 0;
    std::vector<uint64_t> counts;
  };
  std::vector<HistogramSample> HistogramSamples() const;

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void WriteJson(std::ostream& out) const;

 private:
  // std::map keeps export order deterministic; unique_ptr keeps cell
  // addresses stable across rehash-free inserts and registry moves.
  std::map<std::string, std::unique_ptr<uint64_t>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<double>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<util::Histogram>, std::less<>> histograms_;
};

}  // namespace vcdn::obs

#endif  // VCDN_SRC_OBS_METRICS_H_
