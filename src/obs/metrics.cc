// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/obs/metrics.h"

#include <fstream>
#include <utility>

#include "src/obs/json_util.h"

namespace vcdn::obs {

MetricsRegistry::MetricsRegistry(MetricsRegistry&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  counters_ = std::move(other.counters_);
  gauges_ = std::move(other.gauges_);
  histograms_ = std::move(other.histograms_);
  hdr_histograms_ = std::move(other.hdr_histograms_);
}

MetricsRegistry& MetricsRegistry::operator=(MetricsRegistry&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    counters_ = std::move(other.counters_);
    gauges_ = std::move(other.gauges_);
    histograms_ = std::move(other.histograms_);
    hdr_histograms_ = std::move(other.hdr_histograms_);
  }
  return *this;
}

Counter MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<std::atomic<uint64_t>>(0)).first;
  }
  return Counter(it->second.get());
}

Gauge MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<std::atomic<double>>(0.0)).first;
  }
  return Gauge(it->second.get());
}

Histogram MetricsRegistry::GetHistogram(std::string_view name, double lo, double hi,
                                        size_t num_buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<HistogramCell>(lo, hi, num_buckets))
             .first;
  }
  return Histogram(it->second.get());
}

HdrHistogram MetricsRegistry::GetHdrHistogram(std::string_view name, double lo, double hi,
                                              size_t sub_buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hdr_histograms_.find(name);
  if (it == hdr_histograms_.end()) {
    it = hdr_histograms_
             .emplace(std::string(name), std::make_unique<HdrHistogramCell>(lo, hi, sub_buckets))
             .first;
  }
  return HdrHistogram(it->second.get());
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second->load(std::memory_order_relaxed) : 0;
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second->load(std::memory_order_relaxed) : 0.0;
}

bool MetricsRegistry::Has(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.find(name) != counters_.end() || gauges_.find(name) != gauges_.end() ||
         histograms_.find(name) != histograms_.end() ||
         hdr_histograms_.find(name) != hdr_histograms_.end();
}

size_t MetricsRegistry::num_instruments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() + hdr_histograms_.size();
}

const HdrHistogramCell* MetricsRegistry::FindHdrHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hdr_histograms_.find(name);
  return it != hdr_histograms_.end() ? it->second.get() : nullptr;
}

const HistogramCell* MetricsRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterSamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    out.emplace_back(name, cell->load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeSamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    out.emplace_back(name, cell->load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<MetricsRegistry::HistogramSample> MetricsRegistry::HistogramSamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.lo = hist->bucket_lo(0);
    sample.hi = hist->bucket_lo(hist->num_buckets());  // == the histogram's upper edge
    sample.underflow = hist->underflow();
    sample.overflow = hist->overflow();
    sample.counts.reserve(hist->num_buckets());
    for (size_t i = 0; i < hist->num_buckets(); ++i) {
      sample.counts.push_back(hist->bucket_count(i));
    }
    out.push_back(std::move(sample));
  }
  return out;
}

std::vector<MetricsRegistry::HdrHistogramSample> MetricsRegistry::HdrHistogramSamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HdrHistogramSample> out;
  out.reserve(hdr_histograms_.size());
  for (const auto& [name, hist] : hdr_histograms_) {
    HdrHistogramSample sample;
    sample.name = name;
    sample.lo = hist->lo();
    sample.hi = hist->hi();
    sample.sub_buckets = hist->sub_buckets();
    sample.underflow = hist->underflow();
    sample.overflow = hist->overflow();
    sample.counts.reserve(hist->num_buckets());
    for (size_t i = 0; i < hist->num_buckets(); ++i) {
      sample.counts.push_back(hist->bucket_count(i));
    }
    out.push_back(std::move(sample));
  }
  return out;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  VCDN_CHECK(this != &other);
  // Counters/gauges: snapshot the source under its own lock, then fold in
  // through the regular Get* path (which takes ours) -- no lock is ever held
  // across both registries, so merge direction cannot deadlock.
  std::vector<std::pair<std::string, uint64_t>> counters = other.CounterSamples();
  std::vector<std::pair<std::string, double>> gauges = other.GaugeSamples();
  for (const auto& [name, value] : counters) {
    GetCounter(name).Increment(value);
  }
  for (const auto& [name, value] : gauges) {
    GetGauge(name).Set(value);
  }
  {
    std::scoped_lock lock(mu_, other.mu_);
    for (const auto& [name, cell] : other.histograms_) {
      auto it = histograms_.find(name);
      if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name, std::make_unique<HistogramCell>(
                                    cell->bucket_lo(0), cell->bucket_lo(cell->num_buckets()),
                                    cell->num_buckets()))
                 .first;
      }
      it->second->MergeFrom(*cell);
    }
    for (const auto& [name, cell] : other.hdr_histograms_) {
      auto it = hdr_histograms_.find(name);
      if (it == hdr_histograms_.end()) {
        it = hdr_histograms_
                 .emplace(name, std::make_unique<HdrHistogramCell>(cell->lo(), cell->hi(),
                                                                   cell->sub_buckets()))
                 .first;
      }
      it->second->MergeFrom(*cell);
    }
  }
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  auto counters = CounterSamples();
  auto gauges = GaugeSamples();
  auto histograms = HistogramSamples();
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      out << ",";
    }
    first = false;
    WriteJsonString(out, name);
    out << ":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) {
      out << ",";
    }
    first = false;
    WriteJsonString(out, name);
    out << ":";
    WriteJsonDouble(out, value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& sample : histograms) {
    if (!first) {
      out << ",";
    }
    first = false;
    WriteJsonString(out, sample.name);
    out << ":{\"lo\":";
    WriteJsonDouble(out, sample.lo);
    out << ",\"hi\":";
    WriteJsonDouble(out, sample.hi);
    out << ",\"underflow\":" << sample.underflow << ",\"overflow\":" << sample.overflow
        << ",\"counts\":[";
    for (size_t i = 0; i < sample.counts.size(); ++i) {
      if (i > 0) {
        out << ",";
      }
      out << sample.counts[i];
    }
    out << "]}";
  }
  out << "},\"hdr_histograms\":{";
  first = true;
  for (const auto& sample : HdrHistogramSamples()) {
    if (!first) {
      out << ",";
    }
    first = false;
    const HdrHistogramCell* cell = FindHdrHistogram(sample.name);
    WriteJsonString(out, sample.name);
    out << ":{\"lo\":";
    WriteJsonDouble(out, sample.lo);
    out << ",\"hi\":";
    WriteJsonDouble(out, sample.hi);
    out << ",\"sub_buckets\":" << sample.sub_buckets << ",\"underflow\":" << sample.underflow
        << ",\"overflow\":" << sample.overflow;
    static constexpr std::pair<const char*, double> kQuantiles[] = {
        {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999}};
    for (const auto& [label, q] : kQuantiles) {
      out << ",\"" << label << "\":";
      WriteJsonDouble(out, cell->QuantileFromCounts(q, sample.counts, sample.underflow,
                                                    sample.overflow));
    }
    out << ",\"counts\":[";
    for (size_t i = 0; i < sample.counts.size(); ++i) {
      if (i > 0) {
        out << ",";
      }
      out << sample.counts[i];
    }
    out << "]}";
  }
  out << "}}";
}

util::Status MetricsRegistry::SnapshotJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return util::InvalidArgumentError("cannot open metrics snapshot path: " + path);
  }
  WriteJson(out);
  out << "\n";
  out.flush();
  if (!out) {
    return util::DataLossError("short write to metrics snapshot path: " + path);
  }
  return util::OkStatus();
}

}  // namespace vcdn::obs
