// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/obs/metrics.h"

#include "src/obs/json_util.h"

namespace vcdn::obs {

Counter MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<uint64_t>(0)).first;
  }
  return Counter(it->second.get());
}

Gauge MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<double>(0.0)).first;
  }
  return Gauge(it->second.get());
}

Histogram MetricsRegistry::GetHistogram(std::string_view name, double lo, double hi,
                                        size_t num_buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<util::Histogram>(lo, hi, num_buckets))
             .first;
  }
  return Histogram(it->second.get());
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  auto it = counters_.find(name);
  return it != counters_.end() ? *it->second : 0;
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  auto it = gauges_.find(name);
  return it != gauges_.end() ? *it->second : 0.0;
}

bool MetricsRegistry::Has(std::string_view name) const {
  return counters_.find(name) != counters_.end() || gauges_.find(name) != gauges_.end() ||
         histograms_.find(name) != histograms_.end();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterSamples() const {
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    out.emplace_back(name, *cell);
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeSamples() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    out.emplace_back(name, *cell);
  }
  return out;
}

std::vector<MetricsRegistry::HistogramSample> MetricsRegistry::HistogramSamples() const {
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.lo = hist->bucket_lo(0);
    sample.hi = hist->bucket_lo(hist->num_buckets());  // == the histogram's upper edge
    sample.underflow = hist->underflow();
    sample.overflow = hist->overflow();
    sample.counts.reserve(hist->num_buckets());
    for (size_t i = 0; i < hist->num_buckets(); ++i) {
      sample.counts.push_back(hist->bucket_count(i));
    }
    out.push_back(std::move(sample));
  }
  return out;
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, cell] : counters_) {
    if (!first) {
      out << ",";
    }
    first = false;
    WriteJsonString(out, name);
    out << ":" << *cell;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, cell] : gauges_) {
    if (!first) {
      out << ",";
    }
    first = false;
    WriteJsonString(out, name);
    out << ":";
    WriteJsonDouble(out, *cell);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& sample : HistogramSamples()) {
    if (!first) {
      out << ",";
    }
    first = false;
    WriteJsonString(out, sample.name);
    out << ":{\"lo\":";
    WriteJsonDouble(out, sample.lo);
    out << ",\"hi\":";
    WriteJsonDouble(out, sample.hi);
    out << ",\"underflow\":" << sample.underflow << ",\"overflow\":" << sample.overflow
        << ",\"counts\":[";
    for (size_t i = 0; i < sample.counts.size(); ++i) {
      if (i > 0) {
        out << ",";
      }
      out << sample.counts[i];
    }
    out << "]}";
  }
  out << "}}";
}

}  // namespace vcdn::obs
