// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/obs/run_metadata.h"

#include "src/obs/json_util.h"

// CMake injects VCDN_GIT_DESCRIBE at configure time (see
// src/obs/CMakeLists.txt); a build outside CMake still compiles.
#ifndef VCDN_GIT_DESCRIBE
#define VCDN_GIT_DESCRIBE "unknown"
#endif
#ifndef VCDN_BUILD_TYPE
#ifdef NDEBUG
#define VCDN_BUILD_TYPE "release(NDEBUG)"
#else
#define VCDN_BUILD_TYPE "debug"
#endif
#endif

namespace vcdn::obs {

RunMetadata CollectRunMetadata() {
  RunMetadata meta;
  meta.git_describe = VCDN_GIT_DESCRIBE;
  meta.build_type = VCDN_BUILD_TYPE;
#ifdef __VERSION__
  meta.compiler = __VERSION__;
#else
  meta.compiler = "unknown";
#endif
  return meta;
}

void WriteRunMetadataJson(std::ostream& out, const RunMetadata& meta) {
  out << "{\"git\":";
  WriteJsonString(out, meta.git_describe);
  out << ",\"build_type\":";
  WriteJsonString(out, meta.build_type);
  out << ",\"compiler\":";
  WriteJsonString(out, meta.compiler);
  out << ",\"workload\":";
  WriteJsonString(out, meta.workload);
  out << ",\"seed\":" << meta.seed << ",\"threads\":" << meta.threads
      << ",\"batch\":" << meta.batch << "}";
}

}  // namespace vcdn::obs
