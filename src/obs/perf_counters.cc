// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/obs/perf_counters.h"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#include <initializer_list>
#endif

namespace vcdn::obs {

#ifdef __linux__

namespace {

int OpenCounter(uint32_t type, uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  if (group_fd < 0) {
    attr.disabled = 1;  // the leader starts the group
  }
  attr.exclude_kernel = 1;               // lets perf_event_paranoid=2 boxes count
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread, any CPU.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
  leader_fd_ = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader_fd_ < 0) {
    return;  // unavailable; leave every fd at -1
  }
  instructions_fd_ = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, leader_fd_);
  llc_misses_fd_ = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, leader_fd_);
  branch_misses_fd_ = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, leader_fd_);
  // Siblings are optional: some machines (VMs in particular) expose cycles
  // but not cache or branch events. The group stays usable with whatever
  // opened; TakeSample reads only the present members.
}

PerfCounterGroup::~PerfCounterGroup() {
  for (int fd : {branch_misses_fd_, llc_misses_fd_, instructions_fd_, leader_fd_}) {
    if (fd >= 0) {
      close(fd);
    }
  }
}

void PerfCounterGroup::Start() {
  if (leader_fd_ < 0) {
    return;
  }
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void PerfCounterGroup::Resume() {
  if (leader_fd_ < 0) {
    return;
  }
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void PerfCounterGroup::Stop() {
  if (leader_fd_ < 0) {
    return;
  }
  ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample PerfCounterGroup::TakeSample() const {
  PerfSample sample;
  if (leader_fd_ < 0) {
    return sample;
  }
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
  // Group members appear in open order: cycles, then whichever siblings
  // opened (instructions, llc, branch).
  uint64_t buf[3 + 4] = {0};
  const ssize_t want = static_cast<ssize_t>(sizeof(buf));
  const ssize_t got = read(leader_fd_, buf, sizeof(buf));
  if (got < static_cast<ssize_t>(4 * sizeof(uint64_t)) || got > want) {
    return sample;
  }
  const uint64_t nr = buf[0];
  sample.time_enabled_ns = buf[1];
  sample.time_running_ns = buf[2];
  if (sample.time_running_ns == 0) {
    return sample;  // never scheduled on a PMU; nothing to report
  }
  const double scale = sample.time_enabled_ns > sample.time_running_ns
                           ? static_cast<double>(sample.time_enabled_ns) /
                                 static_cast<double>(sample.time_running_ns)
                           : 1.0;
  auto scaled = [scale](uint64_t raw) {
    return static_cast<uint64_t>(static_cast<double>(raw) * scale);
  };
  uint64_t values[4] = {0};
  for (uint64_t i = 0; i < nr && i < 4; ++i) {
    values[i] = buf[3 + i];
  }
  // Map open order back to fields, skipping siblings that failed to open.
  size_t index = 0;
  sample.cycles = scaled(values[index++]);
  if (instructions_fd_ >= 0 && index < nr) {
    sample.instructions = scaled(values[index++]);
  }
  if (llc_misses_fd_ >= 0 && index < nr) {
    sample.llc_misses = scaled(values[index++]);
  }
  if (branch_misses_fd_ >= 0 && index < nr) {
    sample.branch_misses = scaled(values[index++]);
  }
  sample.valid = true;
  return sample;
}

#else  // !__linux__

PerfCounterGroup::PerfCounterGroup() = default;
PerfCounterGroup::~PerfCounterGroup() = default;
void PerfCounterGroup::Start() {}
void PerfCounterGroup::Resume() {}
void PerfCounterGroup::Stop() {}
PerfSample PerfCounterGroup::TakeSample() const { return PerfSample(); }

#endif  // __linux__

}  // namespace vcdn::obs
