// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Event tracing and profiling hooks: a TraceEventSink accumulates events in
// the Chrome trace_event JSON format (loadable in chrome://tracing and
// Perfetto; see docs/OBSERVABILITY.md), and ScopedSpan / VCDN_OBS_SCOPE are
// RAII wall-clock timers for profiling hot paths.
//
// Like the metrics layer, everything is pull-based and nullable: a null sink
// makes every helper a no-op (a scoped span on a null sink never even reads
// the clock), so instrumented code costs one pointer test when tracing is
// off.
//
// Event kinds emitted:
//   * complete spans   ("ph":"X")  -- scoped timers, with microsecond ts/dur
//     relative to the sink's creation;
//   * instants         ("ph":"i")  -- point annotations;
//   * counter samples  ("ph":"C")  -- periodic snapshots of a MetricsRegistry,
//     which chrome://tracing renders as stacked time series.
//
// SnapshotRegistry doubles as the JSONL snapshot stream: when a line stream
// is attached, each snapshot also appends one self-contained JSON line
// ({"ts_us":...,"counters":{...},"gauges":{...}}) to it.
//
// Thread safety: unlike the metrics registry, a TraceEventSink is
// single-threaded -- recording methods must not race. Parallel code records
// into one sink per shard/worker and merges them after the join via Append
// (see exec::ThreadPool and sim::RunFleet); only NowMicros is safe to call
// concurrently.

#ifndef VCDN_SRC_OBS_TRACE_EVENT_H_
#define VCDN_SRC_OBS_TRACE_EVENT_H_

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/run_metadata.h"
#include "src/util/status.h"

namespace vcdn::obs {

// First trace lane used for merged per-shard sinks (sim::RunFleet); keeps
// fleet lanes clear of the main thread (1) and executor workers (2 + i).
inline constexpr int kFleetTidBase = 100;

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';     // 'X' complete, 'i' instant, 'C' counter
  double ts_us = 0.0;   // microseconds since sink creation
  double dur_us = 0.0;  // complete events only
  // Counter events carry one sampled value under this series name.
  double value = 0.0;
  // Rendered as the Chrome trace "tid": one horizontal lane per tid in the
  // viewer. Lane 1 is the main thread; executor workers use 2 + worker index
  // (exec::ThreadPool), merged fleet shards use kFleetTidBase + shard index.
  int tid = 1;
};

class TraceEventSink {
 public:
  TraceEventSink();
  TraceEventSink(TraceEventSink&&) = default;
  TraceEventSink& operator=(TraceEventSink&&) = default;
  TraceEventSink(const TraceEventSink&) = delete;
  TraceEventSink& operator=(const TraceEventSink&) = delete;

  // Microseconds of wall clock since the sink was created. Const and
  // mutation-free, so safe to call from any thread (the event-recording
  // methods below are not -- see the thread-safety note at the top).
  double NowMicros() const;

  void AddComplete(std::string_view name, std::string_view category, double ts_us, double dur_us);
  void AddInstant(std::string_view name, std::string_view category);
  void AddCounter(std::string_view name, double value, double ts_us);
  // Fully specified event (callers that set tid themselves).
  void Add(TraceEvent event) { events_.push_back(std::move(event)); }

  // Appends a copy of `other`'s events, re-tagged onto lane `tid`. Timestamps
  // are kept as recorded (each relative to its own sink's creation), so
  // append sinks that were created at comparable times -- e.g. per-shard
  // sinks of one fleet run -- and lanes line up well enough to read.
  // Event order is other's recording order: merging shard sinks in a fixed
  // order yields a deterministic event list.
  void Append(const TraceEventSink& other, int tid);

  // Samples every counter and gauge of the registry as 'C' events at
  // NowMicros(), and appends one JSONL line if a line stream is attached.
  void SnapshotRegistry(const MetricsRegistry& registry);

  // Attaches a stream that receives one JSON line per SnapshotRegistry call.
  // The sink does not own the stream; pass nullptr to detach.
  void AttachSnapshotStream(std::ostream* stream) { snapshot_stream_ = stream; }

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t num_events() const { return events_.size(); }
  // Number of SnapshotRegistry calls so far.
  uint64_t num_snapshots() const { return num_snapshots_; }

  // Chrome trace object: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  void WriteTraceJson(std::ostream& out) const;
  // The events array alone, for embedding in a larger JSON object.
  void WriteTraceEventsArray(std::ostream& out) const;

 private:
  std::chrono::steady_clock::time_point origin_;
  std::vector<TraceEvent> events_;
  std::ostream* snapshot_stream_ = nullptr;
  uint64_t num_snapshots_ = 0;
};

// RAII wall-clock span: records a complete event over its lifetime. No-op
// (and clock-free) when the sink is null. `name` and `category` must outlive
// the span (string literals in practice).
class ScopedSpan {
 public:
  ScopedSpan(TraceEventSink* sink, const char* name, const char* category = "vcdn")
      : sink_(sink), name_(name), category_(category) {
    if (sink_ != nullptr) {
      start_us_ = sink_->NowMicros();
    }
  }
  ~ScopedSpan() {
    if (sink_ != nullptr) {
      sink_->AddComplete(name_, category_, start_us_, sink_->NowMicros() - start_us_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceEventSink* sink_;
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
};

// Writes the combined observability dump used by the benches' --obs-json
// flag: a valid Chrome trace object with the metrics registry embedded under
// a "metrics" key and the run metadata under "meta" (trace viewers ignore
// unknown top-level keys). Either registry/sink pointer may be null; the
// corresponding section is then empty. A null `meta` embeds the compiled-in
// provenance with empty run-shape fields (CollectRunMetadata).
void WriteObsJson(std::ostream& out, const MetricsRegistry* registry, const TraceEventSink* sink,
                  const RunMetadata* meta = nullptr);

// File variant. Returns a non-OK Status naming the path when the file cannot
// be opened or the write fails -- a dropped obs dump must never look like a
// successful run.
util::Status WriteObsJsonFile(const std::string& path, const MetricsRegistry* registry,
                              const TraceEventSink* sink, const RunMetadata* meta = nullptr);

#define VCDN_OBS_SCOPE_CONCAT_(a, b) a##b
#define VCDN_OBS_SCOPE_NAME_(line) VCDN_OBS_SCOPE_CONCAT_(vcdn_obs_scope_, line)
// Usage: VCDN_OBS_SCOPE(sink_ptr, "replay.loop");  -- sink_ptr may be null.
#define VCDN_OBS_SCOPE(sink, name) \
  ::vcdn::obs::ScopedSpan VCDN_OBS_SCOPE_NAME_(__LINE__)((sink), (name))

}  // namespace vcdn::obs

#endif  // VCDN_SRC_OBS_TRACE_EVENT_H_
