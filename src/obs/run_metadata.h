// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Self-describing run metadata embedded in every obs artifact (the --obs-json
// dump, --obs-series JSONL header, flight-recorder post-mortems, and
// BENCH_*.json): a committed artifact must answer "what built this, on what
// workload, with which knobs" without consulting the shell history that
// produced it.
//
// Toolchain fields are compiled in (VCDN_GIT_DESCRIBE / VCDN_BUILD_TYPE come
// from CMake; see src/obs/CMakeLists.txt), so they are identical for every
// run of one binary -- which keeps artifacts byte-reproducible across runs of
// the same build, the property the post-mortem determinism test relies on.
// Run-shaped fields (workload, seed, threads, batch) are filled by the
// caller; empty/zero fields are still emitted so consumers can diff headers
// field by field.

#ifndef VCDN_SRC_OBS_RUN_METADATA_H_
#define VCDN_SRC_OBS_RUN_METADATA_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace vcdn::obs {

struct RunMetadata {
  // Compiled-in provenance (CollectRunMetadata fills these).
  std::string git_describe;  // `git describe --always --dirty` at configure time
  std::string build_type;    // CMAKE_BUILD_TYPE, e.g. "Release"
  std::string compiler;      // __VERSION__ of the compiler that built the binary

  // Run shape (caller-filled; zero/empty when not applicable).
  std::string workload;  // e.g. "fig7 six servers"
  uint64_t seed = 0;
  size_t threads = 0;
  size_t batch = 0;
};

// Metadata with the compiled-in provenance fields populated.
RunMetadata CollectRunMetadata();

// One JSON object: {"git":...,"build_type":...,"compiler":...,"workload":...,
// "seed":...,"threads":...,"batch":...}.
void WriteRunMetadataJson(std::ostream& out, const RunMetadata& meta);

}  // namespace vcdn::obs

#endif  // VCDN_SRC_OBS_RUN_METADATA_H_
