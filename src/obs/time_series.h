// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Windowed time-series over a MetricsRegistry: a TimeSeriesRecorder snapshots
// the registry at simulated-time window boundaries (the replay's bucket
// flushes -- see sim::Replay) and stores, per window,
//
//   * counters as deltas since the previous window,
//   * gauges as the last value seen in the window,
//   * hdr histograms as per-window delta *counts* (quantiles are computed
//     only at serialization time, from the deltas).
//
// Storing delta counts rather than quantiles is what makes shard merges
// exact: counts are sums, so merging per-shard recorders window-by-window in
// server order reproduces the sequential single-registry series bit for bit
// -- the same determinism contract the registry's own MergeFrom documents
// (docs/PARALLELISM.md). Windows are keyed by their start time, which all
// shards share because bucket edges come from the trace clock, not from any
// per-shard state.
//
// Serialization is compact JSONL (--obs-series): one meta header line with
// the RunMetadata, then one line per window. See docs/OBSERVABILITY.md for
// the schema and an end-to-end example.
//
// Not thread-safe: a recorder belongs to one replay (one shard). Cross-shard
// aggregation goes through MergeFrom after the shards join.

#ifndef VCDN_SRC_OBS_TIME_SERIES_H_
#define VCDN_SRC_OBS_TIME_SERIES_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/run_metadata.h"
#include "src/util/status.h"

namespace vcdn::obs {

// One captured window. Instrument vectors are name-sorted (inherited from the
// registry's sorted snapshots), so serialized output is byte-stable.
struct SeriesWindow {
  double start = 0.0;
  double end = 0.0;
  // Counter deltas over the window.
  std::vector<std::pair<std::string, uint64_t>> counters;
  // Gauge last-values at the window boundary.
  std::vector<std::pair<std::string, double>> gauges;
  // Hdr histogram delta counts over the window, with the cell layout carried
  // along so quantiles can be recomputed after merging.
  struct HdrDelta {
    double lo = 0.0;
    double hi = 0.0;
    size_t sub_buckets = 0;
    uint64_t underflow = 0;
    uint64_t overflow = 0;
    std::vector<uint64_t> counts;
  };
  std::vector<std::pair<std::string, HdrDelta>> hdr;
};

class TimeSeriesRecorder {
 public:
  // A recorder with no registry is inert: EndWindow records empty windows.
  TimeSeriesRecorder() = default;
  explicit TimeSeriesRecorder(const MetricsRegistry* registry) : registry_(registry) {}

  // Closes the window [start, end): snapshots the registry, stores deltas
  // against the previous snapshot, and advances the baseline. Call on every
  // bucket flush; window starts must be strictly increasing.
  void EndWindow(double start, double end);

  // Folds another recorder's windows into this one, aligned by window start:
  // counter and hdr deltas add, gauges overwrite (merge in server order to
  // reproduce the sequential last-writer). Windows only one side recorded
  // are kept as-is.
  void MergeFrom(const TimeSeriesRecorder& other);

  size_t num_windows() const { return windows_.size(); }
  const SeriesWindow& window(size_t i) const { return windows_[i]; }

  // JSONL: first a meta line {"type":"meta","meta":{...}}, then one
  // {"type":"window",...} line per window with counter deltas, gauge values
  // and per-window hdr quantiles (p50/p90/p99/p999 over the delta counts).
  void WriteJsonl(std::ostream& out, const RunMetadata& meta) const;
  // File variant; non-OK Status names the path on open/write failure.
  util::Status WriteJsonl(const std::string& path, const RunMetadata& meta) const;

 private:
  const MetricsRegistry* registry_ = nullptr;
  std::vector<SeriesWindow> windows_;

  // Baselines from the previous EndWindow, keyed by instrument name.
  std::map<std::string, uint64_t, std::less<>> counter_base_;
  struct HdrBase {
    uint64_t underflow = 0;
    uint64_t overflow = 0;
    std::vector<uint64_t> counts;
  };
  std::map<std::string, HdrBase, std::less<>> hdr_base_;
};

}  // namespace vcdn::obs

#endif  // VCDN_SRC_OBS_TIME_SERIES_H_
