// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Tiny JSON emission helpers shared by the obs exporters. Emission only --
// the library never needs to parse JSON.

#ifndef VCDN_SRC_OBS_JSON_UTIL_H_
#define VCDN_SRC_OBS_JSON_UTIL_H_

#include <ostream>
#include <string_view>

namespace vcdn::obs {

// Writes a quoted, escaped JSON string literal.
void WriteJsonString(std::ostream& out, std::string_view text);

// Writes a finite double as a JSON number; NaN/inf (not representable in
// JSON) are written as 0.
void WriteJsonDouble(std::ostream& out, double value);

}  // namespace vcdn::obs

#endif  // VCDN_SRC_OBS_JSON_UTIL_H_
