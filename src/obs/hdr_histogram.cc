// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/obs/hdr_histogram.h"

#include <cmath>

namespace vcdn::obs {

namespace {

size_t OctavesFor(double lo, double hi) {
  // Smallest k with lo * 2^k >= hi.
  size_t k = 0;
  double edge = lo;
  while (edge < hi) {
    edge *= 2.0;
    ++k;
  }
  return k;
}

}  // namespace

HdrHistogramCell::HdrHistogramCell(double lo, double hi, size_t sub_buckets)
    : lo_(lo), hi_(hi), sub_(sub_buckets), octaves_(OctavesFor(lo, hi)),
      counts_(octaves_ * sub_buckets) {
  VCDN_CHECK(lo > 0.0);
  VCDN_CHECK(hi > lo);
  VCDN_CHECK(sub_buckets > 0);
}

size_t HdrHistogramCell::IndexOf(double value) const {
  if (!(value >= lo_)) {  // also catches NaN
    return kUnderflow;
  }
  if (value >= hi_) {
    return kOverflow;
  }
  const double ratio = value / lo_;
  int exponent = std::ilogb(ratio);  // ratio in [2^exponent, 2^(exponent+1))
  if (exponent < 0) {
    exponent = 0;  // fp guard: value barely above lo can round ratio below 1
  }
  double mantissa = ratio / std::ldexp(1.0, exponent);  // [1, 2)
  auto sub_index = static_cast<size_t>((mantissa - 1.0) * static_cast<double>(sub_));
  if (sub_index >= sub_) {  // fp round-up edge
    sub_index = sub_ - 1;
  }
  size_t index = static_cast<size_t>(exponent) * sub_ + sub_index;
  if (index >= counts_.size()) {  // values in the final partial octave
    index = counts_.size() - 1;
  }
  return index;
}

void HdrHistogramCell::Bump(size_t index, uint64_t delta) {
  if (index == kUnderflow) {
    underflow_.fetch_add(delta, std::memory_order_relaxed);
  } else if (index == kOverflow) {
    overflow_.fetch_add(delta, std::memory_order_relaxed);
  } else {
    counts_[index].fetch_add(delta, std::memory_order_relaxed);
  }
}

double HdrHistogramCell::bucket_lo(size_t i) const {
  const size_t octave = i / sub_;
  const size_t sub_index = i % sub_;
  return lo_ * std::ldexp(1.0, static_cast<int>(octave)) *
         (1.0 + static_cast<double>(sub_index) / static_cast<double>(sub_));
}

uint64_t HdrHistogramCell::total_count() const {
  uint64_t total = underflow() + overflow();
  for (const auto& count : counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

double HdrHistogramCell::Quantile(double q) const {
  std::vector<uint64_t> counts(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return QuantileFromCounts(q, counts, underflow(), overflow());
}

double HdrHistogramCell::QuantileFromCounts(double q, const std::vector<uint64_t>& counts,
                                            uint64_t underflow, uint64_t overflow) const {
  VCDN_CHECK(counts.size() == counts_.size());
  uint64_t total = underflow + overflow;
  for (uint64_t count : counts) {
    total += count;
  }
  if (total == 0) {
    return 0.0;
  }
  if (q < 0.0) {
    q = 0.0;
  } else if (q > 1.0) {
    q = 1.0;
  }
  // Rank of the target observation, 1-based; q = 0 reads the minimum.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) {
    rank = 1;
  }
  // Underflow mass clamps to the low edge, overflow mass to the high edge.
  if (rank <= underflow) {
    return lo_;
  }
  uint64_t cumulative = underflow;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      const double top = (i + 1 == counts.size()) ? hi_ : bucket_lo(i + 1);
      return 0.5 * (bucket_lo(i) + top);
    }
  }
  return hi_;
}

void HdrHistogramCell::MergeFrom(const HdrHistogramCell& other) {
  VCDN_CHECK(other.lo_ == lo_ && other.hi_ == hi_ && other.sub_ == sub_ &&
             other.counts_.size() == counts_.size());
  Bump(kUnderflow, other.underflow());
  Bump(kOverflow, other.overflow());
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i].fetch_add(other.bucket_count(i), std::memory_order_relaxed);
  }
}

}  // namespace vcdn::obs
