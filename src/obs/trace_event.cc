// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/obs/trace_event.h"

#include <fstream>

#include "src/obs/json_util.h"

namespace vcdn::obs {

TraceEventSink::TraceEventSink() : origin_(std::chrono::steady_clock::now()) {}

double TraceEventSink::NowMicros() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - origin_)
      .count();
}

void TraceEventSink::AddComplete(std::string_view name, std::string_view category, double ts_us,
                                 double dur_us) {
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  events_.push_back(std::move(event));
}

void TraceEventSink::AddInstant(std::string_view name, std::string_view category) {
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = 'i';
  event.ts_us = NowMicros();
  events_.push_back(std::move(event));
}

void TraceEventSink::AddCounter(std::string_view name, double value, double ts_us) {
  TraceEvent event;
  event.name = std::string(name);
  event.category = "metrics";
  event.phase = 'C';
  event.ts_us = ts_us;
  event.value = value;
  events_.push_back(std::move(event));
}

void TraceEventSink::SnapshotRegistry(const MetricsRegistry& registry) {
  const double now_us = NowMicros();
  for (const auto& [name, value] : registry.CounterSamples()) {
    AddCounter(name, static_cast<double>(value), now_us);
  }
  for (const auto& [name, value] : registry.GaugeSamples()) {
    AddCounter(name, value, now_us);
  }
  ++num_snapshots_;
  if (snapshot_stream_ != nullptr) {
    std::ostream& out = *snapshot_stream_;
    out << "{\"ts_us\":";
    WriteJsonDouble(out, now_us);
    out << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : registry.CounterSamples()) {
      if (!first) {
        out << ",";
      }
      first = false;
      WriteJsonString(out, name);
      out << ":" << value;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : registry.GaugeSamples()) {
      if (!first) {
        out << ",";
      }
      first = false;
      WriteJsonString(out, name);
      out << ":";
      WriteJsonDouble(out, value);
    }
    out << "}}\n";
  }
}

void TraceEventSink::Append(const TraceEventSink& other, int tid) {
  events_.reserve(events_.size() + other.events_.size());
  for (TraceEvent event : other.events_) {
    event.tid = tid;
    events_.push_back(std::move(event));
  }
  num_snapshots_ += other.num_snapshots_;
}

namespace {

void WriteEvent(std::ostream& out, const TraceEvent& event) {
  out << "{\"name\":";
  WriteJsonString(out, event.name);
  out << ",\"cat\":";
  WriteJsonString(out, event.category.empty() ? std::string_view("vcdn")
                                              : std::string_view(event.category));
  out << ",\"ph\":\"" << event.phase << "\",\"pid\":1,\"tid\":" << event.tid << ",\"ts\":";
  WriteJsonDouble(out, event.ts_us);
  if (event.phase == 'X') {
    out << ",\"dur\":";
    WriteJsonDouble(out, event.dur_us);
  } else if (event.phase == 'i') {
    out << ",\"s\":\"t\"";
  } else if (event.phase == 'C') {
    out << ",\"args\":{\"value\":";
    WriteJsonDouble(out, event.value);
    out << "}";
  }
  out << "}";
}

}  // namespace

void TraceEventSink::WriteTraceEventsArray(std::ostream& out) const {
  out << "[";
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    WriteEvent(out, events_[i]);
  }
  out << "]";
}

void TraceEventSink::WriteTraceJson(std::ostream& out) const {
  out << "{\"traceEvents\":";
  WriteTraceEventsArray(out);
  out << ",\"displayTimeUnit\":\"ms\"}";
}

void WriteObsJson(std::ostream& out, const MetricsRegistry* registry, const TraceEventSink* sink,
                  const RunMetadata* meta) {
  out << "{\"traceEvents\":";
  if (sink != nullptr) {
    sink->WriteTraceEventsArray(out);
  } else {
    out << "[]";
  }
  out << ",\"displayTimeUnit\":\"ms\",\"meta\":";
  if (meta != nullptr) {
    WriteRunMetadataJson(out, *meta);
  } else {
    WriteRunMetadataJson(out, CollectRunMetadata());
  }
  out << ",\"metrics\":";
  if (registry != nullptr) {
    registry->WriteJson(out);
  } else {
    out << "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"hdr_histograms\":{}}";
  }
  out << "}\n";
}

util::Status WriteObsJsonFile(const std::string& path, const MetricsRegistry* registry,
                              const TraceEventSink* sink, const RunMetadata* meta) {
  std::ofstream out(path);
  if (!out) {
    return util::InvalidArgumentError("cannot open obs json path: " + path);
  }
  WriteObsJson(out, registry, sink, meta);
  out.flush();
  if (!out) {
    return util::DataLossError("short write to obs json path: " + path);
  }
  return util::OkStatus();
}

}  // namespace vcdn::obs
