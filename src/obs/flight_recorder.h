// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Flight recorder: a fixed-capacity ring of packed per-request decision
// records, kept per shard (or per worker lane) so that when something goes
// wrong -- a fault boundary fires, a fleet digest mismatches, a VCDN_CHECK
// trips -- the last N decisions leading up to it can be dumped as a
// post-mortem without having logged anything during normal operation.
//
// Hot-path contract: the ring is preallocated at construction and Record()
// is a bounded store plus two index updates -- no allocation, no branching
// on capacity growth, no locks. This keeps the replay's steady-state
// allocation count at zero with the recorder enabled (verified by
// tests/replay_flight_test.cc against the allocation hook).
//
// Determinism contract: records carry simulated time only (never wall
// clock), and the post-mortem serialization is a pure function of the ring
// contents + RunMetadata (compiled in per build), so a seeded fault replay
// dumps byte-identical post-mortems across runs of the same binary.
//
// Layering: obs sits below core and fault, so DecisionRecord stores the
// decision and fault state as raw bytes (callers in sim/ cast their enums
// in) and the post-mortem writer takes the active fault schedule as a
// pre-rendered JSON string (fault::FaultScheduleToJson) rather than a
// fault type.

#ifndef VCDN_SRC_OBS_FLIGHT_RECORDER_H_
#define VCDN_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/run_metadata.h"
#include "src/util/status.h"

namespace vcdn::obs {

// One per-request decision, packed to 32 bytes so a 4096-entry ring is two
// pages of L2-resident state.
struct DecisionRecord {
  double time = 0.0;             // request arrival, simulated seconds
  uint64_t key = 0;              // content key (video id)
  uint32_t requested_bytes = 0;  // clamped to 32 bits; chunk math never needs more
  uint16_t filled_chunks = 0;
  uint16_t evicted_chunks = 0;
  uint16_t hit_chunks = 0;
  // core::Decision cast to a byte by the caller (0 serve, 1 redirect,
  // 2 unavailable); obs itself assigns no meaning.
  uint8_t decision = 0;
  // Caller-defined fault state byte (sim uses 0 normal, 1 degraded,
  // 2 outage).
  uint8_t fault_state = 0;
  // Stamped by FlightRecorder::Record: position in the total recorded
  // stream, so a dump shows how far into the run the window sits.
  uint32_t seq = 0;
};
static_assert(sizeof(DecisionRecord) == 32, "DecisionRecord must stay packed");

// What triggered a dump, carried alongside the records.
struct PostMortemContext {
  std::string trigger;  // "fault_boundary" | "digest_mismatch" | "check_failure" | ...
  std::string label;    // which recorder: "server3", "worker0", "edge1", ...
  double sim_time = 0.0;
  // Pre-rendered fault schedule JSON (fault::FaultScheduleToJson); empty
  // when no schedule is active.
  std::string fault_schedule_json;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity);

  // Appends one record, overwriting the oldest once full, and stamps
  // record.seq. Alloc-free and lock-free; a recorder belongs to one shard.
  void Record(DecisionRecord record) {
    record.seq = static_cast<uint32_t>(total_recorded_);
    ring_[head_] = record;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    }
    ++total_recorded_;
  }

  size_t capacity() const { return ring_.size(); }
  size_t size() const { return size_; }
  uint64_t total_recorded() const { return total_recorded_; }

  // Ring contents oldest-first. Allocates -- capture/dump paths only.
  std::vector<DecisionRecord> Snapshot() const;

  void Clear();

 private:
  std::vector<DecisionRecord> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t total_recorded_ = 0;
};

// A deferred dump: the ring copied out at trigger time (e.g. a fault
// boundary inside a shard replay) for serialization after the shards join --
// so parallel shards never race on one output file.
struct FlightCapture {
  PostMortemContext context;
  uint64_t total_recorded = 0;
  std::vector<DecisionRecord> records;
};

FlightCapture CaptureFlight(const FlightRecorder& recorder, PostMortemContext context);

// Post-mortem JSONL: a meta line, a trigger line, an optional fault-schedule
// line, then one line per record (oldest first). Byte-stable for a given
// ring + context + metadata.
void WritePostMortemJsonl(std::ostream& out, const RunMetadata& meta,
                          const FlightCapture& capture);
// File variant; non-OK Status names the path on open/write failure.
util::Status WritePostMortemJsonl(const std::string& path, const RunMetadata& meta,
                                  const FlightCapture& capture);

// Crash-dump arming: registers `recorder` so that if a VCDN_CHECK fails
// anywhere in the process (including a fleet digest-mismatch CHECK), its
// last records are dumped to `path` before abort, via
// util::SetCheckFailureHook. Multiple recorders may be armed (per-shard
// lanes); each dumps to its own path. The recorder and the strings are
// copied into the armed entry except the recorder pointer itself, which
// must stay valid until DisarmCrashDump. Not async-signal-safe -- this
// fires on the CHECK path, which is already a controlled abort.
void ArmCrashDump(const FlightRecorder* recorder, std::string path, RunMetadata meta,
                  PostMortemContext context);
void DisarmCrashDump(const FlightRecorder* recorder);

}  // namespace vcdn::obs

#endif  // VCDN_SRC_OBS_FLIGHT_RECORDER_H_
