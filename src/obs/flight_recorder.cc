// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/obs/flight_recorder.h"

#include <fstream>
#include <mutex>
#include <utility>

#include "src/obs/json_util.h"
#include "src/util/check.h"

namespace vcdn::obs {

FlightRecorder::FlightRecorder(size_t capacity) : ring_(capacity) {
  VCDN_CHECK(capacity > 0);
}

std::vector<DecisionRecord> FlightRecorder::Snapshot() const {
  std::vector<DecisionRecord> out;
  out.reserve(size_);
  // Oldest record sits at head_ once the ring has wrapped, at 0 before.
  const size_t start = size_ == ring_.size() ? head_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::Clear() {
  head_ = 0;
  size_ = 0;
  total_recorded_ = 0;
}

FlightCapture CaptureFlight(const FlightRecorder& recorder, PostMortemContext context) {
  FlightCapture capture;
  capture.context = std::move(context);
  capture.total_recorded = recorder.total_recorded();
  capture.records = recorder.Snapshot();
  return capture;
}

void WritePostMortemJsonl(std::ostream& out, const RunMetadata& meta,
                          const FlightCapture& capture) {
  out << "{\"type\":\"meta\",\"meta\":";
  WriteRunMetadataJson(out, meta);
  out << "}\n";
  out << "{\"type\":\"trigger\",\"trigger\":";
  WriteJsonString(out, capture.context.trigger);
  out << ",\"label\":";
  WriteJsonString(out, capture.context.label);
  out << ",\"sim_time\":";
  WriteJsonDouble(out, capture.context.sim_time);
  out << ",\"records\":" << capture.records.size()
      << ",\"total_recorded\":" << capture.total_recorded << "}\n";
  if (!capture.context.fault_schedule_json.empty()) {
    // Pre-rendered by fault::FaultScheduleToJson -- embedded verbatim.
    out << "{\"type\":\"fault_schedule\",\"schedule\":" << capture.context.fault_schedule_json
        << "}\n";
  }
  for (const DecisionRecord& record : capture.records) {
    out << "{\"type\":\"record\",\"seq\":" << record.seq << ",\"time\":";
    WriteJsonDouble(out, record.time);
    out << ",\"key\":" << record.key << ",\"decision\":" << static_cast<int>(record.decision)
        << ",\"bytes\":" << record.requested_bytes << ",\"filled\":" << record.filled_chunks
        << ",\"evicted\":" << record.evicted_chunks << ",\"hit\":" << record.hit_chunks
        << ",\"fault\":" << static_cast<int>(record.fault_state) << "}\n";
  }
}

util::Status WritePostMortemJsonl(const std::string& path, const RunMetadata& meta,
                                  const FlightCapture& capture) {
  std::ofstream out(path);
  if (!out) {
    return util::InvalidArgumentError("cannot open post-mortem path: " + path);
  }
  WritePostMortemJsonl(out, meta, capture);
  out.flush();
  if (!out) {
    return util::DataLossError("short write to post-mortem path: " + path);
  }
  return util::OkStatus();
}

namespace {

struct ArmedRecorder {
  const FlightRecorder* recorder;
  std::string path;
  RunMetadata meta;
  PostMortemContext context;
};

std::mutex& ArmedMutex() {
  static std::mutex mu;
  return mu;
}

std::vector<ArmedRecorder>& ArmedList() {
  static std::vector<ArmedRecorder> armed;
  return armed;
}

// The util::SetCheckFailureHook target: dump every armed recorder, then let
// the CHECK abort proceed. Runs at most once (the hook layer once-guards).
void DumpArmedRecorders() {
  std::lock_guard<std::mutex> lock(ArmedMutex());
  for (const ArmedRecorder& armed : ArmedList()) {
    PostMortemContext context = armed.context;
    context.trigger = "check_failure";
    // Best-effort on the abort path: a failed write has nowhere to report.
    (void)WritePostMortemJsonl(armed.path, armed.meta,
                               CaptureFlight(*armed.recorder, std::move(context)));
  }
}

}  // namespace

void ArmCrashDump(const FlightRecorder* recorder, std::string path, RunMetadata meta,
                  PostMortemContext context) {
  VCDN_CHECK(recorder != nullptr);
  std::lock_guard<std::mutex> lock(ArmedMutex());
  ArmedList().push_back(
      {recorder, std::move(path), std::move(meta), std::move(context)});
  util::SetCheckFailureHook(&DumpArmedRecorders);
}

void DisarmCrashDump(const FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(ArmedMutex());
  auto& armed = ArmedList();
  for (auto it = armed.begin(); it != armed.end();) {
    if (it->recorder == recorder) {
      it = armed.erase(it);
    } else {
      ++it;
    }
  }
  if (armed.empty()) {
    util::SetCheckFailureHook(nullptr);
  }
}

}  // namespace vcdn::obs
