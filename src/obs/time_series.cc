// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/obs/time_series.h"

#include <algorithm>
#include <fstream>

#include "src/obs/hdr_histogram.h"
#include "src/obs/json_util.h"
#include "src/util/check.h"

namespace vcdn::obs {

void TimeSeriesRecorder::EndWindow(double start, double end) {
  VCDN_CHECK(windows_.empty() || start > windows_.back().start);
  SeriesWindow window;
  window.start = start;
  window.end = end;
  if (registry_ != nullptr) {
    for (const auto& [name, value] : registry_->CounterSamples()) {
      uint64_t& base = counter_base_[name];
      window.counters.emplace_back(name, value - base);
      base = value;
    }
    window.gauges = registry_->GaugeSamples();
    for (auto& sample : registry_->HdrHistogramSamples()) {
      HdrBase& base = hdr_base_[sample.name];
      if (base.counts.size() != sample.counts.size()) {
        base.counts.assign(sample.counts.size(), 0);
      }
      SeriesWindow::HdrDelta delta;
      delta.lo = sample.lo;
      delta.hi = sample.hi;
      delta.sub_buckets = sample.sub_buckets;
      delta.underflow = sample.underflow - base.underflow;
      delta.overflow = sample.overflow - base.overflow;
      delta.counts.resize(sample.counts.size());
      for (size_t i = 0; i < sample.counts.size(); ++i) {
        delta.counts[i] = sample.counts[i] - base.counts[i];
      }
      base.underflow = sample.underflow;
      base.overflow = sample.overflow;
      base.counts = std::move(sample.counts);
      window.hdr.emplace_back(sample.name, std::move(delta));
    }
  }
  windows_.push_back(std::move(window));
}

namespace {

// Folds `src` into `dst`, both name-sorted, applying `merge` to shared names
// and inserting names only `src` has (keeping sort order).
template <typename T, typename MergeFn>
void MergeSortedByName(std::vector<std::pair<std::string, T>>& dst,
                       const std::vector<std::pair<std::string, T>>& src, MergeFn merge) {
  std::vector<std::pair<std::string, T>> out;
  out.reserve(dst.size() + src.size());
  size_t i = 0;
  size_t j = 0;
  while (i < dst.size() || j < src.size()) {
    if (j == src.size() || (i < dst.size() && dst[i].first < src[j].first)) {
      out.push_back(std::move(dst[i++]));
    } else if (i == dst.size() || src[j].first < dst[i].first) {
      out.push_back(src[j++]);
    } else {
      merge(dst[i].second, src[j].second);
      out.push_back(std::move(dst[i]));
      ++i;
      ++j;
    }
  }
  dst = std::move(out);
}

void MergeWindow(SeriesWindow& dst, const SeriesWindow& src) {
  dst.end = std::max(dst.end, src.end);
  MergeSortedByName(dst.counters, src.counters,
                    [](uint64_t& a, const uint64_t& b) { a += b; });
  // Gauges are last-writer-wins; merging in server order makes the source
  // (the later shard) the last writer, matching registry MergeFrom.
  MergeSortedByName(dst.gauges, src.gauges, [](double& a, const double& b) { a = b; });
  MergeSortedByName(dst.hdr, src.hdr,
                    [](SeriesWindow::HdrDelta& a, const SeriesWindow::HdrDelta& b) {
                      VCDN_CHECK(a.lo == b.lo && a.hi == b.hi &&
                                 a.sub_buckets == b.sub_buckets &&
                                 a.counts.size() == b.counts.size());
                      a.underflow += b.underflow;
                      a.overflow += b.overflow;
                      for (size_t i = 0; i < a.counts.size(); ++i) {
                        a.counts[i] += b.counts[i];
                      }
                    });
}

}  // namespace

void TimeSeriesRecorder::MergeFrom(const TimeSeriesRecorder& other) {
  std::vector<SeriesWindow> out;
  out.reserve(windows_.size() + other.windows_.size());
  size_t i = 0;
  size_t j = 0;
  while (i < windows_.size() || j < other.windows_.size()) {
    if (j == other.windows_.size() ||
        (i < windows_.size() && windows_[i].start < other.windows_[j].start)) {
      out.push_back(std::move(windows_[i++]));
    } else if (i == windows_.size() || other.windows_[j].start < windows_[i].start) {
      out.push_back(other.windows_[j++]);
    } else {
      MergeWindow(windows_[i], other.windows_[j]);
      out.push_back(std::move(windows_[i]));
      ++i;
      ++j;
    }
  }
  windows_ = std::move(out);
}

void TimeSeriesRecorder::WriteJsonl(std::ostream& out, const RunMetadata& meta) const {
  out << "{\"type\":\"meta\",\"meta\":";
  WriteRunMetadataJson(out, meta);
  out << ",\"windows\":" << windows_.size() << "}\n";
  for (const SeriesWindow& window : windows_) {
    out << "{\"type\":\"window\",\"start\":";
    WriteJsonDouble(out, window.start);
    out << ",\"end\":";
    WriteJsonDouble(out, window.end);
    out << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, delta] : window.counters) {
      if (!first) {
        out << ",";
      }
      first = false;
      WriteJsonString(out, name);
      out << ":" << delta;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : window.gauges) {
      if (!first) {
        out << ",";
      }
      first = false;
      WriteJsonString(out, name);
      out << ":";
      WriteJsonDouble(out, value);
    }
    out << "},\"hdr\":{";
    first = true;
    for (const auto& [name, delta] : window.hdr) {
      if (!first) {
        out << ",";
      }
      first = false;
      // A scratch cell with the recorded layout gives the quantile math; the
      // delta counts are evaluated against it. Serialization-time only, so
      // the allocation is off the hot path.
      HdrHistogramCell layout(delta.lo, delta.hi, delta.sub_buckets);
      uint64_t count = delta.underflow + delta.overflow;
      for (uint64_t c : delta.counts) {
        count += c;
      }
      WriteJsonString(out, name);
      out << ":{\"count\":" << count << ",\"underflow\":" << delta.underflow
          << ",\"overflow\":" << delta.overflow;
      static constexpr std::pair<const char*, double> kQuantiles[] = {
          {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999}};
      for (const auto& [label, q] : kQuantiles) {
        out << ",\"" << label << "\":";
        WriteJsonDouble(out, layout.QuantileFromCounts(q, delta.counts, delta.underflow,
                                                       delta.overflow));
      }
      out << "}";
    }
    out << "}}\n";
  }
}

util::Status TimeSeriesRecorder::WriteJsonl(const std::string& path,
                                            const RunMetadata& meta) const {
  std::ofstream out(path);
  if (!out) {
    return util::InvalidArgumentError("cannot open obs series path: " + path);
  }
  WriteJsonl(out, meta);
  out.flush();
  if (!out) {
    return util::DataLossError("short write to obs series path: " + path);
  }
  return util::OkStatus();
}

}  // namespace vcdn::obs
