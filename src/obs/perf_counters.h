// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Hardware performance counters over perf_event_open(2): one group of
// {cycles, instructions, LLC misses, branch misses} counting this thread,
// started and stopped around a timed region. bench_common wraps its timed
// loops in one, which is how BENCH_hotpath.json gains IPC and
// LLC-miss-per-request columns (docs/PERFORMANCE.md).
//
// Graceful fallback is the whole point of the design: perf_event_open is
// often unavailable (perf_event_paranoid, seccomp, containers, non-Linux),
// and a bench must not fail because of it. Construction never aborts; when
// the syscall is denied, available() is false, Start/Stop are no-ops and
// TakeSample returns an invalid sample -- callers emit their usual output
// minus the hardware columns (tools/check_bench_regression.py and
// tools/obs_report.py both tolerate the absence).

#ifndef VCDN_SRC_OBS_PERF_COUNTERS_H_
#define VCDN_SRC_OBS_PERF_COUNTERS_H_

#include <cstdint>

namespace vcdn::obs {

// One read of the group. `valid` is false when the counters were never
// available or were multiplexed out for the whole region (time_running 0).
struct PerfSample {
  bool valid = false;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;
  // Scaling evidence: counters are scaled by time_enabled/time_running when
  // the kernel multiplexed the group.
  uint64_t time_enabled_ns = 0;
  uint64_t time_running_ns = 0;

  double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) / static_cast<double>(cycles) : 0.0;
  }
};

class PerfCounterGroup {
 public:
  // Opens the group for the calling thread. Never fails hard: on any open
  // error the group is simply unavailable.
  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  bool available() const { return leader_fd_ >= 0; }

  // Resets and enables the group. No-op when unavailable.
  void Start();
  // Enables without resetting, so Stop/Resume pairs can stitch one
  // accumulated region around untimed setup (cache construction, Prepare).
  void Resume();
  // Disables the group. No-op when unavailable.
  void Stop();
  // Reads the group (scaled for multiplexing). Invalid sample when
  // unavailable.
  PerfSample TakeSample() const;

 private:
  int leader_fd_ = -1;
  int instructions_fd_ = -1;
  int llc_misses_fd_ = -1;
  int branch_misses_fd_ = -1;
};

}  // namespace vcdn::obs

#endif  // VCDN_SRC_OBS_PERF_COUNTERS_H_
