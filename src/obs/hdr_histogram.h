// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Log-bucketed histogram cell (HdrHistogram-style): geometric major buckets
// (one per octave of the value range) subdivided into `sub_buckets` linear
// sub-buckets, so relative error is bounded by 1/sub_buckets across the whole
// dynamic range. This is the right shape for latency- and size-like
// distributions whose interesting quantiles span orders of magnitude --
// exactly where the uniform-bucket HistogramCell wastes all its resolution.
//
// Same concurrency and merge rules as HistogramCell (src/obs/metrics.h):
// counts are relaxed atomics, any number of threads may Add through handles
// into one cell, MergeFrom folds a same-layout cell in, and merging shard
// cells in any order reproduces the single-stream fill exactly (counts are
// sums). Values below `lo` clamp into the underflow count and quantile-read
// as `lo`; values at or above `hi` clamp into the overflow count and
// quantile-read as `hi` -- recorded mass is never silently dropped.

#ifndef VCDN_SRC_OBS_HDR_HISTOGRAM_H_
#define VCDN_SRC_OBS_HDR_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace vcdn::obs {

class HdrHistogramCell {
 public:
  // Covers [lo, hi) with ceil(log2(hi/lo)) octaves of `sub_buckets` linear
  // sub-buckets each. lo must be > 0 (log bucketing has no zero edge).
  HdrHistogramCell(double lo, double hi, size_t sub_buckets);

  void Add(double value) { Bump(IndexOf(value), 1); }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t sub_buckets() const { return sub_; }
  size_t num_buckets() const { return counts_.size(); }

  // Lower edge of bucket i: lo * 2^(i / sub) * (1 + (i % sub) / sub).
  // bucket_lo(num_buckets()) is the top edge of the last bucket.
  double bucket_lo(size_t i) const;

  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t underflow() const { return underflow_.load(std::memory_order_relaxed); }
  uint64_t overflow() const { return overflow_.load(std::memory_order_relaxed); }
  uint64_t total_count() const;

  // Quantile estimate over the recorded distribution: the midpoint of the
  // bucket holding the rank-q observation. Monotone in q; underflow mass
  // reads as lo, overflow mass as hi (the clamping contract above). Returns
  // 0 for an empty cell.
  double Quantile(double q) const;

  // Quantile over an external count vector with this cell's layout -- the
  // windowed-series case, where per-window deltas of the live counts are
  // taken and quantiles computed per window (obs::TimeSeriesRecorder).
  double QuantileFromCounts(double q, const std::vector<uint64_t>& counts, uint64_t underflow,
                            uint64_t overflow) const;

  // Adds another cell's counts into this one. Layouts must match.
  void MergeFrom(const HdrHistogramCell& other);

 private:
  static constexpr size_t kUnderflow = static_cast<size_t>(-1);
  static constexpr size_t kOverflow = static_cast<size_t>(-2);

  size_t IndexOf(double value) const;
  void Bump(size_t index, uint64_t delta);

  double lo_;
  double hi_;
  size_t sub_;
  size_t octaves_;
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> underflow_{0};
  std::atomic<uint64_t> overflow_{0};
};

// Cheap handle mirroring obs::Histogram: default-constructed is a no-op.
class HdrHistogram {
 public:
  HdrHistogram() = default;

  void Observe(double value) {
    if (impl_ != nullptr) {
      impl_->Add(value);
    }
  }
  bool enabled() const { return impl_ != nullptr; }
  // Null when disabled.
  const HdrHistogramCell* data() const { return impl_; }

 private:
  friend class MetricsRegistry;
  explicit HdrHistogram(HdrHistogramCell* impl) : impl_(impl) {}
  HdrHistogramCell* impl_ = nullptr;
};

}  // namespace vcdn::obs

#endif  // VCDN_SRC_OBS_HDR_HISTOGRAM_H_
