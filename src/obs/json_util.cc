// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/obs/json_util.h"

#include <cmath>
#include <cstdio>

namespace vcdn::obs {

void WriteJsonString(std::ostream& out, std::string_view text) {
  out << '"';
  for (char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\b':
        out << "\\b";
        break;
      case '\f':
        out << "\\f";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void WriteJsonDouble(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << 0;
    return;
  }
  // %.17g round-trips doubles and never produces a locale-dependent comma
  // via the stream's locale.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

}  // namespace vcdn::obs
