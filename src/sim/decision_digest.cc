// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/sim/decision_digest.h"

#include "src/core/cache_factory.h"
#include "src/sim/replay.h"

namespace vcdn::sim {

uint64_t ReplayOutcomeDigest(core::CacheKind kind, const core::CacheConfig& config,
                             const trace::Trace& trace, size_t batch_size) {
  auto cache = core::MakeCache(kind, config);
  OutcomeDigest digest;
  ReplayOptions options;
  options.batch_size = batch_size;
  options.on_outcome = [&digest](const trace::Request& request,
                                 const core::RequestOutcome& outcome) {
    (void)request;
    digest.Fold(outcome);
  };
  Replay(*cache, trace, options);
  return digest.value();
}

}  // namespace vcdn::sim
