// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/sim/replay.h"

namespace vcdn::sim {

ReplayResult Replay(core::CacheAlgorithm& cache, const trace::Trace& trace,
                    const ReplayOptions& options) {
  VCDN_CHECK(options.measurement_start_fraction >= 0.0 &&
             options.measurement_start_fraction < 1.0);
  cache.Prepare(trace);

  MetricsCollector collector(cache.config().chunk_bytes,
                             trace.duration * options.measurement_start_fraction,
                             options.bucket_seconds);
  for (const trace::Request& request : trace.requests) {
    core::RequestOutcome outcome = cache.HandleRequest(request);
    collector.Record(request.arrival_time, outcome);
  }

  ReplayResult result;
  result.cache_name = std::string(cache.name());
  result.alpha_f2r = cache.config().alpha_f2r;
  result.totals = collector.totals();
  result.steady = collector.steady();
  result.series = collector.Series();
  result.efficiency = result.steady.Efficiency(cache.cost_model());
  result.ingress_fraction = result.steady.IngressFraction();
  result.redirect_fraction = result.steady.RedirectFraction();
  return result;
}

}  // namespace vcdn::sim
