// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/sim/replay.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

namespace vcdn::sim {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

// The streaming replay loop shared by Replay (over a TraceView) and
// ReplayStream. Requests are pulled in spans and batched inside each span;
// batch cuts -- at bucket flushes, fault boundaries, outage windows and span
// edges -- are semantically invisible (see ReplayOptions::batch_size), so
// every observable is bit-identical no matter how the producer chunks the
// stream.
ReplayResult ReplayLoop(core::CacheAlgorithm& cache, trace::RequestStream& stream,
                        const ReplayOptions& options) {
  VCDN_CHECK(options.measurement_start_fraction >= 0.0 &&
             options.measurement_start_fraction < 1.0);

  const double duration = stream.duration();
  MetricsCollector collector(cache.config().chunk_bytes,
                             duration * options.measurement_start_fraction,
                             options.bucket_seconds);

  // Replay-level instruments; no-ops unless a registry is attached.
  obs::Counter requests_counter;
  obs::Counter buckets_counter;
  obs::Gauge sim_time_gauge;
  obs::Gauge throughput_gauge;
  if (options.metrics != nullptr) {
    requests_counter = options.metrics->GetCounter("sim.replay.requests_total");
    buckets_counter = options.metrics->GetCounter("sim.replay.buckets_flushed_total");
    sim_time_gauge = options.metrics->GetGauge("sim.replay.sim_time_seconds");
    throughput_gauge = options.metrics->GetGauge("sim.replay.requests_per_sec");
  }
  const bool observing = options.observer != nullptr || options.trace_sink != nullptr ||
                         options.metrics != nullptr || options.series != nullptr;
  if (options.series != nullptr) {
    // The recorder snapshots the registry at window edges; without one there
    // is nothing to snapshot and the series would be silently empty.
    VCDN_CHECK(options.metrics != nullptr);
  }

  std::optional<fault::FaultDriver> fault_driver;
  if (options.faults != nullptr && !options.faults->empty()) {
    fault_driver.emplace(*options.faults, options.fault_target, &cache, options.metrics,
                         options.trace_sink);
  }

  const SteadyClock::time_point loop_start = SteadyClock::now();
  uint64_t processed = 0;
  int64_t current_bucket = -1;
  double last_arrival = 0.0;
  // Rendered lazily on the first fault-boundary capture, then reused.
  std::string fault_schedule_json;

  // Per-bucket flush: gauges, registry snapshot, series window, observer
  // callback.
  auto flush = [&](double sim_time) {
    double wall = SecondsSince(loop_start);
    buckets_counter.Increment();
    sim_time_gauge.Set(sim_time);
    throughput_gauge.Set(wall > 0.0 ? static_cast<double>(processed) / wall : 0.0);
    if (options.trace_sink != nullptr && options.metrics != nullptr) {
      options.trace_sink->SnapshotRegistry(*options.metrics);
    }
    if (options.series != nullptr) {
      // Window edges are the bucket edges (not request times), so every
      // shard of a fleet keys the same windows and MergeFrom aligns exactly.
      const double start = static_cast<double>(current_bucket) * options.bucket_seconds;
      options.series->EndWindow(start, start + options.bucket_seconds);
    }
    if (options.observer != nullptr) {
      ReplayProgress progress;
      progress.requests_processed = processed;
      progress.total_requests = stream.total_requests_hint();
      progress.sim_time = sim_time;
      progress.wall_seconds = wall;
      progress.requests_per_second = wall > 0.0 ? static_cast<double>(processed) / wall : 0.0;
      progress.totals = &collector.totals();
      options.observer->OnBucketEnd(progress);
    }
  };

  // Batched admission: consecutive cache-bound requests accumulate into one
  // RequestBatch (a view into the current span -- appends are always
  // adjacent because every skip path drains first) and reach the cache
  // through one HandleRequestBatch call. Outcomes are then recorded in
  // arrival order, so the collector, on_outcome consumers and counters see
  // exactly the per-request stream.
  const size_t batch_size = options.batch_size > 0 ? options.batch_size : 1;
  core::RequestBatch batch;
  batch.outcomes.resize(batch_size);

  // Flight-recorder state: the per-request fault byte (0 normal, 1 degraded,
  // 2 outage) is constant within a batch because batches are cut at every
  // fault boundary and outage window.
  auto record_flight = [&](const trace::Request& request, const core::RequestOutcome& outcome,
                           uint8_t fault_state) {
    obs::DecisionRecord record;
    record.time = request.arrival_time;
    record.key = request.video;
    record.requested_bytes = static_cast<uint32_t>(
        std::min<uint64_t>(outcome.requested_bytes, std::numeric_limits<uint32_t>::max()));
    record.filled_chunks = static_cast<uint16_t>(
        std::min<uint32_t>(outcome.filled_chunks, std::numeric_limits<uint16_t>::max()));
    record.evicted_chunks = static_cast<uint16_t>(
        std::min<uint32_t>(outcome.evicted_chunks, std::numeric_limits<uint16_t>::max()));
    record.hit_chunks = static_cast<uint16_t>(
        std::min<uint32_t>(outcome.hit_chunks, std::numeric_limits<uint16_t>::max()));
    record.decision = static_cast<uint8_t>(outcome.decision);
    record.fault_state = fault_state;
    options.flight->Record(record);
  };

  auto drain = [&] {
    if (batch.count == 0) {
      return;
    }
    cache.HandleRequestBatch(batch);
    const uint8_t fault_state =
        fault_driver.has_value() && fault_driver->Degraded() ? uint8_t{1} : uint8_t{0};
    for (size_t i = 0; i < batch.count; ++i) {
      const trace::Request& request = batch.requests[i];
      const core::RequestOutcome& outcome = batch.outcomes[i];
      collector.Record(request.arrival_time, outcome);
      if (options.flight != nullptr) {
        record_flight(request, outcome, fault_state);
      }
      if (options.on_outcome) {
        options.on_outcome(request, outcome);
      }
      ++processed;
      requests_counter.Increment();
    }
    batch.requests = nullptr;
    batch.count = 0;
  };

  // Spans are pulled in multiples of the batch size so span edges only cut a
  // batch at end of stream (cuts are invisible either way, this just keeps
  // the batching effective).
  const size_t pull_size = batch_size * std::max<size_t>(size_t{1}, 4096 / batch_size);

  {
    VCDN_OBS_SCOPE(options.trace_sink, "replay.loop");
    for (;;) {
      const trace::RequestSpan span = stream.Next(pull_size);
      if (span.empty()) {
        break;
      }
      for (const trace::Request& request : span) {
        if (observing) {
          auto bucket = static_cast<int64_t>(
              std::floor(request.arrival_time / options.bucket_seconds));
          if (current_bucket >= 0 && bucket != current_bucket) {
            drain();  // the flush snapshot must reflect every prior request
            flush(request.arrival_time);
          }
          current_bucket = bucket;
        }
        last_arrival = request.arrival_time;
        bool unavailable = false;
        if (fault_driver.has_value()) {
          if (fault_driver->NextBoundaryTime() <= request.arrival_time) {
            // A boundary mutates the cache (Resize/DropContents); pending
            // requests precede it in simulated time, so they go first.
            drain();
            fault_driver->Advance(request.arrival_time);
            if (options.flight != nullptr && options.flight_captures != nullptr) {
              // Deferred dump of the decisions leading up to the boundary;
              // rendered to disk by the caller after any shards join.
              if (fault_schedule_json.empty()) {
                fault_schedule_json = fault::FaultScheduleToJson(*options.faults);
              }
              obs::PostMortemContext context;
              context.trigger = "fault_boundary";
              context.label = options.flight_label;
              context.sim_time = request.arrival_time;
              context.fault_schedule_json = fault_schedule_json;
              options.flight_captures->push_back(
                  obs::CaptureFlight(*options.flight, std::move(context)));
            }
          }
          unavailable = fault_driver->InOutage(request.arrival_time);
        }
        if (unavailable) {
          // The server is down: the request never reaches the cache and is
          // origin-served upstream (the hierarchy charges the penalty).
          drain();  // keep recording order intact around the outage
          core::RequestOutcome outcome;
          outcome.decision = core::Decision::kUnavailable;
          outcome.requested_bytes = request.size_bytes();
          outcome.requested_chunks =
              core::ToChunkRange(request, cache.config().chunk_bytes).count();
          fault_driver->RecordUnavailable(outcome);
          collector.Record(request.arrival_time, outcome);
          if (options.flight != nullptr) {
            record_flight(request, outcome, /*fault_state=*/2);
          }
          if (options.on_outcome) {
            options.on_outcome(request, outcome);
          }
          ++processed;
          requests_counter.Increment();
          continue;
        }
        if (batch.count == 0) {
          batch.requests = &request;
        }
        ++batch.count;
        if (batch.count >= batch_size) {
          drain();
        }
      }
      // The span's memory may be recycled by the next Next(): flush the tail
      // batch while the view is still valid.
      drain();
    }
  }

  // A truncated stream means the producer hit a malformed record mid-replay;
  // the results would silently cover a prefix. Untrusted files must be
  // validated up front (MmapTrace::Validate / trace_pack --verify).
  VCDN_CHECK_MSG(stream.status().ok(), "request stream failed mid-replay");

  ReplayResult result;
  result.cache_name = std::string(cache.name());
  result.alpha_f2r = cache.config().alpha_f2r;
  result.wall_seconds = SecondsSince(loop_start);
  result.requests_per_second =
      result.wall_seconds > 0.0 ? static_cast<double>(processed) / result.wall_seconds : 0.0;
  if (observing && processed > 0) {
    flush(last_arrival);  // final partial bucket
  }
  result.totals = collector.totals();
  result.steady = collector.steady();
  result.series = collector.Series();
  result.efficiency = result.steady.Efficiency(cache.cost_model());
  result.ingress_fraction = result.steady.IngressFraction();
  result.redirect_fraction = result.steady.RedirectFraction();
  result.availability = result.totals.Availability();
  if (fault_driver.has_value()) {
    // Apply any boundaries past the last request so end-of-trace restores
    // and restarts still count, then surface the accounting.
    fault_driver->Advance(duration);
    result.faults = fault_driver->stats();
  }
  return result;
}

}  // namespace

ReplayResult Replay(core::CacheAlgorithm& cache, const trace::Trace& trace,
                    const ReplayOptions& options) {
  if (options.metrics != nullptr) {
    cache.AttachMetrics(*options.metrics);
  }
  {
    VCDN_OBS_SCOPE(options.trace_sink, "replay.prepare");
    cache.Prepare(trace);
  }
  trace::TraceView view(trace);
  return ReplayLoop(cache, view, options);
}

ReplayResult ReplayStream(core::CacheAlgorithm& cache, trace::RequestStream& stream,
                          const ReplayOptions& options) {
  // Offline algorithms index the whole trace in Prepare(); feeding them a
  // stream would silently replay them unprepared.
  VCDN_CHECK_MSG(!cache.requires_full_trace(),
                 "cache algorithm needs the full trace (offline); use Replay()");
  if (options.metrics != nullptr) {
    cache.AttachMetrics(*options.metrics);
  }
  return ReplayLoop(cache, stream, options);
}

}  // namespace vcdn::sim
