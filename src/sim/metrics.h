// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Metrics accounting for trace replay, in the paper's units (Sec. 9):
//
//   * redirection ratio  = redirected bytes / requested bytes;
//   * "Ingress %"        = ingress-to-egress percentage, i.e. the fraction of
//                          served traffic that incurred cache-fill;
//   * cache efficiency   = Eq. (2), with fills at chunk granularity and
//                          redirects at byte granularity.
//
// Totals are kept for the whole run and for a steady-state measurement
// window ("the average over the second half of the month is taken to exclude
// the initial cache warmup phase"), plus hourly buckets for the Fig. 3 time
// series.

#ifndef VCDN_SRC_SIM_METRICS_H_
#define VCDN_SRC_SIM_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/core/cache_algorithm.h"
#include "src/core/cost_model.h"
#include "src/util/stats.h"

namespace vcdn::sim {

struct ReplayTotals {
  uint64_t requests = 0;
  uint64_t served_requests = 0;
  uint64_t redirected_requests = 0;
  uint64_t requested_bytes = 0;
  uint64_t served_bytes = 0;      // egress: bytes of served requests
  uint64_t redirected_bytes = 0;  // bytes of redirected requests
  uint64_t filled_bytes = 0;      // ingress: filled chunks * chunk size
  uint64_t evicted_chunks = 0;
  // Chunk-granular counters (the units of the Sec. 7 LP objective).
  uint64_t requested_chunks = 0;
  uint64_t filled_chunks = 0;
  uint64_t redirected_chunks = 0;
  // Background prefetches (Sec. 10 proactive caching); also included in
  // filled_bytes / filled_chunks since they are real ingress.
  uint64_t proactive_filled_chunks = 0;
  // Requests the server never saw because a fault-injected outage window
  // covered them (Decision::kUnavailable); served by the origin upstream.
  uint64_t unavailable_requests = 0;
  uint64_t unavailable_bytes = 0;
  uint64_t unavailable_chunks = 0;

  void Accumulate(const core::RequestOutcome& outcome, uint64_t chunk_bytes);

  // Field-wise sum, for aggregating per-server totals into fleet-wide ones.
  void Add(const ReplayTotals& other);

  // Eq. (2). Unavailable traffic is charged like a redirect: the bytes still
  // travel to the origin, the cache just was not there to decide.
  double Efficiency(const core::CostModel& cost) const;
  // Eq. (2) with every quantity measured in chunks, matching the units of
  // the offline Optimal LP (Sec. 7) for Fig. 2 comparisons.
  double ChunkEfficiency(const core::CostModel& cost) const;
  // Ingress-to-egress fraction in [0, +inf). Edge cases are finite and
  // NaN-free: 0 when nothing was filled; when fills happened but nothing was
  // served (proactive fills on an all-redirect run), falls back to requested
  // bytes as the denominator so the ingress is still visible.
  double IngressFraction() const;
  // Redirected-bytes fraction of requested bytes; 0 when nothing requested.
  double RedirectFraction() const;
  // Fraction of requests the server was up for; 1 when nothing requested.
  double Availability() const;
};

// One Fig. 3-style time-series point (per bucket, e.g. per hour).
struct SeriesPoint {
  double bucket_start = 0.0;
  uint64_t requested_bytes = 0;
  uint64_t served_bytes = 0;
  uint64_t redirected_bytes = 0;
  uint64_t filled_bytes = 0;
  uint64_t unavailable_bytes = 0;  // outage traffic, origin-served
};

class MetricsCollector {
 public:
  // measurement_start: requests at or after this time also accumulate into
  // the steady-state totals. bucket_seconds: time-series resolution.
  MetricsCollector(uint64_t chunk_bytes, double measurement_start, double bucket_seconds);

  void Record(double arrival_time, const core::RequestOutcome& outcome);

  const ReplayTotals& totals() const { return totals_; }
  const ReplayTotals& steady() const { return steady_; }
  std::vector<SeriesPoint> Series() const;

 private:
  uint64_t chunk_bytes_;
  double measurement_start_;
  ReplayTotals totals_;
  ReplayTotals steady_;
  util::BucketedSeries requested_;
  util::BucketedSeries served_;
  util::BucketedSeries redirected_;
  util::BucketedSeries filled_;
  util::BucketedSeries unavailable_;
};

}  // namespace vcdn::sim

#endif  // VCDN_SRC_SIM_METRICS_H_
