// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/sim/parallel_fleet.h"

#include <bit>
#include <chrono>
#include <optional>
#include <string>
#include <utility>

namespace vcdn::sim {

namespace {

// Everything a shard produces besides its ReplayResult: the local obs
// recordings, merged into the shared sinks in server order after the join.
struct ShardObs {
  std::optional<obs::MetricsRegistry> metrics;
  std::optional<obs::TraceEventSink> sink;
  std::optional<obs::TimeSeriesRecorder> series;
  std::optional<obs::FlightRecorder> flight;
  // Deferred fault-boundary dumps, appended to the caller's vector (in
  // server order) after the join -- shards never touch a shared file.
  std::vector<obs::FlightCapture> captures;
};

ReplayOptions ShardReplayOptions(const ReplayOptions& base, const FleetServer& server,
                                 ShardObs& obs, size_t shard_index) {
  ReplayOptions options = base;
  options.observer = nullptr;
  options.metrics = obs.metrics.has_value() ? &*obs.metrics : nullptr;
  options.trace_sink = obs.sink.has_value() ? &*obs.sink : nullptr;
  options.series = obs.series.has_value() ? &*obs.series : nullptr;
  options.flight = obs.flight.has_value() ? &*obs.flight : nullptr;
  options.flight_captures = obs.flight.has_value() ? &obs.captures : nullptr;
  options.flight_label =
      server.name.empty() ? "server" + std::to_string(shard_index) : server.name;
  // Shard i is fault target i: a shared FaultSchedule applies each server's
  // own outage/degrade windows, and stays deterministic because the schedule
  // is read-only and each driver is replay-local.
  options.fault_target = shard_index;
  return options;
}

void RunShard(const FleetServer& server, const ReplayOptions& base, ShardObs& obs,
              size_t shard_index, ReplayResult& out) {
  auto cache = core::MakeCache(server.kind, server.config);
  const ReplayOptions options = ShardReplayOptions(base, server, obs, shard_index);
  if (server.trace != nullptr) {
    out = Replay(*cache, *server.trace, options);
  } else {
    // Built here, on the shard's worker, so producer state lives and dies
    // with the shard.
    std::unique_ptr<trace::RequestStream> stream = server.stream();
    out = ReplayStream(*cache, *stream, options);
  }
}

}  // namespace

FleetResult RunFleet(const std::vector<FleetServer>& servers, const FleetOptions& options) {
  VCDN_CHECK(!servers.empty());
  for (const FleetServer& server : servers) {
    VCDN_CHECK_MSG((server.trace != nullptr) != static_cast<bool>(server.stream),
                   "FleetServer needs exactly one of trace or stream");
  }
  // Per-shard callbacks would run concurrently on pool workers; the fleet
  // API deliberately has no per-request hook.
  VCDN_CHECK(options.replay.observer == nullptr);
  VCDN_CHECK(options.replay.on_outcome == nullptr);

  if (options.replay.series != nullptr) {
    VCDN_CHECK(options.replay.metrics != nullptr);
  }
  const bool obs_enabled = options.replay.metrics != nullptr ||
                           options.replay.trace_sink != nullptr ||
                           options.replay.flight != nullptr;

  FleetResult result;
  result.servers.resize(servers.size());
  std::vector<ShardObs> shard_obs(servers.size());
  if (obs_enabled) {
    for (ShardObs& obs : shard_obs) {
      if (options.replay.metrics != nullptr) {
        obs.metrics.emplace();
        if (options.replay.series != nullptr) {
          obs.series.emplace(&*obs.metrics);
        }
      }
      if (options.replay.trace_sink != nullptr) {
        obs.sink.emplace();
      }
      if (options.replay.flight != nullptr) {
        obs.flight.emplace(options.replay.flight->capacity());
      }
    }
  }

  const auto start = std::chrono::steady_clock::now();
  exec::ThreadPool* pool = options.pool;
  std::optional<exec::ThreadPool> owned_pool;
  if (pool == nullptr && options.threads != 1) {
    exec::ThreadPoolOptions pool_options;
    pool_options.num_threads = options.threads;
    // The shared registry is thread-safe; the shared sink is not, so the
    // pool buffers worker spans until Shutdown.
    pool_options.metrics = options.replay.metrics;
    pool_options.trace_sink = options.replay.trace_sink;
    owned_pool.emplace(pool_options);
    pool = &*owned_pool;
  }
  result.threads = pool != nullptr ? pool->num_threads() : 1;

  if (pool == nullptr) {
    for (size_t i = 0; i < servers.size(); ++i) {
      RunShard(servers[i], options.replay, shard_obs[i], i, result.servers[i]);
    }
  } else {
    // Span labels must outlive the tasks; keep them alive past the join.
    std::vector<std::string> labels;
    labels.reserve(servers.size());
    for (const FleetServer& server : servers) {
      labels.push_back("fleet." + (server.name.empty() ? "server" : server.name));
    }
    exec::Latch done(servers.size());
    for (size_t i = 0; i < servers.size(); ++i) {
      pool->Submit(
          [&servers, &options, &shard_obs, &result, &done, i] {
            RunShard(servers[i], options.replay, shard_obs[i], i, result.servers[i]);
            done.CountDown();
          },
          labels[i].c_str());
    }
    done.Wait();
  }
  // Flush worker spans before appending shard lanes so the event order is
  // (workers, then shards) -- deterministic either way, but only for a pool
  // this run owns; an external pool flushes at its own shutdown.
  if (owned_pool.has_value()) {
    owned_pool->Shutdown();
  }

  result.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  // Deterministic merge, in server order.
  for (size_t i = 0; i < servers.size(); ++i) {
    result.totals.Add(result.servers[i].totals);
    result.steady.Add(result.servers[i].steady);
    if (shard_obs[i].metrics.has_value()) {
      options.replay.metrics->MergeFrom(*shard_obs[i].metrics);
    }
    if (shard_obs[i].series.has_value()) {
      options.replay.series->MergeFrom(*shard_obs[i].series);
    }
    if (shard_obs[i].sink.has_value()) {
      options.replay.trace_sink->Append(*shard_obs[i].sink,
                                        obs::kFleetTidBase + static_cast<int>(i));
    }
    if (shard_obs[i].flight.has_value()) {
      // Re-record shard rings into the caller's ring in server order: the
      // merged ring holds the tail of the concatenated per-shard streams,
      // identically at every thread count (the shape RunFleet(threads=1)
      // produces too).
      for (const obs::DecisionRecord& record : shard_obs[i].flight->Snapshot()) {
        options.replay.flight->Record(record);
      }
      for (obs::FlightCapture& capture : shard_obs[i].captures) {
        if (options.replay.flight_captures != nullptr) {
          options.replay.flight_captures->push_back(std::move(capture));
        }
      }
    }
  }
  return result;
}

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void HashU64(uint64_t value, uint64_t* hash) {
  for (int shift = 0; shift < 64; shift += 8) {
    *hash = (*hash ^ ((value >> shift) & 0xFF)) * kFnvPrime;
  }
}

void HashDouble(double value, uint64_t* hash) { HashU64(std::bit_cast<uint64_t>(value), hash); }

void HashTotals(const ReplayTotals& totals, uint64_t* hash) {
  HashU64(totals.requests, hash);
  HashU64(totals.served_requests, hash);
  HashU64(totals.redirected_requests, hash);
  HashU64(totals.requested_bytes, hash);
  HashU64(totals.served_bytes, hash);
  HashU64(totals.redirected_bytes, hash);
  HashU64(totals.filled_bytes, hash);
  HashU64(totals.evicted_chunks, hash);
  HashU64(totals.requested_chunks, hash);
  HashU64(totals.filled_chunks, hash);
  HashU64(totals.redirected_chunks, hash);
  HashU64(totals.proactive_filled_chunks, hash);
  HashU64(totals.unavailable_requests, hash);
  HashU64(totals.unavailable_bytes, hash);
  HashU64(totals.unavailable_chunks, hash);
}

}  // namespace

uint64_t FleetDigest(const FleetResult& result) {
  uint64_t hash = kFnvOffset;
  HashTotals(result.totals, &hash);
  HashTotals(result.steady, &hash);
  for (const ReplayResult& server : result.servers) {
    HashTotals(server.totals, &hash);
    HashTotals(server.steady, &hash);
    HashDouble(server.efficiency, &hash);
    HashDouble(server.ingress_fraction, &hash);
    HashDouble(server.redirect_fraction, &hash);
    for (const SeriesPoint& point : server.series) {
      HashDouble(point.bucket_start, &hash);
      HashU64(point.requested_bytes, &hash);
      HashU64(point.served_bytes, &hash);
      HashU64(point.redirected_bytes, &hash);
      HashU64(point.filled_bytes, &hash);
      HashU64(point.unavailable_bytes, &hash);
    }
  }
  return hash;
}

}  // namespace vcdn::sim
