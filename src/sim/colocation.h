// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Co-located server simulation (paper footnote 2): dividing the file ID
// space over co-located servers with hash-mod bucketization "is a feasible
// (and recommended) practice ... to balance load and minimize co-located
// duplicates". This module splits one site's request stream across N
// co-located caches either by video-ID hash (the recommended practice) or
// uniformly at random (the strawman), and reports the aggregate effect:
// hash-mod keeps each video on exactly one server (no duplicate storage, a
// coherent popularity signal per server), while random splitting duplicates
// hot content on every server and dilutes each server's view of popularity.

#ifndef VCDN_SRC_SIM_COLOCATION_H_
#define VCDN_SRC_SIM_COLOCATION_H_

#include <cstdint>
#include <vector>

#include "src/core/cache_algorithm.h"
#include "src/core/cache_factory.h"
#include "src/sim/replay.h"
#include "src/trace/request.h"

namespace vcdn::sim {

enum class ColocationPolicy {
  kHashMod,  // server = hash(video id) mod N (footnote 2's recommendation)
  kRandom,   // server chosen uniformly per request (strawman)
};

struct ColocationConfig {
  size_t num_servers = 4;
  ColocationPolicy policy = ColocationPolicy::kHashMod;
  core::CacheKind kind = core::CacheKind::kCafe;
  // Per-server cache config; total site disk = num_servers * this capacity.
  core::CacheConfig per_server_config;
  ReplayOptions replay;
  uint64_t seed = 1;  // for the random policy
};

struct ColocationResult {
  std::vector<ReplayResult> servers;

  // Steady-state aggregates over all co-located servers.
  ReplayTotals combined;
  double combined_efficiency = 0.0;
  double combined_ingress_fraction = 0.0;
  double combined_redirect_fraction = 0.0;
  // max-over-servers / mean requested bytes (1.0 = perfectly balanced).
  double load_imbalance = 1.0;
};

// Splits the site trace per the policy and replays each shard on its own
// cache instance.
ColocationResult RunColocated(const trace::Trace& site_trace, const ColocationConfig& config);

}  // namespace vcdn::sim

#endif  // VCDN_SRC_SIM_COLOCATION_H_
