// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// The determinism bridge between the live edge-server daemon (src/net) and
// the offline replayer: both sides fold the per-request outcome stream into
// the same FNV-1a digest, so "the daemon served exactly the decisions the
// simulator would have" is a single uint64 comparison. Mirrors the
// discipline sim::FleetDigest enforces for parallel replays
// (docs/PARALLELISM.md); the network variant is documented in
// docs/NETWORKING.md.
//
// The fold covers every deterministic field of an outcome -- decision,
// served-from tier, requested bytes, hit/filled/evicted chunk counts -- in
// request order. With one shard and one connection the daemon handles
// requests in exactly trace order, so the digests must match bit for bit at
// any pool thread count.

#ifndef VCDN_SRC_SIM_DECISION_DIGEST_H_
#define VCDN_SRC_SIM_DECISION_DIGEST_H_

#include <cstdint>

#include "src/core/cache_algorithm.h"
#include "src/core/cache_factory.h"
#include "src/trace/request.h"

namespace vcdn::sim {

// Which line of defense served a request (the paper's tiers: RAM/disk in
// front of origin). Derived from the outcome so both the daemon's response
// encoder and the offline fold compute it identically.
enum class ServedTier : uint8_t {
  kDisk = 0,        // served, every requested chunk already on disk
  kDiskFill = 1,    // served after ingressing at least one chunk from origin
  kRedirect = 2,    // 302 to an alternative server
  kUnavailable = 3  // never reached the cache (outage / drain)
};

inline ServedTier ServedTierOf(const core::RequestOutcome& outcome) {
  switch (outcome.decision) {
    case core::Decision::kServe:
      return outcome.filled_chunks == 0 ? ServedTier::kDisk : ServedTier::kDiskFill;
    case core::Decision::kRedirect:
      return ServedTier::kRedirect;
    case core::Decision::kUnavailable:
      return ServedTier::kUnavailable;
  }
  return ServedTier::kUnavailable;
}

// Order-sensitive FNV-1a accumulator over outcome streams. Fold the fields
// either from a core::RequestOutcome (offline replay, daemon shard) or from
// the equivalent wire-response fields (load-generator client); the two
// spellings are defined to fold identical byte sequences.
class OutcomeDigest {
 public:
  void Fold(const core::RequestOutcome& outcome) {
    FoldFields(static_cast<uint8_t>(outcome.decision),
               static_cast<uint8_t>(ServedTierOf(outcome)), outcome.requested_bytes,
               outcome.hit_chunks, outcome.filled_chunks, outcome.evicted_chunks);
  }

  // The wire-side spelling: exactly the fields a net::ResponseFrame carries.
  void FoldFields(uint8_t decision, uint8_t tier, uint64_t requested_bytes, uint32_t hit_chunks,
                  uint32_t filled_chunks, uint32_t evicted_chunks) {
    FoldByte(decision);
    FoldByte(tier);
    FoldU64(requested_bytes);
    FoldU64(hit_chunks);
    FoldU64(filled_chunks);
    FoldU64(evicted_chunks);
    ++count_;
  }

  uint64_t value() const { return hash_; }
  uint64_t count() const { return count_; }

 private:
  static constexpr uint64_t kOffset = 1469598103934665603ULL;
  static constexpr uint64_t kPrime = 1099511628211ULL;

  void FoldByte(uint8_t byte) { hash_ = (hash_ ^ byte) * kPrime; }
  void FoldU64(uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      FoldByte(static_cast<uint8_t>((value >> shift) & 0xFF));
    }
  }

  uint64_t hash_ = kOffset;
  uint64_t count_ = 0;
};

// Replays `trace` through a fresh cache of the given kind/config offline
// (sim::Replay, no warmup split semantics involved -- the digest covers the
// whole stream) and returns the outcome digest. This is the reference value
// the loopback bridge compares the daemon-served digest against.
uint64_t ReplayOutcomeDigest(core::CacheKind kind, const core::CacheConfig& config,
                             const trace::Trace& trace, size_t batch_size = 16);

}  // namespace vcdn::sim

#endif  // VCDN_SRC_SIM_DECISION_DIGEST_H_
