// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/sim/colocation.h"

#include <algorithm>

#include "src/util/rng.h"

namespace vcdn::sim {

namespace {

// Stable 64-bit mix of the video id (splitmix-style finalizer), so shard
// assignment is reproducible and uncorrelated with id locality.
uint64_t MixVideoId(trace::VideoId id) {
  uint64_t z = id + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

ColocationResult RunColocated(const trace::Trace& site_trace, const ColocationConfig& config) {
  VCDN_CHECK(config.num_servers > 0);
  util::Pcg32 rng(config.seed, /*stream=*/77);

  // Shard the request stream.
  std::vector<trace::Trace> shards(config.num_servers);
  for (auto& shard : shards) {
    shard.duration = site_trace.duration;
  }
  for (const trace::Request& r : site_trace.requests) {
    size_t server;
    if (config.policy == ColocationPolicy::kHashMod) {
      server = static_cast<size_t>(MixVideoId(r.video) % config.num_servers);
    } else {
      server = static_cast<size_t>(rng.NextBounded(static_cast<uint32_t>(config.num_servers)));
    }
    shards[server].requests.push_back(r);
  }

  ColocationResult result;
  uint64_t max_requested = 0;
  uint64_t total_requested = 0;
  for (size_t s = 0; s < config.num_servers; ++s) {
    auto cache = core::MakeCache(config.kind, config.per_server_config);
    ReplayResult server_result = Replay(*cache, shards[s], config.replay);
    max_requested = std::max(max_requested, server_result.steady.requested_bytes);
    total_requested += server_result.steady.requested_bytes;

    // Aggregate steady-state counters.
    ReplayTotals& c = result.combined;
    const ReplayTotals& t = server_result.steady;
    c.requests += t.requests;
    c.served_requests += t.served_requests;
    c.redirected_requests += t.redirected_requests;
    c.requested_bytes += t.requested_bytes;
    c.served_bytes += t.served_bytes;
    c.redirected_bytes += t.redirected_bytes;
    c.filled_bytes += t.filled_bytes;
    c.evicted_chunks += t.evicted_chunks;
    c.requested_chunks += t.requested_chunks;
    c.filled_chunks += t.filled_chunks;
    c.redirected_chunks += t.redirected_chunks;
    c.proactive_filled_chunks += t.proactive_filled_chunks;

    result.servers.push_back(std::move(server_result));
  }

  core::CostModel cost(config.per_server_config.alpha_f2r);
  if (result.combined.requested_bytes > 0) {
    result.combined_efficiency = result.combined.Efficiency(cost);
    result.combined_ingress_fraction = result.combined.IngressFraction();
    result.combined_redirect_fraction = result.combined.RedirectFraction();
  }
  double mean_requested =
      static_cast<double>(total_requested) / static_cast<double>(config.num_servers);
  result.load_imbalance =
      mean_requested > 0.0 ? static_cast<double>(max_requested) / mean_requested : 1.0;
  return result;
}

}  // namespace vcdn::sim
