// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/sim/hierarchy.h"

#include <algorithm>
#include <iterator>
#include <optional>

#include "src/exec/strand.h"

namespace vcdn::sim {

namespace {

// A redirect captured at an edge, tagged with its origin so the parent's
// request stream can be merged deterministically: ordering by (arrival time,
// edge, sequence) reproduces exactly what the sequential concatenate-then-
// stable_sort produced.
struct TaggedRedirect {
  trace::Request request;
  size_t edge = 0;
  uint64_t seq = 0;
};

// Replays one edge with a local redirect capture and (when obs is on) local
// instruments, so edges can run concurrently and still merge exactly.
void RunEdge(const trace::Trace& edge_trace, const HierarchyConfig& config, size_t edge_index,
             obs::MetricsRegistry* local_metrics, obs::TraceEventSink* local_sink,
             ReplayResult& result_out, std::vector<TaggedRedirect>& redirects_out) {
  auto edge = core::MakeCache(config.edge_kind, config.edge_config);
  ReplayOptions options = config.replay;
  options.metrics = local_metrics;
  options.trace_sink = local_sink;
  uint64_t seq = 0;
  options.on_outcome = [&](const trace::Request& request, const core::RequestOutcome& outcome) {
    if (outcome.decision == core::Decision::kRedirect) {
      redirects_out.push_back(TaggedRedirect{request, edge_index, seq++});
    }
  };
  result_out = Replay(*edge, edge_trace, options);
}

}  // namespace

HierarchyResult RunHierarchy(const std::vector<trace::Trace>& edge_traces,
                             const HierarchyConfig& config) {
  VCDN_CHECK(!edge_traces.empty());
  // The hierarchy owns the replay loop's callbacks.
  VCDN_CHECK(config.replay.observer == nullptr);
  VCDN_CHECK(config.replay.on_outcome == nullptr);

  const size_t num_edges = edge_traces.size();
  HierarchyResult result;
  result.edges.resize(num_edges);

  // Per-edge local obs, merged in edge order below (identical for any thread
  // count; see docs/PARALLELISM.md).
  std::vector<std::optional<obs::MetricsRegistry>> edge_metrics(num_edges);
  std::vector<std::optional<obs::TraceEventSink>> edge_sinks(num_edges);
  for (size_t i = 0; i < num_edges; ++i) {
    if (config.replay.metrics != nullptr) {
      edge_metrics[i].emplace();
    }
    if (config.replay.trace_sink != nullptr) {
      edge_sinks[i].emplace();
    }
  }
  auto edge_metrics_ptr = [&](size_t i) {
    return edge_metrics[i].has_value() ? &*edge_metrics[i] : nullptr;
  };
  auto edge_sink_ptr = [&](size_t i) {
    return edge_sinks[i].has_value() ? &*edge_sinks[i] : nullptr;
  };

  exec::ThreadPool* pool = config.pool;
  std::optional<exec::ThreadPool> owned_pool;
  if (pool == nullptr && config.threads != 1) {
    exec::ThreadPoolOptions pool_options;
    pool_options.num_threads = config.threads;
    pool_options.metrics = config.replay.metrics;
    pool_options.trace_sink = config.replay.trace_sink;
    owned_pool.emplace(pool_options);
    pool = &*owned_pool;
  }

  // Phase 1: edges. Collect each edge's redirects, tagged for the merge.
  std::vector<TaggedRedirect> tagged;
  if (pool == nullptr) {
    for (size_t i = 0; i < num_edges; ++i) {
      std::vector<TaggedRedirect> local;
      RunEdge(edge_traces[i], config, i, edge_metrics_ptr(i), edge_sink_ptr(i), result.edges[i],
              local);
      tagged.insert(tagged.end(), std::make_move_iterator(local.begin()),
                    std::make_move_iterator(local.end()));
    }
  } else {
    // Everything that mutates second-tier state -- here, the shared redirect
    // accumulator -- goes through the strand; edge replays themselves run
    // concurrently on the pool.
    exec::Strand parent_strand(*pool);
    std::vector<std::vector<TaggedRedirect>> edge_redirects(num_edges);
    exec::Latch merged(num_edges);
    for (size_t i = 0; i < num_edges; ++i) {
      pool->Submit(
          [&, i] {
            RunEdge(edge_traces[i], config, i, edge_metrics_ptr(i), edge_sink_ptr(i),
                    result.edges[i], edge_redirects[i]);
            parent_strand.Post([&, i] {
              tagged.insert(tagged.end(), std::make_move_iterator(edge_redirects[i].begin()),
                            std::make_move_iterator(edge_redirects[i].end()));
              merged.CountDown();
            });
          },
          "hierarchy.edge");
    }
    merged.Wait();
  }

  // Deterministic time-ordered merge (ties broken by (edge, sequence), the
  // order the sequential stable_sort over in-order concatenation yields).
  std::sort(tagged.begin(), tagged.end(), [](const TaggedRedirect& a, const TaggedRedirect& b) {
    if (a.request.arrival_time != b.request.arrival_time) {
      return a.request.arrival_time < b.request.arrival_time;
    }
    if (a.edge != b.edge) {
      return a.edge < b.edge;
    }
    return a.seq < b.seq;
  });

  // Merge edge obs in edge order before the parent records anything.
  for (size_t i = 0; i < num_edges; ++i) {
    if (edge_metrics[i].has_value()) {
      config.replay.metrics->MergeFrom(*edge_metrics[i]);
    }
    if (edge_sinks[i].has_value()) {
      config.replay.trace_sink->Append(*edge_sinks[i], obs::kFleetTidBase + static_cast<int>(i));
    }
  }

  // Phase 2: parent sees the merged redirect stream.
  trace::Trace parent_trace;
  parent_trace.requests.reserve(tagged.size());
  for (TaggedRedirect& redirect : tagged) {
    parent_trace.requests.push_back(redirect.request);
  }
  double max_duration = 0.0;
  for (const trace::Trace& edge_trace : edge_traces) {
    max_duration = std::max(max_duration, edge_trace.duration);
  }
  parent_trace.duration = max_duration;

  auto run_parent = [&] {
    auto parent = core::MakeCache(config.parent_kind, config.parent_config);
    ReplayOptions options = config.replay;  // shared obs: parent runs alone
    result.parent = Replay(*parent, parent_trace, options);
  };
  if (pool == nullptr) {
    run_parent();
  } else {
    // The second tier stays strand-serialized in parallel mode.
    exec::Strand parent_strand(*pool);
    parent_strand.Async(run_parent).Get();
  }
  if (owned_pool.has_value()) {
    owned_pool->Shutdown();
  }

  // CDN-wide aggregates (steady-state windows).
  for (const ReplayResult& edge : result.edges) {
    result.requested_bytes += edge.steady.requested_bytes;
    result.edge_served_bytes += edge.steady.served_bytes;
    result.edge_filled_bytes += edge.steady.filled_bytes;
  }
  result.parent_served_bytes = result.parent.steady.served_bytes;
  result.parent_filled_bytes = result.parent.steady.filled_bytes;
  result.origin_bytes = result.parent.steady.redirected_bytes;
  if (result.requested_bytes > 0) {
    result.edge_hit_fraction =
        static_cast<double>(result.edge_served_bytes) / static_cast<double>(result.requested_bytes);
    result.cdn_hit_fraction =
        static_cast<double>(result.edge_served_bytes + result.parent_served_bytes) /
        static_cast<double>(result.requested_bytes);
  }
  return result;
}

}  // namespace vcdn::sim
