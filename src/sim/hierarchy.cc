// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/sim/hierarchy.h"

#include <algorithm>
#include <iterator>
#include <optional>
#include <string>
#include <utility>

#include "src/exec/strand.h"
#include "src/util/stats.h"

namespace vcdn::sim {

namespace {

// A redirect captured at an edge, tagged with its origin so the parent's
// request stream can be merged deterministically: ordering by (arrival time,
// edge, sequence) reproduces exactly what the sequential concatenate-then-
// stable_sort produced.
struct TaggedRedirect {
  trace::Request request;
  size_t edge = 0;
  uint64_t seq = 0;
};

// Everything one edge replay produces for the merge phase. Strictly
// edge-local while the replay runs; combined in edge order after the join.
struct EdgeCapture {
  std::vector<TaggedRedirect> redirects;
  // Per-bucket bytes this edge's outage windows pushed to the origin.
  util::BucketedSeries outage_series;
  // Steady-state cost of those bytes (outage_penalty x origin inflation).
  double outage_cost = 0.0;
  // The edge's covered time span, reported back so the parent phase can
  // size its window after the join (streamed edges have no trace to ask).
  double duration = 0.0;

  explicit EdgeCapture(double bucket_seconds) : outage_series(0.0, bucket_seconds) {}
};

// One edge's request source: a materialized trace or a stream factory,
// never both.
struct EdgeSource {
  const trace::Trace* trace = nullptr;
  const StreamFactory* factory = nullptr;
};

// Replays one edge with a local redirect capture and (when obs is on) local
// instruments, so edges can run concurrently and still merge exactly.
void RunEdge(const EdgeSource& source, const HierarchyConfig& config, size_t edge_index,
             obs::MetricsRegistry* local_metrics, obs::TraceEventSink* local_sink,
             obs::TimeSeriesRecorder* local_series, obs::FlightRecorder* local_flight,
             std::vector<obs::FlightCapture>* local_captures, ReplayResult& result_out,
             EdgeCapture& capture) {
  auto edge = core::MakeCache(config.edge_kind, config.edge_config);
  ReplayOptions options = config.replay;
  options.metrics = local_metrics;
  options.trace_sink = local_sink;
  options.series = local_series;
  options.flight = local_flight;
  options.flight_captures = local_captures;
  options.flight_label = "edge" + std::to_string(edge_index);
  options.faults = config.faults;
  options.fault_target = edge_index;
  std::unique_ptr<trace::RequestStream> stream;
  if (source.trace == nullptr) {
    // Built on this edge's worker, so producer state lives with the edge.
    stream = (*source.factory)();
  }
  const double duration = source.trace != nullptr ? source.trace->duration : stream->duration();
  const double steady_start = duration * options.measurement_start_fraction;
  uint64_t seq = 0;
  options.on_outcome = [&](const trace::Request& request, const core::RequestOutcome& outcome) {
    if (outcome.decision == core::Decision::kRedirect) {
      capture.redirects.push_back(TaggedRedirect{request, edge_index, seq++});
    } else if (outcome.decision == core::Decision::kUnavailable) {
      // Edge down: the origin serves this request directly, at a penalty.
      auto bytes = static_cast<double>(outcome.requested_bytes);
      capture.outage_series.Add(request.arrival_time, bytes);
      if (request.arrival_time >= steady_start) {
        capture.outage_cost += bytes * config.outage_penalty *
                               config.faults->OriginCostFactor(request.arrival_time);
      }
    }
  };
  result_out = source.trace != nullptr ? Replay(*edge, *source.trace, options)
                                       : ReplayStream(*edge, *stream, options);
  capture.duration = duration;
}

HierarchyResult RunHierarchyImpl(const std::vector<EdgeSource>& edge_sources,
                                 const HierarchyConfig& config) {
  VCDN_CHECK(!edge_sources.empty());
  // The hierarchy owns the replay loop's callbacks and the fault wiring.
  VCDN_CHECK(config.replay.observer == nullptr);
  VCDN_CHECK(config.replay.on_outcome == nullptr);
  VCDN_CHECK(config.replay.faults == nullptr);

  const size_t num_edges = edge_sources.size();
  HierarchyResult result;
  result.edges.resize(num_edges);

  // Per-edge local obs, merged in edge order below (identical for any thread
  // count; see docs/PARALLELISM.md).
  std::vector<std::optional<obs::MetricsRegistry>> edge_metrics(num_edges);
  std::vector<std::optional<obs::TraceEventSink>> edge_sinks(num_edges);
  std::vector<std::optional<obs::TimeSeriesRecorder>> edge_series(num_edges);
  std::vector<std::optional<obs::FlightRecorder>> edge_flights(num_edges);
  std::vector<std::vector<obs::FlightCapture>> edge_captures(num_edges);
  if (config.replay.series != nullptr) {
    VCDN_CHECK(config.replay.metrics != nullptr);
  }
  for (size_t i = 0; i < num_edges; ++i) {
    if (config.replay.metrics != nullptr) {
      edge_metrics[i].emplace();
      if (config.replay.series != nullptr) {
        edge_series[i].emplace(&*edge_metrics[i]);
      }
    }
    if (config.replay.trace_sink != nullptr) {
      edge_sinks[i].emplace();
    }
    if (config.replay.flight != nullptr) {
      edge_flights[i].emplace(config.replay.flight->capacity());
    }
  }
  auto edge_metrics_ptr = [&](size_t i) {
    return edge_metrics[i].has_value() ? &*edge_metrics[i] : nullptr;
  };
  auto edge_sink_ptr = [&](size_t i) {
    return edge_sinks[i].has_value() ? &*edge_sinks[i] : nullptr;
  };
  auto edge_series_ptr = [&](size_t i) {
    return edge_series[i].has_value() ? &*edge_series[i] : nullptr;
  };
  auto edge_flight_ptr = [&](size_t i) {
    return edge_flights[i].has_value() ? &*edge_flights[i] : nullptr;
  };
  auto edge_captures_ptr = [&](size_t i) {
    return edge_flights[i].has_value() ? &edge_captures[i] : nullptr;
  };

  exec::ThreadPool* pool = config.pool;
  std::optional<exec::ThreadPool> owned_pool;
  if (pool == nullptr && config.threads != 1) {
    exec::ThreadPoolOptions pool_options;
    pool_options.num_threads = config.threads;
    pool_options.metrics = config.replay.metrics;
    pool_options.trace_sink = config.replay.trace_sink;
    owned_pool.emplace(pool_options);
    pool = &*owned_pool;
  }

  // Phase 1: edges. Each replay writes only its own EdgeCapture, so edges
  // run concurrently; all combining happens after the join, in edge order.
  std::vector<EdgeCapture> captures;
  captures.reserve(num_edges);
  for (size_t i = 0; i < num_edges; ++i) {
    captures.emplace_back(config.replay.bucket_seconds);
  }
  if (pool == nullptr) {
    for (size_t i = 0; i < num_edges; ++i) {
      RunEdge(edge_sources[i], config, i, edge_metrics_ptr(i), edge_sink_ptr(i),
              edge_series_ptr(i), edge_flight_ptr(i), edge_captures_ptr(i), result.edges[i],
              captures[i]);
    }
  } else {
    exec::Latch done(num_edges);
    for (size_t i = 0; i < num_edges; ++i) {
      pool->Submit(
          [&, i] {
            RunEdge(edge_sources[i], config, i, edge_metrics_ptr(i), edge_sink_ptr(i),
                    edge_series_ptr(i), edge_flight_ptr(i), edge_captures_ptr(i),
                    result.edges[i], captures[i]);
            done.CountDown();
          },
          "hierarchy.edge");
    }
    done.Wait();
  }
  // Known only now for streamed edges (each reported its stream's span).
  double max_duration = 0.0;
  for (const EdgeCapture& capture : captures) {
    max_duration = std::max(max_duration, capture.duration);
  }
  std::vector<TaggedRedirect> tagged;
  for (EdgeCapture& capture : captures) {
    tagged.insert(tagged.end(), std::make_move_iterator(capture.redirects.begin()),
                  std::make_move_iterator(capture.redirects.end()));
    capture.redirects.clear();
  }

  // Deterministic time-ordered merge (ties broken by (edge, sequence), the
  // order the sequential stable_sort over in-order concatenation yields).
  std::sort(tagged.begin(), tagged.end(), [](const TaggedRedirect& a, const TaggedRedirect& b) {
    if (a.request.arrival_time != b.request.arrival_time) {
      return a.request.arrival_time < b.request.arrival_time;
    }
    if (a.edge != b.edge) {
      return a.edge < b.edge;
    }
    return a.seq < b.seq;
  });

  // Merge edge obs in edge order before the parent records anything.
  for (size_t i = 0; i < num_edges; ++i) {
    if (edge_metrics[i].has_value()) {
      config.replay.metrics->MergeFrom(*edge_metrics[i]);
    }
    if (edge_series[i].has_value()) {
      config.replay.series->MergeFrom(*edge_series[i]);
    }
    if (edge_sinks[i].has_value()) {
      config.replay.trace_sink->Append(*edge_sinks[i], obs::kFleetTidBase + static_cast<int>(i));
    }
    if (edge_flights[i].has_value()) {
      for (const obs::DecisionRecord& record : edge_flights[i]->Snapshot()) {
        config.replay.flight->Record(record);
      }
      if (config.replay.flight_captures != nullptr) {
        for (obs::FlightCapture& capture : edge_captures[i]) {
          config.replay.flight_captures->push_back(std::move(capture));
        }
      }
    }
  }

  // Phase 2: parent sees the merged redirect stream. Redirects arriving in a
  // parent-outage window fall through to the origin right here -- they never
  // enter the parent cache, so its state is exactly what an operator would
  // see after the site came back.
  const double parent_steady_start = max_duration * config.replay.measurement_start_fraction;
  util::BucketedSeries fallthrough_series(0.0, config.replay.bucket_seconds);
  uint64_t parent_fallthrough_bytes = 0;
  double fallthrough_cost = 0.0;
  trace::Trace parent_trace;
  parent_trace.requests.reserve(tagged.size());
  for (TaggedRedirect& redirect : tagged) {
    const double t = redirect.request.arrival_time;
    if (config.faults != nullptr && config.faults->ParentDown(t)) {
      const uint64_t bytes = redirect.request.size_bytes();
      fallthrough_series.Add(t, static_cast<double>(bytes));
      if (t >= parent_steady_start) {
        parent_fallthrough_bytes += bytes;
        fallthrough_cost += static_cast<double>(bytes) * config.outage_penalty *
                            config.faults->OriginCostFactor(t);
      }
      continue;
    }
    parent_trace.requests.push_back(redirect.request);
  }
  parent_trace.duration = max_duration;

  double parent_origin_cost = 0.0;
  auto run_parent = [&] {
    auto parent = core::MakeCache(config.parent_kind, config.parent_config);
    ReplayOptions options = config.replay;  // shared obs: parent runs alone
    // The series stays edge-tier-only: the caller's recorder baselines the
    // shared registry, which at this point already holds the merged edge
    // counts -- snapshotting it from the parent replay would fold the whole
    // edge tier into the parent's first window.
    options.series = nullptr;
    // The shared flight ring is safe here (the parent runs alone, after the
    // edge rings merged), so parent decisions land at the tail -- exactly
    // where a sequential two-tier replay would put them.
    options.flight_label = "parent";
    if (config.faults != nullptr) {
      options.faults = config.faults;
      options.fault_target = fault::kParentTarget;
      // Charge planned parent->origin redirects at the schedule's inflation
      // (no outage penalty: these are the normal third line of defense).
      options.on_outcome = [&](const trace::Request& request,
                               const core::RequestOutcome& outcome) {
        if (outcome.decision == core::Decision::kRedirect &&
            request.arrival_time >= parent_steady_start) {
          parent_origin_cost += static_cast<double>(outcome.requested_bytes) *
                                config.faults->OriginCostFactor(request.arrival_time);
        }
      };
    }
    result.parent = Replay(*parent, parent_trace, options);
  };
  if (pool == nullptr) {
    run_parent();
  } else {
    // The second tier stays strand-serialized in parallel mode.
    exec::Strand parent_strand(*pool);
    parent_strand.Async(run_parent).Get();
  }
  if (owned_pool.has_value()) {
    owned_pool->Shutdown();
  }

  // CDN-wide aggregates (steady-state windows).
  for (const ReplayResult& edge : result.edges) {
    result.requested_bytes += edge.steady.requested_bytes;
    result.edge_served_bytes += edge.steady.served_bytes;
    result.edge_filled_bytes += edge.steady.filled_bytes;
    result.edge_unavailable_bytes += edge.steady.unavailable_bytes;
  }
  result.parent_served_bytes = result.parent.steady.served_bytes;
  result.parent_filled_bytes = result.parent.steady.filled_bytes;
  result.parent_outage_bytes = parent_fallthrough_bytes + result.parent.steady.unavailable_bytes;
  // Everything the CDN could not absorb lands on the origin, so byte
  // conservation holds with or without fault injection.
  result.origin_bytes = result.parent.steady.redirected_bytes + result.edge_unavailable_bytes +
                        result.parent_outage_bytes;
  if (result.requested_bytes > 0) {
    result.edge_hit_fraction =
        static_cast<double>(result.edge_served_bytes) / static_cast<double>(result.requested_bytes);
    result.cdn_hit_fraction =
        static_cast<double>(result.edge_served_bytes + result.parent_served_bytes) /
        static_cast<double>(result.requested_bytes);
    result.availability = 1.0 - static_cast<double>(result.edge_unavailable_bytes +
                                                    result.parent_outage_bytes) /
                                    static_cast<double>(result.requested_bytes);
  }

  // Degraded-mode cost and per-bucket outage-origin series (fixed summation
  // order: edges in index order, then the parent fallthrough stream).
  if (config.faults != nullptr) {
    double origin_cost = parent_origin_cost + fallthrough_cost;
    size_t num_buckets = fallthrough_series.num_buckets();
    for (const EdgeCapture& capture : captures) {
      origin_cost += capture.outage_cost;
      num_buckets = std::max(num_buckets, capture.outage_series.num_buckets());
    }
    result.origin_cost = origin_cost;
    result.outage_origin_series.assign(num_buckets, 0.0);
    for (const EdgeCapture& capture : captures) {
      for (size_t b = 0; b < capture.outage_series.num_buckets(); ++b) {
        result.outage_origin_series[b] += capture.outage_series.sum(b);
      }
    }
    for (size_t b = 0; b < fallthrough_series.num_buckets(); ++b) {
      result.outage_origin_series[b] += fallthrough_series.sum(b);
    }
    for (const ReplayResult& edge : result.edges) {
      result.faults.Add(edge.faults);
    }
    result.faults.Add(result.parent.faults);
  } else {
    result.origin_cost = static_cast<double>(result.origin_bytes);
  }
  return result;
}

}  // namespace

HierarchyResult RunHierarchy(const std::vector<trace::Trace>& edge_traces,
                             const HierarchyConfig& config) {
  std::vector<EdgeSource> sources(edge_traces.size());
  for (size_t i = 0; i < edge_traces.size(); ++i) {
    sources[i].trace = &edge_traces[i];
  }
  return RunHierarchyImpl(sources, config);
}

HierarchyResult RunHierarchy(const std::vector<StreamFactory>& edge_streams,
                             const HierarchyConfig& config) {
  std::vector<EdgeSource> sources(edge_streams.size());
  for (size_t i = 0; i < edge_streams.size(); ++i) {
    VCDN_CHECK(edge_streams[i] != nullptr);
    sources[i].factory = &edge_streams[i];
  }
  return RunHierarchyImpl(sources, config);
}

}  // namespace vcdn::sim
