// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/sim/hierarchy.h"

#include <algorithm>

namespace vcdn::sim {

HierarchyResult RunHierarchy(const std::vector<trace::Trace>& edge_traces,
                             const HierarchyConfig& config) {
  VCDN_CHECK(!edge_traces.empty());
  HierarchyResult result;

  // Phase 1: edges. Collect each edge's redirected requests.
  trace::Trace parent_trace;
  double max_duration = 0.0;
  for (const trace::Trace& edge_trace : edge_traces) {
    auto edge = core::MakeCache(config.edge_kind, config.edge_config);
    edge->Prepare(edge_trace);
    MetricsCollector collector(config.edge_config.chunk_bytes,
                               edge_trace.duration * config.replay.measurement_start_fraction,
                               config.replay.bucket_seconds);
    for (const trace::Request& request : edge_trace.requests) {
      core::RequestOutcome outcome = edge->HandleRequest(request);
      collector.Record(request.arrival_time, outcome);
      if (outcome.decision == core::Decision::kRedirect) {
        parent_trace.requests.push_back(request);
      }
    }
    ReplayResult edge_result;
    edge_result.cache_name = std::string(edge->name());
    edge_result.alpha_f2r = config.edge_config.alpha_f2r;
    edge_result.totals = collector.totals();
    edge_result.steady = collector.steady();
    edge_result.series = collector.Series();
    edge_result.efficiency = edge_result.steady.Efficiency(edge->cost_model());
    edge_result.ingress_fraction = edge_result.steady.IngressFraction();
    edge_result.redirect_fraction = edge_result.steady.RedirectFraction();
    result.edges.push_back(std::move(edge_result));
    max_duration = std::max(max_duration, edge_trace.duration);
  }

  // Phase 2: parent sees the time-ordered merge of all edge redirects.
  std::stable_sort(parent_trace.requests.begin(), parent_trace.requests.end(),
                   [](const trace::Request& a, const trace::Request& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  parent_trace.duration = max_duration;
  {
    auto parent = core::MakeCache(config.parent_kind, config.parent_config);
    parent->Prepare(parent_trace);
    MetricsCollector collector(config.parent_config.chunk_bytes,
                               parent_trace.duration * config.replay.measurement_start_fraction,
                               config.replay.bucket_seconds);
    for (const trace::Request& request : parent_trace.requests) {
      core::RequestOutcome outcome = parent->HandleRequest(request);
      collector.Record(request.arrival_time, outcome);
    }
    result.parent.cache_name = std::string(parent->name());
    result.parent.alpha_f2r = config.parent_config.alpha_f2r;
    result.parent.totals = collector.totals();
    result.parent.steady = collector.steady();
    result.parent.series = collector.Series();
    result.parent.efficiency = result.parent.steady.Efficiency(parent->cost_model());
    result.parent.ingress_fraction = result.parent.steady.IngressFraction();
    result.parent.redirect_fraction = result.parent.steady.RedirectFraction();
  }

  // CDN-wide aggregates (steady-state windows).
  for (const ReplayResult& edge : result.edges) {
    result.requested_bytes += edge.steady.requested_bytes;
    result.edge_served_bytes += edge.steady.served_bytes;
    result.edge_filled_bytes += edge.steady.filled_bytes;
  }
  result.parent_served_bytes = result.parent.steady.served_bytes;
  result.parent_filled_bytes = result.parent.steady.filled_bytes;
  result.origin_bytes = result.parent.steady.redirected_bytes;
  if (result.requested_bytes > 0) {
    result.edge_hit_fraction =
        static_cast<double>(result.edge_served_bytes) / static_cast<double>(result.requested_bytes);
    result.cdn_hit_fraction =
        static_cast<double>(result.edge_served_bytes + result.parent_served_bytes) /
        static_cast<double>(result.requested_bytes);
  }
  return result;
}

}  // namespace vcdn::sim
