// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/sim/metrics.h"

#include <algorithm>

namespace vcdn::sim {

void ReplayTotals::Accumulate(const core::RequestOutcome& outcome, uint64_t chunk_bytes) {
  ++requests;
  requested_bytes += outcome.requested_bytes;
  requested_chunks += outcome.requested_chunks;
  if (outcome.decision == core::Decision::kServe) {
    ++served_requests;
    served_bytes += outcome.requested_bytes;
    filled_bytes += static_cast<uint64_t>(outcome.filled_chunks) * chunk_bytes;
    filled_chunks += outcome.filled_chunks;
  } else if (outcome.decision == core::Decision::kUnavailable) {
    ++unavailable_requests;
    unavailable_bytes += outcome.requested_bytes;
    unavailable_chunks += outcome.requested_chunks;
  } else {
    ++redirected_requests;
    redirected_bytes += outcome.requested_bytes;
    redirected_chunks += outcome.requested_chunks;
  }
  // Proactive prefetches are ingress regardless of this request's decision.
  filled_bytes += static_cast<uint64_t>(outcome.proactive_filled_chunks) * chunk_bytes;
  filled_chunks += outcome.proactive_filled_chunks;
  proactive_filled_chunks += outcome.proactive_filled_chunks;
  evicted_chunks += outcome.evicted_chunks;
}

void ReplayTotals::Add(const ReplayTotals& other) {
  requests += other.requests;
  served_requests += other.served_requests;
  redirected_requests += other.redirected_requests;
  requested_bytes += other.requested_bytes;
  served_bytes += other.served_bytes;
  redirected_bytes += other.redirected_bytes;
  filled_bytes += other.filled_bytes;
  evicted_chunks += other.evicted_chunks;
  requested_chunks += other.requested_chunks;
  filled_chunks += other.filled_chunks;
  redirected_chunks += other.redirected_chunks;
  proactive_filled_chunks += other.proactive_filled_chunks;
  unavailable_requests += other.unavailable_requests;
  unavailable_bytes += other.unavailable_bytes;
  unavailable_chunks += other.unavailable_chunks;
}

double ReplayTotals::ChunkEfficiency(const core::CostModel& cost) const {
  if (requested_chunks == 0) {
    return 0.0;
  }
  return cost.Efficiency(filled_chunks, redirected_chunks + unavailable_chunks, requested_chunks);
}

double ReplayTotals::Efficiency(const core::CostModel& cost) const {
  if (requested_bytes == 0) {
    return 0.0;
  }
  return cost.Efficiency(filled_bytes, redirected_bytes + unavailable_bytes, requested_bytes);
}

double ReplayTotals::IngressFraction() const {
  if (filled_bytes == 0) {
    return 0.0;
  }
  if (served_bytes == 0) {
    // Fills without egress (proactive fills while every request redirected):
    // the egress-normalized ratio is undefined, so report ingress per
    // requested byte instead of silently returning 0.
    return requested_bytes == 0
               ? 0.0
               : static_cast<double>(filled_bytes) / static_cast<double>(requested_bytes);
  }
  return static_cast<double>(filled_bytes) / static_cast<double>(served_bytes);
}

double ReplayTotals::RedirectFraction() const {
  if (requested_bytes == 0) {
    return 0.0;
  }
  return static_cast<double>(redirected_bytes) / static_cast<double>(requested_bytes);
}

double ReplayTotals::Availability() const {
  if (requests == 0) {
    return 1.0;
  }
  return 1.0 - static_cast<double>(unavailable_requests) / static_cast<double>(requests);
}

MetricsCollector::MetricsCollector(uint64_t chunk_bytes, double measurement_start,
                                   double bucket_seconds)
    : chunk_bytes_(chunk_bytes),
      measurement_start_(measurement_start),
      requested_(0.0, bucket_seconds),
      served_(0.0, bucket_seconds),
      redirected_(0.0, bucket_seconds),
      filled_(0.0, bucket_seconds),
      unavailable_(0.0, bucket_seconds) {}

void MetricsCollector::Record(double arrival_time, const core::RequestOutcome& outcome) {
  totals_.Accumulate(outcome, chunk_bytes_);
  if (arrival_time >= measurement_start_) {
    steady_.Accumulate(outcome, chunk_bytes_);
  }
  auto bytes = static_cast<double>(outcome.requested_bytes);
  requested_.Add(arrival_time, bytes);
  if (outcome.decision == core::Decision::kServe) {
    served_.Add(arrival_time, bytes);
    filled_.Add(arrival_time,
                static_cast<double>(static_cast<uint64_t>(outcome.filled_chunks) * chunk_bytes_));
  } else if (outcome.decision == core::Decision::kUnavailable) {
    unavailable_.Add(arrival_time, bytes);
  } else {
    redirected_.Add(arrival_time, bytes);
  }
  if (outcome.proactive_filled_chunks > 0) {
    filled_.Add(arrival_time,
                static_cast<double>(static_cast<uint64_t>(outcome.proactive_filled_chunks) *
                                    chunk_bytes_));
  }
}

std::vector<SeriesPoint> MetricsCollector::Series() const {
  size_t n = std::max({requested_.num_buckets(), served_.num_buckets(), redirected_.num_buckets(),
                       filled_.num_buckets(), unavailable_.num_buckets()});
  std::vector<SeriesPoint> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i].bucket_start = requested_.bucket_start(i);
    out[i].requested_bytes = static_cast<uint64_t>(requested_.sum(i));
    out[i].served_bytes = static_cast<uint64_t>(served_.sum(i));
    out[i].redirected_bytes = static_cast<uint64_t>(redirected_.sum(i));
    out[i].filled_bytes = static_cast<uint64_t>(filled_.sum(i));
    out[i].unavailable_bytes = static_cast<uint64_t>(unavailable_.sum(i));
  }
  return out;
}

}  // namespace vcdn::sim
