// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Trace replay: drives a CacheAlgorithm over a request log and produces the
// paper's metrics (Sec. 9 methodology). Optionally observable: pass a
// MetricsRegistry / TraceEventSink / ReplayObserver via ReplayOptions to get
// live instruments, profiling spans and per-bucket progress callbacks; all
// three default to off and cost nothing when absent.

#ifndef VCDN_SRC_SIM_REPLAY_H_
#define VCDN_SRC_SIM_REPLAY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cache_algorithm.h"
#include "src/fault/fault.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/time_series.h"
#include "src/obs/trace_event.h"
#include "src/sim/metrics.h"
#include "src/trace/request.h"
#include "src/trace/request_stream.h"

namespace vcdn::sim {

// Progress snapshot handed to ReplayObserver callbacks. The references point
// at the replay's live accounting and are only valid during the callback.
struct ReplayProgress {
  uint64_t requests_processed = 0;
  uint64_t total_requests = 0;
  // Arrival time of the most recently processed request.
  double sim_time = 0.0;
  // Wall-clock seconds since the replay loop started, and the resulting
  // throughput (requests/sec of host time, not simulated time).
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
  // Running whole-trace totals (warmup included).
  const ReplayTotals* totals = nullptr;
};

// Callback interface for streaming replay progress (benches, examples,
// future dashboards) without touching the replay loop itself.
class ReplayObserver {
 public:
  virtual ~ReplayObserver() = default;
  // Called once per completed time-series bucket -- i.e. when a request
  // arrives in a later bucket than its predecessor -- and once more after
  // the final request. Never called for an empty trace.
  virtual void OnBucketEnd(const ReplayProgress& progress) = 0;
};

struct ReplayOptions {
  // Steady-state measurement starts at this fraction of the trace duration
  // (the paper averages over the second half of the month).
  double measurement_start_fraction = 0.5;
  // Time-series bucket width (Fig. 3 plots are hourly).
  double bucket_seconds = 3600.0;
  // How many consecutive requests are accumulated into one
  // CacheAlgorithm::HandleRequestBatch call (1 disables batching). Batches
  // are cut at bucket flushes, fault boundaries and outage windows, so every
  // observable -- outcomes, collector totals, series, metrics snapshots,
  // on_outcome order, fleet digests -- is bit-identical at any batch size;
  // larger batches only let the cache overlap independent memory accesses
  // (see CafeCacheT::HandleRequestBatchImpl).
  size_t batch_size = 16;

  // --- observability (all optional) ---
  // Attached to the cache (AttachMetrics) and to the replay's own
  // instruments ("sim.replay.*").
  obs::MetricsRegistry* metrics = nullptr;
  // Receives scoped-timer spans ("replay.prepare", "replay.loop") and, when
  // `metrics` is also set, a registry snapshot at every bucket flush.
  obs::TraceEventSink* trace_sink = nullptr;
  // Per-bucket progress callbacks.
  ReplayObserver* observer = nullptr;
  // Windowed time-series over `metrics`: EndWindow is called at every bucket
  // flush (window edges are the bucket edges, so per-shard recorders align
  // and merge exactly -- see src/obs/time_series.h). Requires `metrics`; the
  // recorder must be constructed over the same registry.
  obs::TimeSeriesRecorder* series = nullptr;
  // Per-request decision ring (see src/obs/flight_recorder.h). Recording is
  // alloc-free; steady-state allocation stays zero with this enabled.
  obs::FlightRecorder* flight = nullptr;
  // With `flight` set: a deferred post-mortem capture of the ring is
  // appended here at every fault boundary (the moments worth dissecting).
  // Captures allocate, but boundaries are rare and never steady-state.
  // Written out by the caller after any parallel shards join, so shards
  // never race on one output file.
  std::vector<obs::FlightCapture>* flight_captures = nullptr;
  // Label stamped into capture contexts ("server3", "edge0", ...).
  std::string flight_label;
  // Per-request callback, invoked after the cache handled the request and
  // the collector recorded the outcome. This is how the hierarchy captures
  // redirects for the parent tier without owning the replay loop. Costs one
  // bool test per request when unset. Also invoked for fault-injected
  // Decision::kUnavailable outcomes.
  std::function<void(const trace::Request&, const core::RequestOutcome&)> on_outcome;

  // --- fault injection (optional) ---
  // When set (and non-empty), a fault::FaultDriver applies the schedule's
  // events for `fault_target` as the replay clock passes them: requests in
  // outage windows become Decision::kUnavailable without touching the cache,
  // disk-degrade windows Resize() it, cold restarts DropContents(). The
  // schedule must outlive the replay and is shared read-only, so concurrent
  // shard replays stay deterministic. See docs/FAULTS.md.
  const fault::FaultSchedule* faults = nullptr;
  // Which schedule target this replay is: an edge/shard index, or
  // fault::kParentTarget for a parent-tier replay.
  size_t fault_target = 0;
};

struct ReplayResult {
  std::string cache_name;
  double alpha_f2r = 1.0;
  ReplayTotals totals;
  ReplayTotals steady;
  std::vector<SeriesPoint> series;

  // Steady-state summary metrics (Sec. 9 reporting convention).
  double efficiency = 0.0;
  double ingress_fraction = 0.0;
  double redirect_fraction = 0.0;
  // Whole-run fraction of requests the server was up for (1.0 without
  // fault injection), plus the fault driver's raw event accounting.
  double availability = 1.0;
  fault::FaultStats faults;

  // Wall-clock cost of the replay loop (excluding Prepare) and the resulting
  // host-time throughput.
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
};

// Replays the trace through the cache (calling Prepare first). Requests must
// be time-ordered.
ReplayResult Replay(core::CacheAlgorithm& cache, const trace::Trace& trace,
                    const ReplayOptions& options = {});

// Streaming replay: consumes a RequestStream in batch_size chunks without
// ever holding the full trace, so peak RSS is bounded by the producer's
// lookahead. Bit-identical to Replay() over the equivalent materialized
// trace -- outcomes, series, flight rings and digests -- at every thread
// count and batch size (see tests/sim_replay_stream_test.cc). Refuses
// offline algorithms (CacheAlgorithm::requires_full_trace), and CHECK-fails
// if the stream ends with a non-OK status (validate untrusted trace files
// up front via MmapTrace::Validate).
ReplayResult ReplayStream(core::CacheAlgorithm& cache, trace::RequestStream& stream,
                          const ReplayOptions& options = {});

// Builds a server's request stream on demand -- called on the replaying
// worker, so producer state (generator windows, mmap cursors) lives with the
// shard. Used by RunFleet / RunHierarchy as the streaming alternative to a
// materialized per-server Trace.
using StreamFactory = std::function<std::unique_ptr<trace::RequestStream>()>;

}  // namespace vcdn::sim

#endif  // VCDN_SRC_SIM_REPLAY_H_
