// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Trace replay: drives a CacheAlgorithm over a request log and produces the
// paper's metrics (Sec. 9 methodology).

#ifndef VCDN_SRC_SIM_REPLAY_H_
#define VCDN_SRC_SIM_REPLAY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/cache_algorithm.h"
#include "src/sim/metrics.h"
#include "src/trace/request.h"

namespace vcdn::sim {

struct ReplayOptions {
  // Steady-state measurement starts at this fraction of the trace duration
  // (the paper averages over the second half of the month).
  double measurement_start_fraction = 0.5;
  // Time-series bucket width (Fig. 3 plots are hourly).
  double bucket_seconds = 3600.0;
};

struct ReplayResult {
  std::string cache_name;
  double alpha_f2r = 1.0;
  ReplayTotals totals;
  ReplayTotals steady;
  std::vector<SeriesPoint> series;

  // Steady-state summary metrics (Sec. 9 reporting convention).
  double efficiency = 0.0;
  double ingress_fraction = 0.0;
  double redirect_fraction = 0.0;
};

// Replays the trace through the cache (calling Prepare first). Requests must
// be time-ordered.
ReplayResult Replay(core::CacheAlgorithm& cache, const trace::Trace& trace,
                    const ReplayOptions& options = {});

}  // namespace vcdn::sim

#endif  // VCDN_SRC_SIM_REPLAY_H_
