// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Two-tier CDN simulation: edge servers redirect their cache misses to a
// shared parent ("a higher level, larger serving site in a cache hierarchy,
// which captures redirects of its downstream servers", Sec. 2). This
// implements the paper's future-work direction of CDN-wide operation on top
// of per-server alpha_F2R-governed caches (Sec. 10).
//
// Mechanics: each edge replays its own trace; every redirected request is
// forwarded (same timestamp) to the parent, whose request stream is the
// time-ordered merge of all edge redirects. Whatever the parent redirects is
// served by the origin. The CDN-wide cost charges edge fills, parent fills
// and origin-served bytes with configurable per-tier costs.
//
// Parallel mode (threads != 1): the independent edge replays shard across an
// exec::ThreadPool; everything that touches the shared second tier -- the
// redirect accumulator and the parent replay itself -- is serialized through
// an exec::Strand. Results are bit-identical to the sequential run for any
// thread count: redirects are tagged (edge, sequence) and merged by
// (arrival time, edge, sequence), exactly the order the sequential
// stable_sort produces. See docs/PARALLELISM.md.

#ifndef VCDN_SRC_SIM_HIERARCHY_H_
#define VCDN_SRC_SIM_HIERARCHY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/cache_algorithm.h"
#include "src/core/cache_factory.h"
#include "src/exec/thread_pool.h"
#include "src/sim/replay.h"
#include "src/trace/request.h"

namespace vcdn::sim {

struct HierarchyConfig {
  core::CacheKind edge_kind = core::CacheKind::kCafe;
  core::CacheConfig edge_config;
  core::CacheKind parent_kind = core::CacheKind::kCafe;
  core::CacheConfig parent_config;  // typically a deeper cache, lower alpha
  // observer/on_outcome must be unset (the hierarchy owns the replay loop);
  // metrics/trace_sink receive the edge recordings merged in edge order,
  // then the parent's.
  ReplayOptions replay;
  // Edge-replay worker count: 1 (default) runs sequentially on the calling
  // thread, 0 selects hardware concurrency.
  size_t threads = 1;
  // Run on an existing pool instead of building one (threads then ignored).
  exec::ThreadPool* pool = nullptr;
};

struct HierarchyResult {
  std::vector<ReplayResult> edges;
  ReplayResult parent;

  // CDN-wide steady-state aggregates.
  uint64_t requested_bytes = 0;      // user demand at the edges
  uint64_t edge_served_bytes = 0;    // served directly by an edge
  uint64_t edge_filled_bytes = 0;    // edge ingress
  uint64_t parent_served_bytes = 0;  // edge misses absorbed by the parent
  uint64_t parent_filled_bytes = 0;  // parent ingress (from origin)
  uint64_t origin_bytes = 0;         // served by the origin (parent redirects)

  // Fraction of user demand that never left the CDN's edge tier / the CDN.
  double edge_hit_fraction = 0.0;
  double cdn_hit_fraction = 0.0;
};

// Runs the two-tier simulation over one trace per edge server.
HierarchyResult RunHierarchy(const std::vector<trace::Trace>& edge_traces,
                             const HierarchyConfig& config);

}  // namespace vcdn::sim

#endif  // VCDN_SRC_SIM_HIERARCHY_H_
